// rav_serve — long-lived decision service over stdio (docs/serving.md).
//
// Usage:
//   rav_serve [--threads N] [--cache N]
//
// Protocol: JSON lines. Each stdin line is one request (schema of
// service/request.h), each stdout line one response — responses appear
// in COMPLETION order, matched to requests by their "id". A spec is
// compiled once (parse → lint → strip → complete) and cached by content
// hash, so a stream of queries against one spec pays the compile once
// (bench/bench_service.cc measures the amortization).
//
//   --threads N   worker threads executing query ops concurrently
//                 (default service::kDefaultServeThreads = 4; 0 = all
//                 hardware threads). `cancel` and
//                 `stats` are answered inline by the reader thread, so
//                 a cancel reaches a stuck request even when every
//                 worker is busy.
//   --cache N     compiled-spec cache capacity (default 64).
//
// Isolation: each request runs under its own ExecutionGovernor armed
// from the request's "timeout"/"memory_limit"; a request tripping its
// deadline or budget yields exit_equivalent 4 for THAT response and
// leaves concurrent requests untouched (tests/service_test.cc proves
// this; tools/run_ci.sh smokes it end to end).
//
// Shutdown:
//   * stdin EOF — drain every accepted request, flush, exit 0;
//   * first SIGINT — cancel all in-flight requests cooperatively, drop
//     not-yet-started ones, flush, exit 5;
//   * second SIGINT — default disposition (kill), exit 130.

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <condition_variable>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "base/numbers.h"
#include "service/request.h"
#include "service/service.h"

namespace rav {
namespace {

constexpr int kExitOk = 0;
constexpr int kExitUsage = 2;
constexpr int kExitCancelled = 5;

std::atomic<bool> g_interrupted{false};

extern "C" void HandleSigint(int) {
  // First Ctrl-C: cooperative shutdown (one relaxed store — async-signal
  // safe). Second Ctrl-C: default disposition, i.e. kill.
  g_interrupted.store(true, std::memory_order_relaxed);
  std::signal(SIGINT, SIG_DFL);
}

// Stdout is shared by every worker: one line per response, atomically.
std::mutex g_stdout_mu;

void EmitResponse(const service::QueryResponse& response) {
  const std::string line = response.ToJsonLine();
  std::lock_guard<std::mutex> lock(g_stdout_mu);
  std::fwrite(line.data(), 1, line.size(), stdout);
  std::fputc('\n', stdout);
  std::fflush(stdout);  // each line is a complete message; don't batch
}

// A parse failure still gets a response line, so the client sees every
// rejection on the same channel (id echoes back when the bad request at
// least carried one).
void EmitParseError(const std::string& id, const Status& status) {
  service::QueryResponse response;
  response.id = id;
  response.op = "?";
  response.ok = false;
  response.error = status.ToString();
  response.verdict = "error";
  response.exit_equivalent = 1;
  EmitResponse(response);
}

// Best-effort id recovery from an unparseable request line, so the
// client can still match the error to its request.
std::string RecoverId(const std::string& line) {
  Result<Json> parsed = Json::Parse(line);
  if (!parsed.ok() || !parsed->is_object()) return "";
  const Json* id = parsed->Find("id");
  return (id != nullptr && id->is_string()) ? id->string_value() : "";
}

struct RequestQueue {
  std::mutex mu;
  std::condition_variable ready;
  std::deque<service::QueryRequest> items;
  bool closed = false;

  void Push(service::QueryRequest request) {
    {
      std::lock_guard<std::mutex> lock(mu);
      items.push_back(std::move(request));
    }
    ready.notify_one();
  }
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu);
      closed = true;
    }
    ready.notify_all();
  }
  // Drops everything not yet started (shutdown path); returns the count.
  size_t Clear() {
    std::lock_guard<std::mutex> lock(mu);
    size_t dropped = items.size();
    items.clear();
    return dropped;
  }
  bool Pop(service::QueryRequest* request) {
    std::unique_lock<std::mutex> lock(mu);
    ready.wait(lock, [&] { return closed || !items.empty(); });
    if (items.empty()) return false;
    *request = std::move(items.front());
    items.pop_front();
    return true;
  }
};

int Main(int argc, char** argv) {
  int threads = service::kDefaultServeThreads;
  size_t cache_capacity = 64;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threads" && i + 1 < argc) {
      Result<int> parsed = ParseInt32(argv[++i]);
      if (!parsed.ok() || *parsed < 0) {
        std::fprintf(stderr,
                     "rav_serve: --threads must be a non-negative integer\n");
        return kExitUsage;
      }
      threads = *parsed;
    } else if (arg == "--cache" && i + 1 < argc) {
      Result<int> parsed = ParseInt32(argv[++i]);
      if (!parsed.ok() || *parsed < 1) {
        std::fprintf(stderr, "rav_serve: --cache must be a positive integer\n");
        return kExitUsage;
      }
      cache_capacity = static_cast<size_t>(*parsed);
    } else {
      std::fprintf(stderr,
                   "usage: rav_serve [--threads N] [--cache N]\n"
                   "  JSON-lines requests on stdin, responses on stdout "
                   "(docs/serving.md)\n");
      return kExitUsage;
    }
  }
  if (threads == 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads == 0) threads = 1;
  }

  service::ServiceOptions options;
  options.cache_capacity = cache_capacity;
  service::Service service(options);
  RequestQueue queue;

  std::signal(SIGINT, HandleSigint);

  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers.emplace_back([&] {
      service::QueryRequest request;
      while (queue.Pop(&request)) EmitResponse(service.Handle(request));
    });
  }

  // The watchdog turns the SIGINT flag into cooperative cancellation:
  // in-flight governors trip, workers finish fast, queued requests are
  // dropped. Polling is the only option — the reader may be blocked in
  // getline and must not be required to notice. Exactly one side (EOF
  // drain or interrupt path) joins the workers: `shutdown_claimed`
  // arbitrates.
  std::atomic<bool> done{false};
  std::atomic<bool> shutdown_claimed{false};
  std::thread watchdog([&] {
    while (!done.load(std::memory_order_relaxed)) {
      if (g_interrupted.load(std::memory_order_relaxed)) {
        const size_t dropped = queue.Clear();
        queue.Close();
        const size_t cancelled = service.CancelAll();
        std::fprintf(stderr,
                     "rav_serve: interrupted — cancelled %zu in-flight, "
                     "dropped %zu queued request(s)\n",
                     cancelled, dropped);
        if (shutdown_claimed.exchange(true)) return;  // EOF drain owns it
        for (std::thread& w : workers) w.join();
        {
          std::lock_guard<std::mutex> lock(g_stdout_mu);
          std::fflush(stdout);
        }
        // The reader thread may be parked in getline on an open stdin;
        // _Exit skips waiting on it (everything is flushed above).
        std::_Exit(kExitCancelled);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  });

  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    Result<service::QueryRequest> request = service::ParseRequest(line);
    if (!request.ok()) {
      EmitParseError(RecoverId(line), request.status());
      continue;
    }
    // Control ops answer inline so they cannot starve behind busy
    // workers; query ops go to the pool.
    if (request->op == service::Op::kCancel ||
        request->op == service::Op::kStats) {
      EmitResponse(service.Handle(*request));
    } else {
      queue.Push(*std::move(request));
    }
  }

  queue.Close();
  if (shutdown_claimed.exchange(true)) {
    // The interrupt path got there first and will join + _Exit; just
    // wait for it.
    for (;;) std::this_thread::sleep_for(std::chrono::seconds(1));
  }
  for (std::thread& w : workers) w.join();
  done.store(true, std::memory_order_relaxed);
  watchdog.join();
  std::fflush(stdout);
  return g_interrupted.load(std::memory_order_relaxed) ? kExitCancelled
                                                       : kExitOk;
}

}  // namespace
}  // namespace rav

int main(int argc, char** argv) { return rav::Main(argc, argv); }
