// rav_cli — command-line front end for the rav library.
//
// Usage:
//   rav_cli info <file>                 print a summary of the automaton
//   rav_cli print <file>                round-trip through the text format
//   rav_cli dot <file>                  Graphviz rendering to stdout
//   rav_cli empty <file> [--threads N] [--search-mode <mode>]
//                                       emptiness over finite databases;
//                                       N > 1 checks candidate lassos on a
//                                       worker pool (default N = 1, serial:
//                                       kDefaultSearchWorkers; same
//                                       verdict/witness). --search-mode
//                                       partitioned|shared picks the
//                                       work-sharing engine: partitioned
//                                       (default) is the deterministic
//                                       reference, shared dedups candidates
//                                       through a concurrent visited set
//                                       (docs/search.md)
//   rav_cli project <file> <m>          projection onto registers 1..m
//   rav_cli lrbound <file>              LR-boundedness estimation
//   rav_cli simulate <file> <steps>     sample and print a run
//   rav_cli verify <file> <ltl> <fo>... verify an LTL-FO property; <ltl>
//                                       uses propositions p0, p1, ... and
//                                       each <fo> is "xi=yj", "xi!=xj",
//                                       etc. interpreting proposition pN.
//   rav_cli batch <file|-> [--threads N] [--cache N]
//                                       answer a file of JSON-lines
//                                       decision-service requests (the
//                                       rav_serve wire format; see
//                                       docs/serving.md) concurrently in
//                                       one process. Exit 0 if every
//                                       request was answered ok, 1
//                                       otherwise.
//   rav_cli lint <file>... [--json|--sarif] [--werror]
//                                       static analysis (docs/linting.md):
//                                       prints RAV0xx diagnostics; exit
//                                       code 2 on errors, 1 on warnings,
//                                       0 when clean. --werror promotes
//                                       warnings to errors; --json emits
//                                       one machine-readable object per
//                                       file; --sarif emits one SARIF
//                                       2.1.0 log over all files.
//
// Automaton files use the text format of io/text_format.h.
//
// Every command also accepts (anywhere on the line):
//   --report <file>        write a JSON run report (schema of
//                          base/report.h — mergeable with the bench
//                          binaries' reports via tools/report_merge; see
//                          docs/observability.md)
//   --timeout <duration>   wall-clock deadline, e.g. 250ms, 10s, 2m
//   --memory-limit <bytes> accounted-memory budget, e.g. 1048576, 64k,
//                          512m, 2g
// The limits (and Ctrl-C) stop the decision procedures cooperatively at
// their safe points; partial results computed before the trip are still
// printed. See docs/robustness.md.
//
// Exit codes (docs/robustness.md):
//   0  success: property holds / language empty / lint clean (including
//      verdicts truncated by the legacy enumeration bounds)
//   1  runtime error (unloadable file, infeasible command) — and, for
//      `lint`, warnings
//   2  usage / bad arguments — and, for `lint`, errors
//   3  property false: NONEMPTY witness, FAILS counterexample, or
//      LR-bound growth detected
//   4  stopped by the governor: --timeout or --memory-limit tripped
//   5  cancelled (Ctrl-C / SIGINT)

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <mutex>
#include <optional>
#include <random>
#include <sstream>
#include <string>
#include <thread>

#include "analysis/lint.h"
#include "base/governor.h"
#include "base/numbers.h"
#include "base/report.h"
#include "era/emptiness.h"
#include "era/ltlfo.h"
#include "io/proposition.h"
#include "io/text_format.h"
#include "projection/lr_bounded.h"
#include "projection/project_era.h"
#include "ra/simulate.h"
#include "ra/transform.h"
#include "service/request.h"
#include "service/service.h"

namespace rav {
namespace {

constexpr int kExitOk = 0;
constexpr int kExitError = 1;
constexpr int kExitUsage = 2;
constexpr int kExitPropertyFalse = 3;
constexpr int kExitResourceExhausted = 4;
constexpr int kExitCancelled = 5;

// The process-wide governor: every command runs under it. Unlimited
// unless --timeout / --memory-limit arm it; SIGINT always cancels it.
ExecutionGovernor g_governor;

extern "C" void HandleSigint(int) {
  // First Ctrl-C: cooperative cancel (async-signal-safe — one relaxed
  // atomic store). Second Ctrl-C: default disposition, i.e. kill.
  g_governor.RequestCancel();
  std::signal(SIGINT, SIG_DFL);
}

// Commands overwrite this with their domain verdict ("NONEMPTY",
// "HOLDS", ...) for the `--report` JSON; it defaults from the exit code.
std::string g_verdict;

int Fail(const std::string& message) {
  std::fprintf(stderr, "rav_cli: %s\n", message.c_str());
  return 1;
}

// Failure exit for a Status: governor trips (surfaced as
// ResourceExhausted by the library) get their dedicated exit codes so
// scripts can tell "out of budget" from "broken input".
int FailStatus(const Status& status) {
  std::fprintf(stderr, "rav_cli: %s\n", status.ToString().c_str());
  if (status.code() == StatusCode::kResourceExhausted) {
    return g_governor.trip() == GovernorTrip::kCancelled
               ? kExitCancelled
               : kExitResourceExhausted;
  }
  return kExitError;
}

// Exit code of a run whose search stopped on a governor trip; kExitOk
// for every non-governor stop (witness handling happens first, and the
// legacy enumeration bounds keep their exit-0 truncated verdicts).
int ExitForStop(SearchStopReason reason) {
  switch (reason) {
    case SearchStopReason::kDeadline:
    case SearchStopReason::kMemoryBudget:
      return kExitResourceExhausted;
    case SearchStopReason::kCancelled:
      return kExitCancelled;
    default:
      return kExitOk;
  }
}

// Checked numeric argument: `what` names the argument in the error. Never
// throws and never silently yields 0 (unlike std::stoi / std::atoi).
Result<int> ParseIntArg(const std::string& what, const std::string& text) {
  Result<int> value = ParseInt32(text);
  if (!value.ok()) {
    return Status::InvalidArgument(what + ": " + value.status().message() +
                                   " — expected a decimal integer");
  }
  return value;
}

Result<ExtendedAutomaton> Load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseExtendedAutomaton(buffer.str());
}

// `rav_cli lint`: every file is parsed and linted; a file that fails to
// load contributes the pseudo-diagnostic RAV000 (error). Exit code is the
// maximum severity seen (2 = error, 1 = warning, 0 = clean/notes);
// --werror promotes every warning to an error before both rendering and
// the exit code.
enum class LintOutput { kText, kJson, kSarif };

int CmdLint(const std::vector<std::string>& files, LintOutput output,
            bool werror) {
  using analysis::Diagnostic;
  using analysis::Severity;
  Severity worst = Severity::kNote;
  int errors = 0;
  int warnings = 0;
  int notes = 0;
  bool any = false;
  Json json_files = Json::Array();
  std::vector<std::pair<std::string, std::vector<Diagnostic>>> sarif_files;
  for (const std::string& path : files) {
    std::vector<Diagnostic> diagnostics;
    auto era = Load(path);
    if (!era.ok()) {
      diagnostics.push_back(Diagnostic{"RAV000", Severity::kError,
                                       era.status().ToString(),
                                       SourceLocation{}});
    } else {
      diagnostics = analysis::Lint(*era, &g_governor);
    }
    for (Diagnostic& d : diagnostics) {
      if (werror && d.severity == Severity::kWarning) {
        d.severity = Severity::kError;
      }
      if (d.severity > worst) worst = d.severity;
      switch (d.severity) {
        case Severity::kError:
          ++errors;
          break;
        case Severity::kWarning:
          ++warnings;
          break;
        case Severity::kNote:
          ++notes;
          break;
      }
      any = true;
      if (output == LintOutput::kText) {
        std::printf("%s\n", FormatDiagnostic(d, path).c_str());
      }
    }
    if (output == LintOutput::kJson) {
      json_files.Append(analysis::DiagnosticsToJson(diagnostics, path));
    } else if (output == LintOutput::kSarif) {
      sarif_files.emplace_back(path, std::move(diagnostics));
    }
  }
  if (output == LintOutput::kJson) {
    std::printf("%s\n", json_files.Dump(2).c_str());
  } else if (output == LintOutput::kSarif) {
    std::printf("%s\n", analysis::DiagnosticsToSarif(sarif_files).Dump(2).c_str());
  } else if (any) {
    std::printf("lint: %zu file(s), %d error(s), %d warning(s), %d note(s)\n",
                files.size(), errors, warnings, notes);
  }
  const GovernorTrip trip = g_governor.trip();
  if (trip != GovernorTrip::kNone) {
    std::fprintf(stderr,
                 "rav_cli: lint stopped by governor (%s) — diagnostics "
                 "above are partial\n",
                 GovernorTripName(trip));
    g_verdict = std::string("lint stopped (") + GovernorTripName(trip) + ")";
    return trip == GovernorTrip::kCancelled ? kExitCancelled
                                            : kExitResourceExhausted;
  }
  g_verdict = !any                         ? "clean"
              : worst == Severity::kError  ? "lint errors"
              : worst == Severity::kWarning ? "lint warnings"
                                            : "lint notes";
  if (worst == Severity::kError) return 2;
  if (worst == Severity::kWarning) return 1;
  return 0;
}

int CmdInfo(const ExtendedAutomaton& era) {
  const RegisterAutomaton& a = era.automaton();
  // Build the control alphabet the decision procedures would run with, so
  // the compiled-guard stats reflect the engine actually selected (and the
  // table bytes are governor-charged like every other artifact).
  ControlAlphabet alphabet(a);
  ScopedMemoryCharge table_charge(&g_governor, alphabet.guard_table_bytes());
  std::printf("registers:       %d\n", a.num_registers());
  std::printf("schema:          %s\n", a.schema().ToString().c_str());
  std::printf("states:          %d\n", a.num_states());
  std::printf("transitions:     %d\n", a.num_transitions());
  std::printf("constraints:     %zu\n", era.constraints().size());
  std::printf("complete:        %s\n", a.IsComplete() ? "yes" : "no");
  std::printf("state-driven:    %s\n", a.IsStateDriven() ? "yes" : "no");
  std::printf("guard engine:    %s\n",
              compile::GuardEngineName(alphabet.guard_engine()));
  std::printf("distinct guards: %d\n", alphabet.num_distinct_guards());
  std::printf("guard tables:    %zu bytes\n", alphabet.guard_table_bytes());
  return 0;
}

int CmdEmpty(const ExtendedAutomaton& era,
             const EraEmptinessOptions& options) {
  RegisterAutomaton completed = era.automaton();
  if (!completed.IsComplete()) {
    auto result = Completed(completed);
    if (!result.ok()) return Fail(result.status().ToString());
    completed = std::move(result).value();
  }
  ExtendedAutomaton subject(std::move(completed));
  for (const GlobalConstraint& c : era.constraints()) {
    Status s = subject.AddConstraintDfa(RegisterPair{c.i, c.j}, c.is_equality,
                                        c.dfa, c.description);
    if (!s.ok()) return Fail(s.ToString());
  }
  ControlAlphabet alphabet(subject.automaton());
  auto result = CheckEraEmptiness(subject, alphabet, options);
  if (!result.ok()) return FailStatus(result.status());
  int exit_code = kExitOk;
  if (result->nonempty) {
    g_verdict = "NONEMPTY";
    std::printf("NONEMPTY — witness control lasso: %s\n",
                result->control_word.ToString().c_str());
    exit_code = kExitPropertyFalse;
  } else if (result->search_truncated) {
    g_verdict = "EMPTY (search truncated, not definitive)";
    std::printf("EMPTY within search bound (stopped: %s) — not definitive\n",
                SearchStopReasonName(result->stats.stop_reason));
    exit_code = ExitForStop(result->stats.stop_reason);
  } else {
    g_verdict = "EMPTY";
    std::printf("EMPTY (search space exhausted)\n");
  }
  std::printf("search: %s\n", result->stats.ToString().c_str());
  return exit_code;
}

int CmdProject(const ExtendedAutomaton& era, int m) {
  auto projected = ProjectExtendedAutomaton(era, m);
  if (!projected.ok()) return FailStatus(projected.status());
  std::printf("%s", ToTextFormat(*projected).c_str());
  return 0;
}

int CmdLrBound(const ExtendedAutomaton& era) {
  ControlAlphabet alphabet(era.automaton());
  LrBoundOptions options;
  options.governor = &g_governor;
  auto bound = EstimateLrBound(era, alphabet, options);
  if (!bound.ok()) return FailStatus(bound.status());
  g_verdict = bound->growth_detected ? "growth detected (not LR-bounded)"
                                     : "no growth detected";
  std::printf("max vertex cover (sampled): %d\n", bound->max_cover);
  std::printf("growth detected:            %s\n",
              bound->growth_detected ? "yes (evidence of NOT LR-bounded)"
                                     : "no");
  std::printf("lassos examined:            %zu\n", bound->lassos_examined);
  std::printf("sampling stopped:           %s%s\n",
              SearchStopReasonName(bound->stats.stop_reason),
              bound->search_truncated ? " (verdict covers sampled lassos only)"
                                      : "");
  if (bound->growth_detected) return kExitPropertyFalse;
  return ExitForStop(bound->stats.stop_reason);
}

int CmdSimulate(const ExtendedAutomaton& era, int steps) {
  Database db{era.automaton().schema()};
  std::random_device rd;
  std::mt19937 rng(rd());
  auto run = SampleRun(era.automaton(), db, static_cast<size_t>(steps), rng);
  if (!run.has_value()) {
    return Fail("sampler found no run of that length (over the empty "
                "database)");
  }
  std::printf("%s\n", run->ToString(era.automaton()).c_str());
  return 0;
}

int CmdVerify(const ExtendedAutomaton& era, const std::string& ltl_text,
              const std::vector<std::string>& proposition_texts) {
  // The proposition and LTL syntax is shared with the decision service's
  // `verify` op (io/proposition.h, docs/serving.md).
  auto parsed = ParseLtlFoProperty(ltl_text, proposition_texts,
                                   era.automaton());
  if (!parsed.ok()) return Fail(parsed.status().ToString());
  LtlFoProperty property = std::move(parsed).value();

  VerificationOptions options;
  options.emptiness.governor = &g_governor;
  auto result = VerifyLtlFo(era, property, options);
  if (!result.ok()) return FailStatus(result.status());
  if (result->holds) {
    if (result->search_truncated) {
      g_verdict = "HOLDS (search truncated, not definitive)";
      std::printf(
          "HOLDS within search bound (stopped: %s) — not definitive\n",
          SearchStopReasonName(result->search_stats.stop_reason));
      return ExitForStop(result->search_stats.stop_reason);
    }
    g_verdict = "HOLDS";
    std::printf("HOLDS\n");
    return kExitOk;
  }
  g_verdict = "FAILS";
  std::printf("FAILS — counterexample control lasso: %s\n",
              result->counterexample->ToString().c_str());
  return kExitPropertyFalse;
}

// `rav_cli batch <file|-> [--threads N] [--cache N]`: answers a file of
// JSON-lines decision-service requests (schema of service/request.h —
// the same wire format tools/rav_serve speaks) concurrently in one
// process, one response line per request in completion order. Exit 0
// when every request was answered ok, 1 when any failed, 5 on Ctrl-C.
// Each request still runs under its OWN governor; the process-wide
// --timeout/--memory-limit flags are not inherited by batch requests
// (set per-request "timeout"/"memory_limit" fields instead).
int CmdBatch(const std::string& path, int threads, size_t cache_capacity) {
  std::ifstream file;
  std::istream* in = &std::cin;
  if (path != "-") {
    file.open(path);
    if (!file) return Fail("batch: cannot open '" + path + "'");
    in = &file;
  }
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(*in, line)) {
    if (!line.empty()) lines.push_back(line);
  }

  service::ServiceOptions options;
  options.cache_capacity = cache_capacity;
  service::Service service(options);
  std::atomic<size_t> next{0};
  std::atomic<size_t> failures{0};
  std::mutex stdout_mu;

  auto emit = [&](const service::QueryResponse& response) {
    if (!response.ok) failures.fetch_add(1);
    const std::string out = response.ToJsonLine();
    std::lock_guard<std::mutex> lock(stdout_mu);
    std::fwrite(out.data(), 1, out.size(), stdout);
    std::fputc('\n', stdout);
  };
  auto worker = [&] {
    for (;;) {
      const size_t i = next.fetch_add(1);
      if (i >= lines.size()) return;
      // Ctrl-C (cooperative cancel of the process governor) stops
      // starting new requests; the watchdog below trips the in-flight
      // ones.
      if (g_governor.Check() == GovernorTrip::kCancelled) return;
      auto request = service::ParseRequest(lines[i]);
      if (!request.ok()) {
        service::QueryResponse response;
        response.op = "?";
        response.ok = false;
        response.error = request.status().ToString();
        response.verdict = "error";
        response.exit_equivalent = kExitError;
        emit(response);
        continue;
      }
      emit(service.Handle(*request));
    }
  };

  std::atomic<bool> done{false};
  std::thread watchdog([&] {
    while (!done.load(std::memory_order_relaxed)) {
      if (g_governor.Check() == GovernorTrip::kCancelled) service.CancelAll();
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  });
  if (threads < 1) threads = 1;
  std::vector<std::thread> pool;
  for (int i = 1; i < threads; ++i) pool.emplace_back(worker);
  worker();
  for (std::thread& t : pool) t.join();
  done.store(true, std::memory_order_relaxed);
  watchdog.join();

  if (g_governor.Check() == GovernorTrip::kCancelled) {
    g_verdict = "batch cancelled";
    return kExitCancelled;
  }
  g_verdict = failures.load() == 0
                  ? "batch ok"
                  : "batch with " + std::to_string(failures.load()) +
                        " failed request(s)";
  std::fprintf(stderr, "rav_cli: batch: %zu request(s), %zu failed\n",
               lines.size(), failures.load());
  return failures.load() == 0 ? kExitOk : kExitError;
}

int RunCommand(const std::vector<std::string>& args) {
  const int argc = static_cast<int>(args.size());
  std::vector<const char*> ptrs;
  for (const std::string& a : args) ptrs.push_back(a.c_str());
  const char* const* argv = ptrs.data();
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: rav_cli "
                 "<info|print|dot|empty|project|lrbound|simulate|verify|lint"
                 "|batch> <file> [args...] [--report <json>]\n");
    return 2;
  }
  std::string command = argv[1];

  if (command == "batch") {
    int threads = 1;
    size_t cache_capacity = 64;
    std::string batch_path;
    for (int i = 2; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--threads" && i + 1 < argc) {
        auto threads_arg = ParseIntArg("--threads", argv[++i]);
        if (!threads_arg.ok()) return Fail(threads_arg.status().message());
        if (*threads_arg < 0) return Fail("batch --threads must be >= 0");
        threads = *threads_arg == 0
                      ? static_cast<int>(std::thread::hardware_concurrency())
                      : *threads_arg;
      } else if (arg == "--cache" && i + 1 < argc) {
        auto cache_arg = ParseIntArg("--cache", argv[++i]);
        if (!cache_arg.ok()) return Fail(cache_arg.status().message());
        if (*cache_arg < 1) return Fail("batch --cache must be >= 1");
        cache_capacity = static_cast<size_t>(*cache_arg);
      } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
        return Fail("batch: unknown flag '" + arg +
                    "' (supported: --threads N, --cache N)");
      } else if (batch_path.empty()) {
        batch_path = arg;
      } else {
        return Fail("batch: takes one <file> (or '-' for stdin)");
      }
    }
    if (batch_path.empty()) return Fail("batch needs <file> (or '-')");
    return CmdBatch(batch_path, threads, cache_capacity);
  }

  if (command == "lint") {
    LintOutput output = LintOutput::kText;
    bool werror = false;
    std::vector<std::string> files;
    for (int i = 2; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--json") {
        output = LintOutput::kJson;
      } else if (arg == "--sarif") {
        output = LintOutput::kSarif;
      } else if (arg == "--werror") {
        werror = true;
      } else if (!arg.empty() && arg[0] == '-') {
        return Fail("lint: unknown flag '" + arg +
                    "' (supported: --json, --sarif, --werror)");
      } else {
        files.push_back(arg);
      }
    }
    if (files.empty()) return Fail("lint needs at least one <file>");
    return CmdLint(files, output, werror);
  }

  // Numeric arguments are validated before any file I/O, so a malformed
  // invocation fails fast with a usage message.
  int project_m = 0;
  int simulate_steps = 0;
  EraEmptinessOptions empty_options;
  empty_options.governor = &g_governor;
  if (command == "project") {
    if (argc < 4) return Fail("project needs <m>");
    auto m = ParseIntArg("project <m>", argv[3]);
    if (!m.ok()) return Fail(m.status().message());
    project_m = *m;
  } else if (command == "simulate") {
    if (argc < 4) return Fail("simulate needs <steps>");
    auto steps = ParseIntArg("simulate <steps>", argv[3]);
    if (!steps.ok()) return Fail(steps.status().message());
    if (*steps < 0) return Fail("simulate <steps> must be >= 0");
    simulate_steps = *steps;
  } else if (command == "empty") {
    for (int i = 3; i < argc; ++i) {
      if (std::string(argv[i]) == "--threads" && i + 1 < argc) {
        auto threads = ParseIntArg("--threads", argv[i + 1]);
        if (!threads.ok()) return Fail(threads.status().message());
        if (*threads < 0) return Fail("empty --threads must be >= 0");
        empty_options.num_workers = *threads;
        ++i;
      } else if (std::string(argv[i]) == "--search-mode" && i + 1 < argc) {
        std::optional<SearchMode> mode = ParseSearchMode(argv[i + 1]);
        if (!mode.has_value()) {
          return Fail("empty --search-mode must be 'partitioned' or 'shared'");
        }
        empty_options.search_mode = *mode;
        ++i;
      } else {
        return Fail("empty: unknown argument '" + std::string(argv[i]) +
                    "' (supported: --threads N, --search-mode "
                    "<partitioned|shared>)");
      }
    }
  }

  auto era = Load(argv[2]);
  if (!era.ok()) {
    return Fail("cannot load '" + std::string(argv[2]) + "': " +
                era.status().ToString() +
                "\n  usage: rav_cli " + command +
                " <file> — <file> must be an automaton spec in the "
                "io/text_format syntax (try `rav_cli lint " +
                std::string(argv[2]) + "` for details)");
  }

  if (command == "info") return CmdInfo(*era);
  if (command == "print") {
    std::printf("%s", ToTextFormat(*era).c_str());
    return 0;
  }
  if (command == "dot") {
    std::printf("%s", ToGraphviz(era->automaton()).c_str());
    return 0;
  }
  if (command == "empty") return CmdEmpty(*era, empty_options);
  if (command == "project") return CmdProject(*era, project_m);
  if (command == "lrbound") return CmdLrBound(*era);
  if (command == "simulate") return CmdSimulate(*era, simulate_steps);
  if (command == "verify") {
    if (argc < 5) return Fail("verify needs <ltl> and at least one <fo>");
    std::vector<std::string> props;
    for (int i = 4; i < argc; ++i) props.emplace_back(argv[i]);
    return CmdVerify(*era, argv[3], props);
  }
  return Fail("unknown command '" + command + "'");
}

int Main(int argc, char** argv) {
  // Strip the global flags (--report, --timeout, --memory-limit) before
  // command parsing so they work uniformly across commands and positions.
  std::string report_path;
  std::string timeout_text;
  std::string memory_text;
  std::vector<std::string> args;
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--report" && i + 1 < argc) {
      report_path = argv[++i];
      continue;
    }
    if (arg.rfind("--report=", 0) == 0) {
      report_path = arg.substr(9);
      continue;
    }
    if (arg == "--timeout" && i + 1 < argc) {
      timeout_text = argv[++i];
      continue;
    }
    if (arg.rfind("--timeout=", 0) == 0) {
      timeout_text = arg.substr(10);
      continue;
    }
    if (arg == "--memory-limit" && i + 1 < argc) {
      memory_text = argv[++i];
      continue;
    }
    if (arg.rfind("--memory-limit=", 0) == 0) {
      memory_text = arg.substr(15);
      continue;
    }
    args.push_back(std::move(arg));
  }

  if (!timeout_text.empty()) {
    Result<long long> ms = ParseDurationMs(timeout_text);
    if (!ms.ok()) {
      std::fprintf(stderr, "rav_cli: --timeout: %s\n",
                   ms.status().message().c_str());
      return kExitUsage;
    }
    g_governor.set_deadline_after(std::chrono::milliseconds(*ms));
  }
  if (!memory_text.empty()) {
    Result<long long> bytes = ParseByteSize(memory_text);
    if (!bytes.ok()) {
      std::fprintf(stderr, "rav_cli: --memory-limit: %s\n",
                   bytes.status().message().c_str());
      return kExitUsage;
    }
    g_governor.set_memory_budget(static_cast<size_t>(*bytes));
  }
  std::signal(SIGINT, HandleSigint);

  const auto start = std::chrono::steady_clock::now();
  int exit_code = RunCommand(args);
  if (report_path.empty()) return exit_code;

  RunReport report;
  report.experiment = "cli/" + (args.size() > 1 ? args[1] : std::string("?"));
  report.claim = "rav_cli invocation (docs/observability.md)";
  report.params.Set("command",
                    Json::String(args.size() > 1 ? args[1] : ""));
  report.params.Set("file", Json::String(args.size() > 2 ? args[2] : ""));
  Json extra = Json::Array();
  for (size_t i = 3; i < args.size(); ++i) {
    extra.Append(Json::String(args[i]));
  }
  report.params.Set("args", std::move(extra));
  report.params.Set("exit_code", Json::Number(exit_code));
  report.params.Set("governor_trip",
                    Json::String(GovernorTripName(g_governor.trip())));
  Json metrics = Json::Object();
  metrics.Set("process", CaptureProcessMetrics());
  report.metrics = std::move(metrics);
  report.spans = CaptureSpans();
  report.verdict =
      !g_verdict.empty() ? g_verdict : (exit_code == 0 ? "ok" : "error");
  report.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  Status written = WriteReportFile(report_path, report);
  if (!written.ok()) {
    // A requested report that cannot be written is a hard failure: exit
    // nonzero and name the path, so a pipeline never sees a verdict with
    // exit 0 while the report file is silently missing. A domain exit
    // code (3/4/5) is preserved — it is already nonzero and more
    // specific than the generic error.
    std::fprintf(stderr,
                 "rav_cli: --report: cannot write report file '%s': %s\n",
                 report_path.c_str(), written.ToString().c_str());
    return exit_code != kExitOk ? exit_code : kExitError;
  }
  return exit_code;
}

}  // namespace
}  // namespace rav

int main(int argc, char** argv) { return rav::Main(argc, argv); }
