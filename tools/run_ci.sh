#!/usr/bin/env bash
# run_ci.sh — build, test, and produce BENCH_RESULTS.json in one command.
#
#   tools/run_ci.sh [output.json]
#
# Pipeline (docs/observability.md):
#   1. configure + build the default preset (build/)
#   2. ctest (the tier-1 suite)
#   3. every bench binary with `--report reports/<bench>.json`
#   4. report_merge -> BENCH_RESULTS.json (validates every report's
#      schema; a missing key fails the merge and therefore the CI run)
#   5. consistency: every bench_* name mentioned in EXPERIMENTS.md must be
#      a real benchmark target, and every report must carry a verdict
#
# Environment knobs:
#   RAV_BENCH_MIN_TIME  google-benchmark min time per benchmark, seconds
#                       (default 0.05 — the full suite in a few minutes;
#                       raise for publication-quality numbers)
#   RAV_BENCH_FILTER    --benchmark_filter regex passed to every bench
#   RAV_JOBS            parallel build jobs (default: nproc)

set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_RESULTS.json}"
MIN_TIME="${RAV_BENCH_MIN_TIME:-0.05}"
FILTER="${RAV_BENCH_FILTER:-}"
JOBS="${RAV_JOBS:-$(nproc)}"

echo "== configure + build =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"

echo "== tests =="
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "== benches (--report) =="
mkdir -p build/reports
reports=()
for bench in build/bench/bench_*; do
  [ -x "$bench" ] || continue
  name=$(basename "$bench")
  report="build/reports/${name}.json"
  args=(--benchmark_min_time="$MIN_TIME" --report "$report")
  if [ -n "$FILTER" ]; then
    args+=(--benchmark_filter="$FILTER")
  fi
  echo "-- $name"
  "$bench" "${args[@]}" >/dev/null
  reports+=("$report")
done

echo "== merge =="
# report_merge validates each report against the schema of base/report.h
# and refuses to write the merged file if any key is missing.
build/tools/report_merge "$OUT" "${reports[@]}"

echo "== consistency checks =="
fail=0
# Every bench mentioned in EXPERIMENTS.md must exist as a benchmark.
for name in $(grep -o 'bench_[a-z0-9_]*' EXPERIMENTS.md | sort -u); do
  if [ ! -f "bench/${name}.cc" ]; then
    echo "EXPERIMENTS.md references nonexistent benchmark: $name" >&2
    fail=1
  fi
done
# Every merged report must have reached a verdict.
python3 - "$OUT" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    merged = json.load(f)
bad = [r["source_file"] for r in merged["reports"] if not r.get("verdict")]
if bad:
    print(f"reports without a verdict: {bad}", file=sys.stderr)
    sys.exit(1)
print(f"{len(merged['reports'])} reports merged, all verdicts present")
EOF
[ "$fail" -eq 0 ] || exit 1

echo "== done: $OUT =="
