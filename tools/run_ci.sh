#!/usr/bin/env bash
# run_ci.sh — build, test, and produce BENCH_RESULTS.json in one command.
#
#   tools/run_ci.sh [output.json]
#
# Pipeline (docs/observability.md):
#   1. configure + build the default preset (build/)
#   2. ctest (the tier-1 suite)
#   3. every bench binary with `--report reports/<bench>.json`
#   4. report_merge -> BENCH_RESULTS.json (validates every report's
#      schema; a missing key fails the merge and therefore the CI run)
#   5. consistency: every bench_* name mentioned in EXPERIMENTS.md must be
#      a real benchmark target, and every report must carry a verdict
#
# Pipeline continues:
#   6. fault-injection matrix: rav_cli under RAV_FAILPOINTS
#      configurations (base/failpoints.h), including a poisoned
#      decision-service request — each must degrade to a clean,
#      documented status, never crash or hang (docs/robustness.md)
#   7. decision-service smoke: rav_serve end to end — concurrent
#      queries, one deadline-tripped, per-request isolation, clean EOF
#      shutdown (docs/serving.md)
#   8. fuzz corpus smoke: the deterministic text-format fuzz runner at
#      a CI-sized input count
#   9. docs gate: every fenced rav_cli / rav_serve invocation shown in
#      the markdown docs is smoke-run (placeholders substituted), and
#      every intra-repo markdown link (including #anchors) must resolve
#      — stale docs fail CI instead of rotting
#  10. perf-regression gate: the hot benchmarks below are compared against
#      the committed baseline (`git show HEAD:BENCH_RESULTS.json`); a
#      >RAV_PERF_GATE_RATIO× cpu_ns_per_iter slowdown fails the run
#
# Environment knobs:
#   RAV_BENCH_MIN_TIME  google-benchmark min time per benchmark, seconds
#                       (default 0.05 — the full suite in a few minutes;
#                       raise for publication-quality numbers)
#   RAV_BENCH_FILTER    --benchmark_filter regex passed to every bench
#   RAV_BENCH_TIMEOUT   wall-clock cap per bench binary, seconds (default
#                       600); a hung bench fails the run instead of
#                       wedging it
#   RAV_JOBS            parallel build jobs (default: nproc)
#   RAV_PERF_GATE       "off" skips the perf-regression gate (noisy or
#                       shared machines); default "on"
#   RAV_PERF_GATE_RATIO slowdown factor that fails the gate (default 1.3)
#   RAV_TIDY            "off" skips the clang-tidy gate; default "on"
#                       (the gate also skips itself with a notice when
#                       clang-tidy is not installed)

set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_RESULTS.json}"
MIN_TIME="${RAV_BENCH_MIN_TIME:-0.05}"
FILTER="${RAV_BENCH_FILTER:-}"
JOBS="${RAV_JOBS:-$(nproc)}"
BENCH_TIMEOUT="${RAV_BENCH_TIMEOUT:-600}"

echo "== configure + build =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"

echo "== tests =="
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "== clang-tidy =="
# Static analysis over the library sources plus the test and bench
# binaries (.clang-tidy at the repo root) — test helpers pass the same
# strong-id seams the library does, so they are held to the same
# easily-swappable-parameters bar. Uses the compile_commands.json the
# configure step exported. WarningsAsErrors is '*', so any finding
# fails the run.
if [ "${RAV_TIDY:-on}" = "off" ]; then
  echo "clang-tidy skipped (RAV_TIDY=off)"
elif ! command -v clang-tidy >/dev/null 2>&1; then
  echo "clang-tidy skipped (not installed)"
elif [ ! -f build/compile_commands.json ]; then
  echo "clang-tidy skipped (no compile_commands.json — reconfigure build/)" >&2
  exit 1
else
  find src tests bench -name '*.cc' -print0 \
    | xargs -0 -n 4 -P "$JOBS" clang-tidy -p build --quiet
  echo "clang-tidy passed"
fi

echo "== benches (--report) =="
mkdir -p build/reports
reports=()
for bench in build/bench/bench_*; do
  [ -x "$bench" ] || continue
  name=$(basename "$bench")
  report="build/reports/${name}.json"
  args=(--benchmark_min_time="$MIN_TIME" --report "$report")
  if [ -n "$FILTER" ]; then
    args+=(--benchmark_filter="$FILTER")
  fi
  echo "-- $name"
  # Benches run under a wall-clock cap: a hang (a regression the governor
  # exists to prevent) fails the run with a message instead of wedging CI.
  if ! timeout -k 10 "$BENCH_TIMEOUT" "$bench" "${args[@]}" >/dev/null; then
    echo "bench $name failed or exceeded ${BENCH_TIMEOUT}s" >&2
    exit 1
  fi
  reports+=("$report")
done

echo "== fault-injection matrix =="
# Each configuration arms one failpoint (base/failpoints.h, catalog in
# docs/robustness.md) through the environment and asserts rav_cli lands
# on the documented clean status — never a crash; `timeout` converts a
# hang into a failure. ping_pong.rav is NONEMPTY, so the healthy exit
# code is 3 (property false).
mkdir -p build/reports
run_failpoint() {  # <failpoints> <expected-exit> <description> [args...]
  local fp="$1" want="$2" desc="$3"
  shift 3
  local got=0
  RAV_FAILPOINTS="$fp" timeout 60 build/tools/rav_cli \
      empty tests/data/ping_pong.rav "$@" \
      >build/reports/failpoint.out 2>&1 || got=$?
  if [ "$got" -ne "$want" ]; then
    echo "fault injection '$fp' ($desc): exit $got, want $want" >&2
    cat build/reports/failpoint.out >&2
    exit 1
  fi
  echo "-- $fp -> exit $got ($desc)"
}
run_failpoint "io/text_format/parse=1" 1 \
    "injected parse failure surfaces as a clean load error"
run_failpoint "era/search/worker_spawn=1" 3 \
    "worker-spawn failure degrades the pool, verdict unchanged" --threads 4
run_failpoint "governor/memory=1" 4 \
    "forced memory trip yields a truthful resource-exhausted stop"
# The compiled-guard escape hatch (docs/compilation.md): with
# RAV_GUARD_TABLES=off every procedure runs the interpreted Type walk,
# and the verdict must be unchanged (ping_pong.rav stays NONEMPTY).
got=0
RAV_GUARD_TABLES=off timeout 60 build/tools/rav_cli \
    empty tests/data/ping_pong.rav \
    >build/reports/failpoint.out 2>&1 || got=$?
if [ "$got" -ne 3 ]; then
  echo "RAV_GUARD_TABLES=off: exit $got, want 3 (interpreted engine must agree)" >&2
  cat build/reports/failpoint.out >&2
  exit 1
fi
echo "-- RAV_GUARD_TABLES=off -> exit 3 (interpreted engine agrees)"
# The flow-strip escape hatch (docs/linting.md): with RAV_STRIP_FLOW=off
# the decision procedures fall back from the kFlow strip tier to kFast,
# searching the unpruned structure — the verdict must be unchanged
# (ping_pong.rav stays NONEMPTY). A disagreement means a flow pass
# stripped something an accepting run needed.
got=0
RAV_STRIP_FLOW=off timeout 60 build/tools/rav_cli \
    empty tests/data/ping_pong.rav \
    >build/reports/failpoint.out 2>&1 || got=$?
if [ "$got" -ne 3 ]; then
  echo "RAV_STRIP_FLOW=off: exit $got, want 3 (unstripped search must agree)" >&2
  cat build/reports/failpoint.out >&2
  exit 1
fi
echo "-- RAV_STRIP_FLOW=off -> exit 3 (unstripped search agrees)"
# The decision-service seam: a poisoned request is rejected at parse
# time (failpoint in service::ParseRequest) with an error response; the
# other requests in the batch still get answered, and the batch exits 1
# (some requests failed) rather than crashing or taking the rest down.
python3 - <<'EOF' >build/reports/batch_requests.jsonl
import json
spec = open("tests/data/ping_pong.rav").read()
print(json.dumps({"id": "p1", "op": "empty", "spec": spec}))
print(json.dumps({"id": "p2", "op": "info", "spec": spec}))
EOF
got=0
RAV_FAILPOINTS="service/parse_request=1" timeout 60 \
    build/tools/rav_cli batch build/reports/batch_requests.jsonl \
    >build/reports/failpoint.out 2>&1 || got=$?
if [ "$got" -ne 1 ]; then
  echo "fault injection 'service/parse_request=1' (batch): exit $got, want 1" >&2
  cat build/reports/failpoint.out >&2
  exit 1
fi
grep -q "failpoint service/parse_request fired" build/reports/failpoint.out \
  || { echo "batch failpoint: rejection message missing" >&2; exit 1; }
grep -q '"id":"p2".*"ok":true' build/reports/failpoint.out \
  || { echo "batch failpoint: healthy request p2 was not answered" >&2; exit 1; }
echo "-- service/parse_request=1 -> exit 1 (poisoned request rejected, rest answered)"

echo "== decision-service smoke =="
# rav_serve end to end (docs/serving.md): one process, concurrent
# queries including a deadline-tripped one, per-request isolation, spec
# cache reuse, and a clean EOF shutdown. Asserted from the outside —
# the in-process isolation test lives in tests/service_test.cc.
timeout 120 python3 - <<'EOF'
import json, subprocess, sys

spec = open("tests/data/ping_pong.rav").read()
requests = [{"id": "trip", "op": "empty", "spec": spec, "timeout": "0ms"}]
for i in range(8):
    requests.append({"id": f"q{i}", "op": "empty", "spec": spec})
requests.append({"id": "inspect", "op": "info", "spec": spec})
requests.append({"id": "tally", "op": "stats"})
payload = "".join(json.dumps(r) + "\n" for r in requests)

proc = subprocess.run(
    ["build/tools/rav_serve", "--threads", "4"],
    input=payload, capture_output=True, text=True)
if proc.returncode != 0:
    sys.exit(f"rav_serve exit {proc.returncode}, want 0 (clean EOF shutdown)\n"
             f"{proc.stderr}")
responses = {json.loads(l)["id"]: json.loads(l)
             for l in proc.stdout.splitlines()}
if len(responses) != len(requests):
    sys.exit(f"{len(responses)} responses for {len(requests)} requests")

trip = responses["trip"]
if trip["exit_equivalent"] != 4 or trip["details"].get("stop_reason") != "deadline":
    sys.exit(f"deadline request did not trip cleanly: {trip}")
for i in range(8):
    r = responses[f"q{i}"]
    if not (r["ok"] and r["verdict"] == "NONEMPTY" and r["exit_equivalent"] == 3):
        sys.exit(f"concurrent request q{i} disturbed by the tripped one: {r}")
if not responses["inspect"]["ok"]:
    sys.exit(f"info request failed: {responses['inspect']}")
hits = [responses[f"q{i}"]["cache_hit"] for i in range(8)]
if True not in hits:
    sys.exit("no query hit the CompiledSpec cache — amortization is broken")
print("rav_serve smoke passed: 1 tripped + 8 isolated queries, "
      f"{sum(hits)}/8 cache hits, clean shutdown")
EOF

echo "== fuzz corpus smoke =="
RAV_FUZZ_SMOKE_INPUTS=30000 timeout 300 build/tests/fuzz_smoke >/dev/null
echo "fuzz smoke passed (30000 generated inputs)"

echo "== docs gate =="
# Two checks over the markdown documentation, so the docs can't drift
# from the tools they describe:
#   a) every rav_cli / rav_serve command inside a fenced code block in
#      docs/*.md and README.md still parses and exits with a documented
#      status (0..5, see docs/robustness.md). Usage placeholders are
#      substituted (`[...]` optional groups stripped, `<file>` and
#      nonexistent .rav paths -> a committed example spec); lines with
#      an explicit `...` elision are skipped.
#   b) every intra-repo markdown link — including #anchors, resolved
#      with GitHub's heading-slug rules — points at something that
#      exists.
timeout 300 python3 - <<'EOF'
import glob, json, os, re, shlex, subprocess, sys

DOC_FILES = sorted(glob.glob("docs/*.md")) + ["README.md", "EXPERIMENTS.md"]
SPEC = "examples/data/example1.rav"
failures = []

# A one-request batch file for `rav_cli batch <file|->` usage lines.
os.makedirs("build/reports", exist_ok=True)
batch_file = "build/reports/docs_gate_batch.jsonl"
with open(batch_file, "w") as f:
    f.write(json.dumps({"id": "doc", "op": "info",
                        "spec": open(SPEC).read()}) + "\n")

def extract_commands(path):
    """Yield (lineno, command) for rav_cli/rav_serve lines in fences."""
    in_fence = False
    for lineno, line in enumerate(open(path), 1):
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if not in_fence:
            continue
        text = line.strip()
        # Drop env-var prefixes to find the program word.
        rest = re.sub(r"^([A-Z_][A-Z0-9_]*=\S+\s+)*", "", text)
        prog = rest.split()[0] if rest.split() else ""
        if os.path.basename(prog) in ("rav_cli", "rav_serve"):
            yield lineno, text

def prepare(cmd):
    """Substitute doc placeholders; None means 'skip this line'."""
    cmd = re.sub(r"\[[^\][]*\]", "", cmd)          # strip [...] groups
    cmd = cmd.replace("<file|->", batch_file)
    cmd = cmd.replace("<file>...", SPEC).replace("<file>", SPEC)
    if "..." in cmd or "<" in cmd:                  # elided example line
        return None
    try:
        argv = shlex.split(cmd)
    except ValueError:
        return None
    if "|" in argv:                                 # keep the rav_ half
        argv = argv[: argv.index("|")]
    out = []
    skip_env = True
    for i, arg in enumerate(argv):
        if skip_env and re.fullmatch(r"[A-Z_][A-Z0-9_]*=.*", arg):
            out.append(arg)
            continue
        skip_env = False
        if arg.endswith(".rav") and not os.path.exists(arg):
            arg = SPEC
        if i > 0 and argv[i - 1] == "--report":
            arg = "build/reports/docs_gate_report.json"
        out.append(arg)
    # Resolve bare tool names against the build tree.
    for i, arg in enumerate(out):
        if re.fullmatch(r"[A-Z_][A-Z0-9_]*=.*", arg):
            continue
        if os.path.basename(arg) in ("rav_cli", "rav_serve"):
            out[i] = "build/tools/" + os.path.basename(arg)
        break
    return out

ran = 0
for path in DOC_FILES:
    for lineno, raw in extract_commands(path):
        argv = prepare(raw)
        if argv is None:
            continue
        env = dict(os.environ)
        for arg in list(argv):
            m = re.fullmatch(r"([A-Z_][A-Z0-9_]*)=(.*)", arg)
            if m:
                env[m.group(1)] = m.group(2)
                argv.remove(arg)
        proc = subprocess.run(argv, env=env, stdin=subprocess.DEVNULL,
                              capture_output=True, text=True, timeout=120)
        ran += 1
        err = proc.stderr.lower()
        if proc.returncode not in range(6) or "usage:" in err \
                or "unknown" in err:
            failures.append(
                f"{path}:{lineno}: `{raw}` -> exit {proc.returncode}\n"
                f"  ran: {' '.join(argv)}\n  stderr: {proc.stderr.strip()}")
print(f"docs gate: {ran} documented commands smoke-ran")

def slugs(path):
    """GitHub-style anchor slugs of a markdown file's headings."""
    out, in_fence = set(), False
    for line in open(path):
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
        if in_fence or not line.startswith("#"):
            continue
        text = line.lstrip("#").strip().replace("`", "")
        slug = re.sub(r"[^\w\- ]", "", text.lower()).replace(" ", "-")
        if slug in out:  # GitHub dedups repeats with -1, -2, ...
            n = 1
            while f"{slug}-{n}" in out:
                n += 1
            slug = f"{slug}-{n}"
        out.add(slug)
    return out

LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
link_files = DOC_FILES + ["CONTRIBUTING.md", "DESIGN.md", "ROADMAP.md"]
checked = 0
for path in link_files:
    if not os.path.exists(path):
        continue
    in_fence = False
    for lineno, line in enumerate(open(path), 1):
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for target in LINK.findall(line):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            checked += 1
            ref, _, anchor = target.partition("#")
            dest = os.path.normpath(
                os.path.join(os.path.dirname(path), ref)) if ref else path
            if not os.path.exists(dest):
                failures.append(f"{path}:{lineno}: broken link -> {target}")
                continue
            if anchor and dest.endswith(".md") and anchor not in slugs(dest):
                failures.append(
                    f"{path}:{lineno}: broken anchor -> {target}")
print(f"docs gate: {checked} intra-repo links resolved")

if failures:
    print("docs gate FAILED:", file=sys.stderr)
    print("\n".join(failures), file=sys.stderr)
    sys.exit(1)
EOF

echo "== merge =="
# report_merge validates each report against the schema of base/report.h
# and refuses to write the merged file if any key is missing.
build/tools/report_merge "$OUT" "${reports[@]}"

echo "== consistency checks =="
fail=0
# Every bench mentioned in EXPERIMENTS.md must exist as a benchmark.
for name in $(grep -o 'bench_[a-z0-9_]*' EXPERIMENTS.md | sort -u); do
  if [ ! -f "bench/${name}.cc" ]; then
    echo "EXPERIMENTS.md references nonexistent benchmark: $name" >&2
    fail=1
  fi
done
# Every merged report must have reached a verdict.
python3 - "$OUT" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    merged = json.load(f)
bad = [r["source_file"] for r in merged["reports"] if not r.get("verdict")]
if bad:
    print(f"reports without a verdict: {bad}", file=sys.stderr)
    sys.exit(1)
print(f"{len(merged['reports'])} reports merged, all verdicts present")
EOF
[ "$fail" -eq 0 ] || exit 1

echo "== perf-regression gate =="
# The hot benchmarks below guard the closure engine and the decision
# procedures built on it. Their cpu_ns_per_iter is compared against the
# committed baseline (the HEAD version of BENCH_RESULTS.json — the
# working-tree file was just overwritten by this run). Benchmarks absent
# from the baseline (new in this change) are skipped.
if [ "${RAV_PERF_GATE:-on}" = "off" ]; then
  echo "perf gate skipped (RAV_PERF_GATE=off)"
elif ! git show HEAD:BENCH_RESULTS.json >build/reports/baseline.json \
    2>/dev/null; then
  echo "perf gate skipped (no committed BENCH_RESULTS.json baseline)"
else
  python3 - "$OUT" build/reports/baseline.json \
      "${RAV_PERF_GATE_RATIO:-1.3}" <<'EOF'
import json, sys

HOT_PREFIXES = (
    "BM_ClosureLinear/",
    "BM_ClosureExtendOneCycle/",
    "BM_EmptinessExample5/",
    "BM_EmptinessContradictory/",
    "BM_LrBoundWindowFamily/",
    "BM_ClosureAndColoring/",
    "BM_PumpSweep/",
    "BM_RealizeWitness/",
    "BM_GuardTablesValidate/",
    "BM_GuardTablesRealize/",
)

def cpu_times(path):
    with open(path) as f:
        merged = json.load(f)
    out = {}
    for report in merged["reports"]:
        for b in report["metrics"]["benchmarks"]:
            name = b["name"]
            if name.startswith(HOT_PREFIXES):
                out[name] = b["cpu_ns_per_iter"]
    return out

current = cpu_times(sys.argv[1])
baseline = cpu_times(sys.argv[2])
ratio_limit = float(sys.argv[3])
regressions, compared = [], 0
for name, base_ns in sorted(baseline.items()):
    if name not in current or base_ns <= 0:
        continue
    compared += 1
    ratio = current[name] / base_ns
    if ratio > ratio_limit:
        regressions.append(f"  {name}: {base_ns:.0f} ns -> "
                           f"{current[name]:.0f} ns ({ratio:.2f}x)")
if regressions:
    print(f"perf gate FAILED (> {ratio_limit}x on {len(regressions)} of "
          f"{compared} hot benchmarks):", file=sys.stderr)
    print("\n".join(regressions), file=sys.stderr)
    print("override on a noisy machine with RAV_PERF_GATE=off",
          file=sys.stderr)
    sys.exit(1)
print(f"perf gate passed: {compared} hot benchmarks within "
      f"{ratio_limit}x of the committed baseline")
EOF
fi

echo "== done: $OUT =="
