// report_merge — combines per-run JSON reports into one results file.
//
// Usage:
//   report_merge <output.json> <input.json>...
//
// Each input must be a run report with the schema of base/report.h (the
// files written by `bench_* --report` and `rav_cli ... --report`). Every
// input is validated against kReportRequiredKeys; any schema violation is
// reported with its file name and the merge fails without writing output.
// Duplicate experiment ids across inputs (and, a fortiori, two reports
// for one experiment carrying different claim strings) are a hard error
// for the same reason: the perf-regression gate of tools/run_ci.sh keys
// the committed BENCH_RESULTS.json baseline by experiment, so last-write-
// wins would silently corrupt it. The output is
// `{"schema_version": 1, "reports": [...]}` with the inputs in
// command-line order — this is how BENCH_RESULTS.json is produced (see
// docs/observability.md and tools/run_ci.sh).

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "base/report.h"

namespace rav {
namespace {

int Main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: report_merge <output.json> <input.json>...\n");
    return 2;
  }

  Json merged = Json::Object();
  merged.Set("schema_version", Json::Number(1));
  Json reports = Json::Array();
  // experiment id -> (first source file, claim), for duplicate detection.
  std::map<std::string, std::pair<std::string, std::string>> seen;
  int bad_inputs = 0;
  for (int i = 2; i < argc; ++i) {
    const std::string path = argv[i];
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "report_merge: cannot open %s\n", path.c_str());
      ++bad_inputs;
      continue;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    Result<Json> parsed = Json::Parse(buffer.str());
    if (!parsed.ok()) {
      std::fprintf(stderr, "report_merge: %s: %s\n", path.c_str(),
                   parsed.status().ToString().c_str());
      ++bad_inputs;
      continue;
    }
    Status valid = ValidateReportJson(*parsed);
    if (!valid.ok()) {
      std::fprintf(stderr, "report_merge: %s: %s\n", path.c_str(),
                   valid.ToString().c_str());
      ++bad_inputs;
      continue;
    }
    Json entry = std::move(parsed).value();
    const Json* experiment = entry.Find("experiment");
    const Json* claim = entry.Find("claim");
    // Both exist and are strings — ValidateReportJson just checked.
    const std::string& id = experiment->string_value();
    auto [it, inserted] = seen.emplace(
        id, std::make_pair(path, claim->string_value()));
    if (!inserted) {
      if (it->second.second != claim->string_value()) {
        std::fprintf(stderr,
                     "report_merge: %s: experiment '%s' conflicts with %s — "
                     "same id, different claim:\n  %s\n  vs\n  %s\n",
                     path.c_str(), id.c_str(), it->second.first.c_str(),
                     claim->string_value().c_str(),
                     it->second.second.c_str());
      } else {
        std::fprintf(stderr,
                     "report_merge: %s: duplicate experiment id '%s' "
                     "(already provided by %s) — merging both would let "
                     "one silently shadow the other in the baseline\n",
                     path.c_str(), id.c_str(), it->second.first.c_str());
      }
      ++bad_inputs;
      continue;
    }
    entry.Set("source_file", Json::String(path));
    reports.Append(std::move(entry));
  }
  if (bad_inputs > 0) {
    std::fprintf(stderr, "report_merge: %d invalid input(s), not writing %s\n",
                 bad_inputs, argv[1]);
    return 1;
  }
  merged.Set("reports", std::move(reports));

  std::ofstream out(argv[1]);
  if (!out) {
    std::fprintf(stderr, "report_merge: cannot write %s\n", argv[1]);
    return 1;
  }
  out << merged.Dump(2) << "\n";
  if (!out.good()) {
    std::fprintf(stderr, "report_merge: write to %s failed\n", argv[1]);
    return 1;
  }
  std::printf("report_merge: wrote %zu report(s) to %s\n",
              static_cast<size_t>(argc - 2), argv[1]);
  return 0;
}

}  // namespace
}  // namespace rav

int main(int argc, char** argv) { return rav::Main(argc, argv); }
