#include "automata/regex.h"

#include <cctype>
#include <vector>

namespace rav {

Regex Regex::EmptySet() {
  auto n = std::make_shared<Node>();
  n->op = Op::kEmpty;
  return Regex(std::move(n));
}

Regex Regex::Epsilon() {
  auto n = std::make_shared<Node>();
  n->op = Op::kEpsilon;
  return Regex(std::move(n));
}

Regex Regex::Symbol(int symbol) {
  RAV_CHECK_GE(symbol, 0);
  auto n = std::make_shared<Node>();
  n->op = Op::kSymbol;
  n->symbol = symbol;
  return Regex(std::move(n));
}

Regex Regex::AnySymbol() {
  auto n = std::make_shared<Node>();
  n->op = Op::kAny;
  return Regex(std::move(n));
}

Regex Regex::Concat(Regex a, Regex b) {
  auto n = std::make_shared<Node>();
  n->op = Op::kConcat;
  n->left = std::move(a.node_);
  n->right = std::move(b.node_);
  return Regex(std::move(n));
}

Regex Regex::Union(Regex a, Regex b) {
  auto n = std::make_shared<Node>();
  n->op = Op::kUnion;
  n->left = std::move(a.node_);
  n->right = std::move(b.node_);
  return Regex(std::move(n));
}

Regex Regex::Star(Regex a) {
  auto n = std::make_shared<Node>();
  n->op = Op::kStar;
  n->left = std::move(a.node_);
  return Regex(std::move(n));
}

Regex Regex::Plus(Regex a) {
  Regex copy(a.node_);
  return Concat(std::move(a), Star(std::move(copy)));
}

Regex Regex::Optional(Regex a) { return Union(std::move(a), Epsilon()); }

// ---------------------------------------------------------------------------
// Parser: recursive descent over tokens.

namespace {

struct Token {
  enum class Kind { kIdent, kLParen, kRParen, kBar, kStar, kPlus, kQuestion,
                    kDot, kEnd };
  Kind kind;
  std::string text;
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> tokens;
    size_t i = 0;
    while (i < text_.size()) {
      char c = text_[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      switch (c) {
        case '(':
          tokens.push_back({Token::Kind::kLParen, "("});
          ++i;
          continue;
        case ')':
          tokens.push_back({Token::Kind::kRParen, ")"});
          ++i;
          continue;
        case '|':
          tokens.push_back({Token::Kind::kBar, "|"});
          ++i;
          continue;
        case '*':
          tokens.push_back({Token::Kind::kStar, "*"});
          ++i;
          continue;
        case '+':
          tokens.push_back({Token::Kind::kPlus, "+"});
          ++i;
          continue;
        case '?':
          tokens.push_back({Token::Kind::kQuestion, "?"});
          ++i;
          continue;
        case '.':
          tokens.push_back({Token::Kind::kDot, "."});
          ++i;
          continue;
        default:
          break;
      }
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
        size_t start = i;
        while (i < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[i])) ||
                text_[i] == '_')) {
          ++i;
        }
        tokens.push_back({Token::Kind::kIdent, text_.substr(start, i - start)});
        continue;
      }
      return Status::InvalidArgument(std::string("regex: unexpected char '") +
                                     c + "'");
    }
    tokens.push_back({Token::Kind::kEnd, ""});
    return tokens;
  }

 private:
  const std::string& text_;
};

class Parser {
 public:
  Parser(std::vector<Token> tokens,
         const std::function<int(const std::string&)>& resolve)
      : tokens_(std::move(tokens)), resolve_(resolve) {}

  Result<Regex> Parse() {
    RAV_ASSIGN_OR_RETURN(Regex r, ParseUnion());
    if (Peek().kind != Token::Kind::kEnd) {
      return Status::InvalidArgument("regex: trailing input");
    }
    return r;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  void Advance() { ++pos_; }

  Result<Regex> ParseUnion() {
    RAV_ASSIGN_OR_RETURN(Regex left, ParseConcat());
    while (Peek().kind == Token::Kind::kBar) {
      Advance();
      RAV_ASSIGN_OR_RETURN(Regex right, ParseConcat());
      left = Regex::Union(std::move(left), std::move(right));
    }
    return left;
  }

  bool StartsFactor() const {
    switch (Peek().kind) {
      case Token::Kind::kIdent:
      case Token::Kind::kLParen:
      case Token::Kind::kDot:
        return true;
      default:
        return false;
    }
  }

  Result<Regex> ParseConcat() {
    if (!StartsFactor()) {
      // Empty concatenation denotes ε (e.g. "a|" or "()" are rejected by
      // the factor parser, but an empty alternative is allowed).
      return Regex::Epsilon();
    }
    RAV_ASSIGN_OR_RETURN(Regex left, ParseFactor());
    while (StartsFactor()) {
      RAV_ASSIGN_OR_RETURN(Regex right, ParseFactor());
      left = Regex::Concat(std::move(left), std::move(right));
    }
    return left;
  }

  Result<Regex> ParseFactor() {
    RAV_ASSIGN_OR_RETURN(Regex base, ParseBase());
    while (true) {
      switch (Peek().kind) {
        case Token::Kind::kStar:
          Advance();
          base = Regex::Star(std::move(base));
          continue;
        case Token::Kind::kPlus:
          Advance();
          base = Regex::Plus(std::move(base));
          continue;
        case Token::Kind::kQuestion:
          Advance();
          base = Regex::Optional(std::move(base));
          continue;
        default:
          return base;
      }
    }
  }

  Result<Regex> ParseBase() {
    switch (Peek().kind) {
      case Token::Kind::kLParen: {
        Advance();
        RAV_ASSIGN_OR_RETURN(Regex inner, ParseUnion());
        if (Peek().kind != Token::Kind::kRParen) {
          return Status::InvalidArgument("regex: expected ')'");
        }
        Advance();
        return inner;
      }
      case Token::Kind::kDot:
        Advance();
        return Regex::AnySymbol();
      case Token::Kind::kIdent: {
        std::string name = Peek().text;
        Advance();
        if (name == "_eps") return Regex::Epsilon();
        int symbol = resolve_(name);
        if (symbol < 0) {
          return Status::InvalidArgument("regex: unknown symbol '" + name +
                                         "'");
        }
        return Regex::Symbol(symbol);
      }
      default:
        return Status::InvalidArgument("regex: expected a symbol, '(' or '.'");
    }
  }

  std::vector<Token> tokens_;
  const std::function<int(const std::string&)>& resolve_;
  size_t pos_ = 0;
};

}  // namespace

Result<Regex> Regex::Parse(
    const std::string& text,
    const std::function<int(const std::string&)>& resolve) {
  Lexer lexer(text);
  RAV_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens), resolve);
  return parser.Parse();
}

// ---------------------------------------------------------------------------
// Compilation

std::pair<int, int> Regex::Build(const Node& node, Nfa& nfa) const {
  int start = nfa.AddState();
  int accept = nfa.AddState();
  switch (node.op) {
    case Op::kEmpty:
      break;  // no path from start to accept
    case Op::kEpsilon:
      nfa.AddTransition(start, Nfa::kEpsilon, accept);
      break;
    case Op::kSymbol:
      RAV_CHECK_LT(node.symbol, nfa.alphabet_size());
      nfa.AddTransition(start, node.symbol, accept);
      break;
    case Op::kAny:
      for (int s = 0; s < nfa.alphabet_size(); ++s) {
        nfa.AddTransition(start, s, accept);
      }
      break;
    case Op::kConcat: {
      auto [ls, la] = Build(*node.left, nfa);
      auto [rs, ra] = Build(*node.right, nfa);
      nfa.AddTransition(start, Nfa::kEpsilon, ls);
      nfa.AddTransition(la, Nfa::kEpsilon, rs);
      nfa.AddTransition(ra, Nfa::kEpsilon, accept);
      break;
    }
    case Op::kUnion: {
      auto [ls, la] = Build(*node.left, nfa);
      auto [rs, ra] = Build(*node.right, nfa);
      nfa.AddTransition(start, Nfa::kEpsilon, ls);
      nfa.AddTransition(start, Nfa::kEpsilon, rs);
      nfa.AddTransition(la, Nfa::kEpsilon, accept);
      nfa.AddTransition(ra, Nfa::kEpsilon, accept);
      break;
    }
    case Op::kStar: {
      auto [ls, la] = Build(*node.left, nfa);
      nfa.AddTransition(start, Nfa::kEpsilon, accept);
      nfa.AddTransition(start, Nfa::kEpsilon, ls);
      nfa.AddTransition(la, Nfa::kEpsilon, ls);
      nfa.AddTransition(la, Nfa::kEpsilon, accept);
      break;
    }
  }
  return {start, accept};
}

Nfa Regex::ToNfa(int alphabet_size) const {
  Nfa nfa(alphabet_size);
  auto [start, accept] = Build(*node_, nfa);
  nfa.SetInitial(start);
  nfa.SetAccepting(accept);
  return nfa;
}

Dfa Regex::ToDfa(int alphabet_size) const {
  return ToNfa(alphabet_size).Determinize().Minimize();
}

std::string Regex::ToString(const std::function<std::string(int)>& name) const {
  struct Printer {
    const std::function<std::string(int)>& name;
    std::string Print(const Node& n) {
      switch (n.op) {
        case Op::kEmpty:
          return "∅";
        case Op::kEpsilon:
          return "_eps";
        case Op::kSymbol:
          return name(n.symbol);
        case Op::kAny:
          return ".";
        case Op::kConcat:
          return Print(*n.left) + " " + Print(*n.right);
        case Op::kUnion:
          return "(" + Print(*n.left) + " | " + Print(*n.right) + ")";
        case Op::kStar:
          return "(" + Print(*n.left) + ")*";
      }
      return "?";
    }
  };
  Printer p{name};
  return p.Print(*node_);
}

}  // namespace rav
