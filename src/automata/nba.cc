#include "automata/nba.h"

#include <algorithm>
#include <map>
#include <queue>
#include <tuple>

#include "base/metrics.h"

namespace rav {

int Nba::num_transitions() const {
  int n = 0;
  for (const auto& row : transitions_) n += static_cast<int>(row.size());
  return n;
}

int Nba::AddState() {
  transitions_.emplace_back();
  accepting_.push_back(false);
  return num_states() - 1;
}

void Nba::AddTransition(int from, int symbol, int to) {
  RAV_CHECK_GE(from, 0);
  RAV_CHECK_LT(from, num_states());
  RAV_CHECK_GE(to, 0);
  RAV_CHECK_LT(to, num_states());
  RAV_CHECK_GE(symbol, 0);
  RAV_CHECK_LT(symbol, alphabet_size_);
  transitions_[from].emplace_back(symbol, to);
}

void Nba::SetInitial(int state) {
  RAV_CHECK_GE(state, 0);
  RAV_CHECK_LT(state, num_states());
  initial_.push_back(state);
}

void Nba::SetAccepting(int state, bool accepting) {
  RAV_CHECK_GE(state, 0);
  RAV_CHECK_LT(state, num_states());
  accepting_[state] = accepting;
}

namespace {

// BFS from `sources`; fills parent (state -> (pred state, symbol)) and
// returns the visited flags.
struct BfsResult {
  std::vector<bool> visited;
  std::vector<std::pair<int, int>> parent;  // (pred, symbol), (-1,-1) at roots
};

BfsResult Bfs(const Nba& nba, const std::vector<int>& sources) {
  BfsResult r;
  r.visited.assign(nba.num_states(), false);
  r.parent.assign(nba.num_states(), {-1, -1});
  std::queue<int> q;
  for (int s : sources) {
    if (!r.visited[s]) {
      r.visited[s] = true;
      q.push(s);
    }
  }
  while (!q.empty()) {
    int s = q.front();
    q.pop();
    for (const auto& [symbol, to] : nba.TransitionsFrom(s)) {
      if (!r.visited[to]) {
        r.visited[to] = true;
        r.parent[to] = {s, symbol};
        q.push(to);
      }
    }
  }
  return r;
}

// Reconstructs the symbol path from a BFS root to `target`.
std::vector<int> PathTo(const BfsResult& bfs, int target) {
  std::vector<int> symbols;
  int s = target;
  while (bfs.parent[s].first >= 0) {
    symbols.push_back(bfs.parent[s].second);
    s = bfs.parent[s].first;
  }
  std::reverse(symbols.begin(), symbols.end());
  return symbols;
}

}  // namespace

std::optional<LassoWord> Nba::FindAcceptingLasso() const {
  BfsResult from_init = Bfs(*this, initial_);
  for (int f = 0; f < num_states(); ++f) {
    if (!accepting_[f] || !from_init.visited[f]) continue;
    // Is f on a nontrivial cycle? BFS from the successors of f.
    // Track the first symbol separately so the cycle has length >= 1.
    for (const auto& [symbol, to] : transitions_[f]) {
      if (to == f) {
        // Self-loop.
        LassoWord w;
        w.prefix = PathTo(from_init, f);
        w.cycle = {symbol};
        return w;
      }
    }
    std::vector<int> successors;
    std::vector<int> first_symbol(num_states(), -1);
    for (const auto& [symbol, to] : transitions_[f]) {
      if (first_symbol[to] < 0) {
        first_symbol[to] = symbol;
        successors.push_back(to);
      }
    }
    BfsResult from_succ = Bfs(*this, successors);
    if (from_succ.visited[f]) {
      LassoWord w;
      w.prefix = PathTo(from_init, f);
      std::vector<int> back = PathTo(from_succ, f);
      // Identify which successor the path started from: walk parents.
      int root = f;
      {
        int s = f;
        while (from_succ.parent[s].first >= 0) s = from_succ.parent[s].first;
        root = s;
      }
      w.cycle.push_back(first_symbol[root]);
      w.cycle.insert(w.cycle.end(), back.begin(), back.end());
      return w;
    }
  }
  return std::nullopt;
}

bool Nba::AcceptsLasso(const LassoWord& word) const {
  RAV_CHECK(!word.cycle.empty());
  Nba word_nba = FromLassoWord(alphabet_size_, word);
  return !Intersect(word_nba).IsEmpty();
}

Nba Nba::FromLassoWord(int alphabet_size, const LassoWord& word) {
  Nba nba(alphabet_size);
  int n = static_cast<int>(word.prefix.size() + word.cycle.size());
  for (int i = 0; i < n; ++i) nba.AddState();
  for (int i = 0; i < n; ++i) {
    int symbol = i < static_cast<int>(word.prefix.size())
                     ? word.prefix[i]
                     : word.cycle[i - word.prefix.size()];
    int to = (i + 1 == n) ? static_cast<int>(word.prefix.size()) : i + 1;
    nba.AddTransition(i, symbol, to);
    if (i >= static_cast<int>(word.prefix.size())) nba.SetAccepting(i);
  }
  // If the prefix is empty, position 0 is the cycle start.
  nba.SetInitial(0);
  return nba;
}

const char* LassoEnumStopName(LassoEnumStop stop) {
  switch (stop) {
    case LassoEnumStop::kExhausted:
      return "exhausted";
    case LassoEnumStop::kLengthClipped:
      return "length-clipped";
    case LassoEnumStop::kMaxCount:
      return "lasso-budget";
    case LassoEnumStop::kMaxSteps:
      return "step-budget";
    case LassoEnumStop::kCallbackStopped:
      return "callback-stopped";
  }
  return "unknown";
}

LassoEnumerator::LassoEnumerator(const Nba& nba, size_t max_length,
                                 size_t max_count, size_t max_steps)
    : nba_(nba),
      max_length_(max_length),
      max_count_(max_count),
      max_steps_(max_steps) {}

bool LassoEnumerator::EnterNode(int state) {
  if (++steps_ > max_steps_) {
    steps_capped_ = true;
    done_ = true;
    return false;
  }
  // Close the lasso at every earlier occurrence of `state` that has an
  // accepting state inside the cycle.
  for (size_t t = 0; t + 1 <= path_states_.size(); ++t) {
    if (path_states_[t] != state) continue;
    bool accepting_in_cycle = false;
    for (size_t p = t; p < path_states_.size(); ++p) {
      accepting_in_cycle =
          accepting_in_cycle || nba_.IsAccepting(path_states_[p]);
    }
    if (!accepting_in_cycle) continue;
    LassoWord w;
    w.prefix.assign(path_symbols_.begin(), path_symbols_.begin() + t);
    w.cycle.assign(path_symbols_.begin() + t, path_symbols_.end());
    if (w.cycle.empty()) continue;
    pending_.push_back(std::move(w));
  }
  if (path_symbols_.size() >= max_length_) {
    // Paths cut here could have closed longer lassos: the enumeration is
    // no longer exhaustive (unless the node is a dead end anyway).
    if (!nba_.TransitionsFrom(state).empty()) length_clipped_ = true;
    return false;
  }
  // Prune: a state needs at most 3 visits on a path to expose every
  // lasso shape up to the length bound (prefix pass + two cycle passes).
  int occurrences = 0;
  for (int s : path_states_) occurrences += (s == state);
  if (occurrences >= 3) return false;
  path_states_.push_back(state);
  stack_.push_back(Frame{state, 0});
  return true;
}

void LassoEnumerator::Step() {
  if (!stack_.empty()) {
    Frame& frame = stack_.back();
    const auto& edges = nba_.TransitionsFrom(frame.state);
    if (frame.next_edge < edges.size()) {
      auto [symbol, to] = edges[frame.next_edge++];
      path_symbols_.push_back(symbol);
      if (!EnterNode(to)) {
        if (done_) return;  // step budget: freeze everything as-is
        path_symbols_.pop_back();
      }
      return;
    }
    stack_.pop_back();
    path_states_.pop_back();
    // Pop the symbol of the edge that led here (roots have none).
    if (!stack_.empty()) path_symbols_.pop_back();
    return;
  }
  if (init_index_ < nba_.initial().size()) {
    EnterNode(nba_.initial()[init_index_++]);
    return;
  }
  done_ = true;
}

bool LassoEnumerator::Next(LassoWord* out, size_t* index) {
  if (delivered_ >= max_count_) return false;
  while (pending_head_ >= pending_.size() && !done_) Step();
  if (pending_head_ >= pending_.size()) return false;
  *out = std::move(pending_[pending_head_++]);
  *index = delivered_++;
  if (pending_head_ >= pending_.size()) {
    pending_.clear();
    pending_head_ = 0;
  }
  if (delivered_ >= max_count_) {
    // Count cap reached; unless the DFS had already finished cleanly with
    // nothing left pending, more candidates may exist.
    if (!(done_ && !steps_capped_ && pending_.empty())) count_capped_ = true;
    done_ = true;
  }
  return true;
}

LassoEnumStop LassoEnumerator::stop() const {
  if (steps_capped_) return LassoEnumStop::kMaxSteps;
  if (count_capped_) return LassoEnumStop::kMaxCount;
  if (length_clipped_) return LassoEnumStop::kLengthClipped;
  return LassoEnumStop::kExhausted;
}

size_t Nba::EnumerateAcceptingLassos(
    size_t max_length, size_t max_count,
    const std::function<bool(const LassoWord&)>& callback,
    size_t max_steps) const {
  return EnumerateAcceptingLassosEx(max_length, max_count, callback,
                                    max_steps)
      .delivered;
}

Nba::EnumerationStats Nba::EnumerateAcceptingLassosEx(
    size_t max_length, size_t max_count,
    const std::function<bool(const LassoWord&)>& callback,
    size_t max_steps) const {
  LassoEnumerator enumerator(*this, max_length, max_count, max_steps);
  EnumerationStats stats;
  LassoWord word;
  size_t index = 0;
  bool callback_stopped = false;
  while (enumerator.Next(&word, &index)) {
    if (!callback(word)) {
      callback_stopped = true;
      break;
    }
  }
  stats.delivered = enumerator.delivered();
  stats.steps = enumerator.steps();
  stats.stop =
      callback_stopped ? LassoEnumStop::kCallbackStopped : enumerator.stop();
  return stats;
}

Nba Nba::Intersect(const Nba& other) const {
  RAV_CHECK_EQ(alphabet_size_, other.alphabet_size_);
  GeneralizedNba product(alphabet_size_, 2);
  std::map<std::pair<int, int>, int> ids;
  std::vector<std::pair<int, int>> pairs;
  std::queue<int> work;
  auto intern = [&](int a, int b) {
    auto key = std::make_pair(a, b);
    auto it = ids.find(key);
    if (it != ids.end()) return it->second;
    int id = product.AddState();
    ids.emplace(key, id);
    pairs.push_back(key);
    if (accepting_[a]) product.AddToAcceptSet(0, id);
    if (other.accepting_[b]) product.AddToAcceptSet(1, id);
    work.push(id);
    return id;
  };
  for (int a : initial_) {
    for (int b : other.initial_) {
      product.SetInitial(intern(a, b));
    }
  }
  while (!work.empty()) {
    int id = work.front();
    work.pop();
    auto [a, b] = pairs[id];
    for (const auto& [symbol, ta] : transitions_[a]) {
      for (const auto& [symbol_b, tb] : other.transitions_[b]) {
        if (symbol_b != symbol) continue;
        int to = intern(ta, tb);
        product.AddTransition(id, symbol, to);
      }
    }
  }
  RAV_METRIC_COUNT("automata/intersect/products", 1);
  RAV_METRIC_RECORD("automata/intersect/product_states", product.num_states());
  return product.Degeneralize();
}

Nba Nba::Union(const Nba& other) const {
  RAV_CHECK_EQ(alphabet_size_, other.alphabet_size_);
  Nba out(alphabet_size_);
  for (int s = 0; s < num_states(); ++s) {
    out.AddState();
    out.SetAccepting(s, accepting_[s]);
  }
  int offset = num_states();
  for (int s = 0; s < other.num_states(); ++s) {
    out.AddState();
    out.SetAccepting(offset + s, other.accepting_[s]);
  }
  for (int s = 0; s < num_states(); ++s) {
    for (const auto& [symbol, to] : transitions_[s]) {
      out.AddTransition(s, symbol, to);
    }
  }
  for (int s = 0; s < other.num_states(); ++s) {
    for (const auto& [symbol, to] : other.transitions_[s]) {
      out.AddTransition(offset + s, symbol, offset + to);
    }
  }
  for (int s : initial_) out.SetInitial(s);
  for (int s : other.initial_) out.SetInitial(offset + s);
  return out;
}

// ---------------------------------------------------------------------------
// GeneralizedNba

int GeneralizedNba::AddState() {
  transitions_.emplace_back();
  for (auto& set : in_accept_set_) set.push_back(false);
  return num_states() - 1;
}

void GeneralizedNba::AddTransition(int from, int symbol, int to) {
  RAV_CHECK_GE(from, 0);
  RAV_CHECK_LT(from, num_states());
  RAV_CHECK_GE(to, 0);
  RAV_CHECK_LT(to, num_states());
  RAV_CHECK_GE(symbol, 0);
  RAV_CHECK_LT(symbol, alphabet_size_);
  transitions_[from].emplace_back(symbol, to);
}

void GeneralizedNba::AddToAcceptSet(int set_index, int state) {
  RAV_CHECK_GE(set_index, 0);
  RAV_CHECK_LT(set_index, num_accept_sets_);
  in_accept_set_[set_index][state] = true;
}

Nba GeneralizedNba::Degeneralize() const {
  const int k = std::max(num_accept_sets_, 1);
  // With zero accept sets every run accepts: treat as one set containing
  // every state.
  auto in_set = [&](int set, int state) {
    if (num_accept_sets_ == 0) return true;
    return static_cast<bool>(in_accept_set_[set][state]);
  };

  Nba out(alphabet_size_);
  const int n = num_states();
  // State (q, i) has id q * k + i.
  for (int q = 0; q < n; ++q) {
    for (int i = 0; i < k; ++i) {
      int id = out.AddState();
      RAV_CHECK_EQ(id, q * k + i);
      if (i == 0 && in_set(0, q)) out.SetAccepting(id);
    }
  }
  for (int q = 0; q < n; ++q) {
    for (int i = 0; i < k; ++i) {
      int next_i = in_set(i, q) ? (i + 1) % k : i;
      for (const auto& [symbol, to] : transitions_[q]) {
        out.AddTransition(q * k + i, symbol, to * k + next_i);
      }
    }
  }
  for (int q : initial_) out.SetInitial(q * k + 0);
  RAV_METRIC_COUNT("automata/degeneralize/constructions", 1);
  RAV_METRIC_RECORD("automata/degeneralize/states", out.num_states());
  return out;
}

}  // namespace rav
