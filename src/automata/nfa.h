#ifndef RAV_AUTOMATA_NFA_H_
#define RAV_AUTOMATA_NFA_H_

#include <vector>

#include "base/bitset.h"
#include "base/logging.h"

namespace rav {

class Dfa;

// Nondeterministic finite automaton over a dense integer alphabet
// [0, alphabet_size), with ε-transitions (symbol kEpsilon). Used as the
// compilation target of regular expressions over automaton states.
class Nfa {
 public:
  static constexpr int kEpsilon = -1;

  explicit Nfa(int alphabet_size) : alphabet_size_(alphabet_size) {
    RAV_CHECK_GE(alphabet_size, 0);
  }

  int alphabet_size() const { return alphabet_size_; }
  int num_states() const { return static_cast<int>(transitions_.size()); }

  // Adds a state; returns its id.
  int AddState();

  // Adds a transition on `symbol` (kEpsilon allowed).
  void AddTransition(int from, int symbol, int to);

  void SetInitial(int state) { initial_.push_back(state); }
  void SetAccepting(int state, bool accepting = true);

  const std::vector<int>& initial() const { return initial_; }
  bool IsAccepting(int state) const { return accepting_[state]; }

  // All (symbol, target) pairs leaving `state` (ε included).
  const std::vector<std::pair<int, int>>& TransitionsFrom(int state) const {
    return transitions_[state];
  }

  // ε-closure of a state set.
  Bitset EpsilonClosure(const Bitset& states) const;

  // The state set reached from `states` by one `symbol` step followed by
  // ε-closure.
  Bitset Step(const Bitset& states, int symbol) const;

  // Word membership (for tests).
  bool Accepts(const std::vector<int>& word) const;

  // Subset construction; the result is complete (has a sink if needed).
  Dfa Determinize() const;

 private:
  int alphabet_size_;
  std::vector<std::vector<std::pair<int, int>>> transitions_;
  std::vector<bool> accepting_;
  std::vector<int> initial_;
};

}  // namespace rav

#endif  // RAV_AUTOMATA_NFA_H_
