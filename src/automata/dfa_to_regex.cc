#include "automata/dfa_to_regex.h"

#include <vector>

#include "base/logging.h"

namespace rav {

namespace {

// Regex-string algebra for the elimination. nullopt = empty set.
using Expr = std::optional<std::string>;

Expr Union(const Expr& a, const Expr& b) {
  if (!a.has_value()) return b;
  if (!b.has_value()) return a;
  if (*a == *b) return a;
  return "(" + *a + " | " + *b + ")";
}

Expr Concat(const Expr& a, const Expr& b) {
  if (!a.has_value() || !b.has_value()) return std::nullopt;
  if (*a == "_eps") return b;
  if (*b == "_eps") return a;
  return "(" + *a + " " + *b + ")";
}

Expr Star(const Expr& a) {
  if (!a.has_value() || *a == "_eps") return std::string("_eps");
  return "(" + *a + ")*";
}

}  // namespace

std::optional<std::string> DfaToRegexString(
    const Dfa& dfa, const std::function<std::string(int)>& symbol_name) {
  Dfa min = dfa.Minimize();
  const int n = min.num_states();
  // GNFA nodes: 0 = new start, 1..n = DFA states, n+1 = new accept.
  const int start = 0;
  const int accept = n + 1;
  std::vector<std::vector<Expr>> edge(n + 2, std::vector<Expr>(n + 2));
  edge[start][min.initial() + 1] = std::string("_eps");
  for (int s = 0; s < n; ++s) {
    for (int a = 0; a < min.alphabet_size(); ++a) {
      edge[s + 1][min.Next(s, a) + 1] =
          Union(edge[s + 1][min.Next(s, a) + 1], symbol_name(a));
    }
    if (min.IsAccepting(s)) edge[s + 1][accept] = std::string("_eps");
  }

  // Eliminate the interior nodes one by one.
  std::vector<bool> eliminated(n + 2, false);
  for (int victim = 1; victim <= n; ++victim) {
    eliminated[victim] = true;
    Expr loop = Star(edge[victim][victim]);
    for (int i = 0; i < n + 2; ++i) {
      if (eliminated[i] && i != victim) continue;
      if (i == victim) continue;
      if (!edge[i][victim].has_value()) continue;
      for (int j = 0; j < n + 2; ++j) {
        if ((eliminated[j] && j != victim) || j == victim) continue;
        if (!edge[victim][j].has_value()) continue;
        edge[i][j] = Union(
            edge[i][j], Concat(Concat(edge[i][victim], loop), edge[victim][j]));
      }
    }
  }
  return edge[start][accept];
}

}  // namespace rav
