#ifndef RAV_AUTOMATA_COMPLEMENT_H_
#define RAV_AUTOMATA_COMPLEMENT_H_

#include "automata/nba.h"
#include "base/governor.h"
#include "base/status.h"

namespace rav {

// Rank-based complementation of nondeterministic Büchi automata
// (Kupferman–Vardi): the complement tracks level rankings of the run DAG;
// a word is in the complement iff some ranking decreases along every path
// and traps accepting states at odd ranks. State space O((2n)^n) — this
// is for the small automata arising from state traces and constraints,
// with an explicit state budget.
//
// Used to decide ω-language inclusion and equivalence, e.g. to validate
// that transformations (pruning, state-driven form) preserve the
// SControl languages the paper's results are stated over.
//
// The governor (nullptr = unlimited) is polled once per expanded
// rank-state and charged the bytes of every interned one — the rank-state
// set is exactly where the O((2n)^n) blowup lives — so a deadline, memory
// budget, or cancellation stops the construction with ResourceExhausted
// within one state expansion.
Result<Nba> ComplementNba(const Nba& nba, size_t max_states = 200000,
                          const ExecutionGovernor* governor = nullptr);

// L(a) ⊆ L(b), via emptiness of a ∩ complement(b).
Result<bool> NbaLanguageIncluded(const Nba& a, const Nba& b,
                                 size_t max_states = 200000,
                                 const ExecutionGovernor* governor = nullptr);

// L(a) = L(b).
Result<bool> NbaLanguageEquivalent(
    const Nba& a, const Nba& b, size_t max_states = 200000,
    const ExecutionGovernor* governor = nullptr);

}  // namespace rav

#endif  // RAV_AUTOMATA_COMPLEMENT_H_
