#ifndef RAV_AUTOMATA_DFA_H_
#define RAV_AUTOMATA_DFA_H_

#include <vector>

#include "base/logging.h"

namespace rav {

// Deterministic finite automaton over a dense integer alphabet. Always
// complete: every state has a successor on every symbol. DFAs are the
// compiled form of the paper's global-constraint regular expressions
// (e=ᵢⱼ, e≠ᵢⱼ over the states Q of an automaton).
class Dfa {
 public:
  Dfa(int alphabet_size, int num_states, int initial)
      : alphabet_size_(alphabet_size),
        initial_(initial),
        next_(num_states, std::vector<int>(alphabet_size, 0)),
        accepting_(num_states, false) {
    RAV_CHECK_GE(alphabet_size, 0);
    RAV_CHECK_GT(num_states, 0);
    RAV_CHECK_GE(initial, 0);
    RAV_CHECK_LT(initial, num_states);
  }

  int alphabet_size() const { return alphabet_size_; }
  int num_states() const { return static_cast<int>(next_.size()); }
  int initial() const { return initial_; }

  void SetTransition(int from, int symbol, int to) {
    RAV_CHECK_GE(to, 0);
    RAV_CHECK_LT(to, num_states());
    next_[from][symbol] = to;
  }
  int Next(int state, int symbol) const {
    RAV_CHECK_GE(symbol, 0);
    RAV_CHECK_LT(symbol, alphabet_size_);
    return next_[state][symbol];
  }
  // Unchecked transition row of `state` (`alphabet_size()` entries), for
  // loops that have validated their symbols up front.
  const int* NextRow(int state) const { return next_[state].data(); }

  void SetAccepting(int state, bool accepting = true) {
    accepting_[state] = accepting;
  }
  bool IsAccepting(int state) const { return accepting_[state]; }

  // Runs the DFA on `word` from the initial state.
  int Run(const std::vector<int>& word) const;
  bool Accepts(const std::vector<int>& word) const {
    return accepting_[Run(word)];
  }

  // Language complement (flip accepting; DFA is complete).
  Dfa Complement() const;

  // Product automaton accepting the intersection of the languages.
  Dfa Intersect(const Dfa& other) const;

  // Hopcroft-style (Moore refinement) minimization. The result is the
  // canonical minimal complete DFA of the language (up to state order).
  Dfa Minimize() const;

  // True iff the language is empty.
  bool IsEmptyLanguage() const;

  // Per-state coreachability: entry s is true iff an accepting state is
  // reachable from s (including s itself). A run entering a non-coreachable
  // state can never accept again — the constraint-closure sweep uses this
  // to drop dead DFA runs early.
  std::vector<bool> CoreachableStates() const;

  // True iff both DFAs accept the same language (via minimized product
  // difference check).
  bool EquivalentTo(const Dfa& other) const;

 private:
  int alphabet_size_;
  int initial_;
  std::vector<std::vector<int>> next_;
  std::vector<bool> accepting_;
};

}  // namespace rav

#endif  // RAV_AUTOMATA_DFA_H_
