#ifndef RAV_AUTOMATA_NBA_H_
#define RAV_AUTOMATA_NBA_H_

#include <functional>
#include <optional>
#include <vector>

#include "automata/dfa.h"
#include "automata/lasso.h"
#include "base/logging.h"

namespace rav {

// Why a bounded lasso enumeration ended. Only kExhausted makes a negative
// result ("no enumerated lasso satisfied the caller") definitive; every
// other reason means candidates may exist beyond the point reached.
enum class LassoEnumStop {
  kExhausted = 0,      // full space within the bounds explored, nothing cut
  kLengthClipped = 1,  // some DFS paths were cut at the length bound
  kMaxCount = 2,       // stopped after delivering max_count lassos
  kMaxSteps = 3,       // stopped by the step budget
  kCallbackStopped = 4,  // the callback requested a stop (witness found)
};

// Stable human-readable name ("exhausted", "length-clipped", ...).
const char* LassoEnumStopName(LassoEnumStop stop);

// Nondeterministic Büchi automaton over a dense integer alphabet, with
// state-based acceptance: a run is accepting iff it visits an accepting
// state infinitely often. NBAs represent the ω-regular envelopes the paper
// works with: SControl(A), LTL properties, and position selectors.
class Nba {
 public:
  explicit Nba(int alphabet_size) : alphabet_size_(alphabet_size) {
    RAV_CHECK_GE(alphabet_size, 0);
  }

  int alphabet_size() const { return alphabet_size_; }
  int num_states() const { return static_cast<int>(transitions_.size()); }
  int num_transitions() const;

  int AddState();
  void AddTransition(int from, int symbol, int to);
  void SetInitial(int state);
  void SetAccepting(int state, bool accepting = true);

  const std::vector<int>& initial() const { return initial_; }
  bool IsAccepting(int state) const { return accepting_[state]; }
  // (symbol, target) pairs leaving `state`.
  const std::vector<std::pair<int, int>>& TransitionsFrom(int state) const {
    return transitions_[state];
  }

  // Emptiness check with witness: returns an accepting lasso word, or
  // nullopt iff the language is empty.
  std::optional<LassoWord> FindAcceptingLasso() const;
  bool IsEmpty() const { return !FindAcceptingLasso().has_value(); }

  // Membership of the ultimately periodic word u·v^ω.
  bool AcceptsLasso(const LassoWord& word) const;

  // Language intersection (generalized-Büchi product, degeneralized).
  Nba Intersect(const Nba& other) const;

  // Language union (disjoint sum).
  Nba Union(const Nba& other) const;

  // Lifts a DFA to the NBA accepting { w ∈ Σ^ω : every finite prefix of w
  // stays... } — not a language operation we need; instead we provide:
  // the NBA accepting (L(dfa) ∩ Σ^+)^ω-ish is nontrivial, so we only
  // expose the word-lasso automaton below.

  // The single-word NBA accepting exactly {u·v^ω}.
  static Nba FromLassoWord(int alphabet_size, const LassoWord& word);

  // Enumerates accepting lassos (paths q0 →u f-cycle) of total length
  // (prefix + cycle) at most `max_length`, delivering at most `max_count`
  // to `callback` (return false to stop). The enumeration is a bounded
  // DFS: it finds every accepting lasso word up to the length bound but
  // may deliver the same ω-word under several decompositions. Returns the
  // number delivered. Used by the decision procedures that must test
  // many candidate lassos for data-consistency, not just one.
  // `max_steps` bounds the total DFS node expansions (the path space is
  // exponential in max_length; the budget keeps worst cases tractable).
  size_t EnumerateAcceptingLassos(
      size_t max_length, size_t max_count,
      const std::function<bool(const LassoWord&)>& callback,
      size_t max_steps = 2000000) const;

  // As above, but also reports why the enumeration stopped — callers that
  // turn "no lasso passed" into a verdict must distinguish an exhausted
  // space (definitive) from an exhausted budget (bound-relative).
  struct EnumerationStats {
    size_t delivered = 0;
    size_t steps = 0;
    LassoEnumStop stop = LassoEnumStop::kExhausted;
  };
  EnumerationStats EnumerateAcceptingLassosEx(
      size_t max_length, size_t max_count,
      const std::function<bool(const LassoWord&)>& callback,
      size_t max_steps = 2000000) const;

 private:
  int alphabet_size_;
  std::vector<std::vector<std::pair<int, int>>> transitions_;
  std::vector<bool> accepting_;
  std::vector<int> initial_;
};

// Resumable, pull-style counterpart of Nba::EnumerateAcceptingLassos: the
// same bounded DFS, paused between lassos so a consumer (in particular the
// parallel lasso-search engine) can drain candidates in batches. Each
// delivered lasso carries its 0-based enumeration rank; ranks are the
// deterministic tie-breaker of the parallel search. The enumerator borrows
// `nba`, which must outlive it.
class LassoEnumerator {
 public:
  LassoEnumerator(const Nba& nba, size_t max_length, size_t max_count,
                  size_t max_steps);

  // Produces the next accepting lasso and its enumeration rank. Returns
  // false when the enumeration has ended; `stop()` then says why.
  bool Next(LassoWord* out, size_t* index);

  // Why the enumeration ended (meaningful once Next returned false; while
  // lassos are still being produced it reflects the state so far).
  LassoEnumStop stop() const;

  size_t delivered() const { return delivered_; }
  size_t steps() const { return steps_; }

 private:
  struct Frame {
    int state;
    size_t next_edge;
  };

  // Runs one DFS micro-step (node entry or frame retirement).
  void Step();
  // Entry processing of `state`: charges a step, emits cycle closings into
  // pending_, and either opens a frame (returns true) or prunes.
  bool EnterNode(int state);

  const Nba& nba_;
  size_t max_length_;
  size_t max_count_;
  size_t max_steps_;
  std::vector<Frame> stack_;
  std::vector<int> path_states_;
  std::vector<int> path_symbols_;
  std::vector<LassoWord> pending_;  // closings of the current node, FIFO
  size_t pending_head_ = 0;
  size_t init_index_ = 0;
  size_t delivered_ = 0;
  size_t steps_ = 0;
  bool done_ = false;
  bool steps_capped_ = false;
  bool count_capped_ = false;
  bool length_clipped_ = false;
};

// Generalized Büchi automaton: acceptance requires visiting each of
// `num_accept_sets` sets infinitely often. Used as the intermediate form
// of the LTL tableau translation and of NBA intersection.
class GeneralizedNba {
 public:
  GeneralizedNba(int alphabet_size, int num_accept_sets)
      : alphabet_size_(alphabet_size), num_accept_sets_(num_accept_sets) {
    RAV_CHECK_GE(num_accept_sets, 0);
    in_accept_set_.resize(num_accept_sets > 0 ? num_accept_sets : 1);
  }

  int alphabet_size() const { return alphabet_size_; }
  int num_states() const { return static_cast<int>(transitions_.size()); }
  int num_accept_sets() const { return num_accept_sets_; }

  int AddState();
  void AddTransition(int from, int symbol, int to);
  void SetInitial(int state) { initial_.push_back(state); }
  void AddToAcceptSet(int set_index, int state);

  // Counter construction: states (q, i); the counter advances past set i
  // when the current state belongs to set i; acceptance = (·, 0) states in
  // set 0. With zero accept sets every run is accepting (one dummy set of
  // all states is used).
  Nba Degeneralize() const;

 private:
  int alphabet_size_;
  int num_accept_sets_;
  std::vector<std::vector<std::pair<int, int>>> transitions_;
  std::vector<std::vector<bool>> in_accept_set_;  // [set][state]
  std::vector<int> initial_;
};

}  // namespace rav

#endif  // RAV_AUTOMATA_NBA_H_
