#ifndef RAV_AUTOMATA_DFA_TO_REGEX_H_
#define RAV_AUTOMATA_DFA_TO_REGEX_H_

#include <functional>
#include <optional>
#include <string>

#include "automata/dfa.h"

namespace rav {

// Converts a DFA back to a regular expression in the library's concrete
// syntax (see Regex), with `symbol_name` supplying the token for each
// alphabet symbol. Returns nullopt for the empty language.
//
// Classic GNFA state elimination; the result can be exponentially larger
// than the DFA but round-trips: parsing it and compiling to a DFA yields
// an equivalent automaton. Used to serialize the DFA-backed global
// constraints of extended automata into the text format.
std::optional<std::string> DfaToRegexString(
    const Dfa& dfa, const std::function<std::string(int)>& symbol_name);

}  // namespace rav

#endif  // RAV_AUTOMATA_DFA_TO_REGEX_H_
