#ifndef RAV_AUTOMATA_REGEX_H_
#define RAV_AUTOMATA_REGEX_H_

#include <functional>
#include <memory>
#include <string>

#include "automata/dfa.h"
#include "automata/nfa.h"
#include "base/status.h"

namespace rav {

// Regular expressions over a dense integer alphabet. In this library the
// alphabet is always the state set Q of a register automaton: the paper's
// global constraints e=ᵢⱼ / e≠ᵢⱼ are regular expressions over Q matched
// against factors q_n ... q_m of the state trace.
//
// Concrete syntax accepted by Parse (symbols are whitespace- or
// juxtaposition-separated identifiers, resolved by the caller):
//   e  :=  e '|' e   — union
//        | e e       — concatenation
//        | e '*'     — Kleene star
//        | e '+'     — one or more
//        | e '?'     — optional
//        | '(' e ')'
//        | ident     — one alphabet symbol (e.g. a state name)
//        | '.'       — any single alphabet symbol
//        | '_eps'    — the empty word
// Example: "p1 p2* p1" is the constraint expression of Example 5.
class Regex {
 public:
  // --- Programmatic constructors ---
  static Regex EmptySet();
  static Regex Epsilon();
  static Regex Symbol(int symbol);
  static Regex AnySymbol();
  static Regex Concat(Regex a, Regex b);
  static Regex Union(Regex a, Regex b);
  static Regex Star(Regex a);
  static Regex Plus(Regex a);
  static Regex Optional(Regex a);

  // Parses the concrete syntax; `resolve` maps identifiers to symbols and
  // returns a negative value for unknown identifiers.
  static Result<Regex> Parse(
      const std::string& text,
      const std::function<int(const std::string&)>& resolve);

  // Thompson construction.
  Nfa ToNfa(int alphabet_size) const;
  // Determinized and minimized.
  Dfa ToDfa(int alphabet_size) const;

  // Renders with `name` supplying symbol names.
  std::string ToString(const std::function<std::string(int)>& name) const;

 private:
  enum class Op { kEmpty, kEpsilon, kSymbol, kAny, kConcat, kUnion, kStar };

  struct Node {
    Op op;
    int symbol = -1;
    std::shared_ptr<const Node> left;
    std::shared_ptr<const Node> right;
  };

  explicit Regex(std::shared_ptr<const Node> node) : node_(std::move(node)) {}

  // Recursive Thompson construction helper; returns (start, accept).
  std::pair<int, int> Build(const Node& node, Nfa& nfa) const;

  std::shared_ptr<const Node> node_;
};

}  // namespace rav

#endif  // RAV_AUTOMATA_REGEX_H_
