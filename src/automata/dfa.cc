#include "automata/dfa.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <queue>

namespace rav {

int Dfa::Run(const std::vector<int>& word) const {
  int state = initial_;
  for (int symbol : word) state = Next(state, symbol);
  return state;
}

Dfa Dfa::Complement() const {
  Dfa out = *this;
  for (int s = 0; s < num_states(); ++s) out.accepting_[s] = !accepting_[s];
  return out;
}

Dfa Dfa::Intersect(const Dfa& other) const {
  RAV_CHECK_EQ(alphabet_size_, other.alphabet_size_);
  // Product over reachable pairs only.
  std::map<std::pair<int, int>, int> ids;
  std::vector<std::pair<int, int>> pairs;
  auto intern = [&](int a, int b) {
    auto key = std::make_pair(a, b);
    auto it = ids.find(key);
    if (it != ids.end()) return it->second;
    int id = static_cast<int>(pairs.size());
    ids.emplace(key, id);
    pairs.push_back(key);
    return id;
  };
  intern(initial_, other.initial_);
  std::vector<std::vector<int>> table;
  for (size_t i = 0; i < pairs.size(); ++i) {
    auto [a, b] = pairs[i];
    std::vector<int> row(alphabet_size_);
    for (int symbol = 0; symbol < alphabet_size_; ++symbol) {
      row[symbol] = intern(Next(a, symbol), other.Next(b, symbol));
    }
    table.push_back(std::move(row));
  }
  Dfa out(alphabet_size_, static_cast<int>(pairs.size()), 0);
  for (size_t s = 0; s < pairs.size(); ++s) {
    for (int symbol = 0; symbol < alphabet_size_; ++symbol) {
      out.SetTransition(static_cast<int>(s), symbol, table[s][symbol]);
    }
    out.SetAccepting(static_cast<int>(s), accepting_[pairs[s].first] &&
                                              other.accepting_[pairs[s].second]);
  }
  return out;
}

Dfa Dfa::Minimize() const {
  const int n = num_states();
  // Restrict to reachable states first.
  std::vector<int> reach_id(n, -1);
  std::vector<int> order;
  {
    std::queue<int> q;
    q.push(initial_);
    reach_id[initial_] = 0;
    order.push_back(initial_);
    while (!q.empty()) {
      int s = q.front();
      q.pop();
      for (int symbol = 0; symbol < alphabet_size_; ++symbol) {
        int t = next_[s][symbol];
        if (reach_id[t] < 0) {
          reach_id[t] = static_cast<int>(order.size());
          order.push_back(t);
          q.push(t);
        }
      }
    }
  }
  const int m = static_cast<int>(order.size());

  // Moore partition refinement on the reachable sub-automaton.
  std::vector<int> block(m);
  for (int i = 0; i < m; ++i) block[i] = accepting_[order[i]] ? 1 : 0;
  int num_blocks = 2;
  // Degenerate case: all states same acceptance.
  {
    bool any_acc = false, any_rej = false;
    for (int i = 0; i < m; ++i) {
      (accepting_[order[i]] ? any_acc : any_rej) = true;
    }
    if (!any_acc || !any_rej) {
      std::fill(block.begin(), block.end(), 0);
      num_blocks = 1;
    }
  }
  while (true) {
    // Signature of each state: (block, successor blocks).
    std::map<std::vector<int>, int> sig_ids;
    std::vector<int> new_block(m);
    for (int i = 0; i < m; ++i) {
      std::vector<int> sig;
      sig.reserve(alphabet_size_ + 1);
      sig.push_back(block[i]);
      for (int symbol = 0; symbol < alphabet_size_; ++symbol) {
        sig.push_back(block[reach_id[next_[order[i]][symbol]]]);
      }
      auto it =
          sig_ids.emplace(std::move(sig), static_cast<int>(sig_ids.size()))
              .first;
      new_block[i] = it->second;
    }
    if (static_cast<int>(sig_ids.size()) == num_blocks) break;
    num_blocks = static_cast<int>(sig_ids.size());
    block = std::move(new_block);
  }

  Dfa out(alphabet_size_, num_blocks, block[0]);
  for (int i = 0; i < m; ++i) {
    int b = block[i];
    for (int symbol = 0; symbol < alphabet_size_; ++symbol) {
      out.SetTransition(b, symbol, block[reach_id[next_[order[i]][symbol]]]);
    }
    out.SetAccepting(b, accepting_[order[i]]);
  }
  return out;
}

bool Dfa::IsEmptyLanguage() const {
  std::vector<bool> visited(num_states(), false);
  std::queue<int> q;
  q.push(initial_);
  visited[initial_] = true;
  while (!q.empty()) {
    int s = q.front();
    q.pop();
    if (accepting_[s]) return false;
    for (int symbol = 0; symbol < alphabet_size_; ++symbol) {
      int t = next_[s][symbol];
      if (!visited[t]) {
        visited[t] = true;
        q.push(t);
      }
    }
  }
  return true;
}

std::vector<bool> Dfa::CoreachableStates() const {
  // Reverse BFS from the accepting states.
  std::vector<std::vector<int>> reverse(num_states());
  for (int s = 0; s < num_states(); ++s) {
    for (int symbol = 0; symbol < alphabet_size_; ++symbol) {
      reverse[next_[s][symbol]].push_back(s);
    }
  }
  std::vector<bool> coreachable(num_states(), false);
  std::queue<int> q;
  for (int s = 0; s < num_states(); ++s) {
    if (accepting_[s]) {
      coreachable[s] = true;
      q.push(s);
    }
  }
  while (!q.empty()) {
    int s = q.front();
    q.pop();
    for (int p : reverse[s]) {
      if (!coreachable[p]) {
        coreachable[p] = true;
        q.push(p);
      }
    }
  }
  return coreachable;
}

bool Dfa::EquivalentTo(const Dfa& other) const {
  RAV_CHECK_EQ(alphabet_size_, other.alphabet_size_);
  // L1 \ L2 and L2 \ L1 both empty.
  return Intersect(other.Complement()).IsEmptyLanguage() &&
         other.Intersect(Complement()).IsEmptyLanguage();
}

}  // namespace rav
