#include "automata/complement.h"

#include <map>
#include <queue>
#include <vector>

namespace rav {

namespace {

// A complement state: the level ranking (rank per A-state, -1 = absent)
// plus the owing set O (states whose path must still visit an odd rank
// before the breakpoint resets).
struct RankState {
  std::vector<int> rank;
  std::vector<bool> owing;
  auto operator<=>(const RankState&) const = default;
};

}  // namespace

Result<Nba> ComplementNba(const Nba& nba, size_t max_states,
                          const ExecutionGovernor* governor) {
  const int n = nba.num_states();
  const int max_rank = 2 * std::max(n, 1);
  // Every interned rank-state stays charged until the construction
  // returns — the interning map is where the exponential blowup lives.
  ScopedMemoryCharge states_charge(governor);
  const size_t bytes_per_state =
      sizeof(RankState) + static_cast<size_t>(n) * (sizeof(int) + 1) +
      64;  // map-node overhead, approximate

  // Successors per (state, symbol).
  std::vector<std::vector<std::vector<int>>> successors(
      n, std::vector<std::vector<int>>(nba.alphabet_size()));
  for (int s = 0; s < n; ++s) {
    for (const auto& [symbol, to] : nba.TransitionsFrom(s)) {
      successors[s][symbol].push_back(to);
    }
  }

  Nba out(nba.alphabet_size());
  std::map<RankState, int> ids;
  std::vector<RankState> states;
  std::queue<int> work;
  auto intern = [&](const RankState& rs) -> Result<int> {
    auto it = ids.find(rs);
    if (it != ids.end()) return it->second;
    if (states.size() >= max_states) {
      return Status::ResourceExhausted(
          "ComplementNba: rank-state budget exceeded");
    }
    int id = out.AddState();
    ids.emplace(rs, id);
    states.push_back(rs);
    states_charge.Add(bytes_per_state);
    // Accepting iff the owing set is empty (a breakpoint).
    bool owes = false;
    for (int s = 0; s < n; ++s) owes = owes || rs.owing[s];
    out.SetAccepting(id, !owes);
    work.push(id);
    return id;
  };

  // Initial state: the A-initial states ranked 2n, nothing owing.
  {
    RankState init;
    init.rank.assign(n, -1);
    init.owing.assign(n, false);
    for (int q : nba.initial()) init.rank[q] = max_rank;
    RAV_ASSIGN_OR_RETURN(int id, intern(init));
    out.SetInitial(id);
  }

  // Expansion: for each alive state and symbol, every successor must take
  // a rank ≤ its predecessor's (accepting successors: an even rank). We
  // enumerate all "tight enough" successor rankings by assigning, per
  // alive successor, any allowed rank ≤ the max over its predecessors.
  while (!work.empty()) {
    RAV_RETURN_IF_ERROR(GovernorCheckStatus(governor, "ComplementNba"));
    int from_id = work.front();
    work.pop();
    RankState current = states[from_id];
    for (int symbol = 0; symbol < nba.alphabet_size(); ++symbol) {
      // Alive successors with their rank caps: the ranking must be
      // non-increasing along every DAG edge, so a successor's rank is
      // capped by the MINIMUM over its alive predecessors.
      std::vector<int> cap(n, -1);
      for (int s = 0; s < n; ++s) {
        if (current.rank[s] < 0) continue;
        for (int t : successors[s][symbol]) {
          cap[t] = cap[t] < 0 ? current.rank[s]
                              : std::min(cap[t], current.rank[s]);
        }
      }
      std::vector<int> alive;
      for (int t = 0; t < n; ++t) {
        if (cap[t] >= 0) alive.push_back(t);
      }
      // If no A-state is alive, the complement accepts everything from
      // here: a dedicated all-accepting sink (empty ranking, not owing).
      // Enumerate rankings over the alive set.
      std::vector<int> choice(alive.size(), 0);
      auto rank_options = [&](int t) {
        std::vector<int> options;
        for (int r = 0; r <= cap[t]; ++r) {
          if (nba.IsAccepting(t) && (r % 2 == 1)) continue;
          options.push_back(r);
        }
        return options;
      };
      std::vector<std::vector<int>> options;
      options.reserve(alive.size());
      bool infeasible = false;
      for (int t : alive) {
        options.push_back(rank_options(t));
        if (options.back().empty()) infeasible = true;
      }
      if (infeasible) continue;
      while (true) {
        RankState next;
        next.rank.assign(n, -1);
        next.owing.assign(n, false);
        for (size_t i = 0; i < alive.size(); ++i) {
          next.rank[alive[i]] = options[i][choice[i]];
        }
        // Owing-set update (breakpoint construction): if the current
        // owing set is empty, restart with all even-ranked alive states;
        // otherwise carry the even-ranked successors of owing states.
        bool current_owes = false;
        for (int s = 0; s < n; ++s) current_owes |= current.owing[s];
        for (size_t i = 0; i < alive.size(); ++i) {
          int t = alive[i];
          if (next.rank[t] % 2 != 0) continue;
          if (!current_owes) {
            next.owing[t] = true;
          } else {
            // t owes if it has an owing predecessor.
            for (int s = 0; s < n && !next.owing[t]; ++s) {
              if (!current.owing[s] || current.rank[s] < 0) continue;
              for (int t2 : successors[s][symbol]) {
                if (t2 == t) {
                  next.owing[t] = true;
                  break;
                }
              }
            }
          }
        }
        RAV_ASSIGN_OR_RETURN(int to_id, intern(next));
        out.AddTransition(from_id, symbol, to_id);
        // Advance the odometer.
        size_t i = 0;
        while (i < choice.size() &&
               choice[i] + 1 == static_cast<int>(options[i].size())) {
          choice[i] = 0;
          ++i;
        }
        if (i == choice.size()) break;
        ++choice[i];
      }
    }
  }
  return out;
}

Result<bool> NbaLanguageIncluded(const Nba& a, const Nba& b,
                                 size_t max_states,
                                 const ExecutionGovernor* governor) {
  RAV_ASSIGN_OR_RETURN(Nba not_b, ComplementNba(b, max_states, governor));
  return a.Intersect(not_b).IsEmpty();
}

Result<bool> NbaLanguageEquivalent(const Nba& a, const Nba& b,
                                   size_t max_states,
                                   const ExecutionGovernor* governor) {
  RAV_ASSIGN_OR_RETURN(bool ab,
                       NbaLanguageIncluded(a, b, max_states, governor));
  if (!ab) return false;
  return NbaLanguageIncluded(b, a, max_states, governor);
}

}  // namespace rav
