#ifndef RAV_AUTOMATA_LASSO_H_
#define RAV_AUTOMATA_LASSO_H_

#include <string>
#include <vector>

#include "base/logging.h"

namespace rav {

// An ultimately periodic ω-word u·v^ω over an integer alphabet: `prefix`
// is u and `cycle` is v (nonempty for a genuine ω-word). Lassos are the
// universal currency of the library's decision procedures: Büchi emptiness
// returns them, run checkers consume them, and the constraint closures of
// Theorems 9/13/24 are computed on their pumped unrollings.
struct LassoWord {
  std::vector<int> prefix;
  std::vector<int> cycle;

  // The symbol at position n of u·v^ω.
  int SymbolAt(size_t n) const {
    if (n < prefix.size()) return prefix[n];
    RAV_CHECK(!cycle.empty());
    return cycle[(n - prefix.size()) % cycle.size()];
  }

  // The first `n` symbols, materialized.
  std::vector<int> Unroll(size_t n) const {
    std::vector<int> out;
    out.reserve(n);
    for (size_t i = 0; i < n; ++i) out.push_back(SymbolAt(i));
    return out;
  }

  // An equivalent lasso whose cycle is repeated `times` times (same
  // ω-word, longer period representation).
  LassoWord PumpCycle(size_t times) const;

  // The canonical decomposition of the same ω-word: the cycle reduced to
  // its primitive root, then the prefix/cycle boundary rolled as far left
  // as possible. Two lassos denote the same ω-word iff their canonical
  // forms are equal — the interning key of the shared-visited search mode.
  LassoWord Canonicalized() const;

  // Positions p ≥ prefix.size() with (p - prefix.size()) % cycle.size()
  // == (q - prefix.size()) % cycle.size() carry the same symbol; this
  // returns the canonical position (< prefix.size() + cycle.size()) of n.
  size_t CanonicalPosition(size_t n) const {
    if (n < prefix.size()) return n;
    RAV_CHECK(!cycle.empty());
    return prefix.size() + (n - prefix.size()) % cycle.size();
  }

  size_t period_start() const { return prefix.size(); }
  size_t period() const { return cycle.size(); }

  bool operator==(const LassoWord&) const = default;

  std::string ToString() const;
};

}  // namespace rav

#endif  // RAV_AUTOMATA_LASSO_H_
