#include "automata/nfa.h"

#include <unordered_map>

#include "automata/dfa.h"

namespace rav {

int Nfa::AddState() {
  transitions_.emplace_back();
  accepting_.push_back(false);
  return num_states() - 1;
}

void Nfa::AddTransition(int from, int symbol, int to) {
  RAV_CHECK_GE(from, 0);
  RAV_CHECK_LT(from, num_states());
  RAV_CHECK_GE(to, 0);
  RAV_CHECK_LT(to, num_states());
  RAV_CHECK_GE(symbol, kEpsilon);
  RAV_CHECK_LT(symbol, alphabet_size_);
  transitions_[from].emplace_back(symbol, to);
}

void Nfa::SetAccepting(int state, bool accepting) {
  RAV_CHECK_GE(state, 0);
  RAV_CHECK_LT(state, num_states());
  accepting_[state] = accepting;
}

Bitset Nfa::EpsilonClosure(const Bitset& states) const {
  Bitset closure = states;
  std::vector<size_t> stack;
  closure.ForEach([&](size_t s) { stack.push_back(s); });
  while (!stack.empty()) {
    size_t s = stack.back();
    stack.pop_back();
    for (const auto& [symbol, to] : transitions_[s]) {
      if (symbol == kEpsilon && !closure.Test(to)) {
        closure.Set(to);
        stack.push_back(to);
      }
    }
  }
  return closure;
}

Bitset Nfa::Step(const Bitset& states, int symbol) const {
  Bitset next(num_states());
  states.ForEach([&](size_t s) {
    for (const auto& [sym, to] : transitions_[s]) {
      if (sym == symbol) next.Set(to);
    }
  });
  return EpsilonClosure(next);
}

bool Nfa::Accepts(const std::vector<int>& word) const {
  Bitset current(num_states());
  for (int s : initial_) current.Set(s);
  current = EpsilonClosure(current);
  for (int symbol : word) current = Step(current, symbol);
  bool accepted = false;
  current.ForEach([&](size_t s) { accepted = accepted || accepting_[s]; });
  return accepted;
}

Dfa Nfa::Determinize() const {
  Bitset start(num_states());
  for (int s : initial_) start.Set(s);
  start = EpsilonClosure(start);

  std::unordered_map<Bitset, int, Bitset::Hasher> ids;
  std::vector<Bitset> sets;
  auto intern = [&](const Bitset& set) {
    auto it = ids.find(set);
    if (it != ids.end()) return it->second;
    int id = static_cast<int>(sets.size());
    ids.emplace(set, id);
    sets.push_back(set);
    return id;
  };

  intern(start);
  std::vector<std::vector<int>> table;
  std::vector<bool> accepting;
  for (size_t i = 0; i < sets.size(); ++i) {
    Bitset current = sets[i];  // copy: sets may grow below
    std::vector<int> row(alphabet_size_);
    for (int symbol = 0; symbol < alphabet_size_; ++symbol) {
      row[symbol] = intern(Step(current, symbol));
    }
    table.push_back(std::move(row));
    bool acc = false;
    current.ForEach([&](size_t s) { acc = acc || accepting_[s]; });
    accepting.push_back(acc);
  }

  Dfa dfa(alphabet_size_, static_cast<int>(table.size()), 0);
  for (size_t s = 0; s < table.size(); ++s) {
    for (int symbol = 0; symbol < alphabet_size_; ++symbol) {
      dfa.SetTransition(static_cast<int>(s), symbol, table[s][symbol]);
    }
    dfa.SetAccepting(static_cast<int>(s), accepting[s]);
  }
  return dfa;
}

}  // namespace rav
