#include "automata/lasso.h"

#include <sstream>

namespace rav {

LassoWord LassoWord::PumpCycle(size_t times) const {
  RAV_CHECK_GE(times, 1u);
  LassoWord out;
  out.prefix = prefix;
  out.cycle.reserve(cycle.size() * times);
  for (size_t i = 0; i < times; ++i) {
    out.cycle.insert(out.cycle.end(), cycle.begin(), cycle.end());
  }
  return out;
}

std::string LassoWord::ToString() const {
  std::ostringstream out;
  for (int s : prefix) out << s << " ";
  out << "(";
  for (size_t i = 0; i < cycle.size(); ++i) {
    if (i > 0) out << " ";
    out << cycle[i];
  }
  out << ")^ω";
  return out.str();
}

}  // namespace rav
