#include "automata/lasso.h"

#include <sstream>

namespace rav {

LassoWord LassoWord::PumpCycle(size_t times) const {
  RAV_CHECK_GE(times, 1u);
  LassoWord out;
  out.prefix = prefix;
  out.cycle.reserve(cycle.size() * times);
  for (size_t i = 0; i < times; ++i) {
    out.cycle.insert(out.cycle.end(), cycle.begin(), cycle.end());
  }
  return out;
}

LassoWord LassoWord::Canonicalized() const {
  RAV_CHECK(!cycle.empty());
  LassoWord out = *this;
  // Reduce the cycle to its primitive root: the shortest d dividing the
  // period with cycle == (cycle[0..d))^{period/d}.
  for (size_t d = 1; d <= out.cycle.size() / 2; ++d) {
    if (out.cycle.size() % d != 0) continue;
    bool periodic = true;
    for (size_t i = d; i < out.cycle.size() && periodic; ++i) {
      periodic = out.cycle[i] == out.cycle[i - d];
    }
    if (periodic) {
      out.cycle.resize(d);
      break;
    }
  }
  // Roll the boundary left: while the prefix ends with the cycle's last
  // symbol, that symbol can be absorbed by rotating the cycle right.
  while (!out.prefix.empty() && out.prefix.back() == out.cycle.back()) {
    out.cycle.pop_back();
    out.cycle.insert(out.cycle.begin(), out.prefix.back());
    out.prefix.pop_back();
  }
  return out;
}

std::string LassoWord::ToString() const {
  std::ostringstream out;
  for (int s : prefix) out << s << " ";
  out << "(";
  for (size_t i = 0; i < cycle.size(); ++i) {
    if (i > 0) out << " ";
    out << cycle[i];
  }
  out << ")^ω";
  return out.str();
}

}  // namespace rav
