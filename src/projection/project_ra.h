#ifndef RAV_PROJECTION_PROJECT_RA_H_
#define RAV_PROJECTION_PROJECT_RA_H_

#include "base/status.h"
#include "era/extended_automaton.h"
#include "projection/lemma21.h"
#include "ra/register_automaton.h"

namespace rav {

// Statistics of the Proposition 20 construction (benchmark E9).
struct Prop20Stats {
  int original_states = 0;
  int original_transitions = 0;
  int completed_transitions = 0;
  int state_driven_states = 0;
  int num_constraints = 0;
  int max_constraint_dfa_states = 0;
};

// Proposition 20 (the "only if" half of Theorem 19): the projection of a
// register automaton A (no database) onto its first m registers, as an
// LR-bounded extended register automaton 𝒜 with
// Reg(𝒜) = Π_m(Reg(A)).
//
// Pipeline: complete A (exponential in the worst case, budgeted), make it
// state-driven, derive the e=ᵢⱼ / e≠ᵢⱼ expressions of Lemma 21 as DFAs,
// restrict every transition type to the first m registers, and attach the
// constraints for visible register pairs. The result is LR-bounded with
// vertex-cover bound at most k (the proof of Proposition 20).
Result<ExtendedAutomaton> ProjectRegisterAutomaton(
    const RegisterAutomaton& automaton, int m, Prop20Stats* stats = nullptr,
    size_t max_completed_transitions = 1u << 20);

}  // namespace rav

#endif  // RAV_PROJECTION_PROJECT_RA_H_
