#ifndef RAV_PROJECTION_LR_BOUNDED_H_
#define RAV_PROJECTION_LR_BOUNDED_H_

#include <vector>

#include "base/status.h"
#include "era/constraint_graph.h"
#include "era/extended_automaton.h"
#include "era/parallel_search.h"
#include "ra/control.h"

namespace rav {

// LR-boundedness (Definition 15): an extended automaton is LR-bounded if
// some N bounds, over every control trace w and position h, the vertex
// cover of the graph G^w_h whose edges connect inequality-related classes
// lying entirely left of h to classes entirely right of h.
//
// Theorem 18 decides this with MSO + bounding quantifiers; this module
// implements the effective sampled counterpart: enumerate consistent
// control lassos, compute the exact minimum vertex cover of G^w_h for
// every cut h of a pumped window (the graph is bipartite by construction,
// so König's theorem applies: min cover = max matching), and report both
// the largest cover seen and whether the cover keeps growing when the
// window is pumped further — growth is the signature of a non-LR-bounded
// automaton (Examples 16/17), stability the signature of a bounded one.

struct LrBoundOptions {
  size_t max_lassos = 64;
  size_t max_lasso_length = 8;
  size_t max_search_steps = 200000;
  // Window sizes (in cycle pumps) compared for growth detection; 0 = auto
  // (scaled to twice the largest constraint DFA so that every constraint
  // span fits inside the smaller window).
  size_t pump_small = 0;
  size_t pump_large = 0;
  // Worker threads measuring lasso covers (<= 1 = inline serial, 0 = all
  // hardware threads). The per-lasso aggregation (max / or) is
  // commutative, so the result is identical for every setting.
  int num_workers = kDefaultSearchWorkers;
  size_t batch_size = 16;
  // Work-sharing mode of the sampler (see SearchMode). kSharedVisited
  // measures each distinct ω-word once, at its canonical decomposition;
  // because measurement windows scale with the cycle length, the sampled
  // aggregates can differ slightly from partitioned mode, which measures
  // duplicate decompositions at their delivered (pumped) cycles.
  SearchMode search_mode = SearchMode::kPartitioned;
  // Run analysis::AnalyzeAndStrip first and sample the reduced automaton.
  // Dead structure carries no control lassos, so the estimate is
  // unchanged; the sampler just stops wading through it.
  bool analyze_and_strip = true;
  // Transition-count floor for the StripEffort::kFlow tier; below it the
  // strip runs at kFast (see EraEmptinessOptions for the rationale).
  int min_flow_strip_transitions = 64;
  // Resource governor (nullptr = unlimited): polled by the sampling
  // engine per candidate and charged each candidate's closures. On a trip
  // the estimate covers the lassos sampled so far and search_truncated is
  // set.
  const ExecutionGovernor* governor = nullptr;
};

struct LrBoundResult {
  // Largest min-vertex-cover observed over all sampled (w, h) at the
  // small pump — the best lower bound for the true N.
  int max_cover = 0;
  // True if some lasso's max cover strictly grew between the two pump
  // sizes: evidence that no N exists.
  bool growth_detected = false;
  size_t lassos_examined = 0;
  // True iff the lasso sampling stopped on a budget rather than after
  // exhausting its bounded space: the verdict then covers only the
  // sampled lassos. Derived from stats.stop_reason.
  bool search_truncated = false;
  // Instrumentation of the lasso sampling, including the stop reason.
  SearchStats stats;
};

// Samples control lassos of the automaton (consistent ones only) and
// measures G^w_h vertex covers. Requires no database (empty relational
// signature), matching Section 5's setting.
Result<LrBoundResult> EstimateLrBound(const ExtendedAutomaton& era,
                                      const ControlAlphabet& alphabet,
                                      const LrBoundOptions& options = {});

// The exact maximum over cuts h of the minimum vertex cover of G^w_h for
// one lasso at one window size. Exposed for tests and benchmarks.
int MaxCutVertexCover(const ExtendedAutomaton& era,
                      const ControlAlphabet& alphabet, const LassoWord& lasso,
                      size_t window);

// Same measurement on a prebuilt closure (window = closure.window()), so
// callers comparing several window sizes of one lasso can grow a single
// closure with ExtendedBy instead of rebuilding. Returns -1 if the
// closure is inconsistent.
int MaxCutVertexCoverOfClosure(const ConstraintClosure& closure);

// Minimum vertex cover of a bipartite graph given as edges between left
// ids [0, n_left) and right ids [0, n_right), via maximum matching
// (König). Exposed for tests.
int BipartiteMinVertexCover(int n_left, int n_right,
                            const std::vector<std::pair<int, int>>& edges);

}  // namespace rav

#endif  // RAV_PROJECTION_LR_BOUNDED_H_
