#ifndef RAV_PROJECTION_LEMMA21_H_
#define RAV_PROJECTION_LEMMA21_H_

#include <vector>

#include "automata/dfa.h"
#include "base/status.h"
#include "ra/register_automaton.h"

namespace rav {

// Lemma 21 of the paper: for a complete, state-driven register automaton A
// (no relations in the schema), there are regular expressions e=ᵢⱼ and
// e≠ᵢⱼ over the state alphabet such that for every state trace w and
// positions a ≤ b:
//   (a,i) ~_w (b,j)     iff   w[a..b] ∈ e=ᵢⱼ
//   [(a,i)] ≠_w [(b,j)] iff   w[a..b] ∈ e≠ᵢⱼ
//
// The construction is the subset automaton sketched in the paper's proof:
// while scanning positions a..b the automaton tracks
//   S — the registers whose current value equals the value of register i
//       at position a (the "equal" wavefront), and
//   D — the registers whose current value is forced distinct from it
//       (seeded by disequalities against S, propagated by equalities).
// Because the automaton is state-driven, each state q determines the type
// fired at its position, so the propagation step is a function of the
// symbol read. Completeness makes the forced (in)equalities total, which
// is what localizes the characterization to the factor w[a..b].
class PropagationAutomata {
 public:
  // Requires a state-driven automaton. Completeness is needed for the
  // exactness of the characterization (Lemma 21); without it the DFAs
  // compute the explicitly-forced (in)equalities, which is the relation
  // the non-complete constructions (Theorem 13, Theorem 24) consume.
  // Relational literals are ignored: only the equality structure matters.
  static Result<PropagationAutomata> Build(const RegisterAutomaton& a);

  int num_registers() const { return k_; }

  // DFA over the state alphabet accepting {w[a..b] : (a,i) ~ (b,j)}.
  const Dfa& EqualityDfa(int i, int j) const {
    return eq_dfas_[i * k_ + j];
  }
  // DFA accepting {w[a..b] : [(a,i)] ≠ [(b,j)]}.
  const Dfa& InequalityDfa(int i, int j) const {
    return neq_dfas_[i * k_ + j];
  }

  // Total DFA states across all 2k² automata before minimization — the
  // Lemma 21 size statistic of benchmark E9.
  int raw_states_per_source() const { return raw_states_per_source_; }

 private:
  PropagationAutomata() = default;

  int k_ = 0;
  int raw_states_per_source_ = 0;
  std::vector<Dfa> eq_dfas_;   // [i * k + j]
  std::vector<Dfa> neq_dfas_;  // [i * k + j]
};

}  // namespace rav

#endif  // RAV_PROJECTION_LEMMA21_H_
