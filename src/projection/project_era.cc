#include "projection/project_era.h"

#include <cstdint>
#include <set>
#include <vector>

#include "base/flat_map.h"
#include "base/hash.h"
#include "era/prop6.h"
#include "ra/transform.h"
#include "types/type.h"

namespace rav {

namespace {

// A pending Σ-inequality edge whose source value is being traced forward
// ("case B" of the header comment): the constraint DFA state reached so
// far and the set of registers currently holding the source value.
struct PendingEdge {
  int dfa_state = 0;
  uint64_t carriers = 0;
  auto operator<=>(const PendingEdge&) const = default;
};

// Composition-automaton state for one source register i.
struct CompositionState {
  uint64_t equal = 0;     // slots equal to the source value
  uint64_t distinct = 0;  // slots forced distinct from it
  int prev_state = -1;
  // Per constraint: DFA states of runs seeded at source-connected
  // positions ("case A"), as a bitmask.
  std::vector<uint32_t> case_a;
  // Per constraint: pending case-B edges.
  std::vector<std::vector<PendingEdge>> case_b;
  auto operator<=>(const CompositionState&) const = default;
};

struct CompositionStateHash {
  size_t operator()(const CompositionState& cs) const {
    size_t seed = 0;
    HashCombineValue(seed, cs.equal);
    HashCombineValue(seed, cs.distinct);
    HashCombineValue(seed, cs.prev_state);
    for (uint32_t mask : cs.case_a) HashCombineValue(seed, mask);
    for (const auto& edges : cs.case_b) {
      HashCombine(seed, edges.size());
      for (const PendingEdge& e : edges) {
        HashCombineValue(seed, e.dfa_state);
        HashCombineValue(seed, e.carriers);
      }
    }
    return seed;
  }
};

}  // namespace

Result<ExtendedAutomaton> ProjectExtendedAutomaton(
    const ExtendedAutomaton& era, int m, Theorem13Stats* stats,
    const Theorem13Options& options) {
  if (era.automaton().schema().num_relations() > 0) {
    return Status::InvalidArgument(
        "ProjectExtendedAutomaton: Theorem 13 applies to automata without "
        "a database");
  }
  if (m < 0 || m > era.automaton().num_registers()) {
    return Status::InvalidArgument("ProjectExtendedAutomaton: bad m");
  }

  // Step 1: compile away global equality constraints (Proposition 6).
  const ExtendedAutomaton* working = &era;
  std::optional<ExtendedAutomaton> without_eq;
  if (era.has_equality_constraints()) {
    Prop6Options prop6_options;
    prop6_options.max_states = options.max_prop6_states;
    prop6_options.max_transitions = options.max_prop6_transitions;
    RAV_ASSIGN_OR_RETURN(
        ExtendedAutomaton eliminated,
        EliminateEqualityConstraints(era, nullptr, prop6_options));
    without_eq = std::move(eliminated);
    working = &*without_eq;
  }

  // Step 2: state-driven form (with frontier-dead transitions pruned, per
  // the consistency assumption in the proof of Theorem 13), lifting the
  // (inequality) constraints.
  std::vector<StateId> origin_of;
  RegisterAutomaton sd = PruneFrontierIncompatibleTransitions(
      MakeStateDriven(working->automaton(), &origin_of));
  ExtendedAutomaton sd_era(std::move(sd));
  {
    const RegisterAutomaton& sd_ref = sd_era.automaton();
    for (const GlobalConstraint& c : working->constraints()) {
      Dfa lifted(sd_ref.num_states(), c.dfa.num_states(), c.dfa.initial());
      for (int s = 0; s < c.dfa.num_states(); ++s) {
        lifted.SetAccepting(s, c.dfa.IsAccepting(s));
        for (StateId q : sd_ref.States()) {
          lifted.SetTransition(s, q.value(),
                               c.dfa.Next(s, origin_of[q.value()].value()));
        }
      }
      RAV_RETURN_IF_ERROR(
          sd_era.AddConstraintDfa(RegisterPair{c.i, c.j}, c.is_equality,
                                  std::move(lifted), c.description));
    }
  }
  const RegisterAutomaton& a = sd_era.automaton();
  const int k = a.num_registers();
  const int num_constants = a.schema().num_constants();
  const int slots = k + num_constants;
  if (slots > 60) {
    return Status::ResourceExhausted(
        "ProjectExtendedAutomaton: too many registers for the bitmask "
        "encoding");
  }
  const std::vector<GlobalConstraint>& constraints = sd_era.constraints();
  const size_t nc = constraints.size();

  // The unique guard per state.
  const Type trivial(2 * k, num_constants);
  std::vector<const Type*> guard_of(a.num_states(), &trivial);
  for (int ti = 0; ti < a.num_transitions(); ++ti) {
    guard_of[a.transition(ti).from.value()] = &a.transition(ti).guard;
  }
  auto x_elem = [&](int slot) {
    return slot < k ? slot : 2 * k + (slot - k);
  };
  auto y_elem = [&](int slot) {
    return slot < k ? k + slot : 2 * k + (slot - k);
  };

  // Propagates a carrier set across the guard of `prev` (registers only;
  // constant slots persist).
  auto propagate = [&](uint64_t set, const Type& g) {
    uint64_t out = 0;
    for (int s = k; s < slots; ++s) {
      if ((set >> s) & 1) out |= uint64_t{1} << s;
    }
    for (int mreg = 0; mreg < slots; ++mreg) {
      for (int l = 0; l < slots; ++l) {
        if (!((set >> l) & 1)) continue;
        if (g.AreEqual(x_elem(l), y_elem(mreg))) {
          out |= uint64_t{1} << mreg;
          break;
        }
      }
    }
    return out;
  };

  // Closes the equal wavefront under the x̄-side equalities of the guard
  // fired at the current position (the automaton need not be complete, so
  // the current position's own type can force equalities the previous
  // type's ȳ-side did not mention).
  auto close_equal = [&](uint64_t equal, const Type& g) {
    uint64_t out = equal;
    for (int mreg = 0; mreg < slots; ++mreg) {
      for (int l = 0; l < slots; ++l) {
        if (((equal >> l) & 1) && g.AreEqual(x_elem(l), x_elem(mreg))) {
          out |= uint64_t{1} << mreg;
          break;
        }
      }
    }
    return out;
  };
  // Closes the distinct set: x̄-side equalities spread distinctness, and
  // x̄-side disequalities against the wavefront add to it.
  auto close_distinct = [&](uint64_t distinct, uint64_t equal,
                            const Type& g) {
    uint64_t out = distinct;
    for (int mreg = 0; mreg < slots; ++mreg) {
      bool d = false;
      for (int l = 0; l < slots && !d; ++l) {
        if (((distinct >> l) & 1) && g.AreEqual(x_elem(l), x_elem(mreg))) {
          d = true;
        }
        if (((equal >> l) & 1) && g.AreDistinct(x_elem(l), x_elem(mreg))) {
          d = true;
        }
      }
      if (d) out |= uint64_t{1} << mreg;
    }
    return out & ~equal;
  };

  // Builds the successor composition state when reading symbol q; start
  // states pass prev < 0 (seed from the x̄-part of q's own guard).
  auto step = [&](const CompositionState* current,
                  StateId q) -> CompositionState {
    CompositionState next;
    next.prev_state = q.value();
    next.case_a.assign(nc, 0);
    next.case_b.assign(nc, {});
    if (current == nullptr) {
      return next;  // caller fills equal/distinct for the seed
    }
    const Type& g = *guard_of[current->prev_state];
    const Type& g_here = *guard_of[q.value()];
    // (i) equal wavefront, (ii) distinct set.
    next.equal = close_equal(propagate(current->equal, g), g_here);
    for (int mreg = 0; mreg < slots; ++mreg) {
      bool distinct = false;
      for (int l = 0; l < slots && !distinct; ++l) {
        bool l_eq = (current->equal >> l) & 1;
        bool l_neq = (current->distinct >> l) & 1;
        if (l_eq && g.AreDistinct(x_elem(l), y_elem(mreg))) distinct = true;
        if (l_neq && g.AreEqual(x_elem(l), y_elem(mreg))) distinct = true;
      }
      if (distinct && !((next.equal >> mreg) & 1)) {
        next.distinct |= uint64_t{1} << mreg;
      }
    }
    // (iii) advance the constraint runs.
    for (size_t c = 0; c < nc; ++c) {
      const Dfa& dfa = constraints[c].dfa;
      for (int s = 0; s < dfa.num_states(); ++s) {
        if (!((current->case_a[c] >> s) & 1)) continue;
        int s2 = dfa.Next(s, q.value());
        next.case_a[c] |= uint32_t{1} << s2;
        if (dfa.IsAccepting(s2)) {
          // Edge (seed, current): target register distinct from source.
          if (!((next.equal >> constraints[c].j.value()) & 1)) {
            next.distinct |= uint64_t{1} << constraints[c].j.value();
          }
        }
      }
      std::set<PendingEdge> dedup;
      for (const PendingEdge& e : current->case_b[c]) {
        uint64_t carriers = propagate(e.carriers, g);
        if (carriers == 0) continue;  // source value died
        int s2 = dfa.Next(e.dfa_state, q.value());
        if (dfa.IsAccepting(s2) &&
            ((next.equal >> constraints[c].j.value()) & 1)) {
          // Edge fires into the wavefront: carriers are distinct.
          next.distinct |= carriers & ~next.equal;
        }
        dedup.insert(PendingEdge{s2, carriers});
      }
      next.case_b[c].assign(dedup.begin(), dedup.end());
    }
    return next;
  };

  // Seeds the constraint runs for the current position (after
  // equal/distinct are final).
  auto seed = [&](CompositionState& st, StateId q) {
    for (size_t c = 0; c < nc; ++c) {
      const Dfa& dfa = constraints[c].dfa;
      int s0 = dfa.Next(dfa.initial(), q.value());
      int src = constraints[c].i.value();
      int dst = constraints[c].j.value();
      if ((st.equal >> src) & 1) {
        st.case_a[c] |= uint32_t{1} << s0;
        if (dfa.IsAccepting(s0) && !((st.equal >> dst) & 1)) {
          st.distinct |= uint64_t{1} << dst;
        }
      }
      PendingEdge e{s0, uint64_t{1} << src};
      if (dfa.IsAccepting(s0) && ((st.equal >> dst) & 1) &&
          !((st.equal >> src) & 1)) {
        st.distinct |= uint64_t{1} << src;
      }
      bool present = false;
      for (const PendingEdge& existing : st.case_b[c]) {
        present = present || existing == e;
      }
      if (!present) st.case_b[c].push_back(e);
    }
    // Keep case_b canonical (sorted).
    for (auto& edges : st.case_b) {
      std::sort(edges.begin(), edges.end());
    }
    // Final intra-position closure: constraint accepts may have marked a
    // register distinct whose x̄-equal siblings must follow.
    st.distinct = close_distinct(st.distinct, st.equal, *guard_of[q.value()]);
  };

  // --- Build the composed DFAs per source register i < m ---
  std::vector<Dfa> eq_dfas;
  std::vector<Dfa> neq_dfas;
  int max_dfa = 0;
  for (int i = 0; i < m; ++i) {
    // Interned composition states; ids shift by 1 (start state = 0).
    FlatIdMap<CompositionState, CompositionStateHash> ids;
    std::vector<std::vector<int>> table;
    auto intern = [&](const CompositionState& cs) -> Result<int> {
      auto [id, inserted] = ids.Intern(cs);
      if (inserted &&
          static_cast<size_t>(id) >= options.max_composition_states) {
        return Status::ResourceExhausted(
            "ProjectExtendedAutomaton: composition state budget exceeded");
      }
      return id + 1;
    };

    std::vector<int> start_row(a.num_states());
    for (StateId q : a.States()) {
      const Type& g = *guard_of[q.value()];
      CompositionState st = step(nullptr, q);
      for (int slot = 0; slot < slots; ++slot) {
        if (g.AreEqual(x_elem(i), x_elem(slot))) {
          st.equal |= uint64_t{1} << slot;
        } else if (g.AreDistinct(x_elem(i), x_elem(slot))) {
          st.distinct |= uint64_t{1} << slot;
        }
      }
      seed(st, q);
      RAV_ASSIGN_OR_RETURN(int id, intern(st));
      start_row[q.value()] = id;
    }
    for (size_t index = 0; index < ids.size(); ++index) {
      CompositionState current = ids.KeyOf(static_cast<int>(index));
      std::vector<int> row(a.num_states());
      for (StateId q : a.States()) {
        CompositionState st = step(&current, q);
        seed(st, q);
        RAV_ASSIGN_OR_RETURN(int id, intern(st));
        row[q.value()] = id;
      }
      table.push_back(std::move(row));
    }

    const int n = static_cast<int>(ids.size()) + 1;
    for (int j = 0; j < m; ++j) {
      Dfa eq(a.num_states(), n, 0);
      Dfa neq(a.num_states(), n, 0);
      for (StateId q : a.States()) {
        eq.SetTransition(0, q.value(), start_row[q.value()]);
        neq.SetTransition(0, q.value(), start_row[q.value()]);
      }
      for (size_t s = 0; s < ids.size(); ++s) {
        const CompositionState& state = ids.KeyOf(static_cast<int>(s));
        for (StateId q : a.States()) {
          eq.SetTransition(static_cast<int>(s) + 1, q.value(),
                           table[s][q.value()]);
          neq.SetTransition(static_cast<int>(s) + 1, q.value(),
                            table[s][q.value()]);
        }
        eq.SetAccepting(static_cast<int>(s) + 1, (state.equal >> j) & 1);
        neq.SetAccepting(static_cast<int>(s) + 1, (state.distinct >> j) & 1);
      }
      eq_dfas.push_back(eq.Minimize());
      neq_dfas.push_back(neq.Minimize());
    }
  }

  // --- Assemble the projected automaton ---
  RegisterAutomaton projected(m, a.schema());
  for (StateId s : a.States()) {
    StateId id = projected.AddState(a.state_name(s));
    RAV_CHECK_EQ(id.value(), s.value());
    projected.SetInitial(s, a.IsInitial(s));
    projected.SetFinal(s, a.IsFinal(s));
  }
  std::vector<bool> keep(2 * k, false);
  for (int i = 0; i < m; ++i) {
    keep[i] = true;
    keep[k + i] = true;
  }
  for (int ti = 0; ti < a.num_transitions(); ++ti) {
    const RaTransition& t = a.transition(ti);
    projected.AddTransition(t.from, t.guard.Restrict(keep), t.to);
  }

  ExtendedAutomaton out(std::move(projected));
  int num_constraints_out = 0;
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < m; ++j) {
      const Dfa& eq = eq_dfas[i * m + j];
      if (!eq.IsEmptyLanguage()) {
        RAV_RETURN_IF_ERROR(out.AddConstraintDfa(
            RegisterPair{RegisterId(i), RegisterId(j)}, true, eq,
            "thm13 e=[" + std::to_string(i + 1) + "," +
                std::to_string(j + 1) + "]"));
        max_dfa = std::max(max_dfa, eq.num_states());
        ++num_constraints_out;
      }
      const Dfa& neq = neq_dfas[i * m + j];
      if (!neq.IsEmptyLanguage()) {
        RAV_RETURN_IF_ERROR(out.AddConstraintDfa(
            RegisterPair{RegisterId(i), RegisterId(j)}, false, neq,
            "thm13 e≠[" + std::to_string(i + 1) + "," +
                std::to_string(j + 1) + "]"));
        max_dfa = std::max(max_dfa, neq.num_states());
        ++num_constraints_out;
      }
    }
  }

  if (stats != nullptr) {
    stats->prop6_registers = k;
    stats->state_driven_states = a.num_states();
    stats->num_constraints = num_constraints_out;
    stats->max_constraint_dfa_states = max_dfa;
  }
  return out;
}

}  // namespace rav
