#include "projection/lr_bounded.h"

#include <algorithm>
#include <map>
#include <mutex>

#include "analysis/lint.h"
#include "base/metrics.h"
#include "base/trace.h"

namespace rav {

namespace {

// Hopcroft-Karp is overkill at this scale; Kuhn's augmenting paths.
class BipartiteMatcher {
 public:
  BipartiteMatcher(int n_left, int n_right)
      : adj_(n_left), match_right_(n_right, -1) {}

  void AddEdge(int l, int r) { adj_[l].push_back(r); }

  int MaxMatching() {
    int matching = 0;
    for (int l = 0; l < static_cast<int>(adj_.size()); ++l) {
      visited_.assign(match_right_.size(), false);
      if (TryAugment(l)) ++matching;
    }
    return matching;
  }

 private:
  bool TryAugment(int l) {
    for (int r : adj_[l]) {
      if (visited_[r]) continue;
      visited_[r] = true;
      if (match_right_[r] < 0 || TryAugment(match_right_[r])) {
        match_right_[r] = l;
        return true;
      }
    }
    return false;
  }

  std::vector<std::vector<int>> adj_;
  std::vector<int> match_right_;
  std::vector<bool> visited_;
};

}  // namespace

int BipartiteMinVertexCover(int n_left, int n_right,
                            const std::vector<std::pair<int, int>>& edges) {
  BipartiteMatcher matcher(n_left, n_right);
  for (const auto& [l, r] : edges) matcher.AddEdge(l, r);
  // König: in bipartite graphs, min vertex cover = max matching.
  return matcher.MaxMatching();
}

int MaxCutVertexCover(const ExtendedAutomaton& era,
                      const ControlAlphabet& alphabet, const LassoWord& lasso,
                      size_t window) {
  ConstraintClosure closure(era, alphabet, lasso, window);
  return MaxCutVertexCoverOfClosure(closure);
}

int MaxCutVertexCoverOfClosure(const ConstraintClosure& closure) {
  RAV_METRIC_COUNT("projection/lr_bounded/cover_computations", 1);
  const int k = closure.num_registers();
  const size_t window = closure.window();
  if (!closure.consistent()) return -1;

  // Span of each class: [min position, max position].
  const int num_classes = closure.num_classes();
  std::vector<int> min_pos(num_classes, static_cast<int>(window));
  std::vector<int> max_pos(num_classes, -1);
  for (size_t n = 0; n < window; ++n) {
    for (int i = 0; i < k; ++i) {
      int c = closure.ClassOf(closure.NodeOf(n, i));
      min_pos[c] = std::min(min_pos[c], static_cast<int>(n));
      max_pos[c] = std::max(max_pos[c], static_cast<int>(n));
    }
  }
  // Constant classes span everything; treat them as straddling every cut
  // (they never participate in G^w_h edges).
  for (int c = 0; c < closure.num_constants(); ++c) {
    int cls = closure.ClassOf(closure.ConstantNode(c));
    min_pos[cls] = 0;
    max_pos[cls] = static_cast<int>(window) - 1;
  }

  int best = 0;
  for (size_t h = 0; h + 1 < window; ++h) {
    // Classes entirely in L(h) = positions <= h, entirely in R(h) = > h.
    // Compact ids per side.
    std::map<int, int> left_id, right_id;
    std::vector<std::pair<int, int>> edges;
    for (const auto& [c1, c2] : closure.InequalityEdges()) {
      int left = -1, right = -1;
      auto classify = [&](int c) {
        if (max_pos[c] < 0) return 0;  // class with no register occurrence
        if (max_pos[c] <= static_cast<int>(h)) return -1;  // left
        if (min_pos[c] > static_cast<int>(h)) return 1;    // right
        return 0;  // straddles
      };
      int k1 = classify(c1);
      int k2 = classify(c2);
      if (k1 == -1 && k2 == 1) {
        left = c1;
        right = c2;
      } else if (k1 == 1 && k2 == -1) {
        left = c2;
        right = c1;
      } else {
        continue;
      }
      auto lid = left_id.emplace(left, static_cast<int>(left_id.size())).first;
      auto rid =
          right_id.emplace(right, static_cast<int>(right_id.size())).first;
      edges.emplace_back(lid->second, rid->second);
    }
    best = std::max(
        best, BipartiteMinVertexCover(static_cast<int>(left_id.size()),
                                      static_cast<int>(right_id.size()),
                                      edges));
  }
  return best;
}

Result<LrBoundResult> EstimateLrBound(const ExtendedAutomaton& era,
                                      const ControlAlphabet& alphabet,
                                      const LrBoundOptions& options) {
  RAV_TRACE_SPAN("projection/lr_bounded");
  RAV_METRIC_COUNT("projection/lr_bounded/estimations", 1);
  if (era.automaton().schema().num_relations() > 0) {
    return Status::InvalidArgument(
        "EstimateLrBound: LR-boundedness is defined for automata without a "
        "database (Section 5)");
  }
  if (options.analyze_and_strip) {
    const analysis::StripEffort effort =
        era.automaton().num_transitions() >= options.min_flow_strip_transitions
            ? analysis::StripEffort::kFlow
            : analysis::StripEffort::kFast;
    analysis::StripResult stripped =
        analysis::AnalyzeAndStrip(era, effort, options.governor);
    if (stripped.changed()) {
      RAV_METRIC_COUNT("projection/lr_bounded/strips", 1);
      ControlAlphabet stripped_alphabet(stripped.era->automaton());
      LrBoundOptions inner = options;
      inner.analyze_and_strip = false;
      // Pin the automatic window sizes to the original constraint list
      // (stripping may drop its largest DFA, and the estimate must be
      // identical with and without stripping).
      if (inner.pump_small == 0) {
        inner.pump_small =
            2 * static_cast<size_t>(era.MaxConstraintDfaStates()) + 2;
      }
      if (inner.pump_large == 0) inner.pump_large = 2 * inner.pump_small;
      return EstimateLrBound(*stripped.era, stripped_alphabet, inner);
    }
  }
  Nba scontrol = BuildSControlNba(era.automaton(), alphabet);

  // Auto-scale the windows so that every constraint's span fits into the
  // smaller one (otherwise truncated edges masquerade as growth).
  size_t pump_small = options.pump_small;
  size_t pump_large = options.pump_large;
  if (pump_small == 0) {
    pump_small = 2 * static_cast<size_t>(era.MaxConstraintDfaStates()) + 2;
  }
  if (pump_large == 0) pump_large = 2 * pump_small;
  // Growth detection compares a window against a larger one; a smaller
  // "large" pump would measure nothing.
  if (pump_large < pump_small) pump_large = pump_small;

  // Per-lasso cover measurement, run on the engine's workers. The
  // aggregation (max over covers, or over growth flags) is commutative and
  // associative, so the verdict is identical for any worker count; the
  // mutex only orders the cheap folds, not the cover computations.
  std::mutex fold_mu;
  int max_cover = 0;
  bool growth_detected = false;
  auto evaluate = [&](const LassoCandidate& candidate,
                      LassoWorkerCounters& counters) -> LassoVerdict {
    const LassoWord& lasso = candidate.word;
    size_t w_small = lasso.prefix.size() + lasso.cycle.size() * pump_small;
    ++counters.closures_built;
    ConstraintClosure small(era, alphabet, lasso, w_small,
                            &counters.scratch);
    ScopedMemoryCharge closure_charge(options.governor, small.ApproxBytes());
    int cover_small = MaxCutVertexCoverOfClosure(small);
    if (cover_small < 0) return LassoVerdict::kInconsistent;
    // The large window shares the small one's prefix: grow the closure by
    // the extra cycle pumps instead of rebuilding from position 0.
    ++counters.closures_extended;
    ConstraintClosure large =
        small.ExtendedBy(pump_large - pump_small, &counters.scratch);
    closure_charge.Add(large.ApproxBytes());
    int cover_large = MaxCutVertexCoverOfClosure(large);
    {
      std::lock_guard<std::mutex> lock(fold_mu);
      max_cover = std::max(max_cover, cover_small);
      if (cover_large > cover_small) growth_detected = true;
    }
    return LassoVerdict::kReject;  // aggregate-only: never a witness
  };

  LassoSearchOptions search_options;
  search_options.max_lasso_length = options.max_lasso_length;
  search_options.max_lassos = options.max_lassos;
  search_options.max_search_steps = options.max_search_steps;
  search_options.num_workers = options.num_workers;
  search_options.batch_size = options.batch_size;
  search_options.mode = options.search_mode;
  search_options.governor = options.governor;
  LassoSearchOutcome outcome =
      SearchLassos(scontrol, search_options, evaluate);

  RAV_METRIC_RECORD("projection/lr_bounded/max_cover", max_cover);
  if (growth_detected) {
    RAV_METRIC_COUNT("projection/lr_bounded/growth_detected", 1);
  }

  LrBoundResult result;
  result.max_cover = max_cover;
  result.growth_detected = growth_detected;
  result.lassos_examined = outcome.stats.lassos_checked;
  result.stats = outcome.stats;
  result.stats.guard_table_bytes = alphabet.guard_table_bytes();
  if (result.stats.guard_table_bytes > 0) {
    RAV_METRIC_SET("era/guard/table_bytes", result.stats.guard_table_bytes);
  }
  result.search_truncated = outcome.stats.truncated();
  return result;
}

}  // namespace rav
