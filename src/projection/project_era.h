#ifndef RAV_PROJECTION_PROJECT_ERA_H_
#define RAV_PROJECTION_PROJECT_ERA_H_

#include "base/status.h"
#include "era/extended_automaton.h"

namespace rav {

// Options / budgets of the Theorem 13 construction.
struct Theorem13Options {
  size_t max_composition_states = 60000;
  size_t max_prop6_states = 100000;
  size_t max_prop6_transitions = 500000;
};

struct Theorem13Stats {
  int prop6_registers = 0;
  int state_driven_states = 0;
  int num_constraints = 0;
  int max_constraint_dfa_states = 0;
};

// Theorem 13: extended register automata (no database) are closed under
// projection. Given 𝒜 with k registers and m < k, builds 𝒜' with m
// registers such that Reg(𝒜') = Π_m(Reg(𝒜)).
//
// Mechanization: global equality constraints are first compiled away
// (Proposition 6); the remaining structure has only local equalities and
// global inequality constraints. The projected constraints e'=ᵢⱼ / e'≠ᵢⱼ
// are produced by a composition automaton that scans a factor w[a..b]
// tracking (i) the registers equal to the source value (a,i), (ii) the
// registers forced distinct from it — seeded by local disequalities and
// by Σ-inequality edges whose source is connected to (a,i) — and (iii),
// for Σ edges pointing *into* the wavefront, the forward trace of the
// edge's source value so it can be flagged distinct when the edge fires.
//
// Scope note (see DESIGN.md): the composition tracks inequality edges
// whose endpoints both lie inside the factor [a..b]. Edges requiring
// excursions outside the factor need the paper's Lemma 14 MSO machinery
// (a Büchi run annotation); they do not arise in the paper's examples.
Result<ExtendedAutomaton> ProjectExtendedAutomaton(
    const ExtendedAutomaton& era, int m, Theorem13Stats* stats = nullptr,
    const Theorem13Options& options = {});

}  // namespace rav

#endif  // RAV_PROJECTION_PROJECT_ERA_H_
