#include "projection/prop22.h"

#include <functional>
#include <queue>

#include "base/flat_map.h"
#include "base/hash.h"
#include "types/type.h"

namespace rav {

Result<int> LongestAcceptedWordLength(const Dfa& dfa) {
  const int n = dfa.num_states();
  // Useful states: reachable from the initial state and co-reachable from
  // an accepting state.
  std::vector<bool> reachable(n, false);
  {
    std::queue<int> q;
    q.push(dfa.initial());
    reachable[dfa.initial()] = true;
    while (!q.empty()) {
      int s = q.front();
      q.pop();
      for (int a = 0; a < dfa.alphabet_size(); ++a) {
        int t = dfa.Next(s, a);
        if (!reachable[t]) {
          reachable[t] = true;
          q.push(t);
        }
      }
    }
  }
  std::vector<bool> coreachable(n, false);
  {
    // Reverse reachability from accepting states.
    std::vector<std::vector<int>> rev(n);
    for (int s = 0; s < n; ++s) {
      for (int a = 0; a < dfa.alphabet_size(); ++a) {
        rev[dfa.Next(s, a)].push_back(s);
      }
    }
    std::queue<int> q;
    for (int s = 0; s < n; ++s) {
      if (dfa.IsAccepting(s)) {
        coreachable[s] = true;
        q.push(s);
      }
    }
    while (!q.empty()) {
      int s = q.front();
      q.pop();
      for (int p : rev[s]) {
        if (!coreachable[p]) {
          coreachable[p] = true;
          q.push(p);
        }
      }
    }
  }
  std::vector<bool> useful(n);
  bool any_useful = false;
  for (int s = 0; s < n; ++s) {
    useful[s] = reachable[s] && coreachable[s];
    any_useful = any_useful || useful[s];
  }
  if (!any_useful) {
    return Status::InvalidArgument("LongestAcceptedWordLength: empty language");
  }

  // Longest path in the useful sub-DAG from the initial state to an
  // accepting state; a cycle among useful states means infinite language.
  // DFS with colors for cycle detection + memoized longest suffix.
  std::vector<int> longest(n, -2);  // -2 unvisited, -3 in progress
  bool infinite = false;
  std::function<int(int)> dfs = [&](int s) -> int {
    if (longest[s] == -3) {
      infinite = true;
      return 0;
    }
    if (longest[s] >= -1) return longest[s];
    longest[s] = -3;
    int best = dfa.IsAccepting(s) ? 0 : -1;  // -1: no accepting continuation
    for (int a = 0; a < dfa.alphabet_size() && !infinite; ++a) {
      int t = dfa.Next(s, a);
      if (!useful[t]) continue;
      int sub = dfs(t);
      if (sub >= 0) best = std::max(best, sub + 1);
    }
    longest[s] = best;
    return best;
  };
  int result = dfs(dfa.initial());
  if (infinite) {
    return Status::Unimplemented(
        "LongestAcceptedWordLength: infinite language");
  }
  RAV_CHECK_GE(result, 0);
  return result;
}

Result<RegisterAutomaton> RealizeLrBoundedEra(
    const ExtendedAutomaton& era, Prop22Stats* stats,
    const ExecutionGovernor* governor) {
  const RegisterAutomaton& b = era.automaton();
  const int m = b.num_registers();
  if (era.has_equality_constraints()) {
    return Status::FailedPrecondition(
        "RealizeLrBoundedEra: eliminate equality constraints first "
        "(Proposition 6)");
  }
  if (b.schema().num_relations() > 0) {
    return Status::InvalidArgument(
        "RealizeLrBoundedEra: Section 5 applies to automata without a "
        "database");
  }

  // Longest constraint factor L (word length); window = L states.
  int window = 1;
  for (const GlobalConstraint& c : era.constraints()) {
    Result<int> len = LongestAcceptedWordLength(c.dfa);
    if (!len.ok()) {
      if (len.status().code() == StatusCode::kUnimplemented) {
        return Status::Unimplemented(
            "RealizeLrBoundedEra: constraint '" + c.description +
            "' has an infinite language; the general Proposition 22 "
            "construction (budgeted value guessing) is not mechanized — "
            "see DESIGN.md");
      }
      // Empty language: the constraint is vacuous; ignore it.
      continue;
    }
    window = std::max(window, *len);
  }
  const int history = window - 1;  // values of the last `history` positions
  const int k_new = m * (1 + history);
  // Register layout: [0, m) visible; hist(t, i) = m + (t-1)*m + i holds
  // register i's value t positions ago.
  auto hist_reg = [&](int t, int i) { return m + (t - 1) * m + i; };

  RegisterAutomaton out(k_new, b.schema());

  // States: (B state, recent B states, fill) where `recent` holds the
  // previous up-to-`history` states, most recent first.
  struct NewState {
    StateId q;
    std::vector<StateId> recent;
    auto operator<=>(const NewState&) const = default;
  };
  struct NewStateHash {
    size_t operator()(const NewState& ns) const {
      size_t seed = ns.recent.size();
      HashCombineValue(seed, ns.q.value());
      for (StateId r : ns.recent) HashCombineValue(seed, r.value());
      return seed;
    }
  };
  FlatIdMap<NewState, NewStateHash> ids;
  std::queue<StateId> work;
  ScopedMemoryCharge states_charge(governor);
  auto intern = [&](const NewState& ns) {
    auto [raw_id, inserted] = ids.Intern(ns);
    StateId id(raw_id);
    if (!inserted) return id;
    states_charge.Add(sizeof(NewState) +
                      ns.recent.capacity() * sizeof(StateId) + 64);
    std::string name = b.state_name(ns.q);
    for (StateId r : ns.recent) name += "<" + b.state_name(r);
    RAV_CHECK_EQ(out.AddState(name).value(), id.value());
    out.SetInitial(id, false);
    out.SetFinal(id, b.IsFinal(ns.q));
    work.push(id);
    return id;
  };
  for (StateId q0 : b.InitialStates()) {
    StateId id = intern(NewState{q0, {}});
    out.SetInitial(id, true);
  }

  while (!work.empty()) {
    RAV_RETURN_IF_ERROR(GovernorCheckStatus(governor, "RealizeLrBoundedEra"));
    StateId from_id = work.front();
    work.pop();
    NewState from = ids.KeyOf(from_id.value());
    for (int ti = 0; ti < b.num_transitions(); ++ti) {
      const RaTransition& t = b.transition(ti);
      if (t.from != from.q) continue;

      TypeBuilder builder(2 * k_new, b.schema().num_constants());
      builder.AddAll(EmbedTransition(t.guard, m, k_new));
      // History shift: y_hist(1,i) = x_i; y_hist(t+1,i) = x_hist(t,i).
      const int known_history = static_cast<int>(from.recent.size());
      for (int i = 0; i < m; ++i) {
        if (history >= 1) {
          builder.AddEq(ElementIndex(k_new + hist_reg(1, i)), ElementIndex(i));
        }
        for (int tstep = 1; tstep < std::min(known_history + 1, history);
             ++tstep) {
          builder.AddEq(ElementIndex(k_new + hist_reg(tstep + 1, i)),
                        ElementIndex(hist_reg(tstep, i)));
        }
      }
      // Constraint factors ending at the current position: the current
      // position's state is from.q; the factor of length t+1 is
      // recent[t-1..0] reversed + from.q.
      bool contradictory = false;
      for (const GlobalConstraint& c : era.constraints()) {
        for (int start = known_history; start >= 0 && !contradictory;
             --start) {
          // Factor covering positions n-start .. n.
          int state = c.dfa.initial();
          for (int p = start; p >= 1; --p) {
            state = c.dfa.Next(state, from.recent[p - 1].value());
          }
          state = c.dfa.Next(state, from.q.value());
          if (!c.dfa.IsAccepting(state)) continue;
          int src =
              start == 0 ? c.i.value() : hist_reg(start, c.i.value());
          int dst = c.j.value();
          if (src == dst) {
            contradictory = true;  // value must differ from itself
            break;
          }
          builder.AddNeq(ElementIndex(src), ElementIndex(dst));
        }
      }
      if (contradictory) continue;
      Result<Type> guard = builder.Build();
      if (!guard.ok()) continue;  // disequalities contradict the base guard

      NewState to;
      to.q = t.to;
      to.recent.push_back(from.q);
      for (StateId r : from.recent) to.recent.push_back(r);
      if (static_cast<int>(to.recent.size()) > history) {
        to.recent.resize(history);
      }
      StateId to_id = intern(to);
      out.AddTransition(from_id, std::move(guard).value(), to_id);
    }
  }

  if (stats != nullptr) {
    stats->window_length = window;
    stats->registers_before = m;
    stats->registers_after = k_new;
    stats->states_after = out.num_states();
    stats->transitions_after = out.num_transitions();
  }
  return out;
}

}  // namespace rav
