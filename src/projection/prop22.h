#ifndef RAV_PROJECTION_PROP22_H_
#define RAV_PROJECTION_PROP22_H_

#include "base/governor.h"
#include "base/status.h"
#include "era/extended_automaton.h"
#include "ra/register_automaton.h"

namespace rav {

// Statistics of the Proposition 22 realization (benchmark E12).
struct Prop22Stats {
  int window_length = 0;      // longest constraint factor L
  int registers_before = 0;   // m
  int registers_after = 0;    // m * L
  int states_after = 0;
  int transitions_after = 0;
  // The paper's analytic register budget for the general construction,
  // 2M² + 1, where M = N + 1 and N is the vertex-cover bound.
  int paper_budget_for(int vertex_cover_bound) const {
    int m_budget = vertex_cover_bound + 1;
    return 2 * m_budget * m_budget + 1;
  }
};

// The length of the longest word accepted by `dfa`, or an error if the
// language is infinite (a cycle can reach an accepting state) or empty.
Result<int> LongestAcceptedWordLength(const Dfa& dfa);

// Proposition 22 (the "if" half of Theorem 19), implemented for the
// finite-window subclass of LR-bounded extended automata: every
// inequality constraint's language must be finite, with longest factor L.
// Such automata are LR-bounded with vertex cover at most m·L, and the
// realization uses m·(L-1) history registers: register i's value t steps
// ago is kept in a history register, the control state remembers the last
// L-1 states, and each transition asserts the disequalities of every
// constraint factor ending at the current position.
//
// Returns a register automaton A with m·L registers such that
// Π_m(Reg(A)) = Reg(era). Equality constraints must have been eliminated
// first (Proposition 6); automata with infinite-language inequality
// constraints (e.g. the all-distinct automaton of Example 17, which is
// not LR-bounded, but also genuinely LR-bounded ones needing the paper's
// full budgeted-guessing construction) are rejected with Unimplemented.
//
// The governor (nullptr = unlimited) is polled per expanded product
// state and charged per interned one — the (state, recent-states) BFS is
// where the m·L blowup lives; a trip aborts with ResourceExhausted.
Result<RegisterAutomaton> RealizeLrBoundedEra(
    const ExtendedAutomaton& era, Prop22Stats* stats = nullptr,
    const ExecutionGovernor* governor = nullptr);

}  // namespace rav

#endif  // RAV_PROJECTION_PROP22_H_
