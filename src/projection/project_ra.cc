#include "projection/project_ra.h"

#include "ra/transform.h"

namespace rav {

Result<ExtendedAutomaton> ProjectRegisterAutomaton(
    const RegisterAutomaton& automaton, int m, Prop20Stats* stats,
    size_t max_completed_transitions) {
  if (automaton.schema().num_relations() > 0) {
    return Status::InvalidArgument(
        "ProjectRegisterAutomaton: Proposition 20 applies to automata "
        "without a database (see Section 6 / Theorem 24 for the database "
        "case)");
  }
  const int k = automaton.num_registers();
  if (m < 0 || m > k) {
    return Status::InvalidArgument("ProjectRegisterAutomaton: bad m");
  }

  RAV_ASSIGN_OR_RETURN(RegisterAutomaton completed,
                       Completed(automaton, max_completed_transitions));
  RegisterAutomaton sd =
      PruneFrontierIncompatibleTransitions(MakeStateDriven(completed));
  RAV_ASSIGN_OR_RETURN(PropagationAutomata propagation,
                       PropagationAutomata::Build(sd));

  // The projected automaton: same states, guards restricted to the first
  // m registers.
  RegisterAutomaton projected(m, sd.schema());
  for (StateId s : sd.States()) {
    StateId id = projected.AddState(sd.state_name(s));
    RAV_CHECK_EQ(id.value(), s.value());
    projected.SetInitial(s, sd.IsInitial(s));
    projected.SetFinal(s, sd.IsFinal(s));
  }
  std::vector<bool> keep(2 * k, false);
  for (int i = 0; i < m; ++i) {
    keep[i] = true;
    keep[k + i] = true;
  }
  for (int ti = 0; ti < sd.num_transitions(); ++ti) {
    const RaTransition& t = sd.transition(ti);
    projected.AddTransition(t.from, t.guard.Restrict(keep), t.to);
  }

  ExtendedAutomaton era(std::move(projected));
  int max_dfa = 0;
  int num_constraints = 0;
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < m; ++j) {
      const Dfa& eq = propagation.EqualityDfa(i, j);
      if (!eq.IsEmptyLanguage()) {
        RAV_RETURN_IF_ERROR(era.AddConstraintDfa(
            RegisterPair{RegisterId(i), RegisterId(j)}, /*is_equality=*/true,
            eq,
            "lemma21 e=[" + std::to_string(i + 1) + "," +
                std::to_string(j + 1) + "]"));
        max_dfa = std::max(max_dfa, eq.num_states());
        ++num_constraints;
      }
      const Dfa& neq = propagation.InequalityDfa(i, j);
      if (!neq.IsEmptyLanguage()) {
        RAV_RETURN_IF_ERROR(era.AddConstraintDfa(
            RegisterPair{RegisterId(i), RegisterId(j)}, /*is_equality=*/false,
            neq,
            "lemma21 e≠[" + std::to_string(i + 1) + "," +
                std::to_string(j + 1) + "]"));
        max_dfa = std::max(max_dfa, neq.num_states());
        ++num_constraints;
      }
    }
  }

  if (stats != nullptr) {
    stats->original_states = automaton.num_states();
    stats->original_transitions = automaton.num_transitions();
    stats->completed_transitions = completed.num_transitions();
    stats->state_driven_states = sd.num_states();
    stats->num_constraints = num_constraints;
    stats->max_constraint_dfa_states = max_dfa;
  }
  return era;
}

}  // namespace rav
