#include "projection/lemma21.h"

#include <cstdint>
#include <tuple>
#include <vector>

#include "base/flat_map.h"
#include "base/hash.h"
#include "base/metrics.h"
#include "base/trace.h"

namespace rav {

namespace {

// Propagation state: the "equal to source" wavefront S and the "distinct
// from source" set D, over slots [0, k) = registers and [k, k + consts) =
// constant symbols (a constant slot persists forever once entered: the
// constant's value is global to the run).
struct Wavefront {
  uint64_t equal = 0;
  uint64_t distinct = 0;
  int prev_state = -1;  // the symbol read at the previous position
  auto operator<=>(const Wavefront&) const = default;
};

struct WavefrontHash {
  size_t operator()(const Wavefront& w) const {
    size_t seed = 0;
    HashCombineValue(seed, w.equal);
    HashCombineValue(seed, w.distinct);
    HashCombineValue(seed, w.prev_state);
    return seed;
  }
};

}  // namespace

Result<PropagationAutomata> PropagationAutomata::Build(
    const RegisterAutomaton& a) {
  RAV_TRACE_SPAN("projection/lemma21");
  RAV_METRIC_COUNT("projection/lemma21/builds", 1);
  // Note: a non-empty relational signature is allowed — the propagation
  // only consults equality literals. (Lemma 21 is stated for automata
  // without a database; Theorem 24 reuses the same equality expressions
  // for automata with one.)
  if (!a.IsStateDriven()) {
    return Status::FailedPrecondition(
        "PropagationAutomata: automaton must be state-driven");
  }
  const int k = a.num_registers();
  const int num_constants = a.schema().num_constants();
  const int slots = k + num_constants;
  if (slots > 60) {
    return Status::ResourceExhausted(
        "PropagationAutomata: too many registers/constants for the bitmask "
        "encoding");
  }

  // The unique guard fired from each state (trivial type for dead ends).
  const Type trivial(2 * k, num_constants);
  std::vector<const Type*> guard_of(a.num_states(), &trivial);
  for (int ti = 0; ti < a.num_transitions(); ++ti) {
    const RaTransition& t = a.transition(ti);
    guard_of[t.from.value()] = &t.guard;
  }

  // Element helpers within a transition type (2k vars + constants).
  auto x_elem = [&](int slot) {
    return slot < k ? slot : 2 * k + (slot - k);
  };
  auto y_elem = [&](int slot) {
    return slot < k ? k + slot : 2 * k + (slot - k);
  };

  PropagationAutomata out;
  out.k_ = k;

  for (int i = 0; i < k; ++i) {
    // Explore the reachable wavefront states for source register i.
    // id 0 is the dedicated start state (before reading the first symbol),
    // so interned ids shift by 1.
    FlatIdMap<Wavefront, WavefrontHash> ids;
    std::vector<std::vector<int>> table;  // [id][symbol] -> id
    auto intern = [&](const Wavefront& w) { return ids.Intern(w).first + 1; };

    // Start transitions: reading the first symbol q at position a seeds S
    // and D from the x̄-part of q's type.
    std::vector<int> start_row(a.num_states());
    for (StateId q : a.States()) {
      const Type& g = *guard_of[q.value()];
      Wavefront w;
      w.prev_state = q.value();
      for (int slot = 0; slot < slots; ++slot) {
        if (g.AreEqual(x_elem(i), x_elem(slot))) {
          w.equal |= uint64_t{1} << slot;
        } else if (g.AreDistinct(x_elem(i), x_elem(slot))) {
          w.distinct |= uint64_t{1} << slot;
        }
      }
      start_row[q.value()] = intern(w);
    }

    // Saturate.
    for (size_t front_index = 0; front_index < ids.size(); ++front_index) {
      Wavefront current = ids.KeyOf(static_cast<int>(front_index));
      std::vector<int> row(a.num_states());
      const Type& g = *guard_of[current.prev_state];
      for (StateId q : a.States()) {
        Wavefront next;
        next.prev_state = q.value();
        for (int slot = 0; slot < slots; ++slot) {
          // Constants persist.
          if (slot >= k) {
            if ((current.equal >> slot) & 1) next.equal |= uint64_t{1} << slot;
            if ((current.distinct >> slot) & 1) {
              next.distinct |= uint64_t{1} << slot;
            }
          }
        }
        for (int m = 0; m < slots; ++m) {
          bool equal = false;
          bool distinct = false;
          for (int l = 0; l < slots && !(equal && distinct); ++l) {
            bool l_equal = (current.equal >> l) & 1;
            bool l_distinct = (current.distinct >> l) & 1;
            if (!l_equal && !l_distinct) continue;
            if (l_equal && g.AreEqual(x_elem(l), y_elem(m))) equal = true;
            if (l_equal && g.AreDistinct(x_elem(l), y_elem(m))) {
              distinct = true;
            }
            if (l_distinct && g.AreEqual(x_elem(l), y_elem(m))) {
              distinct = true;
            }
          }
          if (equal) next.equal |= uint64_t{1} << m;
          if (distinct && !equal) next.distinct |= uint64_t{1} << m;
        }
        row[q.value()] = intern(next);
      }
      table.push_back(std::move(row));
      // `ids` may have grown; the loop continues over new entries.
    }

    out.raw_states_per_source_ =
        std::max(out.raw_states_per_source_, static_cast<int>(ids.size()));

    // Materialize the per-(i, j) DFAs over the shared structure.
    const int n = static_cast<int>(ids.size()) + 1;
    for (int j = 0; j < k; ++j) {
      Dfa eq(a.num_states(), n, 0);
      Dfa neq(a.num_states(), n, 0);
      for (StateId q : a.States()) {
        eq.SetTransition(0, q.value(), start_row[q.value()]);
        neq.SetTransition(0, q.value(), start_row[q.value()]);
      }
      for (size_t s = 0; s < ids.size(); ++s) {
        const Wavefront& front = ids.KeyOf(static_cast<int>(s));
        for (StateId q : a.States()) {
          eq.SetTransition(static_cast<int>(s) + 1, q.value(),
                           table[s][q.value()]);
          neq.SetTransition(static_cast<int>(s) + 1, q.value(),
                            table[s][q.value()]);
        }
        eq.SetAccepting(static_cast<int>(s) + 1, (front.equal >> j) & 1);
        neq.SetAccepting(static_cast<int>(s) + 1, (front.distinct >> j) & 1);
      }
      out.eq_dfas_.push_back(eq.Minimize());
      out.neq_dfas_.push_back(neq.Minimize());
      RAV_METRIC_RECORD("projection/lemma21/minimized_states",
                        out.eq_dfas_.back().num_states());
      RAV_METRIC_RECORD("projection/lemma21/minimized_states",
                        out.neq_dfas_.back().num_states());
    }
  }
  RAV_METRIC_RECORD("projection/lemma21/raw_subset_states",
                    out.raw_states_per_source_);
  return out;
}

}  // namespace rav
