#include "io/proposition.h"

#include <cctype>
#include <sstream>
#include <utility>

#include "base/numbers.h"

namespace rav {

Result<Formula> ParseProposition(const std::string& text,
                                 const RegisterAutomaton& a) {
  const int k = a.num_registers();
  auto term = [&](const std::string& t) -> Result<Term> {
    if (t.size() >= 2 && (t[0] == 'x' || t[0] == 'y') &&
        isdigit(static_cast<unsigned char>(t[1]))) {
      Result<int> parsed = ParseInt32(t.substr(1));
      if (!parsed.ok()) {
        return Status::InvalidArgument("register index: " +
                                       parsed.status().message());
      }
      int index = *parsed - 1;
      if (index < 0 || index >= k) {
        return Status::InvalidArgument("register out of range: " + t);
      }
      return Term::Var(t[0] == 'x' ? index : k + index);
    }
    ConstantId c = a.schema().FindConstant(t);
    if (c < 0) return Status::InvalidArgument("unknown term: " + t);
    return Term::Const(c);
  };

  bool negated = false;
  std::string body = text;
  if (!body.empty() && body[0] == '!' && body.find('(') != std::string::npos) {
    negated = true;
    body = body.substr(1);
  }
  size_t lparen = body.find('(');
  if (lparen != std::string::npos) {
    std::string rel = body.substr(0, lparen);
    RelationId r = a.schema().FindRelation(rel);
    if (r < 0) return Status::InvalidArgument("unknown relation: " + rel);
    size_t rparen = body.find(')');
    if (rparen == std::string::npos) {
      return Status::InvalidArgument("missing ')' in " + text);
    }
    std::vector<Term> args;
    std::string inner = body.substr(lparen + 1, rparen - lparen - 1);
    std::istringstream arg_stream(inner);
    std::string arg;
    while (std::getline(arg_stream, arg, ',')) {
      // Trim whitespace.
      size_t b = arg.find_first_not_of(' ');
      size_t e = arg.find_last_not_of(' ');
      if (b == std::string::npos) {
        return Status::InvalidArgument("empty argument in " + text);
      }
      RAV_ASSIGN_OR_RETURN(Term t, term(arg.substr(b, e - b + 1)));
      args.push_back(t);
    }
    Formula atom = Formula::Rel(r, std::move(args));
    return negated ? Formula::Not(atom) : atom;
  }
  size_t neq = body.find("!=");
  size_t eq = body.find('=');
  if (neq != std::string::npos) {
    RAV_ASSIGN_OR_RETURN(Term lhs, term(body.substr(0, neq)));
    RAV_ASSIGN_OR_RETURN(Term rhs, term(body.substr(neq + 2)));
    return Formula::Neq(lhs, rhs);
  }
  if (eq != std::string::npos) {
    RAV_ASSIGN_OR_RETURN(Term lhs, term(body.substr(0, eq)));
    RAV_ASSIGN_OR_RETURN(Term rhs, term(body.substr(eq + 1)));
    return Formula::Eq(lhs, rhs);
  }
  return Status::InvalidArgument("cannot parse proposition: " + text);
}

Result<LtlFoProperty> ParseLtlFoProperty(
    const std::string& ltl_text,
    const std::vector<std::string>& proposition_texts,
    const RegisterAutomaton& automaton) {
  LtlFoProperty property;
  for (const std::string& text : proposition_texts) {
    RAV_ASSIGN_OR_RETURN(Formula f, ParseProposition(text, automaton));
    property.propositions.push_back(std::move(f));
    property.proposition_names.push_back(text);
  }
  auto resolve = [&](const std::string& name) -> int {
    if (name.size() >= 2 && name[0] == 'p' &&
        isdigit(static_cast<unsigned char>(name[1]))) {
      Result<int> index = ParseInt32(name.substr(1));
      if (index.ok() &&
          *index < static_cast<int>(property.propositions.size())) {
        return *index;
      }
    }
    return -1;
  };
  RAV_ASSIGN_OR_RETURN(LtlFormula formula,
                       LtlFormula::Parse(ltl_text, resolve));
  property.formula = std::move(formula);
  return property;
}

}  // namespace rav
