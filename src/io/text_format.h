#ifndef RAV_IO_TEXT_FORMAT_H_
#define RAV_IO_TEXT_FORMAT_H_

#include <string>

#include "base/status.h"
#include "enhanced/enhanced_automaton.h"
#include "era/extended_automaton.h"
#include "ra/register_automaton.h"

namespace rav {

// A human-readable textual format for (extended) register automata, so
// that automata can live in files, tests, and the command-line tool.
//
//   automaton {
//     registers 2
//     schema { relation E/2  relation U/1  constant c }
//     state q1 initial final
//     state q2
//     transition q1 -> q2 { x1 = x2  x2 = y2  E(x2, x1)  !U(y1) }
//     transition q2 -> q2 { x2 = y2  x1 != c }
//     constraint eq  1 1 "q1 q2* q1"
//     constraint neq 1 1 "q1 q1"
//   }
//
// Notes:
//   * literals inside { } are separated by whitespace; `x<i>`/`y<i>` are
//     register variables (1-based), bare identifiers are constants;
//   * `=` / `!=` between terms; `R(t, ...)` / `!R(t, ...)` for relations;
//   * `constraint eq|neq i j "<regex over state names>"` attaches a
//     global constraint (making the result an extended automaton).
Result<ExtendedAutomaton> ParseExtendedAutomaton(const std::string& text);

// Convenience: parse and require that no constraints were declared.
Result<RegisterAutomaton> ParseRegisterAutomaton(const std::string& text);

// Round-trippable rendering of an automaton in the format above.
std::string ToTextFormat(const RegisterAutomaton& automaton);
std::string ToTextFormat(const ExtendedAutomaton& era);

// Graphviz rendering of the transition structure (guards as edge labels).
std::string ToGraphviz(const RegisterAutomaton& automaton);

// Human-readable rendering of an enhanced automaton (Section 6). The
// equality constraints render like extended-automaton constraints;
// tuple-inequality and finiteness constraints are rendered as annotated
// comment blocks (their pair/selector DFAs serialized to regexes) — the
// text-format grammar does not parse them back.
std::string ToTextFormat(const EnhancedAutomaton& enhanced);

}  // namespace rav

#endif  // RAV_IO_TEXT_FORMAT_H_
