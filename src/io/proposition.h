#ifndef RAV_IO_PROPOSITION_H_
#define RAV_IO_PROPOSITION_H_

// The textual FO-proposition syntax shared by `rav_cli verify` and the
// decision service's `verify` op (docs/serving.md):
//
//   x1=y2    x1!=x2    x1=c      register/constant (in)equalities;
//                                x-variables are the automaton's own
//                                registers, y-variables the projection
//                                copies, constants by schema name
//   R(x1,y2) !R(x1)    relation atoms, optionally negated
//
// LTL formulas over these use propositions p0, p1, ... referring to the
// parsed list by position.

#include <string>
#include <vector>

#include "base/status.h"
#include "era/ltlfo.h"
#include "ra/register_automaton.h"
#include "relational/formula.h"

namespace rav {

// Parses one proposition against `automaton`'s schema and register
// count. Errors name the offending token.
Result<Formula> ParseProposition(const std::string& text,
                                 const RegisterAutomaton& automaton);

// Parses a whole LTL-FO property: each proposition text, then the LTL
// formula with p0..pN resolved to the proposition list by index.
Result<LtlFoProperty> ParseLtlFoProperty(
    const std::string& ltl_text,
    const std::vector<std::string>& proposition_texts,
    const RegisterAutomaton& automaton);

}  // namespace rav

#endif  // RAV_IO_PROPOSITION_H_
