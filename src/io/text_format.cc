#include "io/text_format.h"

#include "automata/dfa_to_regex.h"

#include <cctype>
#include <limits>
#include <sstream>
#include <vector>

#include "base/failpoints.h"

namespace rav {

namespace {

// ---------------------------------------------------------------------------
// Tokenizer

struct TfToken {
  enum class Kind {
    kIdent, kNumber, kString, kLBrace, kRBrace, kLParen, kRParen, kComma,
    kEq, kNeq, kArrow, kBang, kSlash, kEnd,
  };
  Kind kind;
  std::string text;
  SourceLocation loc;
};

Result<std::vector<TfToken>> Tokenize(const std::string& text) {
  std::vector<TfToken> tokens;
  int line = 1;
  size_t line_start = 0;  // offset of the first character of `line`
  size_t i = 0;
  auto here = [&]() {
    return SourceLocation{line, static_cast<int>(i - line_start) + 1};
  };
  auto push = [&](TfToken::Kind kind, std::string t) {
    // The caller positions `i` at the first character of the token when
    // pushing single-character tokens; multi-character tokens pass their
    // start column explicitly via push_at.
    tokens.push_back(TfToken{kind, std::move(t), here()});
  };
  auto push_at = [&](TfToken::Kind kind, std::string t, SourceLocation loc) {
    tokens.push_back(TfToken{kind, std::move(t), loc});
  };
  while (i < text.size()) {
    char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      line_start = i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '#') {  // comment to end of line
      while (i < text.size() && text[i] != '\n') ++i;
      continue;
    }
    switch (c) {
      case '{': push(TfToken::Kind::kLBrace, "{"); ++i; continue;
      case '}': push(TfToken::Kind::kRBrace, "}"); ++i; continue;
      case '(': push(TfToken::Kind::kLParen, "("); ++i; continue;
      case ')': push(TfToken::Kind::kRParen, ")"); ++i; continue;
      case ',': push(TfToken::Kind::kComma, ","); ++i; continue;
      case '/': push(TfToken::Kind::kSlash, "/"); ++i; continue;
      case '=': push(TfToken::Kind::kEq, "="); ++i; continue;
      default: break;
    }
    if (c == '!' && i + 1 < text.size() && text[i + 1] == '=') {
      push(TfToken::Kind::kNeq, "!=");
      i += 2;
      continue;
    }
    if (c == '!') {
      push(TfToken::Kind::kBang, "!");
      ++i;
      continue;
    }
    if (c == '-' && i + 1 < text.size() && text[i + 1] == '>') {
      push(TfToken::Kind::kArrow, "->");
      i += 2;
      continue;
    }
    if (c == '"') {
      const SourceLocation loc = here();
      size_t start = ++i;
      while (i < text.size() && text[i] != '"') {
        if (text[i] == '\n') {
          ++line;
          line_start = i + 1;
        }
        ++i;
      }
      if (i >= text.size()) {
        return Status::InvalidArgument("text format: unterminated string");
      }
      push_at(TfToken::Kind::kString, text.substr(start, i - start), loc);
      ++i;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      const SourceLocation loc = here();
      size_t start = i;
      while (i < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[i]))) {
        ++i;
      }
      push_at(TfToken::Kind::kNumber, text.substr(start, i - start), loc);
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      const SourceLocation loc = here();
      size_t start = i;
      while (i < text.size() &&
             (std::isalnum(static_cast<unsigned char>(text[i])) ||
              text[i] == '_')) {
        ++i;
      }
      push_at(TfToken::Kind::kIdent, text.substr(start, i - start), loc);
      continue;
    }
    return Status::InvalidArgument(
        std::string("text format: unexpected character '") + c + "' at line " +
        std::to_string(line));
  }
  push(TfToken::Kind::kEnd, "");
  return tokens;
}

// ---------------------------------------------------------------------------
// Parser

class TfParser {
 public:
  explicit TfParser(std::vector<TfToken> tokens)
      : tokens_(std::move(tokens)) {}

  Result<ExtendedAutomaton> Parse() {
    RAV_RETURN_IF_ERROR(ExpectIdent("automaton"));
    RAV_RETURN_IF_ERROR(Expect(TfToken::Kind::kLBrace));

    // First pass directives must come in a workable order: we buffer
    // declarations, then build.
    int registers = -1;
    Schema schema;
    struct StateDecl {
      std::string name;
      bool initial = false;
      bool final_state = false;
      SourceLocation loc;
    };
    std::vector<StateDecl> states;
    struct Literal {
      enum class Kind { kEq, kNeq, kAtom } kind;
      std::string lhs, rhs;             // for eq/neq: term tokens
      std::string relation;             // for atoms
      std::vector<std::string> args;
      bool positive = true;
    };
    struct TransitionDecl {
      std::string from, to;
      std::vector<Literal> literals;
      SourceLocation loc;
    };
    std::vector<TransitionDecl> transitions;
    struct ConstraintDecl {
      bool equality;
      int i, j;
      std::string regex;
      SourceLocation loc;
    };
    std::vector<ConstraintDecl> constraints;

    while (Peek().kind != TfToken::Kind::kRBrace) {
      const SourceLocation directive_loc = Peek().loc;
      RAV_ASSIGN_OR_RETURN(std::string directive, Ident());
      if (directive == "registers") {
        RAV_ASSIGN_OR_RETURN(registers, Number());
      } else if (directive == "schema") {
        RAV_RETURN_IF_ERROR(Expect(TfToken::Kind::kLBrace));
        while (Peek().kind != TfToken::Kind::kRBrace) {
          RAV_ASSIGN_OR_RETURN(std::string kind, Ident());
          if (kind == "relation") {
            RAV_ASSIGN_OR_RETURN(std::string name, Ident());
            RAV_RETURN_IF_ERROR(Expect(TfToken::Kind::kSlash));
            RAV_ASSIGN_OR_RETURN(int arity, Number());
            if (schema.FindRelation(name) >= 0) {
              return Err("duplicate relation '" + name + "'");
            }
            schema.AddRelation(name, arity);
          } else if (kind == "constant") {
            RAV_ASSIGN_OR_RETURN(std::string name, Ident());
            if (schema.FindConstant(name) >= 0) {
              return Err("duplicate constant '" + name + "'");
            }
            schema.AddConstant(name);
          } else {
            return Err("expected 'relation' or 'constant'");
          }
        }
        RAV_RETURN_IF_ERROR(Expect(TfToken::Kind::kRBrace));
      } else if (directive == "state") {
        StateDecl decl;
        decl.loc = directive_loc;
        RAV_ASSIGN_OR_RETURN(decl.name, Ident());
        while (Peek().kind == TfToken::Kind::kIdent &&
               (Peek().text == "initial" || Peek().text == "final")) {
          if (Peek().text == "initial") decl.initial = true;
          if (Peek().text == "final") decl.final_state = true;
          Advance();
        }
        states.push_back(std::move(decl));
      } else if (directive == "transition") {
        TransitionDecl decl;
        decl.loc = directive_loc;
        RAV_ASSIGN_OR_RETURN(decl.from, Ident());
        RAV_RETURN_IF_ERROR(Expect(TfToken::Kind::kArrow));
        RAV_ASSIGN_OR_RETURN(decl.to, Ident());
        RAV_RETURN_IF_ERROR(Expect(TfToken::Kind::kLBrace));
        while (Peek().kind != TfToken::Kind::kRBrace) {
          Literal lit;
          bool negated = false;
          if (Peek().kind == TfToken::Kind::kBang) {
            Advance();
            negated = true;
          }
          RAV_ASSIGN_OR_RETURN(std::string first, Ident());
          if (Peek().kind == TfToken::Kind::kLParen) {
            // Relational atom.
            Advance();
            lit.kind = Literal::Kind::kAtom;
            lit.relation = std::move(first);
            lit.positive = !negated;
            while (Peek().kind != TfToken::Kind::kRParen) {
              RAV_ASSIGN_OR_RETURN(std::string arg, Ident());
              lit.args.push_back(std::move(arg));
              if (Peek().kind == TfToken::Kind::kComma) Advance();
            }
            RAV_RETURN_IF_ERROR(Expect(TfToken::Kind::kRParen));
          } else {
            if (negated) return Err("'!' must precede a relational atom");
            lit.lhs = std::move(first);
            if (Peek().kind == TfToken::Kind::kEq) {
              lit.kind = Literal::Kind::kEq;
            } else if (Peek().kind == TfToken::Kind::kNeq) {
              lit.kind = Literal::Kind::kNeq;
            } else {
              return Err("expected '=' or '!=' in literal");
            }
            Advance();
            RAV_ASSIGN_OR_RETURN(lit.rhs, Ident());
          }
          decl.literals.push_back(std::move(lit));
        }
        RAV_RETURN_IF_ERROR(Expect(TfToken::Kind::kRBrace));
        transitions.push_back(std::move(decl));
      } else if (directive == "constraint") {
        ConstraintDecl decl;
        decl.loc = directive_loc;
        RAV_ASSIGN_OR_RETURN(std::string kind, Ident());
        if (kind == "eq") {
          decl.equality = true;
        } else if (kind == "neq") {
          decl.equality = false;
        } else {
          return Err("expected 'eq' or 'neq' after 'constraint'");
        }
        RAV_ASSIGN_OR_RETURN(decl.i, Number());
        RAV_ASSIGN_OR_RETURN(decl.j, Number());
        if (Peek().kind != TfToken::Kind::kString) {
          return Err("expected a quoted regex");
        }
        decl.regex = Peek().text;
        Advance();
        constraints.push_back(std::move(decl));
      } else {
        return Status::InvalidArgument(
            "text format (" + directive_loc.ToString() +
            "): unknown directive '" + directive + "'");
      }
    }
    RAV_RETURN_IF_ERROR(Expect(TfToken::Kind::kRBrace));

    // --- Build ---
    if (registers < 0) return Err("missing 'registers' directive");
    RegisterAutomaton automaton(registers, schema);
    for (const StateDecl& s : states) {
      if (automaton.FindState(s.name).valid()) {
        return Status::InvalidArgument("text format (" + s.loc.ToString() +
                                       "): duplicate state '" + s.name + "'");
      }
      StateId id = automaton.AddState(s.name);
      automaton.SetInitial(id, s.initial);
      automaton.SetFinal(id, s.final_state);
      automaton.SetStateLocation(id, s.loc);
    }
    const int k = registers;
    auto resolve_term = [&](const std::string& term) -> Result<int> {
      if (term.size() >= 2 && (term[0] == 'x' || term[0] == 'y') &&
          std::isdigit(static_cast<unsigned char>(term[1]))) {
        int index = std::stoi(term.substr(1));
        if (index < 1 || index > k) {
          return Status::InvalidArgument("text format: register index of '" +
                                         term + "' out of range");
        }
        return (term[0] == 'x' ? 0 : k) + index - 1;
      }
      ConstantId c = schema.FindConstant(term);
      if (c < 0) {
        return Status::InvalidArgument("text format: unknown term '" + term +
                                       "' (registers are x<i>/y<i>)");
      }
      return 2 * k + c;
    };
    for (const TransitionDecl& t : transitions) {
      StateId from = automaton.FindState(t.from);
      StateId to = automaton.FindState(t.to);
      if (!from.valid() || !to.valid()) {
        return Status::InvalidArgument("text format (" + t.loc.ToString() +
                                       "): transition references unknown "
                                       "state '" +
                                       (!from.valid() ? t.from : t.to) + "'");
      }
      TypeBuilder builder(2 * k, schema.num_constants());
      for (const Literal& lit : t.literals) {
        switch (lit.kind) {
          case Literal::Kind::kEq:
          case Literal::Kind::kNeq: {
            RAV_ASSIGN_OR_RETURN(int lhs, resolve_term(lit.lhs));
            RAV_ASSIGN_OR_RETURN(int rhs, resolve_term(lit.rhs));
            if (lit.kind == Literal::Kind::kEq) {
              builder.AddEq(ElementIndex(lhs), ElementIndex(rhs));
            } else {
              builder.AddNeq(ElementIndex(lhs), ElementIndex(rhs));
            }
            break;
          }
          case Literal::Kind::kAtom: {
            RelationId rel = schema.FindRelation(lit.relation);
            if (rel < 0) {
              return Err("unknown relation '" + lit.relation + "'");
            }
            if (schema.arity(rel) != static_cast<int>(lit.args.size())) {
              return Err("arity mismatch for relation '" + lit.relation +
                         "'");
            }
            std::vector<ElementIndex> elements;
            for (const std::string& arg : lit.args) {
              RAV_ASSIGN_OR_RETURN(int e, resolve_term(arg));
              elements.push_back(ElementIndex(e));
            }
            builder.AddAtom(rel, std::move(elements), lit.positive);
            break;
          }
        }
      }
      RAV_ASSIGN_OR_RETURN(Type guard, builder.Build());
      automaton.AddTransition(from, std::move(guard), to);
      automaton.SetTransitionLocation(automaton.num_transitions() - 1, t.loc);
    }

    ExtendedAutomaton era(std::move(automaton));
    for (const ConstraintDecl& c : constraints) {
      RAV_RETURN_IF_ERROR(era.AddConstraintFromText(
          RegisterPair{RegisterId(c.i - 1), RegisterId(c.j - 1)}, c.equality,
          c.regex));
      era.SetConstraintLocation(
          static_cast<int>(era.constraints().size()) - 1, c.loc);
    }
    return era;
  }

 private:
  const TfToken& Peek() const { return tokens_[pos_]; }
  void Advance() { ++pos_; }

  Status Err(const std::string& message) const {
    return Status::InvalidArgument("text format (" + Peek().loc.ToString() +
                                   "): " + message);
  }

  Status Expect(TfToken::Kind kind) {
    if (Peek().kind != kind) return Err("unexpected token '" + Peek().text + "'");
    Advance();
    return Status::OK();
  }

  Status ExpectIdent(const std::string& word) {
    if (Peek().kind != TfToken::Kind::kIdent || Peek().text != word) {
      return Err("expected '" + word + "'");
    }
    Advance();
    return Status::OK();
  }

  Result<std::string> Ident() {
    if (Peek().kind != TfToken::Kind::kIdent) {
      return Err("expected an identifier, found '" + Peek().text + "'");
    }
    std::string text = Peek().text;
    Advance();
    return text;
  }

  Result<int> Number() {
    if (Peek().kind != TfToken::Kind::kNumber) {
      return Err("expected a number, found '" + Peek().text + "'");
    }
    // Not std::stoi: a fuzzed literal like "99999999999" must be a parse
    // error, not an uncaught std::out_of_range.
    long long value = 0;
    for (char c : Peek().text) {
      value = value * 10 + (c - '0');
      if (value > std::numeric_limits<int>::max()) {
        return Err("number out of range: '" + Peek().text + "'");
      }
    }
    Advance();
    return static_cast<int>(value);
  }

  std::vector<TfToken> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<ExtendedAutomaton> ParseExtendedAutomaton(const std::string& text) {
  // Fault-injection site: models a corrupt or unreadable spec reaching
  // the parser — callers must surface the error, never crash.
  if (RAV_FAILPOINT("io/text_format/parse")) {
    return Status::InvalidArgument(
        "ParseExtendedAutomaton: injected parse failure (failpoint "
        "io/text_format/parse)");
  }
  RAV_ASSIGN_OR_RETURN(std::vector<TfToken> tokens, Tokenize(text));
  TfParser parser(std::move(tokens));
  return parser.Parse();
}

Result<RegisterAutomaton> ParseRegisterAutomaton(const std::string& text) {
  RAV_ASSIGN_OR_RETURN(ExtendedAutomaton era, ParseExtendedAutomaton(text));
  if (!era.constraints().empty()) {
    return Status::InvalidArgument(
        "expected a plain register automaton but constraints were declared");
  }
  return era.automaton();
}

// ---------------------------------------------------------------------------
// Printing

namespace {

std::string GuardToTextFormat(const Type& guard, const Schema& schema,
                              int k) {
  std::ostringstream out;
  auto term = [&](int element) -> std::string {
    if (element < k) return "x" + std::to_string(element + 1);
    if (element < 2 * k) return "y" + std::to_string(element - k + 1);
    return schema.constant_name(element - 2 * k);
  };
  std::vector<int> rep(guard.num_classes(), -1);
  bool first = true;
  auto sep = [&]() {
    if (!first) out << "  ";
    first = false;
  };
  for (int e = 0; e < guard.num_elements(); ++e) {
    int c = guard.ClassOf(e);
    if (rep[c] < 0) {
      rep[c] = e;
    } else {
      sep();
      out << term(rep[c]) << " = " << term(e);
    }
  }
  for (const auto& [c1, c2] : guard.disequalities()) {
    sep();
    out << term(rep[c1]) << " != " << term(rep[c2]);
  }
  for (const TypeAtom& atom : guard.atoms()) {
    sep();
    if (!atom.positive) out << "!";
    out << schema.relation_name(atom.relation) << "(";
    for (size_t i = 0; i < atom.args.size(); ++i) {
      if (i > 0) out << ", ";
      out << term(rep[atom.args[i]]);
    }
    out << ")";
  }
  return out.str();
}

void AppendAutomatonBody(const RegisterAutomaton& a, std::ostringstream& out) {
  out << "automaton {\n";
  out << "  registers " << a.num_registers() << "\n";
  if (!a.schema().empty()) {
    out << "  schema {";
    for (int r = 0; r < a.schema().num_relations(); ++r) {
      out << " relation " << a.schema().relation_name(r) << "/"
          << a.schema().arity(r);
    }
    for (int c = 0; c < a.schema().num_constants(); ++c) {
      out << " constant " << a.schema().constant_name(c);
    }
    out << " }\n";
  }
  for (StateId s : a.States()) {
    out << "  state " << a.state_name(s);
    if (a.IsInitial(s)) out << " initial";
    if (a.IsFinal(s)) out << " final";
    out << "\n";
  }
  for (int ti = 0; ti < a.num_transitions(); ++ti) {
    const RaTransition& t = a.transition(ti);
    out << "  transition " << a.state_name(t.from) << " -> "
        << a.state_name(t.to) << " { "
        << GuardToTextFormat(t.guard, a.schema(), a.num_registers())
        << " }\n";
  }
}

}  // namespace

std::string ToTextFormat(const RegisterAutomaton& automaton) {
  std::ostringstream out;
  AppendAutomatonBody(automaton, out);
  out << "}\n";
  return out.str();
}

std::string ToTextFormat(const ExtendedAutomaton& era) {
  std::ostringstream out;
  AppendAutomatonBody(era.automaton(), out);
  for (const GlobalConstraint& c : era.constraints()) {
    // Serialize the compiled DFA back to a regex so the rendering
    // round-trips regardless of how the constraint was constructed.
    auto regex = DfaToRegexString(c.dfa, [&](int q) {
      return era.automaton().state_name(StateId(q));
    });
    if (!regex.has_value()) continue;  // empty-language constraint: vacuous
    out << "  constraint " << (c.is_equality ? "eq" : "neq") << " "
        << (c.i.value() + 1) << " " << (c.j.value() + 1) << " \"" << *regex
        << "\"\n";
  }
  out << "}\n";
  return out.str();
}

std::string ToTextFormat(const EnhancedAutomaton& enhanced) {
  std::ostringstream out;
  AppendAutomatonBody(enhanced.automaton(), out);
  auto state_name = [&](int q) {
    return enhanced.automaton().state_name(StateId(q));
  };
  for (const GlobalConstraint& c : enhanced.equality_constraints()) {
    auto regex = DfaToRegexString(c.dfa, state_name);
    if (!regex.has_value()) continue;
    out << "  constraint eq " << (c.i.value() + 1) << " "
        << (c.j.value() + 1) << " \"" << *regex << "\"\n";
  }
  for (const TupleInequalityConstraint& c : enhanced.tuple_constraints()) {
    auto regex = DfaToRegexString(c.pair_dfa, state_name);
    out << "  # tuple-ineq";
    for (int t = 0; t < c.arity(); ++t) {
      out << " (r" << (c.regs_a[t] + 1) << "+" << c.offs_a[t] << " vs r"
          << (c.regs_b[t] + 1) << "+" << c.offs_b[t] << ")";
    }
    out << " when \"" << (regex.has_value() ? *regex : "<empty>")
        << "\"\n";
  }
  for (const FinitenessConstraint& c : enhanced.finiteness_constraints()) {
    auto regex = DfaToRegexString(c.selector, state_name);
    out << "  # finiteness r" << (c.reg + 1) << " over prefixes \""
        << (regex.has_value() ? *regex : "<empty>") << "\"\n";
  }
  out << "}\n";
  return out.str();
}

std::string ToGraphviz(const RegisterAutomaton& automaton) {
  std::ostringstream out;
  out << "digraph automaton {\n  rankdir=LR;\n";
  for (StateId s : automaton.States()) {
    out << "  \"" << automaton.state_name(s) << "\" [shape="
        << (automaton.IsFinal(s) ? "doublecircle" : "circle") << "];\n";
    if (automaton.IsInitial(s)) {
      out << "  \"__start" << s.value() << "\" [shape=point];\n";
      out << "  \"__start" << s.value() << "\" -> \""
          << automaton.state_name(s) << "\";\n";
    }
  }
  for (int ti = 0; ti < automaton.num_transitions(); ++ti) {
    const RaTransition& t = automaton.transition(ti);
    out << "  \"" << automaton.state_name(t.from) << "\" -> \""
        << automaton.state_name(t.to) << "\" [label=\""
        << GuardToTextFormat(t.guard, automaton.schema(),
                             automaton.num_registers())
        << "\"];\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace rav
