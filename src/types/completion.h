#ifndef RAV_TYPES_COMPLETION_H_
#define RAV_TYPES_COMPLETION_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "types/type.h"

namespace rav {

// Enumeration of the complete extensions of a type (Example 2 of the
// paper). Completion is worst-case exponential in the number of elements
// and relations; callers supply either a callback (return false to stop
// early) or a result cap.

// Enumerates the equality completions of `t`: extensions whose equality
// part decides every variable/variable and variable/constant pair. The
// relational atoms of `t` are carried along (atoms that become
// contradictory under a merge prune that branch). Returns the number of
// completions delivered to `cb` before it returned false or enumeration
// finished.
size_t EnumerateEqualityCompletions(const Type& t,
                                    const std::function<bool(const Type&)>& cb);

// Convenience: materializes up to `limit` equality completions.
std::vector<Type> EqualityCompletions(const Type& t, size_t limit = SIZE_MAX);

// Enumerates the full completions of `t` over `schema`: equality
// completions further extended with a sign for every relation atom over
// every class tuple. Returns the number delivered.
size_t EnumerateCompletions(const Type& t, const Schema& schema,
                            const std::function<bool(const Type&)>& cb);

// Convenience: materializes up to `limit` completions.
std::vector<Type> Completions(const Type& t, const Schema& schema,
                              size_t limit = SIZE_MAX);

// Number of equality completions (full enumeration under the hood; intended
// for tests and the completion-blow-up benchmark E1).
size_t CountEqualityCompletions(const Type& t);

}  // namespace rav

#endif  // RAV_TYPES_COMPLETION_H_
