#include "types/completion.h"

#include <algorithm>

#include "base/logging.h"

namespace rav {

namespace {

// Shared state of the equality-completion recursion. We enumerate
// partitions of the classes of `t` (restricted-growth style), rejecting
// groups that contain a disequality pair, and at each leaf rejecting
// partitions with a group of two or more classes none of which contains a
// variable (merging constants gratuitously is never required for
// completeness, and skipping such partitions keeps the enumeration
// canonical: distinct partitions yield distinct complete types).
class EqualityCompletionEnumerator {
 public:
  EqualityCompletionEnumerator(const Type& t,
                               const std::function<bool(const Type&)>& cb)
      : t_(t), cb_(cb) {
    int n = t.num_classes();
    class_has_var_.assign(n, false);
    for (int v = 0; v < t.num_vars(); ++v) {
      class_has_var_[t.ClassOf(v)] = true;
    }
    // Disequality adjacency between original classes.
    diseq_.assign(n, std::vector<bool>(n, false));
    for (const auto& [c1, c2] : t.disequalities()) {
      diseq_[c1][c2] = diseq_[c2][c1] = true;
    }
    // Representative element of each class.
    rep_.assign(n, -1);
    for (int e = 0; e < t.num_elements(); ++e) {
      if (rep_[t.ClassOf(e)] < 0) rep_[t.ClassOf(e)] = e;
    }
  }

  // Runs the enumeration; returns the number of completions delivered.
  size_t Run() {
    groups_.clear();
    stopped_ = false;
    count_ = 0;
    Recurse(0);
    return count_;
  }

 private:
  void Recurse(int next_class) {
    if (stopped_) return;
    if (next_class == t_.num_classes()) {
      EmitLeaf();
      return;
    }
    // Join an existing group (if no disequality conflict) ...
    for (size_t g = 0; g < groups_.size() && !stopped_; ++g) {
      bool conflict = false;
      for (int member : groups_[g]) {
        if (diseq_[member][next_class]) {
          conflict = true;
          break;
        }
      }
      if (conflict) continue;
      groups_[g].push_back(next_class);
      Recurse(next_class + 1);
      groups_[g].pop_back();
    }
    if (stopped_) return;
    // ... or start a new group.
    groups_.push_back({next_class});
    Recurse(next_class + 1);
    groups_.pop_back();
  }

  void EmitLeaf() {
    // Reject groups of >= 2 classes with no variable anywhere.
    for (const auto& group : groups_) {
      if (group.size() < 2) continue;
      bool any_var = false;
      for (int c : group) any_var |= class_has_var_[c];
      if (!any_var) return;
    }
    TypeBuilder builder(t_.num_vars(), t_.num_constants());
    builder.AddAll(t_);
    std::vector<bool> group_has_var(groups_.size(), false);
    for (size_t g = 0; g < groups_.size(); ++g) {
      for (size_t i = 1; i < groups_[g].size(); ++i) {
        builder.AddEq(ElementIndex(rep_[groups_[g][0]]),
                      ElementIndex(rep_[groups_[g][i]]));
      }
      for (int c : groups_[g]) group_has_var[g] = group_has_var[g] || class_has_var_[c];
    }
    // Disequalities between groups: required whenever a variable is
    // involved on either side; constant-only pairs stay undecided.
    for (size_t g1 = 0; g1 < groups_.size(); ++g1) {
      for (size_t g2 = g1 + 1; g2 < groups_.size(); ++g2) {
        if (!group_has_var[g1] && !group_has_var[g2]) continue;
        builder.AddNeq(ElementIndex(rep_[groups_[g1][0]]),
                       ElementIndex(rep_[groups_[g2][0]]));
      }
    }
    Result<Type> completed = builder.Build();
    // Merges may have made relational atoms contradictory; such a partition
    // admits no completion and is skipped.
    if (!completed.ok()) return;
    ++count_;
    if (!cb_(completed.value())) stopped_ = true;
  }

  const Type& t_;
  const std::function<bool(const Type&)>& cb_;
  std::vector<bool> class_has_var_;
  std::vector<std::vector<bool>> diseq_;
  std::vector<int> rep_;
  std::vector<std::vector<int>> groups_;
  bool stopped_ = false;
  size_t count_ = 0;
};

// Enumerates all tuples over [0, n) of the given arity, invoking f on each.
// Returns false if f requested a stop.
bool ForEachTuple(int n, int arity,
                  const std::function<bool(const std::vector<int>&)>& f) {
  std::vector<int> tuple(arity, 0);
  if (arity == 0) return f(tuple);
  if (n == 0) return true;  // no tuples
  while (true) {
    if (!f(tuple)) return false;
    int i = arity - 1;
    while (i >= 0 && tuple[i] == n - 1) {
      tuple[i] = 0;
      --i;
    }
    if (i < 0) return true;
    ++tuple[i];
  }
}

}  // namespace

size_t EnumerateEqualityCompletions(
    const Type& t, const std::function<bool(const Type&)>& cb) {
  EqualityCompletionEnumerator e(t, cb);
  return e.Run();
}

std::vector<Type> EqualityCompletions(const Type& t, size_t limit) {
  std::vector<Type> out;
  EnumerateEqualityCompletions(t, [&](const Type& c) {
    out.push_back(c);
    return out.size() < limit;
  });
  return out;
}

size_t CountEqualityCompletions(const Type& t) {
  return EnumerateEqualityCompletions(t, [](const Type&) { return true; });
}

size_t EnumerateCompletions(const Type& t, const Schema& schema,
                            const std::function<bool(const Type&)>& cb) {
  size_t delivered = 0;
  bool keep_going = true;
  EnumerateEqualityCompletions(t, [&](const Type& eq_complete) {
    // Collect the undetermined (relation, class-tuple) atoms.
    struct Missing {
      RelationId relation;
      std::vector<int> args;  // class ids (== representative elements below)
    };
    std::vector<Missing> missing;
    // Representative element per class of the completed type.
    std::vector<int> rep(eq_complete.num_classes(), -1);
    for (int e = 0; e < eq_complete.num_elements(); ++e) {
      if (rep[eq_complete.ClassOf(e)] < 0) rep[eq_complete.ClassOf(e)] = e;
    }
    for (RelationId r = 0; r < schema.num_relations(); ++r) {
      ForEachTuple(eq_complete.num_classes(), schema.arity(r),
                   [&](const std::vector<int>& classes) {
                     bool found = false;
                     for (const TypeAtom& a : eq_complete.atoms()) {
                       if (a.relation == r && a.args == classes) {
                         found = true;
                         break;
                       }
                     }
                     if (!found) missing.push_back(Missing{r, classes});
                     return true;
                   });
    }
    // Odometer over sign assignments for the missing atoms.
    std::vector<bool> signs(missing.size(), false);
    while (true) {
      TypeBuilder builder(t.num_vars(), t.num_constants());
      builder.AddAll(eq_complete);
      for (size_t i = 0; i < missing.size(); ++i) {
        std::vector<ElementIndex> elems;
        elems.reserve(missing[i].args.size());
        for (int c : missing[i].args) elems.push_back(ElementIndex(rep[c]));
        builder.AddAtom(missing[i].relation, std::move(elems), signs[i]);
      }
      Result<Type> full = builder.Build();
      RAV_CHECK(full.ok());  // new atoms cannot conflict with existing ones
      ++delivered;
      if (!cb(full.value())) {
        keep_going = false;
        return false;
      }
      // Advance the odometer.
      size_t i = 0;
      while (i < signs.size() && signs[i]) {
        signs[i] = false;
        ++i;
      }
      if (i == signs.size()) break;
      signs[i] = true;
    }
    return keep_going;
  });
  return delivered;
}

std::vector<Type> Completions(const Type& t, const Schema& schema,
                              size_t limit) {
  std::vector<Type> out;
  EnumerateCompletions(t, schema, [&](const Type& c) {
    out.push_back(c);
    return out.size() < limit;
  });
  return out;
}

}  // namespace rav
