#include "types/type.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "base/hash.h"

namespace rav {

namespace {

// Element display name for ToString / ToFormula diagnostics.
std::string ElementName(int element, int num_vars, int num_constants,
                        const Schema& schema, int num_registers) {
  if (element >= num_vars) {
    (void)num_constants;
    return schema.constant_name(element - num_vars);
  }
  if (num_registers > 0 && num_vars == 2 * num_registers) {
    if (element < num_registers) return "x" + std::to_string(element + 1);
    return "y" + std::to_string(element - num_registers + 1);
  }
  return "v" + std::to_string(element);
}

}  // namespace

Type::Type(int num_vars, int num_constants)
    : num_vars_(num_vars), num_constants_(num_constants) {
  RAV_CHECK_GE(num_vars, 0);
  RAV_CHECK_GE(num_constants, 0);
  num_classes_ = num_vars + num_constants;
  class_of_.resize(num_classes_);
  for (int i = 0; i < num_classes_; ++i) class_of_[i] = i;
}

int Type::ClassOf(int element) const {
  RAV_CHECK_GE(element, 0);
  RAV_CHECK_LT(static_cast<size_t>(element), class_of_.size());
  return class_of_[element];
}

bool Type::AreDistinct(int element_a, int element_b) const {
  int ca = ClassOf(element_a);
  int cb = ClassOf(element_b);
  if (ca == cb) return false;
  auto key = std::minmax(ca, cb);
  return std::binary_search(diseqs_.begin(), diseqs_.end(),
                            std::make_pair(key.first, key.second));
}

bool Type::IsEqualityComplete() const {
  // Which classes contain a variable?
  std::vector<bool> has_var(num_classes_, false);
  for (int e = 0; e < num_vars_; ++e) has_var[class_of_[e]] = true;
  for (int c1 = 0; c1 < num_classes_; ++c1) {
    for (int c2 = c1 + 1; c2 < num_classes_; ++c2) {
      if (!has_var[c1] && !has_var[c2]) continue;  // const-const: optional
      if (!std::binary_search(diseqs_.begin(), diseqs_.end(),
                              std::make_pair(c1, c2))) {
        return false;
      }
    }
  }
  return true;
}

bool Type::IsComplete(const Schema& schema) const {
  if (!IsEqualityComplete()) return false;
  // Atoms are canonical & deduplicated, so per-relation coverage of all
  // class tuples reduces to a count comparison.
  std::vector<size_t> per_relation(schema.num_relations(), 0);
  for (const TypeAtom& a : atoms_) {
    RAV_CHECK_GE(a.relation, 0);
    RAV_CHECK_LT(a.relation, schema.num_relations());
    ++per_relation[a.relation];
  }
  for (RelationId r = 0; r < schema.num_relations(); ++r) {
    double expected = std::pow(static_cast<double>(num_classes_),
                               static_cast<double>(schema.arity(r)));
    if (static_cast<double>(per_relation[r]) != expected) return false;
  }
  return true;
}

bool Type::HoldsIn(const Database& db, const ValueTuple& var_values) const {
  RAV_CHECK_EQ(static_cast<int>(var_values.size()), num_vars_);
  // Element values: variables from the valuation, constants from db.
  std::vector<DataValue> value_of_class(num_classes_, 0);
  std::vector<bool> seen(num_classes_, false);
  auto element_value = [&](int e) -> DataValue {
    return e < num_vars_ ? var_values[e] : db.constant(e - num_vars_);
  };
  for (int e = 0; e < num_elements(); ++e) {
    int c = class_of_[e];
    DataValue v = element_value(e);
    if (!seen[c]) {
      seen[c] = true;
      value_of_class[c] = v;
    } else if (value_of_class[c] != v) {
      return false;  // forced equality violated
    }
  }
  for (const auto& [c1, c2] : diseqs_) {
    if (value_of_class[c1] == value_of_class[c2]) return false;
  }
  for (const TypeAtom& a : atoms_) {
    ValueTuple args;
    args.reserve(a.args.size());
    for (int c : a.args) args.push_back(value_of_class[c]);
    if (db.Contains(a.relation, args) != a.positive) return false;
  }
  return true;
}

bool Type::HoldsEquality(const ValueTuple& var_values) const {
  RAV_CHECK(atoms_.empty());
  RAV_CHECK_EQ(num_constants_, 0);
  RAV_CHECK_EQ(static_cast<int>(var_values.size()), num_vars_);
  std::vector<DataValue> value_of_class(num_classes_, 0);
  std::vector<bool> seen(num_classes_, false);
  for (int e = 0; e < num_vars_; ++e) {
    int c = class_of_[e];
    if (!seen[c]) {
      seen[c] = true;
      value_of_class[c] = var_values[e];
    } else if (value_of_class[c] != var_values[e]) {
      return false;
    }
  }
  for (const auto& [c1, c2] : diseqs_) {
    if (value_of_class[c1] == value_of_class[c2]) return false;
  }
  return true;
}

Type Type::Restrict(const std::vector<bool>& keep_var) const {
  RAV_CHECK_EQ(static_cast<int>(keep_var.size()), num_vars_);
  // Renumber kept variables 0..m-1 in original order.
  std::vector<int> new_var_id(num_vars_, -1);
  int m = 0;
  for (int v = 0; v < num_vars_; ++v) {
    if (keep_var[v]) new_var_id[v] = m++;
  }
  // A class survives iff it contains a kept variable or a constant.
  // Collect, per old class, the new elements it contains.
  std::vector<std::vector<int>> members(num_classes_);
  for (int v = 0; v < num_vars_; ++v) {
    if (keep_var[v]) members[class_of_[v]].push_back(new_var_id[v]);
  }
  for (int c = 0; c < num_constants_; ++c) {
    members[class_of_[num_vars_ + c]].push_back(m + c);
  }

  TypeBuilder builder(m, num_constants_);
  std::vector<int> survivor_rep(num_classes_, -1);
  for (int c = 0; c < num_classes_; ++c) {
    if (members[c].empty()) continue;
    survivor_rep[c] = members[c][0];
    for (size_t i = 1; i < members[c].size(); ++i) {
      builder.AddEq(ElementIndex(members[c][0]), ElementIndex(members[c][i]));
    }
  }
  for (const auto& [c1, c2] : diseqs_) {
    if (survivor_rep[c1] >= 0 && survivor_rep[c2] >= 0) {
      builder.AddNeq(ElementIndex(survivor_rep[c1]),
                     ElementIndex(survivor_rep[c2]));
    }
  }
  for (const TypeAtom& a : atoms_) {
    std::vector<ElementIndex> elems;
    elems.reserve(a.args.size());
    bool all_survive = true;
    for (int c : a.args) {
      if (survivor_rep[c] < 0) {
        all_survive = false;
        break;
      }
      elems.push_back(ElementIndex(survivor_rep[c]));
    }
    if (all_survive) builder.AddAtom(a.relation, std::move(elems), a.positive);
  }
  Result<Type> result = builder.Build();
  RAV_CHECK(result.ok());  // restriction of a satisfiable type is satisfiable
  return std::move(result).value();
}

Result<Type> Type::Conjoin(const Type& other) const {
  RAV_CHECK_EQ(num_vars_, other.num_vars_);
  RAV_CHECK_EQ(num_constants_, other.num_constants_);
  TypeBuilder builder(num_vars_, num_constants_);
  builder.AddAll(*this);
  builder.AddAll(other);
  return builder.Build();
}

bool Type::operator==(const Type& other) const {
  return num_vars_ == other.num_vars_ &&
         num_constants_ == other.num_constants_ &&
         class_of_ == other.class_of_ && diseqs_ == other.diseqs_ &&
         atoms_ == other.atoms_;
}

Formula Type::ToFormula() const {
  std::vector<Formula> parts;
  auto term_of = [&](int element) {
    return element < num_vars_ ? Term::Var(element)
                               : Term::Const(element - num_vars_);
  };
  // One representative element per class (first occurrence).
  std::vector<int> rep(num_classes_, -1);
  for (int e = 0; e < num_elements(); ++e) {
    int c = class_of_[e];
    if (rep[c] < 0) {
      rep[c] = e;
    } else {
      parts.push_back(Formula::Eq(term_of(rep[c]), term_of(e)));
    }
  }
  for (const auto& [c1, c2] : diseqs_) {
    parts.push_back(Formula::Neq(term_of(rep[c1]), term_of(rep[c2])));
  }
  for (const TypeAtom& a : atoms_) {
    std::vector<Term> args;
    args.reserve(a.args.size());
    for (int c : a.args) args.push_back(term_of(rep[c]));
    Formula atom = Formula::Rel(a.relation, std::move(args));
    parts.push_back(a.positive ? atom : Formula::Not(atom));
  }
  return Formula::AndAll(parts);
}

std::string Type::ToString(const Schema& schema, int num_registers) const {
  std::vector<std::string> parts;
  std::vector<int> rep(num_classes_, -1);
  auto name = [&](int e) {
    return ElementName(e, num_vars_, num_constants_, schema, num_registers);
  };
  for (int e = 0; e < num_elements(); ++e) {
    int c = class_of_[e];
    if (rep[c] < 0) {
      rep[c] = e;
    } else {
      parts.push_back(name(rep[c]) + " = " + name(e));
    }
  }
  for (const auto& [c1, c2] : diseqs_) {
    parts.push_back(name(rep[c1]) + " ≠ " + name(rep[c2]));
  }
  for (const TypeAtom& a : atoms_) {
    std::string s = a.positive ? "" : "¬";
    s += schema.relation_name(a.relation);
    s += "(";
    for (size_t i = 0; i < a.args.size(); ++i) {
      if (i > 0) s += ", ";
      s += name(rep[a.args[i]]);
    }
    s += ")";
    parts.push_back(std::move(s));
  }
  if (parts.empty()) return "⊤";
  std::string out = parts[0];
  for (size_t i = 1; i < parts.size(); ++i) out += " ∧ " + parts[i];
  return out;
}

size_t Type::Hasher::operator()(const Type& t) const {
  size_t seed = 0;
  HashCombineValue(seed, t.num_vars_);
  HashCombineValue(seed, t.num_constants_);
  for (int c : t.class_of_) HashCombineValue(seed, c);
  for (const auto& [a, b] : t.diseqs_) {
    HashCombineValue(seed, a);
    HashCombineValue(seed, b);
  }
  for (const TypeAtom& atom : t.atoms_) {
    HashCombineValue(seed, atom.relation);
    HashCombineValue(seed, atom.positive);
    for (int c : atom.args) HashCombineValue(seed, c);
  }
  return seed;
}

// ---------------------------------------------------------------------------
// TypeBuilder

TypeBuilder::TypeBuilder(int num_vars, int num_constants)
    : num_vars_(num_vars), num_constants_(num_constants) {
  RAV_CHECK_GE(num_vars, 0);
  RAV_CHECK_GE(num_constants, 0);
}

TypeBuilder& TypeBuilder::AddEq(ElementIndex lhs, ElementIndex rhs) {
  eqs_.emplace_back(lhs.value(), rhs.value());
  return *this;
}

TypeBuilder& TypeBuilder::AddNeq(ElementIndex lhs, ElementIndex rhs) {
  neqs_.emplace_back(lhs.value(), rhs.value());
  return *this;
}

TypeBuilder& TypeBuilder::AddAtom(RelationId relation,
                                  std::vector<ElementIndex> elements,
                                  bool positive) {
  RawAtom atom{relation, {}, positive};
  atom.elements.reserve(elements.size());
  for (ElementIndex e : elements) atom.elements.push_back(e.value());
  raw_atoms_.push_back(std::move(atom));
  return *this;
}

TypeBuilder& TypeBuilder::AddAll(const Type& t) {
  RAV_CHECK_EQ(t.num_vars(), num_vars_);
  RAV_CHECK_EQ(t.num_constants(), num_constants_);
  // Equalities: first element of each class is the representative.
  std::vector<int> rep(t.num_classes(), -1);
  for (int e = 0; e < t.num_elements(); ++e) {
    int c = t.ClassOf(e);
    if (rep[c] < 0) {
      rep[c] = e;
    } else {
      AddEq(ElementIndex(rep[c]), ElementIndex(e));
    }
  }
  for (const auto& [c1, c2] : t.disequalities()) {
    AddNeq(ElementIndex(rep[c1]), ElementIndex(rep[c2]));
  }
  for (const TypeAtom& a : t.atoms()) {
    std::vector<ElementIndex> elems;
    elems.reserve(a.args.size());
    for (int c : a.args) elems.push_back(ElementIndex(rep[c]));
    AddAtom(a.relation, std::move(elems), a.positive);
  }
  return *this;
}

Result<Type> TypeBuilder::Build() const {
  const int n = num_vars_ + num_constants_;
  auto check_element = [&](int e) {
    RAV_CHECK_GE(e, 0);
    RAV_CHECK_LT(e, n);
  };

  UnionFind uf(n);
  for (const auto& [a, b] : eqs_) {
    check_element(a);
    check_element(b);
    uf.Union(a, b);
  }

  // Canonical class ids by first occurrence.
  std::vector<int> class_of(n, -1);
  std::vector<int> root_to_class(n, -1);
  int num_classes = 0;
  for (int e = 0; e < n; ++e) {
    int root = uf.Find(e);
    if (root_to_class[root] < 0) root_to_class[root] = num_classes++;
    class_of[e] = root_to_class[root];
  }

  // Disequalities.
  std::vector<std::pair<int, int>> diseqs;
  for (const auto& [a, b] : neqs_) {
    check_element(a);
    check_element(b);
    int ca = class_of[a];
    int cb = class_of[b];
    if (ca == cb) {
      return Status::InvalidArgument(
          "unsatisfiable type: elements forced both equal and distinct");
    }
    diseqs.emplace_back(std::min(ca, cb), std::max(ca, cb));
  }
  std::sort(diseqs.begin(), diseqs.end());
  diseqs.erase(std::unique(diseqs.begin(), diseqs.end()), diseqs.end());

  // Atoms: canonicalize args to classes; detect sign conflicts.
  std::map<std::pair<RelationId, std::vector<int>>, bool> atom_signs;
  for (const RawAtom& a : raw_atoms_) {
    std::vector<int> args;
    args.reserve(a.elements.size());
    for (int e : a.elements) {
      check_element(e);
      args.push_back(class_of[e]);
    }
    auto key = std::make_pair(a.relation, std::move(args));
    auto [it, inserted] = atom_signs.emplace(std::move(key), a.positive);
    if (!inserted && it->second != a.positive) {
      return Status::InvalidArgument(
          "unsatisfiable type: contradictory relational literals");
    }
  }
  std::vector<TypeAtom> atoms;
  atoms.reserve(atom_signs.size());
  for (const auto& [key, positive] : atom_signs) {
    atoms.push_back(TypeAtom{key.first, key.second, positive});
  }
  std::sort(atoms.begin(), atoms.end());

  Type t(num_vars_, num_constants_);
  t.num_classes_ = num_classes;
  t.class_of_ = std::move(class_of);
  t.diseqs_ = std::move(diseqs);
  t.atoms_ = std::move(atoms);
  return t;
}

// ---------------------------------------------------------------------------
// Embedding and formula evaluation

Type EmbedTransition(const Type& delta, int k_old, int k_new) {
  RAV_CHECK_EQ(delta.num_vars(), 2 * k_old);
  RAV_CHECK_GE(k_new, k_old);
  TypeBuilder builder(2 * k_new, delta.num_constants());
  // Element mapping old -> new: x_i -> i, y_i -> k_new + i, constants shift.
  auto map_element = [&](int e) {
    if (e < k_old) return e;
    if (e < 2 * k_old) return k_new + (e - k_old);
    return 2 * k_new + (e - 2 * k_old);
  };
  std::vector<int> rep(delta.num_classes(), -1);
  for (int e = 0; e < delta.num_elements(); ++e) {
    int c = delta.ClassOf(e);
    if (rep[c] < 0) {
      rep[c] = e;
    } else {
      builder.AddEq(ElementIndex(map_element(rep[c])),
                    ElementIndex(map_element(e)));
    }
  }
  for (const auto& [c1, c2] : delta.disequalities()) {
    builder.AddNeq(ElementIndex(map_element(rep[c1])),
                   ElementIndex(map_element(rep[c2])));
  }
  for (const TypeAtom& a : delta.atoms()) {
    std::vector<ElementIndex> elems;
    elems.reserve(a.args.size());
    for (int c : a.args) elems.push_back(ElementIndex(map_element(rep[c])));
    builder.AddAtom(a.relation, std::move(elems), a.positive);
  }
  Result<Type> out = builder.Build();
  RAV_CHECK(out.ok());
  return std::move(out).value();
}

Result<bool> EvaluateOnCompleteType(const Formula& formula,
                                    const Type& delta) {
  switch (formula.op()) {
    case Formula::Op::kTrue:
      return true;
    case Formula::Op::kFalse:
      return false;
    case Formula::Op::kEq: {
      Term a = formula.lhs();
      Term b = formula.rhs();
      auto element_of = [&](const Term& t) {
        return t.is_variable() ? t.index : delta.num_vars() + t.index;
      };
      int ea = element_of(a);
      int eb = element_of(b);
      if (ea >= delta.num_elements() || eb >= delta.num_elements()) {
        return Status::InvalidArgument(
            "EvaluateOnCompleteType: variable out of range");
      }
      if (delta.AreEqual(ea, eb)) return true;
      if (delta.AreDistinct(ea, eb)) return false;
      return Status::FailedPrecondition(
          "EvaluateOnCompleteType: equality undetermined by the type");
    }
    case Formula::Op::kRel: {
      std::vector<int> classes;
      classes.reserve(formula.args().size());
      for (const Term& t : formula.args()) {
        int e = t.is_variable() ? t.index : delta.num_vars() + t.index;
        if (e >= delta.num_elements()) {
          return Status::InvalidArgument(
              "EvaluateOnCompleteType: variable out of range");
        }
        classes.push_back(delta.ClassOf(e));
      }
      for (const TypeAtom& a : delta.atoms()) {
        if (a.relation == formula.relation() && a.args == classes) {
          return a.positive;
        }
      }
      return Status::FailedPrecondition(
          "EvaluateOnCompleteType: relational atom undetermined by the type");
    }
    case Formula::Op::kNot: {
      RAV_ASSIGN_OR_RETURN(bool v,
                           EvaluateOnCompleteType(formula.children()[0], delta));
      return !v;
    }
    case Formula::Op::kAnd: {
      for (const Formula& c : formula.children()) {
        RAV_ASSIGN_OR_RETURN(bool v, EvaluateOnCompleteType(c, delta));
        if (!v) return false;
      }
      return true;
    }
    case Formula::Op::kOr: {
      for (const Formula& c : formula.children()) {
        RAV_ASSIGN_OR_RETURN(bool v, EvaluateOnCompleteType(c, delta));
        if (v) return true;
      }
      return false;
    }
  }
  RAV_CHECK(false);
  return false;
}

// ---------------------------------------------------------------------------
// Frontier operations

Type RestrictToX(const Type& delta, int k) {
  RAV_CHECK_EQ(delta.num_vars(), 2 * k);
  std::vector<bool> keep(2 * k, false);
  for (int i = 0; i < k; ++i) keep[i] = true;
  return delta.Restrict(keep);
}

Type RestrictToYAsX(const Type& delta, int k) {
  RAV_CHECK_EQ(delta.num_vars(), 2 * k);
  std::vector<bool> keep(2 * k, false);
  for (int i = 0; i < k; ++i) keep[k + i] = true;
  return delta.Restrict(keep);
}

bool FrontierCompatible(const Type& delta, const Type& delta_next, int k) {
  return RestrictToYAsX(delta, k) == RestrictToX(delta_next, k);
}

}  // namespace rav
