#ifndef RAV_TYPES_TYPE_H_
#define RAV_TYPES_TYPE_H_

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "base/status.h"
#include "base/strong_id.h"
#include "base/union_find.h"
#include "base/value.h"
#include "relational/database.h"
#include "relational/formula.h"
#include "relational/schema.h"

namespace rav {

// A signed relational atom of a σ-type: R(e₁,...,e_m) or ¬R(e₁,...,e_m)
// where the eᵢ are *class ids* of the owning Type.
struct TypeAtom {
  RelationId relation = -1;
  std::vector<int> args;  // class ids
  bool positive = true;

  auto operator<=>(const TypeAtom&) const = default;
};

// A σ-type (Section 2 of the paper): a satisfiable conjunction of literals
// over a fixed set of *elements* — `num_vars` variables followed by
// `num_constants` constant symbols. For a transition type of a k-register
// automaton, num_vars = 2k with elements 0..k-1 = x̄ and k..2k-1 = ȳ.
//
// The representation is canonical rather than syntactic:
//   * a partition of the elements into equality classes (forced equalities),
//   * a set of disequalities between classes,
//   * a set of signed relational atoms over classes.
// Two types are operator== equal iff they are logically the same
// conjunction up to literal order and duplication. A Type is satisfiable by
// construction: use TypeBuilder to assemble one.
class Type {
 public:
  // The trivially-true type (no literals).
  Type(int num_vars, int num_constants);

  int num_vars() const { return num_vars_; }
  int num_constants() const { return num_constants_; }
  int num_elements() const { return num_vars_ + num_constants_; }
  // Element id of constant symbol c.
  int ConstantElement(ConstantId c) const { return num_vars_ + c; }

  // Number of equality classes.
  int num_classes() const { return num_classes_; }
  // Class id of element e (ids are dense, ordered by first occurrence).
  int ClassOf(int element) const;

  // The literals.
  const std::vector<std::pair<int, int>>& disequalities() const {
    return diseqs_;
  }
  const std::vector<TypeAtom>& atoms() const { return atoms_; }

  // True iff the type forces a = b (same class).
  bool AreEqual(int element_a, int element_b) const {
    return ClassOf(element_a) == ClassOf(element_b);
  }
  // True iff the type contains an explicit disequality a ≠ b.
  bool AreDistinct(int element_a, int element_b) const;

  // True iff every pair of classes with at least one variable-containing
  // side is separated by a disequality, and every class tuple has a signed
  // atom for every relation of `schema` — i.e. the type is complete in the
  // paper's sense.
  bool IsComplete(const Schema& schema) const;
  // Completeness of the equality part only (the relevant notion when the
  // schema has no relations).
  bool IsEqualityComplete() const;

  // Does the conjunction hold in `db` when variable i takes value
  // `var_values[i]`? Constant symbols are resolved through db.
  bool HoldsIn(const Database& db, const ValueTuple& var_values) const;

  // Equality-only variant for empty schemas (no relational atoms allowed,
  // no constants bound): checks equalities and disequalities only.
  bool HoldsEquality(const ValueTuple& var_values) const;

  // Existential-free syntactic restriction (the paper's δ|z̄): keeps exactly
  // the literals all of whose elements lie in a kept-variable class or a
  // constant class. keep_var.size() must equal num_vars(); kept variables
  // are renumbered 0..m-1 in order; constants are preserved.
  Type Restrict(const std::vector<bool>& keep_var) const;

  // Conjoins this type with `other` (same element space). Returns an error
  // if the conjunction is unsatisfiable.
  Result<Type> Conjoin(const Type& other) const;

  // True iff for every pair of elements both types agree on forced
  // equality, and literal-for-literal the types are the same conjunction.
  bool operator==(const Type& other) const;

  // Converts to an equivalent quantifier-free Formula (variables keep
  // their indices; class structure is expanded back into literals).
  Formula ToFormula() const;

  std::string ToString(const Schema& schema, int num_registers = -1) const;

  struct Hasher {
    size_t operator()(const Type& t) const;
  };

 private:
  friend class TypeBuilder;

  int num_vars_ = 0;
  int num_constants_ = 0;
  int num_classes_ = 0;
  std::vector<int> class_of_;                 // element -> class id
  std::vector<std::pair<int, int>> diseqs_;   // sorted (min,max) class pairs
  std::vector<TypeAtom> atoms_;               // sorted
};

// Incremental assembly of a Type with on-the-fly contradiction detection.
// Usage:
//   TypeBuilder b(/*num_vars=*/2*k, /*num_constants=*/c);
//   b.AddEq(0, 1); b.AddNeq(1, 3); b.AddAtom(rel, {0, 2}, true);
//   RAV_ASSIGN_OR_RETURN(Type t, b.Build());
class TypeBuilder {
 public:
  TypeBuilder(int num_vars, int num_constants);

  // Convenience: a builder for a transition type of a k-register automaton
  // over `schema` (2k variables plus the schema's constants).
  static TypeBuilder ForTransition(int k, const Schema& schema) {
    return TypeBuilder(2 * k, schema.num_constants());
  }

  // x-variable i (0-based register index) and y-variable i as element ids,
  // assuming the 2k-variable transition layout. The strong ElementIndex
  // return type is what keeps AddEq(X(i), Y(j)) un-swappable with the raw
  // register indices feeding it.
  ElementIndex X(int i) const { return ElementIndex(i); }
  ElementIndex Y(int i) const { return ElementIndex(num_vars_ / 2 + i); }
  ElementIndex Const(ConstantId c) const { return ElementIndex(num_vars_ + c); }

  // lhs/rhs are symmetric: both literals are unordered pairs.
  TypeBuilder& AddEq(ElementIndex lhs, ElementIndex rhs);
  TypeBuilder& AddNeq(ElementIndex lhs, ElementIndex rhs);
  TypeBuilder& AddAtom(RelationId relation, std::vector<ElementIndex> elements,
                       bool positive);

  // Conjoins all literals of `t` (over the same element space).
  TypeBuilder& AddAll(const Type& t);

  // Canonicalizes and checks satisfiability. InvalidArgument if the
  // conjunction is contradictory.
  Result<Type> Build() const;

 private:
  int num_vars_;
  int num_constants_;
  std::vector<std::pair<int, int>> eqs_;
  std::vector<std::pair<int, int>> neqs_;
  struct RawAtom {
    RelationId relation;
    std::vector<int> elements;
    bool positive;
  };
  std::vector<RawAtom> raw_atoms_;
};

// Embeds a transition type of a k_old-register automaton into the
// transition-variable layout of a k_new-register automaton (k_new ≥ k_old):
// xᵢ ↦ xᵢ, yᵢ ↦ yᵢ; the new registers are unconstrained.
Type EmbedTransition(const Type& delta, int k_old, int k_new);

// Evaluates a quantifier-free formula over x̄ ∪ ȳ (and the schema's
// constants) against a complete transition type: equality atoms are read
// off the class partition, relational atoms off the type's signed atoms.
// Fails if the type leaves a mentioned atom undetermined (the type is not
// complete enough to decide the formula).
Result<bool> EvaluateOnCompleteType(const Formula& formula, const Type& delta);

// The paper's frontier-compatibility condition on consecutive control
// symbols (condition (iii) of symbolic control traces): δ|ȳ and δ′|x̄ are
// isomorphic under yᵢ ↦ xᵢ. Both types must be transition types of a
// k-register automaton (2k variables).
bool FrontierCompatible(const Type& delta, const Type& delta_next, int k);

// δ restricted to x̄ (the paper's π₁(δ)): a type over k variables.
Type RestrictToX(const Type& delta, int k);
// δ restricted to ȳ, renamed so yᵢ becomes variable i: a type over k vars.
Type RestrictToYAsX(const Type& delta, int k);

}  // namespace rav

#endif  // RAV_TYPES_TYPE_H_
