#ifndef RAV_RA_INTERSECT_H_
#define RAV_RA_INTERSECT_H_

#include "automata/nba.h"
#include "base/status.h"
#include "ra/register_automaton.h"

namespace rav {

// Restricts a register automaton by an ω-regular condition on its *state
// trace*: the result's runs are exactly the runs of `automaton` whose
// state trace lies in L(state_nba). The paper uses this operation inside
// the proof of Theorem 13 ("intersect A with a Büchi automaton that
// accepts the [consistent] control traces"); it is also how ad-hoc
// fairness or protocol constraints are imposed on a workflow.
//
// The product carries (automaton state, NBA state after reading it, and
// a 2-counter for the conjunction of the two Büchi conditions); the NBA
// must be over the alphabet {0, ..., num_states-1}.
Result<RegisterAutomaton> IntersectWithStateNba(
    const RegisterAutomaton& automaton, const Nba& state_nba);

}  // namespace rav

#endif  // RAV_RA_INTERSECT_H_
