#ifndef RAV_RA_CONTROL_H_
#define RAV_RA_CONTROL_H_

#include <string>
#include <vector>

#include "automata/nba.h"
#include "ra/register_automaton.h"
#include "ra/run.h"

namespace rav {

// The finite alphabet of control symbols (q, δ) of a register automaton:
// one symbol per distinct (source state, guard) pair occurring in Δ.
// Control traces and symbolic control traces are ω-words over this
// alphabet.
class ControlAlphabet {
 public:
  explicit ControlAlphabet(const RegisterAutomaton& automaton);

  int size() const { return static_cast<int>(symbols_.size()); }

  StateId state_of(int symbol) const { return symbols_[symbol].first; }
  const Type& guard_of(int symbol) const { return symbols_[symbol].second; }
  // guard_of(symbol) restricted to its x̄-part, precomputed once — the
  // closure engine applies it at every window's last position.
  const Type& x_restricted_guard_of(int symbol) const {
    return restricted_[symbol];
  }

  // Symbol of (q, guard), or -1.
  int SymbolOf(StateId q, const Type& guard) const;
  // Symbol induced by a transition (its source state and guard).
  int SymbolOfTransition(int transition_index) const {
    return transition_symbol_[transition_index];
  }

  std::string SymbolName(const RegisterAutomaton& automaton,
                         int symbol) const;

 private:
  std::vector<std::pair<StateId, Type>> symbols_;
  std::vector<Type> restricted_;
  std::vector<int> transition_symbol_;
};

// Builds the Büchi automaton recognizing SControl(A), the symbolic control
// traces of A (Section 2): ω-words (q_n, δ_n) with q_0 initial, a final
// state occurring infinitely often, (q_n, δ_n, q_{n+1}) ∈ Δ, and
// consecutive types agreeing on the shared registers (frontier
// compatibility). By the result of [19] (re-proved constructively in
// Theorem 9), for complete automata SControl(A) = Control(A).
Nba BuildSControlNba(const RegisterAutomaton& automaton,
                     const ControlAlphabet& alphabet);

// The state-trace Büchi automaton: the homomorphic image of SControl(A)
// under (q, δ) ↦ q. Alphabet = automaton states.
Nba BuildStateTraceNba(const RegisterAutomaton& automaton,
                       const ControlAlphabet& alphabet);

// Control word (sequence of control symbols) of a finite run.
std::vector<int> ControlWordOfRun(const RegisterAutomaton& automaton,
                                  const ControlAlphabet& alphabet,
                                  const FiniteRun& run);

// Control word of a lasso run, as a lasso over control symbols.
LassoWord ControlWordOfLassoRun(const RegisterAutomaton& automaton,
                                const ControlAlphabet& alphabet,
                                const LassoRun& run);

}  // namespace rav

#endif  // RAV_RA_CONTROL_H_
