#ifndef RAV_RA_CONTROL_H_
#define RAV_RA_CONTROL_H_

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "automata/nba.h"
#include "compile/guard_tables.h"
#include "ra/register_automaton.h"
#include "ra/run.h"

namespace rav {

// The finite alphabet of control symbols (q, δ) of a register automaton:
// one symbol per distinct (source state, guard) pair occurring in Δ.
// Control traces and symbolic control traces are ω-words over this
// alphabet.
//
// Building the alphabet is also where the guard compilation layer hooks
// in (docs/compilation.md): with GuardEngine::kCompiled (the kAuto
// default unless RAV_GUARD_TABLES=off) every distinct guard is lowered
// once into a compile::GuardTableSet that the closure engine, the run
// validators, and the simulators all share.
class ControlAlphabet {
 public:
  explicit ControlAlphabet(
      const RegisterAutomaton& automaton,
      compile::GuardEngine engine = compile::GuardEngine::kAuto);

  int size() const { return static_cast<int>(symbols_.size()); }
  // The dense symbol id space, iterable: `for (SymbolId s : a.Symbols())`.
  IdRange<SymbolId> Symbols() const { return IdRange<SymbolId>(size()); }

  StateId state_of(SymbolId symbol) const {
    return symbols_[symbol.value()].first;
  }
  const Type& guard_of(SymbolId symbol) const {
    return symbols_[symbol.value()].second;
  }
  // guard_of(symbol) restricted to its x̄-part, precomputed once — the
  // closure engine applies it at every window's last position.
  const Type& x_restricted_guard_of(SymbolId symbol) const {
    return restricted_[symbol.value()];
  }

  // Symbol of (q, guard), or SymbolId::Invalid().
  SymbolId SymbolOf(StateId q, const Type& guard) const;
  // Symbol induced by a transition (its source state and guard).
  SymbolId SymbolOfTransition(int transition_index) const {
    return transition_symbol_[transition_index];
  }

  // --- compiled guard tables ---
  // The engine the alphabet resolved to (never kAuto).
  compile::GuardEngine guard_engine() const { return engine_; }
  // The compiled table set, or nullptr under kInterpreted.
  const compile::GuardTableSet* tables() const {
    return tables_ ? &*tables_ : nullptr;
  }
  // Dense table id of a symbol's guard (compiled engine only).
  GuardId guard_id_of_symbol(SymbolId symbol) const {
    return symbol_guard_id_[symbol.value()];
  }
  // Table id for the closure engine's per-position replay, or
  // GuardId::Invalid() when the symbol's full-guard / x̄-restricted
  // program is empty — the skip the hot closure loop takes with one dense
  // load, mirroring the interpreted path's kEmptyProgram marker (compiled
  // engine only).
  GuardId closure_program_of_symbol(SymbolId symbol) const {
    return symbol_closure_program_[symbol.value()];
  }
  GuardId x_closure_program_of_symbol(SymbolId symbol) const {
    return symbol_x_closure_program_[symbol.value()];
  }
  // Borrowed view over the owning automaton's transitions; falsy under
  // kInterpreted. Valid as long as this alphabet is alive and unmoved.
  compile::TransitionGuardView transition_guard_view() const {
    if (!tables_) return {};
    return {&*tables_, transition_guard_id_.data()};
  }
  // Distinct guards / total compiled-table bytes (0 under kInterpreted).
  int num_distinct_guards() const {
    return tables_ ? tables_->num_guards() : 0;
  }
  size_t guard_table_bytes() const {
    return tables_ ? tables_->table_bytes() : 0;
  }

  std::string SymbolName(const RegisterAutomaton& automaton,
                         SymbolId symbol) const;

 private:
  std::vector<std::pair<StateId, Type>> symbols_;
  std::vector<Type> restricted_;
  std::vector<SymbolId> transition_symbol_;
  compile::GuardEngine engine_ = compile::GuardEngine::kInterpreted;
  std::optional<compile::GuardTableSet> tables_;
  std::vector<GuardId> transition_guard_id_;  // transition -> table id
  std::vector<GuardId> symbol_guard_id_;      // symbol -> table id
  // symbol -> closure-program table id, Invalid() if the program is empty
  std::vector<GuardId> symbol_closure_program_;
  std::vector<GuardId> symbol_x_closure_program_;
};

// Builds the Büchi automaton recognizing SControl(A), the symbolic control
// traces of A (Section 2): ω-words (q_n, δ_n) with q_0 initial, a final
// state occurring infinitely often, (q_n, δ_n, q_{n+1}) ∈ Δ, and
// consecutive types agreeing on the shared registers (frontier
// compatibility). By the result of [19] (re-proved constructively in
// Theorem 9), for complete automata SControl(A) = Control(A).
Nba BuildSControlNba(const RegisterAutomaton& automaton,
                     const ControlAlphabet& alphabet);

// The state-trace Büchi automaton: the homomorphic image of SControl(A)
// under (q, δ) ↦ q. Alphabet = automaton states.
Nba BuildStateTraceNba(const RegisterAutomaton& automaton,
                       const ControlAlphabet& alphabet);

// Control word (sequence of control symbols) of a finite run.
std::vector<int> ControlWordOfRun(const RegisterAutomaton& automaton,
                                  const ControlAlphabet& alphabet,
                                  const FiniteRun& run);

// Control word of a lasso run, as a lasso over control symbols.
LassoWord ControlWordOfLassoRun(const RegisterAutomaton& automaton,
                                const ControlAlphabet& alphabet,
                                const LassoRun& run);

}  // namespace rav

#endif  // RAV_RA_CONTROL_H_
