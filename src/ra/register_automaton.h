#ifndef RAV_RA_REGISTER_AUTOMATON_H_
#define RAV_RA_REGISTER_AUTOMATON_H_

#include <string>
#include <vector>

#include "base/source_location.h"
#include "base/status.h"
#include "base/strong_id.h"
#include "relational/schema.h"
#include "types/type.h"

namespace rav {

// A transition (p, δ, q): from state p, the registers may evolve from x̄
// to ȳ in any way satisfying the σ-type δ (evaluated against the
// database), landing in state q.
struct RaTransition {
  StateId from;
  Type guard;
  StateId to;
};

// A database-driven register automaton A = (k, σ, Q, I, F, Δ) with Büchi
// acceptance (Section 2 of the paper): runs are infinite sequences of
// (value-tuple, state, type) triples over a database D, starting in I,
// visiting F infinitely often, with every consecutive pair of value
// tuples satisfying the transition's type in D.
//
// The "no database" automata of Sections 4–5 are the special case of an
// empty schema.
//
// State ids are the strong StateId type (base/strong_id.h): dense indices
// minted by AddState, iterable via States().
class RegisterAutomaton {
 public:
  RegisterAutomaton(int num_registers, Schema schema);

  int num_registers() const { return num_registers_; }
  const Schema& schema() const { return schema_; }

  // --- construction ---
  StateId AddState(const std::string& name);
  void SetInitial(StateId state, bool initial = true);
  void SetFinal(StateId state, bool final_state = true);
  // Guard must be a type over 2k variables and the schema's constants.
  void AddTransition(StateId from, Type guard, StateId to);

  // Fresh TypeBuilder shaped for this automaton's transitions.
  TypeBuilder NewGuardBuilder() const {
    return TypeBuilder::ForTransition(num_registers_, schema_);
  }

  // Spec-file positions of declarations, recorded by io/text_format so
  // analysis/ diagnostics can point at source lines. Default-invalid for
  // programmatically built automata.
  void SetStateLocation(StateId state, SourceLocation loc);
  const SourceLocation& state_location(StateId state) const;
  void SetTransitionLocation(int index, SourceLocation loc);
  const SourceLocation& transition_location(int index) const;

  // --- inspection ---
  int num_states() const { return static_cast<int>(state_names_.size()); }
  int num_transitions() const { return static_cast<int>(transitions_.size()); }
  // The dense state id space, iterable: `for (StateId q : a.States())`.
  IdRange<StateId> States() const { return IdRange<StateId>(num_states()); }
  const std::string& state_name(StateId s) const;
  // StateId::Invalid() when no state has that name.
  StateId FindState(const std::string& name) const;
  bool IsInitial(StateId s) const { return initial_[s.value()]; }
  bool IsFinal(StateId s) const { return final_[s.value()]; }
  std::vector<StateId> InitialStates() const;
  const RaTransition& transition(int index) const;
  const std::vector<int>& TransitionsFrom(StateId s) const {
    return transitions_from_[s.value()];
  }

  // At most one distinct guard per state (Section 2's state-driven
  // condition; the state trace then determines the control trace).
  bool IsStateDriven() const;
  // Every transition guard is a complete σ-type.
  bool IsComplete() const;

  // Distinct guards used anywhere (by Type equality), in first-use order.
  std::vector<Type> DistinctGuards() const;

  std::string ToString() const;

 private:
  int num_registers_;
  Schema schema_;
  std::vector<std::string> state_names_;
  std::vector<bool> initial_;
  std::vector<bool> final_;
  std::vector<RaTransition> transitions_;
  std::vector<std::vector<int>> transitions_from_;
  std::vector<SourceLocation> state_locations_;
  std::vector<SourceLocation> transition_locations_;
};

}  // namespace rav

#endif  // RAV_RA_REGISTER_AUTOMATON_H_
