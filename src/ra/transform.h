#ifndef RAV_RA_TRANSFORM_H_
#define RAV_RA_TRANSFORM_H_

#include "base/status.h"
#include "ra/register_automaton.h"

namespace rav {

// Completion (Example 2 of the paper): replaces every transition guard
// with all of its complete extensions over the schema. Preserves the run
// set exactly; worst-case exponential blow-up in transitions. Fails with
// ResourceExhausted if more than `max_transitions` transitions would be
// produced.
Result<RegisterAutomaton> Completed(const RegisterAutomaton& automaton,
                                    size_t max_transitions = 1u << 20);

// The state-driven variant (Section 2): states become (q, δ) pairs so
// that every state fires exactly one type; quadratic blow-up. Preserves
// register traces. If `origin_of` is non-null it receives, per new state,
// the original state it projects to (used to lift global constraints).
RegisterAutomaton MakeStateDriven(const RegisterAutomaton& automaton,
                                  std::vector<StateId>* origin_of = nullptr);

// Büchi-aware trimming: keeps only the states that lie on some accepting
// computation shape — reachable from an initial state AND able to reach a
// final state that sits on a cycle. Infinite-run semantics are preserved
// exactly; dead branches disappear (useful before the symbolic decision
// procedures, whose lasso searches would otherwise wander dead regions).
// The result may have no states at all (the automaton is then empty).
RegisterAutomaton TrimToLiveStates(const RegisterAutomaton& automaton);

// Removes the transitions of a state-driven automaton that no run can
// ever fire: a transition into state q is useless when the ȳ-side of its
// guard contradicts the x̄-side of q's own guard (the paper's assumption,
// in the proof of Theorem 13, that "the (in)equality constraints are
// consistent on all control traces" — enforced by intersecting with the
// consistent-control-trace automaton). Must be applied before projecting:
// restriction erases the hidden-register contradiction that made the
// transition dead.
RegisterAutomaton PruneFrontierIncompatibleTransitions(
    const RegisterAutomaton& state_driven);

// Register permutation: new register i holds what old register
// permutation[i] held. Used to move the registers a view keeps to the
// front, since all projection operators hide a suffix of the registers.
RegisterAutomaton PermuteRegisters(const RegisterAutomaton& automaton,
                                   const std::vector<int>& permutation);

}  // namespace rav

#endif  // RAV_RA_TRANSFORM_H_
