#include "ra/lasso_search.h"

#include "ra/simulate.h"

namespace rav {

std::optional<LassoRun> FindLassoRunByEnumeration(
    const RegisterAutomaton& automaton, const Database& db, size_t max_length,
    const std::vector<DataValue>& value_pool) {
  std::optional<LassoRun> found;
  for (size_t length = 2; length <= max_length && !found.has_value();
       ++length) {
    EnumerateRuns(automaton, db, length, value_pool,
                  [&](const FiniteRun& run) {
                    // Try every cycle start whose state matches a wrap
                    // transition from the last position.
                    for (size_t cs = 0; cs + 1 < run.length(); ++cs) {
                      for (int ti :
                           automaton.TransitionsFrom(run.states.back())) {
                        if (automaton.transition(ti).to != run.states[cs]) {
                          continue;
                        }
                        LassoRun candidate{run, cs, ti};
                        if (ValidateLassoRun(automaton, db, candidate).ok()) {
                          found = std::move(candidate);
                          return false;
                        }
                      }
                    }
                    return true;
                  });
  }
  return found;
}

}  // namespace rav
