#include "ra/lasso_search.h"

#include <functional>

#include "ra/simulate.h"

namespace rav {

std::optional<LassoRun> FindLassoRunByEnumeration(
    const RegisterAutomaton& automaton, const Database& db, size_t max_length,
    const std::vector<DataValue>& value_pool) {
  if (max_length < 2) return std::nullopt;
  const int k = automaton.num_registers();

  std::optional<LassoRun> best;
  // A single DFS replaces the old per-length re-enumeration: every prefix
  // is tested for cycle-closing at every depth >= 2 as it is first built.
  // Once a lasso of length L validates, only strictly shorter ones can
  // precede it in the shortest-first order, so the cap drops to L - 1 and
  // the search continues over the remaining shorter prefixes only —
  // within one length, DFS preorder equals the old enumeration order, so
  // the returned witness is identical.
  size_t depth_cap = max_length;
  FiniteRun run;
  bool done = false;

  // Odometer over value_pool^k, in the EnumerateRuns tuple order.
  auto for_each_tuple = [&](const std::function<bool(const ValueTuple&)>& f) {
    ValueTuple tuple(k, value_pool.empty() ? 0 : value_pool[0]);
    if (k == 0) return f(tuple);
    if (value_pool.empty()) return true;
    std::vector<size_t> idx(k, 0);
    while (true) {
      for (int i = 0; i < k; ++i) tuple[i] = value_pool[idx[i]];
      if (!f(tuple)) return false;
      int i = k - 1;
      while (i >= 0 && idx[i] + 1 == value_pool.size()) {
        idx[i] = 0;
        --i;
      }
      if (i < 0) return true;
      ++idx[i];
    }
  };

  auto try_close = [&]() {
    // Try every cycle start whose state matches a wrap transition from
    // the last position.
    for (size_t cs = 0; cs + 1 < run.length(); ++cs) {
      for (int ti : automaton.TransitionsFrom(run.states.back())) {
        if (automaton.transition(ti).to != run.states[cs]) continue;
        LassoRun candidate{run, cs, ti};
        if (ValidateLassoRun(automaton, db, candidate).ok()) {
          best = std::move(candidate);
          depth_cap = run.length() - 1;
          if (depth_cap < 2) done = true;  // nothing shorter exists
          return;
        }
      }
    }
  };

  std::function<void()> extend = [&]() {
    if (done) return;
    if (run.length() >= 2) try_close();
    if (done || run.length() >= depth_cap) return;
    StateId q = run.states.back();
    for (int ti : automaton.TransitionsFrom(q)) {
      if (done) return;
      const RaTransition& t = automaton.transition(ti);
      for_each_tuple([&](const ValueTuple& next) {
        ValueTuple xy;
        xy.reserve(2 * next.size());
        xy.insert(xy.end(), run.values.back().begin(),
                  run.values.back().end());
        xy.insert(xy.end(), next.begin(), next.end());
        if (t.guard.HoldsIn(db, xy)) {
          run.values.push_back(next);
          run.states.push_back(t.to);
          run.transition_indices.push_back(ti);
          extend();
          run.values.pop_back();
          run.states.pop_back();
          run.transition_indices.pop_back();
        }
        return !done;
      });
    }
  };

  for (StateId q0 : automaton.InitialStates()) {
    if (done) break;
    for_each_tuple([&](const ValueTuple& d0) {
      run.values = {d0};
      run.states = {q0};
      run.transition_indices.clear();
      extend();
      return !done;
    });
  }
  return best;
}

}  // namespace rav
