#ifndef RAV_RA_SIMULATE_H_
#define RAV_RA_SIMULATE_H_

#include <functional>
#include <optional>
#include <random>
#include <vector>

#include "compile/guard_tables.h"
#include "ra/register_automaton.h"
#include "ra/run.h"
#include "relational/database.h"

namespace rav {

// Options for the randomized run generator.
struct SimulateOptions {
  // Attempts per step before trying another transition.
  int assignment_attempts = 64;
  // Attempts at choosing a transition before giving up on a step.
  int transition_attempts = 16;
  // How many fresh (never-seen) values the value pool is topped up with.
  int fresh_values = 4;
  // Compiled guard tables of the automaton being simulated (optional, and
  // ignored when null or falsy): the per-attempt guard checks then run
  // through GuardTableSet::Holds instead of Type::HoldsIn. Must outlive
  // the sampling call. `guard_stats` (optional) tallies the compiled
  // evaluations.
  const compile::TransitionGuardView* guards = nullptr;
  compile::GuardStats* guard_stats = nullptr;
};

// Randomized generation of run prefixes of `automaton` over `db`: at each
// step a transition is sampled and successor register values are sampled
// from (current values ∪ active domain ∪ fresh values) until the guard
// holds. Returns a run of exactly `length` positions, or nullopt if the
// sampler got stuck (which can also mean the automaton has no run of that
// length from its initial states).
std::optional<FiniteRun> SampleRun(const RegisterAutomaton& automaton,
                                   const Database& db, size_t length,
                                   std::mt19937& rng,
                                   const SimulateOptions& options = {});

// Exhaustive enumeration of every run prefix of exactly `length` positions
// whose register values are drawn from `value_pool`. Exponential; intended
// for small cross-checking experiments (pool of ≤ ~6 values, length ≤ ~8,
// k ≤ 3). The callback returns false to stop enumeration early.
// Returns the number of runs delivered.
size_t EnumerateRuns(const RegisterAutomaton& automaton, const Database& db,
                     size_t length, const std::vector<DataValue>& value_pool,
                     const std::function<bool(const FiniteRun&)>& callback);

// Collects the set of projected register traces {Π_m(values) : valid runs
// of exactly `length` positions over `value_pool`}. Each trace is the
// concatenation of the m projected values per position — a convenient
// canonical form for set comparison in tests.
std::vector<std::vector<DataValue>> CollectProjectedTraces(
    const RegisterAutomaton& automaton, const Database& db, size_t length,
    const std::vector<DataValue>& value_pool, int m);

}  // namespace rav

#endif  // RAV_RA_SIMULATE_H_
