#include "ra/simulate.h"

#include <algorithm>
#include <set>

#include "base/value.h"

namespace rav {

namespace {

ValueTuple JoinXy(const ValueTuple& x, const ValueTuple& y) {
  ValueTuple xy;
  xy.reserve(x.size() + y.size());
  xy.insert(xy.end(), x.begin(), x.end());
  xy.insert(xy.end(), y.begin(), y.end());
  return xy;
}

}  // namespace

std::optional<FiniteRun> SampleRun(const RegisterAutomaton& automaton,
                                   const Database& db, size_t length,
                                   std::mt19937& rng,
                                   const SimulateOptions& options) {
  if (length == 0) return std::nullopt;
  const int k = automaton.num_registers();

  // Value pool: active domain plus some fresh values.
  std::vector<DataValue> pool = db.ActiveDomain();
  {
    FreshValueSource fresh;
    for (DataValue v : pool) fresh.Observe(v);
    for (int i = 0; i < options.fresh_values; ++i) pool.push_back(fresh.Fresh());
  }
  if (pool.empty()) pool.push_back(0);

  std::vector<StateId> initial = automaton.InitialStates();
  if (initial.empty()) return std::nullopt;

  std::uniform_int_distribution<size_t> pool_dist(0, pool.size() - 1);
  auto sample_tuple = [&](ValueTuple& out) {
    out.resize(k);
    for (int i = 0; i < k; ++i) out[i] = pool[pool_dist(rng)];
  };

  // Equality-guided successor sampling: ȳ registers whose class contains
  // an x̄ register or a constant are copied deterministically; the
  // remaining classes get one random value each. This makes guards that
  // mostly propagate registers (the common workflow shape) sample in O(1)
  // attempts instead of pool^k.
  auto sample_successor = [&](const Type& guard, const ValueTuple& current,
                              ValueTuple& out) {
    out.resize(k);
    std::vector<DataValue> class_value(guard.num_classes(), 0);
    std::vector<bool> class_known(guard.num_classes(), false);
    for (int j = 0; j < k; ++j) {
      int cls = guard.ClassOf(j);
      class_value[cls] = current[j];
      class_known[cls] = true;
    }
    for (int c = 0; c < automaton.schema().num_constants(); ++c) {
      int cls = guard.ClassOf(2 * k + c);
      if (!class_known[cls]) {
        class_value[cls] = db.constant(c);
        class_known[cls] = true;
      }
    }
    for (int i = 0; i < k; ++i) {
      int cls = guard.ClassOf(k + i);
      if (!class_known[cls]) {
        class_value[cls] = pool[pool_dist(rng)];
        class_known[cls] = true;
      }
      out[i] = class_value[cls];
    }
  };

  // Guard evaluation: through the compiled tables when the caller passed
  // some, otherwise the interpreted walk. The x̄·ȳ scratch valuation is
  // reused across every attempt of the sampling loop.
  const compile::TransitionGuardView* view =
      options.guards != nullptr && *options.guards ? options.guards : nullptr;
  ValueTuple xy_scratch;
  auto guard_holds = [&](int ti, const RaTransition& t, const ValueTuple& cur,
                         const ValueTuple& next) {
    if (view == nullptr) return t.guard.HoldsIn(db, JoinXy(cur, next));
    xy_scratch.clear();
    xy_scratch.insert(xy_scratch.end(), cur.begin(), cur.end());
    xy_scratch.insert(xy_scratch.end(), next.begin(), next.end());
    return view->tables->Holds(view->guard_id_of_transition[ti],
                               xy_scratch.data(), db, options.guard_stats);
  };

  FiniteRun run;
  std::uniform_int_distribution<size_t> init_dist(0, initial.size() - 1);

  // Sample position 0: a state and values such that some transition's
  // x̄-restriction is satisfiable (so the run can actually continue, when
  // length > 1). For length == 1 any values do.
  for (int attempt = 0; attempt < options.assignment_attempts; ++attempt) {
    StateId q0 = initial[init_dist(rng)];
    ValueTuple d0;
    sample_tuple(d0);
    run.values = {d0};
    run.states = {q0};
    run.transition_indices.clear();
    bool ok = true;
    // Extend step by step.
    while (run.length() < length && ok) {
      ok = false;
      StateId q = run.states.back();
      const std::vector<int>& outgoing = automaton.TransitionsFrom(q);
      if (outgoing.empty()) break;
      std::uniform_int_distribution<size_t> tdist(0, outgoing.size() - 1);
      for (int t_try = 0; t_try < options.transition_attempts && !ok;
           ++t_try) {
        int ti = outgoing[tdist(rng)];
        const RaTransition& t = automaton.transition(ti);
        for (int a = 0; a < options.assignment_attempts; ++a) {
          ValueTuple next;
          sample_successor(t.guard, run.values.back(), next);
          if (guard_holds(ti, t, run.values.back(), next)) {
            run.values.push_back(std::move(next));
            run.states.push_back(t.to);
            run.transition_indices.push_back(ti);
            ok = true;
            break;
          }
        }
      }
    }
    if (run.length() == length) return run;
  }
  return std::nullopt;
}

namespace {

// DFS state of the exhaustive enumerator.
struct Enumerator {
  const RegisterAutomaton& automaton;
  const Database& db;
  size_t length;
  const std::vector<DataValue>& pool;
  const std::function<bool(const FiniteRun&)>& callback;
  FiniteRun run;
  size_t count = 0;
  bool stopped = false;

  // Enumerates all value tuples over the pool, invoking f; f returns false
  // to stop.
  bool ForEachTuple(const std::function<bool(const ValueTuple&)>& f) const {
    const int k = automaton.num_registers();
    ValueTuple tuple(k, pool.empty() ? 0 : pool[0]);
    if (k == 0) return f(tuple);
    if (pool.empty()) return true;
    std::vector<size_t> idx(k, 0);
    while (true) {
      for (int i = 0; i < k; ++i) tuple[i] = pool[idx[i]];
      if (!f(tuple)) return false;
      int i = k - 1;
      while (i >= 0 && idx[i] + 1 == pool.size()) {
        idx[i] = 0;
        --i;
      }
      if (i < 0) return true;
      ++idx[i];
    }
  }

  void Extend() {
    if (stopped) return;
    if (run.length() == length) {
      ++count;
      if (!callback(run)) stopped = true;
      return;
    }
    StateId q = run.states.back();
    for (int ti : automaton.TransitionsFrom(q)) {
      if (stopped) return;
      const RaTransition& t = automaton.transition(ti);
      ForEachTuple([&](const ValueTuple& next) {
        ValueTuple xy;
        xy.reserve(2 * next.size());
        xy.insert(xy.end(), run.values.back().begin(),
                  run.values.back().end());
        xy.insert(xy.end(), next.begin(), next.end());
        if (t.guard.HoldsIn(db, xy)) {
          run.values.push_back(next);
          run.states.push_back(t.to);
          run.transition_indices.push_back(ti);
          Extend();
          run.values.pop_back();
          run.states.pop_back();
          run.transition_indices.pop_back();
        }
        return !stopped;
      });
    }
  }
};

}  // namespace

size_t EnumerateRuns(const RegisterAutomaton& automaton, const Database& db,
                     size_t length, const std::vector<DataValue>& value_pool,
                     const std::function<bool(const FiniteRun&)>& callback) {
  if (length == 0) return 0;
  Enumerator e{automaton, db, length, value_pool, callback, {}, 0, false};
  for (StateId q0 : automaton.InitialStates()) {
    if (e.stopped) break;
    e.ForEachTuple([&](const ValueTuple& d0) {
      e.run.values = {d0};
      e.run.states = {q0};
      e.run.transition_indices.clear();
      e.Extend();
      return !e.stopped;
    });
  }
  return e.count;
}

std::vector<std::vector<DataValue>> CollectProjectedTraces(
    const RegisterAutomaton& automaton, const Database& db, size_t length,
    const std::vector<DataValue>& value_pool, int m) {
  std::set<std::vector<DataValue>> traces;
  EnumerateRuns(automaton, db, length, value_pool, [&](const FiniteRun& run) {
    std::vector<DataValue> flat;
    flat.reserve(length * m);
    for (const ValueTuple& v : run.values) {
      flat.insert(flat.end(), v.begin(), v.begin() + m);
    }
    traces.insert(std::move(flat));
    return true;
  });
  return std::vector<std::vector<DataValue>>(traces.begin(), traces.end());
}

}  // namespace rav
