#include "ra/register_automaton.h"

#include <sstream>
#include <unordered_set>

namespace rav {

RegisterAutomaton::RegisterAutomaton(int num_registers, Schema schema)
    : num_registers_(num_registers), schema_(std::move(schema)) {
  RAV_CHECK_GE(num_registers, 0);
}

StateId RegisterAutomaton::AddState(const std::string& name) {
  RAV_CHECK(!FindState(name).valid());
  state_names_.push_back(name);
  initial_.push_back(false);
  final_.push_back(false);
  transitions_from_.emplace_back();
  state_locations_.emplace_back();
  return StateId(num_states() - 1);
}

void RegisterAutomaton::SetInitial(StateId state, bool initial) {
  RAV_CHECK_GE(state.value(), 0);
  RAV_CHECK_LT(state.value(), num_states());
  initial_[state.value()] = initial;
}

void RegisterAutomaton::SetFinal(StateId state, bool final_state) {
  RAV_CHECK_GE(state.value(), 0);
  RAV_CHECK_LT(state.value(), num_states());
  final_[state.value()] = final_state;
}

void RegisterAutomaton::AddTransition(StateId from, Type guard, StateId to) {
  RAV_CHECK_GE(from.value(), 0);
  RAV_CHECK_LT(from.value(), num_states());
  RAV_CHECK_GE(to.value(), 0);
  RAV_CHECK_LT(to.value(), num_states());
  RAV_CHECK_EQ(guard.num_vars(), 2 * num_registers_);
  RAV_CHECK_EQ(guard.num_constants(), schema_.num_constants());
  transitions_from_[from.value()].push_back(num_transitions());
  transitions_.push_back(RaTransition{from, std::move(guard), to});
  transition_locations_.emplace_back();
}

void RegisterAutomaton::SetStateLocation(StateId state, SourceLocation loc) {
  RAV_CHECK_GE(state.value(), 0);
  RAV_CHECK_LT(state.value(), num_states());
  state_locations_[state.value()] = loc;
}

const SourceLocation& RegisterAutomaton::state_location(StateId state) const {
  RAV_CHECK_GE(state.value(), 0);
  RAV_CHECK_LT(state.value(), num_states());
  return state_locations_[state.value()];
}

void RegisterAutomaton::SetTransitionLocation(int index, SourceLocation loc) {
  RAV_CHECK_GE(index, 0);
  RAV_CHECK_LT(index, num_transitions());
  transition_locations_[index] = loc;
}

const SourceLocation& RegisterAutomaton::transition_location(int index) const {
  RAV_CHECK_GE(index, 0);
  RAV_CHECK_LT(index, num_transitions());
  return transition_locations_[index];
}

const std::string& RegisterAutomaton::state_name(StateId s) const {
  RAV_CHECK_GE(s.value(), 0);
  RAV_CHECK_LT(s.value(), num_states());
  return state_names_[s.value()];
}

StateId RegisterAutomaton::FindState(const std::string& name) const {
  for (StateId s : States()) {
    if (state_names_[s.value()] == name) return s;
  }
  return StateId::Invalid();
}

std::vector<StateId> RegisterAutomaton::InitialStates() const {
  std::vector<StateId> out;
  for (StateId s : States()) {
    if (initial_[s.value()]) out.push_back(s);
  }
  return out;
}

const RaTransition& RegisterAutomaton::transition(int index) const {
  RAV_CHECK_GE(index, 0);
  RAV_CHECK_LT(index, num_transitions());
  return transitions_[index];
}

bool RegisterAutomaton::IsStateDriven() const {
  for (const std::vector<int>& out : transitions_from_) {
    for (size_t i = 1; i < out.size(); ++i) {
      if (!(transitions_[out[i]].guard == transitions_[out[0]].guard)) {
        return false;
      }
    }
  }
  return true;
}

bool RegisterAutomaton::IsComplete() const {
  for (const RaTransition& t : transitions_) {
    if (!t.guard.IsComplete(schema_)) return false;
  }
  return true;
}

std::vector<Type> RegisterAutomaton::DistinctGuards() const {
  std::vector<Type> guards;
  for (const RaTransition& t : transitions_) {
    bool seen = false;
    for (const Type& g : guards) {
      if (g == t.guard) {
        seen = true;
        break;
      }
    }
    if (!seen) guards.push_back(t.guard);
  }
  return guards;
}

std::string RegisterAutomaton::ToString() const {
  std::ostringstream out;
  out << "RegisterAutomaton(k=" << num_registers_ << ", "
      << schema_.ToString() << ")\n";
  for (StateId s : States()) {
    out << "  state " << state_names_[s.value()];
    if (initial_[s.value()]) out << " [initial]";
    if (final_[s.value()]) out << " [final]";
    out << "\n";
  }
  for (const RaTransition& t : transitions_) {
    out << "  " << state_names_[t.from.value()] << " --{"
        << t.guard.ToString(schema_, num_registers_) << "}--> "
        << state_names_[t.to.value()] << "\n";
  }
  return out.str();
}

}  // namespace rav
