#include "ra/transform.h"

#include <algorithm>

#include "types/completion.h"

namespace rav {

Result<RegisterAutomaton> Completed(const RegisterAutomaton& automaton,
                                    size_t max_transitions) {
  RegisterAutomaton out(automaton.num_registers(), automaton.schema());
  for (StateId s : automaton.States()) {
    StateId id = out.AddState(automaton.state_name(s));
    RAV_CHECK_EQ(id.value(), s.value());
    out.SetInitial(s, automaton.IsInitial(s));
    out.SetFinal(s, automaton.IsFinal(s));
  }
  bool overflow = false;
  for (int ti = 0; ti < automaton.num_transitions() && !overflow; ++ti) {
    const RaTransition& t = automaton.transition(ti);
    EnumerateCompletions(t.guard, automaton.schema(), [&](const Type& full) {
      if (static_cast<size_t>(out.num_transitions()) >= max_transitions) {
        overflow = true;
        return false;
      }
      out.AddTransition(t.from, full, t.to);
      return true;
    });
  }
  if (overflow) {
    return Status::ResourceExhausted(
        "Completed: transition budget exceeded (" +
        std::to_string(max_transitions) + ")");
  }
  return out;
}

RegisterAutomaton MakeStateDriven(const RegisterAutomaton& automaton,
                                  std::vector<StateId>* origin_of) {
  // States of the result: pairs (q, g) where guard g occurs on some
  // transition leaving q. States with no outgoing transition are kept as
  // bare copies so the construction never loses states (they are dead ends
  // for infinite runs either way).
  const std::vector<Type> guards = automaton.DistinctGuards();
  auto guard_index = [&](const Type& g) {
    for (size_t i = 0; i < guards.size(); ++i) {
      if (guards[i] == g) return static_cast<int>(i);
    }
    RAV_CHECK(false);
    return -1;
  };

  RegisterAutomaton out(automaton.num_registers(), automaton.schema());
  // pair_state[q][gi] = new state id or StateId::Invalid().
  std::vector<std::vector<StateId>> pair_state(
      automaton.num_states(), std::vector<StateId>(guards.size()));
  for (int ti = 0; ti < automaton.num_transitions(); ++ti) {
    const RaTransition& t = automaton.transition(ti);
    int gi = guard_index(t.guard);
    if (!pair_state[t.from.value()][gi].valid()) {
      // The guard index is appended with a regex-identifier-safe
      // separator so state names remain usable in constraint expressions.
      StateId s = out.AddState(automaton.state_name(t.from) + "_g" +
                               std::to_string(gi));
      pair_state[t.from.value()][gi] = s;
      out.SetInitial(s, automaton.IsInitial(t.from));
      out.SetFinal(s, automaton.IsFinal(t.from));
      if (origin_of != nullptr) {
        origin_of->resize(s.value() + 1, StateId::Invalid());
        (*origin_of)[s.value()] = t.from;
      }
    }
  }
  // Transitions ((p, δ), δ, (q, δ')) for (p, δ, q) ∈ Δ and δ' fired from q.
  for (int ti = 0; ti < automaton.num_transitions(); ++ti) {
    const RaTransition& t = automaton.transition(ti);
    int gi = guard_index(t.guard);
    StateId from = pair_state[t.from.value()][gi];
    for (size_t gj = 0; gj < guards.size(); ++gj) {
      StateId to = pair_state[t.to.value()][gj];
      if (to.valid()) out.AddTransition(from, t.guard, to);
    }
  }
  return out;
}

RegisterAutomaton TrimToLiveStates(const RegisterAutomaton& automaton) {
  const int n = automaton.num_states();
  // Forward reachability from the initial states.
  std::vector<bool> reachable(n, false);
  {
    std::vector<StateId> stack = automaton.InitialStates();
    for (StateId s : stack) reachable[s.value()] = true;
    while (!stack.empty()) {
      StateId s = stack.back();
      stack.pop_back();
      for (int ti : automaton.TransitionsFrom(s)) {
        StateId t = automaton.transition(ti).to;
        if (!reachable[t.value()]) {
          reachable[t.value()] = true;
          stack.push_back(t);
        }
      }
    }
  }
  // Final states on a (reachable) cycle: f is "live" iff f reaches f in
  // one or more steps within the reachable subgraph.
  auto reaches = [&](StateId from, StateId target) {
    std::vector<bool> seen(n, false);
    std::vector<StateId> stack;
    for (int ti : automaton.TransitionsFrom(from)) {
      StateId t = automaton.transition(ti).to;
      if (reachable[t.value()] && !seen[t.value()]) {
        seen[t.value()] = true;
        stack.push_back(t);
      }
    }
    while (!stack.empty()) {
      StateId s = stack.back();
      stack.pop_back();
      if (s == target) return true;
      for (int ti : automaton.TransitionsFrom(s)) {
        StateId t = automaton.transition(ti).to;
        if (reachable[t.value()] && !seen[t.value()]) {
          seen[t.value()] = true;
          stack.push_back(t);
        }
      }
    }
    return false;
  };
  std::vector<bool> live_final(n, false);
  for (StateId f : automaton.States()) {
    if (reachable[f.value()] && automaton.IsFinal(f)) {
      live_final[f.value()] = reaches(f, f);
    }
  }
  // Backward reachability to a live final state.
  std::vector<std::vector<StateId>> reverse(n);
  for (int ti = 0; ti < automaton.num_transitions(); ++ti) {
    const RaTransition& t = automaton.transition(ti);
    reverse[t.to.value()].push_back(t.from);
  }
  std::vector<bool> coreachable(n, false);
  {
    std::vector<StateId> stack;
    for (StateId f : automaton.States()) {
      if (live_final[f.value()]) {
        coreachable[f.value()] = true;
        stack.push_back(f);
      }
    }
    while (!stack.empty()) {
      StateId s = stack.back();
      stack.pop_back();
      for (StateId p : reverse[s.value()]) {
        if (!coreachable[p.value()]) {
          coreachable[p.value()] = true;
          stack.push_back(p);
        }
      }
    }
  }

  RegisterAutomaton out(automaton.num_registers(), automaton.schema());
  std::vector<StateId> new_id(n);
  for (StateId s : automaton.States()) {
    if (!reachable[s.value()] || !coreachable[s.value()]) continue;
    new_id[s.value()] = out.AddState(automaton.state_name(s));
    out.SetInitial(new_id[s.value()], automaton.IsInitial(s));
    out.SetFinal(new_id[s.value()], automaton.IsFinal(s));
  }
  for (int ti = 0; ti < automaton.num_transitions(); ++ti) {
    const RaTransition& t = automaton.transition(ti);
    if (new_id[t.from.value()].valid() && new_id[t.to.value()].valid()) {
      out.AddTransition(new_id[t.from.value()], t.guard, new_id[t.to.value()]);
    }
  }
  return out;
}

RegisterAutomaton PruneFrontierIncompatibleTransitions(
    const RegisterAutomaton& state_driven) {
  RAV_CHECK(state_driven.IsStateDriven());
  const int k = state_driven.num_registers();
  // The unique guard fired from each state (states with no outgoing
  // transitions accept any incoming frontier).
  std::vector<const Type*> guard_of(state_driven.num_states(), nullptr);
  for (int ti = 0; ti < state_driven.num_transitions(); ++ti) {
    guard_of[state_driven.transition(ti).from.value()] =
        &state_driven.transition(ti).guard;
  }
  RegisterAutomaton out(k, state_driven.schema());
  for (StateId s : state_driven.States()) {
    StateId id = out.AddState(state_driven.state_name(s));
    RAV_CHECK_EQ(id.value(), s.value());
    out.SetInitial(s, state_driven.IsInitial(s));
    out.SetFinal(s, state_driven.IsFinal(s));
  }
  for (int ti = 0; ti < state_driven.num_transitions(); ++ti) {
    const RaTransition& t = state_driven.transition(ti);
    if (guard_of[t.to.value()] != nullptr) {
      Type frontier = RestrictToYAsX(t.guard, k);
      Type next_x = RestrictToX(*guard_of[t.to.value()], k);
      if (!frontier.Conjoin(next_x).ok()) continue;  // dead transition
    }
    out.AddTransition(t.from, t.guard, t.to);
  }
  return out;
}

RegisterAutomaton PermuteRegisters(const RegisterAutomaton& automaton,
                                   const std::vector<int>& permutation) {
  const int k = automaton.num_registers();
  RAV_CHECK_EQ(static_cast<int>(permutation.size()), k);
  {
    std::vector<int> sorted = permutation;
    std::sort(sorted.begin(), sorted.end());
    for (int i = 0; i < k; ++i) RAV_CHECK_EQ(sorted[i], i);
  }
  // Old register r appears at new index inverse[r].
  std::vector<int> inverse(k);
  for (int i = 0; i < k; ++i) inverse[permutation[i]] = i;

  RegisterAutomaton out(k, automaton.schema());
  for (StateId s : automaton.States()) {
    StateId id = out.AddState(automaton.state_name(s));
    RAV_CHECK_EQ(id.value(), s.value());
    out.SetInitial(s, automaton.IsInitial(s));
    out.SetFinal(s, automaton.IsFinal(s));
  }
  auto map_element = [&](int e) {
    if (e < k) return inverse[e];
    if (e < 2 * k) return k + inverse[e - k];
    return e;  // constants keep their ids
  };
  for (int ti = 0; ti < automaton.num_transitions(); ++ti) {
    const RaTransition& t = automaton.transition(ti);
    TypeBuilder builder(2 * k, automaton.schema().num_constants());
    std::vector<int> rep(t.guard.num_classes(), -1);
    for (int e = 0; e < t.guard.num_elements(); ++e) {
      int c = t.guard.ClassOf(e);
      if (rep[c] < 0) {
        rep[c] = e;
      } else {
        builder.AddEq(ElementIndex(map_element(rep[c])),
                      ElementIndex(map_element(e)));
      }
    }
    for (const auto& [c1, c2] : t.guard.disequalities()) {
      builder.AddNeq(ElementIndex(map_element(rep[c1])),
                     ElementIndex(map_element(rep[c2])));
    }
    for (const TypeAtom& atom : t.guard.atoms()) {
      std::vector<ElementIndex> elems;
      for (int c : atom.args) {
        elems.push_back(ElementIndex(map_element(rep[c])));
      }
      builder.AddAtom(atom.relation, std::move(elems), atom.positive);
    }
    Result<Type> guard = builder.Build();
    RAV_CHECK(guard.ok());
    out.AddTransition(t.from, std::move(guard).value(), t.to);
  }
  return out;
}

}  // namespace rav
