#ifndef RAV_RA_EMPTINESS_H_
#define RAV_RA_EMPTINESS_H_

#include <optional>

#include "automata/lasso.h"
#include "base/status.h"
#include "ra/control.h"
#include "ra/register_automaton.h"
#include "ra/run.h"
#include "relational/database.h"

namespace rav {

// Decides whether a *complete* register automaton has an infinite
// accepting run over some finite database, by Büchi emptiness of the
// SControl(A) automaton (sound and complete since Control = SControl for
// complete automata, [19] / Theorem 9 stage one). Returns the witness
// symbolic control lasso, or nullopt.
std::optional<LassoWord> FindSymbolicControlLasso(
    const RegisterAutomaton& automaton, const ControlAlphabet& alphabet);

// Convenience: completes the automaton if necessary, then decides
// emptiness. ResourceExhausted if completion blows up.
Result<bool> HasSomeRun(const RegisterAutomaton& automaton);

// A concrete witness produced from a symbolic control lasso.
struct RunWitness {
  Database db;
  FiniteRun run;
};

// The constructive content of Theorem 9 (stage one): realizes a symbolic
// control lasso of a complete automaton as a finite database plus a
// concrete run prefix of `length` positions following the lasso. The
// construction mirrors the guarded chase of Ψ_A: one fresh value per
// equivalence class of register/constant nodes, positive atoms inserted
// into the database. Fails (InvalidArgument) when the word is not
// realizable, which cannot happen for complete frontier-compatible words.
Result<RunWitness> RealizeWitness(const RegisterAutomaton& automaton,
                                  const ControlAlphabet& alphabet,
                                  const LassoWord& control_word,
                                  size_t length);

// Statistics of the fixed-database emptiness decision below.
struct FixedDbStats {
  size_t num_configurations = 0;
  size_t num_edges = 0;
};

// Decides whether `automaton` has an infinite accepting run over the
// *given* database, via the exact region abstraction: a configuration is
// (state, abstract register assignment) where each register holds either
// a specific active-domain value or an equality class of non-active-domain
// values. The abstraction is exact because transition types only test
// (in)equality and membership of register values in relations, and every
// run leaves infinitely many values unused.
bool HasRunOverDatabase(const RegisterAutomaton& automaton, const Database& db,
                        FixedDbStats* stats = nullptr);

}  // namespace rav

#endif  // RAV_RA_EMPTINESS_H_
