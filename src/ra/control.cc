#include "ra/control.h"

namespace rav {

ControlAlphabet::ControlAlphabet(const RegisterAutomaton& automaton,
                                 compile::GuardEngine engine)
    : engine_(compile::ResolveGuardEngine(engine)) {
  transition_symbol_.resize(automaton.num_transitions());
  for (int ti = 0; ti < automaton.num_transitions(); ++ti) {
    const RaTransition& t = automaton.transition(ti);
    SymbolId symbol = SymbolOf(t.from, t.guard);
    if (!symbol.valid()) {
      symbol = SymbolId(static_cast<int>(symbols_.size()));
      symbols_.emplace_back(t.from, t.guard);
    }
    transition_symbol_[ti] = symbol;
  }
  const int k = automaton.num_registers();
  if (engine_ == compile::GuardEngine::kCompiled) {
    std::vector<const Type*> guards;
    guards.reserve(automaton.num_transitions());
    for (int ti = 0; ti < automaton.num_transitions(); ++ti) {
      guards.push_back(&automaton.transition(ti).guard);
    }
    tables_ = compile::GuardTableSet::Build(
        guards, k, automaton.schema().num_constants(), &transition_guard_id_);
    symbol_guard_id_.assign(symbols_.size(), GuardId::Invalid());
    for (int ti = 0; ti < automaton.num_transitions(); ++ti) {
      symbol_guard_id_[transition_symbol_[ti].value()] =
          transition_guard_id_[ti];
    }
    // The table set already holds every distinct x̄ restriction — reuse it
    // instead of recomputing RestrictToX per symbol.
    restricted_.reserve(symbols_.size());
    symbol_closure_program_.reserve(symbols_.size());
    symbol_x_closure_program_.reserve(symbols_.size());
    for (size_t s = 0; s < symbols_.size(); ++s) {
      const GuardId gid = symbol_guard_id_[s];
      restricted_.push_back(tables_->x_restricted(gid));
      symbol_closure_program_.push_back(
          tables_->closure_ops(gid).empty() ? GuardId::Invalid() : gid);
      symbol_x_closure_program_.push_back(
          tables_->x_closure_ops(gid).empty() ? GuardId::Invalid() : gid);
    }
  } else {
    restricted_.reserve(symbols_.size());
    for (const auto& [state, guard] : symbols_) {
      restricted_.push_back(RestrictToX(guard, k));
    }
  }
}

SymbolId ControlAlphabet::SymbolOf(StateId q, const Type& guard) const {
  for (size_t s = 0; s < symbols_.size(); ++s) {
    if (symbols_[s].first == q && symbols_[s].second == guard) {
      return SymbolId(static_cast<int>(s));
    }
  }
  return SymbolId::Invalid();
}

std::string ControlAlphabet::SymbolName(const RegisterAutomaton& automaton,
                                        SymbolId symbol) const {
  return "(" + automaton.state_name(state_of(symbol)) + ", δ" +
         std::to_string(symbol.value()) + ")";
}

Nba BuildSControlNba(const RegisterAutomaton& automaton,
                     const ControlAlphabet& alphabet) {
  const int k = automaton.num_registers();
  const int num_symbols = alphabet.size();

  // Frontier compatibility between consecutive control symbols:
  // consistency of δ|ȳ with δ'|x̄. For complete automata this coincides
  // with the paper's condition (iii) (isomorphic restrictions: two
  // complete equality types are conjoinable iff equal); for incomplete
  // automata consistency is the sound over-approximation the bounded
  // searches need.
  std::vector<std::vector<bool>> compatible(
      num_symbols, std::vector<bool>(num_symbols, false));
  if (const compile::GuardTableSet* tables = alphabet.tables()) {
    // Symbols sharing a guard share a row/column: decide compatibility
    // once per distinct-guard pair on the precomputed restrictions.
    const int num_guards = tables->num_guards();
    std::vector<std::vector<bool>> guard_compatible(
        num_guards, std::vector<bool>(num_guards, false));
    for (GuardId g1 : tables->GuardIds()) {
      const Type& frontier1 = tables->y_restricted_as_x(g1);
      for (GuardId g2 : tables->GuardIds()) {
        guard_compatible[g1.value()][g2.value()] =
            frontier1.Conjoin(tables->x_restricted(g2)).ok();
      }
    }
    for (SymbolId s1 : alphabet.Symbols()) {
      for (SymbolId s2 : alphabet.Symbols()) {
        compatible[s1.value()][s2.value()] =
            guard_compatible[alphabet.guard_id_of_symbol(s1).value()]
                            [alphabet.guard_id_of_symbol(s2).value()];
      }
    }
  } else {
    for (SymbolId s1 : alphabet.Symbols()) {
      Type frontier1 = RestrictToYAsX(alphabet.guard_of(s1), k);
      for (SymbolId s2 : alphabet.Symbols()) {
        compatible[s1.value()][s2.value()] =
            frontier1.Conjoin(RestrictToX(alphabet.guard_of(s2), k)).ok();
      }
    }
  }

  // NBA states: (automaton state, previous symbol or -1),
  // id = q * (num_symbols + 1) + (prev + 1).
  Nba nba(num_symbols);
  const int width = num_symbols + 1;
  for (StateId q : automaton.States()) {
    for (int p = 0; p < width; ++p) {
      int id = nba.AddState();
      RAV_CHECK_EQ(id, q.value() * width + p);
      if (automaton.IsFinal(q)) nba.SetAccepting(id);
    }
  }
  for (int ti = 0; ti < automaton.num_transitions(); ++ti) {
    const RaTransition& t = automaton.transition(ti);
    const int symbol = alphabet.SymbolOfTransition(ti).value();
    for (int prev = -1; prev < num_symbols; ++prev) {
      if (prev >= 0 && !compatible[prev][symbol]) continue;
      nba.AddTransition(t.from.value() * width + (prev + 1), symbol,
                        t.to.value() * width + (symbol + 1));
    }
  }
  for (StateId q : automaton.InitialStates()) {
    nba.SetInitial(q.value() * width + 0);
  }
  return nba;
}

Nba BuildStateTraceNba(const RegisterAutomaton& automaton,
                       const ControlAlphabet& alphabet) {
  Nba control = BuildSControlNba(automaton, alphabet);
  Nba out(automaton.num_states());
  for (int s = 0; s < control.num_states(); ++s) {
    int id = out.AddState();
    RAV_CHECK_EQ(id, s);
    out.SetAccepting(id, control.IsAccepting(s));
  }
  for (int s = 0; s < control.num_states(); ++s) {
    for (const auto& [symbol, to] : control.TransitionsFrom(s)) {
      out.AddTransition(s, alphabet.state_of(SymbolId(symbol)).value(), to);
    }
  }
  for (int s : control.initial()) out.SetInitial(s);
  return out;
}

std::vector<int> ControlWordOfRun(const RegisterAutomaton& automaton,
                                  const ControlAlphabet& alphabet,
                                  const FiniteRun& run) {
  (void)automaton;
  std::vector<int> word;
  word.reserve(run.transition_indices.size());
  for (int ti : run.transition_indices) {
    word.push_back(alphabet.SymbolOfTransition(ti).value());
  }
  return word;
}

LassoWord ControlWordOfLassoRun(const RegisterAutomaton& automaton,
                                const ControlAlphabet& alphabet,
                                const LassoRun& run) {
  (void)automaton;
  LassoWord word;
  for (size_t n = 0; n < run.cycle_start; ++n) {
    word.prefix.push_back(
        alphabet.SymbolOfTransition(run.TransitionAt(n)).value());
  }
  for (size_t n = run.cycle_start; n < run.spine.length(); ++n) {
    word.cycle.push_back(
        alphabet.SymbolOfTransition(run.TransitionAt(n)).value());
  }
  return word;
}

}  // namespace rav
