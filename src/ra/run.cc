#include "ra/run.h"

#include <algorithm>
#include <sstream>

namespace rav {

namespace {

std::string TupleToString(const ValueTuple& t) {
  std::string out = "(";
  for (size_t i = 0; i < t.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(t[i]);
  }
  out += ")";
  return out;
}

// Concatenates the two adjacent value tuples into the x̄·ȳ valuation a
// transition guard is evaluated on.
ValueTuple JoinXy(const ValueTuple& x, const ValueTuple& y) {
  ValueTuple xy;
  xy.reserve(x.size() + y.size());
  xy.insert(xy.end(), x.begin(), x.end());
  xy.insert(xy.end(), y.begin(), y.end());
  return xy;
}

}  // namespace

std::string FiniteRun::ToString(const RegisterAutomaton& automaton) const {
  std::ostringstream out;
  for (size_t n = 0; n < length(); ++n) {
    if (n > 0) out << " ";
    out << "(" << TupleToString(values[n]) << ","
        << automaton.state_name(states[n]) << ")";
  }
  return out.str();
}

std::vector<ValueTuple> LassoRun::PrefixValues() const {
  return std::vector<ValueTuple>(spine.values.begin(),
                                 spine.values.begin() + cycle_start);
}

std::vector<ValueTuple> LassoRun::CycleValues() const {
  return std::vector<ValueTuple>(spine.values.begin() + cycle_start,
                                 spine.values.end());
}

const ValueTuple& LassoRun::ValuesAt(size_t n) const {
  if (n < spine.length()) return spine.values[n];
  size_t p = period();
  RAV_CHECK_GE(p, 1u);
  return spine.values[cycle_start + (n - cycle_start) % p];
}

StateId LassoRun::StateAt(size_t n) const {
  if (n < spine.length()) return spine.states[n];
  size_t p = period();
  return spine.states[cycle_start + (n - cycle_start) % p];
}

int LassoRun::TransitionAt(size_t n) const {
  // The wrap transition fires from the last spine position back to
  // cycle_start; every other position fires its spine transition.
  size_t canonical =
      n < spine.length() ? n : cycle_start + (n - cycle_start) % period();
  if (canonical == spine.length() - 1) return wrap_transition_index;
  return spine.transition_indices[canonical];
}

std::string LassoRun::ToString(const RegisterAutomaton& automaton) const {
  std::ostringstream out;
  for (size_t n = 0; n < spine.length(); ++n) {
    if (n == cycle_start) out << "[";
    out << "(" << TupleToString(spine.values[n]) << ","
        << automaton.state_name(spine.states[n]) << ")";
    if (n + 1 < spine.length()) out << " ";
  }
  out << "]^ω";
  return out.str();
}

namespace {

// Compiled-engine guard pass: positions [0, limit) have valid wiring;
// batch them per distinct guard, lay each batch out SoA, and evaluate
// every batch in one EvalBatch call. Returns the first position whose
// guard fails, or -1. Equivalent to checking positions in order because
// the first guard failure is the minimum failing position across groups.
ptrdiff_t FirstGuardFailure(const RegisterAutomaton& automaton,
                            const Database& db, const FiniteRun& run,
                            size_t limit,
                            const rav::compile::TransitionGuardView& guards,
                            rav::compile::GuardStats* stats) {
  const int k = automaton.num_registers();
  const int two_k = 2 * k;
  // Bucket positions by guard id.
  std::vector<std::vector<int>> positions_of(guards.tables->num_guards());
  for (size_t n = 0; n < limit; ++n) {
    positions_of[guards.guard_id_of_transition[run.transition_indices[n]]
                     .value()]
        .push_back(static_cast<int>(n));
  }
  ptrdiff_t first_fail = -1;
  std::vector<DataValue> soa;
  std::vector<unsigned char> ok;
  for (int gid = 0; gid < guards.tables->num_guards(); ++gid) {
    const std::vector<int>& positions = positions_of[gid];
    if (positions.empty()) continue;
    const size_t count = positions.size();
    soa.resize(static_cast<size_t>(two_k) * count);
    // Element e of candidate i: register e of values[nᵢ] for e < k, else
    // register e-k of values[nᵢ+1] (the guard's x̄·ȳ layout).
    for (int e = 0; e < two_k; ++e) {
      DataValue* row = soa.data() + static_cast<size_t>(e) * count;
      for (size_t i = 0; i < count; ++i) {
        const size_t n = static_cast<size_t>(positions[i]);
        row[i] = e < k ? run.values[n][e] : run.values[n + 1][e - k];
      }
    }
    ok.assign(count, 1);
    guards.tables->EvalBatch(GuardId(gid), soa.data(), count, db, ok.data(),
                             stats);
    for (size_t i = 0; i < count; ++i) {
      if (!ok[i] && (first_fail < 0 || positions[i] < first_fail)) {
        first_fail = positions[i];
      }
    }
  }
  return first_fail;
}

}  // namespace

Status ValidateRunPrefix(const RegisterAutomaton& automaton,
                         const Database& db, const FiniteRun& run,
                         bool require_initial,
                         const compile::TransitionGuardView& guards,
                         compile::GuardStats* guard_stats) {
  const size_t len = run.length();
  if (run.states.size() != len) {
    return Status::InvalidArgument("run: states/values length mismatch");
  }
  if (len == 0) return Status::InvalidArgument("run: empty");
  if (run.transition_indices.size() + 1 != len) {
    return Status::InvalidArgument("run: transition count must be length-1");
  }
  for (size_t n = 0; n < len; ++n) {
    if (static_cast<int>(run.values[n].size()) != automaton.num_registers()) {
      return Status::InvalidArgument("run: bad value-tuple arity at position " +
                                     std::to_string(n));
    }
  }
  if (require_initial && !automaton.IsInitial(run.states[0])) {
    return Status::InvalidArgument("run: first state is not initial");
  }
  if (guards) {
    // Wiring first: the first wiring error bounds how far guards are
    // checked, so the reported violation matches the interleaved order
    // of the interpreted loop below.
    size_t limit = len - 1;
    Status wiring_error = Status::OK();
    for (size_t n = 0; n + 1 < len; ++n) {
      int ti = run.transition_indices[n];
      if (ti < 0 || ti >= automaton.num_transitions()) {
        wiring_error = Status::InvalidArgument("run: bad transition index at " +
                                               std::to_string(n));
        limit = n;
        break;
      }
      const RaTransition& t = automaton.transition(ti);
      if (t.from != run.states[n] || t.to != run.states[n + 1]) {
        wiring_error = Status::InvalidArgument(
            "run: transition endpoints mismatch at " + std::to_string(n));
        limit = n;
        break;
      }
    }
    ptrdiff_t fail =
        FirstGuardFailure(automaton, db, run, limit, guards, guard_stats);
    if (fail >= 0) {
      return Status::InvalidArgument("run: guard violated at position " +
                                     std::to_string(fail));
    }
    return wiring_error;
  }
  for (size_t n = 0; n + 1 < len; ++n) {
    int ti = run.transition_indices[n];
    if (ti < 0 || ti >= automaton.num_transitions()) {
      return Status::InvalidArgument("run: bad transition index at " +
                                     std::to_string(n));
    }
    const RaTransition& t = automaton.transition(ti);
    if (t.from != run.states[n] || t.to != run.states[n + 1]) {
      return Status::InvalidArgument("run: transition endpoints mismatch at " +
                                     std::to_string(n));
    }
    if (!t.guard.HoldsIn(db, JoinXy(run.values[n], run.values[n + 1]))) {
      return Status::InvalidArgument("run: guard violated at position " +
                                     std::to_string(n));
    }
  }
  return Status::OK();
}

Status ValidateLassoRun(const RegisterAutomaton& automaton, const Database& db,
                        const LassoRun& run,
                        const compile::TransitionGuardView& guards,
                        compile::GuardStats* guard_stats) {
  RAV_RETURN_IF_ERROR(ValidateRunPrefix(automaton, db, run.spine,
                                        /*require_initial=*/true, guards,
                                        guard_stats));
  if (run.cycle_start >= run.spine.length()) {
    return Status::InvalidArgument("lasso: cycle_start beyond spine");
  }
  int ti = run.wrap_transition_index;
  if (ti < 0 || ti >= automaton.num_transitions()) {
    return Status::InvalidArgument("lasso: bad wrap transition index");
  }
  const RaTransition& t = automaton.transition(ti);
  StateId last = run.spine.states.back();
  StateId first = run.spine.states[run.cycle_start];
  if (t.from != last || t.to != first) {
    return Status::InvalidArgument("lasso: wrap transition endpoints mismatch");
  }
  const ValueTuple wrap_xy =
      JoinXy(run.spine.values.back(), run.spine.values[run.cycle_start]);
  const bool wrap_holds =
      guards ? guards.tables->Holds(guards.guard_id_of_transition[ti],
                                    wrap_xy.data(), db, guard_stats)
             : t.guard.HoldsIn(db, wrap_xy);
  if (!wrap_holds) {
    return Status::InvalidArgument("lasso: wrap guard violated");
  }
  bool final_in_cycle = false;
  for (size_t n = run.cycle_start; n < run.spine.length(); ++n) {
    final_in_cycle = final_in_cycle || automaton.IsFinal(run.spine.states[n]);
  }
  if (!final_in_cycle) {
    return Status::InvalidArgument("lasso: no final state in the cycle");
  }
  return Status::OK();
}

FiniteRun RemapNonActiveDomainValues(
    const FiniteRun& run, const Database& db,
    const std::function<DataValue(DataValue)>& map) {
  std::vector<DataValue> adom = db.ActiveDomain();
  auto in_adom = [&](DataValue v) {
    return std::binary_search(adom.begin(), adom.end(), v);
  };
  FiniteRun out = run;
  for (ValueTuple& tuple : out.values) {
    for (DataValue& v : tuple) {
      if (!in_adom(v)) v = map(v);
    }
  }
  return out;
}

std::vector<ValueTuple> ProjectValues(const std::vector<ValueTuple>& values,
                                      int m) {
  std::vector<ValueTuple> out;
  out.reserve(values.size());
  for (const ValueTuple& v : values) {
    RAV_CHECK_LE(static_cast<size_t>(m), v.size());
    out.emplace_back(v.begin(), v.begin() + m);
  }
  return out;
}

}  // namespace rav
