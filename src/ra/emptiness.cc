#include "ra/emptiness.h"

#include <algorithm>
#include <functional>
#include <map>
#include <queue>
#include <set>
#include <tuple>

#include "base/union_find.h"
#include "base/value.h"
#include "ra/transform.h"

namespace rav {

std::optional<LassoWord> FindSymbolicControlLasso(
    const RegisterAutomaton& automaton, const ControlAlphabet& alphabet) {
  Nba scontrol = BuildSControlNba(automaton, alphabet);
  return scontrol.FindAcceptingLasso();
}

Result<bool> HasSomeRun(const RegisterAutomaton& automaton) {
  const RegisterAutomaton* a = &automaton;
  std::optional<RegisterAutomaton> completed;
  if (!automaton.IsComplete()) {
    RAV_ASSIGN_OR_RETURN(RegisterAutomaton c, Completed(automaton));
    completed = std::move(c);
    a = &*completed;
  }
  ControlAlphabet alphabet(*a);
  return FindSymbolicControlLasso(*a, alphabet).has_value();
}

Result<RunWitness> RealizeWitness(const RegisterAutomaton& automaton,
                                  const ControlAlphabet& alphabet,
                                  const LassoWord& control_word,
                                  size_t length) {
  if (length == 0) return Status::InvalidArgument("RealizeWitness: length 0");
  const int k = automaton.num_registers();
  const int num_constants = automaton.schema().num_constants();

  // Node space: (position, register) pairs plus one global node per
  // constant symbol (the constant anchors equality across positions).
  auto reg_node = [&](size_t pos, int reg) {
    return static_cast<int>(pos) * k + reg;
  };
  const int const_base = static_cast<int>(length) * k;
  auto const_node = [&](int c) { return const_base + c; };
  UnionFind uf(length * k + num_constants);

  // Per position, the transition type (full for inner positions, x̄-only
  // restriction for the last). Merge the equalities into the union-find.
  std::vector<const Type*> guards(length, nullptr);
  for (size_t n = 0; n < length; ++n) {
    const int symbol = control_word.SymbolAt(n);
    if (symbol < 0 || symbol >= alphabet.size()) {
      return Status::InvalidArgument("RealizeWitness: bad control symbol");
    }
    guards[n] = &alphabet.guard_of(SymbolId(symbol));
  }

  // Maps a type element (over 2k vars + constants) at step n to a node.
  auto element_node = [&](size_t n, int element) -> int {
    if (element < k) return reg_node(n, element);
    if (element < 2 * k) {
      RAV_CHECK_LT(n + 1, length);
      return reg_node(n + 1, element - k);
    }
    return const_node(element - 2 * k);
  };
  // Same for an element of a k-var restricted type at the last position.
  auto last_element_node = [&](int element) -> int {
    if (element < k) return reg_node(length - 1, element);
    return const_node(element - k);
  };

  Type last_restricted = RestrictToX(*guards[length - 1], k);
  for (size_t n = 0; n + 1 < length; ++n) {
    const Type& t = *guards[n];
    // Merge equal elements: walk classes via representative chains.
    std::vector<int> rep(t.num_classes(), -1);
    for (int e = 0; e < t.num_elements(); ++e) {
      int c = t.ClassOf(e);
      if (rep[c] < 0) {
        rep[c] = e;
      } else {
        uf.Union(element_node(n, rep[c]), element_node(n, e));
      }
    }
  }
  {
    const Type& t = last_restricted;
    std::vector<int> rep(t.num_classes(), -1);
    for (int e = 0; e < t.num_elements(); ++e) {
      int c = t.ClassOf(e);
      if (rep[c] < 0) {
        rep[c] = e;
      } else {
        uf.Union(last_element_node(rep[c]), last_element_node(e));
      }
    }
  }

  // One fresh value per node class.
  std::map<int, DataValue> class_value;
  DataValue next_value = 0;
  auto value_of = [&](int node) {
    int root = uf.Find(node);
    auto it = class_value.find(root);
    if (it != class_value.end()) return it->second;
    DataValue v = next_value++;
    class_value.emplace(root, v);
    return v;
  };

  // Disequality check: elements forced distinct must land in different
  // classes (otherwise the symbolic word is not realizable).
  auto check_diseqs = [&](const Type& t,
                          const std::function<int(int)>& node_of) -> Status {
    std::vector<int> rep(t.num_classes(), -1);
    for (int e = 0; e < t.num_elements(); ++e) {
      if (rep[t.ClassOf(e)] < 0) rep[t.ClassOf(e)] = e;
    }
    for (const auto& [c1, c2] : t.disequalities()) {
      if (uf.Same(node_of(rep[c1]), node_of(rep[c2]))) {
        return Status::InvalidArgument(
            "RealizeWitness: symbolic word not realizable (equality closure "
            "contradicts a disequality)");
      }
    }
    return Status::OK();
  };
  for (size_t n = 0; n + 1 < length; ++n) {
    RAV_RETURN_IF_ERROR(check_diseqs(
        *guards[n], [&](int e) { return element_node(n, e); }));
  }
  RAV_RETURN_IF_ERROR(
      check_diseqs(last_restricted, [&](int e) { return last_element_node(e); }));

  // Build the database: constants, then positive atoms; finally verify the
  // negative atoms.
  Database db(automaton.schema());
  for (int c = 0; c < num_constants; ++c) {
    db.SetConstant(c, value_of(const_node(c)));
  }
  auto atom_tuple = [&](const Type& t, const TypeAtom& atom,
                        const std::function<int(int)>& node_of) {
    std::vector<int> rep(t.num_classes(), -1);
    for (int e = 0; e < t.num_elements(); ++e) {
      if (rep[t.ClassOf(e)] < 0) rep[t.ClassOf(e)] = e;
    }
    ValueTuple tuple;
    tuple.reserve(atom.args.size());
    for (int c : atom.args) tuple.push_back(value_of(node_of(rep[c])));
    return tuple;
  };
  for (size_t n = 0; n + 1 < length; ++n) {
    for (const TypeAtom& atom : guards[n]->atoms()) {
      if (!atom.positive) continue;
      db.Insert(atom.relation,
                atom_tuple(*guards[n], atom,
                           [&](int e) { return element_node(n, e); }));
    }
  }
  for (const TypeAtom& atom : last_restricted.atoms()) {
    if (!atom.positive) continue;
    db.Insert(atom.relation,
              atom_tuple(last_restricted, atom,
                         [&](int e) { return last_element_node(e); }));
  }
  // Negative atoms must not have been inserted.
  for (size_t n = 0; n + 1 < length; ++n) {
    for (const TypeAtom& atom : guards[n]->atoms()) {
      if (atom.positive) continue;
      if (db.Contains(atom.relation,
                      atom_tuple(*guards[n], atom, [&](int e) {
                        return element_node(n, e);
                      }))) {
        return Status::InvalidArgument(
            "RealizeWitness: symbolic word not realizable (positive and "
            "negative atoms collide)");
      }
    }
  }
  for (const TypeAtom& atom : last_restricted.atoms()) {
    if (atom.positive) continue;
    if (db.Contains(atom.relation,
                    atom_tuple(last_restricted, atom, [&](int e) {
                      return last_element_node(e);
                    }))) {
      return Status::InvalidArgument(
          "RealizeWitness: symbolic word not realizable at last position");
    }
  }

  // Assemble the run.
  FiniteRun run;
  run.values.resize(length);
  run.states.resize(length);
  for (size_t n = 0; n < length; ++n) {
    run.states[n] = alphabet.state_of(SymbolId(control_word.SymbolAt(n)));
    run.values[n].resize(k);
    for (int i = 0; i < k; ++i) run.values[n][i] = value_of(reg_node(n, i));
  }
  // Transition indices: locate (q_n, guard_n, q_{n+1}).
  for (size_t n = 0; n + 1 < length; ++n) {
    int found = -1;
    for (int ti : automaton.TransitionsFrom(run.states[n])) {
      const RaTransition& t = automaton.transition(ti);
      if (t.to == run.states[n + 1] && t.guard == *guards[n]) {
        found = ti;
        break;
      }
    }
    if (found < 0) {
      return Status::InvalidArgument(
          "RealizeWitness: control word does not follow the transition "
          "relation");
    }
    run.transition_indices.push_back(found);
  }

  RAV_RETURN_IF_ERROR(ValidateRunPrefix(automaton, db, run,
                                        /*require_initial=*/false));
  return RunWitness{std::move(db), std::move(run)};
}

// ---------------------------------------------------------------------------
// Fixed-database emptiness via the region abstraction.

namespace {

// Abstract register value: codes [0, A) are active-domain values (indices
// into the sorted active domain); codes >= A are equality classes of
// values outside the active domain, canonicalized by first occurrence in
// the register tuple.
using AbstractTuple = std::vector<int>;

AbstractTuple Canonicalize(const AbstractTuple& tuple, int adom_size) {
  AbstractTuple out(tuple.size());
  std::map<int, int> remap;
  for (size_t i = 0; i < tuple.size(); ++i) {
    if (tuple[i] < adom_size) {
      out[i] = tuple[i];
    } else {
      auto it = remap.find(tuple[i]);
      if (it == remap.end()) {
        it = remap.emplace(tuple[i],
                           adom_size + static_cast<int>(remap.size())).first;
      }
      out[i] = it->second;
    }
  }
  return out;
}

// Evaluates `guard` on abstract x̄/ȳ codes. Codes >= adom_size denote
// pairwise-distinct values outside the active domain (so relational atoms
// over them are false).
bool GuardHoldsAbstract(const Type& guard, const AbstractTuple& x,
                        const AbstractTuple& y, const Database& db,
                        const std::vector<DataValue>& adom,
                        const std::vector<int>& constant_codes) {
  const int k = static_cast<int>(x.size());
  auto code_of = [&](int element) -> int {
    if (element < k) return x[element];
    if (element < 2 * k) return y[element - k];
    return constant_codes[element - 2 * k];
  };
  // Equalities within classes.
  std::vector<int> class_code(guard.num_classes(), -2);
  for (int e = 0; e < guard.num_elements(); ++e) {
    int c = guard.ClassOf(e);
    int code = code_of(e);
    if (class_code[c] == -2) {
      class_code[c] = code;
    } else if (class_code[c] != code) {
      return false;
    }
  }
  for (const auto& [c1, c2] : guard.disequalities()) {
    if (class_code[c1] == class_code[c2]) return false;
  }
  const int adom_size = static_cast<int>(adom.size());
  for (const TypeAtom& atom : guard.atoms()) {
    bool in_adom = true;
    ValueTuple tuple;
    tuple.reserve(atom.args.size());
    for (int c : atom.args) {
      int code = class_code[c];
      if (code >= adom_size) {
        in_adom = false;
        break;
      }
      tuple.push_back(adom[code]);
    }
    bool holds = in_adom && db.Contains(atom.relation, tuple);
    if (holds != atom.positive) return false;
  }
  return true;
}

}  // namespace

bool HasRunOverDatabase(const RegisterAutomaton& automaton, const Database& db,
                        FixedDbStats* stats) {
  const int k = automaton.num_registers();
  const std::vector<DataValue> adom = db.ActiveDomain();
  const int adom_size = static_cast<int>(adom.size());

  // Constant codes (constants are in the active domain by definition).
  std::vector<int> constant_codes(automaton.schema().num_constants(), -1);
  for (int c = 0; c < automaton.schema().num_constants(); ++c) {
    DataValue v = db.constant(c);
    auto it = std::lower_bound(adom.begin(), adom.end(), v);
    RAV_CHECK(it != adom.end() && *it == v);
    constant_codes[c] = static_cast<int>(it - adom.begin());
  }

  // Configuration space.
  struct Config {
    StateId state;
    AbstractTuple values;
    bool operator<(const Config& o) const {
      return std::tie(state, values) < std::tie(o.state, o.values);
    }
  };
  std::map<Config, int> config_ids;
  std::vector<Config> configs;
  Nba graph(std::max(automaton.num_transitions(), 1));
  std::queue<int> work;
  auto intern = [&](Config c) {
    auto it = config_ids.find(c);
    if (it != config_ids.end()) return it->second;
    int id = graph.AddState();
    config_ids.emplace(c, id);
    configs.push_back(c);
    if (automaton.IsFinal(c.state)) graph.SetAccepting(id);
    work.push(id);
    return id;
  };

  // Initial configurations: every initial state with every canonical
  // abstract tuple. The number of canonical tuples is bounded by
  // (adom + k)^k; enumerate them.
  {
    std::vector<int> tuple(k, 0);
    auto emit = [&]() {
      AbstractTuple canon = Canonicalize(tuple, adom_size);
      if (canon != tuple) return;  // enumerate canonical forms only
      for (StateId q : automaton.InitialStates()) {
        graph.SetInitial(intern(Config{q, canon}));
      }
    };
    if (k == 0) {
      emit();
    } else {
      const int limit = adom_size + k;
      while (true) {
        emit();
        int i = k - 1;
        while (i >= 0 && tuple[i] == limit - 1) {
          tuple[i] = 0;
          --i;
        }
        if (i < 0) break;
        ++tuple[i];
      }
    }
  }

  size_t num_edges = 0;
  while (!work.empty()) {
    int id = work.front();
    work.pop();
    Config current = configs[id];  // copy: configs may reallocate
    for (int ti : automaton.TransitionsFrom(current.state)) {
      const RaTransition& t = automaton.transition(ti);
      // Enumerate successor abstract tuples: each register takes an adom
      // code or a class code; class codes range over the current tuple's
      // classes plus up to k fresh ones.
      int max_class = adom_size;
      for (int code : current.values) max_class = std::max(max_class, code + 1);
      const int limit = max_class + k;
      std::vector<int> next(k, 0);
      std::set<AbstractTuple> seen_next;
      auto try_next = [&]() {
        if (!GuardHoldsAbstract(t.guard, current.values, next, db, adom,
                                constant_codes)) {
          return;
        }
        AbstractTuple canon = Canonicalize(next, adom_size);
        if (!seen_next.insert(canon).second) return;
        int to = intern(Config{t.to, canon});
        graph.AddTransition(id, automaton.num_transitions() > 0 ? ti : 0, to);
        ++num_edges;
      };
      if (k == 0) {
        try_next();
      } else {
        while (true) {
          try_next();
          int i = k - 1;
          while (i >= 0 && next[i] == limit - 1) {
            next[i] = 0;
            --i;
          }
          if (i < 0) break;
          ++next[i];
        }
      }
    }
  }

  if (stats != nullptr) {
    stats->num_configurations = configs.size();
    stats->num_edges = num_edges;
  }
  return graph.FindAcceptingLasso().has_value();
}

}  // namespace rav
