#ifndef RAV_RA_RUN_H_
#define RAV_RA_RUN_H_

#include <functional>
#include <string>
#include <vector>

#include "base/status.h"
#include "base/value.h"
#include "compile/guard_tables.h"
#include "ra/register_automaton.h"
#include "relational/database.h"

namespace rav {

// A finite prefix of a run of a register automaton: positions 0..L-1 with
// value tuples and states; transition_indices[n] is the transition fired
// between positions n and n+1 (size L-1).
struct FiniteRun {
  std::vector<ValueTuple> values;
  std::vector<StateId> states;
  std::vector<int> transition_indices;

  size_t length() const { return values.size(); }

  std::string ToString(const RegisterAutomaton& automaton) const;
};

// An ultimately periodic run: the finite run `spine`, of which positions
// cycle_start..L-1 repeat forever, with `wrap_transition_index` firing
// from position L-1 back to position cycle_start. Such a run represents
// the genuine infinite run obtained by unrolling the cycle (with the same
// value tuples in every iteration).
struct LassoRun {
  FiniteRun spine;
  size_t cycle_start = 0;
  int wrap_transition_index = -1;

  // The register trace of the infinite run, as a lasso of value tuples.
  std::vector<ValueTuple> PrefixValues() const;
  std::vector<ValueTuple> CycleValues() const;

  // Value tuple at an arbitrary position n >= 0 of the unrolled run.
  const ValueTuple& ValuesAt(size_t n) const;
  StateId StateAt(size_t n) const;
  // Transition index fired between positions n and n+1.
  int TransitionAt(size_t n) const;

  size_t period() const { return spine.length() - cycle_start; }

  std::string ToString(const RegisterAutomaton& automaton) const;
};

// Checks that `run` is a valid run prefix of `automaton` over `db`:
// states/transitions wired correctly, first state initial, and every
// guard satisfied by the adjacent value tuples. Returns OK or a
// description of the first violation (identical message either engine).
//
// With a truthy `guards` view (from ControlAlphabet::transition_guard_view)
// the guard checks run through the compiled tables: the run's positions
// are batched per distinct guard, laid out SoA, and evaluated in one
// EvalBatch pass per guard instead of one interpreted HoldsIn per
// position. `guard_stats` (optional) tallies compiled evaluations.
Status ValidateRunPrefix(const RegisterAutomaton& automaton,
                         const Database& db, const FiniteRun& run,
                         bool require_initial = true,
                         const compile::TransitionGuardView& guards = {},
                         compile::GuardStats* guard_stats = nullptr);

// Checks that `run` is a valid *accepting* infinite run (Büchi: the cycle
// must contain a final state; the wrap transition must be satisfied).
// `guards`/`guard_stats` as in ValidateRunPrefix.
Status ValidateLassoRun(const RegisterAutomaton& automaton, const Database& db,
                        const LassoRun& run,
                        const compile::TransitionGuardView& guards = {},
                        compile::GuardStats* guard_stats = nullptr);

// Projects the register trace of a finite run onto registers [0, m).
std::vector<ValueTuple> ProjectValues(const std::vector<ValueTuple>& values,
                                      int m);

// Lemma 25's computational content: register values outside the active
// domain of the database can be renamed by any injective map (into values
// still outside the active domain) without affecting validity — only
// (in)equality patterns matter for non-adom values, and relational atoms
// never hold of them. Returns the remapped run; values in adom(db) and
// values not in `map` are left untouched. The caller is responsible for
// the map being injective and avoiding adom(db); violations are caught by
// re-validation, not here.
FiniteRun RemapNonActiveDomainValues(
    const FiniteRun& run, const Database& db,
    const std::function<DataValue(DataValue)>& map);

}  // namespace rav

#endif  // RAV_RA_RUN_H_
