#include "ra/intersect.h"

#include <map>
#include <queue>
#include <tuple>

#include "base/metrics.h"

namespace rav {

Result<RegisterAutomaton> IntersectWithStateNba(
    const RegisterAutomaton& automaton, const Nba& state_nba) {
  if (state_nba.alphabet_size() != automaton.num_states()) {
    return Status::InvalidArgument(
        "IntersectWithStateNba: the NBA's alphabet must be the automaton's "
        "state set");
  }

  RegisterAutomaton out(automaton.num_registers(), automaton.schema());

  // Product states (q, s, i): automaton state q, NBA state s having
  // already read q, degeneralization counter i ∈ {0, 1}. The counter
  // advances past 0 on automaton-final states and past 1 on
  // NBA-accepting states; (·, ·, 0) with q final is accepting.
  using Key = std::tuple<StateId, int, int>;
  std::map<Key, StateId> ids;
  std::vector<Key> keys;
  std::queue<StateId> work;
  auto intern = [&](StateId q, int s, int i) {
    Key key{q, s, i};
    auto it = ids.find(key);
    if (it != ids.end()) return it->second;
    StateId id = out.AddState(automaton.state_name(q) + "&" +
                              std::to_string(s) + "." + std::to_string(i));
    ids.emplace(key, id);
    keys.push_back(key);
    out.SetInitial(id, false);
    out.SetFinal(id, i == 0 && automaton.IsFinal(q));
    work.push(id);
    return id;
  };

  // Initial: q0 ∈ I, s ∈ δ_NBA(init, q0), counter 0.
  for (StateId q0 : automaton.InitialStates()) {
    for (int s0 : state_nba.initial()) {
      for (const auto& [symbol, s] : state_nba.TransitionsFrom(s0)) {
        if (symbol != q0.value()) continue;
        StateId id = intern(q0, s, 0);
        out.SetInitial(id, true);
      }
    }
  }

  while (!work.empty()) {
    StateId from_id = work.front();
    work.pop();
    auto [q, s, i] = keys[from_id.value()];
    // Counter advance: past 0 when q is automaton-final, past 1 when s is
    // NBA-accepting.
    int next_i = i;
    if (i == 0 && automaton.IsFinal(q)) next_i = 1;
    if (next_i == 1 && state_nba.IsAccepting(s)) next_i = 0;
    for (int ti : automaton.TransitionsFrom(q)) {
      const RaTransition& t = automaton.transition(ti);
      for (const auto& [symbol, s2] : state_nba.TransitionsFrom(s)) {
        if (symbol != t.to.value()) continue;
        StateId to_id = intern(t.to, s2, next_i);
        out.AddTransition(from_id, t.guard, to_id);
      }
    }
  }
  RAV_METRIC_COUNT("ra/intersect/products", 1);
  RAV_METRIC_RECORD("ra/intersect/product_states", out.num_states());
  return out;
}

}  // namespace rav
