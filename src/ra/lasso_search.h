#ifndef RAV_RA_LASSO_SEARCH_H_
#define RAV_RA_LASSO_SEARCH_H_

#include <optional>

#include "ra/register_automaton.h"
#include "ra/run.h"
#include "relational/database.h"

namespace rav {

// Searches for a concrete accepting lasso run of `automaton` over `db` by
// enumerating run prefixes up to `max_length` positions over `value_pool`
// and trying to close each prefix suffix into a value-periodic cycle
// containing a final state. Returns the first hit.
//
// This is a brute-force *witness finder* (exponential in max_length), the
// concrete counterpart of the symbolic emptiness machinery: a returned
// lasso is a real run certificate, validated before returning. Note that
// some nonempty automata have no value-periodic lasso over a small pool
// (e.g. all-values-distinct behaviors); absence of a hit is not emptiness.
std::optional<LassoRun> FindLassoRunByEnumeration(
    const RegisterAutomaton& automaton, const Database& db, size_t max_length,
    const std::vector<DataValue>& value_pool);

}  // namespace rav

#endif  // RAV_RA_LASSO_SEARCH_H_
