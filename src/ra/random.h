#ifndef RAV_RA_RANDOM_H_
#define RAV_RA_RANDOM_H_

#include <random>

#include "ra/register_automaton.h"

namespace rav {

// Random register automata for property testing and fuzzing. The
// generated automaton always has at least one initial and one final
// state, every guard is satisfiable, and every state has at least one
// outgoing transition (so infinite runs are not blocked by dead ends).
struct RandomAutomatonOptions {
  int num_registers = 2;
  int num_states = 3;
  int num_transitions = 5;
  // Random equality/disequality literals attempted per guard (contradictory
  // picks are discarded).
  int literal_attempts = 3;
  // Schema (relations are used in guards when present).
  Schema schema;
  // Probability (x1000) that a generated literal is relational, when the
  // schema has relations.
  int relational_literal_permille = 300;
};

RegisterAutomaton RandomAutomaton(std::mt19937& rng,
                                  const RandomAutomatonOptions& options = {});

}  // namespace rav

#endif  // RAV_RA_RANDOM_H_
