#include "ra/random.h"

namespace rav {

RegisterAutomaton RandomAutomaton(std::mt19937& rng,
                                  const RandomAutomatonOptions& options) {
  const int k = options.num_registers;
  const int n = options.num_states;
  RAV_CHECK_GT(n, 0);
  RegisterAutomaton a(k, options.schema);
  for (int s = 0; s < n; ++s) a.AddState("r" + std::to_string(s));

  std::uniform_int_distribution<int> state_dist(0, n - 1);
  auto random_state = [&]() { return StateId(state_dist(rng)); };
  a.SetInitial(random_state());
  a.SetFinal(random_state());

  const int num_elements = 2 * k + options.schema.num_constants();
  std::uniform_int_distribution<int> element_dist(0, num_elements - 1);
  std::uniform_int_distribution<int> coin(0, 1);
  std::uniform_int_distribution<int> permille(0, 999);

  auto random_guard = [&]() {
    // Build incrementally, keeping only literals that stay satisfiable.
    Type current(2 * k, options.schema.num_constants());
    for (int attempt = 0; attempt < options.literal_attempts; ++attempt) {
      TypeBuilder builder(2 * k, options.schema.num_constants());
      builder.AddAll(current);
      bool relational = options.schema.num_relations() > 0 &&
                        permille(rng) < options.relational_literal_permille;
      if (relational) {
        std::uniform_int_distribution<int> rel_dist(
            0, options.schema.num_relations() - 1);
        RelationId rel = rel_dist(rng);
        std::vector<ElementIndex> args;
        for (int i = 0; i < options.schema.arity(rel); ++i) {
          args.push_back(ElementIndex(element_dist(rng)));
        }
        builder.AddAtom(rel, std::move(args), coin(rng) == 0);
      } else {
        int e1 = element_dist(rng);
        int e2 = element_dist(rng);
        if (e1 == e2) continue;
        if (coin(rng) == 0) {
          builder.AddEq(ElementIndex(e1), ElementIndex(e2));
        } else {
          builder.AddNeq(ElementIndex(e1), ElementIndex(e2));
        }
      }
      Result<Type> next = builder.Build();
      if (next.ok()) current = std::move(next).value();
    }
    return current;
  };

  // Every state gets one outgoing transition; remaining transitions are
  // placed at random sources.
  int remaining = options.num_transitions;
  for (int s = 0; s < n && remaining > 0; ++s, --remaining) {
    a.AddTransition(StateId(s), random_guard(), random_state());
  }
  while (remaining-- > 0) {
    a.AddTransition(random_state(), random_guard(), random_state());
  }
  return a;
}

}  // namespace rav
