#include "ltl/tableau.h"

#include <cstdint>
#include <map>
#include <tuple>
#include <vector>

#include "base/logging.h"

namespace rav {

namespace {

// Core formula representation for the tableau: LTL is rewritten into the
// adequate fragment {true, AP, ¬, ∧, X, U} with interning, so that the
// closure is a dense array of small nodes indexed by id.
struct CoreNode {
  enum class Op { kTrue, kAp, kNot, kAnd, kNext, kUntil };
  Op op;
  int ap = -1;
  int left = -1;
  int right = -1;
};

class CoreArena {
 public:
  int True() { return Intern({CoreNode::Op::kTrue, -1, -1, -1}); }
  int Ap(int p) { return Intern({CoreNode::Op::kAp, p, -1, -1}); }
  int Not(int f) {
    // ¬¬f = f keeps the closure small.
    if (nodes_[f].op == CoreNode::Op::kNot) return nodes_[f].left;
    return Intern({CoreNode::Op::kNot, -1, f, -1});
  }
  int And(int a, int b) { return Intern({CoreNode::Op::kAnd, -1, a, b}); }
  int Next(int f) { return Intern({CoreNode::Op::kNext, -1, f, -1}); }
  int Until(int a, int b) { return Intern({CoreNode::Op::kUntil, -1, a, b}); }

  const CoreNode& node(int id) const { return nodes_[id]; }
  int size() const { return static_cast<int>(nodes_.size()); }

 private:
  int Intern(CoreNode n) {
    auto key = std::make_tuple(static_cast<int>(n.op), n.ap, n.left, n.right);
    auto it = ids_.find(key);
    if (it != ids_.end()) return it->second;
    int id = static_cast<int>(nodes_.size());
    nodes_.push_back(n);
    ids_.emplace(key, id);
    return id;
  }

  std::vector<CoreNode> nodes_;
  std::map<std::tuple<int, int, int, int>, int> ids_;
};

int Rewrite(const LtlFormula& f, CoreArena& arena) {
  using Op = LtlFormula::Op;
  switch (f.op()) {
    case Op::kTrue:
      return arena.True();
    case Op::kFalse:
      return arena.Not(arena.True());
    case Op::kAp:
      return arena.Ap(f.ap_index());
    case Op::kNot:
      return arena.Not(Rewrite(f.left(), arena));
    case Op::kAnd:
      return arena.And(Rewrite(f.left(), arena), Rewrite(f.right(), arena));
    case Op::kOr:
      return arena.Not(arena.And(arena.Not(Rewrite(f.left(), arena)),
                                 arena.Not(Rewrite(f.right(), arena))));
    case Op::kImplies:
      return arena.Not(arena.And(Rewrite(f.left(), arena),
                                 arena.Not(Rewrite(f.right(), arena))));
    case Op::kNext:
      return arena.Next(Rewrite(f.left(), arena));
    case Op::kUntil:
      return arena.Until(Rewrite(f.left(), arena), Rewrite(f.right(), arena));
    case Op::kRelease:
      return arena.Not(arena.Until(arena.Not(Rewrite(f.left(), arena)),
                                   arena.Not(Rewrite(f.right(), arena))));
    case Op::kEventually:
      return arena.Until(arena.True(), Rewrite(f.left(), arena));
    case Op::kGlobally:
      return arena.Not(
          arena.Until(arena.True(), arena.Not(Rewrite(f.left(), arena))));
  }
  RAV_CHECK(false);
  return -1;
}

constexpr int kMaxClosure = 20;
constexpr int kMaxAps = 16;

}  // namespace

Result<LtlAutomaton> LtlToNba(const LtlFormula& formula, int num_aps) {
  if (num_aps < 0) num_aps = formula.MaxApIndex() + 1;
  if (num_aps > kMaxAps) {
    return Status::ResourceExhausted("LtlToNba: too many propositions");
  }
  CoreArena arena;
  const int root = Rewrite(formula, arena);
  const int c = arena.size();
  if (c > kMaxClosure) {
    return Status::ResourceExhausted("LtlToNba: closure too large (" +
                                     std::to_string(c) + " formulas)");
  }

  using Mask = uint32_t;
  auto has = [](Mask m, int id) { return (m >> id) & 1u; };

  // Enumerate the elementary (locally consistent) formula sets.
  std::vector<Mask> states;
  for (Mask m = 0; m < (Mask{1} << c); ++m) {
    bool ok = true;
    for (int id = 0; id < c && ok; ++id) {
      const CoreNode& n = arena.node(id);
      switch (n.op) {
        case CoreNode::Op::kTrue:
          ok = has(m, id);
          break;
        case CoreNode::Op::kNot:
          ok = has(m, id) != has(m, n.left);
          break;
        case CoreNode::Op::kAnd:
          ok = has(m, id) == (has(m, n.left) && has(m, n.right));
          break;
        case CoreNode::Op::kUntil:
          // Local expansion constraints: r ⇒ U; U ∧ ¬r ⇒ l.
          if (has(m, n.right) && !has(m, id)) ok = false;
          if (has(m, id) && !has(m, n.right) && !has(m, n.left)) ok = false;
          break;
        default:
          break;
      }
    }
    if (ok) states.push_back(m);
  }

  // Collect the Until formulas (one GNBA acceptance set each) and the AP /
  // Next formulas.
  std::vector<int> untils;
  std::vector<int> nexts;
  std::vector<std::pair<int, int>> aps;  // (closure id, ap index)
  for (int id = 0; id < c; ++id) {
    const CoreNode& n = arena.node(id);
    if (n.op == CoreNode::Op::kUntil) untils.push_back(id);
    if (n.op == CoreNode::Op::kNext) nexts.push_back(id);
    if (n.op == CoreNode::Op::kAp) aps.emplace_back(id, n.ap);
  }

  GeneralizedNba gnba(1 << num_aps, static_cast<int>(untils.size()));
  for (size_t i = 0; i < states.size(); ++i) {
    int s = gnba.AddState();
    RAV_CHECK_EQ(s, static_cast<int>(i));
    Mask m = states[i];
    for (size_t u = 0; u < untils.size(); ++u) {
      const CoreNode& n = arena.node(untils[u]);
      if (!has(m, untils[u]) || has(m, n.right)) {
        gnba.AddToAcceptSet(static_cast<int>(u), s);
      }
    }
    if (has(m, root)) gnba.SetInitial(s);
  }

  // Transition constraints of each source state on the successor mask.
  for (size_t i = 0; i < states.size(); ++i) {
    Mask m = states[i];
    Mask required = 0;
    Mask forbidden = 0;
    for (int id : nexts) {
      const CoreNode& n = arena.node(id);
      if (has(m, id)) {
        required |= Mask{1} << n.left;
      } else {
        forbidden |= Mask{1} << n.left;
      }
    }
    for (int id : untils) {
      const CoreNode& n = arena.node(id);
      if (has(m, id) && !has(m, n.right)) required |= Mask{1} << id;
      if (!has(m, id) && has(m, n.left)) forbidden |= Mask{1} << id;
    }
    // Alphabet symbols compatible with the source state's AP claims.
    uint32_t fixed_bits = 0;
    uint32_t fixed_values = 0;
    for (const auto& [id, p] : aps) {
      fixed_bits |= uint32_t{1} << p;
      if (has(m, id)) fixed_values |= uint32_t{1} << p;
    }
    for (size_t j = 0; j < states.size(); ++j) {
      Mask m2 = states[j];
      if ((m2 & required) != required || (m2 & forbidden) != 0) continue;
      for (uint32_t a = 0; a < (uint32_t{1} << num_aps); ++a) {
        if ((a & fixed_bits) != fixed_values) continue;
        gnba.AddTransition(static_cast<int>(i), static_cast<int>(a),
                           static_cast<int>(j));
      }
    }
  }

  LtlAutomaton out{gnba.Degeneralize(), num_aps, c,
                   static_cast<int>(states.size())};
  return out;
}

Result<std::optional<LassoWord>> LtlSatisfiableWitness(
    const LtlFormula& formula, int num_aps) {
  RAV_ASSIGN_OR_RETURN(LtlAutomaton aut, LtlToNba(formula, num_aps));
  return aut.nba.FindAcceptingLasso();
}

}  // namespace rav
