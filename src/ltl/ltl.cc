#include "ltl/ltl.h"

#include <algorithm>
#include <cctype>

#include "base/logging.h"

namespace rav {

LtlFormula LtlFormula::True() {
  auto n = std::make_shared<Node>();
  n->op = Op::kTrue;
  return LtlFormula(std::move(n));
}

LtlFormula LtlFormula::False() {
  auto n = std::make_shared<Node>();
  n->op = Op::kFalse;
  return LtlFormula(std::move(n));
}

LtlFormula LtlFormula::Ap(int index) {
  RAV_CHECK_GE(index, 0);
  auto n = std::make_shared<Node>();
  n->op = Op::kAp;
  n->ap_index = index;
  return LtlFormula(std::move(n));
}

namespace {

std::shared_ptr<const LtlFormula> Box(LtlFormula f) {
  return std::make_shared<const LtlFormula>(std::move(f));
}

}  // namespace

LtlFormula LtlFormula::Not(LtlFormula f) {
  auto n = std::make_shared<Node>();
  n->op = Op::kNot;
  n->left = Box(std::move(f));
  return LtlFormula(std::move(n));
}

LtlFormula LtlFormula::And(LtlFormula a, LtlFormula b) {
  auto n = std::make_shared<Node>();
  n->op = Op::kAnd;
  n->left = Box(std::move(a));
  n->right = Box(std::move(b));
  return LtlFormula(std::move(n));
}

LtlFormula LtlFormula::Or(LtlFormula a, LtlFormula b) {
  auto n = std::make_shared<Node>();
  n->op = Op::kOr;
  n->left = Box(std::move(a));
  n->right = Box(std::move(b));
  return LtlFormula(std::move(n));
}

LtlFormula LtlFormula::Implies(LtlFormula a, LtlFormula b) {
  auto n = std::make_shared<Node>();
  n->op = Op::kImplies;
  n->left = Box(std::move(a));
  n->right = Box(std::move(b));
  return LtlFormula(std::move(n));
}

LtlFormula LtlFormula::Next(LtlFormula f) {
  auto n = std::make_shared<Node>();
  n->op = Op::kNext;
  n->left = Box(std::move(f));
  return LtlFormula(std::move(n));
}

LtlFormula LtlFormula::Until(LtlFormula a, LtlFormula b) {
  auto n = std::make_shared<Node>();
  n->op = Op::kUntil;
  n->left = Box(std::move(a));
  n->right = Box(std::move(b));
  return LtlFormula(std::move(n));
}

LtlFormula LtlFormula::Release(LtlFormula a, LtlFormula b) {
  auto n = std::make_shared<Node>();
  n->op = Op::kRelease;
  n->left = Box(std::move(a));
  n->right = Box(std::move(b));
  return LtlFormula(std::move(n));
}

LtlFormula LtlFormula::Eventually(LtlFormula f) {
  auto n = std::make_shared<Node>();
  n->op = Op::kEventually;
  n->left = Box(std::move(f));
  return LtlFormula(std::move(n));
}

LtlFormula LtlFormula::Globally(LtlFormula f) {
  auto n = std::make_shared<Node>();
  n->op = Op::kGlobally;
  n->left = Box(std::move(f));
  return LtlFormula(std::move(n));
}

int LtlFormula::MaxApIndex() const {
  int max_index = node_->op == Op::kAp ? node_->ap_index : -1;
  if (node_->left) max_index = std::max(max_index, node_->left->MaxApIndex());
  if (node_->right) {
    max_index = std::max(max_index, node_->right->MaxApIndex());
  }
  return max_index;
}

// ---------------------------------------------------------------------------
// Lasso evaluation (independent oracle for the tableau translation).

bool LtlFormula::EvalOnLasso(const std::function<uint64_t(size_t)>& ap_mask_at,
                             size_t prefix_len, size_t cycle_len) const {
  RAV_CHECK_GE(cycle_len, 1u);
  const size_t n = prefix_len + cycle_len;
  auto succ = [&](size_t i) { return i + 1 < n ? i + 1 : prefix_len; };

  // Truth table of this formula at each canonical position, computed
  // bottom-up by structural recursion.
  std::function<std::vector<bool>(const LtlFormula&)> table =
      [&](const LtlFormula& f) -> std::vector<bool> {
    std::vector<bool> out(n, false);
    switch (f.op()) {
      case Op::kTrue:
        out.assign(n, true);
        break;
      case Op::kFalse:
        break;
      case Op::kAp:
        for (size_t i = 0; i < n; ++i) {
          out[i] = (ap_mask_at(i) >> f.ap_index()) & 1;
        }
        break;
      case Op::kNot: {
        auto a = table(f.left());
        for (size_t i = 0; i < n; ++i) out[i] = !a[i];
        break;
      }
      case Op::kAnd: {
        auto a = table(f.left());
        auto b = table(f.right());
        for (size_t i = 0; i < n; ++i) out[i] = a[i] && b[i];
        break;
      }
      case Op::kOr: {
        auto a = table(f.left());
        auto b = table(f.right());
        for (size_t i = 0; i < n; ++i) out[i] = a[i] || b[i];
        break;
      }
      case Op::kImplies: {
        auto a = table(f.left());
        auto b = table(f.right());
        for (size_t i = 0; i < n; ++i) out[i] = !a[i] || b[i];
        break;
      }
      case Op::kNext: {
        auto a = table(f.left());
        for (size_t i = 0; i < n; ++i) out[i] = a[succ(i)];
        break;
      }
      case Op::kUntil: {
        auto a = table(f.left());
        auto b = table(f.right());
        // Least fixpoint: iterate backwards-from-false until stable;
        // 2n passes suffice for an ultimately periodic word.
        for (size_t pass = 0; pass < 2; ++pass) {
          for (size_t step = 0; step < n; ++step) {
            size_t i = n - 1 - step;
            out[i] = b[i] || (a[i] && out[succ(i)]);
          }
        }
        break;
      }
      case Op::kRelease: {
        auto a = table(f.left());
        auto b = table(f.right());
        // Greatest fixpoint: start from true.
        out.assign(n, true);
        for (size_t pass = 0; pass < 2; ++pass) {
          for (size_t step = 0; step < n; ++step) {
            size_t i = n - 1 - step;
            out[i] = b[i] && (a[i] || out[succ(i)]);
          }
        }
        break;
      }
      case Op::kEventually: {
        auto a = table(f.left());
        for (size_t pass = 0; pass < 2; ++pass) {
          for (size_t step = 0; step < n; ++step) {
            size_t i = n - 1 - step;
            out[i] = a[i] || out[succ(i)];
          }
        }
        break;
      }
      case Op::kGlobally: {
        auto a = table(f.left());
        out.assign(n, true);
        for (size_t pass = 0; pass < 2; ++pass) {
          for (size_t step = 0; step < n; ++step) {
            size_t i = n - 1 - step;
            out[i] = a[i] && out[succ(i)];
          }
        }
        break;
      }
    }
    return out;
  };
  return table(*this)[0];
}

// ---------------------------------------------------------------------------
// Parser

namespace {

struct LtlToken {
  enum class Kind {
    kIdent, kTrue, kFalse, kNot, kAnd, kOr, kImplies,
    kNext, kUntil, kRelease, kEventually, kGlobally,
    kLParen, kRParen, kEnd,
  };
  Kind kind;
  std::string text;
};

Result<std::vector<LtlToken>> TokenizeLtl(const std::string& text) {
  std::vector<LtlToken> tokens;
  size_t i = 0;
  while (i < text.size()) {
    char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '(') {
      tokens.push_back({LtlToken::Kind::kLParen, "("});
      ++i;
      continue;
    }
    if (c == ')') {
      tokens.push_back({LtlToken::Kind::kRParen, ")"});
      ++i;
      continue;
    }
    if (c == '!') {
      tokens.push_back({LtlToken::Kind::kNot, "!"});
      ++i;
      continue;
    }
    if (c == '&') {
      tokens.push_back({LtlToken::Kind::kAnd, "&"});
      ++i;
      continue;
    }
    if (c == '|') {
      tokens.push_back({LtlToken::Kind::kOr, "|"});
      ++i;
      continue;
    }
    if (c == '-' && i + 1 < text.size() && text[i + 1] == '>') {
      tokens.push_back({LtlToken::Kind::kImplies, "->"});
      i += 2;
      continue;
    }
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < text.size() &&
             (std::isalnum(static_cast<unsigned char>(text[i])) ||
              text[i] == '_')) {
        ++i;
      }
      std::string word = text.substr(start, i - start);
      LtlToken::Kind kind = LtlToken::Kind::kIdent;
      if (word == "true") kind = LtlToken::Kind::kTrue;
      else if (word == "false") kind = LtlToken::Kind::kFalse;
      else if (word == "G") kind = LtlToken::Kind::kGlobally;
      else if (word == "F") kind = LtlToken::Kind::kEventually;
      else if (word == "X") kind = LtlToken::Kind::kNext;
      else if (word == "U") kind = LtlToken::Kind::kUntil;
      else if (word == "R") kind = LtlToken::Kind::kRelease;
      tokens.push_back({kind, std::move(word)});
      continue;
    }
    return Status::InvalidArgument(std::string("LTL: unexpected char '") + c +
                                   "'");
  }
  tokens.push_back({LtlToken::Kind::kEnd, ""});
  return tokens;
}

class LtlParser {
 public:
  LtlParser(std::vector<LtlToken> tokens,
            const std::function<int(const std::string&)>& resolve)
      : tokens_(std::move(tokens)), resolve_(resolve) {}

  Result<LtlFormula> Parse() {
    RAV_ASSIGN_OR_RETURN(LtlFormula f, ParseImplies());
    if (Peek().kind != LtlToken::Kind::kEnd) {
      return Status::InvalidArgument("LTL: trailing input at '" + Peek().text +
                                     "'");
    }
    return f;
  }

 private:
  const LtlToken& Peek() const { return tokens_[pos_]; }
  void Advance() { ++pos_; }

  Result<LtlFormula> ParseImplies() {
    RAV_ASSIGN_OR_RETURN(LtlFormula left, ParseOr());
    if (Peek().kind == LtlToken::Kind::kImplies) {
      Advance();
      RAV_ASSIGN_OR_RETURN(LtlFormula right, ParseImplies());  // right assoc
      return LtlFormula::Implies(std::move(left), std::move(right));
    }
    return left;
  }

  Result<LtlFormula> ParseOr() {
    RAV_ASSIGN_OR_RETURN(LtlFormula left, ParseAnd());
    while (Peek().kind == LtlToken::Kind::kOr) {
      Advance();
      RAV_ASSIGN_OR_RETURN(LtlFormula right, ParseAnd());
      left = LtlFormula::Or(std::move(left), std::move(right));
    }
    return left;
  }

  Result<LtlFormula> ParseAnd() {
    RAV_ASSIGN_OR_RETURN(LtlFormula left, ParseUntil());
    while (Peek().kind == LtlToken::Kind::kAnd) {
      Advance();
      RAV_ASSIGN_OR_RETURN(LtlFormula right, ParseUntil());
      left = LtlFormula::And(std::move(left), std::move(right));
    }
    return left;
  }

  Result<LtlFormula> ParseUntil() {
    RAV_ASSIGN_OR_RETURN(LtlFormula left, ParseUnary());
    if (Peek().kind == LtlToken::Kind::kUntil) {
      Advance();
      RAV_ASSIGN_OR_RETURN(LtlFormula right, ParseUntil());  // right assoc
      return LtlFormula::Until(std::move(left), std::move(right));
    }
    if (Peek().kind == LtlToken::Kind::kRelease) {
      Advance();
      RAV_ASSIGN_OR_RETURN(LtlFormula right, ParseUntil());
      return LtlFormula::Release(std::move(left), std::move(right));
    }
    return left;
  }

  Result<LtlFormula> ParseUnary() {
    switch (Peek().kind) {
      case LtlToken::Kind::kNot: {
        Advance();
        RAV_ASSIGN_OR_RETURN(LtlFormula f, ParseUnary());
        return LtlFormula::Not(std::move(f));
      }
      case LtlToken::Kind::kNext: {
        Advance();
        RAV_ASSIGN_OR_RETURN(LtlFormula f, ParseUnary());
        return LtlFormula::Next(std::move(f));
      }
      case LtlToken::Kind::kEventually: {
        Advance();
        RAV_ASSIGN_OR_RETURN(LtlFormula f, ParseUnary());
        return LtlFormula::Eventually(std::move(f));
      }
      case LtlToken::Kind::kGlobally: {
        Advance();
        RAV_ASSIGN_OR_RETURN(LtlFormula f, ParseUnary());
        return LtlFormula::Globally(std::move(f));
      }
      case LtlToken::Kind::kTrue:
        Advance();
        return LtlFormula::True();
      case LtlToken::Kind::kFalse:
        Advance();
        return LtlFormula::False();
      case LtlToken::Kind::kLParen: {
        Advance();
        RAV_ASSIGN_OR_RETURN(LtlFormula f, ParseImplies());
        if (Peek().kind != LtlToken::Kind::kRParen) {
          return Status::InvalidArgument("LTL: expected ')'");
        }
        Advance();
        return f;
      }
      case LtlToken::Kind::kIdent: {
        std::string name = Peek().text;
        Advance();
        int index = resolve_(name);
        if (index < 0) {
          return Status::InvalidArgument("LTL: unknown proposition '" + name +
                                         "'");
        }
        return LtlFormula::Ap(index);
      }
      default:
        return Status::InvalidArgument("LTL: unexpected token '" +
                                       Peek().text + "'");
    }
  }

  std::vector<LtlToken> tokens_;
  const std::function<int(const std::string&)>& resolve_;
  size_t pos_ = 0;
};

}  // namespace

Result<LtlFormula> LtlFormula::Parse(
    const std::string& text,
    const std::function<int(const std::string&)>& resolve) {
  RAV_ASSIGN_OR_RETURN(std::vector<LtlToken> tokens, TokenizeLtl(text));
  LtlParser parser(std::move(tokens), resolve);
  return parser.Parse();
}

std::string LtlFormula::ToString(
    const std::function<std::string(int)>& ap_name) const {
  switch (node_->op) {
    case Op::kTrue:
      return "true";
    case Op::kFalse:
      return "false";
    case Op::kAp:
      return ap_name(node_->ap_index);
    case Op::kNot:
      return "!(" + node_->left->ToString(ap_name) + ")";
    case Op::kAnd:
      return "(" + node_->left->ToString(ap_name) + " & " +
             node_->right->ToString(ap_name) + ")";
    case Op::kOr:
      return "(" + node_->left->ToString(ap_name) + " | " +
             node_->right->ToString(ap_name) + ")";
    case Op::kImplies:
      return "(" + node_->left->ToString(ap_name) + " -> " +
             node_->right->ToString(ap_name) + ")";
    case Op::kNext:
      return "X(" + node_->left->ToString(ap_name) + ")";
    case Op::kUntil:
      return "(" + node_->left->ToString(ap_name) + " U " +
             node_->right->ToString(ap_name) + ")";
    case Op::kRelease:
      return "(" + node_->left->ToString(ap_name) + " R " +
             node_->right->ToString(ap_name) + ")";
    case Op::kEventually:
      return "F(" + node_->left->ToString(ap_name) + ")";
    case Op::kGlobally:
      return "G(" + node_->left->ToString(ap_name) + ")";
  }
  return "?";
}

}  // namespace rav
