#ifndef RAV_LTL_TABLEAU_H_
#define RAV_LTL_TABLEAU_H_

#include "automata/nba.h"
#include "base/status.h"
#include "ltl/ltl.h"

namespace rav {

// Result of translating an LTL formula into a Büchi automaton. The NBA's
// alphabet is the set of AP valuations encoded as bitmasks: symbol a has
// bit p set iff proposition p holds, so alphabet_size = 2^num_aps.
struct LtlAutomaton {
  Nba nba;
  int num_aps = 0;
  // Statistics for the E8 benchmark.
  int closure_size = 0;
  int num_elementary_states = 0;
};

// Classic declarative tableau translation (elementary-set construction):
// the returned NBA accepts exactly the AP-valuation ω-words satisfying
// `formula`. `num_aps` fixes the alphabet; pass -1 to use
// formula.MaxApIndex() + 1. Fails with ResourceExhausted when the closure
// exceeds 20 formulas or num_aps exceeds 16 (the construction is
// exponential; the paper's verification results are about decidability,
// not complexity).
Result<LtlAutomaton> LtlToNba(const LtlFormula& formula, int num_aps = -1);

// Satisfiability of an LTL formula over AP ω-words, with a witness lasso
// of AP bitmask symbols when satisfiable.
Result<std::optional<LassoWord>> LtlSatisfiableWitness(
    const LtlFormula& formula, int num_aps = -1);

}  // namespace rav

#endif  // RAV_LTL_TABLEAU_H_
