#ifndef RAV_LTL_LTL_H_
#define RAV_LTL_LTL_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "base/status.h"

namespace rav {

// Linear-time temporal logic over atomic propositions identified by dense
// indices. Propositions are abstract here; LTL-FO (Definition 11 of the
// paper) instantiates them with quantifier-free FO formulas over the
// registers — see era/ltlfo.h.
//
// Concrete syntax accepted by Parse:
//   f := 'true' | 'false' | ident
//      | '!' f | 'G' f | 'F' f | 'X' f
//      | f 'U' f | f 'R' f           (right-associative)
//      | f '&' f | f '|' f | f '->' f
//      | '(' f ')'
// Precedence (loosest to tightest): -> , | , & , U/R , unary.
class LtlFormula {
 public:
  enum class Op {
    kTrue, kFalse, kAp, kNot, kAnd, kOr, kImplies,
    kNext, kUntil, kRelease, kEventually, kGlobally,
  };

  static LtlFormula True();
  static LtlFormula False();
  static LtlFormula Ap(int index);
  static LtlFormula Not(LtlFormula f);
  static LtlFormula And(LtlFormula a, LtlFormula b);
  static LtlFormula Or(LtlFormula a, LtlFormula b);
  static LtlFormula Implies(LtlFormula a, LtlFormula b);
  static LtlFormula Next(LtlFormula f);
  static LtlFormula Until(LtlFormula a, LtlFormula b);
  static LtlFormula Release(LtlFormula a, LtlFormula b);
  static LtlFormula Eventually(LtlFormula f);
  static LtlFormula Globally(LtlFormula f);

  // Parses the concrete syntax; `resolve` maps proposition identifiers to
  // indices (negative = unknown identifier, a parse error).
  static Result<LtlFormula> Parse(
      const std::string& text,
      const std::function<int(const std::string&)>& resolve);

  Op op() const { return node_->op; }
  int ap_index() const { return node_->ap_index; }
  const LtlFormula& left() const { return *node_->left; }
  const LtlFormula& right() const { return *node_->right; }

  // Largest proposition index used, or -1.
  int MaxApIndex() const;

  // Evaluates the formula on the ultimately periodic valuation sequence
  // (σ_i)_{i≥0} where σ_i is given by `ap_mask_at(i)` (bit p set = AP p
  // true), with period data (prefix_len, cycle_len) describing when the
  // sequence repeats. Used by tests as an independent oracle for the
  // tableau translation.
  bool EvalOnLasso(const std::function<uint64_t(size_t)>& ap_mask_at,
                   size_t prefix_len, size_t cycle_len) const;

  std::string ToString(
      const std::function<std::string(int)>& ap_name) const;

 private:
  struct Node {
    Op op;
    int ap_index = -1;
    std::shared_ptr<const LtlFormula> left;
    std::shared_ptr<const LtlFormula> right;
  };

  explicit LtlFormula(std::shared_ptr<const Node> node)
      : node_(std::move(node)) {}

  std::shared_ptr<const Node> node_;
};

}  // namespace rav

#endif  // RAV_LTL_LTL_H_
