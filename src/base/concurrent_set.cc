#include "base/concurrent_set.h"

#include <cstring>

#include "base/logging.h"

namespace rav {

namespace {

// Power-of-two shard tables start at 64 slots and grow at 3/4 load.
constexpr size_t kInitialSlots = 64;

}  // namespace

ConcurrentSet::ConcurrentSet(StatePool* pool,
                             const ExecutionGovernor* governor, int num_shards)
    : pool_(pool), governor_(governor) {
  RAV_CHECK(pool_ != nullptr);
  RAV_CHECK_GT(num_shards, 0);
  shards_.reserve(static_cast<size_t>(num_shards));
  size_t charged = 0;
  for (int i = 0; i < num_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->slots.resize(kInitialSlots);
    charged += kInitialSlots * sizeof(Entry);
    shards_.push_back(std::move(shard));
  }
  if (governor_ != nullptr) governor_->ChargeBytes(charged);
  bytes_reserved_.store(charged, std::memory_order_relaxed);
}

ConcurrentSet::~ConcurrentSet() {
  if (governor_ != nullptr) {
    governor_->ReleaseBytes(bytes_reserved());
  }
}

uint64_t ConcurrentSet::Fingerprint(const uint8_t* data, uint32_t size) {
  // FNV-1a, then a splitmix64 finalizer so short keys still spread over
  // the shard index and the high probe bits.
  uint64_t h = 1469598103934665603ull;
  for (uint32_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 1099511628211ull;
  }
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebull;
  h ^= h >> 31;
  // 0 marks an empty slot; remap rather than special-case the probes.
  return h == 0 ? 1 : h;
}

void ConcurrentSet::GrowShard(Shard& shard) {
  std::vector<Entry> old = std::move(shard.slots);
  const size_t new_size = old.size() * 2;
  shard.slots.assign(new_size, Entry{});
  const size_t mask = new_size - 1;
  for (const Entry& e : old) {
    if (e.fingerprint == 0) continue;
    size_t slot = static_cast<size_t>(e.fingerprint) & mask;
    while (shard.slots[slot].fingerprint != 0) slot = (slot + 1) & mask;
    shard.slots[slot] = e;
  }
  const size_t added = (new_size - old.size()) * sizeof(Entry);
  if (governor_ != nullptr) governor_->ChargeBytes(added);
  bytes_reserved_.fetch_add(added, std::memory_order_relaxed);
}

ConcurrentSet::InternResult ConcurrentSet::Intern(StatePool::ThreadCache& cache,
                                                  const uint8_t* data,
                                                  uint32_t size) {
  const uint64_t fp = Fingerprint(data, size);
  // High bits pick the shard, low bits the slot, so the two indices stay
  // independent even though they come from one fingerprint.
  Shard& shard = *shards_[(fp >> 48) % shards_.size()];
  std::lock_guard<std::mutex> lock(shard.mu);
  const size_t mask = shard.slots.size() - 1;
  size_t slot = static_cast<size_t>(fp) & mask;
  while (true) {
    Entry& e = shard.slots[slot];
    if (e.fingerprint == 0) break;
    if (e.fingerprint == fp && pool_->Size(e.handle) == size &&
        std::memcmp(pool_->Data(e.handle), data, size) == 0) {
      return {e.handle, false};
    }
    slot = (slot + 1) & mask;
  }
  const StatePool::Handle handle = pool_->Store(cache, data, size);
  shard.slots[slot] = Entry{fp, handle};
  ++shard.used;
  entries_.fetch_add(1, std::memory_order_relaxed);
  if (shard.used * 4 >= shard.slots.size() * 3) GrowShard(shard);
  return {handle, true};
}

}  // namespace rav
