#ifndef RAV_BASE_TRACE_H_
#define RAV_BASE_TRACE_H_

// RAII phase spans with monotonic-clock timings and parent/child nesting,
// the companion of base/metrics.h (same RAV_NO_METRICS kill switch, same
// merged-on-read model).
//
//   {
//     RAV_TRACE_SPAN("era/emptiness");
//     ...
//     {
//       RAV_TRACE_SPAN("pump");   // aggregated as "era/emptiness/pump"
//       ...
//     }
//   }
//
// A span's full path is its enclosing spans' path joined with '/', so the
// aggregated snapshot is a tree keyed by path. Nesting is per thread
// (thread-local span stack); spans opened on worker threads start a fresh
// root there. Timings use std::chrono::steady_clock.
//
// Spans are aggregated, not logged: each (path) keeps count / total /
// min / max nanoseconds, so a span inside a loop costs two clock reads
// and one small map update, and snapshots are bounded by the number of
// distinct paths, not the number of executions.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace rav::trace {

struct SpanSnapshot {
  std::string path;  // slash-joined nesting path
  uint64_t count = 0;
  uint64_t total_ns = 0;
  uint64_t min_ns = 0;
  uint64_t max_ns = 0;
};

#ifdef RAV_NO_METRICS

class Span {
 public:
  explicit Span(std::string_view) {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
};

inline std::vector<SpanSnapshot> Snapshot() { return {}; }
inline void ResetForTest() {}

#else  // !RAV_NO_METRICS

class Span {
 public:
  explicit Span(std::string_view name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  size_t parent_length_;  // length of the enclosing path, restored on exit
  uint64_t start_ns_;
};

// Merged view across all threads (live and exited), sorted by path.
std::vector<SpanSnapshot> Snapshot();

// Clears all aggregated spans. Tests only; open spans still accumulate
// into the cleared store when they close.
void ResetForTest();

#endif  // RAV_NO_METRICS

}  // namespace rav::trace

#define RAV_TRACE_CONCAT_INNER(a, b) a##b
#define RAV_TRACE_CONCAT(a, b) RAV_TRACE_CONCAT_INNER(a, b)
#define RAV_TRACE_SPAN(name) \
  ::rav::trace::Span RAV_TRACE_CONCAT(rav_trace_span_, __COUNTER__)(name)

#endif  // RAV_BASE_TRACE_H_
