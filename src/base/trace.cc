#include "base/trace.h"

#ifndef RAV_NO_METRICS

#include <algorithm>
#include <chrono>
#include <map>
#include <mutex>

namespace rav::trace {

namespace {

struct SpanAgg {
  uint64_t count = 0;
  uint64_t total_ns = 0;
  uint64_t min_ns = UINT64_MAX;
  uint64_t max_ns = 0;
};

// One per thread. The mutex is uncontended on the write path (only the
// owning thread closes spans); readers take it briefly during Snapshot.
struct ThreadSpans {
  std::mutex mu;
  std::map<std::string, SpanAgg> by_path;
  std::string current_path;  // nesting prefix of the open spans
};

struct GlobalSpans {
  std::mutex mu;
  std::vector<ThreadSpans*> live;
  std::map<std::string, SpanAgg> retired;
};

GlobalSpans& global() {
  static GlobalSpans* g = new GlobalSpans();  // leaked: outlives threads
  return *g;
}

void Merge(std::map<std::string, SpanAgg>& into,
           const std::map<std::string, SpanAgg>& from) {
  for (const auto& [path, agg] : from) {
    SpanAgg& dst = into[path];
    dst.count += agg.count;
    dst.total_ns += agg.total_ns;
    dst.min_ns = std::min(dst.min_ns, agg.min_ns);
    dst.max_ns = std::max(dst.max_ns, agg.max_ns);
  }
}

struct ThreadSpansHandle {
  ThreadSpans* spans;
  ThreadSpansHandle() : spans(new ThreadSpans()) {
    GlobalSpans& g = global();
    std::lock_guard<std::mutex> lock(g.mu);
    g.live.push_back(spans);
  }
  ~ThreadSpansHandle() {
    GlobalSpans& g = global();
    std::lock_guard<std::mutex> lock(g.mu);
    Merge(g.retired, spans->by_path);
    g.live.erase(std::find(g.live.begin(), g.live.end(), spans));
    delete spans;
  }
};

ThreadSpans& Local() {
  thread_local ThreadSpansHandle handle;
  return *handle.spans;
}

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

Span::Span(std::string_view name) {
  ThreadSpans& t = Local();
  parent_length_ = t.current_path.size();
  if (!t.current_path.empty()) t.current_path += '/';
  t.current_path += name;
  start_ns_ = NowNs();
}

Span::~Span() {
  const uint64_t elapsed = NowNs() - start_ns_;
  ThreadSpans& t = Local();
  {
    std::lock_guard<std::mutex> lock(t.mu);
    SpanAgg& agg = t.by_path[t.current_path];
    ++agg.count;
    agg.total_ns += elapsed;
    agg.min_ns = std::min(agg.min_ns, elapsed);
    agg.max_ns = std::max(agg.max_ns, elapsed);
  }
  t.current_path.resize(parent_length_);
}

std::vector<SpanSnapshot> Snapshot() {
  GlobalSpans& g = global();
  std::map<std::string, SpanAgg> merged;
  {
    std::lock_guard<std::mutex> lock(g.mu);
    merged = g.retired;
    for (ThreadSpans* t : g.live) {
      std::lock_guard<std::mutex> tlock(t->mu);
      Merge(merged, t->by_path);
    }
  }
  std::vector<SpanSnapshot> out;
  out.reserve(merged.size());
  for (const auto& [path, agg] : merged) {
    out.push_back(SpanSnapshot{path, agg.count, agg.total_ns, agg.min_ns,
                               agg.max_ns});
  }
  return out;
}

void ResetForTest() {
  GlobalSpans& g = global();
  std::lock_guard<std::mutex> lock(g.mu);
  g.retired.clear();
  for (ThreadSpans* t : g.live) {
    std::lock_guard<std::mutex> tlock(t->mu);
    t->by_path.clear();
  }
}

}  // namespace rav::trace

#endif  // !RAV_NO_METRICS
