#ifndef RAV_BASE_LOGGING_H_
#define RAV_BASE_LOGGING_H_

#include <cstdio>
#include <cstdlib>

// Lightweight assertion macros in the spirit of other database engines.
// RAV_CHECK is always on (including release builds): internal invariant
// violations in symbolic-constraint code are programming errors and must
// fail fast rather than corrupt an analysis result.

namespace rav::internal {

// Terminates the process after printing the failed expression.
// Out-of-line-able and [[noreturn]] so the check macros stay cheap.
[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "RAV_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace rav::internal

#define RAV_CHECK(cond)                                           \
  do {                                                            \
    if (!(cond)) {                                                \
      ::rav::internal::CheckFailed(__FILE__, __LINE__, #cond);    \
    }                                                             \
  } while (0)

#define RAV_CHECK_EQ(a, b) RAV_CHECK((a) == (b))
#define RAV_CHECK_NE(a, b) RAV_CHECK((a) != (b))
#define RAV_CHECK_LT(a, b) RAV_CHECK((a) < (b))
#define RAV_CHECK_LE(a, b) RAV_CHECK((a) <= (b))
#define RAV_CHECK_GT(a, b) RAV_CHECK((a) > (b))
#define RAV_CHECK_GE(a, b) RAV_CHECK((a) >= (b))

#endif  // RAV_BASE_LOGGING_H_
