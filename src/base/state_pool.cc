#include "base/state_pool.h"

#include <cstring>
#include <new>

#include "base/logging.h"

namespace rav {

StatePool::StatePool(const ExecutionGovernor* governor, size_t chunk_bytes)
    : governor_(governor), chunk_bytes_(chunk_bytes) {
  RAV_CHECK_GE(chunk_bytes_, static_cast<size_t>(kHeaderBytes + kAlign));
}

StatePool::~StatePool() {
  const uint32_t n = num_chunks_.load(std::memory_order_acquire);
  for (uint32_t c = 0; c < n; ++c) {
    delete[] ChunkData(c);
  }
  for (auto& slot : leaves_) {
    delete slot.load(std::memory_order_acquire);
  }
  if (governor_ != nullptr) {
    governor_->ReleaseBytes(bytes_reserved());
  }
}

uint8_t* StatePool::ChunkData(uint32_t chunk) const {
  const Leaf* leaf =
      leaves_[chunk >> kLeafBits].load(std::memory_order_acquire);
  RAV_CHECK(leaf != nullptr);
  uint8_t* data =
      leaf->chunks[chunk & (kLeafSize - 1)].load(std::memory_order_acquire);
  RAV_CHECK(data != nullptr);
  return data;
}

uint32_t StatePool::ReserveChunk(size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint32_t index = num_chunks_.load(std::memory_order_relaxed);
  RAV_CHECK_LT(index, kMaxChunks);
  Leaf* leaf = leaves_[index >> kLeafBits].load(std::memory_order_relaxed);
  if (leaf == nullptr) {
    leaf = new Leaf();
    leaves_[index >> kLeafBits].store(leaf, std::memory_order_release);
  }
  leaf->chunks[index & (kLeafSize - 1)].store(new uint8_t[bytes],
                                              std::memory_order_release);
  // Charge before publishing the count: a budget trip surfaces at the
  // next safe-point poll, with the bytes already accounted.
  if (governor_ != nullptr) governor_->ChargeBytes(bytes);
  bytes_reserved_.fetch_add(bytes, std::memory_order_relaxed);
  num_chunks_.store(index + 1, std::memory_order_release);
  return index;
}

StatePool::Handle StatePool::Store(ThreadCache& cache, const uint8_t* data,
                                   uint32_t size) {
  const uint32_t record_bytes =
      (kHeaderBytes + size + (kAlign - 1)) & ~(kAlign - 1);
  uint32_t offset;
  uint32_t chunk;
  if (record_bytes > chunk_bytes_) {
    // Oversize record: a dedicated chunk of exactly the record's size.
    // The thread's bump cache is left untouched.
    chunk = ReserveChunk(record_bytes);
    offset = 0;
  } else {
    if (cache.offset + record_bytes > cache.end) {
      cache.chunk = ReserveChunk(chunk_bytes_);
      cache.offset = 0;
      cache.end = static_cast<uint32_t>(chunk_bytes_);
    }
    chunk = cache.chunk;
    offset = cache.offset;
    cache.offset += record_bytes;
  }
  uint8_t* record = ChunkData(chunk) + offset;
  new (record) std::atomic<uint32_t>(0);
  std::memcpy(record + sizeof(std::atomic<uint32_t>), &size, sizeof(size));
  if (size > 0) std::memcpy(record + kHeaderBytes, data, size);
  bytes_stored_.fetch_add(kHeaderBytes + size, std::memory_order_relaxed);
  records_.fetch_add(1, std::memory_order_relaxed);
  return (static_cast<Handle>(chunk) << 32) | offset;
}

const uint8_t* StatePool::Data(Handle handle) const {
  return ChunkData(static_cast<uint32_t>(handle >> 32)) +
         static_cast<uint32_t>(handle) + kHeaderBytes;
}

uint32_t StatePool::Size(Handle handle) const {
  const uint8_t* record = ChunkData(static_cast<uint32_t>(handle >> 32)) +
                          static_cast<uint32_t>(handle);
  uint32_t size;
  std::memcpy(&size, record + sizeof(std::atomic<uint32_t>), sizeof(size));
  return size;
}

std::atomic<uint32_t>& StatePool::Payload(Handle handle) const {
  uint8_t* record = ChunkData(static_cast<uint32_t>(handle >> 32)) +
                    static_cast<uint32_t>(handle);
  return *reinterpret_cast<std::atomic<uint32_t>*>(record);
}

}  // namespace rav
