#ifndef RAV_BASE_INTERNER_H_
#define RAV_BASE_INTERNER_H_

#include <unordered_map>
#include <vector>

#include "base/logging.h"

namespace rav {

// Bidirectional map between values of T and dense integer ids. Used to
// intern names (states, relations, attributes) and canonical symbolic
// objects so that hot algorithms work on small ints.
template <typename T, typename Hash = std::hash<T>>
class Interner {
 public:
  // Returns the id of `value`, inserting it if new.
  int Intern(const T& value) {
    auto it = ids_.find(value);
    if (it != ids_.end()) return it->second;
    int id = static_cast<int>(values_.size());
    values_.push_back(value);
    ids_.emplace(values_.back(), id);
    return id;
  }

  // Returns the id of `value`, or -1 if absent.
  int Lookup(const T& value) const {
    auto it = ids_.find(value);
    return it == ids_.end() ? -1 : it->second;
  }

  bool Contains(const T& value) const { return Lookup(value) >= 0; }

  const T& Get(int id) const {
    RAV_CHECK_GE(id, 0);
    RAV_CHECK_LT(static_cast<size_t>(id), values_.size());
    return values_[id];
  }

  size_t size() const { return values_.size(); }

  const std::vector<T>& values() const { return values_; }

 private:
  std::vector<T> values_;
  std::unordered_map<T, int, Hash> ids_;
};

}  // namespace rav

#endif  // RAV_BASE_INTERNER_H_
