#ifndef RAV_BASE_VALUE_H_
#define RAV_BASE_VALUE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_set>
#include <vector>

namespace rav {

// A data value from the paper's infinite domain 𝔻. Only (in)equality and
// membership in database relations matter semantically, so any countable
// domain works; we use 64-bit integers. Values are compared for equality
// only — there is no meaningful order in the model (we still expose < so
// values can key ordered containers).
using DataValue = int64_t;

// A register assignment d̄ ∈ 𝔻^k at one position of a run.
using ValueTuple = std::vector<DataValue>;

// Dispenses values guaranteed fresh with respect to everything it has seen.
// The paper's technical convention that every run leaves out infinitely
// many values of 𝔻 is realized by drawing "new" values from this source.
class FreshValueSource {
 public:
  FreshValueSource() = default;

  // Marks `v` as used (it will never be returned by Fresh()).
  void Observe(DataValue v) {
    used_.insert(v);
    if (v >= next_) next_ = v + 1;
  }

  void ObserveAll(const ValueTuple& vs) {
    for (DataValue v : vs) Observe(v);
  }

  // Returns a value distinct from every value observed or returned so far.
  DataValue Fresh() {
    while (used_.count(next_) > 0) ++next_;
    DataValue v = next_++;
    used_.insert(v);
    return v;
  }

 private:
  DataValue next_ = 0;
  std::unordered_set<DataValue> used_;
};

}  // namespace rav

#endif  // RAV_BASE_VALUE_H_
