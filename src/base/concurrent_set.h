#ifndef RAV_BASE_CONCURRENT_SET_H_
#define RAV_BASE_CONCURRENT_SET_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "base/governor.h"
#include "base/state_pool.h"

namespace rav {

// Finely-sharded concurrent hash set of interned byte strings — the
// visited/seen table of the shared-memory search mode (DIVINE's shared
// `hashmap.h` over a state pool is the model). Keys live in a StatePool;
// the table stores one (fingerprint, handle) pair per entry, so a probe
// is fingerprint compares with at most one full byte compare per
// 64-bit-fingerprint collision — never a false merge.
//
// Insert-only: entries are never removed, so a returned handle (and the
// pooled bytes plus payload word behind it) stays valid for the life of
// the set. Each shard is guarded by its own mutex with a critical
// section of a few probes; with the default 64 shards and hashed shard
// selection, contention is noise next to the work a caller does per
// interned state.
//
// Memory accounting: shard tables are charged to the governor as they
// grow and released by the destructor, alongside the pool's chunks.
class ConcurrentSet {
 public:
  // `pool` must outlive the set; keys are interned into it.
  explicit ConcurrentSet(StatePool* pool,
                         const ExecutionGovernor* governor = nullptr,
                         int num_shards = 64);
  ~ConcurrentSet();

  ConcurrentSet(const ConcurrentSet&) = delete;
  ConcurrentSet& operator=(const ConcurrentSet&) = delete;

  struct InternResult {
    StatePool::Handle handle;
    bool inserted;  // true iff this call created the entry
  };

  // Interns `size` bytes at `data`: returns the existing entry's handle,
  // or copies the bytes into the pool (through `cache`, the calling
  // thread's pool cache) and inserts. Thread-safe.
  InternResult Intern(StatePool::ThreadCache& cache, const uint8_t* data,
                      uint32_t size);

  // Entries across all shards.
  size_t size() const { return entries_.load(std::memory_order_relaxed); }

  // Table bytes reserved across all shards (what the governor was
  // charged; the pooled key bytes are accounted by the pool itself).
  size_t bytes_reserved() const {
    return bytes_reserved_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    uint64_t fingerprint = 0;  // 0 = empty slot (fingerprints avoid 0)
    StatePool::Handle handle = StatePool::kNullHandle;
  };

  // Sized and aligned so two shards never share a cache line.
  struct alignas(64) Shard {
    std::mutex mu;
    std::vector<Entry> slots;  // power-of-two open addressing
    size_t used = 0;
  };

  static uint64_t Fingerprint(const uint8_t* data, uint32_t size);
  void GrowShard(Shard& shard);

  StatePool* pool_;
  const ExecutionGovernor* governor_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<size_t> entries_{0};
  std::atomic<size_t> bytes_reserved_{0};
};

}  // namespace rav

#endif  // RAV_BASE_CONCURRENT_SET_H_
