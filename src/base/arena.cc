#include "base/arena.h"

#include <algorithm>

#include "base/failpoints.h"
#include "base/governor.h"
#include "base/metrics.h"

namespace rav {

Arena::~Arena() {
  if (governor_ != nullptr && total_allocated_ > 0) {
    governor_->ReleaseBytes(total_allocated_);
  }
}

void Arena::set_governor(const ExecutionGovernor* governor) {
  if (governor_ != nullptr && total_allocated_ > 0) {
    governor_->ReleaseBytes(total_allocated_);
  }
  governor_ = governor;
  if (governor_ != nullptr && total_allocated_ > 0) {
    governor_->ChargeBytes(total_allocated_);
  }
}

void* Arena::Allocate(size_t bytes, size_t alignment) {
  RAV_CHECK(alignment != 0 && (alignment & (alignment - 1)) == 0);
  if (bytes == 0) bytes = 1;

  Block* block = blocks_.empty() ? nullptr : &blocks_.back();
  if (block != nullptr) {
    uintptr_t base = reinterpret_cast<uintptr_t>(block->data.get());
    uintptr_t cur = base + block->used;
    uintptr_t aligned = (cur + alignment - 1) & ~(alignment - 1);
    size_t needed = (aligned - base) + bytes;
    if (needed <= block->size) {
      block->used = needed;
      bytes_allocated_ += bytes;
      return reinterpret_cast<void*>(aligned);
    }
  }

  block = AddBlock(bytes + alignment);
  uintptr_t base = reinterpret_cast<uintptr_t>(block->data.get());
  uintptr_t aligned = (base + alignment - 1) & ~(alignment - 1);
  block->used = (aligned - base) + bytes;
  RAV_CHECK_LE(block->used, block->size);
  bytes_allocated_ += bytes;
  return reinterpret_cast<void*>(aligned);
}

Arena::Block* Arena::AddBlock(size_t min_bytes) {
  size_t size = std::max(block_bytes_, min_bytes);
  Block block;
  block.data = std::make_unique<char[]>(size);
  block.size = size;
  block.used = 0;
  blocks_.push_back(std::move(block));
  total_allocated_ += size;
  if (governor_ != nullptr) {
    governor_->ChargeBytes(size);
    // Fault-injection site: models the OS refusing this block — the
    // governor trips its memory budget, and the owning procedure stops
    // cleanly at its next safe point.
    if (RAV_FAILPOINT("base/arena/add_block")) {
      governor_->ForceTrip(GovernorTrip::kMemoryBudget);
    }
  }
  RAV_METRIC_COUNT("base/arena/blocks_allocated", 1);
  RAV_METRIC_COUNT("base/arena/bytes_reserved", size);
  // Histogram max doubles as the process-lifetime peak single-arena
  // footprint (docs/observability.md).
  RAV_METRIC_RECORD("base/arena/total_allocated_bytes", total_allocated_);
  RAV_METRIC_SET("base/arena/last_block_count",
                 static_cast<int64_t>(blocks_.size()));
  return &blocks_.back();
}

void Arena::Reset() {
  if (governor_ != nullptr && total_allocated_ > 0) {
    governor_->ReleaseBytes(total_allocated_);
  }
  blocks_.clear();
  bytes_allocated_ = 0;
  total_allocated_ = 0;
}

}  // namespace rav
