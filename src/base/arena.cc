#include "base/arena.h"

#include <algorithm>

namespace rav {

void* Arena::Allocate(size_t bytes, size_t alignment) {
  RAV_CHECK(alignment != 0 && (alignment & (alignment - 1)) == 0);
  if (bytes == 0) bytes = 1;

  Block* block = blocks_.empty() ? nullptr : &blocks_.back();
  if (block != nullptr) {
    uintptr_t base = reinterpret_cast<uintptr_t>(block->data.get());
    uintptr_t cur = base + block->used;
    uintptr_t aligned = (cur + alignment - 1) & ~(alignment - 1);
    size_t needed = (aligned - base) + bytes;
    if (needed <= block->size) {
      block->used = needed;
      bytes_allocated_ += bytes;
      return reinterpret_cast<void*>(aligned);
    }
  }

  block = AddBlock(bytes + alignment);
  uintptr_t base = reinterpret_cast<uintptr_t>(block->data.get());
  uintptr_t aligned = (base + alignment - 1) & ~(alignment - 1);
  block->used = (aligned - base) + bytes;
  RAV_CHECK_LE(block->used, block->size);
  bytes_allocated_ += bytes;
  return reinterpret_cast<void*>(aligned);
}

Arena::Block* Arena::AddBlock(size_t min_bytes) {
  size_t size = std::max(block_bytes_, min_bytes);
  Block block;
  block.data = std::make_unique<char[]>(size);
  block.size = size;
  block.used = 0;
  blocks_.push_back(std::move(block));
  return &blocks_.back();
}

void Arena::Reset() {
  blocks_.clear();
  bytes_allocated_ = 0;
}

}  // namespace rav
