#include "base/report.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "base/metrics.h"
#include "base/trace.h"

namespace rav {

// ---------------------------------------------------------------------------
// Json: construction

Json Json::Bool(bool b) {
  Json j;
  j.kind_ = Kind::kBool;
  j.bool_ = b;
  return j;
}

Json Json::Number(double value) {
  Json j;
  j.kind_ = Kind::kNumber;
  j.number_ = value;
  return j;
}

Json Json::Number(int64_t value) { return Number(static_cast<double>(value)); }

Json Json::Number(uint64_t value) { return Number(static_cast<double>(value)); }

Json Json::String(std::string_view s) {
  Json j;
  j.kind_ = Kind::kString;
  j.string_ = std::string(s);
  return j;
}

Json Json::Array() {
  Json j;
  j.kind_ = Kind::kArray;
  return j;
}

Json Json::Object() {
  Json j;
  j.kind_ = Kind::kObject;
  return j;
}

void Json::Append(Json value) { array_.push_back(std::move(value)); }

void Json::Set(std::string_view key, Json value) {
  for (auto& [k, v] : object_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  object_.emplace_back(std::string(key), std::move(value));
}

const Json* Json::Find(std::string_view key) const {
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Json: serialization

namespace {

void EscapeInto(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void NumberInto(std::string& out, double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    out += buf;
    return;
  }
  if (!std::isfinite(v)) {  // JSON has no inf/nan; emit null
    out += "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void Newline(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<size_t>(indent) * depth, ' ');
}

}  // namespace

void Json::DumpTo(std::string& out, int indent, int depth) const {
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      return;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      return;
    case Kind::kNumber:
      NumberInto(out, number_);
      return;
    case Kind::kString:
      EscapeInto(out, string_);
      return;
    case Kind::kArray: {
      if (array_.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      for (size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out += ',';
        Newline(out, indent, depth + 1);
        array_[i].DumpTo(out, indent, depth + 1);
      }
      Newline(out, indent, depth);
      out += ']';
      return;
    }
    case Kind::kObject: {
      if (object_.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      for (size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out += ',';
        Newline(out, indent, depth + 1);
        EscapeInto(out, object_[i].first);
        out += indent > 0 ? ": " : ":";
        object_[i].second.DumpTo(out, indent, depth + 1);
      }
      Newline(out, indent, depth);
      out += '}';
      return;
    }
  }
}

std::string Json::Dump(int indent) const {
  std::string out;
  DumpTo(out, indent, 0);
  return out;
}

// ---------------------------------------------------------------------------
// Json: parsing

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Json> Parse() {
    RAV_ASSIGN_OR_RETURN(Json value, ParseValue());
    SkipSpace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after the document");
    }
    return value;
  }

 private:
  Status Error(const std::string& what) {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Result<Json> ParseValue() {
    SkipSpace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') {
      RAV_ASSIGN_OR_RETURN(std::string s, ParseString());
      return Json::String(s);
    }
    if (ConsumeWord("true")) return Json::Bool(true);
    if (ConsumeWord("false")) return Json::Bool(false);
    if (ConsumeWord("null")) return Json::Null();
    return ParseNumber();
  }

  Result<Json> ParseObject() {
    ++pos_;  // '{'
    Json obj = Json::Object();
    if (Consume('}')) return obj;
    for (;;) {
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected an object key");
      }
      RAV_ASSIGN_OR_RETURN(std::string key, ParseString());
      if (!Consume(':')) return Error("expected ':' after key");
      RAV_ASSIGN_OR_RETURN(Json value, ParseValue());
      obj.Set(key, std::move(value));
      if (Consume(',')) continue;
      if (Consume('}')) return obj;
      return Error("expected ',' or '}' in object");
    }
  }

  Result<Json> ParseArray() {
    ++pos_;  // '['
    Json arr = Json::Array();
    if (Consume(']')) return arr;
    for (;;) {
      RAV_ASSIGN_OR_RETURN(Json value, ParseValue());
      arr.Append(std::move(value));
      if (Consume(',')) continue;
      if (Consume(']')) return arr;
      return Error("expected ',' or ']' in array");
    }
  }

  Result<std::string> ParseString() {
    ++pos_;  // opening quote
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      char e = text_[pos_++];
      switch (e) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'n':
          out += '\n';
          break;
        case 't':
          out += '\t';
          break;
        case 'r':
          out += '\r';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("bad \\u escape");
            }
          }
          // The writer only escapes control characters; decode the BMP
          // code point as UTF-8.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return Error("unknown escape");
      }
    }
    return Error("unterminated string");
  }

  Result<Json> ParseNumber() {
    size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a value");
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return Error("bad number");
    return Json::Number(value);
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<Json> Json::Parse(std::string_view text) {
  return Parser(text).Parse();
}

// ---------------------------------------------------------------------------
// Report schema

const char* const kReportRequiredKeys[7] = {
    "experiment", "claim", "params", "metrics", "spans", "verdict", "wall_ms",
};

Json ReportToJson(const RunReport& report) {
  Json out = Json::Object();
  out.Set("schema_version", Json::Number(int64_t{1}));
  out.Set("experiment", Json::String(report.experiment));
  out.Set("claim", Json::String(report.claim));
  out.Set("params", report.params);
  out.Set("metrics", report.metrics);
  out.Set("spans", report.spans);
  out.Set("verdict", Json::String(report.verdict));
  out.Set("wall_ms", Json::Number(report.wall_ms));
  return out;
}

Status ValidateReportJson(const Json& json) {
  if (!json.is_object()) {
    return Status::InvalidArgument("report is not a JSON object");
  }
  std::string problems;
  auto complain = [&](const std::string& what) {
    if (!problems.empty()) problems += "; ";
    problems += what;
  };
  for (const char* key : kReportRequiredKeys) {
    const Json* value = json.Find(key);
    if (value == nullptr) {
      complain(std::string("missing key '") + key + "'");
      continue;
    }
    std::string_view k(key);
    if ((k == "experiment" || k == "claim" || k == "verdict") &&
        !value->is_string()) {
      complain(std::string("key '") + key + "' must be a string");
    } else if ((k == "params" || k == "metrics") && !value->is_object()) {
      complain(std::string("key '") + key + "' must be an object");
    } else if (k == "spans" && !value->is_array()) {
      complain("key 'spans' must be an array");
    } else if (k == "wall_ms" && !value->is_number()) {
      complain("key 'wall_ms' must be a number");
    }
  }
  if (!problems.empty()) return Status::InvalidArgument(problems);
  return Status::OK();
}

Status WriteReportFile(const std::string& path, const RunReport& report) {
  Json json = ReportToJson(report);
  Status valid = ValidateReportJson(json);
  if (!valid.ok()) return valid;  // a malformed report must never be written
  std::ofstream out(path);
  if (!out) return Status::NotFound("cannot write report to " + path);
  out << json.Dump(2) << "\n";
  // Flush before checking: a report smaller than the stream buffer would
  // otherwise be written only by the destructor, whose failure (full
  // disk, /dev/full) is silent — the caller would report success with
  // the file missing or truncated.
  out.flush();
  if (!out.good()) return Status::Internal("short write to " + path);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Bridges from base/metrics and base/trace

Json CaptureProcessMetrics() {
  Json out = Json::Object();
  for (const metrics::MetricSnapshot& m : metrics::Snapshot()) {
    switch (m.kind) {
      case metrics::MetricKind::kCounter:
        out.Set(m.name, Json::Number(m.value));
        break;
      case metrics::MetricKind::kGauge:
        out.Set(m.name, Json::Number(static_cast<int64_t>(m.value)));
        break;
      case metrics::MetricKind::kHistogram: {
        Json h = Json::Object();
        h.Set("count", Json::Number(m.histogram.count));
        h.Set("sum", Json::Number(m.histogram.sum));
        h.Set("min", Json::Number(m.histogram.min));
        h.Set("max", Json::Number(m.histogram.max));
        Json buckets = Json::Array();
        // Trailing empty buckets are elided; bucket b covers
        // [2^(b-1), 2^b) with bucket 0 = {0}.
        int last = metrics::kHistogramBuckets - 1;
        while (last >= 0 && m.histogram.buckets[last] == 0) --last;
        for (int b = 0; b <= last; ++b) {
          buckets.Append(Json::Number(m.histogram.buckets[b]));
        }
        h.Set("buckets", std::move(buckets));
        out.Set(m.name, std::move(h));
        break;
      }
    }
  }
  return out;
}

Json CaptureSpans() {
  Json out = Json::Array();
  for (const trace::SpanSnapshot& s : trace::Snapshot()) {
    Json span = Json::Object();
    span.Set("path", Json::String(s.path));
    span.Set("count", Json::Number(s.count));
    span.Set("total_ms", Json::Number(static_cast<double>(s.total_ns) / 1e6));
    span.Set("min_ms", Json::Number(static_cast<double>(s.min_ns) / 1e6));
    span.Set("max_ms", Json::Number(static_cast<double>(s.max_ns) / 1e6));
    out.Append(std::move(span));
  }
  return out;
}

}  // namespace rav
