#include "base/failpoints.h"

#ifndef RAV_NO_FAILPOINTS

#include <atomic>
#include <cstdlib>
#include <map>
#include <mutex>

#include "base/metrics.h"

namespace rav::failpoints {

namespace {

struct Site {
  uint64_t nth = 0;   // 0 = disarmed
  uint64_t hits = 0;  // hits since arming
};

struct Registry {
  std::mutex mu;
  std::map<std::string, Site, std::less<>> sites;
};

Registry& registry() {
  static Registry* r = new Registry;
  return *r;
}

// Number of armed sites; the fast path checks this and bails before
// touching the mutex, so un-armed processes pay one relaxed load per
// RAV_FAILPOINT site execution.
std::atomic<int> g_armed{0};

void ArmImpl(std::string_view site, uint64_t nth) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto [it, inserted] = r.sites.try_emplace(std::string(site));
  const bool was_armed = !inserted && it->second.nth != 0;
  it->second.nth = nth;
  it->second.hits = 0;
  if (nth != 0 && !was_armed) g_armed.fetch_add(1, std::memory_order_relaxed);
  if (nth == 0 && was_armed) g_armed.fetch_sub(1, std::memory_order_relaxed);
}

// Parses RAV_FAILPOINTS ("site=N,site=N") once, before the first probe.
void LoadFromEnvironment() {
  const char* spec = std::getenv("RAV_FAILPOINTS");
  if (spec == nullptr) return;
  std::string_view rest(spec);
  while (!rest.empty()) {
    size_t comma = rest.find(',');
    std::string_view entry = rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view()
                                           : rest.substr(comma + 1);
    size_t eq = entry.find('=');
    if (eq == std::string_view::npos || eq == 0) continue;  // malformed
    uint64_t nth = 0;
    bool valid = eq + 1 < entry.size();
    for (size_t i = eq + 1; i < entry.size() && valid; ++i) {
      char c = entry[i];
      valid = c >= '0' && c <= '9' && nth < UINT64_MAX / 10;
      if (valid) nth = nth * 10 + static_cast<uint64_t>(c - '0');
    }
    if (valid && nth > 0) ArmImpl(entry.substr(0, eq), nth);
  }
}

std::once_flag g_env_once;

}  // namespace

bool AnyArmed() {
  std::call_once(g_env_once, LoadFromEnvironment);
  return g_armed.load(std::memory_order_relaxed) > 0;
}

bool Hit(std::string_view site) {
  if (!AnyArmed()) return false;
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.sites.find(site);
  if (it == r.sites.end() || it->second.nth == 0) return false;
  if (++it->second.hits != it->second.nth) return false;
  it->second.nth = 0;  // fires once, then disarms
  g_armed.fetch_sub(1, std::memory_order_relaxed);
  RAV_METRIC_COUNT("failpoints/fired", 1);
  return true;
}

void Arm(std::string_view site, uint64_t nth) {
  std::call_once(g_env_once, LoadFromEnvironment);
  ArmImpl(site, nth);
}

void DisarmAll() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (auto& [name, site] : r.sites) {
    if (site.nth != 0) g_armed.fetch_sub(1, std::memory_order_relaxed);
    site.nth = 0;
    site.hits = 0;
  }
}

}  // namespace rav::failpoints

#endif  // RAV_NO_FAILPOINTS
