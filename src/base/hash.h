#ifndef RAV_BASE_HASH_H_
#define RAV_BASE_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace rav {

// Mixes `value`'s hash into `seed` (boost::hash_combine recipe with a
// 64-bit golden-ratio constant).
inline void HashCombine(size_t& seed, size_t value) {
  seed ^= value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
}

template <typename T>
void HashCombineValue(size_t& seed, const T& v) {
  HashCombine(seed, std::hash<T>{}(v));
}

// Hash functor for std::vector of hashable elements, usable as the Hash
// template argument of unordered containers.
template <typename T>
struct VectorHash {
  size_t operator()(const std::vector<T>& v) const {
    size_t seed = v.size();
    for (const T& x : v) HashCombineValue(seed, x);
    return seed;
  }
};

// Hash functor for std::pair.
template <typename A, typename B>
struct PairHash {
  size_t operator()(const std::pair<A, B>& p) const {
    size_t seed = 0;
    HashCombineValue(seed, p.first);
    HashCombineValue(seed, p.second);
    return seed;
  }
};

}  // namespace rav

#endif  // RAV_BASE_HASH_H_
