#ifndef RAV_BASE_STATUS_H_
#define RAV_BASE_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "base/logging.h"

namespace rav {

// Error taxonomy for fallible library operations. Kept deliberately small:
// the library's fallible surface is parsing, validation of user-supplied
// automata, and resource limits in decision procedures.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // malformed input (bad regex, inconsistent type, ...)
  kNotFound,          // lookup of a named entity failed
  kFailedPrecondition,// operation applied to an object in the wrong state
  kResourceExhausted, // a decision procedure exceeded its configured budget
  kUnimplemented,     // feature intentionally out of scope
  kInternal,          // invariant violation that was recoverable
};

// Returns a stable human-readable name ("InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

// Value-type status, modeled after the Status types of Arrow / RocksDB.
// Cheap to copy in the OK case (empty message).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "InvalidArgument: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

// Result<T>: either a value or an error Status. The accessors CHECK on
// misuse; call ok() first.
template <typename T>
class Result {
 public:
  // Intentionally implicit: allows `return value;` and `return status;`
  // from functions returning Result<T>.
  Result(T value) : payload_(std::move(value)) {}           // NOLINT
  Result(Status status) : payload_(std::move(status)) {     // NOLINT
    RAV_CHECK(!std::get<Status>(payload_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(payload_); }

  const T& value() const& {
    RAV_CHECK(ok());
    return std::get<T>(payload_);
  }
  T& value() & {
    RAV_CHECK(ok());
    return std::get<T>(payload_);
  }
  T&& value() && {
    RAV_CHECK(ok());
    return std::get<T>(std::move(payload_));
  }

  const Status& status() const {
    static const Status kOk = Status::OK();
    if (ok()) return kOk;
    return std::get<Status>(payload_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> payload_;
};

// Propagates a non-OK Status out of the enclosing function.
#define RAV_RETURN_IF_ERROR(expr)             \
  do {                                        \
    ::rav::Status _rav_status = (expr);       \
    if (!_rav_status.ok()) return _rav_status; \
  } while (0)

// Evaluates a Result<T> expression; on error returns its status, otherwise
// moves the value into `lhs`.
#define RAV_ASSIGN_OR_RETURN(lhs, expr)                \
  RAV_ASSIGN_OR_RETURN_IMPL(                           \
      RAV_STATUS_CONCAT(_rav_result, __LINE__), lhs, expr)

#define RAV_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).value()

#define RAV_STATUS_CONCAT(a, b) RAV_STATUS_CONCAT_IMPL(a, b)
#define RAV_STATUS_CONCAT_IMPL(a, b) a##b

}  // namespace rav

#endif  // RAV_BASE_STATUS_H_
