#ifndef RAV_BASE_METRICS_H_
#define RAV_BASE_METRICS_H_

// Process-wide named metrics: counters, gauges, and power-of-two
// histograms, shared by every decision procedure, benchmark, and the CLI.
//
// Naming convention (docs/observability.md): `layer/procedure/quantity`,
// e.g. "era/search/lassos_checked" or "projection/lr_bounded/covers".
//
// Write path: each thread owns a fixed-size shard of atomic cells; an
// increment is one relaxed fetch_add on the caller's own shard — no lock,
// no cross-thread cache-line contention. Readers (Snapshot) take the
// registry mutex, walk the live shards plus the totals retired by exited
// threads, and sum with relaxed loads; totals are exact once the writing
// threads have been joined (the benchmarks and tests always join first).
//
// Defining RAV_NO_METRICS compiles the whole layer — handles, macros, and
// snapshots — down to no-ops with zero code in the hot paths; see the
// `rav_no_metrics_smoke` test target.
//
// Use the macros for instrumentation points (the handle lookup happens
// once per call site):
//
//   RAV_METRIC_COUNT("era/search/lassos_checked", 1);
//   RAV_METRIC_SET("era/search/workers", num_workers);
//   RAV_METRIC_RECORD("era/closure/nodes", closure.num_nodes());

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace rav::metrics {

enum class MetricKind { kCounter = 0, kGauge = 1, kHistogram = 2 };

// Stable name ("counter", "gauge", "histogram").
const char* MetricKindName(MetricKind kind);

// Histograms bucket by bit width: bucket 0 holds the value 0, bucket b
// holds values in [2^(b-1), 2^b).
inline constexpr int kHistogramBuckets = 33;

struct HistogramData {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;  // meaningful iff count > 0
  uint64_t max = 0;
  uint64_t buckets[kHistogramBuckets] = {};
};

// One metric's merged-on-read view.
struct MetricSnapshot {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  // Counters: the total. Gauges: the last value set (bit cast of int64).
  uint64_t value = 0;
  HistogramData histogram;  // histograms only
};

#ifdef RAV_NO_METRICS

class Counter {
 public:
  void Add(uint64_t = 1) {}
};
class Gauge {
 public:
  void Set(int64_t) {}
};
class Histogram {
 public:
  void Record(uint64_t) {}
};

inline Counter& GetCounter(std::string_view) {
  static Counter counter;
  return counter;
}
inline Gauge& GetGauge(std::string_view) {
  static Gauge gauge;
  return gauge;
}
inline Histogram& GetHistogram(std::string_view) {
  static Histogram histogram;
  return histogram;
}
inline std::vector<MetricSnapshot> Snapshot() { return {}; }
inline void ResetForTest() {}

#else  // !RAV_NO_METRICS

// A counter handle. Cheap to copy around; Add is one relaxed fetch_add on
// the calling thread's shard cell.
class Counter {
 public:
  void Add(uint64_t n = 1);

 private:
  friend Counter& GetCounter(std::string_view);
  explicit Counter(int slot) : slot_(slot) {}
  int slot_;
};

// Last-writer-wins gauge (a single process-global atomic per gauge).
class Gauge {
 public:
  void Set(int64_t value);

 private:
  friend Gauge& GetGauge(std::string_view);
  explicit Gauge(int index) : index_(index) {}
  int index_;
};

// Power-of-two histogram; Record is three shard increments plus two
// relaxed CAS loops for min/max.
class Histogram {
 public:
  void Record(uint64_t value);

 private:
  friend Histogram& GetHistogram(std::string_view);
  Histogram(int index, int base_slot) : index_(index), base_slot_(base_slot) {}
  int index_;
  int base_slot_;
};

// Registers (or finds) the metric under `name`. Handles are stable for
// the process lifetime; a call site should cache the reference (the
// RAV_METRIC_* macros do) rather than re-resolve per operation. Names
// must be used with one kind only — re-registering a name as a different
// kind aborts.
Counter& GetCounter(std::string_view name);
Gauge& GetGauge(std::string_view name);
Histogram& GetHistogram(std::string_view name);

// Merged view of every registered metric, sorted by name.
std::vector<MetricSnapshot> Snapshot();

// Zeroes every metric (live shards, retired totals, gauges) without
// invalidating handles. Tests only — racing writers are not torn, but the
// reset is not atomic with respect to them.
void ResetForTest();

#endif  // RAV_NO_METRICS

}  // namespace rav::metrics

#ifdef RAV_NO_METRICS
#define RAV_METRIC_COUNT(name, n) \
  do {                            \
  } while (0)
#define RAV_METRIC_SET(name, v) \
  do {                          \
  } while (0)
#define RAV_METRIC_RECORD(name, v) \
  do {                             \
  } while (0)
#else
#define RAV_METRIC_COUNT(name, n)                                       \
  do {                                                                  \
    static ::rav::metrics::Counter& rav_metric_counter_ =               \
        ::rav::metrics::GetCounter(name);                               \
    rav_metric_counter_.Add(static_cast<uint64_t>(n));                  \
  } while (0)
#define RAV_METRIC_SET(name, v)                                         \
  do {                                                                  \
    static ::rav::metrics::Gauge& rav_metric_gauge_ =                   \
        ::rav::metrics::GetGauge(name);                                 \
    rav_metric_gauge_.Set(static_cast<int64_t>(v));                     \
  } while (0)
#define RAV_METRIC_RECORD(name, v)                                      \
  do {                                                                  \
    static ::rav::metrics::Histogram& rav_metric_histogram_ =           \
        ::rav::metrics::GetHistogram(name);                             \
    rav_metric_histogram_.Record(static_cast<uint64_t>(v));             \
  } while (0)
#endif  // RAV_NO_METRICS

#endif  // RAV_BASE_METRICS_H_
