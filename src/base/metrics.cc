#include "base/metrics.h"

#ifndef RAV_NO_METRICS

#include <algorithm>
#include <atomic>
#include <bit>
#include <deque>
#include <map>
#include <memory>
#include <mutex>

#include "base/logging.h"

namespace rav::metrics {

namespace {

// Fixed shard capacity: a counter consumes one slot, a histogram
// 2 + kHistogramBuckets slots. The cap exists so shards never grow (growth
// would need a lock on the write path); hitting it is a programming error.
constexpr int kMaxSlots = 4096;
constexpr int kMaxGauges = 256;

// The atomic cells one thread writes. Fixed-size, so the hot path is
// `cells[slot].fetch_add` with no lock and no reallocation hazard.
struct Shard {
  std::atomic<uint64_t> cells[kMaxSlots] = {};
};

struct MetricInfo {
  MetricKind kind;
  int slot = -1;   // first shard slot (counters, histograms)
  int index = -1;  // gauge / histogram ordinal
};

// Min/max cannot live in additive shards; one global atomic pair per
// histogram, updated by relaxed CAS (contention is bounded by the number
// of histogram call sites actually racing).
struct HistogramExtrema {
  std::atomic<uint64_t> min{UINT64_MAX};
  std::atomic<uint64_t> max{0};
};

struct Registry {
  std::mutex mu;
  std::map<std::string, MetricInfo, std::less<>> metrics;
  int next_slot = 0;
  std::vector<Shard*> live_shards;
  // Totals of threads that have exited, folded per slot.
  uint64_t retired[kMaxSlots] = {};
  std::deque<std::atomic<int64_t>> gauges;
  std::deque<HistogramExtrema> extrema;
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: outlives exiting threads
  return *r;
}

// Thread-local shard, registered on first use and retired (folded into
// Registry::retired) when the thread exits.
struct ShardHandle {
  Shard* shard;
  ShardHandle() : shard(new Shard()) {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    r.live_shards.push_back(shard);
  }
  ~ShardHandle() {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    for (int s = 0; s < kMaxSlots; ++s) {
      r.retired[s] += shard->cells[s].load(std::memory_order_relaxed);
    }
    r.live_shards.erase(
        std::find(r.live_shards.begin(), r.live_shards.end(), shard));
    delete shard;
  }
};

Shard& LocalShard() {
  thread_local ShardHandle handle;
  return *handle.shard;
}

MetricInfo& Register(std::string_view name, MetricKind kind, int slots) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.metrics.find(name);
  if (it != r.metrics.end()) {
    RAV_CHECK(it->second.kind == kind);  // one kind per name
    return it->second;
  }
  MetricInfo info;
  info.kind = kind;
  if (slots > 0) {
    RAV_CHECK_LE(r.next_slot + slots, kMaxSlots);
    info.slot = r.next_slot;
    r.next_slot += slots;
  }
  switch (kind) {
    case MetricKind::kCounter:
      break;
    case MetricKind::kGauge:
      RAV_CHECK_LT(static_cast<int>(r.gauges.size()), kMaxGauges);
      info.index = static_cast<int>(r.gauges.size());
      r.gauges.emplace_back(0);
      break;
    case MetricKind::kHistogram:
      info.index = static_cast<int>(r.extrema.size());
      r.extrema.emplace_back();
      break;
  }
  return r.metrics.emplace(std::string(name), info).first->second;
}

int BucketOf(uint64_t value) {
  // 0 -> bucket 0; otherwise floor(log2(v)) + 1, clamped.
  int b = std::bit_width(value);
  return b < kHistogramBuckets ? b : kHistogramBuckets - 1;
}

void UpdateExtrema(HistogramExtrema& e, uint64_t value) {
  uint64_t seen = e.min.load(std::memory_order_relaxed);
  while (value < seen &&
         !e.min.compare_exchange_weak(seen, value,
                                      std::memory_order_relaxed)) {
  }
  seen = e.max.load(std::memory_order_relaxed);
  while (value > seen &&
         !e.max.compare_exchange_weak(seen, value,
                                      std::memory_order_relaxed)) {
  }
}

// Sum of one slot across live shards and retired totals. Caller holds
// the registry mutex.
uint64_t SumSlot(const Registry& r, int slot) {
  uint64_t total = r.retired[slot];
  for (const Shard* shard : r.live_shards) {
    total += shard->cells[slot].load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace

const char* MetricKindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

void Counter::Add(uint64_t n) {
  LocalShard().cells[slot_].fetch_add(n, std::memory_order_relaxed);
}

void Gauge::Set(int64_t value) {
  Registry& r = registry();
  r.gauges[index_].store(value, std::memory_order_relaxed);
}

void Histogram::Record(uint64_t value) {
  Shard& shard = LocalShard();
  // Layout: [count, sum, bucket 0 .. bucket N-1].
  shard.cells[base_slot_].fetch_add(1, std::memory_order_relaxed);
  shard.cells[base_slot_ + 1].fetch_add(value, std::memory_order_relaxed);
  shard.cells[base_slot_ + 2 + BucketOf(value)].fetch_add(
      1, std::memory_order_relaxed);
  UpdateExtrema(registry().extrema[index_], value);
}

namespace {

// Handles are tiny, immutable, and live for the whole process; a static
// registry owns them (one per distinct call site name) so they stay
// reachable — never freed, but not a leak.
template <typename T>
T& OwnHandle(T* handle) {
  static std::mutex mu;
  static std::deque<std::unique_ptr<T>>* owned =
      new std::deque<std::unique_ptr<T>>();
  std::lock_guard<std::mutex> lock(mu);
  owned->emplace_back(handle);
  return *handle;
}

}  // namespace

Counter& GetCounter(std::string_view name) {
  MetricInfo& info = Register(name, MetricKind::kCounter, 1);
  return OwnHandle(new Counter(info.slot));
}

Gauge& GetGauge(std::string_view name) {
  MetricInfo& info = Register(name, MetricKind::kGauge, 0);
  return OwnHandle(new Gauge(info.index));
}

Histogram& GetHistogram(std::string_view name) {
  MetricInfo& info =
      Register(name, MetricKind::kHistogram, 2 + kHistogramBuckets);
  return OwnHandle(new Histogram(info.index, info.slot));
}

std::vector<MetricSnapshot> Snapshot() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::vector<MetricSnapshot> out;
  out.reserve(r.metrics.size());
  for (const auto& [name, info] : r.metrics) {
    MetricSnapshot snap;
    snap.name = name;
    snap.kind = info.kind;
    switch (info.kind) {
      case MetricKind::kCounter:
        snap.value = SumSlot(r, info.slot);
        break;
      case MetricKind::kGauge:
        snap.value = static_cast<uint64_t>(
            r.gauges[info.index].load(std::memory_order_relaxed));
        break;
      case MetricKind::kHistogram: {
        snap.histogram.count = SumSlot(r, info.slot);
        snap.histogram.sum = SumSlot(r, info.slot + 1);
        for (int b = 0; b < kHistogramBuckets; ++b) {
          snap.histogram.buckets[b] = SumSlot(r, info.slot + 2 + b);
        }
        if (snap.histogram.count > 0) {
          snap.histogram.min =
              r.extrema[info.index].min.load(std::memory_order_relaxed);
          snap.histogram.max =
              r.extrema[info.index].max.load(std::memory_order_relaxed);
        }
        break;
      }
    }
    out.push_back(std::move(snap));
  }
  return out;  // std::map iteration is already name-sorted
}

void ResetForTest() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (int s = 0; s < kMaxSlots; ++s) r.retired[s] = 0;
  for (Shard* shard : r.live_shards) {
    for (int s = 0; s < kMaxSlots; ++s) {
      shard->cells[s].store(0, std::memory_order_relaxed);
    }
  }
  for (auto& g : r.gauges) g.store(0, std::memory_order_relaxed);
  for (auto& e : r.extrema) {
    e.min.store(UINT64_MAX, std::memory_order_relaxed);
    e.max.store(0, std::memory_order_relaxed);
  }
}

}  // namespace rav::metrics

#endif  // !RAV_NO_METRICS
