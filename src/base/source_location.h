#ifndef RAV_BASE_SOURCE_LOCATION_H_
#define RAV_BASE_SOURCE_LOCATION_H_

#include <string>

namespace rav {

// Position of a declaration in an automaton spec file (1-based, like
// compiler diagnostics). Automata built programmatically carry invalid
// (all-zero) locations; io/text_format fills them in during parsing so
// that analysis/ diagnostics can point at spec lines.
struct SourceLocation {
  int line = 0;
  int column = 0;

  bool valid() const { return line > 0; }

  // "12:3", or "" for an invalid location.
  std::string ToString() const {
    if (!valid()) return "";
    return std::to_string(line) + ":" + std::to_string(column);
  }

  bool operator==(const SourceLocation&) const = default;
};

}  // namespace rav

#endif  // RAV_BASE_SOURCE_LOCATION_H_
