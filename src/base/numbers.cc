#include "base/numbers.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <limits>

namespace rav {

Result<long long> ParseInt64(const std::string& text) {
  if (text.empty()) {
    return Status::InvalidArgument("'' is not a valid integer");
  }
  // strtoll skips leading whitespace; the strict grammar does not.
  if (std::isspace(static_cast<unsigned char>(text[0]))) {
    return Status::InvalidArgument("'" + text + "' is not a valid integer");
  }
  errno = 0;
  char* end = nullptr;
  long long value = std::strtoll(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size() || end == text.c_str()) {
    return Status::InvalidArgument("'" + text + "' is not a valid integer");
  }
  if (errno == ERANGE) {
    return Status::InvalidArgument("'" + text + "' is out of range");
  }
  return value;
}

Result<int> ParseInt32(const std::string& text) {
  RAV_ASSIGN_OR_RETURN(long long value, ParseInt64(text));
  if (value < std::numeric_limits<int>::min() ||
      value > std::numeric_limits<int>::max()) {
    return Status::InvalidArgument("'" + text + "' is out of range");
  }
  return static_cast<int>(value);
}

namespace {

// Scales a parsed non-negative magnitude by a unit multiplier with an
// overflow check, shared by the duration and byte-size grammars.
Result<long long> ScaleChecked(const std::string& text, long long value,
                               long long multiplier) {
  if (value < 0) {
    return Status::InvalidArgument("'" + text + "' must be non-negative");
  }
  if (value > std::numeric_limits<long long>::max() / multiplier) {
    return Status::InvalidArgument("'" + text + "' is out of range");
  }
  return value * multiplier;
}

}  // namespace

Result<long long> ParseDurationMs(const std::string& text) {
  // Longest suffix first: "ms" before "m".
  long long multiplier = 0;
  size_t suffix_len = 0;
  if (text.size() > 2 && text.compare(text.size() - 2, 2, "ms") == 0) {
    multiplier = 1;
    suffix_len = 2;
  } else if (text.size() > 1 && text.back() == 's') {
    multiplier = 1000;
    suffix_len = 1;
  } else if (text.size() > 1 && text.back() == 'm') {
    multiplier = 60 * 1000;
    suffix_len = 1;
  } else {
    return Status::InvalidArgument(
        "'" + text + "' is not a valid duration — expected <n>ms, <n>s, "
        "or <n>m (e.g. 250ms, 10s, 2m)");
  }
  Result<long long> value =
      ParseInt64(text.substr(0, text.size() - suffix_len));
  if (!value.ok()) {
    return Status::InvalidArgument(
        "'" + text + "' is not a valid duration — expected <n>ms, <n>s, "
        "or <n>m (e.g. 250ms, 10s, 2m)");
  }
  return ScaleChecked(text, *value, multiplier);
}

Result<long long> ParseByteSize(const std::string& text) {
  long long multiplier = 1;
  size_t suffix_len = 0;
  if (!text.empty()) {
    switch (text.back()) {
      case 'k':
      case 'K':
        multiplier = 1024;
        suffix_len = 1;
        break;
      case 'm':
      case 'M':
        multiplier = 1024LL * 1024;
        suffix_len = 1;
        break;
      case 'g':
      case 'G':
        multiplier = 1024LL * 1024 * 1024;
        suffix_len = 1;
        break;
      default:
        break;
    }
  }
  Result<long long> value =
      ParseInt64(text.substr(0, text.size() - suffix_len));
  if (!value.ok()) {
    return Status::InvalidArgument(
        "'" + text + "' is not a valid byte size — expected <n> with an "
        "optional k/m/g suffix (e.g. 1048576, 64k, 512m, 2g)");
  }
  return ScaleChecked(text, *value, multiplier);
}

}  // namespace rav
