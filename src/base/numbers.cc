#include "base/numbers.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <limits>

namespace rav {

Result<long long> ParseInt64(const std::string& text) {
  if (text.empty()) {
    return Status::InvalidArgument("'' is not a valid integer");
  }
  // strtoll skips leading whitespace; the strict grammar does not.
  if (std::isspace(static_cast<unsigned char>(text[0]))) {
    return Status::InvalidArgument("'" + text + "' is not a valid integer");
  }
  errno = 0;
  char* end = nullptr;
  long long value = std::strtoll(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size() || end == text.c_str()) {
    return Status::InvalidArgument("'" + text + "' is not a valid integer");
  }
  if (errno == ERANGE) {
    return Status::InvalidArgument("'" + text + "' is out of range");
  }
  return value;
}

Result<int> ParseInt32(const std::string& text) {
  RAV_ASSIGN_OR_RETURN(long long value, ParseInt64(text));
  if (value < std::numeric_limits<int>::min() ||
      value > std::numeric_limits<int>::max()) {
    return Status::InvalidArgument("'" + text + "' is out of range");
  }
  return static_cast<int>(value);
}

}  // namespace rav
