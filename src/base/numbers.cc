#include "base/numbers.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <limits>

namespace rav {

Result<long long> ParseInt64(const std::string& text) {
  if (text.empty()) {
    return Status::InvalidArgument("'' is not a valid integer");
  }
  // strtoll skips leading whitespace; the strict grammar does not.
  if (std::isspace(static_cast<unsigned char>(text[0]))) {
    return Status::InvalidArgument("'" + text + "' is not a valid integer");
  }
  errno = 0;
  char* end = nullptr;
  long long value = std::strtoll(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size() || end == text.c_str()) {
    return Status::InvalidArgument("'" + text + "' is not a valid integer");
  }
  if (errno == ERANGE) {
    return Status::InvalidArgument("'" + text + "' is out of range");
  }
  return value;
}

Result<int> ParseInt32(const std::string& text) {
  RAV_ASSIGN_OR_RETURN(long long value, ParseInt64(text));
  if (value < std::numeric_limits<int>::min() ||
      value > std::numeric_limits<int>::max()) {
    return Status::InvalidArgument("'" + text + "' is out of range");
  }
  return static_cast<int>(value);
}

namespace {

// Scales a parsed non-negative magnitude by a unit multiplier with an
// overflow check, shared by the duration and byte-size grammars.
Result<long long> ScaleChecked(const std::string& text, long long value,
                               long long multiplier) {
  if (value < 0) {
    return Status::InvalidArgument("'" + text + "' must be non-negative");
  }
  if (value > std::numeric_limits<long long>::max() / multiplier) {
    return Status::InvalidArgument("'" + text + "' is out of range");
  }
  return value * multiplier;
}

}  // namespace

namespace {

// Splits `text` into a leading magnitude and a trailing alphabetic unit
// suffix (lowercased), so that "250MS" -> ("250", "ms"). The suffix is
// maximal: every trailing letter belongs to it, which makes "64kb" an
// *unknown suffix* ("kb") instead of a bad integer ("64k"), and makes
// suffix-only strings ("ms", "k") distinguishable from bare numbers.
void SplitUnitSuffix(const std::string& text, std::string* magnitude,
                     std::string* suffix) {
  size_t cut = text.size();
  while (cut > 0 &&
         std::isalpha(static_cast<unsigned char>(text[cut - 1]))) {
    --cut;
  }
  *magnitude = text.substr(0, cut);
  *suffix = text.substr(cut);
  for (char& c : *suffix) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
}

}  // namespace

Result<long long> ParseDurationMs(const std::string& text) {
  static const char* const kValid =
      "valid suffixes: ms, s, m (case-insensitive; e.g. 250ms, 10s, 2m)";
  std::string magnitude;
  std::string suffix;
  SplitUnitSuffix(text, &magnitude, &suffix);
  long long multiplier = 0;
  if (suffix == "ms") {
    multiplier = 1;
  } else if (suffix == "s") {
    multiplier = 1000;
  } else if (suffix == "m") {
    multiplier = 60 * 1000;
  } else if (suffix.empty()) {
    return Status::InvalidArgument("'" + text +
                                   "' is not a valid duration: missing unit "
                                   "suffix — " +
                                   kValid);
  } else {
    return Status::InvalidArgument("'" + text +
                                   "' is not a valid duration: unknown unit "
                                   "suffix '" +
                                   suffix + "' — " + kValid);
  }
  if (magnitude.empty()) {
    return Status::InvalidArgument("'" + text +
                                   "' is not a valid duration: missing a "
                                   "number before the '" +
                                   suffix + "' suffix — " + kValid);
  }
  Result<long long> value = ParseInt64(magnitude);
  if (!value.ok()) {
    return Status::InvalidArgument("'" + text +
                                   "' is not a valid duration: '" + magnitude +
                                   "' is not a decimal integer — " + kValid);
  }
  return ScaleChecked(text, *value, multiplier);
}

Result<long long> ParseByteSize(const std::string& text) {
  static const char* const kValid =
      "valid suffixes: k, m, g (powers of 1024, case-insensitive), or no "
      "suffix for bytes (e.g. 1048576, 64k, 512m, 2g)";
  std::string magnitude;
  std::string suffix;
  SplitUnitSuffix(text, &magnitude, &suffix);
  long long multiplier = 1;
  if (suffix == "k") {
    multiplier = 1024;
  } else if (suffix == "m") {
    multiplier = 1024LL * 1024;
  } else if (suffix == "g") {
    multiplier = 1024LL * 1024 * 1024;
  } else if (!suffix.empty()) {
    return Status::InvalidArgument("'" + text +
                                   "' is not a valid byte size: unknown unit "
                                   "suffix '" +
                                   suffix + "' — " + kValid);
  }
  if (magnitude.empty()) {
    if (suffix.empty()) {
      return Status::InvalidArgument(
          "'' is not a valid byte size: expected a number — " +
          std::string(kValid));
    }
    return Status::InvalidArgument("'" + text +
                                   "' is not a valid byte size: missing a "
                                   "number before the '" +
                                   suffix + "' suffix — " + kValid);
  }
  Result<long long> value = ParseInt64(magnitude);
  if (!value.ok()) {
    return Status::InvalidArgument("'" + text +
                                   "' is not a valid byte size: '" +
                                   magnitude + "' is not a decimal integer — " +
                                   kValid);
  }
  return ScaleChecked(text, *value, multiplier);
}

}  // namespace rav
