#include "base/governor.h"

#include <string>

#include "base/failpoints.h"
#include "base/metrics.h"

namespace rav {

const char* GovernorTripName(GovernorTrip trip) {
  switch (trip) {
    case GovernorTrip::kNone:
      return "none";
    case GovernorTrip::kDeadline:
      return "deadline";
    case GovernorTrip::kMemoryBudget:
      return "memory-budget";
    case GovernorTrip::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

void ExecutionGovernor::ChargeBytes(size_t bytes) const {
  if (bytes == 0) return;
  const size_t live =
      live_bytes_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  // Lock-free peak update; losing a race only under-reports by the width
  // of the race, and the winner re-checks.
  size_t peak = peak_bytes_.load(std::memory_order_relaxed);
  while (live > peak && !peak_bytes_.compare_exchange_weak(
                            peak, live, std::memory_order_relaxed)) {
  }
  // Record the over-budget moment here, not only in Check(): a transient
  // charge (one candidate's closure, released before the next poll) must
  // still trip — the budget bounds the high-water mark, not whatever
  // happens to be live at a safe point. A pending cancellation still
  // outranks the budget, as it does in Check().
  if (live > memory_budget_.load(std::memory_order_relaxed)) {
    RecordTrip(cancelled_.load(std::memory_order_relaxed)
                   ? GovernorTrip::kCancelled
                   : GovernorTrip::kMemoryBudget);
  }
}

void ExecutionGovernor::ReleaseBytes(size_t bytes) const {
  if (bytes == 0) return;
  live_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
}

void ExecutionGovernor::RecordTrip(GovernorTrip trip) const {
  int expected = 0;
  if (trip_.compare_exchange_strong(expected, static_cast<int>(trip),
                                    std::memory_order_relaxed)) {
    switch (trip) {
      case GovernorTrip::kDeadline:
        RAV_METRIC_COUNT("governor/deadline_trips", 1);
        break;
      case GovernorTrip::kMemoryBudget:
        RAV_METRIC_COUNT("governor/memory_trips", 1);
        break;
      case GovernorTrip::kCancelled:
        RAV_METRIC_COUNT("governor/cancellations", 1);
        break;
      case GovernorTrip::kNone:
        break;
    }
  }
}

GovernorTrip ExecutionGovernor::Check() const {
  RAV_METRIC_COUNT("governor/checks", 1);
  GovernorTrip tripped = trip();
  if (tripped != GovernorTrip::kNone) return tripped;
  if (cancelled_.load(std::memory_order_relaxed)) {
    RecordTrip(GovernorTrip::kCancelled);
    return trip();
  }
  const size_t budget = memory_budget_.load(std::memory_order_relaxed);
  if (live_bytes_.load(std::memory_order_relaxed) > budget ||
      RAV_FAILPOINT("governor/memory")) {
    RecordTrip(GovernorTrip::kMemoryBudget);
    return trip();
  }
  const int64_t deadline = deadline_.load(std::memory_order_relaxed);
  if (deadline != kNoDeadline &&
      (Clock::now().time_since_epoch().count() >= deadline ||
       RAV_FAILPOINT("governor/deadline"))) {
    RecordTrip(GovernorTrip::kDeadline);
    return trip();
  }
  return GovernorTrip::kNone;
}

Status ExecutionGovernor::CheckStatus(const char* what) const {
  const GovernorTrip tripped = Check();
  if (tripped == GovernorTrip::kNone) return Status::OK();
  return Status::ResourceExhausted(
      std::string(what) + ": stopped by governor (" +
      GovernorTripName(tripped) + ")");
}

}  // namespace rav
