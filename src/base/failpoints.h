#ifndef RAV_BASE_FAILPOINTS_H_
#define RAV_BASE_FAILPOINTS_H_

// Deterministic fault injection: named sites in fallible code paths that
// can be armed to fire on their Nth hit, turning the site's normal
// outcome into its failure outcome (an error Status, a simulated spawn
// failure, a forced governor trip). Sites are cheap when nothing is
// armed — one relaxed atomic load — and the whole layer compiles to a
// constant `false` under RAV_NO_FAILPOINTS, like RAV_NO_METRICS.
//
// Arming, two ways:
//   * programmatically (tests): failpoints::Arm("io/text_format/parse", 1);
//   * environment (CI matrix):  RAV_FAILPOINTS="io/text_format/parse=1,
//     era/search/worker_spawn=2" — parsed once on first use; each entry
//     is site=N, firing on the Nth hit of that site (1-based).
//
// A site fires exactly once (on the Nth hit) and then disarms, so a
// single armed run exercises one failure without cascading. Hit counts
// are process-global and thread-safe. The catalog of sites lives in
// docs/robustness.md.
//
// Usage at a site:
//   if (RAV_FAILPOINT("io/text_format/parse")) {
//     return Status::ResourceExhausted("failpoint ... fired");
//   }

#include <cstdint>
#include <string>
#include <string_view>

namespace rav::failpoints {

#ifdef RAV_NO_FAILPOINTS

inline bool Hit(std::string_view) { return false; }
inline void Arm(std::string_view, uint64_t) {}
inline void DisarmAll() {}
inline bool AnyArmed() { return false; }

#else  // !RAV_NO_FAILPOINTS

// True iff this call is the armed Nth hit of `site` (the site then
// disarms). One relaxed atomic load when nothing is armed anywhere.
bool Hit(std::string_view site);

// Arms `site` to fire on its `nth` next hit (1 = the very next). The
// site's hit count restarts from zero. nth == 0 disarms the site.
void Arm(std::string_view site, uint64_t nth);

// Disarms every site and resets hit counts (tests).
void DisarmAll();

// True iff any site is armed (fast-path probe, exposed for tests).
bool AnyArmed();

#endif  // RAV_NO_FAILPOINTS

}  // namespace rav::failpoints

#define RAV_FAILPOINT(site) (::rav::failpoints::Hit(site))

#endif  // RAV_BASE_FAILPOINTS_H_
