#ifndef RAV_BASE_NUMBERS_H_
#define RAV_BASE_NUMBERS_H_

#include <string>

#include "base/status.h"

namespace rav {

// Strict decimal integer parsing for user-supplied input (CLI arguments,
// text formats). Unlike std::stoi/std::atoi, these never throw and never
// silently return 0: the whole string must be a decimal integer (an
// optional sign, then digits), and the value must fit the target type —
// anything else is an InvalidArgument carrying the offending text.
Result<long long> ParseInt64(const std::string& text);
Result<int> ParseInt32(const std::string& text);

// A non-negative wall-clock duration with a required unit suffix, as the
// CLI's --timeout takes it: "250ms", "10s", "2m" (suffixes ms/s/m,
// case-insensitive). Returns milliseconds. Rejects negatives, bare
// numbers with no unit, suffix-only strings ("ms"), unknown suffixes,
// and values that overflow when scaled — always with an error naming
// the valid suffixes.
Result<long long> ParseDurationMs(const std::string& text);

// A non-negative byte count with an optional binary-unit suffix, as the
// CLI's --memory-limit takes it: "1048576", "64k", "512m", "2g"
// (multipliers 1024, 1024², 1024³; case-insensitive). Rejects negatives,
// suffix-only strings ("k"), unknown suffixes ("64kb"), and values that
// overflow when scaled — always with an error naming the valid suffixes.
Result<long long> ParseByteSize(const std::string& text);

}  // namespace rav

#endif  // RAV_BASE_NUMBERS_H_
