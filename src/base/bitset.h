#ifndef RAV_BASE_BITSET_H_
#define RAV_BASE_BITSET_H_

#include <cstdint>
#include <vector>

#include "base/logging.h"

namespace rav {

// Dense dynamically-sized bitset. Subset-construction algorithms
// (determinization, Lemma 21 propagation automata) use bitsets as automaton
// states, so equality/hash and set algebra must be fast.
class Bitset {
 public:
  Bitset() = default;
  explicit Bitset(size_t n) : size_(n), words_((n + 63) / 64, 0) {}

  size_t size() const { return size_; }

  void Set(size_t i) {
    RAV_CHECK_LT(i, size_);
    words_[i >> 6] |= (uint64_t{1} << (i & 63));
  }
  void Clear(size_t i) {
    RAV_CHECK_LT(i, size_);
    words_[i >> 6] &= ~(uint64_t{1} << (i & 63));
  }
  bool Test(size_t i) const {
    RAV_CHECK_LT(i, size_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  bool Any() const {
    for (uint64_t w : words_) {
      if (w != 0) return true;
    }
    return false;
  }
  bool None() const { return !Any(); }

  size_t Count() const {
    size_t c = 0;
    for (uint64_t w : words_) c += static_cast<size_t>(__builtin_popcountll(w));
    return c;
  }

  Bitset& operator|=(const Bitset& o) {
    RAV_CHECK_EQ(size_, o.size_);
    for (size_t i = 0; i < words_.size(); ++i) words_[i] |= o.words_[i];
    return *this;
  }
  Bitset& operator&=(const Bitset& o) {
    RAV_CHECK_EQ(size_, o.size_);
    for (size_t i = 0; i < words_.size(); ++i) words_[i] &= o.words_[i];
    return *this;
  }

  bool Intersects(const Bitset& o) const {
    RAV_CHECK_EQ(size_, o.size_);
    for (size_t i = 0; i < words_.size(); ++i) {
      if ((words_[i] & o.words_[i]) != 0) return true;
    }
    return false;
  }

  bool operator==(const Bitset& o) const {
    return size_ == o.size_ && words_ == o.words_;
  }

  // Calls f(i) for each set bit i in ascending order.
  template <typename F>
  void ForEach(F&& f) const {
    for (size_t wi = 0; wi < words_.size(); ++wi) {
      uint64_t w = words_[wi];
      while (w != 0) {
        int bit = __builtin_ctzll(w);
        f(wi * 64 + static_cast<size_t>(bit));
        w &= w - 1;
      }
    }
  }

  struct Hasher {
    size_t operator()(const Bitset& b) const {
      size_t seed = b.size_;
      for (uint64_t w : b.words_) {
        seed ^= static_cast<size_t>(w) + 0x9e3779b97f4a7c15ULL + (seed << 6) +
                (seed >> 2);
      }
      return seed;
    }
  };

 private:
  size_t size_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace rav

#endif  // RAV_BASE_BITSET_H_
