#ifndef RAV_BASE_FLAT_MAP_H_
#define RAV_BASE_FLAT_MAP_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "base/hash.h"

namespace rav {

// Open-addressing key → dense-id interner for the subset/product
// constructions: keys are interned in insertion order and receive the ids
// 0, 1, 2, ..., matching the sequential state ids the constructions
// allocate. Replaces the std::map-keyed tables on the hot paths (one
// allocation-free probe per lookup instead of a log-depth pointer chase).
//
// Hash is a functor over Key (see base/hash.h for the common ones);
// equality is Key::operator==. Keys are stored once, in a dense vector
// the caller can also iterate (Keys() is stable: ids index into it).
template <typename Key, typename Hash>
class FlatIdMap {
 public:
  FlatIdMap() : slots_(kInitialCapacity, -1) {}

  // The id of `key`, or -1 if not interned.
  int Find(const Key& key) const {
    size_t mask = slots_.size() - 1;
    size_t i = Hash{}(key)&mask;
    while (slots_[i] >= 0) {
      if (keys_[slots_[i]] == key) return slots_[i];
      i = (i + 1) & mask;
    }
    return -1;
  }

  // The id of `key`, interning it with the next dense id if absent.
  // Returns {id, inserted}.
  std::pair<int, bool> Intern(const Key& key) {
    if ((keys_.size() + 1) * 10 >= slots_.size() * 7) Grow();
    size_t mask = slots_.size() - 1;
    size_t i = Hash{}(key)&mask;
    while (slots_[i] >= 0) {
      if (keys_[slots_[i]] == key) return {slots_[i], false};
      i = (i + 1) & mask;
    }
    int id = static_cast<int>(keys_.size());
    keys_.push_back(key);
    slots_[i] = id;
    return {id, true};
  }

  size_t size() const { return keys_.size(); }
  const Key& KeyOf(int id) const { return keys_[id]; }
  const std::vector<Key>& Keys() const { return keys_; }

 private:
  static constexpr size_t kInitialCapacity = 64;  // power of two

  void Grow() {
    std::vector<int> grown(slots_.size() * 2, -1);
    size_t mask = grown.size() - 1;
    for (int id = 0; id < static_cast<int>(keys_.size()); ++id) {
      size_t i = Hash{}(keys_[id]) & mask;
      while (grown[i] >= 0) i = (i + 1) & mask;
      grown[i] = id;
    }
    slots_.swap(grown);
  }

  std::vector<int> slots_;  // slot -> id, -1 empty; load kept under 0.7
  std::vector<Key> keys_;   // id -> key (insertion order)
};

}  // namespace rav

#endif  // RAV_BASE_FLAT_MAP_H_
