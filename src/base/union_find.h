#ifndef RAV_BASE_UNION_FIND_H_
#define RAV_BASE_UNION_FIND_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rav {

// Union-find (disjoint set) over dense integer ids with union by rank and
// path compression. Used pervasively to canonicalize equality constraints:
// σ-types, the ~_w closure of extended-automaton runs, and witness
// construction all reduce equality reasoning to merges in this structure.
class UnionFind {
 public:
  UnionFind() = default;
  explicit UnionFind(size_t n) { Reset(n); }

  // Re-initializes to n singleton classes {0}, ..., {n-1}.
  void Reset(size_t n);

  // Adds one fresh singleton element and returns its id.
  int Add();

  size_t size() const { return parent_.size(); }

  // Returns the canonical representative of x's class.
  int Find(int x) const;

  // Merges the classes of a and b; returns the surviving representative.
  int Union(int a, int b);

  bool Same(int a, int b) const { return Find(a) == Find(b); }

  // Number of distinct classes.
  size_t NumClasses() const;

  // Representative of every class, sorted ascending.
  std::vector<int> Representatives() const;

 private:
  // mutable for path compression in const Find.
  mutable std::vector<int> parent_;
  std::vector<uint8_t> rank_;
};

}  // namespace rav

#endif  // RAV_BASE_UNION_FIND_H_
