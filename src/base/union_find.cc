#include "base/union_find.h"

#include <algorithm>
#include <numeric>

#include "base/logging.h"

namespace rav {

void UnionFind::Reset(size_t n) {
  parent_.resize(n);
  std::iota(parent_.begin(), parent_.end(), 0);
  rank_.assign(n, 0);
}

int UnionFind::Add() {
  int id = static_cast<int>(parent_.size());
  parent_.push_back(id);
  rank_.push_back(0);
  return id;
}

int UnionFind::Find(int x) const {
  RAV_CHECK_GE(x, 0);
  RAV_CHECK_LT(static_cast<size_t>(x), parent_.size());
  int root = x;
  while (parent_[root] != root) root = parent_[root];
  // Path compression.
  while (parent_[x] != root) {
    int next = parent_[x];
    parent_[x] = root;
    x = next;
  }
  return root;
}

int UnionFind::Union(int a, int b) {
  int ra = Find(a);
  int rb = Find(b);
  if (ra == rb) return ra;
  if (rank_[ra] < rank_[rb]) std::swap(ra, rb);
  parent_[rb] = ra;
  if (rank_[ra] == rank_[rb]) ++rank_[ra];
  return ra;
}

size_t UnionFind::NumClasses() const {
  size_t count = 0;
  for (size_t i = 0; i < parent_.size(); ++i) {
    if (Find(static_cast<int>(i)) == static_cast<int>(i)) ++count;
  }
  return count;
}

std::vector<int> UnionFind::Representatives() const {
  std::vector<int> reps;
  for (size_t i = 0; i < parent_.size(); ++i) {
    if (Find(static_cast<int>(i)) == static_cast<int>(i)) {
      reps.push_back(static_cast<int>(i));
    }
  }
  return reps;
}

}  // namespace rav
