#ifndef RAV_BASE_STRONG_ID_H_
#define RAV_BASE_STRONG_ID_H_

#include <cstddef>
#include <functional>

namespace rav {

// A tagged integer id: same cost and layout as a plain int, but a
// distinct type per Tag, so a StateId cannot silently flow into a
// parameter expecting a RegisterId (the bug class
// bugprone-easily-swappable-parameters exists to catch — the .clang-tidy
// gate enforces it since the typed-core refactor). Construction from the
// underlying int is explicit; the only way back is value().
//
// Conventions (CONTRIBUTING.md "Minting a new id type"):
//   * ids are dense non-negative indices; the default-constructed id is
//     the invalid sentinel (-1, the idiom the codebase already used),
//   * containers stay std::vector<T> indexed by id.value() — the wrapper
//     types the *seams* (signatures, struct fields), not the arithmetic
//     inside one function,
//   * loops over a dense id space use an IdRange (see below) so the loop
//     variable itself is typed.
template <typename Tag>
class StrongId {
 public:
  constexpr StrongId() = default;
  constexpr explicit StrongId(int value) : value_(value) {}

  constexpr int value() const { return value_; }
  // Ids are dense vector indices; valid() is the -1-sentinel check the
  // raw-int idiom spelled `id >= 0`.
  constexpr bool valid() const { return value_ >= 0; }
  static constexpr StrongId Invalid() { return StrongId(); }

  friend constexpr bool operator==(StrongId, StrongId) = default;
  friend constexpr auto operator<=>(StrongId, StrongId) = default;

 private:
  int value_ = -1;
};

// Iterable dense id range [0, count): `for (StateId q : a.States())`.
template <typename Id>
class IdRange {
 public:
  class Iterator {
   public:
    constexpr explicit Iterator(int value) : value_(value) {}
    constexpr Id operator*() const { return Id(value_); }
    constexpr Iterator& operator++() {
      ++value_;
      return *this;
    }
    friend constexpr bool operator==(Iterator, Iterator) = default;

   private:
    int value_;
  };

  constexpr explicit IdRange(int count) : count_(count) {}
  constexpr Iterator begin() const { return Iterator(0); }
  constexpr Iterator end() const { return Iterator(count_); }
  constexpr int size() const { return count_; }

 private:
  int count_;
};

// The core id vocabulary. Each alias is its own type; pick the one that
// names the index space, or mint a new tag when a new dense space
// appears (CONTRIBUTING.md).
//
// Dense id of a control state of a register automaton.
using StateId = StrongId<struct StateIdTag>;
// 0-based register index of a k-register automaton.
using RegisterId = StrongId<struct RegisterIdTag>;
// Dense id of a distinct compiled guard (compile::GuardTableSet).
using GuardId = StrongId<struct GuardIdTag>;
// Dense id of a control symbol (q, δ) of a ControlAlphabet.
using SymbolId = StrongId<struct SymbolIdTag>;
// Element id of a σ-type: variables first, then constant symbols
// (TypeBuilder::X/Y/Const produce these).
using ElementIndex = StrongId<struct ElementIndexTag>;

}  // namespace rav

template <typename Tag>
struct std::hash<rav::StrongId<Tag>> {
  size_t operator()(rav::StrongId<Tag> id) const {
    return std::hash<int>{}(id.value());
  }
};

#endif  // RAV_BASE_STRONG_ID_H_
