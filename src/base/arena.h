#ifndef RAV_BASE_ARENA_H_
#define RAV_BASE_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

#include "base/logging.h"

namespace rav {

// Bump-pointer arena allocator for the symbolic constraint structures built
// by the decision procedures (type literals, equivalence-class nodes,
// constraint-graph edges). A single analysis allocates many small
// short-lived nodes with identical lifetime; the arena allocates them from
// large blocks and frees them wholesale when the analysis object is
// destroyed. Only trivially-destructible types may be allocated: the arena
// never runs destructors.
class ExecutionGovernor;

class Arena {
 public:
  explicit Arena(size_t block_bytes = kDefaultBlockBytes)
      : block_bytes_(block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  ~Arena();

  // Attaches a resource governor: every block the arena grows by is
  // charged against the governor's memory budget (and released on Reset
  // or destruction), so a budgeted procedure sees its arena footprint at
  // the next safe-point check. Attach before allocating; already-held
  // blocks are charged retroactively on attach.
  void set_governor(const ExecutionGovernor* governor);

  // Allocates `bytes` with the given alignment. Never returns nullptr.
  void* Allocate(size_t bytes, size_t alignment = alignof(std::max_align_t));

  // Allocates and value-initializes a T. T must be trivially destructible
  // (the arena does not run destructors).
  template <typename T, typename... Args>
  T* New(Args&&... args) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena::New requires a trivially destructible type");
    void* p = Allocate(sizeof(T), alignof(T));
    return new (p) T(std::forward<Args>(args)...);
  }

  // Allocates an uninitialized array of `n` Ts.
  template <typename T>
  T* NewArray(size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena::NewArray requires a trivially destructible type");
    if (n == 0) return nullptr;
    void* p = Allocate(sizeof(T) * n, alignof(T));
    return new (p) T[n]();
  }

  // Total bytes handed out by Allocate (excludes block slack).
  size_t bytes_allocated() const { return bytes_allocated_; }
  // Total bytes reserved from the system (block sizes, including slack) —
  // the arena's true memory footprint, the quantity memory budgets and
  // the `base/arena/*` gauges account.
  size_t total_allocated() const { return total_allocated_; }
  // Number of underlying blocks.
  size_t num_blocks() const { return blocks_.size(); }
  size_t block_count() const { return blocks_.size(); }

  // Frees all blocks. All pointers previously returned become invalid.
  void Reset();

 private:
  static constexpr size_t kDefaultBlockBytes = 64 * 1024;

  struct Block {
    std::unique_ptr<char[]> data;
    size_t size = 0;
    size_t used = 0;
  };

  Block* AddBlock(size_t min_bytes);

  size_t block_bytes_;
  size_t bytes_allocated_ = 0;
  size_t total_allocated_ = 0;
  const ExecutionGovernor* governor_ = nullptr;
  std::vector<Block> blocks_;
};

}  // namespace rav

#endif  // RAV_BASE_ARENA_H_
