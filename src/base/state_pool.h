#ifndef RAV_BASE_STATE_POOL_H_
#define RAV_BASE_STATE_POOL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>

#include "base/governor.h"

namespace rav {

// Pooled, compactly-encoded state storage for the shared-memory search
// (the DIVINE toolkit's `pool.h` is the model): variable-length byte
// records are bump-allocated out of fixed-size chunks and addressed by
// stable 64-bit handles, so a concurrent visited-set can store one small
// handle per state instead of a heap string. Records are immutable after
// Store() except for a single per-record atomic payload word, which the
// visited-set uses to publish a verdict for the interned state.
//
// Thread model: any number of threads may Store() concurrently, each
// through its own ThreadCache (a bump pointer into a chunk that thread
// owns); the global mutex is taken only to hand out fresh chunks.
// Data()/Size()/Payload() are wait-free and may run concurrently with
// Store()s of *other* records. Handles are never invalidated — chunks
// are only freed by the destructor.
//
// Memory accounting: every chunk is charged to the governor (nullptr =
// unaccounted) when reserved and released in one piece by the
// destructor, so a search's visited states show up in the existing
// byte accounting (`ExecutionGovernor::live_bytes`) and a memory budget
// can trip on them.
class StatePool {
 public:
  using Handle = uint64_t;
  static constexpr Handle kNullHandle = ~0ull;

  // Per-thread bump allocator state. Each storing thread owns one; it
  // holds the thread's current chunk and is only touched by that thread.
  struct ThreadCache {
    uint32_t chunk = 0;
    uint32_t offset = 0;
    uint32_t end = 0;  // offset == end forces a refill (0 == 0 initially)
  };

  explicit StatePool(const ExecutionGovernor* governor = nullptr,
                     size_t chunk_bytes = kDefaultChunkBytes);
  ~StatePool();

  StatePool(const StatePool&) = delete;
  StatePool& operator=(const StatePool&) = delete;

  // Copies `size` bytes into the pool and returns the record's handle.
  // Thread-safe through per-thread caches. Records larger than the chunk
  // payload get a dedicated oversize chunk.
  Handle Store(ThreadCache& cache, const uint8_t* data, uint32_t size);

  // The stored bytes / byte count of a record. Safe concurrently with
  // other threads' Store()s once the handle has been published to this
  // thread (the visited-set's shard lock or an acquire load orders it).
  const uint8_t* Data(Handle handle) const;
  uint32_t Size(Handle handle) const;

  // The record's payload word (zero-initialized by Store). The
  // visited-set publishes the evaluated verdict here with a release
  // store; readers use acquire loads.
  std::atomic<uint32_t>& Payload(Handle handle) const;

  // Chunk bytes reserved (what the governor was charged).
  size_t bytes_reserved() const {
    return bytes_reserved_.load(std::memory_order_relaxed);
  }
  // Payload bytes actually stored (record headers + data, no slack).
  size_t bytes_stored() const {
    return bytes_stored_.load(std::memory_order_relaxed);
  }
  size_t records() const { return records_.load(std::memory_order_relaxed); }

  static constexpr size_t kDefaultChunkBytes = 64 * 1024;

 private:
  // Record layout, 8-byte aligned: payload word, size, then the bytes.
  static constexpr uint32_t kHeaderBytes = 8;
  static constexpr uint32_t kAlign = 8;

  // Two-level chunk directory so the pool can grow without moving or
  // locking against readers: 256 lazily-allocated leaves of 256 chunk
  // pointers each. Leaf and chunk slots are published with release
  // stores and read with acquire loads.
  static constexpr uint32_t kLeafBits = 8;
  static constexpr uint32_t kLeafSize = 1u << kLeafBits;
  static constexpr uint32_t kMaxChunks = kLeafSize * kLeafSize;

  struct Leaf {
    std::atomic<uint8_t*> chunks[kLeafSize] = {};
  };

  uint8_t* ChunkData(uint32_t chunk) const;
  // Reserves a fresh chunk of `bytes` and returns its index.
  uint32_t ReserveChunk(size_t bytes);

  const ExecutionGovernor* governor_;
  const size_t chunk_bytes_;
  std::mutex mu_;  // guards chunk reservation only
  std::atomic<uint32_t> num_chunks_{0};
  std::atomic<Leaf*> leaves_[kLeafSize] = {};
  std::atomic<size_t> bytes_reserved_{0};
  std::atomic<size_t> bytes_stored_{0};
  std::atomic<size_t> records_{0};
};

}  // namespace rav

#endif  // RAV_BASE_STATE_POOL_H_
