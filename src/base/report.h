#ifndef RAV_BASE_REPORT_H_
#define RAV_BASE_REPORT_H_

// Machine-readable run reports: a minimal JSON document model (writer and
// parser — no third-party dependency), the stable report schema every
// bench binary and rav_cli emit under `--report <file>`, and its
// validator (shared with tools/report_merge).
//
// Report schema (docs/observability.md):
//
//   {
//     "schema_version": 1,
//     "experiment": "E6",                     // experiment / command id
//     "claim": "...",                         // the claim being measured
//     "params": { ... },                      // invocation parameters
//     "metrics": {
//       "process": { "era/search/...": N, ... },  // metrics::Snapshot()
//       "benchmarks": [ ... ]                 // bench rows, when present
//     },
//     "spans": [ {"path": ..., "count": ..., "total_ms": ...,
//                 "min_ms": ..., "max_ms": ...}, ... ],
//     "verdict": "ok",                        // outcome string
//     "wall_ms": 123.4                        // end-to-end wall time
//   }

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "base/status.h"

namespace rav {

// A tiny JSON DOM. Objects preserve insertion order, so documents render
// deterministically (the golden-schema test depends on it).
class Json {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : kind_(Kind::kNull) {}
  static Json Null() { return Json(); }
  static Json Bool(bool b);
  static Json Number(double value);
  static Json Number(int64_t value);
  static Json Number(uint64_t value);
  static Json Number(int value) { return Number(static_cast<int64_t>(value)); }
  static Json String(std::string_view s);
  static Json Array();
  static Json Object();

  Kind kind() const { return kind_; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_number() const { return kind_ == Kind::kNumber; }

  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  const std::string& string_value() const { return string_; }

  // Arrays.
  void Append(Json value);
  size_t size() const { return array_.size(); }
  const Json& at(size_t i) const { return array_[i]; }
  const std::vector<Json>& items() const { return array_; }

  // Objects. Set replaces an existing key in place (keeping its position).
  void Set(std::string_view key, Json value);
  const Json* Find(std::string_view key) const;  // nullptr if absent
  const std::vector<std::pair<std::string, Json>>& members() const {
    return object_;
  }

  // Serializes the document. indent = 0 renders compactly; indent > 0
  // pretty-prints with that many spaces per level. Numbers with integral
  // values print without a decimal point.
  std::string Dump(int indent = 0) const;

  // Strict parser for the subset this writer produces (standard JSON
  // without comments; duplicate keys keep the last value).
  static Result<Json> Parse(std::string_view text);

 private:
  void DumpTo(std::string& out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;
};

// One run's report; rendered with ReportToJson below.
struct RunReport {
  std::string experiment;
  std::string claim;
  Json params = Json::Object();
  Json metrics = Json::Object();
  Json spans = Json::Array();
  std::string verdict;
  double wall_ms = 0;
};

// The required top-level keys, in canonical order.
extern const char* const kReportRequiredKeys[7];

// Renders the report with the stable schema above (schema_version first,
// then the required keys in canonical order).
Json ReportToJson(const RunReport& report);

// Checks that `json` is an object carrying every required key with the
// right type. The error message lists everything that is wrong.
Status ValidateReportJson(const Json& json);

// Writes `report` as pretty-printed JSON to `path`.
Status WriteReportFile(const std::string& path, const RunReport& report);

// Bridges from the observability layer: the current process-wide metrics
// as an object (name -> value, histograms as sub-objects), and the
// aggregated trace spans as the report's "spans" array. Both compile to
// empty documents under RAV_NO_METRICS.
Json CaptureProcessMetrics();
Json CaptureSpans();

}  // namespace rav

#endif  // RAV_BASE_REPORT_H_
