#ifndef RAV_BASE_GOVERNOR_H_
#define RAV_BASE_GOVERNOR_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <limits>

#include "base/status.h"

namespace rav {

// Why a governed computation was stopped. kNone means "keep going".
// Ordered by severity of the caller's obligation: a cancellation is a
// user decision and outranks the resource trips when several race.
enum class GovernorTrip {
  kNone = 0,
  kDeadline = 1,      // the wall-clock deadline passed
  kMemoryBudget = 2,  // accounted live bytes exceeded the budget
  kCancelled = 3,     // cooperative cancellation was requested
};

// Stable human-readable name ("none", "deadline", ...).
const char* GovernorTripName(GovernorTrip trip);

// Resource governor for the long-running decision procedures: a
// wall-clock deadline, a budget on accounted live memory, and a
// cooperative cancellation token. The governed procedures take a
// `const ExecutionGovernor*` (nullptr = unlimited) and poll `Check()` at
// their existing safe points — lasso-pool rung boundaries, per-candidate
// closure builds, complement state expansions — so a trip always leaves
// a truthful partial result, never a torn one.
//
// Thread model: one governor may be shared by the producer, every search
// worker, and any number of outside threads (including a signal handler —
// RequestCancel is a single relaxed atomic store and is async-signal
// safe). All members are atomics; the object itself is logically const
// while governed work runs, which is why the accounting methods are
// const (the counters are mutable by design, like a mutex).
//
// The first trip is sticky: once Check() observes a limit it records the
// reason, every later Check() returns it, and procedures report it in
// their SearchStats / Status. Memory accounting tracks *live* accounted
// bytes (Charge/Release pairs, e.g. from Arena block allocation and the
// coarse node counters of the non-arena hot structures) plus the peak.
class ExecutionGovernor {
 public:
  using Clock = std::chrono::steady_clock;

  // Unlimited by default: no deadline, no memory budget, not cancelled.
  ExecutionGovernor() = default;

  ExecutionGovernor(const ExecutionGovernor&) = delete;
  ExecutionGovernor& operator=(const ExecutionGovernor&) = delete;

  // --- configuration (set before handing the governor to workers) ---

  void set_deadline(Clock::time_point deadline) {
    deadline_.store(deadline.time_since_epoch().count(),
                    std::memory_order_relaxed);
  }
  // Deadline `budget` from now.
  void set_deadline_after(std::chrono::nanoseconds budget) {
    set_deadline(Clock::now() +
                 std::chrono::duration_cast<Clock::duration>(budget));
  }
  void set_memory_budget(size_t bytes) {
    memory_budget_.store(bytes, std::memory_order_relaxed);
  }

  bool has_deadline() const {
    return deadline_.load(std::memory_order_relaxed) != kNoDeadline;
  }
  bool has_memory_budget() const {
    return memory_budget_.load(std::memory_order_relaxed) != SIZE_MAX;
  }

  // --- cancellation (thread- and async-signal-safe) ---

  void RequestCancel() const {
    cancelled_.store(true, std::memory_order_relaxed);
  }
  bool cancel_requested() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  // --- memory accounting (thread-safe; pairs must balance) ---

  void ChargeBytes(size_t bytes) const;
  void ReleaseBytes(size_t bytes) const;
  size_t live_bytes() const {
    return live_bytes_.load(std::memory_order_relaxed);
  }
  size_t peak_bytes() const {
    return peak_bytes_.load(std::memory_order_relaxed);
  }

  // --- polling ---

  // The safe-point check: returns the sticky first trip, probing the
  // cancellation flag, the accounted bytes, and (last — it costs a clock
  // read) the deadline. Cheap enough for per-candidate polling; the
  // governed hot paths call it at rung boundaries, not per node.
  GovernorTrip Check() const;

  // The sticky trip without re-probing the limits. kNone while untripped.
  GovernorTrip trip() const {
    return static_cast<GovernorTrip>(trip_.load(std::memory_order_relaxed));
  }

  // Check() as a Status: OK, or ResourceExhausted naming the trip and
  // `what` (the procedure at the safe point). Every limit — including
  // cancellation — maps to kResourceExhausted, keeping the library's
  // error taxonomy small; the precise reason is in the message and in
  // trip().
  Status CheckStatus(const char* what) const;

  // Forces the sticky trip (fault injection via base/failpoints, tests).
  void ForceTrip(GovernorTrip trip) const { RecordTrip(trip); }

 private:
  static constexpr int64_t kNoDeadline =
      std::numeric_limits<int64_t>::max();

  // Records `trip` as the sticky reason if none is recorded yet.
  void RecordTrip(GovernorTrip trip) const;

  std::atomic<int64_t> deadline_{kNoDeadline};  // Clock duration ticks
  std::atomic<size_t> memory_budget_{SIZE_MAX};
  mutable std::atomic<bool> cancelled_{false};
  mutable std::atomic<size_t> live_bytes_{0};
  mutable std::atomic<size_t> peak_bytes_{0};
  mutable std::atomic<int> trip_{0};
};

// Polls a possibly-null governor: nullptr is the unlimited governor.
inline GovernorTrip GovernorCheck(const ExecutionGovernor* governor) {
  return governor == nullptr ? GovernorTrip::kNone : governor->Check();
}

// Status-returning counterpart for construction-style procedures.
inline Status GovernorCheckStatus(const ExecutionGovernor* governor,
                                  const char* what) {
  return governor == nullptr ? Status::OK() : governor->CheckStatus(what);
}

// RAII charge of `bytes` of accounted memory against a possibly-null
// governor — the coarse node counters of the non-arena hot structures
// (constraint closures, complement rank-state sets, product automata).
// Charges in the constructor, releases the full accumulated amount in
// the destructor; Add() grows the charge as the structure grows.
class ScopedMemoryCharge {
 public:
  explicit ScopedMemoryCharge(const ExecutionGovernor* governor,
                              size_t bytes = 0)
      : governor_(governor) {
    Add(bytes);
  }
  ScopedMemoryCharge(const ScopedMemoryCharge&) = delete;
  ScopedMemoryCharge& operator=(const ScopedMemoryCharge&) = delete;
  ~ScopedMemoryCharge() {
    if (governor_ != nullptr && charged_ > 0) {
      governor_->ReleaseBytes(charged_);
    }
  }

  void Add(size_t bytes) {
    if (governor_ == nullptr || bytes == 0) return;
    governor_->ChargeBytes(bytes);
    charged_ += bytes;
  }
  size_t charged() const { return charged_; }

 private:
  const ExecutionGovernor* governor_;
  size_t charged_ = 0;
};

}  // namespace rav

#endif  // RAV_BASE_GOVERNOR_H_
