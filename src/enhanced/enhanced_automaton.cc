#include "enhanced/enhanced_automaton.h"

#include <set>
#include <sstream>

namespace rav {

Status EnhancedAutomaton::AddEqualityConstraint(RegisterPair regs, Dfa dfa,
                                                std::string description) {
  const int k = automaton_.num_registers();
  if (regs.i.value() < 0 || regs.i.value() >= k || regs.j.value() < 0 ||
      regs.j.value() >= k) {
    return Status::InvalidArgument("equality constraint registers bad");
  }
  if (dfa.alphabet_size() != automaton_.num_states()) {
    return Status::InvalidArgument(
        "equality constraint DFA alphabet must be the state set");
  }
  eq_constraints_.push_back(GlobalConstraint{regs.i, regs.j,
                                             /*is_equality=*/true,
                                             std::move(dfa),
                                             std::move(description),
                                             /*coreachable=*/{},
                                             /*loc=*/{}});
  eq_constraints_.back().coreachable =
      eq_constraints_.back().dfa.CoreachableStates();
  return Status::OK();
}

void EnhancedAutomaton::SetEqualityConstraintLocation(int index,
                                                      SourceLocation loc) {
  RAV_CHECK_GE(index, 0);
  RAV_CHECK_LT(index, static_cast<int>(eq_constraints_.size()));
  eq_constraints_[index].loc = loc;
}

Status EnhancedAutomaton::AddTupleConstraint(
    TupleInequalityConstraint constraint) {
  const int k = automaton_.num_registers();
  if (constraint.regs_a.size() != constraint.offs_a.size() ||
      constraint.regs_b.size() != constraint.offs_b.size() ||
      constraint.regs_a.size() != constraint.regs_b.size() ||
      constraint.regs_a.empty()) {
    return Status::InvalidArgument("tuple constraint arity mismatch");
  }
  for (int r : constraint.regs_a) {
    if (r < 0 || r >= k) {
      return Status::InvalidArgument("tuple constraint register bad");
    }
  }
  for (int r : constraint.regs_b) {
    if (r < 0 || r >= k) {
      return Status::InvalidArgument("tuple constraint register bad");
    }
  }
  if (constraint.pair_dfa.alphabet_size() != automaton_.num_states()) {
    return Status::InvalidArgument(
        "tuple constraint DFA alphabet must be the state set");
  }
  tuple_constraints_.push_back(std::move(constraint));
  return Status::OK();
}

Status EnhancedAutomaton::AddFinitenessConstraint(
    FinitenessConstraint constraint) {
  if (constraint.reg < 0 || constraint.reg >= automaton_.num_registers()) {
    return Status::InvalidArgument("finiteness constraint register bad");
  }
  if (constraint.selector.alphabet_size() != automaton_.num_states()) {
    return Status::InvalidArgument(
        "finiteness selector alphabet must be the state set");
  }
  finiteness_constraints_.push_back(std::move(constraint));
  return Status::OK();
}

std::string EnhancedAutomaton::ToString() const {
  std::ostringstream out;
  out << automaton_.ToString();
  for (const GlobalConstraint& c : eq_constraints_) {
    out << "  equality e=[" << (c.i.value() + 1) << "," << (c.j.value() + 1)
        << "] "
        << c.description << "\n";
  }
  for (const TupleInequalityConstraint& c : tuple_constraints_) {
    out << "  tuple-ineq arity " << c.arity() << " " << c.description << "\n";
  }
  for (const FinitenessConstraint& c : finiteness_constraints_) {
    out << "  finiteness reg " << (c.reg + 1) << " " << c.description << "\n";
  }
  return out.str();
}

Status CheckEnhancedRunConstraints(const EnhancedAutomaton& enhanced,
                                   const FiniteRun& run) {
  const size_t len = run.length();
  // Equality constraints (same semantics as in extended automata).
  for (const GlobalConstraint& c : enhanced.equality_constraints()) {
    for (size_t n = 0; n < len; ++n) {
      int state = c.dfa.initial();
      for (size_t m = n; m < len; ++m) {
        state = c.dfa.Next(state, run.states[m].value());
        if (!c.dfa.IsAccepting(state)) continue;
        if (run.values[n][c.i.value()] != run.values[m][c.j.value()]) {
          return Status::InvalidArgument(
              "equality constraint violated between positions " +
              std::to_string(n) + " and " + std::to_string(m));
        }
      }
    }
  }
  // Tuple inequality constraints.
  for (const TupleInequalityConstraint& c : enhanced.tuple_constraints()) {
    auto tuple_at = [&](size_t anchor, const std::vector<int>& regs,
                        const std::vector<int>& offs,
                        ValueTuple* out) -> bool {
      out->clear();
      for (size_t t = 0; t < regs.size(); ++t) {
        size_t pos = anchor + static_cast<size_t>(offs[t]);
        if (pos >= len) return false;  // tuple sticks out of the prefix
        out->push_back(run.values[pos][regs[t]]);
      }
      return true;
    };
    ValueTuple ta, tb;
    for (size_t n = 0; n < len; ++n) {
      int state = c.pair_dfa.initial();
      for (size_t m = n; m < len; ++m) {
        state = c.pair_dfa.Next(state, run.states[m].value());
        if (!c.pair_dfa.IsAccepting(state)) continue;
        if (!tuple_at(n, c.regs_a, c.offs_a, &ta)) continue;
        if (!tuple_at(m, c.regs_b, c.offs_b, &tb)) continue;
        if (n == m && c.regs_a == c.regs_b && c.offs_a == c.offs_b) {
          continue;  // a tuple is never required to differ from itself
        }
        if (ta == tb) {
          return Status::InvalidArgument(
              "tuple inequality constraint violated between anchors " +
              std::to_string(n) + " and " + std::to_string(m) +
              (c.description.empty() ? "" : " (" + c.description + ")"));
        }
      }
    }
  }
  return Status::OK();
}

Status ValidateEnhancedRunPrefix(const EnhancedAutomaton& enhanced,
                                 const FiniteRun& run, bool require_initial) {
  Database db{enhanced.automaton().schema()};
  RAV_RETURN_IF_ERROR(
      ValidateRunPrefix(enhanced.automaton(), db, run, require_initial));
  return CheckEnhancedRunConstraints(enhanced, run);
}

std::vector<DataValue> SelectedValues(const FinitenessConstraint& constraint,
                                      const FiniteRun& run) {
  std::set<DataValue> values;
  int state = constraint.selector.initial();
  for (size_t h = 0; h < run.length(); ++h) {
    state = constraint.selector.Next(state, run.states[h].value());
    if (constraint.selector.IsAccepting(state)) {
      values.insert(run.values[h][constraint.reg]);
    }
  }
  return std::vector<DataValue>(values.begin(), values.end());
}

}  // namespace rav
