#include "enhanced/theorem24.h"

#include <vector>

#include "base/metrics.h"
#include "base/trace.h"
#include "projection/lemma21.h"
#include "ra/transform.h"

namespace rav {

namespace {

// Does element `element` of `guard` occur (class-wise) in a positive
// relational literal?
bool InPositiveLiteral(const Type& guard, int element) {
  int cls = guard.ClassOf(element);
  for (const TypeAtom& atom : guard.atoms()) {
    if (!atom.positive) continue;
    for (int c : atom.args) {
      if (c == cls) return true;
    }
  }
  return false;
}

// The component resolution of one argument class of a relational literal:
// a visible register with a position offset, a hidden register exposed by
// an x̄-element, or unresolvable.
struct Component {
  enum class Kind { kVisible, kHiddenX, kUnresolvable };
  Kind kind = Kind::kUnresolvable;
  int reg = -1;
  int off = 0;
};

Component ResolveComponent(const Type& guard, int cls, int k, int m) {
  Component out;
  // Prefer a visible x element, then a visible y element, then any x.
  for (int i = 0; i < m; ++i) {
    if (guard.ClassOf(i) == cls) {
      out.kind = Component::Kind::kVisible;
      out.reg = i;
      out.off = 0;
      return out;
    }
  }
  for (int i = 0; i < m; ++i) {
    if (guard.ClassOf(k + i) == cls) {
      out.kind = Component::Kind::kVisible;
      out.reg = i;
      out.off = 1;
      return out;
    }
  }
  for (int i = m; i < k; ++i) {
    if (guard.ClassOf(i) == cls) {
      out.kind = Component::Kind::kHiddenX;
      out.reg = i;
      out.off = 0;
      return out;
    }
  }
  return out;
}

// DFA over the state alphabet accepting factors whose first symbol lies
// in `first` and whose last symbol lies in `last` (length >= 1).
Dfa AnchoredFactorDfa(int num_states, const std::vector<bool>& first,
                      const std::vector<bool>& last) {
  // States: 0 start, 1 active-accepting, 2 active-nonaccepting, 3 dead.
  Dfa dfa(num_states, 4, 0);
  for (int q = 0; q < num_states; ++q) {
    dfa.SetTransition(0, q, first[q] ? (last[q] ? 1 : 2) : 3);
    dfa.SetTransition(1, q, last[q] ? 1 : 2);
    dfa.SetTransition(2, q, last[q] ? 1 : 2);
    dfa.SetTransition(3, q, 3);
  }
  dfa.SetAccepting(1);
  return dfa;
}

}  // namespace

Result<EnhancedAutomaton> ProjectWithHiddenDatabase(
    const RegisterAutomaton& automaton, int m, Theorem24Stats* stats,
    const Theorem24Options& options) {
  RAV_TRACE_SPAN("enhanced/theorem24");
  RAV_METRIC_COUNT("enhanced/theorem24/projections", 1);
  const int k = automaton.num_registers();
  if (m < 0 || m > k) {
    return Status::InvalidArgument("ProjectWithHiddenDatabase: bad m");
  }

  RegisterAutomaton completed = automaton;
  if (options.complete_first) {
    RAV_ASSIGN_OR_RETURN(
        completed, Completed(automaton, options.max_completed_transitions));
  }
  RegisterAutomaton sd =
      PruneFrontierIncompatibleTransitions(MakeStateDriven(completed));
  RAV_ASSIGN_OR_RETURN(PropagationAutomata propagation,
                       PropagationAutomata::Build(sd));

  // The unique guard per state.
  const int num_constants = sd.schema().num_constants();
  const Type trivial(2 * k, num_constants);
  std::vector<const Type*> guard_of(sd.num_states(), &trivial);
  for (int ti = 0; ti < sd.num_transitions(); ++ti) {
    guard_of[sd.transition(ti).from.value()] = &sd.transition(ti).guard;
  }

  // --- B's automaton: visible equality structure over an empty schema ---
  RegisterAutomaton b(m, Schema());
  for (StateId s : sd.States()) {
    StateId id = b.AddState(sd.state_name(s));
    RAV_CHECK_EQ(id.value(), s.value());
    b.SetInitial(s, sd.IsInitial(s));
    b.SetFinal(s, sd.IsFinal(s));
  }
  for (int ti = 0; ti < sd.num_transitions(); ++ti) {
    const RaTransition& t = sd.transition(ti);
    TypeBuilder builder(2 * m, 0);
    auto visible_element = [&](int e) { return e < m ? e : m + (e - k); };
    std::vector<int> visible;
    for (int i = 0; i < m; ++i) visible.push_back(i);
    for (int i = 0; i < m; ++i) visible.push_back(k + i);
    for (size_t p = 0; p < visible.size(); ++p) {
      for (size_t q = p + 1; q < visible.size(); ++q) {
        if (t.guard.AreEqual(visible[p], visible[q])) {
          builder.AddEq(ElementIndex(visible_element(visible[p])),
                        ElementIndex(visible_element(visible[q])));
        } else if (t.guard.AreDistinct(visible[p], visible[q])) {
          builder.AddNeq(ElementIndex(visible_element(visible[p])),
                         ElementIndex(visible_element(visible[q])));
        }
      }
    }
    Result<Type> guard = builder.Build();
    RAV_CHECK(guard.ok());
    b.AddTransition(t.from, std::move(guard).value(), t.to);
  }

  EnhancedAutomaton enhanced(std::move(b));
  const int num_states = sd.num_states();
  Theorem24Stats local_stats;
  local_stats.completed_transitions = completed.num_transitions();
  local_stats.state_driven_states = num_states;

  // --- Equality and inequality constraints (Lemma 21) ---
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < m; ++j) {
      RAV_RETURN_IF_ERROR(GovernorCheckStatus(
          options.governor, "ProjectWithHiddenDatabase: lemma21"));
      const Dfa& eq = propagation.EqualityDfa(i, j);
      if (!eq.IsEmptyLanguage()) {
        RAV_RETURN_IF_ERROR(enhanced.AddEqualityConstraint(
            RegisterPair{RegisterId(i), RegisterId(j)}, eq,
            "thm24 e=[" + std::to_string(i + 1) + "," +
                std::to_string(j + 1) + "]"));
        ++local_stats.num_equality_constraints;
      }
      const Dfa& neq = propagation.InequalityDfa(i, j);
      if (!neq.IsEmptyLanguage()) {
        TupleInequalityConstraint c;
        c.pair_dfa = neq;
        c.regs_a = {i};
        c.offs_a = {0};
        c.regs_b = {j};
        c.offs_b = {0};
        c.description = "thm24 e≠[" + std::to_string(i + 1) + "," +
                        std::to_string(j + 1) + "]";
        RAV_RETURN_IF_ERROR(enhanced.AddTupleConstraint(std::move(c)));
        ++local_stats.num_inequality_constraints;
      }
    }
  }

  // --- Finiteness constraints ---
  // Position h is selected for register i iff x_i occurs in a positive
  // literal of δ_h or y_i occurs in one of δ_{h-1}. The selector tracks
  // the last two symbols: state 0 = start; 1 + q = one symbol read;
  // 1 + Q + prev*Q + cur = two or more symbols read.
  for (int i = 0; i < m; ++i) {
    // The selector build below is cubic in the state count, so each
    // register is one governor-checked unit of work.
    RAV_RETURN_IF_ERROR(GovernorCheckStatus(
        options.governor, "ProjectWithHiddenDatabase: finiteness"));
    bool any = false;
    for (StateId q : sd.States()) {
      any = any || InPositiveLiteral(*guard_of[q.value()], i) ||
            InPositiveLiteral(*guard_of[q.value()], k + i);
    }
    if (!any) continue;
    const int n = 1 + num_states + num_states * num_states;
    Dfa selector(num_states, n, 0);
    auto pair_state = [&](int prev, int cur) {
      return 1 + num_states + prev * num_states + cur;
    };
    for (int q = 0; q < num_states; ++q) {
      selector.SetTransition(0, q, 1 + q);
      selector.SetAccepting(1 + q, InPositiveLiteral(*guard_of[q], i));
      for (int q2 = 0; q2 < num_states; ++q2) {
        selector.SetTransition(1 + q, q2, pair_state(q, q2));
        selector.SetAccepting(
            pair_state(q, q2),
            InPositiveLiteral(*guard_of[q2], i) ||
                InPositiveLiteral(*guard_of[q], k + i));
        for (int q3 = 0; q3 < num_states; ++q3) {
          selector.SetTransition(pair_state(q, q2), q3, pair_state(q2, q3));
        }
      }
    }
    FinitenessConstraint fc;
    fc.reg = i;
    fc.selector = selector.Minimize();
    fc.description = "thm24 adom positions of register " + std::to_string(i + 1);
    RAV_RETURN_IF_ERROR(enhanced.AddFinitenessConstraint(std::move(fc)));
    ++local_stats.num_finiteness_constraints;
  }

  // --- Tuple inequality constraints from (¬R, R) literal pairs ---
  // For every negative literal in some guard and positive literal of the
  // same relation in some (possibly the same) guard: whenever the hidden
  // components are ~-connected across the factor, the visible components
  // must differ as tuples. Both anchor orders are emitted.
  struct LiteralSite {
    const Type* guard;
    std::vector<bool> states;  // states firing this guard
    const TypeAtom* atom;
  };
  std::vector<LiteralSite> negatives, positives;
  {
    // Group states by guard identity.
    std::vector<const Type*> distinct_guards;
    std::vector<std::vector<bool>> guard_states;
    for (StateId q : sd.States()) {
      if (sd.TransitionsFrom(q).empty()) continue;
      int found = -1;
      for (size_t g = 0; g < distinct_guards.size(); ++g) {
        if (*distinct_guards[g] == *guard_of[q.value()]) {
          found = static_cast<int>(g);
          break;
        }
      }
      if (found < 0) {
        found = static_cast<int>(distinct_guards.size());
        distinct_guards.push_back(guard_of[q.value()]);
        guard_states.emplace_back(num_states, false);
      }
      guard_states[found][q.value()] = true;
    }
    for (size_t g = 0; g < distinct_guards.size(); ++g) {
      for (const TypeAtom& atom : distinct_guards[g]->atoms()) {
        LiteralSite site{distinct_guards[g], guard_states[g], &atom};
        (atom.positive ? positives : negatives).push_back(site);
      }
    }
  }
  for (const LiteralSite& neg : negatives) {
    for (const LiteralSite& pos : positives) {
      if (neg.atom->relation != pos.atom->relation) continue;
      RAV_RETURN_IF_ERROR(GovernorCheckStatus(
          options.governor, "ProjectWithHiddenDatabase: literal pairs"));
      // Resolve components on both sides.
      bool expressible = true;
      TupleInequalityConstraint forward;  // neg anchor first
      std::vector<std::pair<int, int>> hidden_pairs;  // (reg at neg, at pos)
      for (size_t t = 0; t < neg.atom->args.size() && expressible; ++t) {
        Component cn =
            ResolveComponent(*neg.guard, neg.atom->args[t], k, m);
        Component cp =
            ResolveComponent(*pos.guard, pos.atom->args[t], k, m);
        if (cn.kind == Component::Kind::kVisible &&
            cp.kind == Component::Kind::kVisible) {
          forward.regs_a.push_back(cn.reg);
          forward.offs_a.push_back(cn.off);
          forward.regs_b.push_back(cp.reg);
          forward.offs_b.push_back(cp.off);
        } else if (cn.kind == Component::Kind::kHiddenX &&
                   cp.kind == Component::Kind::kHiddenX) {
          hidden_pairs.emplace_back(cn.reg, cp.reg);
        } else {
          expressible = false;
        }
      }
      if (!expressible) {
        ++local_stats.skipped_literal_pairs;
        continue;
      }
      if (forward.regs_a.empty()) {
        // All components hidden: the constraint has no visible content
        // (it would constrain the database only).
        ++local_stats.skipped_literal_pairs;
        continue;
      }
      // Forward order: neg at n, pos at n'.
      {
        Dfa pair_dfa =
            AnchoredFactorDfa(num_states, neg.states, pos.states);
        for (const auto& [rn, rp] : hidden_pairs) {
          pair_dfa =
              pair_dfa.Intersect(propagation.EqualityDfa(rn, rp)).Minimize();
        }
        if (!pair_dfa.IsEmptyLanguage()) {
          TupleInequalityConstraint c = forward;
          c.pair_dfa = std::move(pair_dfa);
          c.description = "thm24 ¬R/R pair (" +
                          sd.schema().relation_name(neg.atom->relation) + ")";
          RAV_RETURN_IF_ERROR(enhanced.AddTupleConstraint(std::move(c)));
          ++local_stats.num_tuple_constraints;
        }
      }
      // Reverse order: pos at n, neg at n'.
      {
        Dfa pair_dfa =
            AnchoredFactorDfa(num_states, pos.states, neg.states);
        for (const auto& [rn, rp] : hidden_pairs) {
          pair_dfa =
              pair_dfa.Intersect(propagation.EqualityDfa(rp, rn)).Minimize();
        }
        if (!pair_dfa.IsEmptyLanguage()) {
          TupleInequalityConstraint c;
          c.pair_dfa = std::move(pair_dfa);
          c.regs_a = forward.regs_b;
          c.offs_a = forward.offs_b;
          c.regs_b = forward.regs_a;
          c.offs_b = forward.offs_a;
          c.description = "thm24 R/¬R pair (" +
                          sd.schema().relation_name(neg.atom->relation) + ")";
          RAV_RETURN_IF_ERROR(enhanced.AddTupleConstraint(std::move(c)));
          ++local_stats.num_tuple_constraints;
        }
      }
    }
  }

  RAV_METRIC_COUNT("enhanced/theorem24/equality_constraints",
                   local_stats.num_equality_constraints);
  RAV_METRIC_COUNT("enhanced/theorem24/tuple_constraints",
                   local_stats.num_tuple_constraints);
  RAV_METRIC_COUNT("enhanced/theorem24/finiteness_constraints",
                   local_stats.num_finiteness_constraints);
  RAV_METRIC_COUNT("enhanced/theorem24/skipped_literal_pairs",
                   local_stats.skipped_literal_pairs);
  if (stats != nullptr) *stats = local_stats;
  return enhanced;
}

}  // namespace rav
