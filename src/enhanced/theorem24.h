#ifndef RAV_ENHANCED_THEOREM24_H_
#define RAV_ENHANCED_THEOREM24_H_

#include "base/governor.h"
#include "base/status.h"
#include "enhanced/enhanced_automaton.h"
#include "ra/register_automaton.h"

namespace rav {

struct Theorem24Options {
  // Completing the automaton first makes the synthesized constraints
  // exact (every (in)equality and relational fact is decided), but the
  // completion is exponential in the schema: a single binary relation
  // over 2k variables multiplies each transition into thousands. With the
  // default (false) the construction consumes the explicitly-forced
  // structure only — sound, and exact whenever the input guards already
  // decide the literals the constraints need (as in Example 23).
  bool complete_first = false;
  size_t max_completed_transitions = 1u << 20;
  // Resource governor (nullptr = unlimited): polled between constraint
  // syntheses — per Lemma 21 register pair, per finiteness selector, per
  // (¬R, R) literal pair. A trip aborts with ResourceExhausted.
  const ExecutionGovernor* governor = nullptr;
};

struct Theorem24Stats {
  int completed_transitions = 0;
  int state_driven_states = 0;
  int num_equality_constraints = 0;
  int num_inequality_constraints = 0;
  int num_tuple_constraints = 0;
  int num_finiteness_constraints = 0;
  // Literal pairs whose components could not be expressed in the anchored
  // constraint model (see the header comment) and were dropped.
  int skipped_literal_pairs = 0;
};

// Theorem 24: the projection of a register automaton with a database onto
// its first m registers, *hiding the database entirely*, is captured by an
// enhanced automaton B with no database:
//   Reg(B) = ∪_D Π_m(Reg(D, A)).
//
// Mechanized construction (after completing and state-driving A):
//   * B's transition types are the visible equality structure of A's
//     types (relational and constant literals dropped);
//   * equality constraints e=ᵢⱼ come from the Lemma 21 propagation
//     automata, inequality constraints e≠ᵢⱼ are emitted as arity-1 tuple
//     constraints (the paper notes this subsumption);
//   * a finiteness constraint per visible register selects the positions
//     where the register occurs in a positive relational literal (its
//     value is then forced into the active domain, which is finite);
//   * a tuple inequality constraint per pair (¬R-literal, R-literal):
//     a negated atom can never coincide valuewise with an asserted atom,
//     so whenever the hidden components are ~-connected across the factor
//     (checked by intersecting the pair DFA with the Lemma 21 equality
//     DFAs), the visible component tuples must differ.
//
// Scope notes (documented substitutions, see DESIGN.md): position
// selectors are prefix-DFAs over node-level adom membership of visible
// registers; hidden literal components are matched when both sides expose
// an x̄-element of the component class (pairs that cannot be expressed
// this way are dropped and counted in `skipped_literal_pairs`).
Result<EnhancedAutomaton> ProjectWithHiddenDatabase(
    const RegisterAutomaton& automaton, int m,
    Theorem24Stats* stats = nullptr, const Theorem24Options& options = {});

}  // namespace rav

#endif  // RAV_ENHANCED_THEOREM24_H_
