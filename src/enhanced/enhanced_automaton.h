#ifndef RAV_ENHANCED_ENHANCED_AUTOMATON_H_
#define RAV_ENHANCED_ENHANCED_AUTOMATON_H_

#include <string>
#include <vector>

#include "automata/dfa.h"
#include "base/status.h"
#include "era/extended_automaton.h"
#include "ra/register_automaton.h"
#include "ra/run.h"

namespace rav {

// A tuple inequality constraint (Section 6). The paper allows arbitrary
// MSO pair selectors φ(ā, β̄); this library uses the factor-anchored form
// that the Theorem 24 construction actually produces (and that
// generalizes the e≠ constraints of extended automata, as the paper
// notes): for all anchor positions n ≤ n' with q_n ... q_{n'} ∈
// L(pair_dfa), the value tuples
//   ( d_{n + offs_a[t]}[regs_a[t]] )_t   and   ( d_{n' + offs_b[t]}[regs_b[t]] )_t
// must differ (as tuples). Plain inequality constraints are the arity-1,
// offset-0 special case.
struct TupleInequalityConstraint {
  Dfa pair_dfa = Dfa(1, 1, 0);  // placeholder; replaced at construction
  std::vector<int> regs_a;
  std::vector<int> offs_a;  // small non-negative offsets (0 or 1 in Thm 24)
  std::vector<int> regs_b;
  std::vector<int> offs_b;
  std::string description;

  int arity() const { return static_cast<int>(regs_a.size()); }
};

// A finiteness constraint (Section 6): a position selector together with
// a register; the run must use only finitely many distinct values in that
// register over the selected positions. The selector is a prefix DFA:
// position h is selected iff the DFA accepts q_0 ... q_h. (The paper uses
// MSO selectors; the Theorem 24 construction only needs selectors
// determined by the last two states, which prefix DFAs cover.)
struct FinitenessConstraint {
  int reg = 0;
  Dfa selector = Dfa(1, 1, 0);  // placeholder; replaced at construction
  std::string description;
};

// An enhanced automaton (Section 6): a register automaton over an *empty*
// relational signature augmented with global equality constraints, tuple
// inequality constraints, and finiteness constraints. This is the model
// that captures projections of register automata when the database is
// hidden (Theorem 24).
class EnhancedAutomaton {
 public:
  explicit EnhancedAutomaton(RegisterAutomaton automaton)
      : automaton_(std::move(automaton)) {}

  const RegisterAutomaton& automaton() const { return automaton_; }

  Status AddEqualityConstraint(RegisterPair regs, Dfa dfa,
                               std::string description = "");
  Status AddTupleConstraint(TupleInequalityConstraint constraint);
  Status AddFinitenessConstraint(FinitenessConstraint constraint);

  // Records the spec-file position of equality constraint `index` (the
  // counterpart of ExtendedAutomaton::SetConstraintLocation).
  void SetEqualityConstraintLocation(int index, SourceLocation loc);

  const std::vector<GlobalConstraint>& equality_constraints() const {
    return eq_constraints_;
  }
  const std::vector<TupleInequalityConstraint>& tuple_constraints() const {
    return tuple_constraints_;
  }
  const std::vector<FinitenessConstraint>& finiteness_constraints() const {
    return finiteness_constraints_;
  }

  std::string ToString() const;

 private:
  RegisterAutomaton automaton_;
  std::vector<GlobalConstraint> eq_constraints_;
  std::vector<TupleInequalityConstraint> tuple_constraints_;
  std::vector<FinitenessConstraint> finiteness_constraints_;
};

// Checks the equality and tuple-inequality constraints on a finite run
// prefix (finiteness constraints cannot be violated by a finite prefix).
Status CheckEnhancedRunConstraints(const EnhancedAutomaton& enhanced,
                                   const FiniteRun& run);

// Full prefix validity: underlying automaton plus constraints.
Status ValidateEnhancedRunPrefix(const EnhancedAutomaton& enhanced,
                                 const FiniteRun& run,
                                 bool require_initial = true);

// The distinct values of `run` in `constraint.reg` over the selected
// positions — the quantity the finiteness constraint bounds.
std::vector<DataValue> SelectedValues(const FinitenessConstraint& constraint,
                                      const FiniteRun& run);

}  // namespace rav

#endif  // RAV_ENHANCED_ENHANCED_AUTOMATON_H_
