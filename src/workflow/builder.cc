#include "workflow/builder.h"

namespace rav {

WorkflowBuilder::WorkflowBuilder(Schema schema)
    : schema_(std::move(schema)) {}

int WorkflowBuilder::AddAttribute(const std::string& name) {
  RAV_CHECK(!attributes_frozen_);
  RAV_CHECK(AttributeIndex(name) < 0);
  attribute_names_.push_back(name);
  return num_attributes() - 1;
}

int WorkflowBuilder::AttributeIndex(const std::string& name) const {
  for (size_t i = 0; i < attribute_names_.size(); ++i) {
    if (attribute_names_[i] == name) return static_cast<int>(i);
  }
  return -1;
}

void WorkflowBuilder::AddStage(const std::string& name, bool initial,
                               bool accepting) {
  RAV_CHECK(FindStage(name) < 0);
  stages_.push_back(StageDef{name, initial, accepting});
}

int WorkflowBuilder::FindStage(const std::string& name) const {
  for (size_t i = 0; i < stages_.size(); ++i) {
    if (stages_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

WorkflowBuilder::Guard WorkflowBuilder::NewGuard() {
  attributes_frozen_ = true;
  return Guard(this);
}

WorkflowBuilder::Guard::Guard(WorkflowBuilder* owner)
    : owner_(owner),
      builder_(2 * owner->num_attributes(),
               owner->schema_.num_constants()) {}

int WorkflowBuilder::Guard::Resolve(const std::string& ref) {
  const int k = owner_->num_attributes();
  if (!ref.empty() && ref[0] == '$') {
    ConstantId c = owner_->schema_.FindConstant(ref.substr(1));
    if (c < 0) {
      deferred_error_ =
          Status::NotFound("workflow guard: unknown constant " + ref);
      return -1;
    }
    return 2 * k + c;
  }
  bool next = !ref.empty() && ref.back() == '+';
  std::string name = next ? ref.substr(0, ref.size() - 1) : ref;
  int attr = owner_->AttributeIndex(name);
  if (attr < 0) {
    deferred_error_ =
        Status::NotFound("workflow guard: unknown attribute " + ref);
    return -1;
  }
  return next ? k + attr : attr;
}

WorkflowBuilder::Guard& WorkflowBuilder::Guard::Keeps(
    const std::string& attr) {
  return Same(attr, attr + "+");
}

WorkflowBuilder::Guard& WorkflowBuilder::Guard::KeepsAllExcept(
    const std::vector<std::string>& changing) {
  for (const std::string& attr : owner_->attribute_names_) {
    bool changes = false;
    for (const std::string& c : changing) changes = changes || c == attr;
    if (!changes) Keeps(attr);
  }
  return *this;
}

WorkflowBuilder::Guard& WorkflowBuilder::Guard::Changes(
    const std::string& attr) {
  return Different(attr, attr + "+");
}

WorkflowBuilder::Guard& WorkflowBuilder::Guard::Same(
    const std::string& ref_a, const std::string& ref_b) {
  int a = Resolve(ref_a);
  int b = Resolve(ref_b);
  if (a >= 0 && b >= 0) builder_.AddEq(ElementIndex(a), ElementIndex(b));
  return *this;
}

WorkflowBuilder::Guard& WorkflowBuilder::Guard::Different(
    const std::string& ref_a, const std::string& ref_b) {
  int a = Resolve(ref_a);
  int b = Resolve(ref_b);
  if (a >= 0 && b >= 0) builder_.AddNeq(ElementIndex(a), ElementIndex(b));
  return *this;
}

void WorkflowBuilder::Guard::AddAtom(const std::string& relation,
                                     const std::vector<std::string>& refs,
                                     bool positive) {
  RelationId rel = owner_->schema_.FindRelation(relation);
  if (rel < 0) {
    deferred_error_ =
        Status::NotFound("workflow guard: unknown relation " + relation);
    return;
  }
  if (owner_->schema_.arity(rel) != static_cast<int>(refs.size())) {
    deferred_error_ = Status::InvalidArgument(
        "workflow guard: arity mismatch for relation " + relation);
    return;
  }
  std::vector<ElementIndex> elements;
  for (const std::string& ref : refs) {
    int e = Resolve(ref);
    if (e < 0) return;
    elements.push_back(ElementIndex(e));
  }
  builder_.AddAtom(rel, std::move(elements), positive);
}

WorkflowBuilder::Guard& WorkflowBuilder::Guard::Holds(
    const std::string& relation, const std::vector<std::string>& refs) {
  AddAtom(relation, refs, /*positive=*/true);
  return *this;
}

WorkflowBuilder::Guard& WorkflowBuilder::Guard::Fails(
    const std::string& relation, const std::vector<std::string>& refs) {
  AddAtom(relation, refs, /*positive=*/false);
  return *this;
}

Status WorkflowBuilder::Guard::ConnectTransition(
    const std::string& from_stage, const std::string& to_stage) {
  if (!deferred_error_.ok()) {
    owner_->first_error_ = deferred_error_;
    return deferred_error_;
  }
  if (owner_->FindStage(from_stage) < 0 || owner_->FindStage(to_stage) < 0) {
    Status s = Status::NotFound("workflow: unknown stage in transition " +
                                from_stage + " -> " + to_stage);
    owner_->first_error_ = s;
    return s;
  }
  Result<Type> guard = builder_.Build();
  if (!guard.ok()) {
    owner_->first_error_ = guard.status();
    return guard.status();
  }
  owner_->transitions_.push_back(
      TransitionDef{from_stage, std::move(guard).value(), to_stage});
  return Status::OK();
}

Result<RegisterAutomaton> WorkflowBuilder::Build() const {
  if (!first_error_.ok()) return first_error_;
  RegisterAutomaton automaton(num_attributes(), schema_);
  bool any_initial = false;
  bool any_accepting = false;
  for (const StageDef& stage : stages_) {
    StateId s = automaton.AddState(stage.name);
    automaton.SetInitial(s, stage.initial);
    automaton.SetFinal(s, stage.accepting);
    any_initial = any_initial || stage.initial;
    any_accepting = any_accepting || stage.accepting;
  }
  if (!any_initial) {
    return Status::FailedPrecondition("workflow: no initial stage");
  }
  if (!any_accepting) {
    return Status::FailedPrecondition(
        "workflow: no accepting stage (Büchi acceptance needs one)");
  }
  for (const TransitionDef& t : transitions_) {
    automaton.AddTransition(automaton.FindState(t.from), t.guard,
                            automaton.FindState(t.to));
  }
  return automaton;
}

}  // namespace rav
