#ifndef RAV_WORKFLOW_BUILDER_H_
#define RAV_WORKFLOW_BUILDER_H_

#include <string>
#include <vector>

#include "base/status.h"
#include "ra/register_automaton.h"
#include "relational/schema.h"
#include "types/type.h"

namespace rav {

// A friendly construction layer for data-driven workflows in the style of
// the paper's introduction (the manuscript-reviewing system): named
// attributes become registers, named stages become Büchi states, and
// guards are written against attribute names instead of register indices.
//
//   WorkflowBuilder wf(schema);
//   wf.AddAttribute("paper");
//   wf.AddAttribute("reviewer");
//   wf.AddStage("submitted", /*initial=*/true);
//   wf.AddStage("under_review");
//   wf.NewGuard()
//       .Keeps("paper")                                // x = y for paper
//       .Holds("Prefers", {"reviewer+", "topic"})      // DB lookup on y
//       .ConnectTransition("submitted", "under_review");
//   RegisterAutomaton a = wf.Build().value();
//
// Attribute references in guards:
//   "attr"  — the value before the transition (an x̄ variable)
//   "attr+" — the value after the transition (a ȳ variable)
//   "$name" — a constant symbol of the schema
class WorkflowBuilder {
 public:
  explicit WorkflowBuilder(Schema schema = Schema());

  // Attributes (registers); all attributes must be declared before the
  // first guard is created. Returns the register index.
  int AddAttribute(const std::string& name);
  int AttributeIndex(const std::string& name) const;  // -1 if unknown
  int num_attributes() const {
    return static_cast<int>(attribute_names_.size());
  }
  const std::vector<std::string>& attribute_names() const {
    return attribute_names_;
  }

  // Stages (states).
  void AddStage(const std::string& name, bool initial = false,
                bool accepting = false);

  // Fluent guard assembly; finished by ConnectTransition.
  class Guard {
   public:
    Guard& Keeps(const std::string& attr);
    Guard& KeepsAllExcept(const std::vector<std::string>& changing);
    Guard& Changes(const std::string& attr);
    Guard& Same(const std::string& ref_a, const std::string& ref_b);
    Guard& Different(const std::string& ref_a, const std::string& ref_b);
    Guard& Holds(const std::string& relation,
                 const std::vector<std::string>& refs);
    Guard& Fails(const std::string& relation,
                 const std::vector<std::string>& refs);

    // Finishes the guard and records the transition.
    Status ConnectTransition(const std::string& from_stage,
                             const std::string& to_stage);

   private:
    friend class WorkflowBuilder;
    explicit Guard(WorkflowBuilder* owner);

    int Resolve(const std::string& ref);  // -1 + deferred error if unknown
    void AddAtom(const std::string& relation,
                 const std::vector<std::string>& refs, bool positive);

    WorkflowBuilder* owner_;
    TypeBuilder builder_;
    Status deferred_error_;
  };

  Guard NewGuard();

  // Assembles the automaton. Fails if a deferred guard error occurred, or
  // no stage is initial / accepting.
  Result<RegisterAutomaton> Build() const;

 private:
  struct StageDef {
    std::string name;
    bool initial = false;
    bool accepting = false;
  };
  struct TransitionDef {
    std::string from;
    Type guard;
    std::string to;
  };

  int FindStage(const std::string& name) const;

  Schema schema_;
  std::vector<std::string> attribute_names_;
  std::vector<StageDef> stages_;
  std::vector<TransitionDef> transitions_;
  bool attributes_frozen_ = false;
  Status first_error_;
};

}  // namespace rav

#endif  // RAV_WORKFLOW_BUILDER_H_
