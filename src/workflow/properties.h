#ifndef RAV_WORKFLOW_PROPERTIES_H_
#define RAV_WORKFLOW_PROPERTIES_H_

#include <string>
#include <vector>

#include "base/status.h"
#include "era/ltlfo.h"
#include "ra/register_automaton.h"

namespace rav {

// LTL-FO property assembly against attribute names instead of register
// indices: the workflow-level counterpart of Definition 11.
//
//   PropertyBuilder props(workflow, attribute_names);
//   props.DefineKept("customer_kept", "customer");
//   props.DefineSame("self_deal", "approver", "customer");
//   auto property = props.Parse("G !self_deal & G customer_kept");
//
// Attribute references follow the WorkflowBuilder convention: "attr" is
// the value before the transition, "attr+" after it.
class PropertyBuilder {
 public:
  PropertyBuilder(const RegisterAutomaton& automaton,
                  std::vector<std::string> attribute_names);

  // Proposition: the attribute keeps its value across the step.
  Status DefineKept(const std::string& name, const std::string& attr);
  // Proposition: two references are equal (resp. distinct).
  Status DefineSame(const std::string& name, const std::string& ref_a,
                    const std::string& ref_b);
  Status DefineDifferent(const std::string& name, const std::string& ref_a,
                         const std::string& ref_b);
  // Proposition: a relational lookup holds of the references.
  Status DefineHolds(const std::string& name, const std::string& relation,
                     const std::vector<std::string>& refs);

  // Parses an LTL formula over the defined proposition names and bundles
  // it with the interpretations.
  Result<LtlFoProperty> Parse(const std::string& ltl_text) const;

 private:
  Result<Term> Resolve(const std::string& ref) const;
  Status Define(const std::string& name, Formula formula);

  const RegisterAutomaton* automaton_;
  std::vector<std::string> attribute_names_;
  std::vector<std::string> proposition_names_;
  std::vector<Formula> propositions_;
};

}  // namespace rav

#endif  // RAV_WORKFLOW_PROPERTIES_H_
