#include "workflow/properties.h"

namespace rav {

PropertyBuilder::PropertyBuilder(const RegisterAutomaton& automaton,
                                 std::vector<std::string> attribute_names)
    : automaton_(&automaton),
      attribute_names_(std::move(attribute_names)) {
  RAV_CHECK_EQ(static_cast<int>(attribute_names_.size()),
               automaton.num_registers());
}

Result<Term> PropertyBuilder::Resolve(const std::string& ref) const {
  const int k = automaton_->num_registers();
  if (!ref.empty() && ref[0] == '$') {
    ConstantId c = automaton_->schema().FindConstant(ref.substr(1));
    if (c < 0) return Status::NotFound("unknown constant " + ref);
    return Term::Const(c);
  }
  bool next = !ref.empty() && ref.back() == '+';
  std::string name = next ? ref.substr(0, ref.size() - 1) : ref;
  for (size_t i = 0; i < attribute_names_.size(); ++i) {
    if (attribute_names_[i] == name) {
      return Term::Var(static_cast<int>(i) + (next ? k : 0));
    }
  }
  return Status::NotFound("unknown attribute " + ref);
}

Status PropertyBuilder::Define(const std::string& name, Formula formula) {
  for (const std::string& existing : proposition_names_) {
    if (existing == name) {
      return Status::InvalidArgument("proposition '" + name +
                                     "' already defined");
    }
  }
  proposition_names_.push_back(name);
  propositions_.push_back(std::move(formula));
  return Status::OK();
}

Status PropertyBuilder::DefineKept(const std::string& name,
                                   const std::string& attr) {
  return DefineSame(name, attr, attr + "+");
}

Status PropertyBuilder::DefineSame(const std::string& name,
                                   const std::string& ref_a,
                                   const std::string& ref_b) {
  auto a = Resolve(ref_a);
  if (!a.ok()) return a.status();
  auto b = Resolve(ref_b);
  if (!b.ok()) return b.status();
  return Define(name, Formula::Eq(*a, *b));
}

Status PropertyBuilder::DefineDifferent(const std::string& name,
                                        const std::string& ref_a,
                                        const std::string& ref_b) {
  auto a = Resolve(ref_a);
  if (!a.ok()) return a.status();
  auto b = Resolve(ref_b);
  if (!b.ok()) return b.status();
  return Define(name, Formula::Neq(*a, *b));
}

Status PropertyBuilder::DefineHolds(const std::string& name,
                                    const std::string& relation,
                                    const std::vector<std::string>& refs) {
  RelationId rel = automaton_->schema().FindRelation(relation);
  if (rel < 0) return Status::NotFound("unknown relation " + relation);
  if (automaton_->schema().arity(rel) != static_cast<int>(refs.size())) {
    return Status::InvalidArgument("arity mismatch for " + relation);
  }
  std::vector<Term> args;
  for (const std::string& ref : refs) {
    auto t = Resolve(ref);
    if (!t.ok()) return t.status();
    args.push_back(*t);
  }
  return Define(name, Formula::Rel(rel, std::move(args)));
}

Result<LtlFoProperty> PropertyBuilder::Parse(
    const std::string& ltl_text) const {
  auto resolve = [this](const std::string& name) -> int {
    for (size_t i = 0; i < proposition_names_.size(); ++i) {
      if (proposition_names_[i] == name) return static_cast<int>(i);
    }
    return -1;
  };
  RAV_ASSIGN_OR_RETURN(LtlFormula formula,
                       LtlFormula::Parse(ltl_text, resolve));
  LtlFoProperty property;
  property.formula = std::move(formula);
  property.propositions = propositions_;
  property.proposition_names = proposition_names_;
  return property;
}

}  // namespace rav
