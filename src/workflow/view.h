#ifndef RAV_WORKFLOW_VIEW_H_
#define RAV_WORKFLOW_VIEW_H_

#include <string>
#include <vector>

#include "base/status.h"
#include "enhanced/enhanced_automaton.h"
#include "enhanced/theorem24.h"
#include "era/extended_automaton.h"
#include "projection/project_ra.h"
#include "ra/register_automaton.h"

namespace rav {

// Projection views of workflows: the user-facing operation motivating the
// paper. A view names the registers a class of users may see; everything
// else (and possibly the database) is hidden, and the library synthesizes
// a specification — an extended or enhanced automaton — of exactly the
// visible behaviors.

// A database-preserving view (Sections 4–5, so the workflow must have an
// empty relational signature): hide all registers except
// `visible_registers`. The result is an LR-bounded extended automaton
// whose register traces are the projections of the workflow's runs, with
// the visible registers re-ordered as given.
Result<ExtendedAutomaton> MakeProjectionView(
    const RegisterAutomaton& workflow,
    const std::vector<int>& visible_registers, Prop20Stats* stats = nullptr);

// A database-hiding view (Section 6, Theorem 24): hide the database and
// all registers except `visible_registers`. The result is an enhanced
// automaton (tuple-inequality + finiteness constraints).
Result<EnhancedAutomaton> MakeHiddenDatabaseView(
    const RegisterAutomaton& workflow,
    const std::vector<int>& visible_registers,
    Theorem24Stats* stats = nullptr);

// Helper: the permutation moving `visible_registers` (in order) to the
// front, followed by the hidden registers in ascending order.
std::vector<int> VisibleFirstPermutation(int num_registers,
                                         const std::vector<int>& visible);

}  // namespace rav

#endif  // RAV_WORKFLOW_VIEW_H_
