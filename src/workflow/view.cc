#include "workflow/view.h"

#include <algorithm>

#include "ra/transform.h"

namespace rav {

std::vector<int> VisibleFirstPermutation(int num_registers,
                                         const std::vector<int>& visible) {
  std::vector<int> permutation = visible;
  std::vector<bool> taken(num_registers, false);
  for (int r : visible) {
    RAV_CHECK_GE(r, 0);
    RAV_CHECK_LT(r, num_registers);
    RAV_CHECK(!taken[r]);
    taken[r] = true;
  }
  for (int r = 0; r < num_registers; ++r) {
    if (!taken[r]) permutation.push_back(r);
  }
  return permutation;
}

Result<ExtendedAutomaton> MakeProjectionView(
    const RegisterAutomaton& workflow,
    const std::vector<int>& visible_registers, Prop20Stats* stats) {
  RegisterAutomaton permuted = PermuteRegisters(
      workflow,
      VisibleFirstPermutation(workflow.num_registers(), visible_registers));
  return ProjectRegisterAutomaton(
      permuted, static_cast<int>(visible_registers.size()), stats);
}

Result<EnhancedAutomaton> MakeHiddenDatabaseView(
    const RegisterAutomaton& workflow,
    const std::vector<int>& visible_registers, Theorem24Stats* stats) {
  RegisterAutomaton permuted = PermuteRegisters(
      workflow,
      VisibleFirstPermutation(workflow.num_registers(), visible_registers));
  return ProjectWithHiddenDatabase(
      permuted, static_cast<int>(visible_registers.size()), stats);
}

}  // namespace rav
