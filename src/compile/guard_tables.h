#ifndef RAV_COMPILE_GUARD_TABLES_H_
#define RAV_COMPILE_GUARD_TABLES_H_

// The guard compilation layer (docs/compilation.md): each distinct
// transition guard of a spec is lowered once, at alphabet/compiled-spec
// build time, into a flat dense program over its 2k variables + schema
// constants, and candidate valuations are evaluated against the program —
// one at a time (Holds) or as an SoA batch in one branch-free pass over
// each instruction (EvalBatch). The interpreted Type::HoldsIn walk stays
// alive as the differential-testing reference behind GuardEngine, with the
// RAV_GUARD_TABLES=off escape hatch.
//
// This layer depends only on types/ + relational/ + base, so ra/ and era/
// can both consume it without cycles.

#include <cstddef>
#include <optional>
#include <string_view>
#include <utility>
#include <vector>

#include "base/strong_id.h"
#include "base/value.h"
#include "relational/database.h"
#include "types/type.h"

namespace rav::compile {

// Which guard-evaluation engine a consumer runs with, mirroring
// ClosureEngine: kInterpreted walks the canonical Type per valuation (the
// reference), kCompiled replays the lowered table program, and the default
// kAuto resolves through the RAV_GUARD_TABLES environment variable —
// "off"/"0"/"interpreted" forces the interpreted path, anything else (or
// unset) selects the compiled one.
enum class GuardEngine {
  kInterpreted,
  kCompiled,
  kAuto,
};

// Stable name ("interpreted", "compiled", "auto") / its inverse.
const char* GuardEngineName(GuardEngine engine);
std::optional<GuardEngine> ParseGuardEngine(std::string_view name);
// Resolves kAuto through RAV_GUARD_TABLES; explicit engines pass through.
GuardEngine ResolveGuardEngine(GuardEngine requested);

// Per-worker compiled-evaluation tallies; owned by one thread, merged into
// SearchStats after the fact (era/guard/* metrics).
struct GuardStats {
  size_t evals = 0;    // valuations decided through compiled tables
  size_t batches = 0;  // SoA EvalBatch passes
};

// A guard's per-position closure operations in element-index form — the
// exact program ConstraintClosure's linear engine replays at every window
// position (see ClosureScratch::TypeProgram): union pairs (class
// representative, later element), disequality pairs between
// representatives, and adom marks from positive atoms. Precomputing them
// here removes the per-closure CompileType pass.
struct GuardOps {
  std::vector<std::pair<int, int>> unions;
  std::vector<std::pair<int, int>> diseqs;
  std::vector<int> adom;

  bool empty() const { return unions.empty() && diseqs.empty() && adom.empty(); }
  size_t bytes() const {
    return unions.capacity() * sizeof(std::pair<int, int>) +
           diseqs.capacity() * sizeof(std::pair<int, int>) +
           adom.capacity() * sizeof(int);
  }
};

// One signed relational literal of a guard's evaluation program, with its
// arguments as element indices (class representatives).
struct GuardAtom {
  RelationId relation = -1;
  bool positive = true;
  std::vector<int> arg_elements;
};

// The compiled table set of one automaton's distinct guards. Build dedups
// the input guards by Type equality (first-use order, the same order
// RegisterAutomaton::DistinctGuards produces) and lowers each one into:
//   * its evaluation program: the GuardOps pairs double as equality /
//     disequality instructions over element values, plus the signed atoms,
//   * its x̄ / ȳ frontier restrictions (shared by the control alphabet,
//     BuildSControlNba, and the lint strip passes — one dedup for all),
//   * the x̄-restricted closure ops the incremental closure engine applies
//     at a window's last position.
// Immutable after Build; safe to share across search workers by const ref.
class GuardTableSet {
 public:
  GuardTableSet() = default;

  // `guards` are transition guards of a k-register automaton (2k vars,
  // `num_constants` schema constants). `id_of_input` (optional) receives
  // one dense guard id per input position.
  static GuardTableSet Build(const std::vector<const Type*>& guards, int k,
                             int num_constants,
                             std::vector<GuardId>* id_of_input = nullptr);

  int num_guards() const { return static_cast<int>(guards_.size()); }
  // The dense guard id space, iterable.
  IdRange<GuardId> GuardIds() const { return IdRange<GuardId>(num_guards()); }
  int num_registers() const { return k_; }
  int num_constants() const { return num_constants_; }

  const Type& guard(GuardId id) const { return guards_[id.value()]; }
  // RestrictToX(guard, k) / RestrictToYAsX(guard, k), precomputed.
  const Type& x_restricted(GuardId id) const {
    return x_restricted_[id.value()];
  }
  const Type& y_restricted_as_x(GuardId id) const {
    return y_restricted_[id.value()];
  }

  // Closure ops of the full 2k-variable guard (elements 0..2k-1 then
  // constants) and of its x̄ restriction (elements 0..k-1 then constants).
  const GuardOps& closure_ops(GuardId id) const { return ops_[id.value()]; }
  const GuardOps& x_closure_ops(GuardId id) const {
    return x_ops_[id.value()];
  }
  const std::vector<GuardAtom>& atoms(GuardId id) const {
    return atoms_[id.value()];
  }

  // Approximate heap bytes of every table in the set (governor-charged by
  // the consumers that report it).
  size_t table_bytes() const { return table_bytes_; }

  // Evaluates guard `id` on one x̄·ȳ valuation (2k values). Observationally
  // identical to guard(id).HoldsIn(db, xy) — the differential tests hold
  // the two to it — without the per-call class-vector allocations.
  bool Holds(GuardId id, const DataValue* xy, const Database& db,
             GuardStats* stats = nullptr) const;

  // Batched SoA evaluation: `soa` holds `count` valuations element-major
  // (soa[e * count + i] is element e of valuation i, e < 2k), `ok` is the
  // in/out survivor mask (callers seed it with 1s; instructions clear
  // entries branch-free, atoms are checked per surviving valuation). One
  // pass per instruction over the whole batch — the inner loops
  // auto-vectorize over the register compares.
  void EvalBatch(GuardId id, const DataValue* soa, size_t count,
                 const Database& db, unsigned char* ok,
                 GuardStats* stats = nullptr) const;

 private:
  int k_ = 0;
  int num_constants_ = 0;
  std::vector<Type> guards_;
  std::vector<Type> x_restricted_;
  std::vector<Type> y_restricted_;
  std::vector<GuardOps> ops_;
  std::vector<GuardOps> x_ops_;
  std::vector<std::vector<GuardAtom>> atoms_;
  size_t table_bytes_ = 0;
};

// A borrowed view tying an automaton's transitions to a compiled table
// set: guard_id_of_transition[ti] is the table id of transition ti's
// guard. Null `tables` means "interpreted" — consumers fall back to
// Type::HoldsIn. Both pointers must outlive the view's uses.
struct TransitionGuardView {
  const GuardTableSet* tables = nullptr;
  const GuardId* guard_id_of_transition = nullptr;

  explicit operator bool() const { return tables != nullptr; }
};

}  // namespace rav::compile

#endif  // RAV_COMPILE_GUARD_TABLES_H_
