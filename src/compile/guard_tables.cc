#include "compile/guard_tables.h"

#include <cstdlib>

#include "base/logging.h"

namespace rav::compile {

const char* GuardEngineName(GuardEngine engine) {
  switch (engine) {
    case GuardEngine::kInterpreted:
      return "interpreted";
    case GuardEngine::kCompiled:
      return "compiled";
    case GuardEngine::kAuto:
      return "auto";
  }
  return "unknown";
}

std::optional<GuardEngine> ParseGuardEngine(std::string_view name) {
  if (name == "interpreted") return GuardEngine::kInterpreted;
  if (name == "compiled") return GuardEngine::kCompiled;
  if (name == "auto") return GuardEngine::kAuto;
  return std::nullopt;
}

GuardEngine ResolveGuardEngine(GuardEngine requested) {
  if (requested != GuardEngine::kAuto) return requested;
  // The escape hatch: RAV_GUARD_TABLES=off reverts every kAuto consumer to
  // the interpreted reference without a rebuild (docs/compilation.md).
  const char* env = std::getenv("RAV_GUARD_TABLES");
  if (env != nullptr) {
    const std::string_view v(env);
    if (v == "off" || v == "0" || v == "interpreted") {
      return GuardEngine::kInterpreted;
    }
  }
  return GuardEngine::kCompiled;
}

namespace {

// Lowers one type into its closure/eval ops: union pairs (first element of
// each class, later element), diseq pairs between first elements, adom
// marks of positive-atom argument classes — the same instruction stream
// ConstraintClosure::CompileType derives per closure, now computed once.
// `rep` is reused scratch; returns the per-class representative elements.
void LowerOps(const Type& t, std::vector<int>& rep, GuardOps& ops) {
  rep.assign(t.num_classes(), -1);
  for (int e = 0; e < t.num_elements(); ++e) {
    const int c = t.ClassOf(e);
    if (rep[c] < 0) {
      rep[c] = e;
    } else {
      ops.unions.emplace_back(rep[c], e);
    }
  }
  for (const auto& [c1, c2] : t.disequalities()) {
    ops.diseqs.emplace_back(rep[c1], rep[c2]);
  }
  for (const TypeAtom& a : t.atoms()) {
    if (!a.positive) continue;
    for (int c : a.args) ops.adom.push_back(rep[c]);
  }
}

}  // namespace

GuardTableSet GuardTableSet::Build(const std::vector<const Type*>& guards,
                                   int k, int num_constants,
                                   std::vector<GuardId>* id_of_input) {
  GuardTableSet set;
  set.k_ = k;
  set.num_constants_ = num_constants;
  if (id_of_input != nullptr) {
    id_of_input->clear();
    id_of_input->reserve(guards.size());
  }
  std::vector<int> rep;
  for (const Type* g : guards) {
    RAV_CHECK(g != nullptr);
    RAV_CHECK_EQ(g->num_vars(), 2 * k);
    RAV_CHECK_EQ(g->num_constants(), num_constants);
    int id = -1;
    for (size_t d = 0; d < set.guards_.size(); ++d) {
      if (set.guards_[d] == *g) {
        id = static_cast<int>(d);
        break;
      }
    }
    if (id < 0) {
      id = set.num_guards();
      set.guards_.push_back(*g);
      set.x_restricted_.push_back(RestrictToX(*g, k));
      set.y_restricted_.push_back(RestrictToYAsX(*g, k));
      GuardOps& ops = set.ops_.emplace_back();
      LowerOps(*g, rep, ops);
      // The evaluation atoms (both signs) over the same representatives.
      std::vector<GuardAtom>& atoms = set.atoms_.emplace_back();
      for (const TypeAtom& a : g->atoms()) {
        GuardAtom& atom = atoms.emplace_back();
        atom.relation = a.relation;
        atom.positive = a.positive;
        atom.arg_elements.reserve(a.args.size());
        for (int c : a.args) atom.arg_elements.push_back(rep[c]);
      }
      GuardOps& x_ops = set.x_ops_.emplace_back();
      LowerOps(set.x_restricted_[id], rep, x_ops);
    }
    if (id_of_input != nullptr) id_of_input->push_back(GuardId(id));
  }
  for (int id = 0; id < set.num_guards(); ++id) {
    set.table_bytes_ += set.ops_[id].bytes() + set.x_ops_[id].bytes();
    for (const GuardAtom& a : set.atoms_[id]) {
      set.table_bytes_ += sizeof(GuardAtom) +
                          a.arg_elements.capacity() * sizeof(int);
    }
    // Rough footprint of the retained Types (class map + literal lists).
    set.table_bytes_ +=
        3 * sizeof(Type) +
        static_cast<size_t>(set.guards_[id].num_elements() +
                            set.x_restricted_[id].num_elements() +
                            set.y_restricted_[id].num_elements()) *
            sizeof(int);
  }
  return set;
}

bool GuardTableSet::Holds(GuardId id, const DataValue* xy, const Database& db,
                          GuardStats* stats) const {
  if (stats != nullptr) ++stats->evals;
  const int two_k = 2 * k_;
  auto value_of = [&](int e) -> DataValue {
    return e < two_k ? xy[e] : db.constant(e - two_k);
  };
  const GuardOps& ops = ops_[id.value()];
  // The union pairs are exactly "every element equals its class's first
  // element", so conjoining them decides the same forced equalities as
  // HoldsIn's first-seen walk; diseqs and atoms read the representatives.
  for (const auto& [a, b] : ops.unions) {
    if (value_of(a) != value_of(b)) return false;
  }
  for (const auto& [a, b] : ops.diseqs) {
    if (value_of(a) == value_of(b)) return false;
  }
  if (!atoms_[id.value()].empty()) {
    ValueTuple args;
    for (const GuardAtom& atom : atoms_[id.value()]) {
      args.clear();
      args.reserve(atom.arg_elements.size());
      for (int e : atom.arg_elements) args.push_back(value_of(e));
      if (db.Contains(atom.relation, args) != atom.positive) return false;
    }
  }
  return true;
}

void GuardTableSet::EvalBatch(GuardId id, const DataValue* soa, size_t count,
                              const Database& db, unsigned char* ok,
                              GuardStats* stats) const {
  if (stats != nullptr) {
    ++stats->batches;
    stats->evals += count;
  }
  if (count == 0) return;
  const int two_k = 2 * k_;
  const GuardOps& ops = ops_[id.value()];
  auto row = [&](int e) { return soa + static_cast<size_t>(e) * count; };
  auto constant_of = [&](int e) { return db.constant(e - two_k); };
  // One pass over the batch per instruction. Register-register compares
  // are the common case and vectorize; a constant operand broadcasts.
  for (const auto& [a, b] : ops.unions) {
    if (a < two_k && b < two_k) {
      const DataValue* ra = row(a);
      const DataValue* rb = row(b);
      for (size_t i = 0; i < count; ++i) {
        ok[i] &= static_cast<unsigned char>(ra[i] == rb[i]);
      }
    } else if (a < two_k || b < two_k) {
      const DataValue* r = row(a < two_k ? a : b);
      const DataValue c = constant_of(a < two_k ? b : a);
      for (size_t i = 0; i < count; ++i) {
        ok[i] &= static_cast<unsigned char>(r[i] == c);
      }
    } else if (constant_of(a) != constant_of(b)) {
      for (size_t i = 0; i < count; ++i) ok[i] = 0;
      return;
    }
  }
  for (const auto& [a, b] : ops.diseqs) {
    if (a < two_k && b < two_k) {
      const DataValue* ra = row(a);
      const DataValue* rb = row(b);
      for (size_t i = 0; i < count; ++i) {
        ok[i] &= static_cast<unsigned char>(ra[i] != rb[i]);
      }
    } else if (a < two_k || b < two_k) {
      const DataValue* r = row(a < two_k ? a : b);
      const DataValue c = constant_of(a < two_k ? b : a);
      for (size_t i = 0; i < count; ++i) {
        ok[i] &= static_cast<unsigned char>(r[i] != c);
      }
    } else if (constant_of(a) == constant_of(b)) {
      for (size_t i = 0; i < count; ++i) ok[i] = 0;
      return;
    }
  }
  if (atoms_[id.value()].empty()) return;
  // Relational atoms go through the database per surviving valuation —
  // they cannot be a flat compare, but the (in)equality instructions above
  // have already thinned the batch.
  ValueTuple args;
  for (size_t i = 0; i < count; ++i) {
    if (!ok[i]) continue;
    for (const GuardAtom& atom : atoms_[id.value()]) {
      args.clear();
      args.reserve(atom.arg_elements.size());
      for (int e : atom.arg_elements) {
        args.push_back(e < two_k ? soa[static_cast<size_t>(e) * count + i]
                                 : constant_of(e));
      }
      if (db.Contains(atom.relation, args) != atom.positive) {
        ok[i] = 0;
        break;
      }
    }
  }
}

}  // namespace rav::compile
