#include "era/run_check.h"

#include <string>

namespace rav {

namespace {

std::string ViolationMessage(const GlobalConstraint& c, size_t n, size_t m) {
  std::string out = "constraint e";
  out += c.is_equality ? "=" : "≠";
  out += "[" + std::to_string(c.i.value() + 1) + "," +
         std::to_string(c.j.value() + 1) +
         "] violated between positions " + std::to_string(n) + " and " +
         std::to_string(m);
  if (!c.description.empty()) out += " (" + c.description + ")";
  return out;
}

}  // namespace

Status CheckFiniteRunConstraints(const ExtendedAutomaton& era,
                                 const FiniteRun& run) {
  const size_t len = run.length();
  for (const GlobalConstraint& c : era.constraints()) {
    for (size_t n = 0; n < len; ++n) {
      int dfa_state = c.dfa.initial();
      for (size_t m = n; m < len; ++m) {
        dfa_state = c.dfa.Next(dfa_state, run.states[m].value());
        if (!c.dfa.IsAccepting(dfa_state)) continue;
        bool equal = run.values[n][c.i.value()] == run.values[m][c.j.value()];
        if (equal != c.is_equality) {
          return Status::InvalidArgument(ViolationMessage(c, n, m));
        }
      }
    }
  }
  return Status::OK();
}

Status ValidateEraRunPrefix(const ExtendedAutomaton& era, const Database& db,
                            const FiniteRun& run, bool require_initial,
                            const compile::TransitionGuardView& guards,
                            compile::GuardStats* guard_stats) {
  RAV_RETURN_IF_ERROR(ValidateRunPrefix(era.automaton(), db, run,
                                        require_initial, guards, guard_stats));
  return CheckFiniteRunConstraints(era, run);
}

Status CheckLassoRunConstraints(const ExtendedAutomaton& era,
                                const LassoRun& run) {
  const size_t spine = run.spine.length();
  const size_t period = run.period();
  RAV_CHECK_GE(period, 1u);
  for (const GlobalConstraint& c : era.constraints()) {
    // Window: source positions n < spine (positions beyond the spine see
    // exactly the suffix seen from n - period); target positions up to
    // n + spine + 2 * period * |dfa| (the (DFA state, phase) pair repeats
    // with period dividing period * |dfa|).
    const size_t window =
        spine + 2 * period * static_cast<size_t>(c.dfa.num_states()) + 1;
    for (size_t n = 0; n < spine; ++n) {
      int dfa_state = c.dfa.initial();
      for (size_t m = n; m < n + window; ++m) {
        dfa_state = c.dfa.Next(dfa_state, run.StateAt(m).value());
        if (!c.dfa.IsAccepting(dfa_state)) continue;
        bool equal =
            run.ValuesAt(n)[c.i.value()] == run.ValuesAt(m)[c.j.value()];
        if (equal != c.is_equality) {
          return Status::InvalidArgument(ViolationMessage(c, n, m));
        }
      }
    }
  }
  return Status::OK();
}

Status ValidateEraLassoRun(const ExtendedAutomaton& era, const Database& db,
                           const LassoRun& run,
                           const compile::TransitionGuardView& guards,
                           compile::GuardStats* guard_stats) {
  RAV_RETURN_IF_ERROR(
      ValidateLassoRun(era.automaton(), db, run, guards, guard_stats));
  return CheckLassoRunConstraints(era, run);
}

}  // namespace rav
