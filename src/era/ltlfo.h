#ifndef RAV_ERA_LTLFO_H_
#define RAV_ERA_LTLFO_H_

#include <optional>
#include <string>
#include <vector>

#include "base/status.h"
#include "era/emptiness.h"
#include "era/extended_automaton.h"
#include "ltl/ltl.h"
#include "relational/formula.h"

namespace rav {

// An LTL-FO sentence ∀z̄ φ_f (Definition 11) without global variables
// (they are eliminated by adding constant registers — see
// AddGlobalVariableRegisters): an LTL formula whose propositions are
// interpreted by quantifier-free FO formulas over x̄ ∪ ȳ and the schema's
// constants. Proposition p of `formula` is interpreted by
// `propositions[p]`.
struct LtlFoProperty {
  LtlFormula formula = LtlFormula::True();
  std::vector<Formula> propositions;
  std::vector<std::string> proposition_names;  // optional, same length
};

struct VerificationOptions {
  // The counterexample search's options. Its `governor` field (if set)
  // governs the whole verification: the strip pre-pass, guard refinement,
  // and product construction poll it too — a trip there surfaces as
  // ResourceExhausted, a trip during the search as a truncated verdict.
  EraEmptinessOptions emptiness;
  // Retained for compatibility; the verifier no longer completes the
  // automaton (it refines guards per proposition instead, which is
  // polynomial in the automaton for a fixed property).
  size_t max_completed_transitions = 1u << 20;
  // Run analysis::AnalyzeAndStrip on the automaton before refinement.
  // Dead structure admits no accepting run, so the verdict is unchanged;
  // a counterexample lasso then refers to the stripped-and-refined
  // automaton (the lasso was already internal to the refined one).
  bool analyze_and_strip = true;
};

struct VerificationResult {
  // The property holds on every run (within the counterexample search
  // bound when search_truncated is set).
  bool holds = false;
  // True iff no counterexample was found AND the search stopped on a
  // budget rather than exhausting its bounded space — "holds" is then
  // relative to the bound. Derived from search_stats.stop_reason.
  bool search_truncated = false;
  // When the property fails: a counterexample control lasso of the
  // completed automaton.
  std::optional<LassoWord> counterexample;
  // Statistics (benchmark E8).
  int ltl_closure_size = 0;
  int ltl_nba_states = 0;
  int product_states = 0;
  size_t lassos_tried = 0;
  // Instrumentation of the counterexample lasso search, including the
  // precise stop reason and worker count.
  SearchStats search_stats;
};

// Theorem 12: decides 𝒜 ⊨ φ_f for an extended automaton. The procedure
// refines every transition guard until it decides each proposition
// (splitting on the undetermined ones — the targeted alternative to the
// paper's full completion, exponentially cheaper on relational schemas),
// translates ¬φ into a Büchi automaton over AP valuations, products it
// with SControl(𝒜), and searches the product for a constraint-consistent
// accepting lasso — a counterexample run. Propositions must be literals
// or positive conjunctions of literals (Unimplemented otherwise).
Result<VerificationResult> VerifyLtlFo(const ExtendedAutomaton& era,
                                       const LtlFoProperty& property,
                                       const VerificationOptions& options = {});

// Helper for the global variables ∀z̄ of Definition 11: returns an
// extended automaton with `count` extra registers that every transition
// propagates unchanged (x_r = y_r), so each run fixes a valuation of z̄.
// Propositions may then reference z̄ᵢ as variable index 2·k' + ...; use
// GlobalVariableTermIndex for the mapping.
ExtendedAutomaton AddGlobalVariableRegisters(const ExtendedAutomaton& era,
                                             int count);

}  // namespace rav

#endif  // RAV_ERA_LTLFO_H_
