#include "era/parallel_search.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <sstream>
#include <system_error>
#include <thread>
#include <vector>

#include "base/concurrent_set.h"
#include "base/failpoints.h"
#include "base/metrics.h"
#include "base/state_pool.h"
#include "base/trace.h"

namespace rav {

namespace {

constexpr size_t kNoWitness = static_cast<size_t>(-1);

// The shared-visited state of one search: canonical ω-word encodings
// interned in `set` (backed by `pool`), with each record's payload word
// publishing the evaluated verdict — 0 while pending, verdict + 1 once
// known, released/acquired so a reader sees a fully evaluated entry.
struct SharedVisitedContext {
  StatePool pool;
  ConcurrentSet set;

  explicit SharedVisitedContext(const ExecutionGovernor* governor)
      : pool(governor), set(&pool, governor) {}
};

// LEB128 with zigzag for the symbols, so any int alphabet round-trips.
void AppendVarint(std::vector<uint8_t>& out, uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<uint8_t>(v));
}

uint64_t Zigzag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

// The interning key: lengths then symbols of the canonical decomposition.
// Self-delimiting, so equal byte strings mean equal ω-words.
void EncodeLasso(const LassoWord& word, std::vector<uint8_t>& out) {
  out.clear();
  AppendVarint(out, word.prefix.size());
  AppendVarint(out, word.cycle.size());
  for (int s : word.prefix) AppendVarint(out, Zigzag(s));
  for (int s : word.cycle) AppendVarint(out, Zigzag(s));
}

SearchStopReason FromEnumStop(LassoEnumStop stop) {
  switch (stop) {
    case LassoEnumStop::kExhausted:
      return SearchStopReason::kExhausted;
    case LassoEnumStop::kLengthClipped:
      return SearchStopReason::kLengthBound;
    case LassoEnumStop::kMaxCount:
      return SearchStopReason::kLassoBudget;
    case LassoEnumStop::kMaxSteps:
      return SearchStopReason::kStepBudget;
    case LassoEnumStop::kCallbackStopped:
      return SearchStopReason::kWitnessFound;
  }
  return SearchStopReason::kExhausted;
}

// Per-worker tallies, one slot per thread — no synchronization needed
// while the worker runs; merged after the join.
struct WorkerTally {
  size_t checked = 0;
  size_t inconsistent = 0;
  size_t cancelled = 0;
  size_t visited_hits = 0;  // candidates answered from the visited set
  uint64_t busy_ns = 0;     // time spent inside the evaluator
  LassoWorkerCounters counters;
  // Shared-visited working state, owned by this worker's thread.
  StatePool::ThreadCache cache;
  std::vector<uint8_t> encode_buf;
};

// Evaluates one candidate, through the visited set when one is active.
// In shared mode the candidate's word is first replaced by its canonical
// decomposition (the evaluator's verdict is a function of the ω-word, so
// this changes nothing but the witness's spelling) and the verdict is
// published into the interned record's payload word; a candidate whose
// canonical form was already decided is answered without evaluating. Two
// workers racing on a fresh entry both evaluate — the pure-function
// contract makes the double publish idempotent, and not waiting keeps
// workers off each other's critical paths.
LassoVerdict EvaluateCandidate(SharedVisitedContext* ctx,
                               const LassoEvaluator& evaluate,
                               LassoCandidate& candidate, WorkerTally& tally) {
  if (ctx == nullptr) return evaluate(candidate, tally.counters);
  candidate.word = candidate.word.Canonicalized();
  EncodeLasso(candidate.word, tally.encode_buf);
  const ConcurrentSet::InternResult interned =
      ctx->set.Intern(tally.cache, tally.encode_buf.data(),
                      static_cast<uint32_t>(tally.encode_buf.size()));
  std::atomic<uint32_t>& payload = ctx->pool.Payload(interned.handle);
  if (!interned.inserted) {
    const uint32_t published = payload.load(std::memory_order_acquire);
    if (published != 0) {
      ++tally.visited_hits;
      return static_cast<LassoVerdict>(published - 1);
    }
  }
  const LassoVerdict verdict = evaluate(candidate, tally.counters);
  payload.store(static_cast<uint32_t>(verdict) + 1,
                std::memory_order_release);
  return verdict;
}

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Evaluates candidates inline on the calling thread, in enumeration
// order — the serial reference path (num_workers <= 1).
LassoSearchOutcome SearchInline(const Nba& nba,
                                const LassoSearchOptions& options,
                                const LassoEvaluator& evaluate,
                                SharedVisitedContext* ctx) {
  LassoSearchOutcome outcome;
  LassoEnumerator enumerator(nba, options.max_lasso_length,
                             options.max_lassos, options.max_search_steps);
  WorkerTally tally;
  LassoCandidate candidate;
  GovernorTrip trip = GovernorTrip::kNone;
  while (enumerator.Next(&candidate.word, &candidate.index)) {
    trip = GovernorCheck(options.governor);
    if (trip != GovernorTrip::kNone) break;
    ++tally.checked;
    LassoVerdict verdict = EvaluateCandidate(ctx, evaluate, candidate, tally);
    if (verdict == LassoVerdict::kInconsistent) ++tally.inconsistent;
    if (verdict == LassoVerdict::kWitness) {
      outcome.witness = std::move(candidate);
      break;
    }
  }
  outcome.stats.lassos_enumerated = enumerator.delivered();
  outcome.stats.lassos_checked = tally.checked;
  outcome.stats.inconsistent_closures = tally.inconsistent;
  outcome.stats.closures_built = tally.counters.closures_built;
  outcome.stats.closures_extended = tally.counters.closures_extended;
  outcome.stats.guard_evals = tally.counters.guard.evals;
  outcome.stats.guard_batches = tally.counters.guard.batches;
  outcome.stats.visited_hits = tally.visited_hits;
  outcome.stats.enumeration_steps = enumerator.steps();
  outcome.stats.workers = 1;
  // Precedence: a witness found before the trip is still a witness; an
  // ungoverned stop falls through to the enumerator's reason.
  outcome.stats.stop_reason = outcome.witness.has_value()
                                  ? SearchStopReason::kWitnessFound
                              : trip != GovernorTrip::kNone
                                  ? StopReasonOfTrip(trip)
                                  : FromEnumStop(enumerator.stop());
  return outcome;
}

// The producer/worker state shared across threads. All fields except
// `best_hint` are guarded by `mu`; candidates are heavy enough (a
// constraint closure each) that one lock round-trip per *batch* is noise.
struct SharedState {
  std::mutex mu;
  std::condition_variable work_ready;
  std::condition_variable space_ready;
  std::deque<LassoCandidate> queue;
  bool producer_done = false;
  size_t best_index = kNoWitness;
  LassoWord best_word;
  // Mirror of best_index for lock-free cancellation checks between the
  // candidates of a popped batch. Updated under `mu` whenever best_index
  // improves; read relaxed — a stale read only means one moot candidate
  // gets evaluated, never that a lower-rank candidate is skipped.
  std::atomic<size_t> best_hint{kNoWitness};
};

void WorkerLoop(SharedState& shared, const LassoEvaluator& evaluate,
                const ExecutionGovernor* governor, SharedVisitedContext* ctx,
                size_t batch, WorkerTally& tally) {
  std::vector<LassoCandidate> local;
  local.reserve(batch);
  for (;;) {
    local.clear();
    {
      std::unique_lock<std::mutex> lock(shared.mu);
      shared.work_ready.wait(lock, [&] {
        return !shared.queue.empty() || shared.producer_done;
      });
      if (shared.queue.empty()) return;
      // Pop up to a whole batch per lock round-trip; the candidates are
      // then evaluated without touching the mutex (cancellation reads the
      // atomic hint instead).
      while (local.size() < batch && !shared.queue.empty()) {
        local.push_back(std::move(shared.queue.front()));
        shared.queue.pop_front();
      }
      shared.space_ready.notify_one();
    }
    for (LassoCandidate& candidate : local) {
      // A witness of lower rank already won; ranks above it are moot.
      bool cancelled = candidate.index >
                       shared.best_hint.load(std::memory_order_relaxed);
      // After a governor trip the queue is drained without evaluating, so
      // the pool winds down within one candidate's evaluation per worker.
      if (!cancelled && GovernorCheck(governor) != GovernorTrip::kNone) {
        cancelled = true;
      }
      if (cancelled) {
        ++tally.cancelled;
        continue;
      }
      ++tally.checked;
      const uint64_t eval_start = NowNs();
      LassoVerdict verdict =
          EvaluateCandidate(ctx, evaluate, candidate, tally);
      tally.busy_ns += NowNs() - eval_start;
      if (verdict == LassoVerdict::kInconsistent) ++tally.inconsistent;
      if (verdict == LassoVerdict::kWitness) {
        std::lock_guard<std::mutex> lock(shared.mu);
        if (candidate.index < shared.best_index) {
          shared.best_index = candidate.index;
          shared.best_hint.store(candidate.index, std::memory_order_relaxed);
          shared.best_word = std::move(candidate.word);
        }
        // Wake the producer (to stop enumerating) and any waiting workers.
        shared.space_ready.notify_all();
      }
    }
  }
}

LassoSearchOutcome SearchParallel(const Nba& nba,
                                  const LassoSearchOptions& options,
                                  const LassoEvaluator& evaluate,
                                  SharedVisitedContext* ctx, int num_workers) {
  const uint64_t pool_start_ns = NowNs();
  SharedState shared;
  const size_t batch = options.batch_size > 0 ? options.batch_size : 16;
  const size_t capacity = batch * static_cast<size_t>(num_workers) * 2;

  std::vector<WorkerTally> tallies(num_workers);
  std::vector<std::thread> workers;
  workers.reserve(num_workers);
  for (int w = 0; w < num_workers; ++w) {
    try {
      if (RAV_FAILPOINT("era/search/worker_spawn")) {
        throw std::system_error(
            std::make_error_code(std::errc::resource_unavailable_try_again),
            "injected worker-spawn failure");
      }
      workers.emplace_back([&shared, &evaluate, &tallies, ctx, batch,
                            governor = options.governor, w] {
        WorkerLoop(shared, evaluate, governor, ctx, batch, tallies[w]);
      });
    } catch (const std::system_error&) {
      // Thread creation failed (resource exhaustion or the injected
      // fault): degrade to however many workers exist rather than
      // crashing; with none, fall back to the serial path.
      RAV_METRIC_COUNT("era/search/worker_spawn_failures", 1);
      break;
    }
  }
  if (workers.empty()) return SearchInline(nba, options, evaluate, ctx);
  num_workers = static_cast<int>(workers.size());

  // The calling thread is the producer: it drains the enumerator in
  // batches and stops as soon as any witness exists (all candidates it
  // would still produce have higher ranks and cannot win).
  LassoEnumerator enumerator(nba, options.max_lasso_length,
                             options.max_lassos, options.max_search_steps);
  std::vector<LassoCandidate> staged;
  staged.reserve(batch);
  bool witness_seen = false;
  while (!witness_seen) {
    // One governor poll per batch: a trip stops production, and the
    // workers drain whatever is queued without evaluating it.
    if (GovernorCheck(options.governor) != GovernorTrip::kNone) break;
    staged.clear();
    LassoCandidate candidate;
    while (staged.size() < batch &&
           enumerator.Next(&candidate.word, &candidate.index)) {
      staged.push_back(std::move(candidate));
    }
    if (staged.empty()) break;
    std::unique_lock<std::mutex> lock(shared.mu);
    shared.space_ready.wait(lock, [&] {
      return shared.queue.size() < capacity ||
             shared.best_index != kNoWitness;
    });
    if (shared.best_index != kNoWitness) {
      witness_seen = true;
      break;
    }
    for (LassoCandidate& c : staged) shared.queue.push_back(std::move(c));
    RAV_METRIC_RECORD("era/search/queue_depth", shared.queue.size());
    shared.work_ready.notify_all();
  }
  {
    std::lock_guard<std::mutex> lock(shared.mu);
    shared.producer_done = true;
  }
  shared.work_ready.notify_all();
  for (std::thread& t : workers) t.join();

  LassoSearchOutcome outcome;
  if (shared.best_index != kNoWitness) {
    outcome.witness =
        LassoCandidate{shared.best_index, std::move(shared.best_word)};
  }
  const uint64_t pool_ns = NowNs() - pool_start_ns;
  for (const WorkerTally& tally : tallies) {
    outcome.stats.lassos_checked += tally.checked;
    outcome.stats.inconsistent_closures += tally.inconsistent;
    outcome.stats.closures_built += tally.counters.closures_built;
    outcome.stats.closures_extended += tally.counters.closures_extended;
    outcome.stats.guard_evals += tally.counters.guard.evals;
    outcome.stats.guard_batches += tally.counters.guard.batches;
    outcome.stats.visited_hits += tally.visited_hits;
    RAV_METRIC_COUNT("era/search/candidates_cancelled", tally.cancelled);
    RAV_METRIC_COUNT("era/search/worker_busy_ns", tally.busy_ns);
    // Fraction of the pool's lifetime each worker spent evaluating.
    if (pool_ns > 0) {
      RAV_METRIC_RECORD("era/search/worker_utilization_pct",
                        tally.busy_ns * 100 / pool_ns);
    }
  }
  outcome.stats.lassos_enumerated = enumerator.delivered();
  outcome.stats.enumeration_steps = enumerator.steps();
  outcome.stats.workers = num_workers;
  const GovernorTrip trip = options.governor != nullptr
                                ? options.governor->trip()
                                : GovernorTrip::kNone;
  outcome.stats.stop_reason = outcome.witness.has_value()
                                  ? SearchStopReason::kWitnessFound
                              : trip != GovernorTrip::kNone
                                  ? StopReasonOfTrip(trip)
                                  : FromEnumStop(enumerator.stop());
  return outcome;
}

}  // namespace

SearchStopReason StopReasonOfTrip(GovernorTrip trip) {
  switch (trip) {
    case GovernorTrip::kDeadline:
      return SearchStopReason::kDeadline;
    case GovernorTrip::kMemoryBudget:
      return SearchStopReason::kMemoryBudget;
    case GovernorTrip::kCancelled:
      return SearchStopReason::kCancelled;
    case GovernorTrip::kNone:
      break;
  }
  return SearchStopReason::kExhausted;
}

const char* SearchModeName(SearchMode mode) {
  switch (mode) {
    case SearchMode::kPartitioned:
      return "partitioned";
    case SearchMode::kSharedVisited:
      return "shared";
  }
  return "unknown";
}

std::optional<SearchMode> ParseSearchMode(std::string_view name) {
  if (name == "partitioned") return SearchMode::kPartitioned;
  if (name == "shared" || name == "shared-visited") {
    return SearchMode::kSharedVisited;
  }
  return std::nullopt;
}

const char* SearchStopReasonName(SearchStopReason reason) {
  switch (reason) {
    case SearchStopReason::kWitnessFound:
      return "witness-found";
    case SearchStopReason::kExhausted:
      return "exhausted";
    case SearchStopReason::kLengthBound:
      return "length-bound";
    case SearchStopReason::kLassoBudget:
      return "lasso-budget";
    case SearchStopReason::kStepBudget:
      return "step-budget";
    case SearchStopReason::kDeadline:
      return "deadline";
    case SearchStopReason::kMemoryBudget:
      return "memory-budget";
    case SearchStopReason::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

std::string SearchStats::ToString() const {
  std::ostringstream out;
  out << "stop=" << SearchStopReasonName(stop_reason)
      << " enumerated=" << lassos_enumerated << " checked=" << lassos_checked
      << " closures=" << closures_built
      << " extended=" << closures_extended
      << " inconsistent=" << inconsistent_closures
      << " steps=" << enumeration_steps << " workers=" << workers
      << " wall_ms=" << wall_seconds * 1e3;
  // Partitioned output is unchanged; the shared-mode fields only appear
  // when they can be nonzero.
  if (mode == SearchMode::kSharedVisited) {
    out << " mode=" << SearchModeName(mode) << " visited_hits=" << visited_hits
        << " visited_entries=" << visited_entries
        << " pool_bytes=" << pool_bytes;
  }
  // Likewise the compiled-guard fields: absent under the interpreted
  // engine, so existing consumers of the line see no change.
  if (guard_evals > 0 || guard_table_bytes > 0) {
    out << " guard_evals=" << guard_evals
        << " guard_batches=" << guard_batches
        << " guard_table_bytes=" << guard_table_bytes;
  }
  return out.str();
}

LassoSearchOutcome SearchLassos(const Nba& nba,
                                const LassoSearchOptions& options,
                                const LassoEvaluator& evaluate) {
  RAV_TRACE_SPAN("era/search");
  const auto start = std::chrono::steady_clock::now();
  int num_workers = options.num_workers;
  if (num_workers == 0) {
    num_workers = static_cast<int>(std::thread::hardware_concurrency());
  }
  // The visited set lives for exactly one search: the governor is charged
  // for its pool and table while the search runs and released here, so a
  // memory budget bounds the search's own high-water mark.
  std::optional<SharedVisitedContext> visited;
  if (options.mode == SearchMode::kSharedVisited) {
    visited.emplace(options.governor);
  }
  SharedVisitedContext* ctx = visited.has_value() ? &*visited : nullptr;
  LassoSearchOutcome outcome =
      num_workers <= 1
          ? SearchInline(nba, options, evaluate, ctx)
          : SearchParallel(nba, options, evaluate, ctx, num_workers);
  outcome.stats.mode = options.mode;
  if (ctx != nullptr) {
    outcome.stats.visited_entries = ctx->set.size();
    outcome.stats.pool_bytes = ctx->pool.bytes_reserved() +
                               ctx->set.bytes_reserved();
    RAV_METRIC_COUNT("era/search/visited_hits", outcome.stats.visited_hits);
    RAV_METRIC_SET("era/search/visited_entries",
                   outcome.stats.visited_entries);
    RAV_METRIC_SET("era/search/pool_bytes", outcome.stats.pool_bytes);
  }
  outcome.stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  RAV_METRIC_COUNT("era/search/searches", 1);
  RAV_METRIC_COUNT("era/search/lassos_enumerated",
                   outcome.stats.lassos_enumerated);
  RAV_METRIC_COUNT("era/search/lassos_checked", outcome.stats.lassos_checked);
  RAV_METRIC_COUNT("era/search/enumeration_steps",
                   outcome.stats.enumeration_steps);
  RAV_METRIC_COUNT("era/search/inconsistent_closures",
                   outcome.stats.inconsistent_closures);
  if (outcome.stats.guard_evals > 0) {
    RAV_METRIC_COUNT("era/guard/evals", outcome.stats.guard_evals);
    RAV_METRIC_COUNT("era/guard/batches", outcome.stats.guard_batches);
  }
  if (outcome.witness.has_value()) {
    RAV_METRIC_COUNT("era/search/witnesses_found", 1);
  }
  RAV_METRIC_SET("era/search/last_workers", outcome.stats.workers);
  return outcome;
}

}  // namespace rav
