#include "era/parallel_search.h"

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <sstream>
#include <system_error>
#include <thread>
#include <vector>

#include "base/failpoints.h"
#include "base/metrics.h"
#include "base/trace.h"

namespace rav {

namespace {

constexpr size_t kNoWitness = static_cast<size_t>(-1);

SearchStopReason FromEnumStop(LassoEnumStop stop) {
  switch (stop) {
    case LassoEnumStop::kExhausted:
      return SearchStopReason::kExhausted;
    case LassoEnumStop::kLengthClipped:
      return SearchStopReason::kLengthBound;
    case LassoEnumStop::kMaxCount:
      return SearchStopReason::kLassoBudget;
    case LassoEnumStop::kMaxSteps:
      return SearchStopReason::kStepBudget;
    case LassoEnumStop::kCallbackStopped:
      return SearchStopReason::kWitnessFound;
  }
  return SearchStopReason::kExhausted;
}

// Per-worker tallies, one slot per thread — no synchronization needed
// while the worker runs; merged after the join.
struct WorkerTally {
  size_t checked = 0;
  size_t inconsistent = 0;
  size_t cancelled = 0;
  uint64_t busy_ns = 0;  // time spent inside the evaluator
  LassoWorkerCounters counters;
};

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Evaluates candidates inline on the calling thread, in enumeration
// order — the serial reference path (num_workers <= 1).
LassoSearchOutcome SearchInline(const Nba& nba,
                                const LassoSearchOptions& options,
                                const LassoEvaluator& evaluate) {
  LassoSearchOutcome outcome;
  LassoEnumerator enumerator(nba, options.max_lasso_length,
                             options.max_lassos, options.max_search_steps);
  WorkerTally tally;
  LassoCandidate candidate;
  GovernorTrip trip = GovernorTrip::kNone;
  while (enumerator.Next(&candidate.word, &candidate.index)) {
    trip = GovernorCheck(options.governor);
    if (trip != GovernorTrip::kNone) break;
    ++tally.checked;
    LassoVerdict verdict = evaluate(candidate, tally.counters);
    if (verdict == LassoVerdict::kInconsistent) ++tally.inconsistent;
    if (verdict == LassoVerdict::kWitness) {
      outcome.witness = std::move(candidate);
      break;
    }
  }
  outcome.stats.lassos_enumerated = enumerator.delivered();
  outcome.stats.lassos_checked = tally.checked;
  outcome.stats.inconsistent_closures = tally.inconsistent;
  outcome.stats.closures_built = tally.counters.closures_built;
  outcome.stats.closures_extended = tally.counters.closures_extended;
  outcome.stats.enumeration_steps = enumerator.steps();
  outcome.stats.workers = 1;
  // Precedence: a witness found before the trip is still a witness; an
  // ungoverned stop falls through to the enumerator's reason.
  outcome.stats.stop_reason = outcome.witness.has_value()
                                  ? SearchStopReason::kWitnessFound
                              : trip != GovernorTrip::kNone
                                  ? StopReasonOfTrip(trip)
                                  : FromEnumStop(enumerator.stop());
  return outcome;
}

// The producer/worker state shared across threads. All fields are guarded
// by `mu`; candidates are heavy enough (a constraint closure each) that
// one lock round-trip per candidate is noise.
struct SharedState {
  std::mutex mu;
  std::condition_variable work_ready;
  std::condition_variable space_ready;
  std::deque<LassoCandidate> queue;
  bool producer_done = false;
  size_t best_index = kNoWitness;
  LassoWord best_word;
};

void WorkerLoop(SharedState& shared, const LassoEvaluator& evaluate,
                const ExecutionGovernor* governor, WorkerTally& tally) {
  for (;;) {
    LassoCandidate candidate;
    bool cancelled;
    {
      std::unique_lock<std::mutex> lock(shared.mu);
      shared.work_ready.wait(lock, [&] {
        return !shared.queue.empty() || shared.producer_done;
      });
      if (shared.queue.empty()) return;
      candidate = std::move(shared.queue.front());
      shared.queue.pop_front();
      // A witness of lower rank already won; ranks above it are moot.
      cancelled = candidate.index > shared.best_index;
      shared.space_ready.notify_one();
    }
    // After a governor trip the queue is drained without evaluating, so
    // the pool winds down within one candidate's evaluation per worker.
    if (!cancelled && GovernorCheck(governor) != GovernorTrip::kNone) {
      cancelled = true;
    }
    if (cancelled) {
      ++tally.cancelled;
      continue;
    }
    ++tally.checked;
    const uint64_t eval_start = NowNs();
    LassoVerdict verdict = evaluate(candidate, tally.counters);
    tally.busy_ns += NowNs() - eval_start;
    if (verdict == LassoVerdict::kInconsistent) ++tally.inconsistent;
    if (verdict == LassoVerdict::kWitness) {
      std::lock_guard<std::mutex> lock(shared.mu);
      if (candidate.index < shared.best_index) {
        shared.best_index = candidate.index;
        shared.best_word = std::move(candidate.word);
      }
      // Wake the producer (to stop enumerating) and any waiting workers.
      shared.space_ready.notify_all();
    }
  }
}

LassoSearchOutcome SearchParallel(const Nba& nba,
                                  const LassoSearchOptions& options,
                                  const LassoEvaluator& evaluate,
                                  int num_workers) {
  const uint64_t pool_start_ns = NowNs();
  SharedState shared;
  const size_t batch = options.batch_size > 0 ? options.batch_size : 16;
  const size_t capacity = batch * static_cast<size_t>(num_workers) * 2;

  std::vector<WorkerTally> tallies(num_workers);
  std::vector<std::thread> workers;
  workers.reserve(num_workers);
  for (int w = 0; w < num_workers; ++w) {
    try {
      if (RAV_FAILPOINT("era/search/worker_spawn")) {
        throw std::system_error(
            std::make_error_code(std::errc::resource_unavailable_try_again),
            "injected worker-spawn failure");
      }
      workers.emplace_back(
          [&shared, &evaluate, &tallies, governor = options.governor, w] {
            WorkerLoop(shared, evaluate, governor, tallies[w]);
          });
    } catch (const std::system_error&) {
      // Thread creation failed (resource exhaustion or the injected
      // fault): degrade to however many workers exist rather than
      // crashing; with none, fall back to the serial path.
      RAV_METRIC_COUNT("era/search/worker_spawn_failures", 1);
      break;
    }
  }
  if (workers.empty()) return SearchInline(nba, options, evaluate);
  num_workers = static_cast<int>(workers.size());

  // The calling thread is the producer: it drains the enumerator in
  // batches and stops as soon as any witness exists (all candidates it
  // would still produce have higher ranks and cannot win).
  LassoEnumerator enumerator(nba, options.max_lasso_length,
                             options.max_lassos, options.max_search_steps);
  std::vector<LassoCandidate> staged;
  staged.reserve(batch);
  bool witness_seen = false;
  while (!witness_seen) {
    // One governor poll per batch: a trip stops production, and the
    // workers drain whatever is queued without evaluating it.
    if (GovernorCheck(options.governor) != GovernorTrip::kNone) break;
    staged.clear();
    LassoCandidate candidate;
    while (staged.size() < batch &&
           enumerator.Next(&candidate.word, &candidate.index)) {
      staged.push_back(std::move(candidate));
    }
    if (staged.empty()) break;
    std::unique_lock<std::mutex> lock(shared.mu);
    shared.space_ready.wait(lock, [&] {
      return shared.queue.size() < capacity ||
             shared.best_index != kNoWitness;
    });
    if (shared.best_index != kNoWitness) {
      witness_seen = true;
      break;
    }
    for (LassoCandidate& c : staged) shared.queue.push_back(std::move(c));
    RAV_METRIC_RECORD("era/search/queue_depth", shared.queue.size());
    shared.work_ready.notify_all();
  }
  {
    std::lock_guard<std::mutex> lock(shared.mu);
    shared.producer_done = true;
  }
  shared.work_ready.notify_all();
  for (std::thread& t : workers) t.join();

  LassoSearchOutcome outcome;
  if (shared.best_index != kNoWitness) {
    outcome.witness =
        LassoCandidate{shared.best_index, std::move(shared.best_word)};
  }
  const uint64_t pool_ns = NowNs() - pool_start_ns;
  for (const WorkerTally& tally : tallies) {
    outcome.stats.lassos_checked += tally.checked;
    outcome.stats.inconsistent_closures += tally.inconsistent;
    outcome.stats.closures_built += tally.counters.closures_built;
    outcome.stats.closures_extended += tally.counters.closures_extended;
    RAV_METRIC_COUNT("era/search/candidates_cancelled", tally.cancelled);
    RAV_METRIC_COUNT("era/search/worker_busy_ns", tally.busy_ns);
    // Fraction of the pool's lifetime each worker spent evaluating.
    if (pool_ns > 0) {
      RAV_METRIC_RECORD("era/search/worker_utilization_pct",
                        tally.busy_ns * 100 / pool_ns);
    }
  }
  outcome.stats.lassos_enumerated = enumerator.delivered();
  outcome.stats.enumeration_steps = enumerator.steps();
  outcome.stats.workers = num_workers;
  const GovernorTrip trip = options.governor != nullptr
                                ? options.governor->trip()
                                : GovernorTrip::kNone;
  outcome.stats.stop_reason = outcome.witness.has_value()
                                  ? SearchStopReason::kWitnessFound
                              : trip != GovernorTrip::kNone
                                  ? StopReasonOfTrip(trip)
                                  : FromEnumStop(enumerator.stop());
  return outcome;
}

}  // namespace

SearchStopReason StopReasonOfTrip(GovernorTrip trip) {
  switch (trip) {
    case GovernorTrip::kDeadline:
      return SearchStopReason::kDeadline;
    case GovernorTrip::kMemoryBudget:
      return SearchStopReason::kMemoryBudget;
    case GovernorTrip::kCancelled:
      return SearchStopReason::kCancelled;
    case GovernorTrip::kNone:
      break;
  }
  return SearchStopReason::kExhausted;
}

const char* SearchStopReasonName(SearchStopReason reason) {
  switch (reason) {
    case SearchStopReason::kWitnessFound:
      return "witness-found";
    case SearchStopReason::kExhausted:
      return "exhausted";
    case SearchStopReason::kLengthBound:
      return "length-bound";
    case SearchStopReason::kLassoBudget:
      return "lasso-budget";
    case SearchStopReason::kStepBudget:
      return "step-budget";
    case SearchStopReason::kDeadline:
      return "deadline";
    case SearchStopReason::kMemoryBudget:
      return "memory-budget";
    case SearchStopReason::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

std::string SearchStats::ToString() const {
  std::ostringstream out;
  out << "stop=" << SearchStopReasonName(stop_reason)
      << " enumerated=" << lassos_enumerated << " checked=" << lassos_checked
      << " closures=" << closures_built
      << " extended=" << closures_extended
      << " inconsistent=" << inconsistent_closures
      << " steps=" << enumeration_steps << " workers=" << workers
      << " wall_ms=" << wall_seconds * 1e3;
  return out.str();
}

LassoSearchOutcome SearchLassos(const Nba& nba,
                                const LassoSearchOptions& options,
                                const LassoEvaluator& evaluate) {
  RAV_TRACE_SPAN("era/search");
  const auto start = std::chrono::steady_clock::now();
  int num_workers = options.num_workers;
  if (num_workers == 0) {
    num_workers = static_cast<int>(std::thread::hardware_concurrency());
  }
  LassoSearchOutcome outcome =
      num_workers <= 1 ? SearchInline(nba, options, evaluate)
                       : SearchParallel(nba, options, evaluate, num_workers);
  outcome.stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  RAV_METRIC_COUNT("era/search/searches", 1);
  RAV_METRIC_COUNT("era/search/lassos_enumerated",
                   outcome.stats.lassos_enumerated);
  RAV_METRIC_COUNT("era/search/lassos_checked", outcome.stats.lassos_checked);
  RAV_METRIC_COUNT("era/search/enumeration_steps",
                   outcome.stats.enumeration_steps);
  RAV_METRIC_COUNT("era/search/inconsistent_closures",
                   outcome.stats.inconsistent_closures);
  if (outcome.witness.has_value()) {
    RAV_METRIC_COUNT("era/search/witnesses_found", 1);
  }
  RAV_METRIC_SET("era/search/last_workers", outcome.stats.workers);
  return outcome;
}

}  // namespace rav
