#ifndef RAV_ERA_QUASI_REGULAR_H_
#define RAV_ERA_QUASI_REGULAR_H_

#include <memory>

#include "base/status.h"
#include "era/constraint_graph.h"
#include "era/extended_automaton.h"
#include "ra/control.h"

namespace rav {

// Theorem 9 as a first-class object: the quasi-regular characterization of
// Control(𝒜) for an extended automaton. The paper expresses membership as
//   w ∈ SControl(A)  ∧  ∃N. every clique of G_w has size < N
// (a quasi-regular condition in Bojańczyk's sense). For ultimately
// periodic words this class makes the three conjuncts effective:
//   1. ω-regular membership in the SControl Büchi automaton,
//   2. consistency of the ~_w closure on a pumped window,
//   3. boundedness of the adom-class clique (detected by comparing the
//      clique across two window sizes, the Example 8 guard).
//
// The automaton part must be complete (completeness makes control symbols
// carry full types, Theorem 9's standing assumption).
class QuasiRegularControl {
 public:
  // Takes a snapshot of the automaton; `era` need not outlive the object.
  static Result<QuasiRegularControl> Build(const ExtendedAutomaton& era);

  // The verdict for one ultimately periodic control word, with the
  // evidence that produced it.
  struct Verdict {
    bool in_scontrol = false;
    bool closure_consistent = false;
    bool clique_bounded = false;
    int clique = -1;  // clique of G_w on the checked window (-1: skipped)
    bool member() const {
      return in_scontrol && closure_consistent && clique_bounded;
    }
  };

  // Membership of u·v^ω (of control-alphabet symbols) in Control(𝒜).
  // `pump` = 0 uses SuggestedPumpCount.
  Verdict Contains(const LassoWord& control_word, size_t pump = 0) const;

  const ControlAlphabet& alphabet() const { return *alphabet_; }
  const Nba& scontrol_nba() const { return *scontrol_; }

 private:
  QuasiRegularControl() = default;

  // Shared pointers keep the object cheaply copyable (Result<T> moves).
  std::shared_ptr<const ExtendedAutomaton> era_;
  std::shared_ptr<const ControlAlphabet> alphabet_;
  std::shared_ptr<const Nba> scontrol_;
};

}  // namespace rav

#endif  // RAV_ERA_QUASI_REGULAR_H_
