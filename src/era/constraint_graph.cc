#include "era/constraint_graph.h"

#include <algorithm>

#include "base/metrics.h"

namespace rav {

namespace {

// Callers that don't thread a ClosureScratch (one-off closures, the
// containment checks) fall back to a per-thread instance so they still
// amortize the sweep buffers instead of reallocating them per closure.
ClosureScratch& ThreadLocalClosureScratch() {
  thread_local ClosureScratch scratch;
  return scratch;
}

// Sequential reader of a lasso word's symbols from a start position: one
// modulo at construction instead of one per SymbolAt call. Reading past
// the prefix of a cycle-less word is the caller's error (as with
// SymbolAt).
class SymbolCursor {
 public:
  SymbolCursor(const LassoWord& w, size_t pos) : w_(w), pos_(pos) {
    if (pos_ >= w.prefix.size() && !w.cycle.empty()) {
      cyc_ = (pos_ - w.prefix.size()) % w.cycle.size();
    }
  }

  int Next() {
    if (pos_ < w_.prefix.size()) {
      return w_.prefix[pos_++];
    }
    ++pos_;
    const int s = w_.cycle[cyc_];
    if (++cyc_ == w_.cycle.size()) cyc_ = 0;
    return s;
  }

 private:
  const LassoWord& w_;
  size_t pos_;
  size_t cyc_ = 0;
};

}  // namespace

ConstraintClosure::ConstraintClosure(const ExtendedAutomaton& era,
                                     const ControlAlphabet& alphabet,
                                     const LassoWord& control_word,
                                     size_t window, ClosureScratch* scratch,
                                     ClosureEngine engine)
    : era_(&era),
      alphabet_(&alphabet),
      word_(control_word),
      k_(era.automaton().num_registers()),
      num_constants_(era.automaton().schema().num_constants()),
      window_(window),
      engine_(engine) {
  RAV_CHECK_GE(window, 1u);
  if (engine_ == ClosureEngine::kAuto) {
    // The linear sweep's per-constraint setup (coreachable/accept tables,
    // start-state map, group buffers) only pays off once the window dwarfs
    // the constraint DFAs; below that the reference restarts are cheaper.
    auto_engine_ = true;
    int max_states = 0;
    for (const auto& c : era.constraints()) {
      max_states = std::max(max_states, c.dfa.num_states());
    }
    engine_ = window_ >= 2 * static_cast<size_t>(max_states)
                  ? ClosureEngine::kLinear
                  : ClosureEngine::kReference;
  }
  uf_.Reset(num_nodes());
  node_in_adom_.assign(num_nodes(), false);
  // Constants are part of the active domain by definition.
  for (int c = 0; c < num_constants_; ++c) {
    node_in_adom_[ConstantNode(c)] = true;
  }

  ClosureScratch& s =
      scratch != nullptr ? *scratch : ThreadLocalClosureScratch();
  ApplyTypes(0, s);
  if (engine_ == ClosureEngine::kLinear) {
    SweepConstraints(0, s);
  } else {
    ReferenceSweep();
  }
  Finalize(s);

  RAV_METRIC_COUNT("era/closure/built", 1);
  RAV_METRIC_RECORD("era/closure/nodes", num_nodes());
  RAV_METRIC_RECORD("era/closure/classes", num_classes_);
  RAV_METRIC_RECORD("era/closure/ineq_edges", ineq_edges_.size());
  if (!consistent_) RAV_METRIC_COUNT("era/closure/inconsistent", 1);
}

ConstraintClosure ConstraintClosure::ExtendedBy(size_t extra_cycles,
                                                ClosureScratch* scratch) const {
  const size_t extra = extra_cycles * word_.cycle.size();
  if (engine_ == ClosureEngine::kReference) {
    // The reference engine keeps no sweep state; rebuild at the larger
    // window (an auto-picked reference closure re-resolves there, so a
    // small window extended into a large one gets the linear engine).
    return ConstraintClosure(
        *era_, *alphabet_, word_, window_ + extra, scratch,
        auto_engine_ ? ClosureEngine::kAuto : ClosureEngine::kReference);
  }
  ConstraintClosure out(*this);
  if (extra == 0) return out;

  ClosureScratch& s =
      scratch != nullptr ? *scratch : ThreadLocalClosureScratch();
  const size_t old_window = out.window_;
  out.window_ += extra;
  out.node_in_adom_.resize(out.num_nodes(), false);
  for (int v = 0; v < static_cast<int>(extra) * out.k_; ++v) out.uf_.Add();

  // The old last position was applied x̄-restricted; now that it has a
  // successor, re-apply its full type (a superset of the restriction, so
  // re-application only adds the constraints a from-scratch closure over
  // the larger window would have).
  out.ApplyTypes(old_window - 1, s);
  out.SweepConstraints(old_window, s);
  out.Finalize(s);

  RAV_METRIC_COUNT("era/closure/extended", 1);
  RAV_METRIC_RECORD("era/closure/extended_positions", extra);
  if (!out.consistent_) RAV_METRIC_COUNT("era/closure/inconsistent", 1);
  return out;
}

void ConstraintClosure::ApplyOneType(const Type& t, const int* element_to_node,
                                     ClosureScratch& scratch) {
  std::vector<int>& rep = scratch.type_rep_;
  rep.assign(t.num_classes(), -1);
  for (int e = 0; e < t.num_elements(); ++e) {
    int c = t.ClassOf(e);
    if (rep[c] < 0) {
      rep[c] = e;
    } else {
      uf_.Union(element_to_node[rep[c]], element_to_node[e]);
    }
  }
  for (const auto& [c1, c2] : t.disequalities()) {
    raw_ineq_.emplace_back(element_to_node[rep[c1]], element_to_node[rep[c2]]);
  }
  for (const TypeAtom& a : t.atoms()) {
    if (!a.positive) continue;
    for (int c : a.args) node_in_adom_[element_to_node[rep[c]]] = true;
  }
}

void ConstraintClosure::CompileType(const Type& t, ClosureScratch& scratch,
                                    ClosureScratch::TypeProgram& program) {
  std::vector<int>& rep = scratch.type_rep_;
  rep.assign(t.num_classes(), -1);
  for (int e = 0; e < t.num_elements(); ++e) {
    int c = t.ClassOf(e);
    if (rep[c] < 0) {
      rep[c] = e;
    } else {
      program.unions.emplace_back(rep[c], e);
    }
  }
  for (const auto& [c1, c2] : t.disequalities()) {
    program.diseqs.emplace_back(rep[c1], rep[c2]);
  }
  for (const TypeAtom& a : t.atoms()) {
    if (!a.positive) continue;
    for (int c : a.args) program.adom.push_back(rep[c]);
  }
}

void ConstraintClosure::ReferenceApplyTypes(size_t from_pos,
                                            ClosureScratch& scratch) {
  // The original per-position path: every position re-derives class
  // representatives from the Type object, and the last position's
  // restriction is recomputed per closure.
  std::vector<int>& nodes = scratch.element_nodes_;
  for (size_t n = from_pos; n + 1 < window_; ++n) {
    nodes.clear();
    for (int i = 0; i < k_; ++i) nodes.push_back(NodeOf(n, i));
    for (int i = 0; i < k_; ++i) nodes.push_back(NodeOf(n + 1, i));
    for (int c = 0; c < num_constants_; ++c) nodes.push_back(ConstantNode(c));
    ApplyOneType(alphabet_->guard_of(SymbolId(word_.SymbolAt(n))), nodes.data(),
                 scratch);
  }
  Type last = RestrictToX(
      alphabet_->guard_of(SymbolId(word_.SymbolAt(window_ - 1))), k_);
  nodes.clear();
  for (int i = 0; i < k_; ++i) nodes.push_back(NodeOf(window_ - 1, i));
  for (int c = 0; c < num_constants_; ++c) nodes.push_back(ConstantNode(c));
  ApplyOneType(last, nodes.data(), scratch);
}

void ConstraintClosure::ApplyTypes(size_t from_pos, ClosureScratch& scratch) {
  if (engine_ == ClosureEngine::kReference) {
    ReferenceApplyTypes(from_pos, scratch);
    return;
  }
  // With a compiled alphabet the per-symbol programs already exist as
  // compile::GuardOps (lowered once at alphabet build, shared across every
  // closure and every worker) — replay them directly, skipping the
  // per-pass CompileType stage below entirely.
  if (const compile::GuardTableSet* tables = alphabet_->tables()) {
    SymbolCursor cursor(word_, from_pos);
    for (size_t n = from_pos; n + 1 < window_; ++n) {
      const int sym = cursor.Next();
      // One dense load per position; -1 marks a data-trivial guard whose
      // program is empty — the same skip the interpreted path's
      // kEmptyProgram marker takes.
      const GuardId gid = alphabet_->closure_program_of_symbol(SymbolId(sym));
      if (!gid.valid()) continue;
      const compile::GuardOps& ops = tables->closure_ops(gid);
      const int base = num_constants_ + static_cast<int>(n) * k_;
      const int two_k = 2 * k_;
      auto node = [&](int e) { return e < two_k ? base + e : e - two_k; };
      for (const auto& [a, b] : ops.unions) uf_.Union(node(a), node(b));
      for (const auto& [a, b] : ops.diseqs) {
        raw_ineq_.emplace_back(node(a), node(b));
      }
      for (int e : ops.adom) node_in_adom_[node(e)] = true;
    }
    // Last position: the precompiled x̄-restricted program over
    // (k registers at window_-1, constants).
    const GuardId last_gid = alphabet_->x_closure_program_of_symbol(
        SymbolId(word_.SymbolAt(window_ - 1)));
    if (!last_gid.valid()) return;
    const compile::GuardOps& last_ops = tables->x_closure_ops(last_gid);
    const int base = num_constants_ + static_cast<int>(window_ - 1) * k_;
    auto node = [&](int e) { return e < k_ ? base + e : e - k_; };
    for (const auto& [a, b] : last_ops.unions) uf_.Union(node(a), node(b));
    for (const auto& [a, b] : last_ops.diseqs) {
      raw_ineq_.emplace_back(node(a), node(b));
    }
    for (int e : last_ops.adom) node_in_adom_[node(e)] = true;
    return;
  }
  std::vector<int>& nodes = scratch.element_nodes_;
  // Full types of positions with a successor inside the window. The 2k-var
  // type's elements map to (x̄ at n, ȳ at n+1, constants); since
  // NodeOf(n + 1, e - k) == NodeOf(n, e) for k <= e < 2k, element e maps
  // to num_constants_ + n·k + e for e < 2k and to constant e - 2k after.
  // Each distinct symbol is compiled once, then replayed per position.
  constexpr int kUncompiled = -1;
  constexpr int kEmptyProgram = -2;  // trivial guard: nothing to replay
  scratch.program_of_symbol_.assign(alphabet_->size(), kUncompiled);
  scratch.programs_used_ = 0;
  SymbolCursor cursor(word_, from_pos);
  for (size_t n = from_pos; n + 1 < window_; ++n) {
    const int sym = cursor.Next();
    int pi = scratch.program_of_symbol_[sym];
    if (pi == kEmptyProgram) continue;
    if (pi == kUncompiled) {
      pi = scratch.programs_used_;
      if (static_cast<size_t>(pi) == scratch.programs_.size()) {
        scratch.programs_.emplace_back();
      }
      ClosureScratch::TypeProgram& fresh = scratch.programs_[pi];
      fresh.unions.clear();
      fresh.diseqs.clear();
      fresh.adom.clear();
      CompileType(alphabet_->guard_of(SymbolId(sym)), scratch, fresh);
      if (fresh.unions.empty() && fresh.diseqs.empty() &&
          fresh.adom.empty()) {
        scratch.program_of_symbol_[sym] = kEmptyProgram;
        continue;
      }
      ++scratch.programs_used_;
      scratch.program_of_symbol_[sym] = pi;
    }
    const ClosureScratch::TypeProgram& p = scratch.programs_[pi];
    const int base = num_constants_ + static_cast<int>(n) * k_;
    const int two_k = 2 * k_;
    auto node = [&](int e) { return e < two_k ? base + e : e - two_k; };
    for (const auto& [a, b] : p.unions) uf_.Union(node(a), node(b));
    for (const auto& [a, b] : p.diseqs) {
      raw_ineq_.emplace_back(node(a), node(b));
    }
    for (int e : p.adom) node_in_adom_[node(e)] = true;
  }
  // The last position contributes only its x̄-part (precomputed per
  // symbol by the alphabet).
  const Type& last =
      alphabet_->x_restricted_guard_of(SymbolId(word_.SymbolAt(window_ - 1)));
  nodes.clear();
  for (int i = 0; i < k_; ++i) nodes.push_back(NodeOf(window_ - 1, i));
  for (int c = 0; c < num_constants_; ++c) nodes.push_back(ConstantNode(c));
  ApplyOneType(last, nodes.data(), scratch);
}

void ConstraintClosure::SweepConstraints(size_t from_pos,
                                         ClosureScratch& scratch) {
  const std::vector<GlobalConstraint>& constraints = era_->constraints();
  if (from_pos >= window_ || constraints.empty()) return;
  // Control states read at positions [from_pos, window_), resolved once
  // and shared by every constraint's sweep.
  std::vector<int>& qs = scratch.states_at_;
  qs.clear();
  SymbolCursor cursor(word_, from_pos);
  for (size_t m = from_pos; m < window_; ++m) {
    qs.push_back(alphabet_->state_of(SymbolId(cursor.Next())).value());
  }

  int max_q = 0;
  for (int q : qs) max_q = std::max(max_q, q);

  // New parked state is staged in scratch (reading the old state as we
  // go) and assigned to the closure in one shot afterwards.
  std::vector<ClosureSweepGroup>& next_groups = scratch.parked_groups_tmp_;
  std::vector<int>& next_starts = scratch.parked_starts_tmp_;
  next_groups.clear();
  next_starts.clear();
  size_t gi = 0;  // cursor over sweep_groups_ (ordered by constraint)

  for (size_t ci = 0; ci < constraints.size(); ++ci) {
    const GlobalConstraint& c = constraints[ci];
    const Dfa& dfa = c.dfa;
    const int num_dfa_states = dfa.num_states();
    // Flat per-constraint tables: byte copies of the accepting and
    // coreachable bitsets, and the state a run starting on control state
    // q is in after one step (-1 if it can never reach an accept).
    // Constraints added through AddConstraintDfa always carry the
    // precomputed coreachable set; treat a missing one as all-live.
    const bool have_coreach =
        c.coreachable.size() == static_cast<size_t>(num_dfa_states);
    std::vector<char>& live = scratch.live_;
    std::vector<char>& accept = scratch.accept_;
    live.resize(num_dfa_states);
    accept.resize(num_dfa_states);
    for (int s = 0; s < num_dfa_states; ++s) {
      live[s] = !have_coreach || c.coreachable[s];
      accept[s] = dfa.IsAccepting(s);
    }
    std::vector<int>& start_state = scratch.start_state_of_q_;
    start_state.assign(max_q + 1, -1);
    const int* initial_row = dfa.NextRow(dfa.initial());
    for (int q : qs) {
      const int s0 = initial_row[q];
      start_state[q] = live[s0] ? s0 : -1;
    }
    scratch.EnsureStateBuffers(num_dfa_states);
    int cur = 0;
    for (; gi < sweep_groups_.size() &&
           sweep_groups_[gi].constraint == static_cast<int>(ci);
         ++gi) {
      const ClosureSweepGroup& g = sweep_groups_[gi];
      scratch.state_starts_[cur][g.dfa_state].assign(
          sweep_starts_.begin() + g.begin, sweep_starts_.begin() + g.end);
      scratch.occupied_[cur].push_back(g.dfa_state);
    }

    for (size_t t = 0; t < qs.size(); ++t) {
      const int m = static_cast<int>(from_pos + t);
      const int q = qs[t];
      const int nxt = cur ^ 1;
      std::vector<std::vector<int>>& from_side = scratch.state_starts_[cur];
      std::vector<std::vector<int>>& to_side = scratch.state_starts_[nxt];
      std::vector<int>& occ_nxt = scratch.occupied_[nxt];
      // Advance every live run by the state read at position m. Runs
      // converging on the same DFA state merge into one group (smaller
      // start list spliced into the larger); runs entering a state from
      // which no accepting state is reachable are dropped — they can
      // never emit another edge.
      for (int s : scratch.occupied_[cur]) {
        std::vector<int>& src = from_side[s];
        const int to = dfa.NextRow(s)[q];
        if (!live[to]) {
          src.clear();
          continue;
        }
        std::vector<int>& dst = to_side[to];
        if (dst.empty()) {
          dst.swap(src);
          occ_nxt.push_back(to);
        } else {
          if (src.size() > dst.size()) src.swap(dst);
          dst.insert(dst.end(), src.begin(), src.end());
          src.clear();
        }
      }
      scratch.occupied_[cur].clear();
      // A new run starts at position m (the factor q_m...).
      const int s0 = start_state[q];
      if (s0 >= 0) {
        std::vector<int>& dst = to_side[s0];
        if (dst.empty()) occ_nxt.push_back(s0);
        dst.push_back(m);
      }
      // Accepting groups emit their edges against position m. For an
      // equality constraint every start is merged into one class, so the
      // group collapses to a single representative.
      for (int s : occ_nxt) {
        if (!accept[s]) continue;
        const int b = NodeOf(m, c.j.value());
        std::vector<int>& starts = to_side[s];
        if (c.is_equality) {
          for (int n : starts) uf_.Union(NodeOf(n, c.i.value()), b);
          starts.resize(1);
        } else {
          for (int n : starts) {
            raw_ineq_.emplace_back(NodeOf(n, c.i.value()), b);
          }
        }
      }
      cur = nxt;
    }

    // Park the final groups (for ExtendedBy) and restore the all-empty
    // buffer invariant for the next constraint.
    for (int s : scratch.occupied_[cur]) {
      std::vector<int>& starts = scratch.state_starts_[cur][s];
      const int begin = static_cast<int>(next_starts.size());
      next_starts.insert(next_starts.end(), starts.begin(), starts.end());
      next_groups.push_back(ClosureSweepGroup{
          static_cast<int>(ci), s, begin,
          static_cast<int>(next_starts.size())});
      starts.clear();
    }
    scratch.occupied_[cur].clear();
  }

  sweep_groups_ = next_groups;
  sweep_starts_ = next_starts;
}

void ConstraintClosure::ReferenceSweep() {
  for (const GlobalConstraint& c : era_->constraints()) {
    for (size_t n = 0; n < window_; ++n) {
      int dfa_state = c.dfa.initial();
      for (size_t m = n; m < window_; ++m) {
        int q = alphabet_->state_of(SymbolId(word_.SymbolAt(m))).value();
        dfa_state = c.dfa.Next(dfa_state, q);
        if (!c.dfa.IsAccepting(dfa_state)) continue;
        int a = NodeOf(n, c.i.value());
        int b = NodeOf(m, c.j.value());
        if (c.is_equality) {
          uf_.Union(a, b);
        } else {
          raw_ineq_.emplace_back(a, b);
        }
      }
    }
  }
}

void ConstraintClosure::Finalize(ClosureScratch& scratch) {
  // Canonicalize classes: dense ids in smallest-node order, so the
  // assignment depends only on the partition (identical across engines
  // and across build-vs-extend).
  class_of_node_.assign(num_nodes(), -1);
  std::vector<int>& root_to_class = scratch.root_to_class_;
  root_to_class.assign(num_nodes(), -1);
  num_classes_ = 0;
  for (int v = 0; v < num_nodes(); ++v) {
    int root = uf_.Find(v);
    if (root_to_class[root] < 0) root_to_class[root] = num_classes_++;
    class_of_node_[v] = root_to_class[root];
  }
  class_in_adom_.assign(num_classes_, false);
  for (int v = 0; v < num_nodes(); ++v) {
    if (node_in_adom_[v]) class_in_adom_[class_of_node_[v]] = true;
  }

  // Inequality edges at class level, deduplicated; an edge inside one
  // class is a genuine contradiction.
  consistent_ = true;
  ineq_edges_.clear();
  ineq_edges_.reserve(raw_ineq_.size());
  for (const auto& [a, b] : raw_ineq_) {
    int ca = class_of_node_[a];
    int cb = class_of_node_[b];
    if (ca == cb) {
      consistent_ = false;
      continue;
    }
    ineq_edges_.emplace_back(std::min(ca, cb), std::max(ca, cb));
  }
  std::sort(ineq_edges_.begin(), ineq_edges_.end());
  ineq_edges_.erase(std::unique(ineq_edges_.begin(), ineq_edges_.end()),
                    ineq_edges_.end());
}

int ConstraintClosure::ClassOf(int node) const {
  RAV_CHECK_GE(node, 0);
  RAV_CHECK_LT(static_cast<size_t>(node), class_of_node_.size());
  return class_of_node_[node];
}

int ConstraintClosure::NumAdomClasses() const {
  int n = 0;
  for (bool b : class_in_adom_) n += b;
  return n;
}

std::vector<std::pair<int, int>> ConstraintClosure::AdomInequalityEdges()
    const {
  std::vector<std::pair<int, int>> out;
  for (const auto& [a, b] : ineq_edges_) {
    if (class_in_adom_[a] && class_in_adom_[b]) out.emplace_back(a, b);
  }
  return out;
}

namespace {

// Bron–Kerbosch with pivoting over an adjacency-list graph on dense ids.
class CliqueFinder {
 public:
  explicit CliqueFinder(int n) : adj_(n, std::vector<bool>(n, false)), n_(n) {}

  void AddEdge(int a, int b) {
    adj_[a][b] = adj_[b][a] = true;
  }

  int MaxClique() {
    std::vector<int> r, p, x;
    for (int v = 0; v < n_; ++v) p.push_back(v);
    best_ = 0;
    Expand(r, p, x);
    return best_;
  }

 private:
  void Expand(std::vector<int>& r, std::vector<int> p, std::vector<int> x) {
    if (p.empty() && x.empty()) {
      best_ = std::max(best_, static_cast<int>(r.size()));
      return;
    }
    if (static_cast<int>(r.size() + p.size()) <= best_) return;  // bound
    // Pivot: vertex of p ∪ x with most neighbors in p.
    int pivot = -1, pivot_deg = -1;
    for (int v : p) {
      int d = 0;
      for (int u : p) d += adj_[v][u];
      if (d > pivot_deg) {
        pivot_deg = d;
        pivot = v;
      }
    }
    for (int v : x) {
      int d = 0;
      for (int u : p) d += adj_[v][u];
      if (d > pivot_deg) {
        pivot_deg = d;
        pivot = v;
      }
    }
    std::vector<int> candidates;
    for (int v : p) {
      if (pivot < 0 || !adj_[pivot][v]) candidates.push_back(v);
    }
    for (int v : candidates) {
      std::vector<int> p2, x2;
      for (int u : p) {
        if (adj_[v][u]) p2.push_back(u);
      }
      for (int u : x) {
        if (adj_[v][u]) x2.push_back(u);
      }
      r.push_back(v);
      Expand(r, std::move(p2), std::move(x2));
      r.pop_back();
      p.erase(std::find(p.begin(), p.end(), v));
      x.push_back(v);
    }
  }

  std::vector<std::vector<bool>> adj_;
  int n_;
  int best_ = 0;
};

}  // namespace

int ConstraintClosure::AdomCliqueNumber(int max_nodes) const {
  // Compact the adom classes that touch an inequality edge (isolated
  // classes cannot enlarge a clique beyond 1).
  std::vector<std::pair<int, int>> edges = AdomInequalityEdges();
  if (edges.empty()) return NumAdomClasses() > 0 ? 1 : 0;
  std::vector<int> compact(num_classes_, -1);
  int n = 0;
  for (const auto& [a, b] : edges) {
    if (compact[a] < 0) compact[a] = n++;
    if (compact[b] < 0) compact[b] = n++;
  }
  if (n > max_nodes) return -1;
  CliqueFinder finder(n);
  for (const auto& [a, b] : edges) finder.AddEdge(compact[a], compact[b]);
  return finder.MaxClique();
}

std::vector<int> ConstraintClosure::GreedyAdomColoring(int* num_colors) const {
  std::vector<std::vector<int>> neighbors(num_classes_);
  for (const auto& [a, b] : AdomInequalityEdges()) {
    neighbors[a].push_back(b);
    neighbors[b].push_back(a);
  }
  std::vector<int> color(num_classes_, 0);
  int max_color = 0;
  for (int c = 0; c < num_classes_; ++c) {
    if (!class_in_adom_[c]) continue;
    std::vector<bool> used(num_classes_ + 1, false);
    for (int nb : neighbors[c]) {
      if (nb < c && class_in_adom_[nb]) used[color[nb]] = true;
    }
    int pick = 0;
    while (used[pick]) ++pick;
    color[c] = pick;
    max_color = std::max(max_color, pick);
  }
  if (num_colors != nullptr) *num_colors = max_color + 1;
  return color;
}

size_t SuggestedPumpCount(const ExtendedAutomaton& era) {
  size_t pump = 4 + 2 * static_cast<size_t>(era.automaton().num_registers());
  for (const GlobalConstraint& c : era.constraints()) {
    pump += 2 * static_cast<size_t>(c.dfa.num_states());
  }
  return pump;
}

}  // namespace rav
