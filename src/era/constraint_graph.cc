#include "era/constraint_graph.h"

#include <algorithm>
#include <functional>
#include <set>

#include "base/metrics.h"

namespace rav {

ConstraintClosure::ConstraintClosure(const ExtendedAutomaton& era,
                                     const ControlAlphabet& alphabet,
                                     const LassoWord& control_word,
                                     size_t window)
    : k_(era.automaton().num_registers()),
      num_constants_(era.automaton().schema().num_constants()),
      window_(window) {
  RAV_CHECK_GE(window, 1u);
  uf_.Reset(num_nodes());

  std::vector<bool> node_in_adom(num_nodes(), false);
  // Constants are part of the active domain by definition.
  for (int c = 0; c < num_constants_; ++c) {
    node_in_adom[ConstantNode(c)] = true;
  }

  // Raw inequality edges between nodes; converted to class edges at the
  // end.
  std::vector<std::pair<int, int>> raw_ineq;

  // --- Local structure from the transition types ---
  // Maps an element of a 2k-var type at step n to a node.
  auto element_node = [&](size_t n, int element) -> int {
    if (element < k_) return NodeOf(n, element);
    if (element < 2 * k_) return NodeOf(n + 1, element - k_);
    return ConstantNode(element - 2 * k_);
  };
  // Same for an element of a k-var restricted type at the last position.
  auto last_element_node = [&](int element) -> int {
    if (element < k_) return NodeOf(window_ - 1, element);
    return ConstantNode(element - k_);
  };

  auto apply_type = [&](const Type& t,
                        const std::function<int(int)>& node_of) {
    std::vector<int> rep(t.num_classes(), -1);
    for (int e = 0; e < t.num_elements(); ++e) {
      int c = t.ClassOf(e);
      if (rep[c] < 0) {
        rep[c] = e;
      } else {
        uf_.Union(node_of(rep[c]), node_of(e));
      }
    }
    for (const auto& [c1, c2] : t.disequalities()) {
      raw_ineq.emplace_back(node_of(rep[c1]), node_of(rep[c2]));
    }
    for (const TypeAtom& a : t.atoms()) {
      if (!a.positive) continue;
      for (int c : a.args) node_in_adom[node_of(rep[c])] = true;
    }
  };

  for (size_t n = 0; n + 1 < window_; ++n) {
    const Type& t = alphabet.guard_of(control_word.SymbolAt(n));
    apply_type(t, [&](int e) { return element_node(n, e); });
  }
  {
    Type last = RestrictToX(
        alphabet.guard_of(control_word.SymbolAt(window_ - 1)), k_);
    apply_type(last, [&](int e) { return last_element_node(e); });
  }

  // --- Global constraints ---
  for (const GlobalConstraint& c : era.constraints()) {
    for (size_t n = 0; n < window_; ++n) {
      int dfa_state = c.dfa.initial();
      for (size_t m = n; m < window_; ++m) {
        int q = alphabet.state_of(control_word.SymbolAt(m));
        dfa_state = c.dfa.Next(dfa_state, q);
        if (!c.dfa.IsAccepting(dfa_state)) continue;
        int a = NodeOf(n, c.i);
        int b = NodeOf(m, c.j);
        if (c.is_equality) {
          uf_.Union(a, b);
        } else {
          raw_ineq.emplace_back(a, b);
        }
      }
    }
  }

  // --- Canonicalize classes ---
  class_of_node_.assign(num_nodes(), -1);
  std::vector<int> root_to_class(num_nodes(), -1);
  for (int v = 0; v < num_nodes(); ++v) {
    int root = uf_.Find(v);
    if (root_to_class[root] < 0) root_to_class[root] = num_classes_++;
    class_of_node_[v] = root_to_class[root];
  }
  class_in_adom_.assign(num_classes_, false);
  for (int v = 0; v < num_nodes(); ++v) {
    if (node_in_adom[v]) class_in_adom_[class_of_node_[v]] = true;
  }

  // --- Inequality edges; consistency ---
  std::set<std::pair<int, int>> edges;
  for (const auto& [a, b] : raw_ineq) {
    int ca = class_of_node_[a];
    int cb = class_of_node_[b];
    if (ca == cb) {
      consistent_ = false;
      continue;
    }
    edges.emplace(std::min(ca, cb), std::max(ca, cb));
  }
  ineq_edges_.assign(edges.begin(), edges.end());

  RAV_METRIC_COUNT("era/closure/built", 1);
  RAV_METRIC_RECORD("era/closure/nodes", num_nodes());
  RAV_METRIC_RECORD("era/closure/classes", num_classes_);
  RAV_METRIC_RECORD("era/closure/ineq_edges", ineq_edges_.size());
  if (!consistent_) RAV_METRIC_COUNT("era/closure/inconsistent", 1);
}

int ConstraintClosure::ClassOf(int node) const {
  RAV_CHECK_GE(node, 0);
  RAV_CHECK_LT(static_cast<size_t>(node), class_of_node_.size());
  return class_of_node_[node];
}

int ConstraintClosure::NumAdomClasses() const {
  int n = 0;
  for (bool b : class_in_adom_) n += b;
  return n;
}

std::vector<std::pair<int, int>> ConstraintClosure::AdomInequalityEdges()
    const {
  std::vector<std::pair<int, int>> out;
  for (const auto& [a, b] : ineq_edges_) {
    if (class_in_adom_[a] && class_in_adom_[b]) out.emplace_back(a, b);
  }
  return out;
}

namespace {

// Bron–Kerbosch with pivoting over an adjacency-list graph on dense ids.
class CliqueFinder {
 public:
  explicit CliqueFinder(int n) : adj_(n, std::vector<bool>(n, false)), n_(n) {}

  void AddEdge(int a, int b) {
    adj_[a][b] = adj_[b][a] = true;
  }

  int MaxClique() {
    std::vector<int> r, p, x;
    for (int v = 0; v < n_; ++v) p.push_back(v);
    best_ = 0;
    Expand(r, p, x);
    return best_;
  }

 private:
  void Expand(std::vector<int>& r, std::vector<int> p, std::vector<int> x) {
    if (p.empty() && x.empty()) {
      best_ = std::max(best_, static_cast<int>(r.size()));
      return;
    }
    if (static_cast<int>(r.size() + p.size()) <= best_) return;  // bound
    // Pivot: vertex of p ∪ x with most neighbors in p.
    int pivot = -1, pivot_deg = -1;
    for (int v : p) {
      int d = 0;
      for (int u : p) d += adj_[v][u];
      if (d > pivot_deg) {
        pivot_deg = d;
        pivot = v;
      }
    }
    for (int v : x) {
      int d = 0;
      for (int u : p) d += adj_[v][u];
      if (d > pivot_deg) {
        pivot_deg = d;
        pivot = v;
      }
    }
    std::vector<int> candidates;
    for (int v : p) {
      if (pivot < 0 || !adj_[pivot][v]) candidates.push_back(v);
    }
    for (int v : candidates) {
      std::vector<int> p2, x2;
      for (int u : p) {
        if (adj_[v][u]) p2.push_back(u);
      }
      for (int u : x) {
        if (adj_[v][u]) x2.push_back(u);
      }
      r.push_back(v);
      Expand(r, std::move(p2), std::move(x2));
      r.pop_back();
      p.erase(std::find(p.begin(), p.end(), v));
      x.push_back(v);
    }
  }

  std::vector<std::vector<bool>> adj_;
  int n_;
  int best_ = 0;
};

}  // namespace

int ConstraintClosure::AdomCliqueNumber(int max_nodes) const {
  // Compact the adom classes that touch an inequality edge (isolated
  // classes cannot enlarge a clique beyond 1).
  std::vector<std::pair<int, int>> edges = AdomInequalityEdges();
  if (edges.empty()) return NumAdomClasses() > 0 ? 1 : 0;
  std::vector<int> compact(num_classes_, -1);
  int n = 0;
  for (const auto& [a, b] : edges) {
    if (compact[a] < 0) compact[a] = n++;
    if (compact[b] < 0) compact[b] = n++;
  }
  if (n > max_nodes) return -1;
  CliqueFinder finder(n);
  for (const auto& [a, b] : edges) finder.AddEdge(compact[a], compact[b]);
  return finder.MaxClique();
}

std::vector<int> ConstraintClosure::GreedyAdomColoring(int* num_colors) const {
  std::vector<std::vector<int>> neighbors(num_classes_);
  for (const auto& [a, b] : AdomInequalityEdges()) {
    neighbors[a].push_back(b);
    neighbors[b].push_back(a);
  }
  std::vector<int> color(num_classes_, 0);
  int max_color = 0;
  for (int c = 0; c < num_classes_; ++c) {
    if (!class_in_adom_[c]) continue;
    std::vector<bool> used(num_classes_ + 1, false);
    for (int nb : neighbors[c]) {
      if (nb < c && class_in_adom_[nb]) used[color[nb]] = true;
    }
    int pick = 0;
    while (used[pick]) ++pick;
    color[c] = pick;
    max_color = std::max(max_color, pick);
  }
  if (num_colors != nullptr) *num_colors = max_color + 1;
  return color;
}

size_t SuggestedPumpCount(const ExtendedAutomaton& era) {
  size_t pump = 4 + 2 * static_cast<size_t>(era.automaton().num_registers());
  for (const GlobalConstraint& c : era.constraints()) {
    pump += 2 * static_cast<size_t>(c.dfa.num_states());
  }
  return pump;
}

}  // namespace rav
