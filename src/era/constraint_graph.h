#ifndef RAV_ERA_CONSTRAINT_GRAPH_H_
#define RAV_ERA_CONSTRAINT_GRAPH_H_

#include <utility>
#include <vector>

#include "automata/lasso.h"
#include "base/union_find.h"
#include "era/extended_automaton.h"
#include "ra/control.h"

namespace rav {

// The equivalence relation ~_w of Section 3 computed over a finite window
// of a symbolic control word, together with the induced inequality
// structure — the machinery behind Theorem 9 (quasi-regularity and
// witness synthesis), Corollary 10 (emptiness), and the projection
// constructions.
//
// Nodes are the register occurrences (position n < window, register i)
// plus one node per constant symbol (a constant anchors equality across
// the whole run). The closure merges
//   * the equalities of each transition type δ_n,
//   * every Σ equality e=ᵢⱼ whose expression accepts q_n...q_m in the
//     window,
// and records inequality edges from the types' disequalities and from the
// Σ inequality constraints.
//
// The window is a finite under-approximation of the infinite unrolling:
// any contradiction found is genuine; consistency is relative to the
// window (pump the cycle more for higher confidence — see
// SuggestedPumpCount).
class ConstraintClosure {
 public:
  ConstraintClosure(const ExtendedAutomaton& era,
                    const ControlAlphabet& alphabet,
                    const LassoWord& control_word, size_t window);

  size_t window() const { return window_; }
  int num_registers() const { return k_; }

  // Node ids.
  int NodeOf(size_t pos, int reg) const {
    return static_cast<int>(pos) * k_ + reg;
  }
  int ConstantNode(int c) const { return static_cast<int>(window_) * k_ + c; }
  int num_nodes() const {
    return static_cast<int>(window_) * k_ + num_constants_;
  }

  // True iff no forced-equal pair is forced-distinct within the window.
  bool consistent() const { return consistent_; }

  // Dense class id of a node (classes canonicalized by smallest node).
  int ClassOf(int node) const;
  int num_classes() const { return num_classes_; }

  // Class is in adom_w: one of its nodes occurs in a positive relational
  // literal (or is a constant).
  bool ClassInAdom(int class_id) const { return class_in_adom_[class_id]; }
  int NumAdomClasses() const;

  // Deduplicated inequality edges between distinct classes.
  const std::vector<std::pair<int, int>>& InequalityEdges() const {
    return ineq_edges_;
  }

  // The graph G_w of Theorem 9: inequality edges between adom classes.
  std::vector<std::pair<int, int>> AdomInequalityEdges() const;

  // Exact maximum clique of G_w (Bron–Kerbosch); returns -1 if the adom
  // subgraph exceeds `max_nodes` (callers treat that as "too large").
  int AdomCliqueNumber(int max_nodes = 64) const;

  // Greedy coloring of G_w; entry per class (non-adom classes get 0).
  // Returns the colors and sets *num_colors.
  std::vector<int> GreedyAdomColoring(int* num_colors) const;

 private:
  int k_;
  int num_constants_;
  size_t window_;
  UnionFind uf_;
  bool consistent_ = true;
  int num_classes_ = 0;
  std::vector<int> class_of_node_;
  std::vector<bool> class_in_adom_;
  std::vector<std::pair<int, int>> ineq_edges_;  // class pairs, deduped
};

// A pump count sufficient to expose the periodic constraint structure of
// the lasso: enough cycle repetitions that every constraint DFA re-enters
// a previously seen (phase, state) pair at least twice.
size_t SuggestedPumpCount(const ExtendedAutomaton& era);

}  // namespace rav

#endif  // RAV_ERA_CONSTRAINT_GRAPH_H_
