#ifndef RAV_ERA_CONSTRAINT_GRAPH_H_
#define RAV_ERA_CONSTRAINT_GRAPH_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "automata/lasso.h"
#include "base/union_find.h"
#include "era/extended_automaton.h"
#include "ra/control.h"

namespace rav {

// Which global-constraint engine a closure is built with. The linear
// engine is the production path for pumped windows; the reference engine
// keeps the original per-start-position DFA restarts (O(window² · |Σ|))
// for differential testing — both must produce identical classes, edges,
// and verdicts. The default kAuto picks the linear sweep once the window
// is large enough to amortize its per-constraint setup
// (window ≥ 2 · max |Q_dfa|) and the plain restarts below that, where
// the quadratic term is smaller than the setup cost.
enum class ClosureEngine {
  kAuto,
  kLinear,
  kReference,
};

// One live set of constraint-DFA runs parked between sweeps: every start
// position in [begin, end) of the flat start array has driven constraint
// `constraint`'s DFA to `dfa_state` on the factor read so far. For
// equality constraints the range collapses to a single representative
// once the positions have been merged. Flat (indices into one shared
// start array) so parking a closure's sweep state costs two allocations,
// not one per group.
struct ClosureSweepGroup {
  int constraint = 0;
  int dfa_state = 0;
  int begin = 0;
  int end = 0;
};

// Reusable per-thread scratch for closure construction. One instance per
// search worker (it lives inside LassoWorkerCounters) amortizes the
// per-candidate allocations of the sweep and canonicalization across the
// whole search. Not thread-safe: each worker owns its own.
class ClosureScratch {
 public:
  ClosureScratch() = default;

 private:
  friend class ConstraintClosure;

  // Double-buffered per-DFA-state start lists for the sweep's inner loop.
  // Invariant between uses: every list is empty (a live group always has
  // at least one start, so emptiness doubles as the occupancy test). The
  // buffers keep their capacity across positions, constraints, and
  // closures, so a warmed-up sweep allocates nothing per position.
  void EnsureStateBuffers(int num_states) {
    if (static_cast<size_t>(num_states) > state_starts_[0].size()) {
      state_starts_[0].resize(num_states);
      state_starts_[1].resize(num_states);
    }
  }

  std::vector<std::vector<int>> state_starts_[2];
  std::vector<int> occupied_[2];  // states with a group, insertion order
  std::vector<int> states_at_;    // control states of the sweep's positions
  std::vector<char> live_;        // per-constraint coreachable, as bytes
  std::vector<char> accept_;      // per-constraint accepting set, as bytes
  std::vector<int> start_state_of_q_;  // control state -> post-start state

  // A transition type compiled to the node-level operations it induces at
  // a position: union pairs, disequality pairs, and adom marks, all as
  // type-element indices. A pumped window reads the same few symbols over
  // and over, so each symbol is compiled once per ApplyTypes pass and the
  // per-position work collapses to replaying the (usually tiny) program.
  struct TypeProgram {
    std::vector<std::pair<int, int>> unions;
    std::vector<std::pair<int, int>> diseqs;
    std::vector<int> adom;
  };
  std::vector<int> program_of_symbol_;  // symbol -> index, -1 uncompiled
  std::vector<TypeProgram> programs_;   // pooled, reused across passes
  int programs_used_ = 0;

  std::vector<int> root_to_class_;
  std::vector<int> type_rep_;
  std::vector<int> element_nodes_;

  // Staging area for the sweep state being parked (the closure's own
  // copy is assigned from these in one shot at the end of the sweep).
  std::vector<ClosureSweepGroup> parked_groups_tmp_;
  std::vector<int> parked_starts_tmp_;
};

// The equivalence relation ~_w of Section 3 computed over a finite window
// of a symbolic control word, together with the induced inequality
// structure — the machinery behind Theorem 9 (quasi-regularity and
// witness synthesis), Corollary 10 (emptiness), and the projection
// constructions.
//
// Nodes are one node per constant symbol (a constant anchors equality
// across the whole run) followed by the register occurrences
// (position n < window, register i). The closure merges
//   * the equalities of each transition type δ_n,
//   * every Σ equality e=ᵢⱼ whose expression accepts q_n...q_m in the
//     window,
// and records inequality edges from the types' disequalities and from the
// Σ inequality constraints.
//
// The global constraints are resolved by a single forward sweep: per
// constraint, the live DFA runs are grouped by DFA state (start positions
// whose factors lead to the same state advance together), groups at
// states from which no accepting state is reachable are dropped, and an
// accepting group emits its edges in one pass — O(window · |Q_dfa|) per
// constraint instead of the reference engine's per-start restarts.
//
// The window is a finite under-approximation of the infinite unrolling:
// any contradiction found is genuine; consistency is relative to the
// window (pump the cycle more for higher confidence — see
// SuggestedPumpCount). A closure can be grown in place of a rebuild with
// ExtendedBy, which resumes the sweep after the last position.
class ConstraintClosure {
 public:
  // Builds the closure over the first `window` positions of
  // `control_word`. `scratch` (optional) amortizes temporary allocations
  // across closures — search workers pass their own; without one a
  // per-thread instance is used. `era` and `alphabet` must outlive the
  // closure.
  ConstraintClosure(const ExtendedAutomaton& era,
                    const ControlAlphabet& alphabet,
                    const LassoWord& control_word, size_t window,
                    ClosureScratch* scratch = nullptr,
                    ClosureEngine engine = ClosureEngine::kAuto);

  // The closure of the same word over window() + extra_cycles · period
  // positions, computed by resuming this closure's sweep instead of
  // rebuilding from position 0. Identical (classes, edges, consistency)
  // to a from-scratch closure over the larger window.
  ConstraintClosure ExtendedBy(size_t extra_cycles,
                               ClosureScratch* scratch = nullptr) const;

  size_t window() const { return window_; }
  int num_registers() const { return k_; }
  int num_constants() const { return num_constants_; }
  // The engine the closure was actually built with (kAuto resolves to
  // kLinear or kReference in the constructor).
  ClosureEngine engine() const { return engine_; }

  // Node ids: constants first (stable under ExtendedBy), then the
  // register occurrences in position-major order.
  int ConstantNode(int c) const { return c; }
  int NodeOf(size_t pos, int reg) const {
    return num_constants_ + static_cast<int>(pos) * k_ + reg;
  }
  int num_nodes() const {
    return num_constants_ + static_cast<int>(window_) * k_;
  }

  // True iff no forced-equal pair is forced-distinct within the window.
  bool consistent() const { return consistent_; }

  // Dense class id of a node (classes canonicalized by smallest node).
  int ClassOf(int node) const;
  int num_classes() const { return num_classes_; }

  // Class is in adom_w: one of its nodes occurs in a positive relational
  // literal (or is a constant).
  bool ClassInAdom(int class_id) const { return class_in_adom_[class_id]; }
  int NumAdomClasses() const;

  // Deduplicated inequality edges between distinct classes.
  const std::vector<std::pair<int, int>>& InequalityEdges() const {
    return ineq_edges_;
  }

  // The graph G_w of Theorem 9: inequality edges between adom classes.
  std::vector<std::pair<int, int>> AdomInequalityEdges() const;

  // Exact maximum clique of G_w (Bron–Kerbosch); returns -1 if the adom
  // subgraph exceeds `max_nodes` (callers treat that as "too large").
  int AdomCliqueNumber(int max_nodes = 64) const;

  // Greedy coloring of G_w; entry per class (non-adom classes get 0).
  // Returns the colors and sets *num_colors.
  std::vector<int> GreedyAdomColoring(int* num_colors) const;

  // Approximate heap footprint of this closure, for governor memory
  // accounting (the dominant per-node and per-edge containers; not exact
  // malloc bookkeeping). Scales linearly with window · registers, so a
  // memory budget trips after boundedly many windows of a given size.
  size_t ApproxBytes() const {
    return sizeof(*this) +
           static_cast<size_t>(num_nodes()) * sizeof(int) +  // union-find
           node_in_adom_.capacity() * sizeof(char) +
           raw_ineq_.capacity() * sizeof(std::pair<int, int>) +
           sweep_groups_.capacity() * sizeof(ClosureSweepGroup) +
           sweep_starts_.capacity() * sizeof(int) +
           class_of_node_.capacity() * sizeof(int) +
           class_in_adom_.capacity() / 8 +
           ineq_edges_.capacity() * sizeof(std::pair<int, int>);
  }

 private:
  // Applies the transition types of positions [from_pos, window_): full
  // types up to window_ - 2, the x̄-restricted type at the last position.
  // The linear engine compiles each distinct symbol once and replays it;
  // the reference engine re-derives every position from the Type objects,
  // faithful to the original implementation's cost.
  void ApplyTypes(size_t from_pos, ClosureScratch& scratch);
  void ReferenceApplyTypes(size_t from_pos, ClosureScratch& scratch);
  void ApplyOneType(const Type& type, const int* element_to_node,
                    ClosureScratch& scratch);
  // Compiles `type`'s per-position operations into element-index form.
  void CompileType(const Type& type, ClosureScratch& scratch,
                   ClosureScratch::TypeProgram& program);
  // Advances every constraint sweep over positions [from_pos, window_).
  void SweepConstraints(size_t from_pos, ClosureScratch& scratch);
  // The original per-start-restart loop (reference engine only).
  void ReferenceSweep();
  // Recomputes classes, adom flags, deduplicated edges, and consistency
  // from the union-find and the raw edge list.
  void Finalize(ClosureScratch& scratch);

  const ExtendedAutomaton* era_;
  const ControlAlphabet* alphabet_;
  LassoWord word_;
  int k_;
  int num_constants_;
  size_t window_;
  ClosureEngine engine_;  // resolved engine; never kAuto after the ctor
  bool auto_engine_ = false;  // engine_ was picked by the kAuto crossover
  UnionFind uf_;
  bool consistent_ = true;
  int num_classes_ = 0;
  std::vector<char> node_in_adom_;
  std::vector<std::pair<int, int>> raw_ineq_;  // node pairs, with duplicates
  // Live sweep groups (linear engine), ordered by constraint, kept so
  // ExtendedBy can resume after the last position. `sweep_starts_` is the
  // flat start array the groups' [begin, end) ranges index into.
  std::vector<ClosureSweepGroup> sweep_groups_;
  std::vector<int> sweep_starts_;
  std::vector<int> class_of_node_;
  std::vector<bool> class_in_adom_;
  std::vector<std::pair<int, int>> ineq_edges_;  // class pairs, deduped
};

// The original O(window² · |Σ|) closure, for differential testing of the
// linear engine (tests/closure_diff_test.cc, bench_closure).
inline ConstraintClosure ReferenceConstraintClosure(
    const ExtendedAutomaton& era, const ControlAlphabet& alphabet,
    const LassoWord& control_word, size_t window,
    ClosureScratch* scratch = nullptr) {
  return ConstraintClosure(era, alphabet, control_word, window, scratch,
                           ClosureEngine::kReference);
}

// A pump count sufficient to expose the periodic constraint structure of
// the lasso: enough cycle repetitions that every constraint DFA re-enters
// a previously seen (phase, state) pair at least twice.
size_t SuggestedPumpCount(const ExtendedAutomaton& era);

}  // namespace rav

#endif  // RAV_ERA_CONSTRAINT_GRAPH_H_
