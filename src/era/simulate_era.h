#ifndef RAV_ERA_SIMULATE_ERA_H_
#define RAV_ERA_SIMULATE_ERA_H_

#include <optional>
#include <random>

#include "era/extended_automaton.h"
#include "ra/run.h"
#include "ra/simulate.h"
#include "relational/database.h"

namespace rav {

// Randomized generation of constraint-satisfying run prefixes of an
// extended automaton: the underlying sampler proposes runs; prefixes
// violating a global constraint are rejected and re-drawn. With equality
// constraints the sampler also *repairs* proposals where possible, by
// overwriting each constrained target position with the source value
// before the validity check — which makes constraints like Example 5's
// recurring-value pattern samplable in practice rather than by luck.
std::optional<FiniteRun> SampleEraRun(const ExtendedAutomaton& era,
                                      const Database& db, size_t length,
                                      std::mt19937& rng,
                                      const SimulateOptions& options = {},
                                      int max_rejections = 64);

}  // namespace rav

#endif  // RAV_ERA_SIMULATE_ERA_H_
