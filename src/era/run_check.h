#ifndef RAV_ERA_RUN_CHECK_H_
#define RAV_ERA_RUN_CHECK_H_

#include "base/status.h"
#include "era/extended_automaton.h"
#include "ra/run.h"
#include "relational/database.h"

namespace rav {

// Checks every global constraint of `era` on the positions of a finite
// run prefix: for all n ≤ m < length with q_n...q_m ∈ L(e), the value
// (in)equality must hold. A violation found on a prefix is a genuine
// violation of any infinite extension; absence of violations on a prefix
// is of course not a proof for the extension.
Status CheckFiniteRunConstraints(const ExtendedAutomaton& era,
                                 const FiniteRun& run);

// Full validity of a finite run prefix of an extended automaton:
// underlying-automaton validity plus the constraints. `guards` /
// `guard_stats` route the guard checks through the compiled tables, as
// in ValidateRunPrefix.
Status ValidateEraRunPrefix(const ExtendedAutomaton& era, const Database& db,
                            const FiniteRun& run, bool require_initial = true,
                            const compile::TransitionGuardView& guards = {},
                            compile::GuardStats* guard_stats = nullptr);

// Checks every global constraint on the infinite unrolling of a lasso
// run. The check is exact: because both the values and the DFA states are
// ultimately periodic, it suffices to examine source positions n in the
// spine and target positions m within n + spine + 2·period·|dfa| (beyond
// that window, (DFA state, value, phase) triples repeat).
Status CheckLassoRunConstraints(const ExtendedAutomaton& era,
                                const LassoRun& run);

// Full validity of a lasso run of an extended automaton: underlying
// validity (including Büchi) plus the constraints on the unrolling.
Status ValidateEraLassoRun(const ExtendedAutomaton& era, const Database& db,
                           const LassoRun& run,
                           const compile::TransitionGuardView& guards = {},
                           compile::GuardStats* guard_stats = nullptr);

}  // namespace rav

#endif  // RAV_ERA_RUN_CHECK_H_
