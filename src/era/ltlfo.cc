#include "era/ltlfo.h"

#include <queue>

#include "analysis/lint.h"
#include "base/flat_map.h"
#include "base/hash.h"
#include "base/metrics.h"
#include "base/trace.h"
#include "ltl/tableau.h"
#include "ra/transform.h"

namespace rav {

namespace {

// Conjoins a proposition (or its negation) onto a transition-type
// builder. Supports literals and positively-signed conjunctions of
// literals — the shapes quantifier-free LTL-FO propositions take in
// practice. Returns FailedPrecondition when the requested sign cannot be
// expressed as a conjunction of literals.
Status AddFormulaAsLiterals(TypeBuilder& builder, const Formula& formula,
                            bool positive, int k) {
  auto element_of = [&](const Term& t) {
    return t.is_variable() ? t.index : 2 * k + t.index;
  };
  switch (formula.op()) {
    case Formula::Op::kTrue:
      if (!positive) {
        return Status::FailedPrecondition("branch infeasible: ¬true");
      }
      return Status::OK();
    case Formula::Op::kFalse:
      if (positive) {
        return Status::FailedPrecondition("branch infeasible: false");
      }
      return Status::OK();
    case Formula::Op::kEq: {
      ElementIndex a(element_of(formula.lhs()));
      ElementIndex b(element_of(formula.rhs()));
      if (positive) {
        builder.AddEq(a, b);
      } else {
        builder.AddNeq(a, b);
      }
      return Status::OK();
    }
    case Formula::Op::kRel: {
      std::vector<ElementIndex> elements;
      for (const Term& t : formula.args()) {
        elements.push_back(ElementIndex(element_of(t)));
      }
      builder.AddAtom(formula.relation(), std::move(elements), positive);
      return Status::OK();
    }
    case Formula::Op::kNot:
      return AddFormulaAsLiterals(builder, formula.children()[0], !positive,
                                  k);
    case Formula::Op::kAnd:
      if (!positive) {
        return Status::Unimplemented(
            "VerifyLtlFo: negated conjunction propositions are not "
            "literal-expressible; rewrite the proposition");
      }
      for (const Formula& c : formula.children()) {
        RAV_RETURN_IF_ERROR(AddFormulaAsLiterals(builder, c, true, k));
      }
      return Status::OK();
    case Formula::Op::kOr:
      return Status::Unimplemented(
          "VerifyLtlFo: disjunctive propositions are not "
          "literal-expressible; split them into separate propositions");
  }
  RAV_CHECK(false);
  return Status::Internal("unreachable");
}

// Refines every transition of `era` so that each guard decides every
// proposition: transitions with undetermined propositions are split by
// the consistent truth assignments. This is the cheap, targeted
// alternative to full completion (which is exponential in the schema).
Result<ExtendedAutomaton> RefineForPropositions(
    const ExtendedAutomaton& era, const std::vector<Formula>& propositions,
    const ExecutionGovernor* governor) {
  const RegisterAutomaton& a = era.automaton();
  const int k = a.num_registers();
  RegisterAutomaton refined(k, a.schema());
  for (StateId s : a.States()) {
    StateId id = refined.AddState(a.state_name(s));
    RAV_CHECK_EQ(id.value(), s.value());
    refined.SetInitial(s, a.IsInitial(s));
    refined.SetFinal(s, a.IsFinal(s));
  }
  const size_t num_props = propositions.size();
  for (int ti = 0; ti < a.num_transitions(); ++ti) {
    // One transition may split into up to 2^16 refined guards, so the
    // per-transition boundary is the safe point here.
    RAV_RETURN_IF_ERROR(GovernorCheckStatus(governor, "VerifyLtlFo: refine"));
    const RaTransition& t = a.transition(ti);
    // Which propositions does the guard leave undetermined?
    std::vector<size_t> undetermined;
    for (size_t p = 0; p < num_props; ++p) {
      if (!EvaluateOnCompleteType(propositions[p], t.guard).ok()) {
        undetermined.push_back(p);
      }
    }
    if (undetermined.empty()) {
      refined.AddTransition(t.from, t.guard, t.to);
      continue;
    }
    if (undetermined.size() > 16) {
      return Status::ResourceExhausted(
          "VerifyLtlFo: too many undetermined propositions per guard");
    }
    for (uint32_t assignment = 0;
         assignment < (uint32_t{1} << undetermined.size()); ++assignment) {
      TypeBuilder builder(2 * k, a.schema().num_constants());
      builder.AddAll(t.guard);
      bool feasible = true;
      for (size_t i = 0; i < undetermined.size() && feasible; ++i) {
        bool sign = (assignment >> i) & 1;
        Status status = AddFormulaAsLiterals(
            builder, propositions[undetermined[i]], sign, k);
        if (status.code() == StatusCode::kFailedPrecondition) {
          feasible = false;
        } else if (!status.ok()) {
          return status;
        }
      }
      if (!feasible) continue;
      Result<Type> guard = builder.Build();
      if (!guard.ok()) continue;  // contradictory branch
      // The branch may still leave a proposition undetermined (e.g. an
      // inequality added as ≠ between classes the relational atoms don't
      // mention); re-check and skip such branches defensively.
      bool decided = true;
      for (size_t i = 0; i < undetermined.size() && decided; ++i) {
        decided =
            EvaluateOnCompleteType(propositions[undetermined[i]], *guard)
                .ok();
      }
      if (!decided) {
        return Status::Internal(
            "VerifyLtlFo: proposition still undetermined after refinement");
      }
      refined.AddTransition(t.from, std::move(guard).value(), t.to);
    }
  }
  ExtendedAutomaton out(std::move(refined));
  for (const GlobalConstraint& c : era.constraints()) {
    RAV_RETURN_IF_ERROR(
        out.AddConstraintDfa(RegisterPair{c.i, c.j}, c.is_equality, c.dfa,
                             c.description));
  }
  return out;
}

}  // namespace

Result<VerificationResult> VerifyLtlFo(const ExtendedAutomaton& era,
                                       const LtlFoProperty& property,
                                       const VerificationOptions& options) {
  (void)options.max_completed_transitions;
  RAV_TRACE_SPAN("era/ltlfo");
  RAV_METRIC_COUNT("era/ltlfo/verifications", 1);
  const ExecutionGovernor* governor = options.emptiness.governor;
  if (options.analyze_and_strip) {
    // The floor rides on the emptiness options, which govern the
    // counterexample search the strip feeds.
    const analysis::StripEffort effort =
        era.automaton().num_transitions() >=
                options.emptiness.min_flow_strip_transitions
            ? analysis::StripEffort::kFlow
            : analysis::StripEffort::kFast;
    analysis::StripResult stripped =
        analysis::AnalyzeAndStrip(era, effort, governor);
    if (stripped.changed()) {
      RAV_METRIC_COUNT("era/ltlfo/strips", 1);
      VerificationOptions inner = options;
      inner.analyze_and_strip = false;
      // Pin the automatic pump to the original constraint list (guard
      // refinement preserves constraints, so this matches the unstripped
      // path exactly).
      if (inner.emptiness.pump == 0) {
        inner.emptiness.pump = SuggestedPumpCount(era);
      }
      return VerifyLtlFo(*stripped.era, property, inner);
    }
  }
  // 1. Refine the automaton so each control symbol decides every
  //    proposition (targeted splitting instead of full completion).
  Result<ExtendedAutomaton> refined_result = [&] {
    RAV_TRACE_SPAN("refine");
    return RefineForPropositions(era, property.propositions, governor);
  }();
  RAV_ASSIGN_OR_RETURN(ExtendedAutomaton refined, std::move(refined_result));
  const ExtendedAutomaton* subject = &refined;
  const RegisterAutomaton& a = subject->automaton();
  ControlAlphabet alphabet(a);

  // 2. Truth of each proposition per control symbol.
  const int num_props = static_cast<int>(property.propositions.size());
  if (property.formula.MaxApIndex() >= num_props) {
    return Status::InvalidArgument(
        "VerifyLtlFo: formula references an uninterpreted proposition");
  }
  std::vector<uint32_t> ap_mask(alphabet.size(), 0);
  for (int s = 0; s < alphabet.size(); ++s) {
    for (int p = 0; p < num_props; ++p) {
      RAV_ASSIGN_OR_RETURN(
          bool truth,
          EvaluateOnCompleteType(property.propositions[p],
                                 alphabet.guard_of(SymbolId(s))));
      if (truth) ap_mask[s] |= uint32_t{1} << p;
    }
  }

  // 3. Büchi automaton of ¬φ over AP valuations.
  Result<LtlAutomaton> neg_result = [&] {
    RAV_TRACE_SPAN("tableau");
    return LtlToNba(LtlFormula::Not(property.formula), num_props);
  }();
  RAV_ASSIGN_OR_RETURN(LtlAutomaton neg, std::move(neg_result));
  RAV_METRIC_RECORD("era/ltlfo/nba_states", neg.nba.num_states());

  // 4. Product with SControl over the control alphabet. Charged per
  //    interned product state and polled per expanded one: the product is
  //    where a hostile property formula blows up.
  ScopedMemoryCharge product_charge(governor);
  Result<Nba> product_result = [&]() -> Result<Nba> {
    RAV_TRACE_SPAN("product");
    Nba scontrol = BuildSControlNba(a, alphabet);
    GeneralizedNba product(alphabet.size(), 2);
    FlatIdMap<std::pair<int, int>, PairHash<int, int>> ids;
    std::queue<int> work;
    auto intern = [&](int sc, int lt) {
      auto [id, inserted] = ids.Intern(std::make_pair(sc, lt));
      if (!inserted) return id;
      RAV_CHECK_EQ(product.AddState(), id);
      product_charge.Add(sizeof(std::pair<int, int>) + 48);
      if (scontrol.IsAccepting(sc)) product.AddToAcceptSet(0, id);
      if (neg.nba.IsAccepting(lt)) product.AddToAcceptSet(1, id);
      work.push(id);
      return id;
    };
    for (int sc : scontrol.initial()) {
      for (int lt : neg.nba.initial()) {
        product.SetInitial(intern(sc, lt));
      }
    }
    while (!work.empty()) {
      RAV_RETURN_IF_ERROR(GovernorCheckStatus(governor, "VerifyLtlFo: product"));
      int id = work.front();
      work.pop();
      auto [sc, lt] = ids.KeyOf(id);
      for (const auto& [symbol, sc2] : scontrol.TransitionsFrom(sc)) {
        for (const auto& [ap, lt2] : neg.nba.TransitionsFrom(lt)) {
          if (static_cast<uint32_t>(ap) != ap_mask[symbol]) continue;
          product.AddTransition(id, symbol, intern(sc2, lt2));
        }
      }
    }
    return product.Degeneralize();
  }();
  RAV_ASSIGN_OR_RETURN(Nba product_nba, std::move(product_result));
  RAV_METRIC_RECORD("era/ltlfo/product_states", product_nba.num_states());

  // 5. Search for a constraint-consistent counterexample lasso.
  EraEmptinessResult search = SearchConsistentLasso(
      *subject, alphabet, product_nba, options.emptiness);

  if (search.nonempty) RAV_METRIC_COUNT("era/ltlfo/counterexamples", 1);

  VerificationResult out;
  out.holds = !search.nonempty;
  out.search_truncated = search.search_truncated;
  if (search.nonempty) out.counterexample = search.control_word;
  out.ltl_closure_size = neg.closure_size;
  out.ltl_nba_states = neg.nba.num_states();
  out.product_states = product_nba.num_states();
  out.lassos_tried = search.lassos_tried;
  out.search_stats = search.stats;
  return out;
}

ExtendedAutomaton AddGlobalVariableRegisters(const ExtendedAutomaton& era,
                                             int count) {
  const RegisterAutomaton& a = era.automaton();
  const int k = a.num_registers();
  const int k_new = k + count;
  RegisterAutomaton b(k_new, a.schema());
  for (StateId s : a.States()) {
    StateId id = b.AddState(a.state_name(s));
    RAV_CHECK_EQ(id.value(), s.value());
    b.SetInitial(s, a.IsInitial(s));
    b.SetFinal(s, a.IsFinal(s));
  }
  for (int ti = 0; ti < a.num_transitions(); ++ti) {
    const RaTransition& t = a.transition(ti);
    TypeBuilder builder(2 * k_new, a.schema().num_constants());
    builder.AddAll(EmbedTransition(t.guard, k, k_new));
    for (int r = k; r < k_new; ++r) {
      // x_r = y_r: the value never changes
      builder.AddEq(ElementIndex(r), ElementIndex(k_new + r));
    }
    Result<Type> guard = builder.Build();
    RAV_CHECK(guard.ok());
    b.AddTransition(t.from, std::move(guard).value(), t.to);
  }
  ExtendedAutomaton out(std::move(b));
  for (const GlobalConstraint& c : era.constraints()) {
    Status s = out.AddConstraintDfa(RegisterPair{c.i, c.j}, c.is_equality,
                                    c.dfa, c.description);
    RAV_CHECK(s.ok());
  }
  return out;
}

}  // namespace rav
