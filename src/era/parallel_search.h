#ifndef RAV_ERA_PARALLEL_SEARCH_H_
#define RAV_ERA_PARALLEL_SEARCH_H_

#include <functional>
#include <optional>
#include <string>
#include <string_view>

#include "automata/nba.h"
#include "base/governor.h"
#include "compile/guard_tables.h"
#include "era/constraint_graph.h"

namespace rav {

// How candidate work is divided among search workers.
//
// kPartitioned is the reference engine: candidates are dealt to workers
// by enumeration rank and every worker evaluates its own candidates from
// scratch. Verdict, witness, and stop reason are byte-identical to the
// serial search for any worker count.
//
// kSharedVisited adds a process-wide visited set: each candidate is
// reduced to the canonical decomposition of its ω-word (primitive cycle,
// minimal prefix — see LassoWord::Canonicalized), interned into a pooled
// concurrent hash set, and evaluated at most once; every later candidate
// denoting the same ω-word reuses the published verdict, so one worker's
// dead subspace is every worker's dead subspace. Verdict and stop reason
// still match the partitioned engine (the evaluator's verdict is a
// function of the ω-word, and the first witness by rank still wins), but
// a witness's word is reported in canonical form rather than in whichever
// decomposition the enumerator happened to deliver first.
enum class SearchMode {
  kPartitioned = 0,
  kSharedVisited = 1,
};

// Stable name ("partitioned", "shared") / its inverse (nullopt on junk).
const char* SearchModeName(SearchMode mode);
std::optional<SearchMode> ParseSearchMode(std::string_view name);

// The default worker count of every search-backed procedure (emptiness,
// LTL-FO verification, LR-boundedness) and of the CLI/service `threads`
// knobs in front of them. One thread: parallelism is strictly opt-in.
inline constexpr int kDefaultSearchWorkers = 1;

// Why a lasso search (the shared core of ERA emptiness, LTL-FO
// verification, and LR-boundedness sampling) stopped. Only kExhausted
// makes a negative verdict definitive; the budget reasons (enumeration
// bounds and governor trips alike) make it bound-relative, and
// procedures must report it as such.
enum class SearchStopReason {
  kWitnessFound = 0,  // the search accepted a lasso and stopped
  kExhausted = 1,     // every candidate within the bounds was examined
  kLengthBound = 2,   // enumeration clipped paths at max_lasso_length
  kLassoBudget = 3,   // enumeration stopped after max_lassos candidates
  kStepBudget = 4,    // enumeration stopped by max_search_steps
  kDeadline = 5,      // the governor's wall-clock deadline passed
  kMemoryBudget = 6,  // the governor's memory budget was exceeded
  kCancelled = 7,     // cooperative cancellation was requested
};

// The search-level stop reason of a governor trip (kExhausted for
// kNone — callers only map actual trips).
SearchStopReason StopReasonOfTrip(GovernorTrip trip);

// Stable human-readable name ("witness-found", "exhausted", ...).
const char* SearchStopReasonName(SearchStopReason reason);

// Instrumentation of one lasso search, threaded through every decision
// procedure result and printed by the benchmarks and rav_cli.
struct SearchStats {
  size_t lassos_enumerated = 0;    // candidates the enumerator produced
  size_t lassos_checked = 0;       // candidates a worker evaluated
  size_t closures_built = 0;       // ConstraintClosure constructions
  size_t closures_extended = 0;    // closures grown via ExtendedBy
  size_t inconsistent_closures = 0;  // candidates rejected as inconsistent
  size_t enumeration_steps = 0;    // DFS node expansions spent
  int workers = 1;                 // worker threads that evaluated lassos
  double wall_seconds = 0.0;
  SearchStopReason stop_reason = SearchStopReason::kExhausted;
  SearchMode mode = SearchMode::kPartitioned;
  // Shared-visited instrumentation (all zero in partitioned mode).
  size_t visited_hits = 0;     // candidates answered from the visited set
  size_t visited_entries = 0;  // distinct canonical ω-words interned
  size_t pool_bytes = 0;       // governor-accounted set + pool bytes
  // Compiled-guard instrumentation (era/guard/* metrics; all zero under
  // GuardEngine::kInterpreted).
  size_t guard_evals = 0;       // valuations decided through compiled tables
  size_t guard_batches = 0;     // SoA EvalBatch passes
  size_t guard_table_bytes = 0;  // bytes of the alphabet's compiled tables

  // True iff a negative verdict is relative to a search bound rather than
  // definitive: the search stopped because a budget ran out — an
  // enumeration bound or a governor limit (deadline, memory,
  // cancellation).
  bool truncated() const {
    return stop_reason == SearchStopReason::kLengthBound ||
           stop_reason == SearchStopReason::kLassoBudget ||
           stop_reason == SearchStopReason::kStepBudget ||
           stop_reason == SearchStopReason::kDeadline ||
           stop_reason == SearchStopReason::kMemoryBudget ||
           stop_reason == SearchStopReason::kCancelled;
  }

  // One line: "stop=exhausted enumerated=12 checked=12 ...".
  std::string ToString() const;
};

// A candidate produced by the enumerator: the lasso plus its enumeration
// rank. Ranks are the deterministic tie-breaker — when several workers
// find witnesses, the lowest rank wins, so the result is identical for
// any worker count.
struct LassoCandidate {
  size_t index = 0;
  LassoWord word;
};

// What a worker concluded about one candidate.
enum class LassoVerdict {
  kWitness,       // accept: first (lowest-rank) witness ends the search
  kInconsistent,  // rejected because its constraint closure is inconsistent
  kReject,        // rejected for any other reason
};

struct LassoSearchOptions {
  size_t max_lasso_length = 12;
  size_t max_lassos = 5000;
  size_t max_search_steps = 500000;
  // Worker threads evaluating candidates. <= 1 runs inline on the calling
  // thread (no thread is spawned); 0 means "all hardware threads".
  int num_workers = kDefaultSearchWorkers;
  // Work-sharing mode; see SearchMode. kSharedVisited requires the
  // evaluator's verdict to be a function of the candidate's ω-word alone
  // (all in-tree evaluators are), since verdicts are reused across
  // decompositions of the same word.
  SearchMode mode = SearchMode::kPartitioned;
  // Candidates handed to the queue per producer push.
  size_t batch_size = 16;
  // Resource governor (nullptr = unlimited). Polled at the engine's safe
  // points — once per candidate on the inline path, per batch on the
  // producer, per candidate on every worker — so a trip stops the search
  // within one candidate's evaluation. A witness found before the trip
  // still wins; otherwise the trip becomes the stop reason and the
  // negative verdict is truncated (never silently definitive).
  const ExecutionGovernor* governor = nullptr;
};

struct LassoSearchOutcome {
  // The accepted candidate of lowest enumeration rank, if any. Identical
  // to what the serial search returns, for every worker count.
  std::optional<LassoCandidate> witness;
  SearchStats stats;
};

// Per-worker counters an evaluator reports into; each worker owns one, so
// evaluators update them without synchronization. Merged into SearchStats.
// Carries the worker's closure scratch buffer, so every closure an
// evaluator builds on this worker reuses the same temporaries.
struct LassoWorkerCounters {
  size_t closures_built = 0;
  size_t closures_extended = 0;
  compile::GuardStats guard;  // compiled guard evaluations (witness checks)
  ClosureScratch scratch;
};

// Evaluates one candidate. Must be safe to call concurrently from several
// threads: it may only read shared state, plus update `counters` (worker-
// owned) and any aggregation state the evaluator itself synchronizes.
using LassoEvaluator =
    std::function<LassoVerdict(const LassoCandidate&, LassoWorkerCounters&)>;

// The shared lasso-search engine behind Corollary 10 emptiness, Theorem 12
// verification, and the Theorem 18 LR-boundedness sampler: enumerates the
// accepting lassos of `nba` (single-threaded, deterministic order) and
// feeds them to `evaluate` on a pool of `num_workers` threads. The first
// witness wins, with deterministic tie-breaking: after any witness is
// found, candidates of higher rank are cancelled, candidates of lower rank
// still complete, and the lowest-rank witness is returned — so verdict and
// witness are byte-identical to the serial search regardless of thread
// count or scheduling. Stats are exact for the run that happened (checked
// counts can exceed the serial run's, since in-flight candidates past the
// witness may still be evaluated before cancellation).
LassoSearchOutcome SearchLassos(const Nba& nba,
                                const LassoSearchOptions& options,
                                const LassoEvaluator& evaluate);

}  // namespace rav

#endif  // RAV_ERA_PARALLEL_SEARCH_H_
