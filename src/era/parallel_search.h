#ifndef RAV_ERA_PARALLEL_SEARCH_H_
#define RAV_ERA_PARALLEL_SEARCH_H_

#include <functional>
#include <optional>
#include <string>

#include "automata/nba.h"
#include "base/governor.h"
#include "era/constraint_graph.h"

namespace rav {

// Why a lasso search (the shared core of ERA emptiness, LTL-FO
// verification, and LR-boundedness sampling) stopped. Only kExhausted
// makes a negative verdict definitive; the budget reasons (enumeration
// bounds and governor trips alike) make it bound-relative, and
// procedures must report it as such.
enum class SearchStopReason {
  kWitnessFound = 0,  // the search accepted a lasso and stopped
  kExhausted = 1,     // every candidate within the bounds was examined
  kLengthBound = 2,   // enumeration clipped paths at max_lasso_length
  kLassoBudget = 3,   // enumeration stopped after max_lassos candidates
  kStepBudget = 4,    // enumeration stopped by max_search_steps
  kDeadline = 5,      // the governor's wall-clock deadline passed
  kMemoryBudget = 6,  // the governor's memory budget was exceeded
  kCancelled = 7,     // cooperative cancellation was requested
};

// The search-level stop reason of a governor trip (kExhausted for
// kNone — callers only map actual trips).
SearchStopReason StopReasonOfTrip(GovernorTrip trip);

// Stable human-readable name ("witness-found", "exhausted", ...).
const char* SearchStopReasonName(SearchStopReason reason);

// Instrumentation of one lasso search, threaded through every decision
// procedure result and printed by the benchmarks and rav_cli.
struct SearchStats {
  size_t lassos_enumerated = 0;    // candidates the enumerator produced
  size_t lassos_checked = 0;       // candidates a worker evaluated
  size_t closures_built = 0;       // ConstraintClosure constructions
  size_t closures_extended = 0;    // closures grown via ExtendedBy
  size_t inconsistent_closures = 0;  // candidates rejected as inconsistent
  size_t enumeration_steps = 0;    // DFS node expansions spent
  int workers = 1;                 // worker threads that evaluated lassos
  double wall_seconds = 0.0;
  SearchStopReason stop_reason = SearchStopReason::kExhausted;

  // True iff a negative verdict is relative to a search bound rather than
  // definitive: the search stopped because a budget ran out — an
  // enumeration bound or a governor limit (deadline, memory,
  // cancellation).
  bool truncated() const {
    return stop_reason == SearchStopReason::kLengthBound ||
           stop_reason == SearchStopReason::kLassoBudget ||
           stop_reason == SearchStopReason::kStepBudget ||
           stop_reason == SearchStopReason::kDeadline ||
           stop_reason == SearchStopReason::kMemoryBudget ||
           stop_reason == SearchStopReason::kCancelled;
  }

  // One line: "stop=exhausted enumerated=12 checked=12 ...".
  std::string ToString() const;
};

// A candidate produced by the enumerator: the lasso plus its enumeration
// rank. Ranks are the deterministic tie-breaker — when several workers
// find witnesses, the lowest rank wins, so the result is identical for
// any worker count.
struct LassoCandidate {
  size_t index = 0;
  LassoWord word;
};

// What a worker concluded about one candidate.
enum class LassoVerdict {
  kWitness,       // accept: first (lowest-rank) witness ends the search
  kInconsistent,  // rejected because its constraint closure is inconsistent
  kReject,        // rejected for any other reason
};

struct LassoSearchOptions {
  size_t max_lasso_length = 12;
  size_t max_lassos = 5000;
  size_t max_search_steps = 500000;
  // Worker threads evaluating candidates. <= 1 runs inline on the calling
  // thread (no thread is spawned); 0 means "all hardware threads".
  int num_workers = 1;
  // Candidates handed to the queue per producer push.
  size_t batch_size = 16;
  // Resource governor (nullptr = unlimited). Polled at the engine's safe
  // points — once per candidate on the inline path, per batch on the
  // producer, per candidate on every worker — so a trip stops the search
  // within one candidate's evaluation. A witness found before the trip
  // still wins; otherwise the trip becomes the stop reason and the
  // negative verdict is truncated (never silently definitive).
  const ExecutionGovernor* governor = nullptr;
};

struct LassoSearchOutcome {
  // The accepted candidate of lowest enumeration rank, if any. Identical
  // to what the serial search returns, for every worker count.
  std::optional<LassoCandidate> witness;
  SearchStats stats;
};

// Per-worker counters an evaluator reports into; each worker owns one, so
// evaluators update them without synchronization. Merged into SearchStats.
// Carries the worker's closure scratch buffer, so every closure an
// evaluator builds on this worker reuses the same temporaries.
struct LassoWorkerCounters {
  size_t closures_built = 0;
  size_t closures_extended = 0;
  ClosureScratch scratch;
};

// Evaluates one candidate. Must be safe to call concurrently from several
// threads: it may only read shared state, plus update `counters` (worker-
// owned) and any aggregation state the evaluator itself synchronizes.
using LassoEvaluator =
    std::function<LassoVerdict(const LassoCandidate&, LassoWorkerCounters&)>;

// The shared lasso-search engine behind Corollary 10 emptiness, Theorem 12
// verification, and the Theorem 18 LR-boundedness sampler: enumerates the
// accepting lassos of `nba` (single-threaded, deterministic order) and
// feeds them to `evaluate` on a pool of `num_workers` threads. The first
// witness wins, with deterministic tie-breaking: after any witness is
// found, candidates of higher rank are cancelled, candidates of lower rank
// still complete, and the lowest-rank witness is returned — so verdict and
// witness are byte-identical to the serial search regardless of thread
// count or scheduling. Stats are exact for the run that happened (checked
// counts can exceed the serial run's, since in-flight candidates past the
// witness may still be evaluated before cancellation).
LassoSearchOutcome SearchLassos(const Nba& nba,
                                const LassoSearchOptions& options,
                                const LassoEvaluator& evaluate);

}  // namespace rav

#endif  // RAV_ERA_PARALLEL_SEARCH_H_
