#include "era/prop6.h"

#include <queue>
#include <vector>

#include "base/flat_map.h"
#include "base/hash.h"
#include "types/type.h"

namespace rav {

namespace {

// Bookkeeping component of one equality constraint: bitmask `on` of DFA
// states whose associated register carries an obligated value, bitmask
// `dead` of DFA states of sources that guessed "no future match".
struct Book {
  uint32_t on = 0;
  uint32_t dead = 0;
  auto operator<=>(const Book&) const = default;
};

// Composite control state of the Proposition 6 automaton.
struct CompositeState {
  StateId q;
  std::vector<Book> books;  // one per equality constraint
  auto operator<=>(const CompositeState&) const = default;
};

struct CompositeStateHash {
  size_t operator()(const CompositeState& cs) const {
    size_t seed = cs.books.size();
    HashCombineValue(seed, cs.q.value());
    for (const Book& b : cs.books) {
      HashCombineValue(seed, b.on);
      HashCombineValue(seed, b.dead);
    }
    return seed;
  }
};

}  // namespace

Result<ExtendedAutomaton> EliminateEqualityConstraints(
    const ExtendedAutomaton& era, Prop6Stats* stats,
    const Prop6Options& options) {
  const RegisterAutomaton& a = era.automaton();
  const int k = a.num_registers();

  // Split the constraints.
  std::vector<const GlobalConstraint*> eqs;
  std::vector<const GlobalConstraint*> ineqs;
  for (const GlobalConstraint& c : era.constraints()) {
    (c.is_equality ? eqs : ineqs).push_back(&c);
  }

  // Register layout: original registers 0..k-1, then one register per
  // (equality constraint, DFA state).
  std::vector<int> reg_base(eqs.size(), 0);
  int k_new = k;
  for (size_t c = 0; c < eqs.size(); ++c) {
    if (eqs[c]->dfa.num_states() > 30) {
      return Status::ResourceExhausted(
          "EliminateEqualityConstraints: constraint DFA too large for the "
          "bitmask encoding (max 30 states)");
    }
    reg_base[c] = k_new;
    k_new += eqs[c]->dfa.num_states();
  }

  RegisterAutomaton b(k_new, a.schema());

  // Interned composite states.
  FlatIdMap<CompositeState, CompositeStateHash> ids;
  std::queue<StateId> work;
  auto intern = [&](const CompositeState& cs) -> Result<StateId> {
    auto [raw_id, inserted] = ids.Intern(cs);
    StateId id(raw_id);
    if (!inserted) return id;
    if (static_cast<size_t>(raw_id) >= options.max_states) {
      return Status::ResourceExhausted(
          "EliminateEqualityConstraints: state budget exceeded");
    }
    std::string name = a.state_name(cs.q);
    for (const Book& book : cs.books) {
      name += "/" + std::to_string(book.on) + "." + std::to_string(book.dead);
    }
    RAV_CHECK_EQ(b.AddState(name).value(), id.value());
    b.SetInitial(id, false);  // initials set below
    b.SetFinal(id, a.IsFinal(cs.q));
    work.push(id);
    return id;
  };

  // Initial composite states: empty bookkeeping (position 0 is processed
  // by the first transition).
  for (StateId q0 : a.InitialStates()) {
    CompositeState cs{q0, std::vector<Book>(eqs.size())};
    RAV_ASSIGN_OR_RETURN(StateId id, intern(cs));
    b.SetInitial(id, true);
  }

  // Explore. A transition of B from (q, books) follows an A-transition
  // (q, δ, q'') and processes position n (whose state is q): advances all
  // sources by reading q, handles acceptance, and guesses whether a new
  // source starts at position n.
  while (!work.empty()) {
    StateId from_id = work.front();
    work.pop();
    CompositeState from = ids.KeyOf(from_id.value());
    const StateId q = from.q;

    for (int ti : a.TransitionsFrom(q)) {
      const RaTransition& t = a.transition(ti);
      // Per-constraint step: compute the advanced bookkeeping and the
      // guard equalities, branching over the yes/no guess per constraint.
      struct Option {
        Book book;
        // Equalities to conjoin, as element pairs in the k_new transition
        // layout (x_i = i, y_i = k_new + i).
        std::vector<std::pair<int, int>> equalities;
        bool feasible = true;
      };
      // For each constraint, the list of guess options.
      std::vector<std::vector<Option>> per_constraint(eqs.size());
      for (size_t c = 0; c < eqs.size(); ++c) {
        const GlobalConstraint& gc = *eqs[c];
        const Dfa& dfa = gc.dfa;
        const Book& book = from.books[c];

        // Advance the "on" sources by reading q; collect per-target the
        // source registers feeding it.
        Book advanced;
        std::vector<std::pair<int, int>> eq_pairs;
        bool ok = true;
        for (int s = 0; s < dfa.num_states(); ++s) {
          if (!((book.on >> s) & 1)) continue;
          int s2 = dfa.Next(s, q.value());
          // Move the value: y_{r(s2)} = x_{r(s)}; merging sources at the
          // same target state forces their values equal via the shared y.
          eq_pairs.emplace_back(k_new + reg_base[c] + s2, reg_base[c] + s);
          advanced.on |= uint32_t{1} << s2;
          // Acceptance after reading q at this position: the stored value
          // must equal d_n[j], i.e. x_{r(s)} = x_j.
          if (dfa.IsAccepting(s2)) {
            eq_pairs.emplace_back(reg_base[c] + s, gc.j.value());
          }
        }
        // Advance the dead states; any accepting dead state kills the
        // option set entirely (the "no" guess is being refuted).
        for (int s = 0; s < dfa.num_states(); ++s) {
          if (!((book.dead >> s) & 1)) continue;
          int s2 = dfa.Next(s, q.value());
          if (dfa.IsAccepting(s2)) {
            ok = false;
            break;
          }
          advanced.dead |= uint32_t{1} << s2;
        }
        if (!ok) {
          per_constraint[c] = {};  // no option: this A-transition dies
          continue;
        }

        // Guess for the new source at position n (value d_n[i]).
        int s0 = dfa.Next(dfa.initial(), q.value());
        // Option "yes": store d_n[i] into the register of s0 (y-side; if
        // an advanced source shares s0, the shared y forces equality).
        Option yes;
        yes.book = advanced;
        yes.equalities = eq_pairs;
        yes.book.on |= uint32_t{1} << s0;
        yes.equalities.emplace_back(k_new + reg_base[c] + s0, gc.i.value());
        if (dfa.IsAccepting(s0)) {
          // The factor q_n (length 1) matches: d_n[i] = d_n[j].
          yes.equalities.emplace_back(gc.i.value(), gc.j.value());
        }
        // Option "no": the position never participates as a source.
        Option no;
        no.book = advanced;
        no.equalities = eq_pairs;
        if (dfa.IsAccepting(s0)) {
          no.feasible = false;  // immediate refutation of the guess
        } else {
          no.book.dead |= uint32_t{1} << s0;
        }
        per_constraint[c].push_back(yes);
        if (no.feasible) per_constraint[c].push_back(no);
      }

      // Cartesian product over constraints.
      bool dead_transition = false;
      for (size_t c = 0; c < eqs.size(); ++c) {
        if (per_constraint[c].empty()) dead_transition = true;
      }
      if (dead_transition) continue;

      std::vector<size_t> choice(eqs.size(), 0);
      while (true) {
        // Assemble the guard and target bookkeeping for this choice.
        TypeBuilder builder(2 * k_new, a.schema().num_constants());
        builder.AddAll(EmbedTransition(t.guard, k, k_new));
        CompositeState to;
        to.q = t.to;
        to.books.resize(eqs.size());
        for (size_t c = 0; c < eqs.size(); ++c) {
          const Option& opt = per_constraint[c][choice[c]];
          to.books[c] = opt.book;
          for (const auto& [e1, e2] : opt.equalities) {
            builder.AddEq(ElementIndex(e1), ElementIndex(e2));
          }
        }
        Result<Type> guard = builder.Build();
        if (guard.ok()) {
          if (static_cast<size_t>(b.num_transitions()) >=
              options.max_transitions) {
            return Status::ResourceExhausted(
                "EliminateEqualityConstraints: transition budget exceeded");
          }
          RAV_ASSIGN_OR_RETURN(StateId to_id, intern(to));
          b.AddTransition(from_id, std::move(guard).value(), to_id);
        }
        // Next choice.
        size_t c = 0;
        while (c < eqs.size() && choice[c] + 1 == per_constraint[c].size()) {
          choice[c] = 0;
          ++c;
        }
        if (c == eqs.size()) break;
        ++choice[c];
      }
    }
  }

  // Lift the inequality constraints to B's states.
  ExtendedAutomaton out(std::move(b));
  const RegisterAutomaton& b_ref = out.automaton();
  for (const GlobalConstraint* c : ineqs) {
    Dfa lifted(b_ref.num_states(), c->dfa.num_states(), c->dfa.initial());
    for (int s = 0; s < c->dfa.num_states(); ++s) {
      lifted.SetAccepting(s, c->dfa.IsAccepting(s));
      for (StateId bs : b_ref.States()) {
        lifted.SetTransition(s, bs.value(),
                             c->dfa.Next(s, ids.KeyOf(bs.value()).q.value()));
      }
    }
    RAV_RETURN_IF_ERROR(out.AddConstraintDfa(RegisterPair{c->i, c->j},
                                             /*is_equality=*/false,
                                             std::move(lifted),
                                             c->description + " (lifted)"));
  }

  if (stats != nullptr) {
    stats->registers_before = k;
    stats->registers_after = k_new;
    stats->states_before = a.num_states();
    stats->states_after = out.automaton().num_states();
    stats->transitions_before = a.num_transitions();
    stats->transitions_after = out.automaton().num_transitions();
  }
  return out;
}

}  // namespace rav
