#ifndef RAV_ERA_PROP6_H_
#define RAV_ERA_PROP6_H_

#include "base/status.h"
#include "era/extended_automaton.h"

namespace rav {

// Options of the Proposition 6 construction.
struct Prop6Options {
  size_t max_states = 100000;
  size_t max_transitions = 500000;
};

// Statistics reported alongside the construction (benchmark E5).
struct Prop6Stats {
  int registers_before = 0;
  int registers_after = 0;
  int states_before = 0;
  int states_after = 0;
  int transitions_before = 0;
  int transitions_after = 0;
};

// Proposition 6: global *equality* constraints can be compiled away using
// extra registers. Returns an extended automaton B with
//   k' = k + Σ_c |DFA states of c|      registers,
// no equality constraints, and the original inequality constraints lifted
// to B's states, such that Π_k(Reg(D, B)) = Reg(D, A) for every database.
//
// The construction tracks, per equality constraint, which DFA states
// currently carry an obligated source value ("on" registers) and which
// DFA states belong to sources that guessed "no future match" and must
// therefore never reach an accepting state ("dead" states). Guesses are
// resolved nondeterministically at every position, exactly as in the
// paper's proof.
Result<ExtendedAutomaton> EliminateEqualityConstraints(
    const ExtendedAutomaton& era, Prop6Stats* stats = nullptr,
    const Prop6Options& options = {});

}  // namespace rav

#endif  // RAV_ERA_PROP6_H_
