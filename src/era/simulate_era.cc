#include "era/simulate_era.h"

#include "era/run_check.h"

namespace rav {

namespace {

// Overwrites target positions of equality constraints with their source
// values. May break transition guards; the caller re-validates.
void RepairEqualities(const ExtendedAutomaton& era, FiniteRun& run) {
  for (const GlobalConstraint& c : era.constraints()) {
    if (!c.is_equality) continue;
    for (size_t n = 0; n < run.length(); ++n) {
      int state = c.dfa.initial();
      for (size_t m = n; m < run.length(); ++m) {
        state = c.dfa.Next(state, run.states[m]);
        if (c.dfa.IsAccepting(state)) {
          run.values[m][c.j] = run.values[n][c.i];
        }
      }
    }
  }
}

}  // namespace

std::optional<FiniteRun> SampleEraRun(const ExtendedAutomaton& era,
                                      const Database& db, size_t length,
                                      std::mt19937& rng,
                                      const SimulateOptions& options,
                                      int max_rejections) {
  for (int attempt = 0; attempt < max_rejections; ++attempt) {
    std::optional<FiniteRun> run =
        SampleRun(era.automaton(), db, length, rng, options);
    if (!run.has_value()) continue;
    if (ValidateEraRunPrefix(era, db, *run).ok()) return run;
    // Try an equality repair before giving up on this proposal.
    FiniteRun repaired = *run;
    RepairEqualities(era, repaired);
    if (ValidateEraRunPrefix(era, db, repaired).ok()) return repaired;
  }
  return std::nullopt;
}

}  // namespace rav
