#include "era/simulate_era.h"

#include "era/run_check.h"

namespace rav {

namespace {

// Overwrites target positions of equality constraints with their source
// values. May break transition guards; the caller re-validates.
void RepairEqualities(const ExtendedAutomaton& era, FiniteRun& run) {
  for (const GlobalConstraint& c : era.constraints()) {
    if (!c.is_equality) continue;
    for (size_t n = 0; n < run.length(); ++n) {
      int state = c.dfa.initial();
      for (size_t m = n; m < run.length(); ++m) {
        state = c.dfa.Next(state, run.states[m].value());
        if (c.dfa.IsAccepting(state)) {
          run.values[m][c.j.value()] = run.values[n][c.i.value()];
        }
      }
    }
  }
}

}  // namespace

std::optional<FiniteRun> SampleEraRun(const ExtendedAutomaton& era,
                                      const Database& db, size_t length,
                                      std::mt19937& rng,
                                      const SimulateOptions& options,
                                      int max_rejections) {
  // Unless the caller already wired compiled tables in, build a local set
  // for this call: the per-attempt guard checks dominate the sampler, and
  // one Build amortizes over attempts × length evaluations.
  SimulateOptions local_options = options;
  std::optional<compile::GuardTableSet> local_tables;
  std::vector<GuardId> local_guard_ids;
  compile::TransitionGuardView local_view;
  if (options.guards == nullptr &&
      compile::ResolveGuardEngine(compile::GuardEngine::kAuto) ==
          compile::GuardEngine::kCompiled) {
    const RegisterAutomaton& automaton = era.automaton();
    std::vector<const Type*> guards;
    guards.reserve(automaton.num_transitions());
    for (int ti = 0; ti < automaton.num_transitions(); ++ti) {
      guards.push_back(&automaton.transition(ti).guard);
    }
    local_tables = compile::GuardTableSet::Build(
        guards, automaton.num_registers(),
        automaton.schema().num_constants(), &local_guard_ids);
    local_view = {&*local_tables, local_guard_ids.data()};
    local_options.guards = &local_view;
  }
  const compile::TransitionGuardView validate_view =
      local_options.guards != nullptr ? *local_options.guards
                                      : compile::TransitionGuardView{};
  for (int attempt = 0; attempt < max_rejections; ++attempt) {
    std::optional<FiniteRun> run =
        SampleRun(era.automaton(), db, length, rng, local_options);
    if (!run.has_value()) continue;
    if (ValidateEraRunPrefix(era, db, *run, /*require_initial=*/true,
                             validate_view, local_options.guard_stats)
            .ok()) {
      return run;
    }
    // Try an equality repair before giving up on this proposal.
    FiniteRun repaired = *run;
    RepairEqualities(era, repaired);
    if (ValidateEraRunPrefix(era, db, repaired, /*require_initial=*/true,
                             validate_view, local_options.guard_stats)
            .ok()) {
      return repaired;
    }
  }
  return std::nullopt;
}

}  // namespace rav
