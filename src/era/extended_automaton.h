#ifndef RAV_ERA_EXTENDED_AUTOMATON_H_
#define RAV_ERA_EXTENDED_AUTOMATON_H_

#include <string>
#include <vector>

#include "automata/dfa.h"
#include "automata/regex.h"
#include "base/source_location.h"
#include "base/status.h"
#include "ra/register_automaton.h"

namespace rav {

// The ordered register pair (i, j) of a global constraint e∘ᵢⱼ: i is
// read at the matched window's first position, j at its last. One struct
// instead of two adjacent RegisterId parameters, so call sites name the
// direction (and the swappable-parameters tidy gate stays clean).
struct RegisterPair {
  RegisterId i;  // source register, read at the window start
  RegisterId j;  // target register, read at the window end
};

// One global constraint of an extended automaton (Section 3): a regular
// expression over the states Q together with a pair of registers and a
// polarity. A run (d_n, q_n, δ_n) satisfies e=ᵢⱼ if for all n ≤ m with
// q_n ... q_m ∈ L(e), d_n[i] = d_m[j]; the inequality form e≠ᵢⱼ requires
// d_n[i] ≠ d_m[j] instead.
struct GlobalConstraint {
  RegisterId i;            // source register (0-based)
  RegisterId j;            // target register (0-based)
  bool is_equality = true; // e= vs e≠
  Dfa dfa;                 // compiled over the state alphabet Q
  std::string description; // original regex text, for display
  // dfa.CoreachableStates(), precomputed once at AddConstraintDfa time so
  // the constraint-closure sweep can drop dead DFA runs without paying a
  // reverse reachability per closure.
  std::vector<bool> coreachable;
  // Spec-file position of the declaration (io/text_format); invalid for
  // programmatically added constraints.
  SourceLocation loc;
};

// An extended register automaton 𝒜 = (A, Σ): a register automaton plus
// global regular (in)equality constraints. Runs of 𝒜 are the runs of A
// satisfying every constraint in Σ.
class ExtendedAutomaton {
 public:
  explicit ExtendedAutomaton(RegisterAutomaton automaton)
      : automaton_(std::move(automaton)) {}

  const RegisterAutomaton& automaton() const { return automaton_; }
  RegisterAutomaton& mutable_automaton() { return automaton_; }

  const std::vector<GlobalConstraint>& constraints() const {
    return constraints_;
  }

  bool has_equality_constraints() const {
    for (const GlobalConstraint& c : constraints_) {
      if (c.is_equality) return true;
    }
    return false;
  }

  // Adds a constraint given as a compiled regex over the automaton's
  // states (alphabet = num_states).
  Status AddConstraint(RegisterPair regs, bool is_equality, const Regex& regex,
                       std::string description = "");
  // Adds a pre-compiled constraint; dfa alphabet must equal num_states.
  Status AddConstraintDfa(RegisterPair regs, bool is_equality, Dfa dfa,
                          std::string description = "");

  // Parses `regex_text` with state names as symbols (see Regex syntax).
  Status AddConstraintFromText(RegisterPair regs, bool is_equality,
                               const std::string& regex_text);

  // Records the spec-file position of constraint `index` (io/text_format).
  void SetConstraintLocation(int index, SourceLocation loc);

  // Largest number of DFA states among the constraints (the |Σ| parameter
  // of the LR-boundedness analysis), 0 if no constraints.
  int MaxConstraintDfaStates() const;

  std::string ToString() const;

 private:
  RegisterAutomaton automaton_;
  std::vector<GlobalConstraint> constraints_;
};

}  // namespace rav

#endif  // RAV_ERA_EXTENDED_AUTOMATON_H_
