#include "era/quasi_regular.h"

namespace rav {

Result<QuasiRegularControl> QuasiRegularControl::Build(
    const ExtendedAutomaton& era) {
  if (!era.automaton().IsComplete()) {
    return Status::FailedPrecondition(
        "QuasiRegularControl: automaton must be complete (Theorem 9's "
        "standing assumption; use Completed() first)");
  }
  QuasiRegularControl out;
  out.era_ = std::make_shared<const ExtendedAutomaton>(era);
  out.alphabet_ =
      std::make_shared<const ControlAlphabet>(out.era_->automaton());
  out.scontrol_ = std::make_shared<const Nba>(
      BuildSControlNba(out.era_->automaton(), *out.alphabet_));
  return out;
}

QuasiRegularControl::Verdict QuasiRegularControl::Contains(
    const LassoWord& control_word, size_t pump) const {
  Verdict verdict;
  for (int symbol : control_word.prefix) {
    if (symbol < 0 || symbol >= alphabet_->size()) return verdict;
  }
  for (int symbol : control_word.cycle) {
    if (symbol < 0 || symbol >= alphabet_->size()) return verdict;
  }
  verdict.in_scontrol = scontrol_->AcceptsLasso(control_word);
  if (!verdict.in_scontrol) return verdict;

  if (pump == 0) pump = SuggestedPumpCount(*era_);
  const size_t window =
      control_word.prefix.size() + control_word.cycle.size() * pump;
  ConstraintClosure closure(*era_, *alphabet_, control_word, window);
  verdict.closure_consistent = closure.consistent();
  if (!verdict.closure_consistent) return verdict;

  verdict.clique = closure.AdomCliqueNumber();
  if (era_->automaton().schema().num_relations() == 0) {
    // No database: the clique condition is vacuous.
    verdict.clique_bounded = true;
    return verdict;
  }
  ConstraintClosure wider = closure.ExtendedBy(1);
  int wider_clique = wider.AdomCliqueNumber();
  verdict.clique_bounded =
      verdict.clique < 0 || wider_clique < 0 || wider_clique <= verdict.clique;
  return verdict;
}

}  // namespace rav
