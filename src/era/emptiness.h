#ifndef RAV_ERA_EMPTINESS_H_
#define RAV_ERA_EMPTINESS_H_

#include <optional>

#include "base/status.h"
#include "era/constraint_graph.h"
#include "era/extended_automaton.h"
#include "era/parallel_search.h"
#include "ra/emptiness.h"

namespace rav {

// Options of the extended-automaton emptiness search (Corollary 10).
struct EraEmptinessOptions {
  // Bounded lasso enumeration over the SControl NBA.
  size_t max_lasso_length = 12;
  size_t max_lassos = 5000;
  size_t max_search_steps = 500000;
  // Cycle pump count for the constraint-closure window; 0 = automatic
  // (SuggestedPumpCount).
  size_t pump = 0;
  // With a database, reject lassos whose adom inequality graph grows a
  // strictly larger clique when the window is extended by one more cycle
  // (the Example 8 phenomenon: no finite database can support the run).
  bool check_unbounded_adom = true;
  // Node cap for the exact clique computation.
  int clique_max_nodes = 64;
  // Worker threads for the candidate checks (<= 1 = inline serial, 0 =
  // all hardware threads). Verdict and witness are identical for every
  // setting; only wall time and the checked counts vary.
  int num_workers = kDefaultSearchWorkers;
  // Candidates handed to the worker queue per producer push.
  size_t batch_size = 16;
  // Work-sharing mode of the lasso engine (see SearchMode): kPartitioned
  // is the deterministic reference; kSharedVisited dedups candidates by
  // canonical ω-word across workers (same verdict; a witness's word is
  // reported in canonical form).
  SearchMode search_mode = SearchMode::kPartitioned;
  // Run analysis::AnalyzeAndStrip first and search the reduced automaton
  // (dead states/transitions and vacuous constraints removed; verdict and
  // witness are unchanged — the witness is remapped back to the caller's
  // alphabet). Metrics appear under analysis/*.
  bool analyze_and_strip = true;
  // The strip runs at StripEffort::kFlow — whole-graph fireability plus
  // refined Büchi liveness — only when the automaton has at least this
  // many transitions; below, it runs at kFast. The flow fixpoint costs
  // microseconds flat, which a small search cannot recoup (EXPERIMENTS.md
  // E24 puts breakeven near a hundred transitions). 0 forces kFlow
  // everywhere (the differential tests do, to exercise the flow strip on
  // small seeded automata).
  int min_flow_strip_transitions = 64;
  // Resource governor (nullptr = unlimited): polled by the lasso engine
  // at every safe point, charged the approximate bytes of each closure a
  // candidate builds, and forwarded into the strip pre-pass. A trip turns
  // the stop reason into deadline/memory-budget/cancelled and makes any
  // negative verdict truncated. Results computed before the trip are
  // preserved.
  const ExecutionGovernor* governor = nullptr;
};

// Outcome of the emptiness search.
struct EraEmptinessResult {
  // A consistency-checked witness lasso was found: the automaton has an
  // infinite accepting run over some finite database.
  bool nonempty = false;
  LassoWord control_word;  // meaningful iff nonempty
  size_t lassos_tried = 0;
  // True iff the answer is negative AND the search stopped on a budget
  // (steps, lasso count, length clipping, or a governor trip — deadline,
  // memory budget, cancellation) rather than after exhausting the bounded
  // search space — the negative answer is then relative to the bound,
  // never definitive. Derived from stats.stop_reason; kept as a field for
  // ergonomic access.
  bool search_truncated = false;
  // Full instrumentation, including the precise stop reason.
  SearchStats stats;
};

// Decides (boundedly) whether the extended automaton has a run over some
// finite database, implementing the lasso-based counterpart of
// Corollary 10: enumerate accepting symbolic control lassos, close each
// under Σ and the local equalities (Theorem 9's ~_w on a pumped window),
// and keep the first one that is consistent and finitely supportable.
// A positive answer carries a validated witness; a negative answer is
// exhaustive up to the enumeration bounds (reported in the result).
// The automaton part must be complete (call Completed() first).
Result<EraEmptinessResult> CheckEraEmptiness(
    const ExtendedAutomaton& era, const ControlAlphabet& alphabet,
    const EraEmptinessOptions& options = {});

// The search core shared by emptiness and LTL-FO verification: enumerates
// accepting lassos of `nba` (an automaton over the control alphabet — the
// SControl automaton itself, or its product with a property automaton) and
// returns the first lasso whose constraint closure is consistent and
// realizable over a finite database.
EraEmptinessResult SearchConsistentLasso(const ExtendedAutomaton& era,
                                         const ControlAlphabet& alphabet,
                                         const Nba& nba,
                                         const EraEmptinessOptions& options);

// Realizes a consistent control lasso of an extended automaton as a
// finite database plus a run prefix of `length` positions satisfying both
// the transition types and (within the prefix) the global constraints —
// the constructive content of Theorem 9 applied to the window.
Result<RunWitness> RealizeEraWitness(const ExtendedAutomaton& era,
                                     const ControlAlphabet& alphabet,
                                     const LassoWord& control_word,
                                     size_t length);

// Same, but reuses a prebuilt closure of `control_word` instead of paying
// a rebuild; the realized prefix spans closure.window() positions. The
// closure must have been built for this era/alphabet/word triple.
// `guard_stats` (optional) tallies compiled guard evaluations of the
// final validation pass when the alphabet carries compiled tables.
Result<RunWitness> RealizeEraWitness(const ExtendedAutomaton& era,
                                     const ControlAlphabet& alphabet,
                                     const LassoWord& control_word,
                                     const ConstraintClosure& closure,
                                     compile::GuardStats* guard_stats = nullptr);

}  // namespace rav

#endif  // RAV_ERA_EMPTINESS_H_
