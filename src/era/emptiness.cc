#include "era/emptiness.h"

#include <functional>
#include <map>

#include "analysis/lint.h"
#include "base/metrics.h"
#include "base/trace.h"
#include "era/run_check.h"
#include "ra/run.h"

namespace rav {

namespace {

// Window length for a pumped lasso.
size_t WindowLength(const LassoWord& w, size_t pump) {
  return w.prefix.size() + w.cycle.size() * pump;
}

// Translates a witness found on the stripped automaton back into the
// caller's alphabet: a stripped symbol (q', δ) maps to the original
// symbol (q, δ) where q is the original state with q's name (states keep
// their names and guards are copied verbatim by AnalyzeAndStrip).
Status RemapLassoWord(LassoWord& word,
                      const RegisterAutomaton& stripped_automaton,
                      const ControlAlphabet& stripped_alphabet,
                      const RegisterAutomaton& original_automaton,
                      const ControlAlphabet& original_alphabet) {
  auto remap = [&](std::vector<int>& symbols) -> Status {
    for (int& symbol : symbols) {
      const StateId stripped_state =
          stripped_alphabet.state_of(SymbolId(symbol));
      const StateId original_state = original_automaton.FindState(
          stripped_automaton.state_name(stripped_state));
      if (!original_state.valid()) {
        return Status::Internal("strip witness remap: state vanished");
      }
      const SymbolId original_symbol = original_alphabet.SymbolOf(
          original_state, stripped_alphabet.guard_of(SymbolId(symbol)));
      if (!original_symbol.valid()) {
        return Status::Internal("strip witness remap: symbol vanished");
      }
      symbol = original_symbol.value();
    }
    return Status::OK();
  };
  RAV_RETURN_IF_ERROR(remap(word.prefix));
  return remap(word.cycle);
}

}  // namespace

Result<RunWitness> RealizeEraWitness(const ExtendedAutomaton& era,
                                     const ControlAlphabet& alphabet,
                                     const LassoWord& control_word,
                                     size_t length) {
  if (length == 0) {
    return Status::InvalidArgument("RealizeEraWitness: length 0");
  }
  ConstraintClosure closure(era, alphabet, control_word, length);
  return RealizeEraWitness(era, alphabet, control_word, closure);
}

Result<RunWitness> RealizeEraWitness(const ExtendedAutomaton& era,
                                     const ControlAlphabet& alphabet,
                                     const LassoWord& control_word,
                                     const ConstraintClosure& closure,
                                     compile::GuardStats* guard_stats) {
  const size_t length = closure.window();
  const RegisterAutomaton& automaton = era.automaton();
  const int k = automaton.num_registers();

  if (!closure.consistent()) {
    return Status::InvalidArgument(
        "RealizeEraWitness: constraint closure inconsistent on the window");
  }

  // One fresh value per class.
  auto value_of_class = [](int class_id) -> DataValue { return class_id; };

  // Database: constants and the positive atoms of each position's type.
  Database db(automaton.schema());
  for (int c = 0; c < automaton.schema().num_constants(); ++c) {
    db.SetConstant(c, value_of_class(closure.ClassOf(closure.ConstantNode(c))));
  }

  auto element_class = [&](size_t n, int element) -> int {
    int node;
    if (element < k) {
      node = closure.NodeOf(n, element);
    } else if (element < 2 * k) {
      node = closure.NodeOf(n + 1, element - k);
    } else {
      node = closure.ConstantNode(element - 2 * k);
    }
    return closure.ClassOf(node);
  };
  auto last_element_class = [&](int element) -> int {
    int node = element < k ? closure.NodeOf(length - 1, element)
                           : closure.ConstantNode(element - k);
    return closure.ClassOf(node);
  };

  struct PendingNegative {
    RelationId relation;
    ValueTuple tuple;
  };
  std::vector<PendingNegative> negatives;

  auto process_type = [&](const Type& t,
                          const std::function<int(int)>& class_of_element) {
    std::vector<int> rep(t.num_classes(), -1);
    for (int e = 0; e < t.num_elements(); ++e) {
      if (rep[t.ClassOf(e)] < 0) rep[t.ClassOf(e)] = e;
    }
    for (const TypeAtom& atom : t.atoms()) {
      ValueTuple tuple;
      tuple.reserve(atom.args.size());
      for (int c : atom.args) {
        tuple.push_back(value_of_class(class_of_element(rep[c])));
      }
      if (atom.positive) {
        db.Insert(atom.relation, std::move(tuple));
      } else {
        negatives.push_back(PendingNegative{atom.relation, std::move(tuple)});
      }
    }
  };

  for (size_t n = 0; n + 1 < length; ++n) {
    const Type& t = alphabet.guard_of(SymbolId(control_word.SymbolAt(n)));
    process_type(t, [&](int e) { return element_class(n, e); });
  }
  const Type& last = alphabet.x_restricted_guard_of(
      SymbolId(control_word.SymbolAt(length - 1)));
  process_type(last, [&](int e) { return last_element_class(e); });

  for (const PendingNegative& neg : negatives) {
    if (db.Contains(neg.relation, neg.tuple)) {
      return Status::InvalidArgument(
          "RealizeEraWitness: positive and negative relational literals "
          "collide on the window");
    }
  }

  // Assemble the run.
  FiniteRun run;
  run.values.resize(length);
  run.states.resize(length);
  for (size_t n = 0; n < length; ++n) {
    run.states[n] = alphabet.state_of(SymbolId(control_word.SymbolAt(n)));
    run.values[n].resize(k);
    for (int i = 0; i < k; ++i) {
      run.values[n][i] =
          value_of_class(closure.ClassOf(closure.NodeOf(n, i)));
    }
  }
  for (size_t n = 0; n + 1 < length; ++n) {
    int found = -1;
    const Type& guard = alphabet.guard_of(SymbolId(control_word.SymbolAt(n)));
    for (int ti : automaton.TransitionsFrom(run.states[n])) {
      const RaTransition& t = automaton.transition(ti);
      if (t.to == run.states[n + 1] && t.guard == guard) {
        found = ti;
        break;
      }
    }
    if (found < 0) {
      return Status::InvalidArgument(
          "RealizeEraWitness: control word does not follow the transition "
          "relation");
    }
    run.transition_indices.push_back(found);
  }

  RAV_RETURN_IF_ERROR(ValidateEraRunPrefix(era, db, run,
                                           /*require_initial=*/false,
                                           alphabet.transition_guard_view(),
                                           guard_stats));
  return RunWitness{std::move(db), std::move(run)};
}

Result<EraEmptinessResult> CheckEraEmptiness(
    const ExtendedAutomaton& era, const ControlAlphabet& alphabet,
    const EraEmptinessOptions& options) {
  const RegisterAutomaton& automaton = era.automaton();
  if (!automaton.IsComplete()) {
    return Status::FailedPrecondition(
        "CheckEraEmptiness: automaton must be complete (use Completed())");
  }
  RAV_TRACE_SPAN("era/emptiness");
  if (options.analyze_and_strip) {
    const analysis::StripEffort effort =
        era.automaton().num_transitions() >= options.min_flow_strip_transitions
            ? analysis::StripEffort::kFlow
            : analysis::StripEffort::kFast;
    analysis::StripResult stripped =
        analysis::AnalyzeAndStrip(era, effort, options.governor);
    if (stripped.changed()) {
      RAV_METRIC_COUNT("era/emptiness/strips", 1);
      ControlAlphabet stripped_alphabet(stripped.era->automaton());
      EraEmptinessOptions inner = options;
      inner.analyze_and_strip = false;
      // Pin the automatic pump to the original automaton: the suggested
      // count depends on the constraint list, which stripping may shrink,
      // and the bounded verdict must be identical either way.
      if (inner.pump == 0) inner.pump = SuggestedPumpCount(era);
      RAV_ASSIGN_OR_RETURN(
          EraEmptinessResult result,
          CheckEraEmptiness(*stripped.era, stripped_alphabet, inner));
      if (result.nonempty) {
        RAV_RETURN_IF_ERROR(RemapLassoWord(
            result.control_word, stripped.era->automaton(), stripped_alphabet,
            automaton, alphabet));
      }
      return result;
    }
  }
  Nba scontrol = [&] {
    RAV_TRACE_SPAN("scontrol");
    Nba nba = BuildSControlNba(automaton, alphabet);
    RAV_METRIC_RECORD("era/emptiness/scontrol_states", nba.num_states());
    return nba;
  }();
  return SearchConsistentLasso(era, alphabet, scontrol, options);
}

EraEmptinessResult SearchConsistentLasso(const ExtendedAutomaton& era,
                                         const ControlAlphabet& alphabet,
                                         const Nba& nba,
                                         const EraEmptinessOptions& options) {
  const size_t pump =
      options.pump > 0 ? options.pump : SuggestedPumpCount(era);
  const bool has_database =
      era.automaton().schema().num_relations() > 0;

  // The per-candidate check, run on the engine's workers. It only reads
  // era/alphabet (both const) and builds its closures locally, so it is
  // safe to run concurrently.
  auto evaluate = [&](const LassoCandidate& candidate,
                      LassoWorkerCounters& counters) -> LassoVerdict {
    const LassoWord& lasso = candidate.word;
    const size_t window = WindowLength(lasso, pump);
    ++counters.closures_built;
    ConstraintClosure closure(era, alphabet, lasso, window,
                              &counters.scratch);
    // Account this candidate's closure against the memory budget for as
    // long as it is alive; the engine notices a trip before the next
    // candidate is evaluated.
    ScopedMemoryCharge closure_charge(options.governor,
                                      closure.ApproxBytes());
    if (!closure.consistent()) return LassoVerdict::kInconsistent;
    if (has_database && options.check_unbounded_adom) {
      // Example 8 guard: if one more cycle strictly grows the largest
      // clique of G_w, no finite database can support the infinite
      // run; reject the lasso. The wider closure is grown from the base
      // one instead of rebuilt from scratch.
      ++counters.closures_extended;
      ConstraintClosure wider = closure.ExtendedBy(1, &counters.scratch);
      closure_charge.Add(wider.ApproxBytes());
      int clique_now = closure.AdomCliqueNumber(options.clique_max_nodes);
      int clique_wider = wider.AdomCliqueNumber(options.clique_max_nodes);
      if (clique_now >= 0 && clique_wider >= 0 &&
          clique_wider > clique_now) {
        RAV_METRIC_COUNT("era/emptiness/clique_rejections", 1);
        return LassoVerdict::kReject;
      }
    }
    // Validate by realizing a concrete witness on the window, reusing the
    // closure already built for this candidate.
    Result<RunWitness> witness =
        RealizeEraWitness(era, alphabet, lasso, closure, &counters.guard);
    if (!witness.ok()) {
      RAV_METRIC_COUNT("era/emptiness/witness_rejections", 1);
      return LassoVerdict::kReject;
    }
    RAV_METRIC_COUNT("era/emptiness/witnesses_realized", 1);
    return LassoVerdict::kWitness;
  };

  LassoSearchOptions search_options;
  search_options.max_lasso_length = options.max_lasso_length;
  search_options.max_lassos = options.max_lassos;
  search_options.max_search_steps = options.max_search_steps;
  search_options.num_workers = options.num_workers;
  search_options.batch_size = options.batch_size;
  search_options.mode = options.search_mode;
  search_options.governor = options.governor;
  LassoSearchOutcome outcome = SearchLassos(nba, search_options, evaluate);

  EraEmptinessResult result;
  result.nonempty = outcome.witness.has_value();
  if (outcome.witness.has_value()) {
    result.control_word = std::move(outcome.witness->word);
  }
  result.lassos_tried = outcome.stats.lassos_checked;
  result.stats = outcome.stats;
  result.stats.guard_table_bytes = alphabet.guard_table_bytes();
  if (result.stats.guard_table_bytes > 0) {
    RAV_METRIC_SET("era/guard/table_bytes", result.stats.guard_table_bytes);
  }
  result.search_truncated = outcome.stats.truncated();
  return result;
}

}  // namespace rav
