#include "era/extended_automaton.h"

#include <sstream>

namespace rav {

Status ExtendedAutomaton::AddConstraint(RegisterPair regs, bool is_equality,
                                        const Regex& regex,
                                        std::string description) {
  return AddConstraintDfa(regs, is_equality,
                          regex.ToDfa(automaton_.num_states()),
                          std::move(description));
}

Status ExtendedAutomaton::AddConstraintDfa(RegisterPair regs, bool is_equality,
                                           Dfa dfa, std::string description) {
  const int k = automaton_.num_registers();
  if (regs.i.value() < 0 || regs.i.value() >= k || regs.j.value() < 0 ||
      regs.j.value() >= k) {
    return Status::InvalidArgument("constraint registers out of range");
  }
  if (dfa.alphabet_size() != automaton_.num_states()) {
    return Status::InvalidArgument(
        "constraint DFA alphabet must be the automaton's state set");
  }
  constraints_.push_back(GlobalConstraint{regs.i, regs.j, is_equality,
                                          std::move(dfa),
                                          std::move(description),
                                          /*coreachable=*/{},
                                          /*loc=*/{}});
  constraints_.back().coreachable = constraints_.back().dfa.CoreachableStates();
  return Status::OK();
}

void ExtendedAutomaton::SetConstraintLocation(int index, SourceLocation loc) {
  RAV_CHECK_GE(index, 0);
  RAV_CHECK_LT(index, static_cast<int>(constraints_.size()));
  constraints_[index].loc = loc;
}

Status ExtendedAutomaton::AddConstraintFromText(
    RegisterPair regs, bool is_equality, const std::string& regex_text) {
  auto resolve = [this](const std::string& name) {
    return automaton_.FindState(name).value();
  };
  auto regex = Regex::Parse(regex_text, resolve);
  if (!regex.ok()) return regex.status();
  return AddConstraint(regs, is_equality, regex.value(), regex_text);
}

int ExtendedAutomaton::MaxConstraintDfaStates() const {
  int max_states = 0;
  for (const GlobalConstraint& c : constraints_) {
    max_states = std::max(max_states, c.dfa.num_states());
  }
  return max_states;
}

std::string ExtendedAutomaton::ToString() const {
  std::ostringstream out;
  out << automaton_.ToString();
  for (const GlobalConstraint& c : constraints_) {
    out << "  constraint e" << (c.is_equality ? "=" : "≠") << "["
        << (c.i.value() + 1) << "," << (c.j.value() + 1) << "]";
    if (!c.description.empty()) out << " : " << c.description;
    out << " (dfa " << c.dfa.num_states() << " states)\n";
  }
  return out.str();
}

}  // namespace rav
