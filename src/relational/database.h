#ifndef RAV_RELATIONAL_DATABASE_H_
#define RAV_RELATIONAL_DATABASE_H_

#include <string>
#include <unordered_set>
#include <vector>

#include "base/hash.h"
#include "base/status.h"
#include "base/value.h"
#include "relational/schema.h"

namespace rav {

// A finite database instance D over a Schema σ: one finite relation per
// relation symbol, and an interpretation (a data value) for each constant
// symbol. Matches the paper's Section 2 definition; the active domain is
// every value occurring in some relation plus the constants.
class Database {
 public:
  explicit Database(Schema schema);

  const Schema& schema() const { return schema_; }

  // Inserts a fact R(t̄). Checks the arity. Duplicate inserts are no-ops.
  void Insert(RelationId r, ValueTuple tuple);

  // Removes a fact if present; returns whether it was present.
  bool Erase(RelationId r, const ValueTuple& tuple);

  bool Contains(RelationId r, const ValueTuple& tuple) const;

  // Number of facts in relation r.
  size_t RelationSize(RelationId r) const { return relations_[r].size(); }
  // Total number of facts.
  size_t NumFacts() const;

  const std::unordered_set<ValueTuple, VectorHash<DataValue>>& Relation(
      RelationId r) const {
    RAV_CHECK_GE(r, 0);
    RAV_CHECK_LT(static_cast<size_t>(r), relations_.size());
    return relations_[r];
  }

  // Binds constant symbol c to value v.
  void SetConstant(ConstantId c, DataValue v);
  DataValue constant(ConstantId c) const;

  // All values occurring in relations, plus the constants. Sorted.
  std::vector<DataValue> ActiveDomain() const;

  std::string ToString() const;

 private:
  Schema schema_;
  std::vector<std::unordered_set<ValueTuple, VectorHash<DataValue>>>
      relations_;
  std::vector<DataValue> constants_;
  std::vector<bool> constant_bound_;
};

}  // namespace rav

#endif  // RAV_RELATIONAL_DATABASE_H_
