#include "relational/query.h"

#include <algorithm>
#include <functional>
#include <set>

namespace rav {

Result<ConjunctiveQuery> ConjunctiveQuery::Make(const Schema& schema,
                                                int num_variables,
                                                std::vector<QueryAtom> body,
                                                std::vector<int> head) {
  if (num_variables < 0) {
    return Status::InvalidArgument("query: negative variable count");
  }
  for (const QueryAtom& atom : body) {
    if (atom.relation < 0 || atom.relation >= schema.num_relations()) {
      return Status::InvalidArgument("query: unknown relation in body");
    }
    if (schema.arity(atom.relation) != static_cast<int>(atom.args.size())) {
      return Status::InvalidArgument("query: arity mismatch in body atom");
    }
    for (const QueryTerm& t : atom.args) {
      if (t.kind == QueryTerm::Kind::kVariable &&
          (t.variable < 0 || t.variable >= num_variables)) {
        return Status::InvalidArgument("query: variable out of range");
      }
    }
  }
  for (int h : head) {
    if (h < 0 || h >= num_variables) {
      return Status::InvalidArgument("query: head variable out of range");
    }
  }
  ConjunctiveQuery q;
  q.num_variables_ = num_variables;
  q.body_ = std::move(body);
  q.head_ = std::move(head);
  return q;
}

std::vector<ValueTuple> ConjunctiveQuery::Evaluate(const Database& db) const {
  std::set<ValueTuple> results;
  std::vector<DataValue> binding(num_variables_, 0);
  std::vector<bool> bound(num_variables_, false);
  std::vector<bool> used(body_.size(), false);

  // Greedy atom order: at each step pick the unused atom with the most
  // bound arguments (cheap selectivity heuristic).
  std::function<void()> solve = [&]() {
    // All atoms satisfied: emit the head binding (unbound head variables
    // cannot occur: every head variable must appear in the body to be
    // bound; if not, the query is unsafe and yields nothing).
    size_t next = body_.size();
    int best_bound = -1;
    for (size_t i = 0; i < body_.size(); ++i) {
      if (used[i]) continue;
      int bound_count = 0;
      for (const QueryTerm& t : body_[i].args) {
        if (t.kind == QueryTerm::Kind::kLiteral || bound[t.variable]) {
          ++bound_count;
        }
      }
      if (bound_count > best_bound) {
        best_bound = bound_count;
        next = i;
      }
    }
    if (next == body_.size()) {
      ValueTuple out;
      out.reserve(head_.size());
      for (int h : head_) {
        if (!bound[h]) return;  // unsafe query: head variable never bound
        out.push_back(binding[h]);
      }
      results.insert(std::move(out));
      return;
    }

    const QueryAtom& atom = body_[next];
    used[next] = true;
    for (const ValueTuple& fact : db.Relation(atom.relation)) {
      // Try to unify the fact with the atom.
      std::vector<int> newly_bound;
      bool ok = true;
      for (size_t i = 0; i < atom.args.size() && ok; ++i) {
        const QueryTerm& t = atom.args[i];
        if (t.kind == QueryTerm::Kind::kLiteral) {
          ok = fact[i] == t.literal;
        } else if (bound[t.variable]) {
          ok = fact[i] == binding[t.variable];
        } else {
          bound[t.variable] = true;
          binding[t.variable] = fact[i];
          newly_bound.push_back(t.variable);
        }
      }
      if (ok) solve();
      for (int v : newly_bound) bound[v] = false;
    }
    used[next] = false;
  };
  solve();
  return std::vector<ValueTuple>(results.begin(), results.end());
}

}  // namespace rav
