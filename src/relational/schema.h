#ifndef RAV_RELATIONAL_SCHEMA_H_
#define RAV_RELATIONAL_SCHEMA_H_

#include <string>
#include <vector>

#include "base/interner.h"
#include "base/status.h"

namespace rav {

// Dense id of a relation symbol within a Schema.
using RelationId = int;
// Dense id of a constant symbol within a Schema.
using ConstantId = int;

// A relational signature σ: finitely many relation symbols with arities,
// plus finitely many constant symbols. The empty schema (no relations)
// models the "no database" setting of Sections 4 and 5 of the paper.
class Schema {
 public:
  Schema() = default;

  // Adds a relation symbol; name must be unique among relations.
  // Arity 0 is allowed (a propositional fact).
  RelationId AddRelation(const std::string& name, int arity);

  // Adds a constant symbol; name must be unique among constants.
  ConstantId AddConstant(const std::string& name);

  int num_relations() const { return static_cast<int>(arities_.size()); }
  int num_constants() const { return num_constants_; }

  bool empty() const { return num_relations() == 0 && num_constants() == 0; }

  int arity(RelationId r) const {
    RAV_CHECK_GE(r, 0);
    RAV_CHECK_LT(r, num_relations());
    return arities_[r];
  }

  const std::string& relation_name(RelationId r) const {
    return relation_names_.Get(r);
  }
  const std::string& constant_name(ConstantId c) const {
    return constant_names_.Get(c);
  }

  // Returns -1 if no such relation/constant.
  RelationId FindRelation(const std::string& name) const {
    return relation_names_.Lookup(name);
  }
  ConstantId FindConstant(const std::string& name) const {
    return constant_names_.Lookup(name);
  }

  bool operator==(const Schema& other) const {
    return arities_ == other.arities_ &&
           relation_names_.values() == other.relation_names_.values() &&
           constant_names_.values() == other.constant_names_.values();
  }

  std::string ToString() const;

 private:
  Interner<std::string> relation_names_;
  Interner<std::string> constant_names_;
  std::vector<int> arities_;
  int num_constants_ = 0;
};

}  // namespace rav

#endif  // RAV_RELATIONAL_SCHEMA_H_
