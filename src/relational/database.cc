#include "relational/database.h"

#include <algorithm>
#include <set>
#include <sstream>

namespace rav {

Database::Database(Schema schema) : schema_(std::move(schema)) {
  relations_.resize(schema_.num_relations());
  constants_.resize(schema_.num_constants(), 0);
  constant_bound_.resize(schema_.num_constants(), false);
}

void Database::Insert(RelationId r, ValueTuple tuple) {
  RAV_CHECK_GE(r, 0);
  RAV_CHECK_LT(r, schema_.num_relations());
  RAV_CHECK_EQ(static_cast<int>(tuple.size()), schema_.arity(r));
  relations_[r].insert(std::move(tuple));
}

bool Database::Erase(RelationId r, const ValueTuple& tuple) {
  RAV_CHECK_GE(r, 0);
  RAV_CHECK_LT(r, schema_.num_relations());
  return relations_[r].erase(tuple) > 0;
}

bool Database::Contains(RelationId r, const ValueTuple& tuple) const {
  RAV_CHECK_GE(r, 0);
  RAV_CHECK_LT(r, schema_.num_relations());
  return relations_[r].count(tuple) > 0;
}

size_t Database::NumFacts() const {
  size_t n = 0;
  for (const auto& rel : relations_) n += rel.size();
  return n;
}

void Database::SetConstant(ConstantId c, DataValue v) {
  RAV_CHECK_GE(c, 0);
  RAV_CHECK_LT(c, schema_.num_constants());
  constants_[c] = v;
  constant_bound_[c] = true;
}

DataValue Database::constant(ConstantId c) const {
  RAV_CHECK_GE(c, 0);
  RAV_CHECK_LT(c, schema_.num_constants());
  RAV_CHECK(constant_bound_[c]);
  return constants_[c];
}

std::vector<DataValue> Database::ActiveDomain() const {
  std::set<DataValue> dom;
  for (const auto& rel : relations_) {
    for (const auto& tuple : rel) {
      dom.insert(tuple.begin(), tuple.end());
    }
  }
  for (int c = 0; c < schema_.num_constants(); ++c) {
    if (constant_bound_[c]) dom.insert(constants_[c]);
  }
  return std::vector<DataValue>(dom.begin(), dom.end());
}

std::string Database::ToString() const {
  std::ostringstream out;
  for (int r = 0; r < schema_.num_relations(); ++r) {
    // Sort facts for deterministic output.
    std::vector<ValueTuple> facts(relations_[r].begin(), relations_[r].end());
    std::sort(facts.begin(), facts.end());
    for (const auto& tuple : facts) {
      out << schema_.relation_name(r) << "(";
      for (size_t i = 0; i < tuple.size(); ++i) {
        if (i > 0) out << ", ";
        out << tuple[i];
      }
      out << ")\n";
    }
  }
  for (int c = 0; c < schema_.num_constants(); ++c) {
    if (constant_bound_[c]) {
      out << schema_.constant_name(c) << " = " << constants_[c] << "\n";
    }
  }
  return out.str();
}

}  // namespace rav
