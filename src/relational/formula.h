#ifndef RAV_RELATIONAL_FORMULA_H_
#define RAV_RELATIONAL_FORMULA_H_

#include <memory>
#include <string>
#include <vector>

#include "base/status.h"
#include "base/value.h"
#include "relational/database.h"
#include "relational/schema.h"

namespace rav {

// A term of a quantifier-free FO formula: either a variable (identified by
// a dense index into a valuation vector) or a constant symbol of the
// schema. The variable-index convention used throughout the library for
// transition formulas over x̄ ∪ ȳ with k registers is:
//   index i in [0, k)       — xᵢ₊₁ (registers before the transition)
//   index i in [k, 2k)      — yᵢ₊₁₋ₖ (registers after the transition)
//   index i ≥ 2k            — global variables (LTL-FO z̄)
struct Term {
  enum class Kind { kVariable, kConstant };

  Kind kind = Kind::kVariable;
  int index = 0;  // variable index, or ConstantId

  static Term Var(int index) { return Term{Kind::kVariable, index}; }
  static Term Const(ConstantId c) { return Term{Kind::kConstant, c}; }

  bool is_variable() const { return kind == Kind::kVariable; }

  bool operator==(const Term& o) const {
    return kind == o.kind && index == o.index;
  }
};

// Quantifier-free FO formula over a schema: equality atoms between terms,
// relational atoms, and the boolean connectives. Immutable; shared
// subtrees are fine. This is the formula language used to query the
// database from transitions and as the FO components of LTL-FO.
class Formula {
 public:
  enum class Op { kTrue, kFalse, kEq, kRel, kNot, kAnd, kOr };

  // --- Factories ---
  static Formula True();
  static Formula False();
  static Formula Eq(Term a, Term b);
  static Formula Neq(Term a, Term b);  // sugar for Not(Eq(a, b))
  static Formula Rel(RelationId rel, std::vector<Term> args);
  static Formula NotRel(RelationId rel, std::vector<Term> args);
  static Formula Not(Formula f);
  static Formula And(Formula a, Formula b);
  static Formula Or(Formula a, Formula b);
  static Formula AndAll(const std::vector<Formula>& fs);
  static Formula OrAll(const std::vector<Formula>& fs);

  Op op() const { return node_->op; }
  // For kEq: the two terms.
  Term lhs() const { return node_->terms[0]; }
  Term rhs() const { return node_->terms[1]; }
  // For kRel: relation id and argument terms.
  RelationId relation() const { return node_->relation; }
  const std::vector<Term>& args() const { return node_->terms; }
  // For kNot / kAnd / kOr: children.
  const std::vector<Formula>& children() const { return node_->children; }

  // Evaluates under `valuation` (indexed by variable index) against D.
  // Constants are resolved through D. Variable indices out of range CHECK.
  bool Eval(const Database& db, const ValueTuple& valuation) const;

  // Evaluates a formula that uses no relational atoms and no constants
  // (pure equality logic); does not need a database.
  bool EvalEqualityOnly(const ValueTuple& valuation) const;

  // Largest variable index mentioned, or -1 if none.
  int MaxVariableIndex() const;

  // Renders using names from `schema`; variables print as v<i> unless a
  // register count k is supplied, in which case indices < 2k print as
  // x1..xk / y1..yk.
  std::string ToString(const Schema& schema, int num_registers = -1) const;

 private:
  struct Node {
    Op op;
    RelationId relation = -1;
    std::vector<Term> terms;       // kEq: 2 terms; kRel: args
    std::vector<Formula> children;  // kNot: 1; kAnd/kOr: 2+
  };

  explicit Formula(std::shared_ptr<const Node> node)
      : node_(std::move(node)) {}

  std::shared_ptr<const Node> node_;
};

}  // namespace rav

#endif  // RAV_RELATIONAL_FORMULA_H_
