#include "relational/formula.h"

#include <algorithm>
#include <sstream>

namespace rav {

namespace {

std::string TermToString(const Term& t, const Schema& schema,
                         int num_registers) {
  if (t.kind == Term::Kind::kConstant) return schema.constant_name(t.index);
  if (num_registers > 0 && t.index < 2 * num_registers) {
    if (t.index < num_registers) {
      return "x" + std::to_string(t.index + 1);
    }
    return "y" + std::to_string(t.index - num_registers + 1);
  }
  return "v" + std::to_string(t.index);
}

DataValue ResolveTerm(const Term& t, const Database& db,
                      const ValueTuple& valuation) {
  if (t.kind == Term::Kind::kConstant) return db.constant(t.index);
  RAV_CHECK_GE(t.index, 0);
  RAV_CHECK_LT(static_cast<size_t>(t.index), valuation.size());
  return valuation[t.index];
}

}  // namespace

Formula Formula::True() {
  auto node = std::make_shared<Node>();
  node->op = Op::kTrue;
  return Formula(std::move(node));
}

Formula Formula::False() {
  auto node = std::make_shared<Node>();
  node->op = Op::kFalse;
  return Formula(std::move(node));
}

Formula Formula::Eq(Term a, Term b) {
  auto node = std::make_shared<Node>();
  node->op = Op::kEq;
  node->terms = {a, b};
  return Formula(std::move(node));
}

Formula Formula::Neq(Term a, Term b) { return Not(Eq(a, b)); }

Formula Formula::Rel(RelationId rel, std::vector<Term> args) {
  auto node = std::make_shared<Node>();
  node->op = Op::kRel;
  node->relation = rel;
  node->terms = std::move(args);
  return Formula(std::move(node));
}

Formula Formula::NotRel(RelationId rel, std::vector<Term> args) {
  return Not(Rel(rel, std::move(args)));
}

Formula Formula::Not(Formula f) {
  auto node = std::make_shared<Node>();
  node->op = Op::kNot;
  node->children = {std::move(f)};
  return Formula(std::move(node));
}

Formula Formula::And(Formula a, Formula b) {
  auto node = std::make_shared<Node>();
  node->op = Op::kAnd;
  node->children = {std::move(a), std::move(b)};
  return Formula(std::move(node));
}

Formula Formula::Or(Formula a, Formula b) {
  auto node = std::make_shared<Node>();
  node->op = Op::kOr;
  node->children = {std::move(a), std::move(b)};
  return Formula(std::move(node));
}

Formula Formula::AndAll(const std::vector<Formula>& fs) {
  if (fs.empty()) return True();
  Formula acc = fs[0];
  for (size_t i = 1; i < fs.size(); ++i) acc = And(acc, fs[i]);
  return acc;
}

Formula Formula::OrAll(const std::vector<Formula>& fs) {
  if (fs.empty()) return False();
  Formula acc = fs[0];
  for (size_t i = 1; i < fs.size(); ++i) acc = Or(acc, fs[i]);
  return acc;
}

bool Formula::Eval(const Database& db, const ValueTuple& valuation) const {
  switch (node_->op) {
    case Op::kTrue:
      return true;
    case Op::kFalse:
      return false;
    case Op::kEq:
      return ResolveTerm(node_->terms[0], db, valuation) ==
             ResolveTerm(node_->terms[1], db, valuation);
    case Op::kRel: {
      ValueTuple args;
      args.reserve(node_->terms.size());
      for (const Term& t : node_->terms) {
        args.push_back(ResolveTerm(t, db, valuation));
      }
      return db.Contains(node_->relation, args);
    }
    case Op::kNot:
      return !node_->children[0].Eval(db, valuation);
    case Op::kAnd:
      for (const Formula& c : node_->children) {
        if (!c.Eval(db, valuation)) return false;
      }
      return true;
    case Op::kOr:
      for (const Formula& c : node_->children) {
        if (c.Eval(db, valuation)) return true;
      }
      return false;
  }
  RAV_CHECK(false);
  return false;
}

bool Formula::EvalEqualityOnly(const ValueTuple& valuation) const {
  switch (node_->op) {
    case Op::kTrue:
      return true;
    case Op::kFalse:
      return false;
    case Op::kEq: {
      const Term& a = node_->terms[0];
      const Term& b = node_->terms[1];
      RAV_CHECK(a.is_variable() && b.is_variable());
      RAV_CHECK_LT(static_cast<size_t>(a.index), valuation.size());
      RAV_CHECK_LT(static_cast<size_t>(b.index), valuation.size());
      return valuation[a.index] == valuation[b.index];
    }
    case Op::kRel:
      RAV_CHECK(false);  // not equality-only
      return false;
    case Op::kNot:
      return !node_->children[0].EvalEqualityOnly(valuation);
    case Op::kAnd:
      for (const Formula& c : node_->children) {
        if (!c.EvalEqualityOnly(valuation)) return false;
      }
      return true;
    case Op::kOr:
      for (const Formula& c : node_->children) {
        if (c.EvalEqualityOnly(valuation)) return true;
      }
      return false;
  }
  RAV_CHECK(false);
  return false;
}

int Formula::MaxVariableIndex() const {
  int max_index = -1;
  for (const Term& t : node_->terms) {
    if (t.is_variable()) max_index = std::max(max_index, t.index);
  }
  for (const Formula& c : node_->children) {
    max_index = std::max(max_index, c.MaxVariableIndex());
  }
  return max_index;
}

std::string Formula::ToString(const Schema& schema, int num_registers) const {
  std::ostringstream out;
  switch (node_->op) {
    case Op::kTrue:
      out << "true";
      break;
    case Op::kFalse:
      out << "false";
      break;
    case Op::kEq:
      out << TermToString(node_->terms[0], schema, num_registers) << " = "
          << TermToString(node_->terms[1], schema, num_registers);
      break;
    case Op::kRel:
      out << schema.relation_name(node_->relation) << "(";
      for (size_t i = 0; i < node_->terms.size(); ++i) {
        if (i > 0) out << ", ";
        out << TermToString(node_->terms[i], schema, num_registers);
      }
      out << ")";
      break;
    case Op::kNot:
      out << "¬(" << node_->children[0].ToString(schema, num_registers) << ")";
      break;
    case Op::kAnd:
    case Op::kOr: {
      const char* sep = node_->op == Op::kAnd ? " ∧ " : " ∨ ";
      out << "(";
      for (size_t i = 0; i < node_->children.size(); ++i) {
        if (i > 0) out << sep;
        out << node_->children[i].ToString(schema, num_registers);
      }
      out << ")";
      break;
    }
  }
  return out.str();
}

}  // namespace rav
