#include "relational/schema.h"

#include <sstream>

namespace rav {

RelationId Schema::AddRelation(const std::string& name, int arity) {
  RAV_CHECK_GE(arity, 0);
  RAV_CHECK(relation_names_.Lookup(name) < 0);
  RelationId id = relation_names_.Intern(name);
  arities_.push_back(arity);
  return id;
}

ConstantId Schema::AddConstant(const std::string& name) {
  RAV_CHECK(constant_names_.Lookup(name) < 0);
  ConstantId id = constant_names_.Intern(name);
  ++num_constants_;
  return id;
}

std::string Schema::ToString() const {
  std::ostringstream out;
  out << "schema{";
  for (int r = 0; r < num_relations(); ++r) {
    if (r > 0) out << ", ";
    out << relation_name(r) << "/" << arity(r);
  }
  if (num_constants_ > 0) {
    if (num_relations() > 0) out << "; ";
    out << "constants: ";
    for (int c = 0; c < num_constants_; ++c) {
      if (c > 0) out << ", ";
      out << constant_name(c);
    }
  }
  out << "}";
  return out.str();
}

}  // namespace rav
