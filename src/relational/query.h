#ifndef RAV_RELATIONAL_QUERY_H_
#define RAV_RELATIONAL_QUERY_H_

#include <optional>
#include <vector>

#include "base/status.h"
#include "relational/database.h"

namespace rav {

// A term of a conjunctive query: a variable (dense index) or a literal
// data value.
struct QueryTerm {
  enum class Kind { kVariable, kLiteral };
  Kind kind = Kind::kVariable;
  int variable = 0;
  DataValue literal = 0;

  static QueryTerm Var(int v) {
    QueryTerm t;
    t.kind = Kind::kVariable;
    t.variable = v;
    return t;
  }
  static QueryTerm Lit(DataValue v) {
    QueryTerm t;
    t.kind = Kind::kLiteral;
    t.literal = v;
    return t;
  }
};

// One positive atom R(t̄) of the query body.
struct QueryAtom {
  RelationId relation = -1;
  std::vector<QueryTerm> args;
};

// A conjunctive query ans(head) :- body. The artifact-system literature
// the paper builds on uses such queries to look up candidate register
// values in the database; the library uses it for workflow tooling (e.g.
// enumerating the eligible reviewers of a topic) and as a reference
// evaluator in tests.
class ConjunctiveQuery {
 public:
  // Validates arities against `schema`; head entries are variable indices.
  static Result<ConjunctiveQuery> Make(const Schema& schema,
                                       int num_variables,
                                       std::vector<QueryAtom> body,
                                       std::vector<int> head);

  // All bindings of the head variables over `db`, deduplicated and
  // sorted. Backtracking join, atoms reordered greedily by boundness.
  std::vector<ValueTuple> Evaluate(const Database& db) const;

  // Boolean query convenience (empty head): is the body satisfiable?
  bool HoldsIn(const Database& db) const { return !Evaluate(db).empty(); }

  int num_variables() const { return num_variables_; }

 private:
  ConjunctiveQuery() = default;

  int num_variables_ = 0;
  std::vector<QueryAtom> body_;
  std::vector<int> head_;
};

}  // namespace rav

#endif  // RAV_RELATIONAL_QUERY_H_
