#ifndef RAV_ANALYSIS_LINT_H_
#define RAV_ANALYSIS_LINT_H_

#include <optional>
#include <vector>

#include "analysis/diagnostic.h"
#include "base/governor.h"
#include "enhanced/enhanced_automaton.h"
#include "era/extended_automaton.h"
#include "ra/register_automaton.h"

namespace rav::analysis {

// Static analysis over a parsed automaton. Every pass is a sound
// over-approximation of "cannot matter on any accepting infinite run":
// a finding never claims dead structure that some run uses. The stable
// diagnostic codes (docs/linting.md):
//
//   RAV001  warning  state unreachable from the initial states
//   RAV002  warning  state cannot reach an accepting cycle (Büchi-dead)
//   RAV003  warning  transition can never fire on an accepting run
//                    (frontier-incompatible with every neighbour, or its
//                    guard admits no complete extension)
//   RAV004  warning  dead register (never mentioned, or written-never-read)
//   RAV005  warning  vacuous global constraint (empty regex language, or
//                    no factor of any live control path matches)
//   RAV006  error    contradictory constraint (e≠[i,i] matching a
//                    realizable single-position window)
//   RAV007  warning  duplicate transition; note: subsumed transition
//   RAV008  error    guard atom uses an unknown relation / wrong arity
//   RAV009  error    no initial state
//   RAV010  warning  no final state
//
// Flow-sensitive codes, computed by the fixpoint framework in
// analysis/dataflow.h over the whole control graph (not just adjacent
// transition pairs):
//
//   RAV011  note     register liveness: every write to the register is
//                    dead — overwritten before any read on every path —
//                    yet some guard does read it (so RAV004 stays quiet).
//                    Advisory only; never stripped (removing the write
//                    constraints would change the language).
//   RAV012  warning  statically-unsatisfiable guard: no frontier that can
//                    actually arrive at the source state (propagated
//                    transitively from the initial states) is compatible
//                    with the guard. Strictly stronger than RAV003, which
//                    only checks immediate neighbours.
//   RAV013  warning  reachability-refined Büchi-dead structure: removing
//                    the RAV012 transitions disconnects this transition
//                    (or state) from every accepting cycle.
//
// Diagnostics are computed in pass order (global, states, transitions,
// registers, constraints, flow) and then stably sorted by (line, column,
// code) before being returned from every public entry point, so equal
// inputs produce byte-identical output regardless of pass evolution or
// caller threading. A governor (nullptr = unlimited) is polled at pass
// boundaries; a trip stops further passes and returns the diagnostics
// found so far (a partial list, never a wrong one).
std::vector<Diagnostic> Lint(const RegisterAutomaton& automaton,
                             const ExecutionGovernor* governor = nullptr);
std::vector<Diagnostic> Lint(const ExtendedAutomaton& era,
                             const ExecutionGovernor* governor = nullptr);
std::vector<Diagnostic> Lint(const EnhancedAutomaton& enhanced,
                             const ExecutionGovernor* governor = nullptr);

// Outcome of AnalyzeAndStrip: the (possibly) reduced automaton plus the
// full diagnostic list that justified the reductions.
struct StripResult {
  // Engaged iff anything was stripped: the common clean-spec case pays
  // for the analysis but never for a copy of the automaton.
  std::optional<ExtendedAutomaton> era;
  std::vector<Diagnostic> diagnostics;
  int states_removed = 0;
  int transitions_removed = 0;
  int constraints_removed = 0;
  bool changed() const { return era.has_value(); }
};

// How much analysis AnalyzeAndStrip spends.
enum class StripEffort {
  // Every lint pass runs; diagnostics match Lint(). The strip
  // additionally drops transitions that can never fire and exact
  // duplicates (RAV003 / RAV007-duplicate).
  kFull,
  // Procedure-top mode: only the passes whose findings pay for
  // themselves at microsecond cost — reachability, Büchi-coacceptance,
  // and constraint realizability. The guard-level transition passes are
  // skipped: a dead transition between live states merely makes the
  // closure reject candidates through it, exactly as it would
  // unstripped, so skipping them trades a per-call cost for nothing on
  // the verdict.
  kFast,
  // kFast plus the flow passes of analysis/dataflow.h (RAV012/RAV013):
  // whole-graph fireability through the compiled guard tables, then
  // Büchi liveness refined to the fireable subgraph. Catches
  // self-justifying dead loops the local kFull guard passes cannot,
  // while skipping the quadratic local pairwise passes those run. The
  // decision procedures run at this tier once the automaton clears
  // their transition-count floor (min_flow_strip_transitions in the
  // search options — the flat fixpoint cost is not worth paying on a
  // tiny search). RAV_STRIP_FLOW=off (or =0)
  // disables the flow passes in AnalyzeAndStrip at any tier — the
  // verdict must not change, only the work to reach it.
  kFlow,
};

// Removes structure that provably cannot take part in any accepting
// infinite run: states that are unreachable or Büchi-dead (RAV001/002),
// transitions that can never fire or exactly duplicate an earlier one
// (RAV003 / RAV007-duplicate, kFull only), flow-unsatisfiable and
// flow-dead structure (RAV012/RAV013, kFlow and kFull), and vacuous
// constraints (RAV005). Constraint DFAs are remapped onto the surviving state
// alphabet, and state/transition names, flags, and source locations are
// preserved. The accepted run set — and hence every decision-procedure
// verdict — is unchanged. Degenerate automata (no initial or no final
// state) are never stripped, nor is an automaton whose live state set
// is empty. If the governor trips during analysis, no strip happens (a
// partial analysis must never justify a removal) and the diagnostics
// collected so far are returned.
StripResult AnalyzeAndStrip(const ExtendedAutomaton& era,
                            StripEffort effort = StripEffort::kFull,
                            const ExecutionGovernor* governor = nullptr);

}  // namespace rav::analysis

#endif  // RAV_ANALYSIS_LINT_H_
