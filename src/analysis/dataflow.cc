#include "analysis/dataflow.h"

#include <queue>
#include <utility>

#include "base/metrics.h"
#include "base/trace.h"
#include "compile/guard_tables.h"
#include "types/type.h"

namespace rav::analysis {
namespace {

// Per-register view of one guard, shared by the liveness and write
// analyses. For register r of a k-register automaton, x_r = element r and
// y_r = element k + r of the 2k-variable guard type.
//
//   reads:     the x̄ copy is observed — its class contains an element
//              other than {x_r, y_r}, or participates in a disequality
//              or a relational atom. The pure copy x_r = y_r is neither
//              a read nor a write: it only propagates the value.
//   writes:    the ȳ copy is constrained beyond the pure copy, i.e. the
//              transition pins the POST value to something (a constant,
//              another register, a disequality, an atom).
//   preserves: the guard forces x_r = y_r, so the pre value survives the
//              step. A non-preserving transition may change the register
//              arbitrarily — a kill for liveness purposes.
struct GuardRegisterFacts {
  std::vector<bool> reads;
  std::vector<bool> writes;
  std::vector<bool> preserves;
};

GuardRegisterFacts AnalyzeGuardRegisters(const Type& guard, int k) {
  GuardRegisterFacts facts;
  facts.reads.assign(k, false);
  facts.writes.assign(k, false);
  facts.preserves.assign(k, false);
  std::vector<int> class_size(guard.num_classes(), 0);
  for (int e = 0; e < guard.num_elements(); ++e) {
    ++class_size[guard.ClassOf(e)];
  }
  std::vector<bool> class_hard(guard.num_classes(), false);
  for (const auto& [ca, cb] : guard.disequalities()) {
    class_hard[ca] = true;
    class_hard[cb] = true;
  }
  for (const TypeAtom& atom : guard.atoms()) {
    for (int c : atom.args) class_hard[c] = true;
  }
  for (int r = 0; r < k; ++r) {
    const int cx = guard.ClassOf(r);
    const int cy = guard.ClassOf(k + r);
    facts.preserves[r] = cx == cy;
    // "Beyond the pure copy": the class holds more members than the
    // {x_r, y_r} pair it would have if the guard only copied the value.
    const int pair_size = cx == cy ? 2 : 1;
    facts.reads[r] = class_hard[cx] || class_size[cx] > pair_size;
    facts.writes[r] = class_hard[cy] || class_size[cy] > pair_size;
  }
  return facts;
}

// --- RAV011: backward register liveness ------------------------------------

// Fact: per-register bit — "some path from here reads the register's
// current value before a non-preserving transition overwrites it".
struct RegisterLivenessProblem {
  using Fact = std::vector<bool>;

  const std::vector<GuardRegisterFacts>* guard_facts;  // per distinct guard
  const std::vector<GuardId>* guard_id;                // per transition
  const std::vector<bool>* state_live;
  int k;

  Fact BoundaryFact(StateId) const { return Fact(k, false); }

  bool Join(Fact& into, const Fact& from) const {
    bool changed = false;
    for (int r = 0; r < k; ++r) {
      if (from[r] && !into[r]) {
        into[r] = true;
        changed = true;
      }
    }
    return changed;
  }

  Fact Transfer(int ti, const Fact& after) const {
    const GuardRegisterFacts& g = (*guard_facts)[(*guard_id)[ti].value()];
    Fact before(k, false);
    for (int r = 0; r < k; ++r) {
      before[r] = g.reads[r] || (after[r] && g.preserves[r]);
    }
    return before;
  }
};

// --- RAV012: forward frontier fireability ----------------------------------

// Fact: the set of guard ids whose ȳ-frontier can actually arrive at this
// state along a chain of fireable transitions from an initial state, plus
// one extra "entry" bit for initial states (a run may start there with an
// unconstrained frontier). The lattice is the powerset, join is union.
struct FireabilityProblem {
  using Fact = std::vector<bool>;  // size num_guards + 1; last bit = entry

  const ControlGraph* graph;
  const compile::GuardTableSet* tables;
  const std::vector<GuardId>* guard_id;
  const std::vector<bool>* state_live;
  // Pairwise frontier-compatibility memo (-1 unknown / 0 / 1), indexed
  // before * num_guards + after — the same conjunction the local RAV003
  // pass evaluates, shared across the whole fixpoint.
  std::vector<int8_t>* compat_memo;

  int num_guards() const { return tables->num_guards(); }

  bool Compatible(GuardId before, GuardId after) const {
    int8_t& memo =
        (*compat_memo)[static_cast<size_t>(before.value()) * num_guards() +
                       after.value()];
    if (memo < 0) {
      memo = tables->y_restricted_as_x(before)
                     .Conjoin(tables->x_restricted(after))
                     .ok()
                 ? 1
                 : 0;
    }
    return memo == 1;
  }

  bool Enterable(const Fact& arrival, GuardId guard) const {
    if (arrival[num_guards()]) return true;  // run can start here
    for (int g = 0; g < num_guards(); ++g) {
      if (arrival[g] && Compatible(GuardId(g), guard)) return true;
    }
    return false;
  }

  Fact BoundaryFact(StateId q) const {
    Fact fact(num_guards() + 1, false);
    if ((*state_live)[q.value()] && graph->automaton().IsInitial(q)) {
      fact[num_guards()] = true;
    }
    return fact;
  }

  bool Join(Fact& into, const Fact& from) const {
    bool changed = false;
    for (size_t i = 0; i < into.size(); ++i) {
      if (from[i] && !into[i]) {
        into[i] = true;
        changed = true;
      }
    }
    return changed;
  }

  Fact Transfer(int ti, const Fact& arrival) const {
    const RaTransition& t = graph->automaton().transition(ti);
    Fact out(num_guards() + 1, false);
    if (!(*state_live)[t.from.value()] || !(*state_live)[t.to.value()]) {
      return out;
    }
    if (Enterable(arrival, (*guard_id)[ti])) {
      out[(*guard_id)[ti].value()] = true;
    }
    return out;
  }
};

// --- RAV013: boolean reach/coaccept over the fireable subgraph -------------

struct ReachProblem {
  // char, not bool: RunFixpoint needs real lvalue references into the
  // per-state fact vector, which std::vector<bool> cannot hand out.
  using Fact = char;

  const ControlGraph* graph;
  const std::vector<bool>* enabled;  // per transition
  const std::vector<bool>* state_live;

  Fact BoundaryFact(StateId q) const {
    return (*state_live)[q.value()] && graph->automaton().IsInitial(q);
  }
  bool Join(Fact& into, const Fact& from) const {
    if (from && !into) {
      into = true;
      return true;
    }
    return false;
  }
  Fact Transfer(int ti, const Fact& source) const {
    return source && (*enabled)[ti];
  }
};

struct CoacceptProblem {
  using Fact = char;  // see ReachProblem

  const ControlGraph* graph;
  const std::vector<bool>* enabled;
  const std::vector<bool>* cycle_final;  // per state

  Fact BoundaryFact(StateId q) const { return (*cycle_final)[q.value()]; }
  bool Join(Fact& into, const Fact& from) const {
    if (from && !into) {
      into = true;
      return true;
    }
    return false;
  }
  Fact Transfer(int ti, const Fact& target) const {
    return target && (*enabled)[ti];
  }
};

// Final states lying on a cycle of the `enabled` subgraph restricted to
// `reachable` states — the anchors an accepting infinite run must visit
// infinitely often.
std::vector<bool> CycleFinalStates(const ControlGraph& graph,
                                   const std::vector<bool>& enabled,
                                   const std::vector<char>& reachable) {
  const RegisterAutomaton& a = graph.automaton();
  const int n = graph.num_states();
  std::vector<bool> cycle_final(n, false);
  std::vector<bool> seen(n, false);
  for (StateId f : a.States()) {
    if (!a.IsFinal(f) || !reachable[f.value()]) continue;
    std::fill(seen.begin(), seen.end(), false);
    std::queue<StateId> frontier;
    auto push_successors = [&](StateId q) {
      for (int ti : graph.OutTransitions(q)) {
        if (!enabled[ti]) continue;
        const StateId q2 = a.transition(ti).to;
        if (reachable[q2.value()] && !seen[q2.value()]) {
          seen[q2.value()] = true;
          frontier.push(q2);
        }
      }
    };
    push_successors(f);
    while (!frontier.empty() && !seen[f.value()]) {
      StateId q = frontier.front();
      frontier.pop();
      push_successors(q);
    }
    cycle_final[f.value()] = seen[f.value()];
  }
  return cycle_final;
}

}  // namespace

ControlGraph::ControlGraph(const RegisterAutomaton& a) : a_(&a) {
  out_.resize(a.num_states());
  in_.resize(a.num_states());
  for (int ti = 0; ti < a.num_transitions(); ++ti) {
    const RaTransition& t = a.transition(ti);
    out_[t.from.value()].push_back(ti);
    in_[t.to.value()].push_back(ti);
  }
}

FlowAnalysisResult RunFlowAnalyses(
    const RegisterAutomaton& a,
    const std::vector<GlobalConstraint>* constraints,
    const std::vector<bool>& state_live) {
  RAV_TRACE_SPAN("analysis/dataflow");
  RAV_METRIC_COUNT("analysis/dataflow/calls", 1);
  const int k = a.num_registers();
  const int num_transitions = a.num_transitions();
  const ControlGraph graph(a);

  FlowAnalysisResult result;
  result.register_flow_dead.assign(k, false);
  result.dead_writes.assign(k, 0);
  result.unsatisfiable.assign(num_transitions, false);
  result.refined_state_live = state_live;
  result.refined_transition_live.assign(num_transitions, false);

  // Compile the guard tables up front: beyond the fireability frontiers,
  // the build's guard dedup lets every per-guard fact (register
  // reads/writes, restrictions) be computed once per distinct guard
  // instead of once per transition.
  std::vector<GuardId> guard_id;
  const compile::GuardTableSet tables = [&] {
    RAV_TRACE_SPAN("compile_guards");
    std::vector<const Type*> transition_guards;
    transition_guards.reserve(num_transitions);
    for (int ti = 0; ti < num_transitions; ++ti) {
      transition_guards.push_back(&a.transition(ti).guard);
    }
    return compile::GuardTableSet::Build(transition_guards, k,
                                         a.schema().num_constants(), &guard_id);
  }();
  std::vector<GuardRegisterFacts> guard_facts;  // indexed by GuardId
  guard_facts.reserve(tables.num_guards());
  for (int g = 0; g < tables.num_guards(); ++g) {
    guard_facts.push_back(AnalyzeGuardRegisters(tables.guard(GuardId(g)), k));
  }

  // --- RAV011: backward liveness over live states ---
  {
    RAV_TRACE_SPAN("liveness");
    RegisterLivenessProblem problem{&guard_facts, &guard_id, &state_live, k};
    std::vector<std::vector<bool>> live_at =
        RunFixpoint(graph, FlowDirection::kBackward, problem,
                    &result.liveness_rounds);
    std::vector<bool> read_somewhere(k, false);
    std::vector<bool> written_live(k, false);
    for (int ti = 0; ti < num_transitions; ++ti) {
      const RaTransition& t = a.transition(ti);
      const GuardRegisterFacts& facts = guard_facts[guard_id[ti].value()];
      for (int r = 0; r < k; ++r) {
        if (facts.reads[r]) read_somewhere[r] = true;
        if (facts.writes[r] && state_live[t.from.value()] &&
            state_live[t.to.value()]) {
          written_live[r] = true;
          if (!live_at[t.to.value()][r]) ++result.dead_writes[r];
        }
      }
    }
    std::vector<bool> in_constraint(k, false);
    if (constraints != nullptr) {
      for (const GlobalConstraint& c : *constraints) {
        in_constraint[c.i.value()] = true;
        in_constraint[c.j.value()] = true;
      }
    }
    for (int r = 0; r < k; ++r) {
      // Every live write is dead, yet some guard does read the register
      // globally (otherwise the local RAV004 pass already reported it).
      bool all_writes_dead = written_live[r] && result.dead_writes[r] > 0;
      for (int ti = 0; all_writes_dead && ti < num_transitions; ++ti) {
        const RaTransition& t = a.transition(ti);
        if (guard_facts[guard_id[ti].value()].writes[r] &&
            state_live[t.from.value()] && state_live[t.to.value()] &&
            live_at[t.to.value()][r]) {
          all_writes_dead = false;
        }
      }
      result.register_flow_dead[r] =
          all_writes_dead && read_somewhere[r] && !in_constraint[r];
    }
    RAV_METRIC_RECORD("analysis/dataflow/liveness_rounds",
                      result.liveness_rounds);
  }

  // --- RAV012: forward fireability through compiled guard frontiers ---
  {
    RAV_TRACE_SPAN("fireability");
    std::vector<int8_t> compat_memo(
        static_cast<size_t>(tables.num_guards()) * tables.num_guards(), -1);
    FireabilityProblem problem{&graph, &tables, &guard_id, &state_live,
                               &compat_memo};
    std::vector<std::vector<bool>> arrival = RunFixpoint(
        graph, FlowDirection::kForward, problem, &result.fireability_rounds);
    for (int ti = 0; ti < num_transitions; ++ti) {
      const RaTransition& t = a.transition(ti);
      if (!state_live[t.from.value()] || !state_live[t.to.value()]) continue;
      if (!problem.Enterable(arrival[t.from.value()], guard_id[ti])) {
        result.unsatisfiable[ti] = true;
      }
    }
    RAV_METRIC_RECORD("analysis/dataflow/fireability_rounds",
                      result.fireability_rounds);
  }

  // --- RAV013: Büchi liveness over the fireable subgraph ---
  {
    RAV_TRACE_SPAN("refine");
    std::vector<bool> enabled(num_transitions, false);
    for (int ti = 0; ti < num_transitions; ++ti) {
      const RaTransition& t = a.transition(ti);
      enabled[ti] = !result.unsatisfiable[ti] && state_live[t.from.value()] &&
                    state_live[t.to.value()];
    }
    ReachProblem reach_problem{&graph, &enabled, &state_live};
    int reach_rounds = 0;
    std::vector<char> reachable =
        RunFixpoint(graph, FlowDirection::kForward, reach_problem,
                    &reach_rounds);
    const std::vector<bool> cycle_final =
        CycleFinalStates(graph, enabled, reachable);
    CoacceptProblem coaccept_problem{&graph, &enabled, &cycle_final};
    int coaccept_rounds = 0;
    std::vector<char> coaccepting =
        RunFixpoint(graph, FlowDirection::kBackward, coaccept_problem,
                    &coaccept_rounds);
    result.refine_rounds = reach_rounds + coaccept_rounds;
    for (StateId q : a.States()) {
      result.refined_state_live[q.value()] =
          state_live[q.value()] && reachable[q.value()] &&
          coaccepting[q.value()];
    }
    for (int ti = 0; ti < num_transitions; ++ti) {
      const RaTransition& t = a.transition(ti);
      result.refined_transition_live[ti] =
          enabled[ti] && result.refined_state_live[t.from.value()] &&
          result.refined_state_live[t.to.value()];
    }
    RAV_METRIC_RECORD("analysis/dataflow/refine_rounds", result.refine_rounds);
  }
  return result;
}

}  // namespace rav::analysis
