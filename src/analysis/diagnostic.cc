#include "analysis/diagnostic.h"

#include <algorithm>
#include <map>
#include <tuple>

namespace rav::analysis {

const char* SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

std::string FormatDiagnostic(const Diagnostic& diagnostic,
                             const std::string& file) {
  std::string out;
  if (!file.empty()) out += file + ":";
  if (diagnostic.loc.valid()) {
    out += diagnostic.loc.ToString() + ":";
  }
  if (!out.empty()) out += " ";
  out += SeverityName(diagnostic.severity);
  out += ": ";
  out += diagnostic.code;
  out += ": ";
  out += diagnostic.message;
  return out;
}

void SortDiagnostics(std::vector<Diagnostic>& diagnostics) {
  std::stable_sort(diagnostics.begin(), diagnostics.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     return std::tie(a.loc.line, a.loc.column, a.code) <
                            std::tie(b.loc.line, b.loc.column, b.code);
                   });
}

Severity MaxSeverity(const std::vector<Diagnostic>& diagnostics) {
  Severity max = Severity::kNote;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity > max) max = d.severity;
  }
  return max;
}

Json DiagnosticsToJson(const std::vector<Diagnostic>& diagnostics,
                       const std::string& file) {
  Json doc = Json::Object();
  doc.Set("file", Json::String(file));
  Json rows = Json::Array();
  for (const Diagnostic& d : diagnostics) {
    Json row = Json::Object();
    row.Set("code", Json::String(d.code));
    row.Set("severity", Json::String(SeverityName(d.severity)));
    row.Set("line", Json::Number(d.loc.line));
    row.Set("column", Json::Number(d.loc.column));
    row.Set("message", Json::String(d.message));
    rows.Append(std::move(row));
  }
  doc.Set("diagnostics", std::move(rows));
  return doc;
}

namespace {

// One-line rule descriptions for the SARIF reportingDescriptor table —
// the stable catalog of docs/linting.md.
const char* RuleDescription(const std::string& code) {
  if (code == "RAV001") return "state unreachable from the initial states";
  if (code == "RAV002") return "state cannot reach an accepting cycle";
  if (code == "RAV003") return "transition can never fire on an accepting run";
  if (code == "RAV004") return "dead register";
  if (code == "RAV005") return "vacuous global constraint";
  if (code == "RAV006") return "contradictory global constraint";
  if (code == "RAV007") return "duplicate or subsumed transition";
  if (code == "RAV008") return "guard atom violates the schema";
  if (code == "RAV009") return "no initial state";
  if (code == "RAV010") return "no final state";
  if (code == "RAV011") return "register is flow-dead (writes never read)";
  if (code == "RAV012") return "statically-unsatisfiable guard";
  if (code == "RAV013") return "flow-refined Büchi-dead structure";
  return "rav lint finding";
}

// SARIF maps our severities onto its result level enum directly.
const char* SarifLevel(Severity severity) {
  switch (severity) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "none";
}

}  // namespace

Json DiagnosticsToSarif(
    const std::vector<std::pair<std::string, std::vector<Diagnostic>>>&
        files) {
  // Rules table: every distinct code present, in sorted order so the
  // log is deterministic across input orderings.
  std::map<std::string, int> rule_index;
  for (const auto& [file, diagnostics] : files) {
    for (const Diagnostic& d : diagnostics) rule_index.emplace(d.code, 0);
  }
  int next = 0;
  for (auto& [code, index] : rule_index) index = next++;
  Json rules = Json::Array();
  for (const auto& [code, index] : rule_index) {
    Json rule = Json::Object();
    rule.Set("id", Json::String(code));
    Json desc = Json::Object();
    desc.Set("text", Json::String(RuleDescription(code)));
    rule.Set("shortDescription", std::move(desc));
    rules.Append(std::move(rule));
  }
  Json results = Json::Array();
  for (const auto& [file, diagnostics] : files) {
    for (const Diagnostic& d : diagnostics) {
      Json result = Json::Object();
      result.Set("ruleId", Json::String(d.code));
      result.Set("ruleIndex", Json::Number(rule_index[d.code]));
      result.Set("level", Json::String(SarifLevel(d.severity)));
      Json message = Json::Object();
      message.Set("text", Json::String(d.message));
      result.Set("message", std::move(message));
      Json artifact = Json::Object();
      artifact.Set("uri", Json::String(file));
      Json physical = Json::Object();
      physical.Set("artifactLocation", std::move(artifact));
      if (d.loc.valid()) {
        Json region = Json::Object();
        region.Set("startLine", Json::Number(d.loc.line));
        region.Set("startColumn", Json::Number(d.loc.column));
        physical.Set("region", std::move(region));
      }
      Json location = Json::Object();
      location.Set("physicalLocation", std::move(physical));
      Json locations = Json::Array();
      locations.Append(std::move(location));
      result.Set("locations", std::move(locations));
      results.Append(std::move(result));
    }
  }
  Json driver = Json::Object();
  driver.Set("name", Json::String("rav lint"));
  driver.Set("rules", std::move(rules));
  Json tool = Json::Object();
  tool.Set("driver", std::move(driver));
  Json run = Json::Object();
  run.Set("tool", std::move(tool));
  run.Set("results", std::move(results));
  Json runs = Json::Array();
  runs.Append(std::move(run));
  Json doc = Json::Object();
  doc.Set("$schema",
          Json::String("https://json.schemastore.org/sarif-2.1.0.json"));
  doc.Set("version", Json::String("2.1.0"));
  doc.Set("runs", std::move(runs));
  return doc;
}

}  // namespace rav::analysis
