#include "analysis/diagnostic.h"

namespace rav::analysis {

const char* SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

std::string FormatDiagnostic(const Diagnostic& diagnostic,
                             const std::string& file) {
  std::string out;
  if (!file.empty()) out += file + ":";
  if (diagnostic.loc.valid()) {
    out += diagnostic.loc.ToString() + ":";
  }
  if (!out.empty()) out += " ";
  out += SeverityName(diagnostic.severity);
  out += ": ";
  out += diagnostic.code;
  out += ": ";
  out += diagnostic.message;
  return out;
}

Severity MaxSeverity(const std::vector<Diagnostic>& diagnostics) {
  Severity max = Severity::kNote;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity > max) max = d.severity;
  }
  return max;
}

Json DiagnosticsToJson(const std::vector<Diagnostic>& diagnostics,
                       const std::string& file) {
  Json doc = Json::Object();
  doc.Set("file", Json::String(file));
  Json rows = Json::Array();
  for (const Diagnostic& d : diagnostics) {
    Json row = Json::Object();
    row.Set("code", Json::String(d.code));
    row.Set("severity", Json::String(SeverityName(d.severity)));
    row.Set("line", Json::Number(d.loc.line));
    row.Set("column", Json::Number(d.loc.column));
    row.Set("message", Json::String(d.message));
    rows.Append(std::move(row));
  }
  doc.Set("diagnostics", std::move(rows));
  return doc;
}

}  // namespace rav::analysis
