#include "analysis/lint.h"

#include <cstdlib>
#include <cstring>
#include <queue>
#include <string>
#include <utility>
#include <vector>

#include "analysis/dataflow.h"
#include "base/logging.h"
#include "base/metrics.h"
#include "compile/guard_tables.h"
#include "types/completion.h"
#include "types/type.h"

namespace rav::analysis {
namespace {

// The guard-level passes (RAV003 frontier checks, RAV007 pair scans) are
// quadratic in the local fan-out; beyond this many transitions they are
// skipped so lint stays cheap enough to run at the top of every decision
// procedure. The structural sweeps (states, constraints) always run.
constexpr int kMaxTransitionsForGuardPasses = 1000;

struct Analysis {
  std::vector<Diagnostic> diagnostics;
  bool has_initial = false;
  bool has_final = false;
  // The governor tripped mid-analysis: diagnostics are a prefix of the
  // full list and liveness flags must not justify stripping.
  bool tripped = false;
  bool degenerate() const { return !has_initial || !has_final; }
  std::vector<bool> live;             // reachable ∧ can reach accepting cycle
  std::vector<bool> drop_transition;  // RAV003-dead or RAV007-duplicate
  std::vector<bool> drop_constraint;  // RAV005-vacuous
};

void Emit(Analysis& analysis, const char* code, Severity severity,
          SourceLocation loc, std::string message) {
  analysis.diagnostics.push_back(
      Diagnostic{code, severity, std::move(message), loc});
}

std::string StateLabel(const RegisterAutomaton& a, StateId q) {
  return "state '" + a.state_name(q) + "'";
}

std::string TransitionLabel(const RegisterAutomaton& a, int ti) {
  const RaTransition& t = a.transition(ti);
  return "transition " + a.state_name(t.from) + " -> " + a.state_name(t.to);
}

std::string ConstraintLabel(const GlobalConstraint& c, int index) {
  std::string label = std::string(c.is_equality ? "equality" : "inequality") +
                      " constraint #" + std::to_string(index + 1);
  if (!c.description.empty()) label += " \"" + c.description + "\"";
  return label;
}

std::string RegisterLabel(int reg) { return "register r" + std::to_string(reg + 1); }

// Forward reachability from the initial states over the control graph.
std::vector<bool> ReachableStates(
    const RegisterAutomaton& a,
    const std::vector<std::vector<StateId>>& succ) {
  std::vector<bool> reachable(a.num_states(), false);
  std::queue<StateId> frontier;
  for (StateId q : a.InitialStates()) {
    reachable[q.value()] = true;
    frontier.push(q);
  }
  while (!frontier.empty()) {
    StateId q = frontier.front();
    frontier.pop();
    for (StateId q2 : succ[q.value()]) {
      if (!reachable[q2.value()]) {
        reachable[q2.value()] = true;
        frontier.push(q2);
      }
    }
  }
  return reachable;
}

// States whose forward cone contains a final state lying on a cycle —
// the states an accepting infinite run can still pass through.
std::vector<bool> BuchiCoaccepting(
    const RegisterAutomaton& a, const std::vector<std::vector<StateId>>& succ,
    const std::vector<std::vector<StateId>>& pred) {
  const int n = a.num_states();
  std::vector<bool> cycle_final(n, false);
  std::vector<bool> seen(n, false);
  for (StateId f : a.States()) {
    if (!a.IsFinal(f)) continue;
    // Is f reachable from one of its successors?
    std::fill(seen.begin(), seen.end(), false);
    std::queue<StateId> frontier;
    for (StateId q : succ[f.value()]) {
      if (!seen[q.value()]) {
        seen[q.value()] = true;
        frontier.push(q);
      }
    }
    while (!frontier.empty() && !seen[f.value()]) {
      StateId q = frontier.front();
      frontier.pop();
      for (StateId q2 : succ[q.value()]) {
        if (!seen[q2.value()]) {
          seen[q2.value()] = true;
          frontier.push(q2);
        }
      }
    }
    cycle_final[f.value()] = seen[f.value()];
  }
  std::vector<bool> coaccepting(n, false);
  std::queue<StateId> frontier;
  for (StateId f : a.States()) {
    if (cycle_final[f.value()]) {
      coaccepting[f.value()] = true;
      frontier.push(f);
    }
  }
  while (!frontier.empty()) {
    StateId q = frontier.front();
    frontier.pop();
    for (StateId q2 : pred[q.value()]) {
      if (!coaccepting[q2.value()]) {
        coaccepting[q2.value()] = true;
        frontier.push(q2);
      }
    }
  }
  return coaccepting;
}

// True iff `dfa` (alphabet = control states) accepts the state trace of
// some nonempty factor of a path through live states. Paths through the
// plain edge relation over-approximate run factors, so a negative answer
// proves the constraint vacuous (RAV005) while a positive one proves
// nothing — exactly the sound direction.
bool MatchRealizable(const Dfa& dfa,
                     const std::vector<std::vector<StateId>>& succ,
                     const std::vector<bool>& live) {
  const int num_control = static_cast<int>(live.size());
  if (num_control == 0) return false;
  std::vector<bool> seen(
      static_cast<size_t>(dfa.num_states()) * num_control, false);
  std::queue<int> frontier;  // node = d * num_control + q (q last consumed)
  bool accepted = false;
  auto visit = [&](int d, int q) {
    const size_t node = static_cast<size_t>(d) * num_control + q;
    if (seen[node]) return;
    seen[node] = true;
    frontier.push(static_cast<int>(node));
    if (dfa.IsAccepting(d)) accepted = true;
  };
  for (int q = 0; q < num_control && !accepted; ++q) {
    if (live[q]) visit(dfa.Next(dfa.initial(), q), q);
  }
  while (!frontier.empty() && !accepted) {
    const int node = frontier.front();
    frontier.pop();
    const int d = node / num_control;
    const int q = node % num_control;
    for (StateId q2 : succ[q]) {
      if (live[q2.value()]) {
        visit(dfa.Next(d, q2.value()), q2.value());
        if (accepted) break;
      }
    }
  }
  return accepted;
}

// True iff the DFA accepts the one-letter word `q` — a single-position
// constraint window anchored at state q.
bool AcceptsSinglePosition(const Dfa& dfa, int q) {
  return dfa.IsAccepting(dfa.Next(dfa.initial(), q));
}

void CheckSchemaAtoms(const RegisterAutomaton& a, Analysis& analysis) {
  const Schema& schema = a.schema();
  for (int ti = 0; ti < a.num_transitions(); ++ti) {
    for (const TypeAtom& atom : a.transition(ti).guard.atoms()) {
      if (atom.relation < 0 || atom.relation >= schema.num_relations()) {
        Emit(analysis, "RAV008", Severity::kError, a.transition_location(ti),
             TransitionLabel(a, ti) + ": guard atom references unknown " +
                 "relation id " + std::to_string(atom.relation));
      } else if (static_cast<int>(atom.args.size()) !=
                 schema.arity(atom.relation)) {
        Emit(analysis, "RAV008", Severity::kError, a.transition_location(ti),
             TransitionLabel(a, ti) + ": guard atom for relation '" +
                 schema.relation_name(atom.relation) + "' has " +
                 std::to_string(atom.args.size()) + " argument(s), expected " +
                 std::to_string(schema.arity(atom.relation)));
      }
    }
  }
}

void CheckRegisters(const RegisterAutomaton& a,
                    const std::vector<GlobalConstraint>* constraints,
                    Analysis& analysis) {
  const int k = a.num_registers();
  std::vector<bool> read_x(k, false);   // x̄ copy constrained by some guard
  std::vector<bool> written_y(k, false);  // ȳ copy constrained by some guard
  for (int ti = 0; ti < a.num_transitions(); ++ti) {
    const Type& g = a.transition(ti).guard;
    std::vector<int> class_size(g.num_classes(), 0);
    for (int e = 0; e < g.num_elements(); ++e) class_size[g.ClassOf(e)]++;
    std::vector<bool> constrained(g.num_classes(), false);
    for (int c = 0; c < g.num_classes(); ++c) {
      if (class_size[c] >= 2) constrained[c] = true;
    }
    for (const auto& [ca, cb] : g.disequalities()) {
      constrained[ca] = true;
      constrained[cb] = true;
    }
    for (const TypeAtom& atom : g.atoms()) {
      for (int c : atom.args) constrained[c] = true;
    }
    for (int r = 0; r < k; ++r) {
      if (constrained[g.ClassOf(r)]) read_x[r] = true;
      if (constrained[g.ClassOf(k + r)]) written_y[r] = true;
    }
  }
  std::vector<bool> in_constraint(k, false);
  if (constraints != nullptr) {
    for (const GlobalConstraint& c : *constraints) {
      in_constraint[c.i.value()] = true;
      in_constraint[c.j.value()] = true;
    }
  }
  for (int r = 0; r < k; ++r) {
    if (!read_x[r] && !written_y[r] && !in_constraint[r]) {
      Emit(analysis, "RAV004", Severity::kWarning, SourceLocation{},
           RegisterLabel(r) +
               " is never mentioned by any guard or global constraint "
               "(dead register; hiding it under projection changes nothing)");
    } else if (!read_x[r] && !in_constraint[r]) {
      Emit(analysis, "RAV004", Severity::kWarning, SourceLocation{},
           RegisterLabel(r) +
               " is written but never read: guards constrain only its ȳ copy "
               "and no global constraint mentions it");
    }
  }
}

void CheckTransitions(const RegisterAutomaton& a, Analysis& analysis) {
  const int k = a.num_registers();
  const int num_transitions = a.num_transitions();
  if (num_transitions > kMaxTransitionsForGuardPasses) {
    RAV_METRIC_COUNT("analysis/lint/guard_passes_skipped", 1);
    return;
  }
  // Completed automata reuse a handful of complete types across all
  // transitions, so every guard-level computation below (frontier
  // restrictions, pairwise Conjoins) is deduplicated to distinct guards
  // and memoized per distinct-guard pair — this keeps the pass cheap
  // enough to run at the top of every decision procedure. The dedup and
  // the x̄/ȳ restrictions are the compile layer's GuardTableSet — the
  // same representation the closure engine and the alphabet build — so
  // lint+strip and the decision procedures share one lowering.
  std::vector<const Type*> transition_guards;
  transition_guards.reserve(num_transitions);
  for (int ti = 0; ti < num_transitions; ++ti) {
    transition_guards.push_back(&a.transition(ti).guard);
  }
  std::vector<GuardId> guard_id;
  const compile::GuardTableSet tables = compile::GuardTableSet::Build(
      transition_guards, k, a.schema().num_constants(), &guard_id);
  const int num_guards = tables.num_guards();
  const int n = a.num_states();
  std::vector<std::vector<int>> out_live(n);
  std::vector<std::vector<int>> in_live(n);
  for (int ti = 0; ti < num_transitions; ++ti) {
    const RaTransition& t = a.transition(ti);
    if (analysis.live[t.from.value()] && analysis.live[t.to.value()]) {
      out_live[t.from.value()].push_back(ti);
      in_live[t.to.value()].push_back(ti);
    }
  }
  std::vector<int8_t> compat_memo(
      static_cast<size_t>(num_guards) * num_guards, -1);
  auto compatible = [&](int before, int after) {
    int8_t& memo =
        compat_memo[static_cast<size_t>(guard_id[before].value()) * num_guards +
                    guard_id[after].value()];
    if (memo < 0) {
      memo = tables.y_restricted_as_x(guard_id[before])
                     .Conjoin(tables.x_restricted(guard_id[after]))
                     .ok()
                 ? 1
                 : 0;
    }
    return memo == 1;
  };
  std::vector<int8_t> completion_memo(num_guards, -1);
  auto has_completion = [&](int ti) {
    int8_t& memo = completion_memo[guard_id[ti].value()];
    if (memo < 0) {
      memo = EnumerateEqualityCompletions(a.transition(ti).guard,
                                          [](const Type&) { return false; }) >
                     0
                 ? 1
                 : 0;
    }
    return memo == 1;
  };
  // RAV003: a transition both of whose endpoints are live, but that still
  // cannot sit on any infinite run because its frontier is incompatible
  // with every neighbour (or its guard admits no complete extension).
  for (int ti = 0; ti < num_transitions; ++ti) {
    const RaTransition& t = a.transition(ti);
    if (!analysis.live[t.from.value()] || !analysis.live[t.to.value()]) {
      continue;
    }
    bool can_continue = false;
    for (int tj : out_live[t.to.value()]) {
      if (compatible(ti, tj)) {
        can_continue = true;
        break;
      }
    }
    bool can_enter = a.IsInitial(t.from);
    if (!can_enter) {
      for (int tj : in_live[t.from.value()]) {
        if (compatible(tj, ti)) {
          can_enter = true;
          break;
        }
      }
    }
    if (!can_continue) {
      Emit(analysis, "RAV003", Severity::kWarning, a.transition_location(ti),
           TransitionLabel(a, ti) +
               " can never fire on an infinite run: its ȳ-frontier is "
               "incompatible with every outgoing guard of '" +
               a.state_name(t.to) + "'");
      analysis.drop_transition[ti] = true;
    } else if (!can_enter) {
      Emit(analysis, "RAV003", Severity::kWarning, a.transition_location(ti),
           TransitionLabel(a, ti) + " can never fire: '" +
               a.state_name(t.from) +
               "' is not initial and the x̄-frontier is incompatible with "
               "every live guard entering it");
      analysis.drop_transition[ti] = true;
    } else if (!has_completion(ti)) {
      // Defensive: Types are satisfiable by construction, so a completion
      // always exists; kept as a backstop for hand-built guards.
      Emit(analysis, "RAV003", Severity::kWarning, a.transition_location(ti),
           TransitionLabel(a, ti) +
               " can never fire: its guard admits no complete extension");
      analysis.drop_transition[ti] = true;
    }
  }
  // RAV007: duplicate / subsumed transitions between the same endpoints.
  // 0 = unrelated, 1 = second subsumed, 2 = first subsumed.
  std::vector<int8_t> subsume_memo(
      static_cast<size_t>(num_guards) * num_guards, -1);
  for (StateId s : a.States()) {
    const std::vector<int>& out = a.TransitionsFrom(s);
    for (size_t bi = 0; bi < out.size(); ++bi) {
      const int tb = out[bi];
      if (analysis.drop_transition[tb]) continue;
      const RaTransition& b = a.transition(tb);
      for (size_t ai = 0; ai < bi; ++ai) {
        const int ta = out[ai];
        if (analysis.drop_transition[ta]) continue;
        const RaTransition& t = a.transition(ta);
        if (t.to != b.to) continue;
        if (guard_id[ta] == guard_id[tb]) {
          Emit(analysis, "RAV007", Severity::kWarning,
               a.transition_location(tb),
               "duplicate " + TransitionLabel(a, tb) +
                   ": an identical transition (same endpoints and guard) "
                   "appears earlier");
          analysis.drop_transition[tb] = true;
          break;
        }
        int8_t& sub =
            subsume_memo[static_cast<size_t>(guard_id[ta].value()) *
                             num_guards +
                         guard_id[tb].value()];
        if (sub < 0) {
          auto conj = t.guard.Conjoin(b.guard);
          sub = 0;
          if (conj.ok()) {
            if (conj.value() == b.guard) sub = 1;
            if (conj.value() == t.guard) sub = 2;
          }
        }
        if (sub == 0) continue;
        if (sub == 1) {
          Emit(analysis, "RAV007", Severity::kNote, a.transition_location(tb),
               TransitionLabel(a, tb) +
                   " is subsumed by an earlier transition with the same "
                   "endpoints and a weaker guard");
          break;
        }
        if (sub == 2) {
          Emit(analysis, "RAV007", Severity::kNote, a.transition_location(ta),
               TransitionLabel(a, ta) +
                   " is subsumed by a later transition with the same "
                   "endpoints and a weaker guard");
        }
      }
    }
  }
}

void CheckConstraints(const RegisterAutomaton& a,
                      const std::vector<GlobalConstraint>& constraints,
                      const std::vector<std::vector<StateId>>& succ,
                      Analysis& analysis) {
  for (size_t ci = 0; ci < constraints.size(); ++ci) {
    const GlobalConstraint& c = constraints[ci];
    if (!c.is_equality && c.i == c.j) {
      // A single-position window forces d_n[i] ≠ d_n[i].
      bool contradictory = false;
      for (StateId q : a.States()) {
        if (contradictory) break;
        if (analysis.live[q.value()] &&
            AcceptsSinglePosition(c.dfa, q.value())) {
          Emit(analysis, "RAV006", Severity::kError, c.loc,
               ConstraintLabel(c, static_cast<int>(ci)) +
                   " is contradictory: it matches the single-position window "
                   "at state '" +
                   a.state_name(q) + "', forcing d[" +
                   std::to_string(c.i.value() + 1) + "] ≠ d[" +
                   std::to_string(c.i.value() + 1) + "] at one position");
          contradictory = true;
        }
      }
      if (contradictory) continue;
    }
    if (c.dfa.IsEmptyLanguage()) {
      Emit(analysis, "RAV005", Severity::kWarning, c.loc,
           ConstraintLabel(c, static_cast<int>(ci)) +
               " never applies: its regular expression denotes the empty "
               "language");
      analysis.drop_constraint[ci] = true;
    } else if (!MatchRealizable(c.dfa, succ, analysis.live)) {
      Emit(analysis, "RAV005", Severity::kWarning, c.loc,
           ConstraintLabel(c, static_cast<int>(ci)) +
               " never applies: no factor of any live control path matches "
               "its regular expression");
      analysis.drop_constraint[ci] = true;
    }
  }
}

// The flow-sensitive passes (analysis/dataflow.h): RAV011 register
// liveness, RAV012 whole-graph fireability, RAV013 refined Büchi
// liveness. Runs after the local passes so drop_transition marks from
// RAV003/RAV007 are already in place (a transition gets at most one
// dropping diagnostic), and refines analysis.live in place so the
// constraint pass and the strip both see the refined structure.
void RunFlowPasses(const RegisterAutomaton& a,
                   const std::vector<GlobalConstraint>* constraints,
                   Analysis& analysis) {
  if (a.num_transitions() > kMaxTransitionsForGuardPasses) {
    RAV_METRIC_COUNT("analysis/dataflow/skipped", 1);
    return;
  }
  const FlowAnalysisResult flow =
      RunFlowAnalyses(a, constraints, analysis.live);
  for (int r = 0; r < a.num_registers(); ++r) {
    if (!flow.register_flow_dead[r]) continue;
    // Advisory only: the writes constrain the data word, so removing
    // them would change the language even though their values die.
    Emit(analysis, "RAV011", Severity::kNote, SourceLocation{},
         RegisterLabel(r) + " is flow-dead: every write (" +
             std::to_string(flow.dead_writes[r]) +
             " live writing transition(s)) is overwritten before any read "
             "on every path to an accepting cycle");
  }
  for (int ti = 0; ti < a.num_transitions(); ++ti) {
    const RaTransition& t = a.transition(ti);
    if (!analysis.live[t.from.value()] || !analysis.live[t.to.value()] ||
        analysis.drop_transition[ti]) {
      continue;
    }
    if (flow.unsatisfiable[ti]) {
      Emit(analysis, "RAV012", Severity::kWarning, a.transition_location(ti),
           TransitionLabel(a, ti) +
               " is statically unsatisfiable: every guard frontier that can "
               "arrive at '" +
               a.state_name(t.from) +
               "' from the initial states contradicts its guard");
      analysis.drop_transition[ti] = true;
    } else if (!flow.refined_transition_live[ti]) {
      Emit(analysis, "RAV013", Severity::kWarning, a.transition_location(ti),
           TransitionLabel(a, ti) +
               " is flow-dead: with unsatisfiable transitions removed it "
               "lies on no path from an initial state to an accepting "
               "cycle");
      analysis.drop_transition[ti] = true;
    }
  }
  for (StateId q : a.States()) {
    if (analysis.live[q.value()] && !flow.refined_state_live[q.value()]) {
      Emit(analysis, "RAV013", Severity::kWarning, a.state_location(q),
           StateLabel(a, q) +
               " is flow-dead: with unsatisfiable transitions removed it "
               "lies on no path from an initial state to an accepting "
               "cycle");
      analysis.live[q.value()] = false;
    }
  }
}

Analysis Analyze(const RegisterAutomaton& a,
                 const std::vector<GlobalConstraint>* constraints,
                 bool guard_passes = true, bool flow_passes = true,
                 const ExecutionGovernor* governor = nullptr) {
  Analysis analysis;
  const int n = a.num_states();
  analysis.live.assign(n, true);
  analysis.drop_transition.assign(a.num_transitions(), false);
  analysis.drop_constraint.assign(constraints ? constraints->size() : 0,
                                  false);
  for (StateId q : a.States()) {
    analysis.has_initial = analysis.has_initial || a.IsInitial(q);
    analysis.has_final = analysis.has_final || a.IsFinal(q);
  }
  if (!analysis.has_initial) {
    Emit(analysis, "RAV009", Severity::kError, SourceLocation{},
         "automaton has no initial state: it has no runs at all");
  }
  if (!analysis.has_final) {
    Emit(analysis, "RAV010", Severity::kWarning, SourceLocation{},
         "automaton has no final state: no run is Büchi-accepting");
  }
  if (guard_passes) CheckSchemaAtoms(a, analysis);
  if (analysis.degenerate()) {
    // Everything downstream of the missing initial/final state would
    // flag every state and constraint; RAV009/RAV010 already say it all.
    if (guard_passes) CheckRegisters(a, constraints, analysis);
    return analysis;
  }
  std::vector<std::vector<StateId>> succ(n);
  std::vector<std::vector<StateId>> pred(n);
  for (int ti = 0; ti < a.num_transitions(); ++ti) {
    const RaTransition& t = a.transition(ti);
    succ[t.from.value()].push_back(t.to);
    pred[t.to.value()].push_back(t.from);
  }
  const std::vector<bool> reachable = ReachableStates(a, succ);
  const std::vector<bool> coaccepting = BuchiCoaccepting(a, succ, pred);
  for (StateId q : a.States()) {
    analysis.live[q.value()] = reachable[q.value()] && coaccepting[q.value()];
    if (!reachable[q.value()]) {
      Emit(analysis, "RAV001", Severity::kWarning, a.state_location(q),
           StateLabel(a, q) + " is unreachable from the initial states");
    } else if (!coaccepting[q.value()]) {
      Emit(analysis, "RAV002", Severity::kWarning, a.state_location(q),
           StateLabel(a, q) +
               " cannot reach an accepting cycle: no run through it is "
               "Büchi-accepting");
    }
  }
  // Pass boundaries are the governor's safe points: the structural sweep
  // above is linear and always completes; the guard and constraint passes
  // are the expensive ones and are skipped wholesale after a trip, so the
  // diagnostic list is a clean pass prefix.
  analysis.tripped = GovernorCheck(governor) != GovernorTrip::kNone;
  if (!analysis.tripped && guard_passes) {
    CheckTransitions(a, analysis);
    CheckRegisters(a, constraints, analysis);
    analysis.tripped = GovernorCheck(governor) != GovernorTrip::kNone;
  }
  if (!analysis.tripped && flow_passes) {
    RunFlowPasses(a, constraints, analysis);
    analysis.tripped = GovernorCheck(governor) != GovernorTrip::kNone;
  }
  if (!analysis.tripped && constraints != nullptr) {
    CheckConstraints(a, *constraints, succ, analysis);
  }
  if (analysis.tripped) {
    RAV_METRIC_COUNT("analysis/lint/governor_stops", 1);
  }
  return analysis;
}

void CountLint(Analysis& analysis) {
  RAV_METRIC_COUNT("analysis/lint/calls", 1);
  RAV_METRIC_COUNT("analysis/lint/diagnostics", analysis.diagnostics.size());
  // The output contract (lint.h): sorted by (line, column, code) at every
  // public entry point, stably, so pass order never leaks into output.
  SortDiagnostics(analysis.diagnostics);
}

// RAV_STRIP_FLOW=off (or =0) disables the flow passes inside
// AnalyzeAndStrip — a fault-matrix switch (tools/run_ci.sh): turning it
// off may only cost strip power, never change a decision verdict.
bool StripFlowEnabled() {
  const char* env = std::getenv("RAV_STRIP_FLOW");
  if (env == nullptr) return true;
  return std::strcmp(env, "off") != 0 && std::strcmp(env, "0") != 0;
}

// Copies `dfa` (alphabet = old state set) onto the surviving state
// alphabet. Removed symbols never occur on stripped control paths, so
// dropping their columns preserves every matched factor.
Dfa RemapConstraintDfa(const Dfa& dfa, const std::vector<StateId>& new_id,
                       int kept_states) {
  Dfa remapped(kept_states, dfa.num_states(), dfa.initial());
  for (int d = 0; d < dfa.num_states(); ++d) {
    for (int q = 0; q < static_cast<int>(new_id.size()); ++q) {
      if (new_id[q].valid()) {
        remapped.SetTransition(d, new_id[q].value(), dfa.Next(d, q));
      }
    }
    remapped.SetAccepting(d, dfa.IsAccepting(d));
  }
  return remapped;
}

}  // namespace

std::vector<Diagnostic> Lint(const RegisterAutomaton& automaton,
                             const ExecutionGovernor* governor) {
  Analysis analysis = Analyze(automaton, nullptr, /*guard_passes=*/true,
                              /*flow_passes=*/true, governor);
  CountLint(analysis);
  return std::move(analysis.diagnostics);
}

std::vector<Diagnostic> Lint(const ExtendedAutomaton& era,
                             const ExecutionGovernor* governor) {
  Analysis analysis = Analyze(era.automaton(), &era.constraints(),
                              /*guard_passes=*/true,
                              /*flow_passes=*/true, governor);
  CountLint(analysis);
  return std::move(analysis.diagnostics);
}

std::vector<Diagnostic> Lint(const EnhancedAutomaton& enhanced,
                             const ExecutionGovernor* governor) {
  Analysis analysis =
      Analyze(enhanced.automaton(), &enhanced.equality_constraints(),
              /*guard_passes=*/true, /*flow_passes=*/true, governor);
  for (size_t ci = 0; ci < enhanced.tuple_constraints().size(); ++ci) {
    const TupleInequalityConstraint& c = enhanced.tuple_constraints()[ci];
    if (c.pair_dfa.IsEmptyLanguage()) {
      Emit(analysis, "RAV005", Severity::kWarning, SourceLocation{},
           "tuple inequality constraint #" + std::to_string(ci + 1) +
               " never applies: its pair selector denotes the empty language");
    }
  }
  for (size_t ci = 0; ci < enhanced.finiteness_constraints().size(); ++ci) {
    const FinitenessConstraint& c = enhanced.finiteness_constraints()[ci];
    if (c.selector.IsEmptyLanguage()) {
      Emit(analysis, "RAV005", Severity::kWarning, SourceLocation{},
           "finiteness constraint #" + std::to_string(ci + 1) +
               " selects no positions: its selector denotes the empty "
               "language");
    }
  }
  CountLint(analysis);
  return std::move(analysis.diagnostics);
}

StripResult AnalyzeAndStrip(const ExtendedAutomaton& era, StripEffort effort,
                            const ExecutionGovernor* governor) {
  const RegisterAutomaton& a = era.automaton();
  const bool guard_passes = effort == StripEffort::kFull;
  const bool flow_passes =
      (effort == StripEffort::kFull || effort == StripEffort::kFlow) &&
      StripFlowEnabled();
  Analysis analysis =
      Analyze(a, &era.constraints(), guard_passes, flow_passes, governor);
  CountLint(analysis);
  RAV_METRIC_COUNT("analysis/strip/calls", 1);
  StripResult out{std::nullopt, std::move(analysis.diagnostics), 0, 0, 0};
  if (analysis.degenerate()) return out;
  // A tripped analysis is a prefix; its liveness flags are complete (the
  // structural sweep always runs) but the skipped passes mean the
  // cheapest safe answer is: keep the automaton untouched.
  if (analysis.tripped) return out;

  const int n = a.num_states();
  int kept_states = 0;
  for (StateId q : a.States()) {
    if (analysis.live[q.value()]) ++kept_states;
  }
  // An empty live set means the language is empty; rebuilding a
  // zero-state automaton helps nobody, so leave the input untouched.
  if (kept_states == 0) return out;

  int dropped_transitions = 0;
  for (int ti = 0; ti < a.num_transitions(); ++ti) {
    const RaTransition& t = a.transition(ti);
    if (!analysis.live[t.from.value()] || !analysis.live[t.to.value()] ||
        analysis.drop_transition[ti]) {
      ++dropped_transitions;
    }
  }
  int dropped_constraints = 0;
  for (bool drop : analysis.drop_constraint) {
    if (drop) ++dropped_constraints;
  }
  if (kept_states == n && dropped_transitions == 0 &&
      dropped_constraints == 0) {
    return out;
  }

  std::vector<StateId> new_id(n);
  RegisterAutomaton stripped(a.num_registers(), a.schema());
  for (StateId q : a.States()) {
    if (!analysis.live[q.value()]) continue;
    new_id[q.value()] = stripped.AddState(a.state_name(q));
    stripped.SetInitial(new_id[q.value()], a.IsInitial(q));
    stripped.SetFinal(new_id[q.value()], a.IsFinal(q));
    stripped.SetStateLocation(new_id[q.value()], a.state_location(q));
  }
  for (int ti = 0; ti < a.num_transitions(); ++ti) {
    const RaTransition& t = a.transition(ti);
    if (!new_id[t.from.value()].valid() || !new_id[t.to.value()].valid() ||
        analysis.drop_transition[ti]) {
      continue;
    }
    stripped.AddTransition(new_id[t.from.value()], t.guard,
                           new_id[t.to.value()]);
    stripped.SetTransitionLocation(stripped.num_transitions() - 1,
                                   a.transition_location(ti));
  }
  ExtendedAutomaton result(std::move(stripped));
  for (size_t ci = 0; ci < era.constraints().size(); ++ci) {
    if (analysis.drop_constraint[ci]) continue;
    const GlobalConstraint& c = era.constraints()[ci];
    Dfa dfa = kept_states == n ? c.dfa
                               : RemapConstraintDfa(c.dfa, new_id, kept_states);
    Status added = result.AddConstraintDfa(
        RegisterPair{c.i, c.j}, c.is_equality, std::move(dfa), c.description);
    RAV_CHECK(added.ok());
    result.SetConstraintLocation(
        static_cast<int>(result.constraints().size()) - 1, c.loc);
  }
  out.states_removed = n - kept_states;
  out.transitions_removed = dropped_transitions;
  out.constraints_removed = dropped_constraints;
  out.era = std::move(result);
  RAV_METRIC_COUNT("analysis/strip/states_removed", out.states_removed);
  RAV_METRIC_COUNT("analysis/strip/transitions_removed",
                   out.transitions_removed);
  RAV_METRIC_COUNT("analysis/strip/constraints_removed",
                   out.constraints_removed);
  return out;
}

}  // namespace rav::analysis
