#ifndef RAV_ANALYSIS_DATAFLOW_H_
#define RAV_ANALYSIS_DATAFLOW_H_

// A small generic forward/backward worklist-fixpoint framework over the
// control graph of a register automaton, plus the three flow-sensitive
// analyses built on it (docs/linting.md):
//
//   RAV011  register liveness: a register written by some transition but
//           dead (never read before being overwritten) along every path
//           from that write to an accepting cycle.
//   RAV012  statically-unsatisfiable guards: the guard conjoined with
//           every frontier that can actually arrive at its source state
//           (propagated transitively from the initial states through the
//           compiled guard tables) is contradictory — strictly stronger
//           than the local pairwise RAV003 checks.
//   RAV013  reachability-refined Büchi-dead structure: transitions (and
//           states) that survive the local RAV002 liveness pass but lose
//           every path to an accepting cycle once the RAV012-unsatisfiable
//           transitions are removed from the graph.
//
// The framework is deliberately tiny: facts live per state, a Problem
// supplies the join-semilattice (BoundaryFact / Join / Transfer), and
// RunFixpoint drives round-based sweeps in a fixed state order, so the
// fixpoint — and therefore every diagnostic derived from it — is
// deterministic. It is also the intended plug-in point for the ordered
// guard theories of PAPERS.md (interval / extrema facts are just another
// lattice).

#include <vector>

#include "base/strong_id.h"
#include "era/extended_automaton.h"
#include "ra/register_automaton.h"

namespace rav::analysis {

// The control graph of a register automaton, extracted once: per-state
// incident transition-index lists in ascending transition order (the
// iteration order every analysis below inherits).
class ControlGraph {
 public:
  explicit ControlGraph(const RegisterAutomaton& a);

  const RegisterAutomaton& automaton() const { return *a_; }
  int num_states() const { return static_cast<int>(out_.size()); }
  const std::vector<int>& OutTransitions(StateId q) const {
    return out_[q.value()];
  }
  const std::vector<int>& InTransitions(StateId q) const {
    return in_[q.value()];
  }

 private:
  const RegisterAutomaton* a_;
  std::vector<std::vector<int>> out_;
  std::vector<std::vector<int>> in_;
};

enum class FlowDirection { kForward, kBackward };

// Drives `problem` to its least fixpoint over `graph` and returns the
// per-state facts. The Problem concept:
//
//   using Fact = ...;                 // a join-semilattice element
//   Fact BoundaryFact(StateId q);     // the initial fact at state q
//   bool Join(Fact& into, const Fact& from);   // true iff `into` grew
//   Fact Transfer(int transition_index, const Fact& source);
//
// Transfer moves a fact across one transition: from `t.from` for forward
// problems, from `t.to` for backward ones. Join must be monotone and the
// lattice of finite height, so the sweep terminates. Iteration is
// round-based over states in ascending (forward) or descending (backward)
// id order with edges in ascending transition order — a fixed, input-only
// order, so the fixpoint is byte-for-byte deterministic. The number of
// sweeps is written to *rounds when non-null (metrics).
template <typename Problem>
std::vector<typename Problem::Fact> RunFixpoint(const ControlGraph& graph,
                                                FlowDirection direction,
                                                Problem& problem,
                                                int* rounds = nullptr) {
  const RegisterAutomaton& a = graph.automaton();
  const int n = graph.num_states();
  std::vector<typename Problem::Fact> fact;
  fact.reserve(n);
  for (StateId q : a.States()) fact.push_back(problem.BoundaryFact(q));
  int sweeps = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    ++sweeps;
    for (int i = 0; i < n; ++i) {
      const int qi = direction == FlowDirection::kForward ? i : n - 1 - i;
      const auto& edges = direction == FlowDirection::kForward
                              ? graph.InTransitions(StateId(qi))
                              : graph.OutTransitions(StateId(qi));
      for (int ti : edges) {
        const RaTransition& t = a.transition(ti);
        const StateId source =
            direction == FlowDirection::kForward ? t.from : t.to;
        typename Problem::Fact moved =
            problem.Transfer(ti, fact[source.value()]);
        if (problem.Join(fact[qi], moved)) changed = true;
      }
    }
  }
  if (rounds != nullptr) *rounds = sweeps;
  return fact;
}

// The combined result of the three flow passes, computed by
// RunFlowAnalyses below. All vectors are indexed by the obvious dense id
// space; `state_live` refinement is in-place sound: refined_state_live
// implies the input state_live.
struct FlowAnalysisResult {
  // RAV011: register r is flow-dead — some live transition writes it,
  // some guard reads it globally (so RAV004 stays quiet), but no write's
  // value is ever read before being overwritten. dead_writes[r] counts
  // the writing transitions.
  std::vector<bool> register_flow_dead;  // size k
  std::vector<int> dead_writes;          // size k
  // RAV012: transition ti can never fire — every frontier that reaches
  // its source state (transitively from the initial states) contradicts
  // its guard.
  std::vector<bool> unsatisfiable;  // size num_transitions
  // RAV013: the refined liveness once RAV012 transitions are removed.
  // A transition with refined_transition_live[ti] == false (but fireable
  // and live-endpointed on input) lost every path to an accepting cycle.
  std::vector<bool> refined_state_live;       // size num_states
  std::vector<bool> refined_transition_live;  // size num_transitions
  // Fixpoint sweep counts (analysis/dataflow/* metrics).
  int liveness_rounds = 0;
  int fireability_rounds = 0;
  int refine_rounds = 0;
};

// Runs the three analyses over the live part of `a` (`state_live` is the
// RAV001/RAV002 liveness from the local passes). `constraints` may be
// null (plain register automata); registers a global constraint mentions
// are treated as read everywhere. Deterministic.
FlowAnalysisResult RunFlowAnalyses(
    const RegisterAutomaton& a,
    const std::vector<GlobalConstraint>* constraints,
    const std::vector<bool>& state_live);

}  // namespace rav::analysis

#endif  // RAV_ANALYSIS_DATAFLOW_H_
