#ifndef RAV_ANALYSIS_DIAGNOSTIC_H_
#define RAV_ANALYSIS_DIAGNOSTIC_H_

#include <string>
#include <vector>

#include "base/report.h"
#include "base/source_location.h"

namespace rav::analysis {

// Severity ladder of a lint finding. kError means the spec cannot mean
// what it says (e.g. a constraint no run can ever satisfy); kWarning
// flags dead or redundant structure; kNote is advisory.
enum class Severity { kNote = 0, kWarning = 1, kError = 2 };

// Stable name ("note", "warning", "error").
const char* SeverityName(Severity severity);

// One lint finding. `code` is stable across releases (docs/linting.md
// catalogs every code); messages are human-oriented and may change.
struct Diagnostic {
  std::string code;  // "RAV001" ... "RAV010"
  Severity severity = Severity::kWarning;
  std::string message;
  SourceLocation loc;  // invalid for automaton-level findings
};

// "file:3:7: warning: RAV001: ..." — the file and location prefixes are
// omitted when `file` is empty / the location is invalid.
std::string FormatDiagnostic(const Diagnostic& diagnostic,
                             const std::string& file = "");

// Highest severity present; kNote when `diagnostics` is empty.
Severity MaxSeverity(const std::vector<Diagnostic>& diagnostics);

// {"file": ..., "diagnostics": [{"code", "severity", "line", "column",
// "message"}, ...]} — the schema documented in docs/linting.md. Line and
// column are 0 for automaton-level findings.
Json DiagnosticsToJson(const std::vector<Diagnostic>& diagnostics,
                       const std::string& file);

}  // namespace rav::analysis

#endif  // RAV_ANALYSIS_DIAGNOSTIC_H_
