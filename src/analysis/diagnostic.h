#ifndef RAV_ANALYSIS_DIAGNOSTIC_H_
#define RAV_ANALYSIS_DIAGNOSTIC_H_

#include <string>
#include <utility>
#include <vector>

#include "base/report.h"
#include "base/source_location.h"

namespace rav::analysis {

// Severity ladder of a lint finding. kError means the spec cannot mean
// what it says (e.g. a constraint no run can ever satisfy); kWarning
// flags dead or redundant structure; kNote is advisory.
enum class Severity { kNote = 0, kWarning = 1, kError = 2 };

// Stable name ("note", "warning", "error").
const char* SeverityName(Severity severity);

// One lint finding. `code` is stable across releases (docs/linting.md
// catalogs every code); messages are human-oriented and may change.
struct Diagnostic {
  std::string code;  // "RAV001" ... "RAV013"
  Severity severity = Severity::kWarning;
  std::string message;
  SourceLocation loc;  // invalid for automaton-level findings
};

// Stable-sorts by (line, column, code): the output contract of every
// lint entry point. Automaton-level findings (line 0) sort first; ties
// keep emission (pass) order, so equal inputs render byte-identically
// no matter which pass produced a finding or on how many threads the
// caller fanned out.
void SortDiagnostics(std::vector<Diagnostic>& diagnostics);

// "file:3:7: warning: RAV001: ..." — the file and location prefixes are
// omitted when `file` is empty / the location is invalid.
std::string FormatDiagnostic(const Diagnostic& diagnostic,
                             const std::string& file = "");

// Highest severity present; kNote when `diagnostics` is empty.
Severity MaxSeverity(const std::vector<Diagnostic>& diagnostics);

// {"file": ..., "diagnostics": [{"code", "severity", "line", "column",
// "message"}, ...]} — the schema documented in docs/linting.md. Line and
// column are 0 for automaton-level findings.
Json DiagnosticsToJson(const std::vector<Diagnostic>& diagnostics,
                       const std::string& file);

// A SARIF 2.1.0 log (one run, driver "rav lint") over per-file
// diagnostic lists — the interchange format CI annotators ingest
// (docs/linting.md). Each distinct code becomes a reportingDescriptor
// rule; severities map kError → "error", kWarning → "warning", kNote →
// "note". Automaton-level findings carry no region.
Json DiagnosticsToSarif(
    const std::vector<std::pair<std::string, std::vector<Diagnostic>>>&
        files);

}  // namespace rav::analysis

#endif  // RAV_ANALYSIS_DIAGNOSTIC_H_
