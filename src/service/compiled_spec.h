#ifndef RAV_SERVICE_COMPILED_SPEC_H_
#define RAV_SERVICE_COMPILED_SPEC_H_

// The immutable compiled form of one spec: parse → lint → strip →
// complete → control-alphabet construction paid exactly once, so a
// long-lived service (tools/rav_serve, `rav_cli batch`) can answer many
// emptiness / LTL-FO / LR-boundedness queries against the same spec
// without recompiling (docs/serving.md). A CompiledSpec is keyed by the
// content hash of its spec text and shared across request threads via
// shared_ptr<const CompiledSpec>; nothing in it mutates after Compile
// returns, which is what makes the sharing safe — the decision
// procedures take the artifacts by const reference, exactly as the
// parallel search workers already do.
//
// This is the explicit spec → compiled-artifact boundary the ROADMAP's
// compiled guard tables and theory plugins will attach to.

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "analysis/lint.h"
#include "base/status.h"
#include "compile/guard_tables.h"
#include "era/extended_automaton.h"
#include "ra/control.h"

namespace rav::service {

// Stable content hash of a spec text (FNV-1a 64, 16 hex digits). Two
// byte-identical texts always share a hash; the cache key.
std::string SpecContentHash(std::string_view text);

class CompiledSpec {
 public:
  // Compiles `text` end to end. Fails only when the spec cannot be
  // compiled at all (parse error, completion blow-up past
  // `max_completed_transitions`); lint findings — errors included — are
  // recorded, not fatal: a contradictory spec is still decidable (its
  // language is empty) and the service reports the diagnostics alongside
  // every verdict.
  static Result<std::shared_ptr<const CompiledSpec>> Compile(
      std::string text, size_t max_completed_transitions = 1u << 20);

  // --- identity ---
  const std::string& hash() const { return hash_; }
  const std::string& text() const { return text_; }

  // --- lint (computed once; the `lint` op answers from here) ---
  const std::vector<analysis::Diagnostic>& diagnostics() const {
    return diagnostics_;
  }
  analysis::Severity worst_severity() const { return worst_severity_; }

  // --- query subjects ---
  // The spec as parsed (info / print-style queries).
  const ExtendedAutomaton& era() const { return era_; }
  // Stripped original-form automaton + its alphabet: the subject of
  // LR-boundedness and LTL-FO queries. Queries run with
  // analyze_and_strip=false — the strip already happened here.
  const ExtendedAutomaton& analysis_subject() const {
    return analysis_subject_;
  }
  const ControlAlphabet& analysis_alphabet() const {
    return analysis_alphabet_;
  }
  // Completed-and-stripped automaton + its alphabet: the subject of
  // emptiness queries (CheckEraEmptiness requires completeness).
  const ExtendedAutomaton& emptiness_subject() const {
    return emptiness_subject_;
  }
  const ControlAlphabet& emptiness_alphabet() const {
    return emptiness_alphabet_;
  }

  // --- compiled guard tables (docs/compilation.md) ---
  // Engine and table stats of the compiled alphabets; `info` reports them
  // and charges the bytes to the request governor. Both alphabets compile
  // their own table set, so the byte total sums the two.
  const char* guard_engine_name() const {
    return compile::GuardEngineName(analysis_alphabet_.guard_engine());
  }
  int distinct_guards() const {
    return analysis_alphabet_.num_distinct_guards();
  }
  size_t guard_table_bytes() const {
    return analysis_alphabet_.guard_table_bytes() +
           emptiness_alphabet_.guard_table_bytes();
  }

  // --- compile-time accounting (reported per response) ---
  double compile_ms() const { return compile_ms_; }
  int states_stripped() const { return states_stripped_; }
  int transitions_stripped() const { return transitions_stripped_; }
  int constraints_stripped() const { return constraints_stripped_; }

 private:
  CompiledSpec(std::string text, std::string hash, ExtendedAutomaton era,
               ExtendedAutomaton analysis_subject,
               ExtendedAutomaton emptiness_subject);

  std::string text_;
  std::string hash_;
  std::vector<analysis::Diagnostic> diagnostics_;
  analysis::Severity worst_severity_ = analysis::Severity::kNote;
  ExtendedAutomaton era_;
  ExtendedAutomaton analysis_subject_;
  ControlAlphabet analysis_alphabet_;
  ExtendedAutomaton emptiness_subject_;
  ControlAlphabet emptiness_alphabet_;
  double compile_ms_ = 0;
  int states_stripped_ = 0;
  int transitions_stripped_ = 0;
  int constraints_stripped_ = 0;
};

// A bounded, thread-safe content-addressed cache of compiled specs.
// GetOrCompile is the request path: hash the text, return the cached
// artifact on a hit, compile outside the lock on a miss (two racing
// misses both compile; the first insertion wins and both requests get
// the same verdicts — compilation is deterministic). Eviction is
// least-recently-used; entries handed out stay alive through their
// shared_ptr even after eviction.
class SpecCache {
 public:
  explicit SpecCache(size_t capacity = 64);

  // `cache_hit`, when non-null, reports whether compilation was skipped.
  Result<std::shared_ptr<const CompiledSpec>> GetOrCompile(
      const std::string& text, bool* cache_hit = nullptr);

  // Lookup by content hash (requests may send spec_hash instead of
  // re-uploading the text). nullptr when absent.
  std::shared_ptr<const CompiledSpec> FindByHash(const std::string& hash);

  size_t size() const;
  uint64_t hits() const;
  uint64_t misses() const;

 private:
  struct Entry {
    std::shared_ptr<const CompiledSpec> spec;
    uint64_t last_used = 0;
  };

  void EvictIfNeededLocked();

  mutable std::mutex mu_;
  size_t capacity_;
  uint64_t tick_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  std::unordered_map<std::string, Entry> entries_;  // key: content hash
};

}  // namespace rav::service

#endif  // RAV_SERVICE_COMPILED_SPEC_H_
