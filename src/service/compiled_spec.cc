#include "service/compiled_spec.h"

#include <chrono>
#include <cstdio>
#include <utility>

#include "base/metrics.h"
#include "base/trace.h"
#include "io/text_format.h"
#include "ra/transform.h"

namespace rav::service {

std::string SpecContentHash(std::string_view text) {
  // FNV-1a 64: stable across platforms and processes (std::hash is
  // neither), cheap, and collision-safe enough for a content-addressed
  // cache whose values are verified by construction.
  uint64_t h = 1469598103934665603ULL;
  for (char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return std::string(buf, 16);
}

namespace {

// Rebuilds an era around a completed automaton, carrying the global
// constraints over — the same preparation rav_cli's `empty` performs.
Result<ExtendedAutomaton> CompletedEra(const ExtendedAutomaton& era,
                                       size_t max_completed_transitions) {
  RegisterAutomaton completed = era.automaton();
  if (!completed.IsComplete()) {
    RAV_ASSIGN_OR_RETURN(completed,
                         Completed(completed, max_completed_transitions));
  }
  ExtendedAutomaton subject(std::move(completed));
  for (const GlobalConstraint& c : era.constraints()) {
    RAV_RETURN_IF_ERROR(subject.AddConstraintDfa(
        RegisterPair{c.i, c.j}, c.is_equality, c.dfa, c.description));
  }
  return subject;
}

// AnalyzeAndStrip as a total function: the unchanged case returns a copy
// of the input (CompiledSpec owns its subjects).
ExtendedAutomaton StrippedOrSame(const ExtendedAutomaton& era,
                                 analysis::StripResult* result) {
  *result = analysis::AnalyzeAndStrip(era, analysis::StripEffort::kFull);
  return result->changed() ? std::move(*result->era) : era;
}

}  // namespace

CompiledSpec::CompiledSpec(std::string text, std::string hash,
                           ExtendedAutomaton era,
                           ExtendedAutomaton analysis_subject,
                           ExtendedAutomaton emptiness_subject)
    : text_(std::move(text)),
      hash_(std::move(hash)),
      era_(std::move(era)),
      analysis_subject_(std::move(analysis_subject)),
      analysis_alphabet_(analysis_subject_.automaton()),
      emptiness_subject_(std::move(emptiness_subject)),
      emptiness_alphabet_(emptiness_subject_.automaton()) {}

Result<std::shared_ptr<const CompiledSpec>> CompiledSpec::Compile(
    std::string text, size_t max_completed_transitions) {
  RAV_TRACE_SPAN("service/compile");
  const auto start = std::chrono::steady_clock::now();
  std::string hash = SpecContentHash(text);

  RAV_ASSIGN_OR_RETURN(ExtendedAutomaton era, ParseExtendedAutomaton(text));

  // One full-effort analysis covers both the cached lint diagnostics and
  // the stripped analysis subject; queries then run with
  // analyze_and_strip=false (see docs/serving.md — strip preserves every
  // verdict, so per-query re-analysis would buy nothing).
  analysis::StripResult strip;
  ExtendedAutomaton analysis_subject = StrippedOrSame(era, &strip);

  // Emptiness wants a complete automaton; completing the *stripped*
  // subject keeps the completion small (dead structure would otherwise be
  // completed too, then re-stripped on every query).
  RAV_ASSIGN_OR_RETURN(
      ExtendedAutomaton emptiness_subject,
      CompletedEra(analysis_subject, max_completed_transitions));

  auto spec = std::shared_ptr<CompiledSpec>(new CompiledSpec(
      std::move(text), std::move(hash), std::move(era),
      std::move(analysis_subject), std::move(emptiness_subject)));
  spec->diagnostics_ = std::move(strip.diagnostics);
  spec->worst_severity_ = analysis::MaxSeverity(spec->diagnostics_);
  spec->states_stripped_ = strip.states_removed;
  spec->transitions_stripped_ = strip.transitions_removed;
  spec->constraints_stripped_ = strip.constraints_removed;
  spec->compile_ms_ = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  RAV_METRIC_COUNT("service/compiles", 1);
  return std::shared_ptr<const CompiledSpec>(std::move(spec));
}

// ---------------------------------------------------------------------------
// SpecCache

SpecCache::SpecCache(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

Result<std::shared_ptr<const CompiledSpec>> SpecCache::GetOrCompile(
    const std::string& text, bool* cache_hit) {
  const std::string hash = SpecContentHash(text);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(hash);
    if (it != entries_.end()) {
      it->second.last_used = ++tick_;
      ++hits_;
      RAV_METRIC_COUNT("service/cache_hits", 1);
      if (cache_hit != nullptr) *cache_hit = true;
      return it->second.spec;
    }
  }
  // Compile outside the lock: a slow compile must not serialize requests
  // for other (cached) specs.
  RAV_ASSIGN_OR_RETURN(std::shared_ptr<const CompiledSpec> spec,
                       CompiledSpec::Compile(text));
  std::lock_guard<std::mutex> lock(mu_);
  ++misses_;
  RAV_METRIC_COUNT("service/cache_misses", 1);
  if (cache_hit != nullptr) *cache_hit = false;
  auto [it, inserted] = entries_.emplace(hash, Entry{spec, ++tick_});
  if (!inserted) {
    // A racing request compiled the same text first; keep its artifact so
    // every holder shares one copy.
    it->second.last_used = tick_;
    return it->second.spec;
  }
  EvictIfNeededLocked();
  return spec;
}

std::shared_ptr<const CompiledSpec> SpecCache::FindByHash(
    const std::string& hash) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(hash);
  if (it == entries_.end()) return nullptr;
  it->second.last_used = ++tick_;
  ++hits_;
  return it->second.spec;
}

size_t SpecCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

uint64_t SpecCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

uint64_t SpecCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

void SpecCache::EvictIfNeededLocked() {
  while (entries_.size() > capacity_) {
    auto victim = entries_.begin();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.last_used < victim->second.last_used) victim = it;
    }
    entries_.erase(victim);
  }
  RAV_METRIC_SET("service/cached_specs", entries_.size());
}

}  // namespace rav::service
