#include "service/request.h"

#include "base/failpoints.h"
#include "base/numbers.h"
#include "base/report.h"

namespace rav::service {

const char* OpName(Op op) {
  switch (op) {
    case Op::kEmpty:
      return "empty";
    case Op::kVerify:
      return "verify";
    case Op::kLrBound:
      return "lrbound";
    case Op::kLint:
      return "lint";
    case Op::kInfo:
      return "info";
    case Op::kCancel:
      return "cancel";
    case Op::kStats:
      return "stats";
  }
  return "?";
}

namespace {

Result<Op> ParseOp(const std::string& name) {
  if (name == "empty") return Op::kEmpty;
  if (name == "verify") return Op::kVerify;
  if (name == "lrbound") return Op::kLrBound;
  if (name == "lint") return Op::kLint;
  if (name == "info") return Op::kInfo;
  if (name == "cancel") return Op::kCancel;
  if (name == "stats") return Op::kStats;
  return Status::InvalidArgument(
      "op: unknown op '" + name +
      "' — valid ops: empty, verify, lrbound, lint, info, cancel, stats");
}

Result<std::string> RequiredString(const Json& object, const char* key) {
  const Json* value = object.Find(key);
  if (value == nullptr) {
    return Status::InvalidArgument(std::string(key) + ": missing");
  }
  if (!value->is_string()) {
    return Status::InvalidArgument(std::string(key) + ": must be a string");
  }
  return value->string_value();
}

Result<std::string> OptionalString(const Json& object, const char* key) {
  const Json* value = object.Find(key);
  if (value == nullptr) return std::string();
  if (!value->is_string()) {
    return Status::InvalidArgument(std::string(key) + ": must be a string");
  }
  return value->string_value();
}

}  // namespace

Result<QueryRequest> ParseRequest(const std::string& line) {
  if (RAV_FAILPOINT("service/parse_request")) {
    return Status::InvalidArgument(
        "failpoint service/parse_request fired — request rejected");
  }

  Result<Json> parsed = Json::Parse(line);
  if (!parsed.ok()) {
    return Status::InvalidArgument("request is not valid JSON: " +
                                   parsed.status().message());
  }
  if (!parsed->is_object()) {
    return Status::InvalidArgument("request must be a JSON object");
  }
  const Json& object = *parsed;

  QueryRequest request;
  RAV_ASSIGN_OR_RETURN(request.id, RequiredString(object, "id"));
  if (request.id.empty()) {
    return Status::InvalidArgument("id: must be non-empty");
  }
  RAV_ASSIGN_OR_RETURN(std::string op_name, RequiredString(object, "op"));
  RAV_ASSIGN_OR_RETURN(request.op, ParseOp(op_name));

  RAV_ASSIGN_OR_RETURN(request.spec_text, OptionalString(object, "spec"));
  RAV_ASSIGN_OR_RETURN(request.spec_hash, OptionalString(object, "spec_hash"));

  const bool needs_spec = request.op != Op::kCancel && request.op != Op::kStats;
  if (needs_spec) {
    if (request.spec_text.empty() && request.spec_hash.empty()) {
      return Status::InvalidArgument(
          std::string("op '") + OpName(request.op) +
          "' needs a spec: provide \"spec\" (full text) or \"spec_hash\" "
          "(content hash of a spec this service already compiled)");
    }
    if (!request.spec_text.empty() && !request.spec_hash.empty()) {
      return Status::InvalidArgument(
          "provide \"spec\" or \"spec_hash\", not both");
    }
  }

  if (request.op == Op::kVerify) {
    RAV_ASSIGN_OR_RETURN(request.ltl, RequiredString(object, "ltl"));
    const Json* propositions = object.Find("propositions");
    if (propositions == nullptr || !propositions->is_array() ||
        propositions->size() == 0) {
      return Status::InvalidArgument(
          "propositions: op 'verify' needs a non-empty array of "
          "proposition strings (e.g. [\"x1=y1\"])");
    }
    for (size_t i = 0; i < propositions->size(); ++i) {
      if (!propositions->at(i).is_string()) {
        return Status::InvalidArgument("propositions: entries must be strings");
      }
      request.propositions.push_back(propositions->at(i).string_value());
    }
  }

  if (request.op == Op::kCancel) {
    RAV_ASSIGN_OR_RETURN(request.target, RequiredString(object, "target"));
    if (request.target.empty()) {
      return Status::InvalidArgument("target: must be non-empty");
    }
  }

  RAV_ASSIGN_OR_RETURN(std::string timeout, OptionalString(object, "timeout"));
  if (!timeout.empty()) {
    Result<long long> ms = ParseDurationMs(timeout);
    if (!ms.ok()) {
      return Status::InvalidArgument("timeout: " + ms.status().message());
    }
    request.timeout_ms = *ms;
  }
  RAV_ASSIGN_OR_RETURN(std::string memory,
                       OptionalString(object, "memory_limit"));
  if (!memory.empty()) {
    Result<long long> bytes = ParseByteSize(memory);
    if (!bytes.ok()) {
      return Status::InvalidArgument("memory_limit: " +
                                     bytes.status().message());
    }
    request.memory_bytes = *bytes;
  }

  if (const Json* threads = object.Find("threads"); threads != nullptr) {
    if (!threads->is_number() || threads->number_value() < 0 ||
        threads->number_value() != static_cast<double>(static_cast<int>(
                                       threads->number_value()))) {
      return Status::InvalidArgument(
          "threads: must be a non-negative integer");
    }
    request.threads = static_cast<int>(threads->number_value());
  }

  RAV_ASSIGN_OR_RETURN(std::string mode_name,
                       OptionalString(object, "search_mode"));
  if (!mode_name.empty()) {
    std::optional<SearchMode> mode = ParseSearchMode(mode_name);
    if (!mode.has_value()) {
      return Status::InvalidArgument(
          "search_mode: unknown mode '" + mode_name +
          "' — valid modes: partitioned, shared");
    }
    request.search_mode = *mode;
  }

  return request;
}

}  // namespace rav::service
