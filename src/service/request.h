#ifndef RAV_SERVICE_REQUEST_H_
#define RAV_SERVICE_REQUEST_H_

// One decision-service request, parsed from a JSON-lines wire line
// (docs/serving.md). The wire format reuses the base/report.h JSON DOM —
// the same document model the run reports already speak, so a client
// that can read reports can write requests.
//
//   {"id": "r1", "op": "empty", "spec": "<spec text>",
//    "timeout": "250ms", "memory_limit": "64k", "threads": 2}
//
// `spec` carries the full spec text; `spec_hash` instead refers to a
// spec already compiled by an earlier request in the same process
// (content hash, as reported in every response). Exactly one of the two
// is required for the query ops.

#include <string>
#include <vector>

#include "base/status.h"
#include "era/parallel_search.h"

namespace rav::service {

// Worker threads of the rav_serve frontend's request executor (not of a
// single search — that default is kDefaultSearchWorkers). One constant so
// the frontend, its --help text, and docs/serving.md cannot drift apart.
inline constexpr int kDefaultServeThreads = 4;

// The ops a request may name. kStats and kCancel are control ops that
// need no spec.
enum class Op {
  kEmpty,    // emptiness over finite databases
  kVerify,   // LTL-FO verification (needs ltl + propositions)
  kLrBound,  // LR-boundedness estimation
  kLint,     // static-analysis diagnostics (answered from the cache)
  kInfo,     // spec summary + compile accounting
  kCancel,   // cooperatively cancel the in-flight request named `target`
  kStats,    // service counters (cache hits, requests served, ...)
};

const char* OpName(Op op);

struct QueryRequest {
  std::string id;           // required; echoed in the response
  Op op = Op::kStats;
  std::string spec_text;    // exactly one of spec_text / spec_hash
  std::string spec_hash;    //   for the query ops
  std::string ltl;          // op=verify
  std::vector<std::string> propositions;  // op=verify
  std::string target;       // op=cancel: id of the request to cancel
  long long timeout_ms = -1;     // -1 = unlimited; 0 arms an already-
  long long memory_bytes = -1;   //   expired budget (as rav_cli
                                 //   --timeout 0ms does)
  // Lasso-check workers (as rav_cli --threads).
  int threads = kDefaultSearchWorkers;
  // Lasso-engine work sharing (as rav_cli --search-mode).
  SearchMode search_mode = SearchMode::kPartitioned;
};

// Parses and validates one wire line. Every rejection is an
// InvalidArgument naming the offending field; limits use the rav_cli
// grammars (ParseDurationMs / ParseByteSize), so "250ms" and "64k" mean
// the same thing on the wire as on the command line. Carries the
// `service/parse_request` failpoint (docs/robustness.md).
Result<QueryRequest> ParseRequest(const std::string& line);

}  // namespace rav::service

#endif  // RAV_SERVICE_REQUEST_H_
