#ifndef RAV_SERVICE_SERVICE_H_
#define RAV_SERVICE_SERVICE_H_

// The decision service: compiled-spec cache + request execution. One
// Service instance answers many requests concurrently — Handle is
// thread-safe and blocking, so callers (tools/rav_serve's worker
// threads, `rav_cli batch`) provide the concurrency and the service
// provides the isolation:
//
//   * each request runs under its OWN ExecutionGovernor, armed from the
//     request's timeout/memory_limit — one request tripping its deadline
//     or budget cannot disturb any concurrent request;
//   * compiled specs are shared immutably (shared_ptr<const
//     CompiledSpec>), so concurrent queries against one spec race only
//     on their own search state, exactly like the parallel lasso
//     workers;
//   * every response embeds a per-request run report (base/report.h
//     schema), so a service batch is observable with the same tooling
//     as rav_cli --report files.
//
// See docs/serving.md for the wire format and lifecycle.

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "base/governor.h"
#include "base/report.h"
#include "service/compiled_spec.h"
#include "service/request.h"

namespace rav::service {

struct ServiceOptions {
  size_t cache_capacity = 64;
};

// One answered request. `exit_equivalent` maps the outcome onto the
// rav_cli exit-code contract (docs/robustness.md): 0 ok, 1 error,
// 3 property-false, 4 governor trip, 5 cancelled — so a batch driver
// can reuse the CLI's scripting conventions per request.
struct QueryResponse {
  std::string id;
  std::string op;
  bool ok = false;          // false iff the request itself failed
  std::string error;        // set iff !ok
  std::string verdict;      // domain verdict ("EMPTY", "HOLDS", ...)
  int exit_equivalent = 0;
  std::string spec_hash;    // content hash of the spec answered against
  bool cache_hit = false;   // compilation skipped
  Json details = Json::Object();  // op-specific payload
  Json report = Json::Object();   // per-request RunReport document
  double wall_ms = 0;

  // The wire form: one compact JSON object (single line, ready for the
  // JSON-lines stream).
  Json ToJson() const;
  std::string ToJsonLine() const;
};

class Service {
 public:
  explicit Service(ServiceOptions options = ServiceOptions());

  // Answers one request; never throws, never exits. Failures come back
  // as ok=false responses. Thread-safe.
  QueryResponse Handle(const QueryRequest& request);

  // Requests cooperative cancellation of the in-flight request with this
  // id. Returns false when no such request is running (already finished,
  // or never existed). Thread-safe, callable from signal-watchdog
  // threads.
  bool Cancel(const std::string& request_id);

  // Cancels every in-flight request (shutdown path). Returns how many
  // were signalled.
  size_t CancelAll();

  // Service counters as a JSON object (the `stats` op's payload).
  Json StatsJson() const;

 private:
  class InFlightGuard;

  QueryResponse Execute(const QueryRequest& request);

  ServiceOptions options_;
  SpecCache cache_;
  mutable std::mutex mu_;
  // id -> governor of the running request. The governor lives in a
  // shared_ptr so Cancel can signal it after Handle already unregistered
  // (RequestCancel on a governor whose request finished is harmless).
  std::unordered_map<std::string, std::shared_ptr<ExecutionGovernor>>
      in_flight_;
  uint64_t requests_ = 0;
  uint64_t failures_ = 0;
  uint64_t governor_trips_ = 0;
};

}  // namespace rav::service

#endif  // RAV_SERVICE_SERVICE_H_
