#include "service/service.h"

#include <chrono>
#include <utility>
#include <vector>

#include "analysis/diagnostic.h"
#include "base/metrics.h"
#include "era/emptiness.h"
#include "era/ltlfo.h"
#include "io/proposition.h"
#include "projection/lr_bounded.h"

namespace rav::service {

namespace {

constexpr int kExitOk = 0;
constexpr int kExitError = 1;
constexpr int kExitPropertyFalse = 3;
constexpr int kExitResourceExhausted = 4;
constexpr int kExitCancelled = 5;

// Same mapping as rav_cli's ExitForStop: a governor stop gets its
// dedicated code, the legacy enumeration bounds keep exit 0.
int ExitForStop(SearchStopReason reason) {
  switch (reason) {
    case SearchStopReason::kDeadline:
    case SearchStopReason::kMemoryBudget:
      return kExitResourceExhausted;
    case SearchStopReason::kCancelled:
      return kExitCancelled;
    default:
      return kExitOk;
  }
}

// Exit equivalent of a failed Status under `governor`: a
// ResourceExhausted raised by a tripped governor distinguishes
// cancellation from budget exhaustion via the trip kind.
int ExitForStatus(const Status& status, const ExecutionGovernor& governor) {
  if (status.code() == StatusCode::kResourceExhausted) {
    return governor.trip() == GovernorTrip::kCancelled
               ? kExitCancelled
               : kExitResourceExhausted;
  }
  return kExitError;
}

}  // namespace

Json QueryResponse::ToJson() const {
  Json out = Json::Object();
  out.Set("id", Json::String(id));
  out.Set("op", Json::String(op));
  out.Set("ok", Json::Bool(ok));
  if (!ok) out.Set("error", Json::String(error));
  out.Set("verdict", Json::String(verdict));
  out.Set("exit_equivalent", Json::Number(exit_equivalent));
  if (!spec_hash.empty()) {
    out.Set("spec_hash", Json::String(spec_hash));
    out.Set("cache_hit", Json::Bool(cache_hit));
  }
  out.Set("details", details);
  out.Set("report", report);
  out.Set("wall_ms", Json::Number(wall_ms));
  return out;
}

std::string QueryResponse::ToJsonLine() const { return ToJson().Dump(0); }

// Registers the request's governor for the lifetime of its execution so
// `cancel` ops and the shutdown path can reach it.
class Service::InFlightGuard {
 public:
  InFlightGuard(Service* service, const std::string& id,
                std::shared_ptr<ExecutionGovernor> governor)
      : service_(service), id_(id) {
    std::lock_guard<std::mutex> lock(service_->mu_);
    registered_ = service_->in_flight_.emplace(id, std::move(governor)).second;
  }
  ~InFlightGuard() {
    if (!registered_) return;
    std::lock_guard<std::mutex> lock(service_->mu_);
    service_->in_flight_.erase(id_);
  }
  // False when another request with the same id is still running.
  bool registered() const { return registered_; }

 private:
  Service* service_;
  std::string id_;
  bool registered_ = false;
};

Service::Service(ServiceOptions options)
    : options_(options), cache_(options.cache_capacity) {}

bool Service::Cancel(const std::string& request_id) {
  std::shared_ptr<ExecutionGovernor> governor;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = in_flight_.find(request_id);
    if (it == in_flight_.end()) return false;
    governor = it->second;
  }
  governor->RequestCancel();
  return true;
}

size_t Service::CancelAll() {
  std::vector<std::shared_ptr<ExecutionGovernor>> governors;
  {
    std::lock_guard<std::mutex> lock(mu_);
    governors.reserve(in_flight_.size());
    for (auto& [id, governor] : in_flight_) governors.push_back(governor);
  }
  for (auto& governor : governors) governor->RequestCancel();
  return governors.size();
}

Json Service::StatsJson() const {
  Json out = Json::Object();
  std::lock_guard<std::mutex> lock(mu_);
  out.Set("requests", Json::Number(requests_));
  out.Set("failures", Json::Number(failures_));
  out.Set("governor_trips", Json::Number(governor_trips_));
  out.Set("in_flight", Json::Number(static_cast<uint64_t>(in_flight_.size())));
  out.Set("cached_specs", Json::Number(static_cast<uint64_t>(cache_.size())));
  out.Set("cache_hits", Json::Number(cache_.hits()));
  out.Set("cache_misses", Json::Number(cache_.misses()));
  return out;
}

QueryResponse Service::Handle(const QueryRequest& request) {
  const auto start = std::chrono::steady_clock::now();
  QueryResponse response = Execute(request);
  response.wall_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - start)
                         .count();

  // The per-request run report: the same 7-key schema rav_cli --report
  // writes, embedded in the response so batches are observable without
  // a shared file. Spans stay empty — the trace store aggregates
  // process-wide, which would misattribute concurrent requests' work.
  RunReport report;
  report.experiment = std::string("serve/") + response.op;
  report.claim = "decision service request (docs/serving.md)";
  report.params.Set("id", Json::String(response.id));
  report.params.Set("op", Json::String(response.op));
  if (!response.spec_hash.empty()) {
    report.params.Set("spec_hash", Json::String(response.spec_hash));
    report.params.Set("cache_hit", Json::Bool(response.cache_hit));
  }
  report.params.Set("timeout_ms",
                    Json::Number(static_cast<int64_t>(request.timeout_ms)));
  report.params.Set("memory_bytes",
                    Json::Number(static_cast<int64_t>(request.memory_bytes)));
  report.params.Set("threads", Json::Number(request.threads));
  report.params.Set("search_mode",
                    Json::String(SearchModeName(request.search_mode)));
  report.params.Set("exit_equivalent", Json::Number(response.exit_equivalent));
  report.verdict = response.ok
                       ? (response.verdict.empty() ? "ok" : response.verdict)
                       : ("error: " + response.error);
  report.wall_ms = response.wall_ms;
  response.report = ReportToJson(report);

  {
    std::lock_guard<std::mutex> lock(mu_);
    ++requests_;
    if (!response.ok) ++failures_;
    if (response.exit_equivalent == kExitResourceExhausted ||
        response.exit_equivalent == kExitCancelled) {
      ++governor_trips_;
    }
  }
  RAV_METRIC_COUNT("service/requests", 1);
  return response;
}

QueryResponse Service::Execute(const QueryRequest& request) {
  QueryResponse response;
  response.id = request.id;
  response.op = OpName(request.op);

  auto fail = [&](const Status& status, int exit_equivalent) {
    response.ok = false;
    response.error = status.ToString();
    response.verdict = "error";
    response.exit_equivalent = exit_equivalent;
    return response;
  };

  // Control ops need no spec and no governor.
  if (request.op == Op::kStats) {
    response.ok = true;
    response.verdict = "ok";
    response.details = StatsJson();
    return response;
  }
  if (request.op == Op::kCancel) {
    const bool cancelled = Cancel(request.target);
    response.ok = true;
    response.verdict = cancelled ? "cancel requested" : "not in flight";
    response.details.Set("target", Json::String(request.target));
    response.details.Set("cancelled", Json::Bool(cancelled));
    return response;
  }

  // Resolve the compiled spec: by text (compiling on a cache miss) or by
  // the hash of an earlier compile.
  std::shared_ptr<const CompiledSpec> spec;
  if (!request.spec_text.empty()) {
    Result<std::shared_ptr<const CompiledSpec>> compiled =
        cache_.GetOrCompile(request.spec_text, &response.cache_hit);
    if (!compiled.ok()) return fail(compiled.status(), kExitError);
    spec = *compiled;
  } else {
    spec = cache_.FindByHash(request.spec_hash);
    if (spec == nullptr) {
      return fail(Status::NotFound(
                      "spec_hash '" + request.spec_hash +
                      "' is not in this service's cache — send the spec "
                      "text once and reuse the hash it reports"),
                  kExitError);
    }
    response.cache_hit = true;
  }
  response.spec_hash = spec->hash();

  // The request's own governor: trips here are invisible to every other
  // request.
  auto governor = std::make_shared<ExecutionGovernor>();
  if (request.timeout_ms >= 0) {
    governor->set_deadline_after(std::chrono::milliseconds(request.timeout_ms));
  }
  if (request.memory_bytes >= 0) {
    governor->set_memory_budget(static_cast<size_t>(request.memory_bytes));
  }
  InFlightGuard guard(this, request.id, governor);
  if (!guard.registered()) {
    return fail(Status::InvalidArgument(
                    "id '" + request.id +
                    "' is already in flight — request ids must be unique "
                    "among concurrently running requests"),
                kExitError);
  }

  switch (request.op) {
    case Op::kEmpty: {
      EraEmptinessOptions options;
      options.num_workers = request.threads;
      options.search_mode = request.search_mode;
      options.analyze_and_strip = false;  // compiled away in CompiledSpec
      options.governor = governor.get();
      auto result = CheckEraEmptiness(spec->emptiness_subject(),
                                      spec->emptiness_alphabet(), options);
      if (!result.ok()) {
        return fail(result.status(), ExitForStatus(result.status(), *governor));
      }
      response.ok = true;
      if (result->nonempty) {
        response.verdict = "NONEMPTY";
        response.exit_equivalent = kExitPropertyFalse;
        response.details.Set("witness",
                             Json::String(result->control_word.ToString()));
      } else if (result->search_truncated) {
        response.verdict = "EMPTY (search truncated, not definitive)";
        response.exit_equivalent = ExitForStop(result->stats.stop_reason);
      } else {
        response.verdict = "EMPTY";
      }
      response.details.Set(
          "stop_reason",
          Json::String(SearchStopReasonName(result->stats.stop_reason)));
      response.details.Set("search", Json::String(result->stats.ToString()));
      return response;
    }

    case Op::kVerify: {
      Result<LtlFoProperty> property =
          ParseLtlFoProperty(request.ltl, request.propositions,
                             spec->analysis_subject().automaton());
      if (!property.ok()) return fail(property.status(), kExitError);
      VerificationOptions options;
      options.analyze_and_strip = false;
      options.emptiness.num_workers = request.threads;
      options.emptiness.search_mode = request.search_mode;
      options.emptiness.governor = governor.get();
      auto result =
          VerifyLtlFo(spec->analysis_subject(), *property, options);
      if (!result.ok()) {
        return fail(result.status(), ExitForStatus(result.status(), *governor));
      }
      response.ok = true;
      if (result->holds) {
        if (result->search_truncated) {
          response.verdict = "HOLDS (search truncated, not definitive)";
          response.exit_equivalent =
              ExitForStop(result->search_stats.stop_reason);
        } else {
          response.verdict = "HOLDS";
        }
      } else {
        response.verdict = "FAILS";
        response.exit_equivalent = kExitPropertyFalse;
        response.details.Set(
            "counterexample",
            Json::String(result->counterexample->ToString()));
      }
      response.details.Set(
          "stop_reason",
          Json::String(SearchStopReasonName(result->search_stats.stop_reason)));
      return response;
    }

    case Op::kLrBound: {
      LrBoundOptions options;
      options.num_workers = request.threads;
      options.search_mode = request.search_mode;
      options.analyze_and_strip = false;
      options.governor = governor.get();
      auto result = EstimateLrBound(spec->analysis_subject(),
                                    spec->analysis_alphabet(), options);
      if (!result.ok()) {
        return fail(result.status(), ExitForStatus(result.status(), *governor));
      }
      response.ok = true;
      response.verdict = result->growth_detected
                             ? "growth detected (not LR-bounded)"
                             : "no growth detected";
      response.exit_equivalent = result->growth_detected
                                     ? kExitPropertyFalse
                                     : ExitForStop(result->stats.stop_reason);
      response.details.Set("max_cover", Json::Number(result->max_cover));
      response.details.Set("growth_detected",
                           Json::Bool(result->growth_detected));
      response.details.Set(
          "lassos_examined",
          Json::Number(static_cast<uint64_t>(result->lassos_examined)));
      response.details.Set(
          "stop_reason",
          Json::String(SearchStopReasonName(result->stats.stop_reason)));
      return response;
    }

    case Op::kLint: {
      // Answered from the compile-time analysis — no automaton work.
      response.ok = true;
      response.details.Set(
          "diagnostics",
          analysis::DiagnosticsToJson(spec->diagnostics(), "<spec>"));
      switch (spec->worst_severity()) {
        case analysis::Severity::kError:
          response.verdict = "lint errors";
          response.exit_equivalent = 2;
          break;
        case analysis::Severity::kWarning:
          response.verdict = "lint warnings";
          response.exit_equivalent = 1;
          break;
        case analysis::Severity::kNote:
          response.verdict = spec->diagnostics().empty() ? "clean"
                                                         : "lint notes";
          break;
      }
      return response;
    }

    case Op::kInfo: {
      const RegisterAutomaton& a = spec->era().automaton();
      // The compiled guard tables live for this response's lifetime as far
      // as the request is concerned — charge them like any other artifact.
      ScopedMemoryCharge table_charge(governor.get(),
                                      spec->guard_table_bytes());
      if (Status charged = governor->CheckStatus("info"); !charged.ok()) {
        return fail(charged, ExitForStatus(charged, *governor));
      }
      response.ok = true;
      response.verdict = "ok";
      response.details.Set("registers", Json::Number(a.num_registers()));
      response.details.Set("states", Json::Number(a.num_states()));
      response.details.Set("transitions", Json::Number(a.num_transitions()));
      response.details.Set(
          "constraints",
          Json::Number(static_cast<uint64_t>(spec->era().constraints().size())));
      response.details.Set("complete", Json::Bool(a.IsComplete()));
      response.details.Set("guard_engine",
                           Json::String(spec->guard_engine_name()));
      response.details.Set("distinct_guards",
                           Json::Number(spec->distinct_guards()));
      response.details.Set(
          "guard_table_bytes",
          Json::Number(static_cast<uint64_t>(spec->guard_table_bytes())));
      response.details.Set("compile_ms", Json::Number(spec->compile_ms()));
      response.details.Set("states_stripped",
                           Json::Number(spec->states_stripped()));
      response.details.Set("transitions_stripped",
                           Json::Number(spec->transitions_stripped()));
      response.details.Set("constraints_stripped",
                           Json::Number(spec->constraints_stripped()));
      return response;
    }

    case Op::kCancel:
    case Op::kStats:
      break;  // handled above
  }
  return fail(Status::Internal("unhandled op"), kExitError);
}

}  // namespace rav::service
