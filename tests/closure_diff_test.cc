// Differential tests of the linear-pass constraint-closure engine against
// the reference per-start-restart engine, and of ExtendedBy against a
// from-scratch rebuild. The two engines must agree on every observable:
// consistency, the class assignment of every node, adom membership, and
// the deduplicated inequality edge set.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "era/constraint_graph.h"
#include "ra/control.h"
#include "ra/random.h"

namespace rav {
namespace {

Dfa RandomConstraintDfa(std::mt19937& rng, int alphabet_size) {
  std::uniform_int_distribution<int> num_states_dist(1, 5);
  const int n = num_states_dist(rng);
  std::uniform_int_distribution<int> state_dist(0, n - 1);
  Dfa dfa(alphabet_size, n, state_dist(rng));
  std::uniform_int_distribution<int> accept_dist(0, 3);
  for (int s = 0; s < n; ++s) {
    for (int a = 0; a < alphabet_size; ++a) {
      dfa.SetTransition(s, a, state_dist(rng));
    }
    dfa.SetAccepting(s, accept_dist(rng) == 0);
  }
  return dfa;
}

struct RandomInstance {
  ExtendedAutomaton era;
  ControlAlphabet alphabet;
  LassoWord word;
};

RandomInstance MakeInstance(std::mt19937& rng) {
  RandomAutomatonOptions options;
  std::uniform_int_distribution<int> reg_dist(1, 3);
  options.num_registers = reg_dist(rng);
  std::uniform_int_distribution<int> state_dist(2, 4);
  options.num_states = state_dist(rng);
  options.num_transitions = 2 * options.num_states;
  if (std::uniform_int_distribution<int>(0, 1)(rng) == 1) {
    options.schema.AddConstant("c0");
    if (std::uniform_int_distribution<int>(0, 1)(rng) == 1) {
      options.schema.AddConstant("c1");
    }
  }
  RegisterAutomaton a = RandomAutomaton(rng, options);
  const int num_states = a.num_states();
  const int k = a.num_registers();
  ExtendedAutomaton era(std::move(a));
  std::uniform_int_distribution<int> num_constraints_dist(1, 4);
  std::uniform_int_distribution<int> reg_pick(0, k - 1);
  std::uniform_int_distribution<int> coin(0, 1);
  const int nc = num_constraints_dist(rng);
  for (int c = 0; c < nc; ++c) {
    const RegisterPair regs{RegisterId(reg_pick(rng)),
                            RegisterId(reg_pick(rng))};
    EXPECT_TRUE(era.AddConstraintDfa(regs, /*is_equality=*/coin(rng) == 1,
                                     RandomConstraintDfa(rng, num_states))
                    .ok());
  }
  ControlAlphabet alphabet(era.automaton());
  // The closure does not require the word to follow the transition
  // relation, so any symbol sequence exercises it.
  std::uniform_int_distribution<int> symbol_dist(0, alphabet.size() - 1);
  LassoWord word;
  std::uniform_int_distribution<int> prefix_len(0, 3);
  std::uniform_int_distribution<int> cycle_len(1, 4);
  const int np = prefix_len(rng);
  const int nv = cycle_len(rng);
  for (int i = 0; i < np; ++i) word.prefix.push_back(symbol_dist(rng));
  for (int i = 0; i < nv; ++i) word.cycle.push_back(symbol_dist(rng));
  return RandomInstance{std::move(era), std::move(alphabet),
                        std::move(word)};
}

void ExpectSameClosure(const ConstraintClosure& got,
                       const ConstraintClosure& want) {
  ASSERT_EQ(got.window(), want.window());
  ASSERT_EQ(got.num_nodes(), want.num_nodes());
  EXPECT_EQ(got.consistent(), want.consistent());
  ASSERT_EQ(got.num_classes(), want.num_classes());
  for (int v = 0; v < got.num_nodes(); ++v) {
    EXPECT_EQ(got.ClassOf(v), want.ClassOf(v)) << "node " << v;
  }
  for (int c = 0; c < got.num_classes(); ++c) {
    EXPECT_EQ(got.ClassInAdom(c), want.ClassInAdom(c)) << "class " << c;
  }
  EXPECT_EQ(got.InequalityEdges(), want.InequalityEdges());
  EXPECT_EQ(got.NumAdomClasses(), want.NumAdomClasses());
}

TEST(ClosureDiffTest, LinearMatchesReferenceOnRandomInstances) {
  std::mt19937 rng(20260806);
  ClosureScratch scratch;  // shared across iterations, like a search worker
  for (int iteration = 0; iteration < 200; ++iteration) {
    RandomInstance inst = MakeInstance(rng);
    std::uniform_int_distribution<size_t> window_dist(
        inst.word.prefix.size() + inst.word.cycle.size(), 40);
    const size_t window = window_dist(rng);
    ConstraintClosure fast(inst.era, inst.alphabet, inst.word, window,
                           &scratch, ClosureEngine::kLinear);
    ConstraintClosure reference = ReferenceConstraintClosure(
        inst.era, inst.alphabet, inst.word, window, &scratch);
    ExpectSameClosure(fast, reference);
    // The default kAuto engine must agree with both whichever way the
    // window-size crossover resolves it.
    ConstraintClosure auto_pick(inst.era, inst.alphabet, inst.word, window,
                                &scratch);
    ExpectSameClosure(auto_pick, reference);
  }
}

TEST(ClosureDiffTest, ExtendedByMatchesRebuild) {
  std::mt19937 rng(987654321);
  ClosureScratch scratch;
  for (int iteration = 0; iteration < 200; ++iteration) {
    RandomInstance inst = MakeInstance(rng);
    std::uniform_int_distribution<size_t> window_dist(
        inst.word.prefix.size() + inst.word.cycle.size(), 25);
    std::uniform_int_distribution<size_t> extra_dist(0, 4);
    const size_t window = window_dist(rng);
    const size_t extra_cycles = extra_dist(rng);
    const size_t wider_window =
        window + extra_cycles * inst.word.cycle.size();

    ConstraintClosure base(inst.era, inst.alphabet, inst.word, window,
                           &scratch, ClosureEngine::kLinear);
    ConstraintClosure extended = base.ExtendedBy(extra_cycles, &scratch);
    ConstraintClosure rebuilt(inst.era, inst.alphabet, inst.word,
                              wider_window, &scratch,
                              ClosureEngine::kLinear);
    ExpectSameClosure(extended, rebuilt);
    // And against the reference engine at the wider window.
    ConstraintClosure reference = ReferenceConstraintClosure(
        inst.era, inst.alphabet, inst.word, wider_window);
    ExpectSameClosure(extended, reference);
  }
}

TEST(ClosureDiffTest, ExtendingTwiceMatchesExtendingOnce) {
  std::mt19937 rng(424242);
  ClosureScratch scratch;
  for (int iteration = 0; iteration < 50; ++iteration) {
    RandomInstance inst = MakeInstance(rng);
    const size_t window =
        inst.word.prefix.size() + 2 * inst.word.cycle.size();
    ConstraintClosure base(inst.era, inst.alphabet, inst.word, window,
                           &scratch, ClosureEngine::kLinear);
    ConstraintClosure twice =
        base.ExtendedBy(1, &scratch).ExtendedBy(2, &scratch);
    ConstraintClosure once = base.ExtendedBy(3, &scratch);
    ExpectSameClosure(twice, once);
  }
}

TEST(ClosureDiffTest, ReferenceEngineExtendedByRebuilds) {
  std::mt19937 rng(7);
  RandomInstance inst = MakeInstance(rng);
  const size_t window = inst.word.prefix.size() + inst.word.cycle.size();
  ConstraintClosure reference = ReferenceConstraintClosure(
      inst.era, inst.alphabet, inst.word, window);
  ConstraintClosure wider = reference.ExtendedBy(2);
  EXPECT_EQ(wider.window(), window + 2 * inst.word.cycle.size());
  ConstraintClosure rebuilt = ReferenceConstraintClosure(
      inst.era, inst.alphabet, inst.word, wider.window());
  ExpectSameClosure(wider, rebuilt);
}

// kAuto picks the reference restarts below the crossover window and the
// linear sweep above it, and an auto-picked small closure extended past
// the crossover re-resolves to the linear engine.
TEST(ClosureDiffTest, AutoEngineCrossesOverByWindowSize) {
  std::mt19937 rng(20260807);
  for (int iteration = 0; iteration < 20; ++iteration) {
    RandomInstance inst = MakeInstance(rng);
    if (inst.era.constraints().empty()) continue;
    int max_states = 0;
    for (const auto& c : inst.era.constraints()) {
      max_states = std::max(max_states, c.dfa.num_states());
    }
    const size_t crossover = 2 * static_cast<size_t>(max_states);
    const size_t small = inst.word.prefix.size() + inst.word.cycle.size();
    ConstraintClosure at_small(inst.era, inst.alphabet, inst.word, small);
    EXPECT_EQ(at_small.engine(), small >= crossover
                                     ? ClosureEngine::kLinear
                                     : ClosureEngine::kReference);
    // Extend well past the crossover: the result must re-resolve to the
    // linear engine and still match a reference rebuild.
    size_t cycles = 0;
    while (small + cycles * inst.word.cycle.size() < crossover + 8) ++cycles;
    ConstraintClosure wide = at_small.ExtendedBy(cycles);
    EXPECT_EQ(wide.engine(), ClosureEngine::kLinear);
    ConstraintClosure rebuilt = ReferenceConstraintClosure(
        inst.era, inst.alphabet, inst.word, wide.window());
    ExpectSameClosure(wide, rebuilt);
  }
}

}  // namespace
}  // namespace rav
