// Algebraic property sweeps over the core symbolic types: canonical-form
// laws for σ-types, idempotence/equivalence laws for DFA minimization,
// and consistency laws between the formula and type views.

#include <gtest/gtest.h>

#include <random>

#include "automata/regex.h"
#include "relational/formula.h"
#include "types/type.h"

namespace rav {
namespace {

// --- Random σ-types ---

Type RandomType(std::mt19937& rng, int num_vars, int num_constants) {
  std::uniform_int_distribution<int> element(0, num_vars + num_constants - 1);
  std::uniform_int_distribution<int> coin(0, 1);
  std::uniform_int_distribution<int> literal_count(0, 4);
  Type current(num_vars, num_constants);
  int n = literal_count(rng);
  for (int i = 0; i < n; ++i) {
    TypeBuilder builder(num_vars, num_constants);
    builder.AddAll(current);
    int a = element(rng);
    int b = element(rng);
    if (a == b) continue;
    if (coin(rng) == 0) {
      builder.AddEq(ElementIndex(a), ElementIndex(b));
    } else {
      builder.AddNeq(ElementIndex(a), ElementIndex(b));
    }
    Result<Type> next = builder.Build();
    if (next.ok()) current = std::move(next).value();
  }
  return current;
}

class TypeLaws : public ::testing::TestWithParam<int> {};

TEST_P(TypeLaws, RebuildIsIdentity) {
  std::mt19937 rng(GetParam());
  Type t = RandomType(rng, 4, 1);
  TypeBuilder builder(4, 1);
  builder.AddAll(t);
  Result<Type> rebuilt = builder.Build();
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_TRUE(*rebuilt == t);
  Type::Hasher h;
  EXPECT_EQ(h(*rebuilt), h(t));
}

TEST_P(TypeLaws, ConjoinIsCommutativeAndIdempotent) {
  std::mt19937 rng(GetParam() + 100);
  Type a = RandomType(rng, 4, 0);
  Type b = RandomType(rng, 4, 0);
  Result<Type> ab = a.Conjoin(b);
  Result<Type> ba = b.Conjoin(a);
  ASSERT_EQ(ab.ok(), ba.ok());
  if (ab.ok()) {
    EXPECT_TRUE(*ab == *ba);
    // Idempotence: (a ∧ b) ∧ b = a ∧ b.
    Result<Type> abb = ab->Conjoin(b);
    ASSERT_TRUE(abb.ok());
    EXPECT_TRUE(*abb == *ab);
  }
  // Conjoin with self is identity.
  Result<Type> aa = a.Conjoin(a);
  ASSERT_TRUE(aa.ok());
  EXPECT_TRUE(*aa == a);
}

TEST_P(TypeLaws, RestrictComposes) {
  std::mt19937 rng(GetParam() + 200);
  Type t = RandomType(rng, 4, 1);
  // Restrict to {v0, v1, v2}, then to the image of {v0, v2}: equals the
  // one-step restriction to {v0, v2}.
  Type step1 = t.Restrict({true, true, true, false});
  Type step2 = step1.Restrict({true, false, true});
  Type direct = t.Restrict({true, false, true, false});
  EXPECT_TRUE(step2 == direct);
}

TEST_P(TypeLaws, RestrictWeakens) {
  std::mt19937 rng(GetParam() + 300);
  Type t = RandomType(rng, 4, 0);
  Type r = t.Restrict({true, true, false, false});
  // Every forced relation of the restriction is forced in the original.
  for (int a = 0; a < 2; ++a) {
    for (int b = 0; b < 2; ++b) {
      if (r.AreEqual(a, b)) {
        EXPECT_TRUE(t.AreEqual(a, b));
      }
      if (r.AreDistinct(a, b)) {
        EXPECT_TRUE(t.AreDistinct(a, b));
      }
    }
  }
}

TEST_P(TypeLaws, ToFormulaAgreesWithHoldsIn) {
  std::mt19937 rng(GetParam() + 400);
  Type t = RandomType(rng, 3, 0);
  Formula f = t.ToFormula();
  Schema s;
  Database db(s);
  std::uniform_int_distribution<DataValue> value(0, 2);
  for (int trial = 0; trial < 8; ++trial) {
    ValueTuple v = {value(rng), value(rng), value(rng)};
    EXPECT_EQ(t.HoldsIn(db, v), f.Eval(db, v));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TypeLaws, ::testing::Range(1, 30));

// --- DFA laws ---

class DfaLaws : public ::testing::TestWithParam<int> {};

Regex RandomRegex2(std::mt19937& rng, int depth) {
  std::uniform_int_distribution<int> op(0, 4);
  std::uniform_int_distribution<int> sym(0, 1);
  if (depth == 0) return Regex::Symbol(sym(rng));
  switch (op(rng)) {
    case 0:
      return Regex::Concat(RandomRegex2(rng, depth - 1),
                           RandomRegex2(rng, depth - 1));
    case 1:
      return Regex::Union(RandomRegex2(rng, depth - 1),
                          RandomRegex2(rng, depth - 1));
    case 2:
      return Regex::Star(RandomRegex2(rng, depth - 1));
    case 3:
      return Regex::Optional(RandomRegex2(rng, depth - 1));
    default:
      return Regex::Symbol(sym(rng));
  }
}

TEST_P(DfaLaws, MinimizeIsIdempotentAndEquivalent) {
  std::mt19937 rng(GetParam());
  Regex r = RandomRegex2(rng, 3);
  Dfa d = r.ToNfa(2).Determinize();
  Dfa m1 = d.Minimize();
  Dfa m2 = m1.Minimize();
  EXPECT_TRUE(d.EquivalentTo(m1));
  EXPECT_EQ(m1.num_states(), m2.num_states());
  EXPECT_LE(m1.num_states(), d.num_states());
}

TEST_P(DfaLaws, DoubleComplementIsIdentity) {
  std::mt19937 rng(GetParam() + 50);
  Regex r = RandomRegex2(rng, 3);
  Dfa d = r.ToDfa(2);
  EXPECT_TRUE(d.Complement().Complement().EquivalentTo(d));
  // De Morgan: complement of intersection ⊇ complement of each part.
  Dfa d2 = RandomRegex2(rng, 2).ToDfa(2);
  Dfa inter = d.Intersect(d2);
  EXPECT_TRUE(inter.Intersect(d.Complement()).IsEmptyLanguage());
}

TEST_P(DfaLaws, NfaAndDfaAgreeOnWords) {
  std::mt19937 rng(GetParam() + 99);
  Regex r = RandomRegex2(rng, 3);
  Nfa nfa = r.ToNfa(2);
  Dfa dfa = nfa.Determinize();
  std::uniform_int_distribution<int> sym(0, 1);
  std::uniform_int_distribution<int> len(0, 6);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<int> word;
    int n = len(rng);
    for (int i = 0; i < n; ++i) word.push_back(sym(rng));
    EXPECT_EQ(nfa.Accepts(word), dfa.Accepts(word));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DfaLaws, ::testing::Range(1, 30));

// --- Frontier laws ---

class FrontierLaws : public ::testing::TestWithParam<int> {};

TEST_P(FrontierLaws, CompatibilityMatchesConjoinability) {
  // For complete types, frontier compatibility (equality of restrictions)
  // coincides with satisfiability of the conjunction of the frontier
  // restrictions.
  std::mt19937 rng(GetParam());
  Type a = RandomType(rng, 4, 0);  // 2-register transition types
  Type b = RandomType(rng, 4, 0);
  Type fa = RestrictToYAsX(a, 2);
  Type fb = RestrictToX(b, 2);
  bool compatible = FrontierCompatible(a, b, 2);
  if (compatible) {
    EXPECT_TRUE(fa.Conjoin(fb).ok());
  }
  // Equal restrictions are always conjoinable; the converse only holds
  // for complete types, so no assertion in the other direction.
}

INSTANTIATE_TEST_SUITE_P(Seeds, FrontierLaws, ::testing::Range(1, 20));

}  // namespace
}  // namespace rav
