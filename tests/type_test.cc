#include <gtest/gtest.h>

#include "relational/database.h"
#include "types/type.h"

namespace rav {
namespace {

Schema UnarySchema() {
  Schema s;
  s.AddRelation("P", 1);
  return s;
}

TEST(TypeBuilderTest, TrivialTypeIsSatisfiable) {
  Result<Type> t = TypeBuilder(4, 0).Build();
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_classes(), 4);
}

TEST(TypeBuilderTest, DetectsEqualityContradiction) {
  TypeBuilder b(3, 0);
  b.AddEq(ElementIndex(0), ElementIndex(1))
      .AddEq(ElementIndex(1), ElementIndex(2))
      .AddNeq(ElementIndex(0), ElementIndex(2));
  EXPECT_FALSE(b.Build().ok());
}

TEST(TypeBuilderTest, DetectsAtomContradiction) {
  Schema s = UnarySchema();
  TypeBuilder b(2, 0);
  b.AddEq(ElementIndex(0), ElementIndex(1));
  b.AddAtom(0, {ElementIndex(0)}, true);
  b.AddAtom(0, {ElementIndex(1)}, false);
  EXPECT_FALSE(b.Build().ok());
}

TEST(TypeTest, CanonicalEqualityIgnoresLiteralOrder) {
  TypeBuilder b1(4, 0);
  b1.AddEq(ElementIndex(0), ElementIndex(1))
      .AddNeq(ElementIndex(2), ElementIndex(3));
  TypeBuilder b2(4, 0);
  b2.AddNeq(ElementIndex(3), ElementIndex(2))
      .AddEq(ElementIndex(1), ElementIndex(0))
      .AddEq(ElementIndex(0), ElementIndex(1));
  EXPECT_TRUE(b1.Build().value() == b2.Build().value());
}

TEST(TypeTest, TransitionLayoutHelpers) {
  Schema s;
  TypeBuilder b = TypeBuilder::ForTransition(2, s);
  // x2 = y2 in Example 1's δ2.
  b.AddEq(b.X(1), b.Y(1));
  Type t = b.Build().value();
  EXPECT_TRUE(t.AreEqual(1, 3));
  EXPECT_FALSE(t.AreEqual(0, 2));
}

TEST(TypeTest, HoldsEquality) {
  TypeBuilder b(4, 0);
  b.AddEq(ElementIndex(0), ElementIndex(1))
      .AddNeq(ElementIndex(1), ElementIndex(2));
  Type t = b.Build().value();
  EXPECT_TRUE(t.HoldsEquality({5, 5, 6, 0}));
  EXPECT_FALSE(t.HoldsEquality({5, 4, 6, 0}));  // forced equality broken
  EXPECT_FALSE(t.HoldsEquality({5, 5, 5, 0}));  // disequality broken
}

TEST(TypeTest, HoldsInWithRelationsAndConstants) {
  Schema s;
  RelationId p = s.AddRelation("P", 1);
  ConstantId c = s.AddConstant("c");
  Database db(s);
  db.Insert(p, {7});
  db.SetConstant(c, 9);

  TypeBuilder b(2, 1);
  b.AddAtom(p, {ElementIndex(0)}, true);      // P(v0)
  b.AddAtom(p, {ElementIndex(1)}, false);     // ¬P(v1)
  b.AddEq(ElementIndex(1), ElementIndex(2));                // v1 = c
  Type t = b.Build().value();
  EXPECT_TRUE(t.HoldsIn(db, {7, 9}));
  EXPECT_FALSE(t.HoldsIn(db, {8, 9}));   // P(v0) fails
  EXPECT_FALSE(t.HoldsIn(db, {7, 8}));   // v1 = c fails
  db.Insert(p, {9});
  EXPECT_FALSE(t.HoldsIn(db, {7, 9}));   // ¬P(v1) fails
}

TEST(TypeTest, RestrictKeepsInducedLiterals) {
  // Variables v0..v3; v0=v1, v1≠v2, v2=v3. Restrict to {v0, v2}.
  TypeBuilder b(4, 0);
  b.AddEq(ElementIndex(0), ElementIndex(1))
      .AddNeq(ElementIndex(1), ElementIndex(2))
      .AddEq(ElementIndex(2), ElementIndex(3));
  Type t = b.Build().value();
  Type r = t.Restrict({true, false, true, false});
  EXPECT_EQ(r.num_vars(), 2);
  // v0 ≠ v2 survives (their classes both contain kept variables).
  EXPECT_TRUE(r.AreDistinct(0, 1));
}

TEST(TypeTest, RestrictDropsLiteralsOnDroppedClasses) {
  TypeBuilder b(3, 0);
  b.AddNeq(ElementIndex(0), ElementIndex(1));
  Type t = b.Build().value();
  Type r = t.Restrict({true, false, true});
  EXPECT_TRUE(r.disequalities().empty());
}

TEST(TypeTest, RestrictKeepsConstantAnchoredLiterals) {
  Schema s;
  s.AddConstant("c");
  // v0 = c, v1 ≠ c. Restrict away v1: v0 = c must survive,
  // v1 ≠ c must vanish.
  TypeBuilder b(2, 1);
  b.AddEq(ElementIndex(0), ElementIndex(2))
      .AddNeq(ElementIndex(1), ElementIndex(2));
  Type t = b.Build().value();
  Type r = t.Restrict({true, false});
  EXPECT_EQ(r.num_vars(), 1);
  EXPECT_TRUE(r.AreEqual(0, 1));  // v0 = const element
  EXPECT_TRUE(r.disequalities().empty());
}

TEST(TypeTest, FrontierCompatibilityExample1) {
  // δ1 = (x1=x2 ∧ x2=y2) followed by δ2 = (x2=y2): the y-part of δ1 puts
  // no constraint between y1 and y2, and the x-part of δ2 none between x1
  // and x2 — both restrict to the trivial type, so they are compatible.
  Schema s;
  TypeBuilder d1 = TypeBuilder::ForTransition(2, s);
  d1.AddEq(d1.X(0), d1.X(1)).AddEq(d1.X(1), d1.Y(1));
  TypeBuilder d2 = TypeBuilder::ForTransition(2, s);
  d2.AddEq(d2.X(1), d2.Y(1));
  EXPECT_TRUE(FrontierCompatible(d1.Build().value(), d2.Build().value(), 2));
}

TEST(TypeTest, FrontierIncompatibility) {
  Schema s;
  // δ with y1 = y2 followed by δ' with x1 ≠ x2: incompatible.
  TypeBuilder d1 = TypeBuilder::ForTransition(2, s);
  d1.AddEq(d1.Y(0), d1.Y(1));
  TypeBuilder d2 = TypeBuilder::ForTransition(2, s);
  d2.AddNeq(d2.X(0), d2.X(1));
  EXPECT_FALSE(FrontierCompatible(d1.Build().value(), d2.Build().value(), 2));
}

TEST(TypeTest, ConjoinMergesLiterals) {
  TypeBuilder b1(3, 0);
  b1.AddEq(ElementIndex(0), ElementIndex(1));
  TypeBuilder b2(3, 0);
  b2.AddNeq(ElementIndex(1), ElementIndex(2));
  Result<Type> c = b1.Build().value().Conjoin(b2.Build().value());
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(c->AreEqual(0, 1));
  EXPECT_TRUE(c->AreDistinct(0, 2));
}

TEST(TypeTest, ConjoinDetectsContradiction) {
  TypeBuilder b1(2, 0);
  b1.AddEq(ElementIndex(0), ElementIndex(1));
  TypeBuilder b2(2, 0);
  b2.AddNeq(ElementIndex(0), ElementIndex(1));
  EXPECT_FALSE(b1.Build().value().Conjoin(b2.Build().value()).ok());
}

TEST(TypeTest, IsEqualityComplete) {
  TypeBuilder b(2, 0);
  b.AddNeq(ElementIndex(0), ElementIndex(1));
  EXPECT_TRUE(b.Build().value().IsEqualityComplete());
  TypeBuilder b2(2, 0);
  EXPECT_FALSE(b2.Build().value().IsEqualityComplete());
  TypeBuilder b3(2, 0);
  b3.AddEq(ElementIndex(0), ElementIndex(1));
  EXPECT_TRUE(b3.Build().value().IsEqualityComplete());
}

TEST(TypeTest, IsCompleteRequiresAllAtoms) {
  Schema s = UnarySchema();
  TypeBuilder b(2, 0);
  b.AddNeq(ElementIndex(0), ElementIndex(1))
      .AddAtom(0, {ElementIndex(0)}, true);
  EXPECT_FALSE(b.Build().value().IsComplete(s));
  TypeBuilder b2(2, 0);
  b2.AddNeq(ElementIndex(0), ElementIndex(1))
      .AddAtom(0, {ElementIndex(0)}, true)
      .AddAtom(0, {ElementIndex(1)}, false);
  EXPECT_TRUE(b2.Build().value().IsComplete(s));
}

TEST(TypeTest, EmbedTransitionPreservesStructure) {
  Schema s;
  TypeBuilder b = TypeBuilder::ForTransition(1, s);
  b.AddNeq(b.X(0), b.Y(0));
  Type t = b.Build().value();
  Type e = EmbedTransition(t, 1, 3);
  EXPECT_EQ(e.num_vars(), 6);
  // x1 ≠ y1 in the new layout: elements 0 and 3.
  EXPECT_TRUE(e.AreDistinct(0, 3));
  // New registers unconstrained.
  EXPECT_FALSE(e.AreEqual(1, 4));
  EXPECT_FALSE(e.AreDistinct(1, 4));
}

TEST(TypeTest, EvaluateOnCompleteType) {
  Schema s = UnarySchema();
  // k = 1: complete type x1 = y1, P(x1), P(y1).
  TypeBuilder b = TypeBuilder::ForTransition(1, s);
  b.AddEq(b.X(0), b.Y(0)).AddAtom(0, {b.X(0)}, true);
  Type t = b.Build().value();
  Formula eq = Formula::Eq(Term::Var(0), Term::Var(1));
  EXPECT_TRUE(EvaluateOnCompleteType(eq, t).value());
  Formula p_of_y = Formula::Rel(0, {Term::Var(1)});
  EXPECT_TRUE(EvaluateOnCompleteType(p_of_y, t).value());
  Formula not_p = Formula::Not(p_of_y);
  EXPECT_FALSE(EvaluateOnCompleteType(not_p, t).value());
}

TEST(TypeTest, EvaluateOnIncompleteTypeFails) {
  Schema s = UnarySchema();
  Type t = TypeBuilder::ForTransition(1, s).Build().value();
  Formula eq = Formula::Eq(Term::Var(0), Term::Var(1));
  EXPECT_FALSE(EvaluateOnCompleteType(eq, t).ok());
}

TEST(TypeTest, ToFormulaRoundTripsSemantics) {
  Schema s;
  Database db(s);
  TypeBuilder b(3, 0);
  b.AddEq(ElementIndex(0), ElementIndex(1))
      .AddNeq(ElementIndex(1), ElementIndex(2));
  Type t = b.Build().value();
  Formula f = t.ToFormula();
  EXPECT_TRUE(f.Eval(db, {4, 4, 5}));
  EXPECT_FALSE(f.Eval(db, {4, 5, 5}));
}

TEST(TypeTest, ToStringMentionsLiterals) {
  Schema s;
  TypeBuilder b = TypeBuilder::ForTransition(2, s);
  b.AddEq(b.X(0), b.X(1));
  std::string str = b.Build().value().ToString(s, 2);
  EXPECT_NE(str.find("x1 = x2"), std::string::npos);
}

}  // namespace
}  // namespace rav
