#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "analysis/lint.h"
#include "era/constraint_graph.h"
#include "era/emptiness.h"
#include "io/text_format.h"
#include "projection/lr_bounded.h"
#include "ra/random.h"
#include "ra/transform.h"
#include "types/completion.h"

namespace rav {
namespace {

using analysis::AnalyzeAndStrip;
using analysis::Diagnostic;
using analysis::Lint;
using analysis::Severity;
using analysis::StripResult;

int CountCode(const std::vector<Diagnostic>& diagnostics,
              const std::string& code) {
  int count = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.code == code) ++count;
  }
  return count;
}

std::string Render(const std::vector<Diagnostic>& diagnostics) {
  std::string out;
  for (const Diagnostic& d : diagnostics) {
    out += analysis::FormatDiagnostic(d) + "\n";
  }
  return out;
}

ExtendedAutomaton Parse(const std::string& text) {
  auto era = ParseExtendedAutomaton(text);
  EXPECT_TRUE(era.ok()) << era.status().ToString();
  return std::move(era).value();
}

// ----- clean baseline ------------------------------------------------------

constexpr char kClean[] = R"(
automaton {
  registers 1
  state a initial final
  state b
  transition a -> b { x1 = y1 }
  transition b -> a { }
  constraint eq 1 1 "a b a"
}
)";

TEST(LintTest, CleanSpecHasNoDiagnostics) {
  auto diagnostics = Lint(Parse(kClean));
  EXPECT_TRUE(diagnostics.empty()) << Render(diagnostics);
  EXPECT_EQ(analysis::MaxSeverity(diagnostics), Severity::kNote);
}

// ----- RAV001 / RAV002: dead states ---------------------------------------

TEST(LintTest, Rav001FlagsUnreachableState) {
  auto diagnostics = Lint(Parse(R"(
automaton {
  registers 1
  state a initial final
  state orphan
  transition a -> a { }
  transition orphan -> a { }
}
)"));
  EXPECT_EQ(CountCode(diagnostics, "RAV001"), 1) << Render(diagnostics);
  EXPECT_EQ(CountCode(diagnostics, "RAV002"), 0) << Render(diagnostics);
  // The diagnostic points at the `state orphan` declaration (line 5).
  for (const Diagnostic& d : diagnostics) {
    if (d.code == "RAV001") {
      EXPECT_EQ(d.loc.line, 5);
    }
  }
}

TEST(LintTest, Rav002FlagsStateWithoutAcceptingCycle) {
  auto diagnostics = Lint(Parse(R"(
automaton {
  registers 1
  state a initial final
  state sink
  transition a -> a { }
  transition a -> sink { }
}
)"));
  EXPECT_EQ(CountCode(diagnostics, "RAV002"), 1) << Render(diagnostics);
  EXPECT_EQ(CountCode(diagnostics, "RAV001"), 0) << Render(diagnostics);
}

// ----- RAV003: transitions that can never fire -----------------------------

TEST(LintTest, Rav003FlagsFrontierIncompatibleTransitions) {
  // a->b forces y1 = c while b's only exit demands x1 != c: neither the
  // entering nor the leaving transition can sit on an infinite run.
  auto diagnostics = Lint(Parse(R"(
automaton {
  registers 1
  schema { constant c }
  state a initial final
  state b
  transition a -> a { }
  transition a -> b { y1 = c }
  transition b -> a { x1 != c }
}
)"));
  EXPECT_EQ(CountCode(diagnostics, "RAV003"), 2) << Render(diagnostics);
}

TEST(LintTest, Rav003CleanWhenFrontiersAgree) {
  auto diagnostics = Lint(Parse(R"(
automaton {
  registers 1
  schema { constant c }
  state a initial final
  state b
  transition a -> a { }
  transition a -> b { y1 = c }
  transition b -> a { x1 = c }
}
)"));
  EXPECT_EQ(CountCode(diagnostics, "RAV003"), 0) << Render(diagnostics);
}

// ----- RAV004: dead registers ----------------------------------------------

TEST(LintTest, Rav004FlagsNeverMentionedRegister) {
  auto diagnostics = Lint(Parse(R"(
automaton {
  registers 2
  state a initial final
  transition a -> a { x1 = y1 }
}
)"));
  ASSERT_EQ(CountCode(diagnostics, "RAV004"), 1) << Render(diagnostics);
  EXPECT_NE(diagnostics[0].message.find("never mentioned"), std::string::npos);
}

TEST(LintTest, Rav004FlagsWrittenNeverReadRegister) {
  auto diagnostics = Lint(Parse(R"(
automaton {
  registers 2
  state a initial final
  transition a -> a { x1 = y1  y2 = y1 }
}
)"));
  ASSERT_EQ(CountCode(diagnostics, "RAV004"), 1) << Render(diagnostics);
  bool found = false;
  for (const Diagnostic& d : diagnostics) {
    if (d.code == "RAV004" &&
        d.message.find("written but never read") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found) << Render(diagnostics);
}

TEST(LintTest, Rav004ConstraintMentionKeepsRegisterAlive) {
  // The register is touched by no guard but by the global constraint —
  // exactly the example5 shape; must stay clean.
  auto diagnostics = Lint(Parse(R"(
automaton {
  registers 1
  state a initial final
  transition a -> a { }
  constraint eq 1 1 "a a"
}
)"));
  EXPECT_EQ(CountCode(diagnostics, "RAV004"), 0) << Render(diagnostics);
}

// ----- RAV005 / RAV006: vacuous and contradictory constraints --------------

TEST(LintTest, Rav005FlagsUnmatchableConstraint) {
  // "b b" needs two consecutive b's; the control graph has no b->b edge.
  auto diagnostics = Lint(Parse(R"(
automaton {
  registers 1
  state a initial final
  state b
  transition a -> a { }
  transition a -> b { }
  transition b -> a { }
  constraint eq 1 1 "b b"
}
)"));
  EXPECT_EQ(CountCode(diagnostics, "RAV005"), 1) << Render(diagnostics);
}

TEST(LintTest, Rav005CleanForMatchableConstraint) {
  auto diagnostics = Lint(Parse(kClean));
  EXPECT_EQ(CountCode(diagnostics, "RAV005"), 0) << Render(diagnostics);
}

TEST(LintTest, Rav006FlagsSelfInequalityOnSinglePosition) {
  auto diagnostics = Lint(Parse(R"(
automaton {
  registers 1
  state a initial final
  transition a -> a { }
  constraint neq 1 1 "a"
}
)"));
  ASSERT_EQ(CountCode(diagnostics, "RAV006"), 1) << Render(diagnostics);
  EXPECT_EQ(analysis::MaxSeverity(diagnostics), Severity::kError);
}

TEST(LintTest, Rav006CleanForMultiPositionSelfInequality) {
  // e≠[1,1] over windows of length 2 relates *different* positions —
  // satisfiable, so no error (all_distinct.rav relies on this).
  auto diagnostics = Lint(Parse(R"(
automaton {
  registers 1
  state a initial final
  transition a -> a { }
  constraint neq 1 1 "a a+"
}
)"));
  EXPECT_EQ(CountCode(diagnostics, "RAV006"), 0) << Render(diagnostics);
}

// ----- RAV007: duplicate / subsumed transitions ----------------------------

TEST(LintTest, Rav007FlagsDuplicateAndSubsumedTransitions) {
  auto diagnostics = Lint(Parse(R"(
automaton {
  registers 1
  state a initial final
  transition a -> a { }
  transition a -> a { }
  transition a -> a { x1 = y1 }
}
)"));
  int duplicates = 0;
  int subsumed = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.code != "RAV007") continue;
    if (d.severity == Severity::kWarning) ++duplicates;
    if (d.severity == Severity::kNote) ++subsumed;
  }
  EXPECT_EQ(duplicates, 1) << Render(diagnostics);
  EXPECT_EQ(subsumed, 1) << Render(diagnostics);
}

TEST(LintTest, Rav007CleanForDistinctGuards) {
  auto diagnostics = Lint(Parse(R"(
automaton {
  registers 1
  state a initial final
  transition a -> a { x1 = y1 }
  transition a -> a { x1 != y1 }
}
)"));
  EXPECT_EQ(CountCode(diagnostics, "RAV007"), 0) << Render(diagnostics);
}

// ----- RAV008: schema violations (programmatic automata only) --------------

TEST(LintTest, Rav008FlagsArityMismatch) {
  Schema schema;
  RelationId r = schema.AddRelation("R", 2);
  RegisterAutomaton a(1, schema);
  StateId q = a.AddState("q");
  a.SetInitial(q);
  a.SetFinal(q);
  TypeBuilder builder = a.NewGuardBuilder();
  builder.AddAtom(r, {ElementIndex(0)}, true);  // R arity 2; one arg given
  auto guard = builder.Build();
  ASSERT_TRUE(guard.ok());
  a.AddTransition(q, std::move(guard).value(), q);
  auto diagnostics = Lint(a);
  ASSERT_EQ(CountCode(diagnostics, "RAV008"), 1) << Render(diagnostics);
  EXPECT_EQ(analysis::MaxSeverity(diagnostics), Severity::kError);
}

// ----- RAV009 / RAV010: degenerate automata --------------------------------

TEST(LintTest, Rav009FlagsMissingInitialState) {
  auto diagnostics = Lint(Parse(R"(
automaton {
  registers 1
  state a final
  transition a -> a { }
}
)"));
  EXPECT_EQ(CountCode(diagnostics, "RAV009"), 1) << Render(diagnostics);
  // The structural passes stay quiet on degenerate automata.
  EXPECT_EQ(CountCode(diagnostics, "RAV001"), 0) << Render(diagnostics);
  EXPECT_EQ(CountCode(diagnostics, "RAV002"), 0) << Render(diagnostics);
}

TEST(LintTest, Rav010FlagsMissingFinalState) {
  auto diagnostics = Lint(Parse(R"(
automaton {
  registers 1
  state a initial
  transition a -> a { }
}
)"));
  EXPECT_EQ(CountCode(diagnostics, "RAV010"), 1) << Render(diagnostics);
}

// ----- enhanced automata ---------------------------------------------------

TEST(LintTest, EnhancedEmptySelectorFlagged) {
  RegisterAutomaton a(1, Schema());
  StateId q = a.AddState("q");
  a.SetInitial(q);
  a.SetFinal(q);
  a.AddTransition(q, a.NewGuardBuilder().Build().value(), q);
  EnhancedAutomaton enhanced(a);
  // A pair DFA with an empty language: one rejecting sink state.
  Dfa empty_dfa(/*alphabet_size=*/1, /*num_states=*/1, /*initial=*/0);
  TupleInequalityConstraint c;
  c.pair_dfa = empty_dfa;
  c.regs_a = {0};
  c.offs_a = {0};
  c.regs_b = {0};
  c.offs_b = {0};
  ASSERT_TRUE(enhanced.AddTupleConstraint(std::move(c)).ok());
  auto diagnostics = Lint(enhanced);
  EXPECT_EQ(CountCode(diagnostics, "RAV005"), 1) << Render(diagnostics);
}

// ----- golden check: committed example specs are clean ---------------------

TEST(LintTest, CommittedExampleSpecsAreClean) {
  const std::string dir = std::string(RAV_SOURCE_DIR) + "/examples/data/";
  for (const char* name :
       {"example1.rav", "example5.rav", "all_distinct.rav"}) {
    std::ifstream in(dir + name);
    ASSERT_TRUE(in.good()) << dir + name;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    auto era = ParseExtendedAutomaton(buffer.str());
    ASSERT_TRUE(era.ok()) << name << ": " << era.status().ToString();
    auto diagnostics = Lint(*era);
    EXPECT_TRUE(diagnostics.empty()) << name << ":\n" << Render(diagnostics);
  }
}

// ----- diagnostic rendering ------------------------------------------------

TEST(LintTest, FormatAndJsonRendering) {
  Diagnostic d{"RAV001", Severity::kWarning, "state 'x' is unreachable",
               SourceLocation{3, 7}};
  EXPECT_EQ(analysis::FormatDiagnostic(d, "spec.rav"),
            "spec.rav:3:7: warning: RAV001: state 'x' is unreachable");
  Json doc = analysis::DiagnosticsToJson({d}, "spec.rav");
  const Json* rows = doc.Find("diagnostics");
  ASSERT_NE(rows, nullptr);
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ(rows->at(0).Find("code")->string_value(), "RAV001");
  EXPECT_EQ(rows->at(0).Find("severity")->string_value(), "warning");
  EXPECT_EQ(rows->at(0).Find("line")->number_value(), 3);
}

// ----- AnalyzeAndStrip: structure ------------------------------------------

constexpr char kDeadStructure[] = R"(
automaton {
  registers 1
  state a initial final
  state sink
  state orphan
  transition a -> a { }
  transition a -> sink { }
  transition orphan -> a { }
  constraint eq 1 1 "a a+"
  constraint eq 1 1 "sink sink"
}
)";

TEST(StripTest, RemovesDeadStatesTransitionsAndConstraints) {
  ExtendedAutomaton era = Parse(kDeadStructure);
  StripResult stripped = AnalyzeAndStrip(era);
  EXPECT_TRUE(stripped.changed());
  EXPECT_EQ(stripped.states_removed, 2);
  EXPECT_EQ(stripped.transitions_removed, 2);
  EXPECT_EQ(stripped.constraints_removed, 1);
  ASSERT_TRUE(stripped.era.has_value());
  const RegisterAutomaton& a = stripped.era->automaton();
  ASSERT_EQ(a.num_states(), 1);
  EXPECT_EQ(a.state_name(StateId(0)), "a");
  EXPECT_TRUE(a.IsInitial(StateId(0)));
  EXPECT_TRUE(a.IsFinal(StateId(0)));
  EXPECT_EQ(a.num_transitions(), 1);
  // Source locations survive the rebuild (state a was declared line 4).
  EXPECT_EQ(a.state_location(StateId(0)).line, 4);
  // The surviving constraint's DFA was remapped to the one-state alphabet.
  ASSERT_EQ(stripped.era->constraints().size(), 1u);
  EXPECT_EQ(stripped.era->constraints()[0].dfa.alphabet_size(), 1);
  // The original automaton is untouched.
  EXPECT_EQ(era.automaton().num_states(), 3);
}

TEST(StripTest, CleanAutomatonUnchanged) {
  ExtendedAutomaton era = Parse(kClean);
  StripResult stripped = AnalyzeAndStrip(era);
  EXPECT_FALSE(stripped.changed());
  EXPECT_FALSE(stripped.era.has_value());
}

TEST(StripTest, DegenerateAutomatonUntouched) {
  ExtendedAutomaton era = Parse(R"(
automaton {
  registers 1
  state a final
  transition a -> a { }
}
)");
  StripResult stripped = AnalyzeAndStrip(era);
  EXPECT_FALSE(stripped.changed());
  EXPECT_EQ(CountCode(stripped.diagnostics, "RAV009"), 1);
}

// ----- AnalyzeAndStrip: verdict preservation (differential) ----------------

// Seeds dead structure into a completed random automaton: a dead-end
// branch, an unreachable feeder, and a vacuous constraint anchored at the
// unreachable state. The strip provably removes some of it; the verdict
// must not move.
ExtendedAutomaton SeededDeadStructure(std::mt19937& rng, bool add_real_neq) {
  RandomAutomatonOptions options;
  options.num_registers = 1;
  options.num_states = 3;
  options.num_transitions = 4;
  RegisterAutomaton base = RandomAutomaton(rng, options);
  auto completed = Completed(base);
  EXPECT_TRUE(completed.ok());
  RegisterAutomaton a = std::move(completed).value();
  const RaTransition seed = a.transition(0);
  StateId sink = a.AddState("sink");
  StateId orphan = a.AddState("orphan");
  a.AddTransition(seed.from, seed.guard, sink);
  a.AddTransition(orphan, seed.guard, seed.from);
  ExtendedAutomaton era(std::move(a));
  EXPECT_TRUE(era.AddConstraintFromText(
      RegisterPair{RegisterId(0), RegisterId(0)}, 
                                        /*is_equality=*/true, "orphan orphan")
                  .ok());
  if (add_real_neq) {
    EXPECT_TRUE(era.AddConstraintFromText(
        RegisterPair{RegisterId(0), RegisterId(0)}, 
                                          /*is_equality=*/false, "r0 r0")
                    .ok());
  }
  return era;
}

TEST(StripDifferentialTest, EmptinessVerdictPreservedOn100RandomAutomata) {
  std::mt19937 rng(20260806);
  int compared = 0;
  for (int iteration = 0; iteration < 100; ++iteration) {
    ExtendedAutomaton era = SeededDeadStructure(rng, iteration % 2 == 0);
    ControlAlphabet alphabet(era.automaton());
    EraEmptinessOptions with_strip;
    with_strip.max_lasso_length = 5;
    with_strip.max_lassos = 200000;
    with_strip.max_search_steps = 5000000;
    EraEmptinessOptions without_strip = with_strip;
    without_strip.analyze_and_strip = false;
    auto on = CheckEraEmptiness(era, alphabet, with_strip);
    auto off = CheckEraEmptiness(era, alphabet, without_strip);
    ASSERT_TRUE(on.ok()) << on.status().ToString();
    ASSERT_TRUE(off.ok()) << off.status().ToString();
    // Both searches run the same length bound, so their bounded verdicts
    // must agree even when enumeration clipped at that length. Only an
    // exhausted lasso/step budget (order-dependent under the parallel
    // engine) makes a pair incomparable.
    auto budget_limited = [](const SearchStats& s) {
      return s.stop_reason == SearchStopReason::kLassoBudget ||
             s.stop_reason == SearchStopReason::kStepBudget;
    };
    if (budget_limited(on->stats) || budget_limited(off->stats)) continue;
    EXPECT_EQ(on->nonempty, off->nonempty) << "iteration " << iteration;
    if (on->nonempty) {
      // The witness was found on the stripped automaton and remapped: it
      // must realize on the ORIGINAL one at the same pump the engine
      // validated it with.
      const size_t window =
          on->control_word.prefix.size() +
          on->control_word.cycle.size() * SuggestedPumpCount(era);
      auto witness =
          RealizeEraWitness(era, alphabet, on->control_word, window);
      EXPECT_TRUE(witness.ok())
          << "iteration " << iteration << ": " << witness.status().ToString();
    }
    ++compared;
  }
  EXPECT_GE(compared, 90);
}

// ----- RAV011/012/013: flow-sensitive passes -------------------------------

// The known-dirty flow fixture (tests/data/flow_dead.rav, inlined):
// locally clean — every transition has a frontier-compatible neighbour,
// courtesy of the self-justifying b->b loop — but the whole-graph
// fixpoint proves the loop (and everything it justifies) unfireable.
constexpr char kFlowDead[] = R"(
automaton {
  registers 2
  schema { constant c }
  state a initial final
  state b
  state e
  transition a -> a { x1 = y1 }
  transition a -> b { y1 = c }
  transition b -> b { x1 != c  y1 != c }
  transition b -> a { x1 = c  x2 = x1 }
  transition b -> e { y1 != c  y2 = c }
  transition e -> a { x1 = c }
  transition b -> e { x1 != c  y1 = c }
  transition e -> e { x1 != c  y1 != c }
}
)";

TEST(LintTest, Rav012FlagsSelfJustifyingUnfireableLoop) {
  auto diagnostics = Lint(Parse(kFlowDead));
  // The local pairwise pass is fooled by the loop justifying itself —
  // RAV012 is what makes the flow pass strictly stronger than RAV003.
  EXPECT_EQ(CountCode(diagnostics, "RAV003"), 0) << Render(diagnostics);
  EXPECT_EQ(CountCode(diagnostics, "RAV012"), 3) << Render(diagnostics);
}

TEST(LintTest, Rav013FlagsStructureStrandedByUnfireableTransitions) {
  auto diagnostics = Lint(Parse(kFlowDead));
  // State e plus the two transitions stranded with it (b->e writing r2,
  // and the e->e loop).
  EXPECT_EQ(CountCode(diagnostics, "RAV002"), 0) << Render(diagnostics);
  EXPECT_EQ(CountCode(diagnostics, "RAV013"), 3) << Render(diagnostics);
}

TEST(LintTest, Rav011FlagsRegisterWhoseWritesAllDie) {
  auto diagnostics = Lint(Parse(kFlowDead));
  // r2 is read (x2 on b->a) so RAV004 stays quiet, but its only write
  // (y2 on the first b->e) can never be read afterwards.
  EXPECT_EQ(CountCode(diagnostics, "RAV004"), 0) << Render(diagnostics);
  EXPECT_EQ(CountCode(diagnostics, "RAV011"), 1) << Render(diagnostics);
  for (const Diagnostic& d : diagnostics) {
    if (d.code == "RAV011") {
      EXPECT_EQ(d.severity, Severity::kNote);
      EXPECT_NE(d.message.find("r2"), std::string::npos) << d.message;
    }
  }
}

TEST(LintTest, FlowPassesQuietWhenFrontiersActuallyArrive) {
  // Same shape, but the loop agrees with the feeder's frontier: every
  // transition fires, r2's write on b -> a is read by x2 = c on the
  // return edge, and nothing is flow-dead.
  auto diagnostics = Lint(Parse(R"(
automaton {
  registers 2
  schema { constant c }
  state a initial final
  state b
  transition a -> a { x1 = y1 }
  transition a -> b { y1 = c }
  transition b -> b { x1 = c  y1 = c }
  transition b -> a { x1 = c  y2 = c }
  transition a -> a { x2 = c }
}
)"));
  EXPECT_EQ(CountCode(diagnostics, "RAV011"), 0) << Render(diagnostics);
  EXPECT_EQ(CountCode(diagnostics, "RAV012"), 0) << Render(diagnostics);
  EXPECT_EQ(CountCode(diagnostics, "RAV013"), 0) << Render(diagnostics);
}

TEST(LintTest, DiagnosticsAreSortedByLineColumnCode) {
  auto diagnostics = Lint(Parse(kFlowDead));
  ASSERT_GT(diagnostics.size(), 1u);
  EXPECT_TRUE(std::is_sorted(
      diagnostics.begin(), diagnostics.end(),
      [](const Diagnostic& a, const Diagnostic& b) {
        return std::tie(a.loc.line, a.loc.column, a.code) <
               std::tie(b.loc.line, b.loc.column, b.code);
      }))
      << Render(diagnostics);
}

TEST(StripTest, FlowTierStripsFlowDeadStructure) {
  ExtendedAutomaton era = Parse(kFlowDead);
  StripResult fast = AnalyzeAndStrip(era, analysis::StripEffort::kFast);
  // The structural tier sees nothing: the fixture is locally clean.
  EXPECT_FALSE(fast.changed());
  StripResult flow = AnalyzeAndStrip(era, analysis::StripEffort::kFlow);
  ASSERT_TRUE(flow.changed());
  EXPECT_EQ(flow.states_removed, 1);        // e
  EXPECT_EQ(flow.transitions_removed, 5);   // the loop + everything via e
  const RegisterAutomaton& a = flow.era->automaton();
  EXPECT_EQ(a.num_states(), 2);
  EXPECT_EQ(a.num_transitions(), 3);  // a->a, a->b, b->a
}

TEST(StripTest, StripFlowEnvironmentSwitchDisablesFlowTier) {
  ExtendedAutomaton era = Parse(kFlowDead);
  ASSERT_EQ(setenv("RAV_STRIP_FLOW", "off", /*overwrite=*/1), 0);
  StripResult off = AnalyzeAndStrip(era, analysis::StripEffort::kFlow);
  ASSERT_EQ(unsetenv("RAV_STRIP_FLOW"), 0);
  // With the flow passes disabled the kFlow tier degrades to kFast: no
  // findings beyond the (clean) local tiers, nothing stripped.
  EXPECT_FALSE(off.changed());
  EXPECT_EQ(CountCode(off.diagnostics, "RAV012"), 0) << Render(off.diagnostics);
  StripResult on = AnalyzeAndStrip(era, analysis::StripEffort::kFlow);
  EXPECT_TRUE(on.changed());
}

// Seeds the self-justifying unfireable pattern of kFlowDead into a
// completed random automaton: a feeder pinning y1 = c into a state whose
// loop and exits all demand x1 != c. The flow tier provably strips it;
// the emptiness verdict must not move.
ExtendedAutomaton SeededFlowDeadStructure(std::mt19937& rng) {
  Schema schema;
  const ConstantId c = schema.AddConstant("c");
  RandomAutomatonOptions options;
  options.num_registers = 1;
  options.num_states = 3;
  options.num_transitions = 4;
  options.schema = schema;
  RegisterAutomaton base = RandomAutomaton(rng, options);
  auto completed = Completed(base);
  EXPECT_TRUE(completed.ok());
  RegisterAutomaton a = std::move(completed).value();
  const StateId anchor = a.transition(0).from;
  const StateId knot = a.AddState("flow_knot");
  // The emptiness engines demand complete guards, so each partial guard
  // goes in as the set of its complete extensions — the completions of
  // x1 != c all keep x1 != c, preserving the unfireable pattern.
  auto add_completions = [&a](StateId from, const Type& partial, StateId to) {
    for (const Type& guard : EqualityCompletions(partial)) {
      a.AddTransition(from, guard, to);
    }
  };
  TypeBuilder feeder = a.NewGuardBuilder();
  feeder.AddEq(feeder.Y(0), feeder.Const(c));
  add_completions(anchor, feeder.Build().value(), knot);
  TypeBuilder loop = a.NewGuardBuilder();
  loop.AddNeq(loop.X(0), loop.Const(c)).AddNeq(loop.Y(0), loop.Const(c));
  add_completions(knot, loop.Build().value(), knot);
  TypeBuilder leave = a.NewGuardBuilder();
  leave.AddNeq(leave.X(0), leave.Const(c));
  add_completions(knot, leave.Build().value(), anchor);
  return ExtendedAutomaton(std::move(a));
}

TEST(StripDifferentialTest, FlowTierPreservesEmptinessOn100RandomAutomata) {
  std::mt19937 rng(20260809);
  int compared = 0;
  for (int iteration = 0; iteration < 100; ++iteration) {
    ExtendedAutomaton era = SeededFlowDeadStructure(rng);
    ControlAlphabet alphabet(era.automaton());
    EraEmptinessOptions with_strip;
    // Force the kFlow tier: the seeded automata sit under the default
    // transition floor, and the point here is that the flow strip itself
    // preserves the verdict.
    with_strip.min_flow_strip_transitions = 0;
    with_strip.max_lasso_length = 5;
    with_strip.max_lassos = 200000;
    with_strip.max_search_steps = 5000000;
    EraEmptinessOptions without_strip = with_strip;
    without_strip.analyze_and_strip = false;
    auto on = CheckEraEmptiness(era, alphabet, with_strip);
    auto off = CheckEraEmptiness(era, alphabet, without_strip);
    ASSERT_TRUE(on.ok()) << on.status().ToString();
    ASSERT_TRUE(off.ok()) << off.status().ToString();
    auto budget_limited = [](const SearchStats& s) {
      return s.stop_reason == SearchStopReason::kLassoBudget ||
             s.stop_reason == SearchStopReason::kStepBudget;
    };
    if (budget_limited(on->stats) || budget_limited(off->stats)) continue;
    EXPECT_EQ(on->nonempty, off->nonempty) << "iteration " << iteration;
    if (on->nonempty) {
      const size_t window =
          on->control_word.prefix.size() +
          on->control_word.cycle.size() * SuggestedPumpCount(era);
      auto witness =
          RealizeEraWitness(era, alphabet, on->control_word, window);
      EXPECT_TRUE(witness.ok())
          << "iteration " << iteration << ": " << witness.status().ToString();
    }
    ++compared;
  }
  EXPECT_GE(compared, 90);
}

TEST(StripDifferentialTest, LrBoundPreservedOnRandomAutomata) {
  std::mt19937 rng(424242);
  for (int iteration = 0; iteration < 25; ++iteration) {
    ExtendedAutomaton era = SeededDeadStructure(rng, iteration % 2 == 0);
    ControlAlphabet alphabet(era.automaton());
    LrBoundOptions with_strip;
    with_strip.max_lassos = 4096;
    with_strip.max_lasso_length = 4;
    LrBoundOptions without_strip = with_strip;
    without_strip.analyze_and_strip = false;
    auto on = EstimateLrBound(era, alphabet, with_strip);
    auto off = EstimateLrBound(era, alphabet, without_strip);
    ASSERT_TRUE(on.ok()) << on.status().ToString();
    ASSERT_TRUE(off.ok()) << off.status().ToString();
    // Same reasoning as the emptiness differential: identical length
    // bounds make the aggregates comparable; only budget exhaustion
    // (order-dependent) does not.
    auto budget_limited = [](const SearchStats& s) {
      return s.stop_reason == SearchStopReason::kLassoBudget ||
             s.stop_reason == SearchStopReason::kStepBudget;
    };
    if (budget_limited(on->stats) || budget_limited(off->stats)) continue;
    EXPECT_EQ(on->max_cover, off->max_cover) << "iteration " << iteration;
    EXPECT_EQ(on->growth_detected, off->growth_detected)
        << "iteration " << iteration;
  }
}

}  // namespace
}  // namespace rav
