#include <gtest/gtest.h>

#include <random>

#include "era/run_check.h"
#include "era/simulate_era.h"
#include "io/text_format.h"
#include "relational/query.h"
#include "test_util.h"

namespace rav {
namespace {

Schema GraphSchema() {
  Schema s;
  s.AddRelation("E", 2);
  s.AddRelation("Color", 2);  // Color(node, color)
  return s;
}

Database TriangleDb(const Schema& s) {
  Database db(s);
  RelationId e = s.FindRelation("E");
  RelationId color = s.FindRelation("Color");
  db.Insert(e, {1, 2});
  db.Insert(e, {2, 3});
  db.Insert(e, {3, 1});
  db.Insert(color, {1, 10});
  db.Insert(color, {2, 10});
  db.Insert(color, {3, 20});
  return db;
}

TEST(QueryTest, SingleAtomScan) {
  Schema s = GraphSchema();
  Database db = TriangleDb(s);
  auto q = ConjunctiveQuery::Make(
      s, 2, {{s.FindRelation("E"), {QueryTerm::Var(0), QueryTerm::Var(1)}}},
      {0, 1});
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->Evaluate(db).size(), 3u);
}

TEST(QueryTest, JoinPathsOfLengthTwo) {
  Schema s = GraphSchema();
  Database db = TriangleDb(s);
  RelationId e = s.FindRelation("E");
  // ans(x, z) :- E(x, y), E(y, z).
  auto q = ConjunctiveQuery::Make(
      s, 3,
      {{e, {QueryTerm::Var(0), QueryTerm::Var(1)}},
       {e, {QueryTerm::Var(1), QueryTerm::Var(2)}}},
      {0, 2});
  ASSERT_TRUE(q.ok());
  auto results = q->Evaluate(db);
  // Triangle: paths 1->3, 2->1, 3->2.
  EXPECT_EQ(results.size(), 3u);
  EXPECT_TRUE(std::count(results.begin(), results.end(), ValueTuple{1, 3}));
}

TEST(QueryTest, LiteralSelection) {
  Schema s = GraphSchema();
  Database db = TriangleDb(s);
  RelationId color = s.FindRelation("Color");
  // ans(x) :- Color(x, 10).
  auto q = ConjunctiveQuery::Make(
      s, 1, {{color, {QueryTerm::Var(0), QueryTerm::Lit(10)}}}, {0});
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->Evaluate(db), (std::vector<ValueTuple>{{1}, {2}}));
}

TEST(QueryTest, JoinAcrossRelations) {
  Schema s = GraphSchema();
  Database db = TriangleDb(s);
  // ans(x, y) :- E(x, y), Color(x, c), Color(y, c): monochromatic edges.
  auto q = ConjunctiveQuery::Make(
      s, 3,
      {{s.FindRelation("E"), {QueryTerm::Var(0), QueryTerm::Var(1)}},
       {s.FindRelation("Color"), {QueryTerm::Var(0), QueryTerm::Var(2)}},
       {s.FindRelation("Color"), {QueryTerm::Var(1), QueryTerm::Var(2)}}},
      {0, 1});
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->Evaluate(db), (std::vector<ValueTuple>{{1, 2}}));
}

TEST(QueryTest, BooleanQuery) {
  Schema s = GraphSchema();
  Database db = TriangleDb(s);
  // Is there a monochromatic edge with color 20? No.
  auto q = ConjunctiveQuery::Make(
      s, 2,
      {{s.FindRelation("E"), {QueryTerm::Var(0), QueryTerm::Var(1)}},
       {s.FindRelation("Color"), {QueryTerm::Var(0), QueryTerm::Lit(20)}},
       {s.FindRelation("Color"), {QueryTerm::Var(1), QueryTerm::Lit(20)}}},
      {});
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(q->HoldsIn(db));
}

TEST(QueryTest, UnsafeHeadYieldsNothing) {
  Schema s = GraphSchema();
  Database db = TriangleDb(s);
  // ans(z) :- E(x, y): z never bound.
  auto q = ConjunctiveQuery::Make(
      s, 3, {{s.FindRelation("E"), {QueryTerm::Var(0), QueryTerm::Var(1)}}},
      {2});
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->Evaluate(db).empty());
}

TEST(QueryTest, ValidationErrors) {
  Schema s = GraphSchema();
  EXPECT_FALSE(ConjunctiveQuery::Make(s, 1, {{99, {}}}, {}).ok());
  EXPECT_FALSE(ConjunctiveQuery::Make(
                   s, 1, {{s.FindRelation("E"), {QueryTerm::Var(0)}}}, {})
                   .ok());
  EXPECT_FALSE(ConjunctiveQuery::Make(s, 1, {}, {5}).ok());
}

// --- ERA-aware sampling ---

TEST(SampleEraRunTest, Example5SamplesSatisfyConstraint) {
  ExtendedAutomaton era = rav::testing::MakeExample5();
  Database db{Schema()};
  std::mt19937 rng(3);
  int produced = 0;
  for (int i = 0; i < 10; ++i) {
    auto run = SampleEraRun(era, db, 6, rng);
    if (!run.has_value()) continue;
    ++produced;
    EXPECT_TRUE(ValidateEraRunPrefix(era, db, *run).ok());
  }
  EXPECT_GT(produced, 0);
}

TEST(SampleEraRunTest, AllDistinctSamples) {
  ExtendedAutomaton era = rav::testing::MakeAllDistinct();
  Database db{Schema()};
  std::mt19937 rng(5);
  auto run = SampleEraRun(era, db, 4, rng);
  ASSERT_TRUE(run.has_value());
  for (size_t a = 0; a < run->length(); ++a) {
    for (size_t b = a + 1; b < run->length(); ++b) {
      EXPECT_NE(run->values[a][0], run->values[b][0]);
    }
  }
}

// --- Parser robustness fuzz ---

TEST(ParserFuzzTest, RandomInputsNeverCrash) {
  std::mt19937 rng(77);
  const std::string alphabet =
      "automaton registers state transition constraint schema {}()->=!x1y2 "
      "\"\n#";
  std::uniform_int_distribution<size_t> pick(0, alphabet.size() - 1);
  std::uniform_int_distribution<int> len(0, 120);
  for (int i = 0; i < 300; ++i) {
    std::string input;
    int n = len(rng);
    for (int j = 0; j < n; ++j) input.push_back(alphabet[pick(rng)]);
    // Must not crash; any Status outcome is fine.
    auto result = ParseExtendedAutomaton(input);
    (void)result;
  }
}

TEST(ParserFuzzTest, MutatedValidInputsNeverCrash) {
  std::string valid =
      "automaton { registers 2 state q1 initial final state q2 "
      "transition q1 -> q2 { x1 = x2  x2 = y2 } "
      "transition q2 -> q1 { x2 = y2 } }";
  std::mt19937 rng(88);
  std::uniform_int_distribution<size_t> pos(0, valid.size() - 1);
  std::uniform_int_distribution<int> ch(32, 126);
  for (int i = 0; i < 300; ++i) {
    std::string mutated = valid;
    mutated[pos(rng)] = static_cast<char>(ch(rng));
    auto result = ParseExtendedAutomaton(mutated);
    (void)result;
  }
}

}  // namespace
}  // namespace rav
