// Edge-case coverage across modules: arity-0 relations, constant
// anchoring in Lemma 21, lasso accessors, enhanced-automaton validation,
// simulator options, and miscellaneous accessors.

#include <gtest/gtest.h>

#include <random>

#include "enhanced/enhanced_automaton.h"
#include "projection/lemma21.h"
#include "ra/control.h"
#include "ra/lasso_search.h"
#include "ra/random.h"
#include "ra/run.h"
#include "ra/simulate.h"
#include "ra/transform.h"
#include "types/type.h"
#include "test_util.h"

namespace rav {
namespace {

// --- Arity-0 relations (propositional facts) ---

TEST(ArityZeroTest, DatabaseAndTypes) {
  Schema s;
  RelationId flag = s.AddRelation("Flag", 0);
  Database db(s);
  EXPECT_FALSE(db.Contains(flag, {}));
  db.Insert(flag, {});
  EXPECT_TRUE(db.Contains(flag, {}));

  TypeBuilder b(2, 0);
  b.AddAtom(flag, {}, true);
  Type t = b.Build().value();
  EXPECT_TRUE(t.HoldsIn(db, {5, 6}));
  db.Erase(flag, {});
  EXPECT_FALSE(t.HoldsIn(db, {5, 6}));
}

TEST(ArityZeroTest, GuardGatesTransitions) {
  Schema s;
  RelationId flag = s.AddRelation("Flag", 0);
  RegisterAutomaton a(1, s);
  StateId q = a.AddState("q");
  a.SetInitial(q);
  a.SetFinal(q);
  TypeBuilder b = a.NewGuardBuilder();
  b.AddAtom(flag, {}, true);
  a.AddTransition(q, b.Build().value(), q);

  Database without(s);
  Database with(s);
  with.Insert(flag, {});
  std::mt19937 rng(1);
  EXPECT_FALSE(SampleRun(a, without, 3, rng).has_value());
  EXPECT_TRUE(SampleRun(a, with, 3, rng).has_value());
}

// --- Constant anchoring in Lemma 21 ---

TEST(Lemma21ConstantsTest, EqualityThroughConstantIsNonContiguous) {
  // Register 1 equals the constant c at every even position; Lemma 21
  // must relate two even positions even though no register carries the
  // value in between (the constant anchors it).
  Schema s;
  s.AddConstant("c");
  RegisterAutomaton a(1, s);
  StateId even = a.AddState("even");
  StateId odd = a.AddState("odd");
  a.SetInitial(even);
  a.SetFinal(even);
  TypeBuilder from_even = a.NewGuardBuilder();
  from_even.AddEq(from_even.X(0), from_even.Const(0));   // x1 = c
  from_even.AddNeq(from_even.Y(0), from_even.Const(0));  // y1 ≠ c
  a.AddTransition(even, from_even.Build().value(), odd);
  TypeBuilder from_odd = a.NewGuardBuilder();
  from_odd.AddNeq(from_odd.X(0), from_odd.Const(0));
  from_odd.AddEq(from_odd.Y(0), from_odd.Const(0));
  a.AddTransition(odd, from_odd.Build().value(), even);

  auto propagation = PropagationAutomata::Build(a);
  ASSERT_TRUE(propagation.ok()) << propagation.status().ToString();
  // Factor even odd even: positions 0 and 2 both equal c -> related.
  EXPECT_TRUE(propagation->EqualityDfa(0, 0).Accepts(
      {even.value(), odd.value(), even.value()}));
  // Factor even odd: position 0 = c, position 1 ≠ c -> forced distinct.
  EXPECT_TRUE(
      propagation->InequalityDfa(0, 0).Accepts({even.value(), odd.value()}));
  EXPECT_FALSE(
      propagation->EqualityDfa(0, 0).Accepts({even.value(), odd.value()}));
}

// --- LassoRun accessors ---

TEST(LassoRunTest, AccessorsUnrollCorrectly) {
  LassoRun lasso;
  lasso.spine.values = {{10}, {20}, {30}};
  lasso.spine.states = testing::StateIds({0, 1, 2});
  lasso.spine.transition_indices = {100, 101};
  lasso.cycle_start = 1;
  lasso.wrap_transition_index = 102;
  EXPECT_EQ(lasso.period(), 2u);
  EXPECT_EQ(lasso.ValuesAt(0), (ValueTuple{10}));
  EXPECT_EQ(lasso.ValuesAt(3), (ValueTuple{20}));  // 1 + (3-1) % 2
  EXPECT_EQ(lasso.ValuesAt(4), (ValueTuple{30}));
  EXPECT_EQ(lasso.StateAt(5), StateId(1));
  EXPECT_EQ(lasso.TransitionAt(0), 100);
  EXPECT_EQ(lasso.TransitionAt(1), 101);
  EXPECT_EQ(lasso.TransitionAt(2), 102);  // wrap
  EXPECT_EQ(lasso.TransitionAt(3), 101);
  EXPECT_EQ(lasso.TransitionAt(4), 102);
  EXPECT_EQ(lasso.PrefixValues().size(), 1u);
  EXPECT_EQ(lasso.CycleValues().size(), 2u);
}

TEST(ProjectValuesTest, KeepsPrefixOfEachTuple) {
  std::vector<ValueTuple> values = {{1, 2, 3}, {4, 5, 6}};
  auto projected = ProjectValues(values, 2);
  EXPECT_EQ(projected, (std::vector<ValueTuple>{{1, 2}, {4, 5}}));
  EXPECT_TRUE(ProjectValues(values, 0)[0].empty());
}

// --- Enhanced automaton validation ---

TEST(EnhancedValidationTest, RejectsBadInputs) {
  RegisterAutomaton a(1, Schema());
  a.AddState("q");
  EnhancedAutomaton enhanced(a);
  // Register out of range.
  EXPECT_FALSE(enhanced
                   .AddEqualityConstraint(
                       RegisterPair{RegisterId(0), RegisterId(3)}, Dfa(1, 1, 0))
                   .ok());
  // Wrong alphabet.
  EXPECT_FALSE(enhanced
                   .AddEqualityConstraint(
                       RegisterPair{RegisterId(0), RegisterId(0)}, Dfa(7, 1, 0))
                   .ok());
  // Tuple arity mismatch.
  TupleInequalityConstraint c;
  c.pair_dfa = Dfa(1, 1, 0);
  c.regs_a = {0};
  c.offs_a = {0, 1};
  c.regs_b = {0};
  c.offs_b = {0};
  EXPECT_FALSE(enhanced.AddTupleConstraint(std::move(c)).ok());
  // Finiteness with bad register.
  FinitenessConstraint fc;
  fc.reg = 5;
  fc.selector = Dfa(1, 1, 0);
  EXPECT_FALSE(enhanced.AddFinitenessConstraint(std::move(fc)).ok());
}

// --- Control alphabet details ---

TEST(ControlAlphabetTest, SymbolLookupAndNames) {
  RegisterAutomaton a(1, Schema());
  StateId p = a.AddState("p");
  StateId q = a.AddState("q");
  a.SetInitial(p);
  a.SetFinal(q);
  Type empty = a.NewGuardBuilder().Build().value();
  TypeBuilder b2 = a.NewGuardBuilder();
  b2.AddEq(b2.X(0), b2.Y(0));
  Type keep = b2.Build().value();
  a.AddTransition(p, empty, q);
  a.AddTransition(q, keep, p);
  a.AddTransition(q, keep, q);  // same symbol as previous (same from+guard)
  ControlAlphabet alphabet(a);
  EXPECT_EQ(alphabet.size(), 2);
  EXPECT_EQ(alphabet.SymbolOfTransition(1), alphabet.SymbolOfTransition(2));
  EXPECT_TRUE(alphabet.SymbolOf(p, empty).valid());
  EXPECT_FALSE(alphabet.SymbolOf(p, keep).valid());
  EXPECT_FALSE(alphabet.SymbolName(a, SymbolId(0)).empty());
}

TEST(ControlAlphabetTest, ControlWordOfRun) {
  RegisterAutomaton a(1, Schema());
  StateId p = a.AddState("p");
  a.SetInitial(p);
  a.SetFinal(p);
  Type empty = a.NewGuardBuilder().Build().value();
  a.AddTransition(p, empty, p);
  ControlAlphabet alphabet(a);
  FiniteRun run;
  run.values = {{1}, {2}, {3}};
  run.states = {p, p, p};
  run.transition_indices = {0, 0};
  std::vector<int> word = ControlWordOfRun(a, alphabet, run);
  EXPECT_EQ(word, (std::vector<int>{0, 0}));
}

// --- Simulator options ---

TEST(SimulateOptionsTest, ZeroLengthAndMissingInitial) {
  RegisterAutomaton a(1, Schema());
  StateId q = a.AddState("q");
  a.SetFinal(q);  // no initial state
  a.AddTransition(q, a.NewGuardBuilder().Build().value(), q);
  Database db{Schema()};
  std::mt19937 rng(1);
  EXPECT_FALSE(SampleRun(a, db, 0, rng).has_value());
  EXPECT_FALSE(SampleRun(a, db, 3, rng).has_value());
}

TEST(SimulateOptionsTest, GuidedSamplingHandlesChainedEqualities) {
  // y1 = y2 = x1: the guided sampler must assign both successor registers
  // the propagated value in one shot.
  RegisterAutomaton a(2, Schema());
  StateId q = a.AddState("q");
  a.SetInitial(q);
  a.SetFinal(q);
  TypeBuilder b = a.NewGuardBuilder();
  b.AddEq(b.Y(0), b.Y(1)).AddEq(b.Y(0), b.X(0));
  a.AddTransition(q, b.Build().value(), q);
  Database db{Schema()};
  std::mt19937 rng(7);
  auto run = SampleRun(a, db, 5, rng);
  ASSERT_TRUE(run.has_value());
  for (size_t n = 1; n < run->length(); ++n) {
    EXPECT_EQ(run->values[n][0], run->values[n][1]);
    EXPECT_EQ(run->values[n][0], run->values[0][0]);
  }
}

// --- Random automaton generator sanity ---

TEST(RandomAutomatonTest, GeneratedAutomataAreWellFormed) {
  std::mt19937 rng(11);
  for (int i = 0; i < 20; ++i) {
    RegisterAutomaton a = RandomAutomaton(rng);
    EXPECT_FALSE(a.InitialStates().empty());
    bool any_final = false;
    for (StateId s : a.States()) {
      any_final = any_final || a.IsFinal(s);
      EXPECT_FALSE(a.TransitionsFrom(s).empty());
    }
    EXPECT_TRUE(any_final);
  }
}

// --- Lasso-run search ---

TEST(LassoSearchTest, FindsExample1Lasso) {
  RegisterAutomaton a(1, Schema());
  StateId q = a.AddState("q");
  a.SetInitial(q);
  a.SetFinal(q);
  TypeBuilder b = a.NewGuardBuilder();
  b.AddEq(b.X(0), b.Y(0));
  a.AddTransition(q, b.Build().value(), q);
  Database db{Schema()};
  auto lasso = FindLassoRunByEnumeration(a, db, 4, {0, 1});
  ASSERT_TRUE(lasso.has_value());
  EXPECT_TRUE(ValidateLassoRun(a, db, *lasso).ok());
}

TEST(LassoSearchTest, NoLassoWhenFinalUnreachableOnCycle) {
  RegisterAutomaton a(1, Schema());
  StateId q0 = a.AddState("q0");
  StateId q1 = a.AddState("q1");
  a.SetInitial(q0);
  a.SetFinal(q0);  // final state has no incoming transition
  Type empty = a.NewGuardBuilder().Build().value();
  a.AddTransition(q0, empty, q1);
  a.AddTransition(q1, empty, q1);
  Database db{Schema()};
  EXPECT_FALSE(FindLassoRunByEnumeration(a, db, 5, {0, 1}).has_value());
}

// --- Lemma 25: non-adom value remapping preserves validity ---

TEST(Lemma25Test, RemappedRunStaysValid) {
  Schema s;
  RelationId p = s.AddRelation("P", 1);
  RegisterAutomaton a(2, s);
  StateId q = a.AddState("q");
  a.SetInitial(q);
  a.SetFinal(q);
  TypeBuilder b = a.NewGuardBuilder();
  b.AddAtom(p, {b.X(0)}, true);      // register 1 in adom
  b.AddNeq(b.X(1), b.Y(1));          // register 2 changes (free values)
  a.AddTransition(q, b.Build().value(), q);

  Database db(s);
  db.Insert(p, {1});
  FiniteRun run;
  run.values = {{1, 100}, {1, 101}, {1, 102}};
  run.states = {q, q, q};
  run.transition_indices = {0, 0};
  ASSERT_TRUE(ValidateRunPrefix(a, db, run).ok());

  // Shift every non-adom value by 1000 (injective, avoids adom).
  FiniteRun remapped = RemapNonActiveDomainValues(
      run, db, [](DataValue v) { return v + 1000; });
  EXPECT_EQ(remapped.values[0][1], 1100);
  EXPECT_EQ(remapped.values[0][0], 1);  // adom value untouched
  EXPECT_TRUE(ValidateRunPrefix(a, db, remapped).ok());

  // A non-injective map can break validity — and validation catches it.
  FiniteRun collapsed = RemapNonActiveDomainValues(
      run, db, [](DataValue) { return 7777; });
  EXPECT_FALSE(ValidateRunPrefix(a, db, collapsed).ok());
}

// --- DistinctGuards / ToString smoke ---

TEST(AccessorTest, DistinctGuardsAndToString) {
  RegisterAutomaton a(1, Schema());
  StateId p = a.AddState("p");
  a.SetInitial(p);
  a.SetFinal(p);
  Type empty = a.NewGuardBuilder().Build().value();
  a.AddTransition(p, empty, p);
  a.AddTransition(p, empty, p);
  EXPECT_EQ(a.DistinctGuards().size(), 1u);
  EXPECT_NE(a.ToString().find("p"), std::string::npos);
}

}  // namespace
}  // namespace rav
