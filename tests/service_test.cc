#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "base/failpoints.h"
#include "base/report.h"
#include "service/compiled_spec.h"
#include "service/request.h"
#include "service/service.h"

namespace rav::service {
namespace {

// A tiny well-formed spec (the ping-pong fixture, inline so the test
// needs no data path).
const char kPingPong[] = R"(automaton {
  registers 1
  state ping initial final
  state pong
  transition ping -> pong { x1 = y1 }
  transition pong -> ping { }
  constraint eq 1 1 "ping pong ping"
})";

// Ping-pong plus structure the analyzer provably strips: an unreachable
// state with a transition out of it.
const char kPingPongWithDeadState[] = R"(automaton {
  registers 1
  state ping initial final
  state pong
  state limbo
  transition ping -> pong { x1 = y1 }
  transition pong -> ping { }
  transition limbo -> ping { }
  constraint eq 1 1 "ping pong ping"
})";

// An EMPTY spec whose bounded lasso search is combinatorially large (the
// governor_test BigEmptySpace shape, in text form): a complete digraph
// on 8 states with both guards per edge and a constraint demanding
// x1 != x1 on every length-1 factor, so every candidate is inconsistent
// and the search grinds to its lasso budget. Long enough to be reliably
// in flight when another thread cancels or trips a budget; always EMPTY.
std::string BigEmptySpecText() {
  const int n = 8;
  std::string spec = "automaton {\n  registers 1\n";
  std::string any_state;
  for (int s = 0; s < n; ++s) {
    spec += "  state q" + std::to_string(s) +
            (s == 0 ? " initial final\n" : " final\n");
    any_state += (s > 0 ? "|q" : "q") + std::to_string(s);
  }
  for (int s = 0; s < n; ++s) {
    for (int t = 0; t < n; ++t) {
      const std::string edge =
          "  transition q" + std::to_string(s) + " -> q" + std::to_string(t);
      spec += edge + " { x1 = y1 }\n";
      spec += edge + " { x1 != y1 }\n";
    }
  }
  spec += "  constraint neq 1 1 \"(" + any_state + ")*\"\n}\n";
  return spec;
}

std::string RequestLine(const std::string& body) {
  return "{" + body + "}";
}

// --- content hash ---

TEST(SpecContentHashTest, StableAndContentSensitive) {
  const std::string h1 = SpecContentHash(kPingPong);
  EXPECT_EQ(h1.size(), 16u);
  EXPECT_EQ(h1, SpecContentHash(kPingPong));
  EXPECT_NE(h1, SpecContentHash(kPingPongWithDeadState));
  EXPECT_EQ(h1.find_first_not_of("0123456789abcdef"), std::string::npos);
}

// --- CompiledSpec ---

TEST(CompiledSpecTest, CompilesCleanSpecOnce) {
  auto spec = CompiledSpec::Compile(kPingPong);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ((*spec)->hash(), SpecContentHash(kPingPong));
  EXPECT_TRUE((*spec)->diagnostics().empty());
  // The emptiness subject is completed — CheckEraEmptiness's premise.
  EXPECT_TRUE((*spec)->emptiness_subject().automaton().IsComplete());
  EXPECT_GT((*spec)->emptiness_alphabet().size(), 0);
  EXPECT_GE((*spec)->compile_ms(), 0.0);
}

TEST(CompiledSpecTest, ParseErrorIsFatal) {
  auto spec = CompiledSpec::Compile("automaton { this is not a spec");
  EXPECT_FALSE(spec.ok());
}

TEST(CompiledSpecTest, StripsDeadStructureAtCompileTime) {
  auto spec = CompiledSpec::Compile(kPingPongWithDeadState);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_GE((*spec)->states_stripped(), 1);
  EXPECT_FALSE((*spec)->diagnostics().empty());  // RAV001 at least
  // The analysis subject lost the limbo state; the parsed era kept it.
  EXPECT_LT((*spec)->analysis_subject().automaton().num_states(),
            (*spec)->era().automaton().num_states());
}

// --- SpecCache ---

TEST(SpecCacheTest, HitsAfterMissAndFindsByHash) {
  SpecCache cache(4);
  bool hit = true;
  auto first = cache.GetOrCompile(kPingPong, &hit);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(hit);
  auto second = cache.GetOrCompile(kPingPong, &hit);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(hit);
  EXPECT_EQ(first->get(), second->get());  // same artifact, not a copy
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.FindByHash((*first)->hash()).get(), first->get());
  EXPECT_EQ(cache.FindByHash("0000000000000000"), nullptr);
}

TEST(SpecCacheTest, EvictsLeastRecentlyUsed) {
  SpecCache cache(1);
  auto first = cache.GetOrCompile(kPingPong);
  ASSERT_TRUE(first.ok());
  auto second = cache.GetOrCompile(kPingPongWithDeadState);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.FindByHash((*first)->hash()), nullptr);  // evicted
  // The handed-out shared_ptr outlives the eviction.
  EXPECT_EQ((*first)->hash(), SpecContentHash(kPingPong));
}

// --- request parsing ---

TEST(ParseRequestTest, ParsesFullRequest) {
  auto request = ParseRequest(RequestLine(
      R"("id": "r1", "op": "verify", "spec": "automaton {}",
         "ltl": "G p0", "propositions": ["x1=y1"],
         "timeout": "250ms", "memory_limit": "64k", "threads": 2)"));
  ASSERT_TRUE(request.ok()) << request.status().ToString();
  EXPECT_EQ(request->id, "r1");
  EXPECT_EQ(request->op, Op::kVerify);
  EXPECT_EQ(request->ltl, "G p0");
  ASSERT_EQ(request->propositions.size(), 1u);
  EXPECT_EQ(request->timeout_ms, 250);
  EXPECT_EQ(request->memory_bytes, 64 * 1024);
  EXPECT_EQ(request->threads, 2);
}

TEST(ParseRequestTest, RejectionsNameTheField) {
  auto bad = [](const std::string& body) {
    Result<QueryRequest> r = ParseRequest(body);
    EXPECT_FALSE(r.ok()) << body;
    return r.ok() ? std::string() : r.status().ToString();
  };
  EXPECT_NE(bad("not json at all").find("not valid JSON"), std::string::npos);
  EXPECT_NE(bad(RequestLine(R"("op": "empty", "spec": "x")"))
                .find("id"), std::string::npos);
  EXPECT_NE(bad(RequestLine(R"("id": "r", "op": "solve", "spec": "x")"))
                .find("unknown op"), std::string::npos);
  EXPECT_NE(bad(RequestLine(R"("id": "r", "op": "empty")"))
                .find("needs a spec"), std::string::npos);
  EXPECT_NE(
      bad(RequestLine(
              R"("id": "r", "op": "empty", "spec": "x", "spec_hash": "y")"))
          .find("not both"),
      std::string::npos);
  EXPECT_NE(bad(RequestLine(R"("id": "r", "op": "verify", "spec": "x",
                               "ltl": "G p0")"))
                .find("propositions"), std::string::npos);
  EXPECT_NE(bad(RequestLine(R"("id": "r", "op": "cancel")"))
                .find("target"), std::string::npos);
  // The limit grammars are the CLI's: rejections name the valid suffixes.
  EXPECT_NE(bad(RequestLine(
                    R"("id": "r", "op": "empty", "spec": "x", "timeout": "10")"))
                .find("ms, s, m"), std::string::npos);
  EXPECT_NE(bad(RequestLine(R"("id": "r", "op": "empty", "spec": "x",
                               "memory_limit": "64q")"))
                .find("k, m, g"), std::string::npos);
  EXPECT_NE(bad(RequestLine(R"("id": "r", "op": "empty", "spec": "x",
                               "threads": -1)"))
                .find("threads"), std::string::npos);
}

TEST(ParseRequestTest, FailpointRejectsTheRequest) {
  failpoints::Arm("service/parse_request", 1);
  Result<QueryRequest> request =
      ParseRequest(RequestLine(R"("id": "r", "op": "stats")"));
  ASSERT_FALSE(request.ok());
  EXPECT_NE(request.status().ToString().find("service/parse_request"),
            std::string::npos);
  // Disarmed after firing: the next parse succeeds.
  EXPECT_TRUE(ParseRequest(RequestLine(R"("id": "r", "op": "stats")")).ok());
  failpoints::DisarmAll();
}

// --- service ops ---

QueryRequest SpecRequest(const std::string& id, Op op,
                         const std::string& spec) {
  QueryRequest request;
  request.id = id;
  request.op = op;
  request.spec_text = spec;
  return request;
}

TEST(ServiceTest, EmptyOpFindsPingPongWitness) {
  Service service;
  QueryResponse response =
      service.Handle(SpecRequest("r1", Op::kEmpty, kPingPong));
  EXPECT_TRUE(response.ok) << response.error;
  EXPECT_EQ(response.verdict, "NONEMPTY");
  EXPECT_EQ(response.exit_equivalent, 3);
  EXPECT_NE(response.details.Find("witness"), nullptr);
  EXPECT_FALSE(response.cache_hit);
  // Every response embeds a schema-valid run report.
  EXPECT_TRUE(ValidateReportJson(response.report).ok());
  const Json* experiment = response.report.Find("experiment");
  ASSERT_NE(experiment, nullptr);
  EXPECT_EQ(experiment->string_value(), "serve/empty");
}

TEST(ServiceTest, SpecHashReusesTheCompiledSpec) {
  Service service;
  QueryResponse first =
      service.Handle(SpecRequest("r1", Op::kInfo, kPingPong));
  ASSERT_TRUE(first.ok) << first.error;
  ASSERT_FALSE(first.spec_hash.empty());
  QueryRequest by_hash;
  by_hash.id = "r2";
  by_hash.op = Op::kEmpty;
  by_hash.spec_hash = first.spec_hash;
  QueryResponse second = service.Handle(by_hash);
  EXPECT_TRUE(second.ok) << second.error;
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.verdict, "NONEMPTY");
}

TEST(ServiceTest, UnknownSpecHashIsANamedError) {
  Service service;
  QueryRequest request;
  request.id = "r1";
  request.op = Op::kEmpty;
  request.spec_hash = "feedfacefeedface";
  QueryResponse response = service.Handle(request);
  EXPECT_FALSE(response.ok);
  EXPECT_NE(response.error.find("feedfacefeedface"), std::string::npos);
  EXPECT_EQ(response.exit_equivalent, 1);
}

TEST(ServiceTest, VerifyOpHoldsForTautology) {
  Service service;
  QueryRequest request = SpecRequest("r1", Op::kVerify, kPingPong);
  request.ltl = "true";
  request.propositions = {"x1=y1"};
  QueryResponse response = service.Handle(request);
  EXPECT_TRUE(response.ok) << response.error;
  EXPECT_EQ(response.verdict.rfind("HOLDS", 0), 0u) << response.verdict;
  EXPECT_EQ(response.exit_equivalent, 0);
}

TEST(ServiceTest, VerifyOpRejectsBadProposition) {
  Service service;
  QueryRequest request = SpecRequest("r1", Op::kVerify, kPingPong);
  request.ltl = "G p0";
  request.propositions = {"x9=y9"};  // out of range for 1 register
  QueryResponse response = service.Handle(request);
  EXPECT_FALSE(response.ok);
  EXPECT_NE(response.error.find("register out of range"), std::string::npos);
}

TEST(ServiceTest, LintOpAnswersFromTheCompile) {
  Service service;
  QueryResponse clean =
      service.Handle(SpecRequest("r1", Op::kLint, kPingPong));
  EXPECT_TRUE(clean.ok) << clean.error;
  EXPECT_EQ(clean.verdict, "clean");
  EXPECT_EQ(clean.exit_equivalent, 0);
  QueryResponse warned =
      service.Handle(SpecRequest("r2", Op::kLint, kPingPongWithDeadState));
  EXPECT_TRUE(warned.ok) << warned.error;
  EXPECT_EQ(warned.verdict, "lint warnings");
  EXPECT_EQ(warned.exit_equivalent, 1);
  ASSERT_NE(warned.details.Find("diagnostics"), nullptr);
}

TEST(ServiceTest, InfoOpReportsCompileAccounting) {
  Service service;
  QueryResponse response =
      service.Handle(SpecRequest("r1", Op::kInfo, kPingPongWithDeadState));
  EXPECT_TRUE(response.ok) << response.error;
  ASSERT_NE(response.details.Find("states"), nullptr);
  EXPECT_EQ(response.details.Find("states")->number_value(), 3);
  ASSERT_NE(response.details.Find("states_stripped"), nullptr);
  EXPECT_GE(response.details.Find("states_stripped")->number_value(), 1);
}

TEST(ServiceTest, StatsCountRequestsAndCacheTraffic) {
  Service service;
  service.Handle(SpecRequest("r1", Op::kInfo, kPingPong));
  service.Handle(SpecRequest("r2", Op::kInfo, kPingPong));
  QueryRequest stats;
  stats.id = "r3";
  stats.op = Op::kStats;
  QueryResponse response = service.Handle(stats);
  EXPECT_TRUE(response.ok);
  EXPECT_EQ(response.details.Find("requests")->number_value(), 2);
  EXPECT_EQ(response.details.Find("cache_hits")->number_value(), 1);
  EXPECT_EQ(response.details.Find("cache_misses")->number_value(), 1);
}

TEST(ServiceTest, ResponseJsonLineIsOneParseableLine) {
  Service service;
  QueryResponse response =
      service.Handle(SpecRequest("r1", Op::kEmpty, kPingPong));
  const std::string line = response.ToJsonLine();
  EXPECT_EQ(line.find('\n'), std::string::npos);
  auto parsed = Json::Parse(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Find("id")->string_value(), "r1");
  EXPECT_TRUE(parsed->Find("ok")->bool_value());
}

// --- governor isolation (the acceptance criterion) ---

// An expired per-request deadline must trip exactly that request: it
// reports exit-equivalent 4 with a truncated verdict, while requests
// running CONCURRENTLY against the same service (and partly the same
// compiled spec) finish with their normal verdicts and no trip.
TEST(ServiceIsolationTest, OneTrippedRequestLeavesConcurrentOnesUntouched) {
  Service service;
  const std::string big = BigEmptySpecText();
  // Warm the cache so every thread races on queries, not compiles.
  ASSERT_TRUE(service.Handle(SpecRequest("warm", Op::kInfo, big)).ok);

  QueryRequest tripped = SpecRequest("tripped", Op::kEmpty, big);
  tripped.timeout_ms = 0;  // already expired: trips at the first poll
  QueryRequest free_big = SpecRequest("free-big", Op::kLrBound, big);
  QueryRequest free_small = SpecRequest("free-small", Op::kEmpty, kPingPong);

  QueryResponse tripped_response, free_big_response, free_small_response;
  std::thread t1([&] { tripped_response = service.Handle(tripped); });
  std::thread t2([&] { free_big_response = service.Handle(free_big); });
  std::thread t3([&] { free_small_response = service.Handle(free_small); });
  t1.join();
  t2.join();
  t3.join();

  // The governed request tripped...
  EXPECT_TRUE(tripped_response.ok) << tripped_response.error;
  EXPECT_EQ(tripped_response.exit_equivalent, 4);
  EXPECT_NE(tripped_response.verdict.find("truncated"), std::string::npos);
  EXPECT_EQ(tripped_response.details.Find("stop_reason")->string_value(),
            "deadline");

  // ...and neither concurrent request saw any of it.
  EXPECT_TRUE(free_big_response.ok) << free_big_response.error;
  EXPECT_EQ(free_big_response.verdict, "no growth detected");
  EXPECT_NE(free_big_response.details.Find("stop_reason")->string_value(),
            "deadline");
  EXPECT_TRUE(free_small_response.ok) << free_small_response.error;
  EXPECT_EQ(free_small_response.verdict, "NONEMPTY");
  EXPECT_EQ(free_small_response.exit_equivalent, 3);

  // Per-request reports stayed per-request too.
  EXPECT_TRUE(ValidateReportJson(tripped_response.report).ok());
  EXPECT_TRUE(ValidateReportJson(free_small_response.report).ok());
  EXPECT_EQ(tripped_response.report.Find("verdict")->string_value(),
            tripped_response.verdict);
  EXPECT_EQ(free_small_response.report.Find("verdict")->string_value(),
            "NONEMPTY");
}

TEST(ServiceCancelTest, CancelReachesAnInFlightRequest) {
  Service service;
  const std::string big = BigEmptySpecText();
  ASSERT_TRUE(service.Handle(SpecRequest("warm", Op::kInfo, big)).ok);

  EXPECT_FALSE(service.Cancel("never-started"));

  QueryResponse response;
  std::thread runner(
      [&] { response = service.Handle(SpecRequest("slow", Op::kEmpty, big)); });
  // The guard registers the governor before the search starts, so this
  // spin observes the request and cancels it before (or during) its
  // first batch of candidates — deterministically exit-5.
  while (!service.Cancel("slow")) {
    std::this_thread::yield();
  }
  runner.join();
  EXPECT_TRUE(response.ok) << response.error;
  EXPECT_EQ(response.exit_equivalent, 5);
  EXPECT_EQ(response.details.Find("stop_reason")->string_value(), "cancelled");
}

TEST(ServiceCancelTest, CancelOpReportsWhetherTargetWasInFlight) {
  Service service;
  QueryRequest cancel;
  cancel.id = "c1";
  cancel.op = Op::kCancel;
  cancel.target = "ghost";
  QueryResponse response = service.Handle(cancel);
  EXPECT_TRUE(response.ok);
  EXPECT_EQ(response.verdict, "not in flight");
  EXPECT_FALSE(response.details.Find("cancelled")->bool_value());
}

TEST(ServiceTest, DuplicateInFlightIdIsRejected) {
  Service service;
  const std::string big = BigEmptySpecText();
  ASSERT_TRUE(service.Handle(SpecRequest("warm", Op::kInfo, big)).ok);

  QueryResponse slow_response;
  std::thread runner([&] {
    slow_response = service.Handle(SpecRequest("dup", Op::kEmpty, big));
  });
  // Wait until "dup" is registered (Cancel finds it), then collide. The
  // cancel also makes the slow request finish promptly afterwards.
  while (!service.Cancel("dup")) {
    std::this_thread::yield();
  }
  QueryResponse collision =
      service.Handle(SpecRequest("dup", Op::kInfo, kPingPong));
  runner.join();
  if (!collision.ok) {
    EXPECT_NE(collision.error.find("already in flight"), std::string::npos);
  }
  // (If the cancelled request drained before the collision arrived, the
  // second "dup" legitimately succeeds — both outcomes are correct; the
  // hard requirement is no crash and no cross-talk.)
  EXPECT_TRUE(slow_response.ok) << slow_response.error;
  EXPECT_EQ(slow_response.exit_equivalent, 5);
}

}  // namespace
}  // namespace rav::service
