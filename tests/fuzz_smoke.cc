// Deterministic fuzz smoke for the io/text_format parser — the
// ctest-wired half of the fuzz frontier (the libFuzzer target
// tests/fuzz_text_format.cc enforces the same invariants under coverage
// guidance; it needs Clang, so CI on GCC relies on this runner).
//
// Strategy: start from the committed seed specs in tests/data/, then
// drive a fixed-seed PRNG through several mutation families — byte
// flips, truncations, splices of two seeds, token-level insertions of
// grammar keywords, and pure garbage — for at least 10k inputs
// (override with RAV_FUZZ_SMOKE_INPUTS). Every input must satisfy:
//
//   1. ParseExtendedAutomaton never crashes, hangs, or throws;
//   2. accepted inputs round-trip stably: print → parse → print is a
//      fixed point (so the text format is a faithful serialization).
//
// See docs/robustness.md for the frontier's scope and how to run the
// coverage-guided variant.

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <iterator>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "io/text_format.h"

namespace rav {
namespace {

std::vector<std::string> LoadSeeds() {
  std::vector<std::string> seeds;
  const std::filesystem::path dir =
      std::filesystem::path(RAV_SOURCE_DIR) / "tests" / "data";
  std::vector<std::filesystem::path> paths;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".rav") paths.push_back(entry.path());
  }
  std::sort(paths.begin(), paths.end());  // deterministic order
  for (const auto& path : paths) {
    std::ifstream in(path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    seeds.push_back(buffer.str());
  }
  // A couple of synthetic seeds widen the grammar coverage beyond the
  // committed specs (schema relations, multi-literal guards).
  seeds.push_back(
      "automaton {\n"
      "  registers 2\n"
      "  schema { relation E/2 relation U/1 constant c }\n"
      "  state q1 initial final\n"
      "  state q2\n"
      "  transition q1 -> q2 { x1 = x2  x2 = y2  E(x2, x1)  !U(y1) }\n"
      "  transition q2 -> q2 { x2 = y2  x1 != c }\n"
      "  constraint eq 1 1 \"q1 q2* q1\"\n"
      "  constraint neq 1 2 \"q1 q1\"\n"
      "}\n");
  seeds.push_back("automaton { registers 1 state q initial final }\n");
  return seeds;
}

// Grammar tokens spliced into inputs so mutations stay near the
// interesting part of the input space instead of being rejected by the
// tokenizer immediately.
const char* const kTokens[] = {
    "automaton", "registers",  "schema",   "relation", "constant",
    "state",     "initial",    "final",    "transition", "->",
    "constraint", "eq",        "neq",      "{",        "}",
    "(",         ")",          "\"",       "=",        "!=",
    "x1",        "y1",         "x999",     "y0",       "E/2",
    "-1",        "999999999999999999999", "\n",       "#",
};

class FuzzDriver {
 public:
  FuzzDriver() : seeds_(LoadSeeds()), rng_(42) {}

  std::string Next() {
    switch (rng_() % 6) {
      case 0:
        return FlipBytes(Pick());
      case 1:
        return Truncate(Pick());
      case 2:
        return Splice(Pick(), Pick());
      case 3:
        return InsertTokens(Pick());
      case 4:
        return Garbage();
      default:
        return Pick();  // unmutated seeds keep the accepted path hot
    }
  }

 private:
  const std::string& Pick() { return seeds_[rng_() % seeds_.size()]; }

  std::string FlipBytes(std::string s) {
    if (s.empty()) return s;
    const int flips = 1 + static_cast<int>(rng_() % 8);
    for (int i = 0; i < flips; ++i) {
      s[rng_() % s.size()] = static_cast<char>(rng_() % 256);
    }
    return s;
  }

  std::string Truncate(const std::string& s) {
    if (s.empty()) return s;
    return s.substr(0, rng_() % s.size());
  }

  std::string Splice(const std::string& a, const std::string& b) {
    if (a.empty() || b.empty()) return a + b;
    return a.substr(0, rng_() % a.size()) + b.substr(rng_() % b.size());
  }

  std::string InsertTokens(std::string s) {
    const int inserts = 1 + static_cast<int>(rng_() % 4);
    for (int i = 0; i < inserts; ++i) {
      const char* token = kTokens[rng_() % std::size(kTokens)];
      const size_t at = s.empty() ? 0 : rng_() % s.size();
      s.insert(at, std::string(" ") + token + " ");
    }
    return s;
  }

  std::string Garbage() {
    std::string s(rng_() % 256, '\0');
    for (char& c : s) c = static_cast<char>(rng_() % 256);
    return s;
  }

  std::vector<std::string> seeds_;
  std::mt19937 rng_;
};

TEST(FuzzSmoke, ParseNeverCrashesAndRoundTripsStably) {
  int num_inputs = 12000;
  if (const char* env = std::getenv("RAV_FUZZ_SMOKE_INPUTS")) {
    num_inputs = std::max(1, std::atoi(env));
  }
  FuzzDriver driver;
  int accepted = 0;
  for (int i = 0; i < num_inputs; ++i) {
    const std::string input = driver.Next();
    Result<ExtendedAutomaton> era = ParseExtendedAutomaton(input);
    if (!era.ok()) continue;  // invariant 1 is "no crash", already held
    ++accepted;
    const std::string printed = ToTextFormat(*era);
    Result<ExtendedAutomaton> again = ParseExtendedAutomaton(printed);
    ASSERT_TRUE(again.ok())
        << "accepted input failed to reparse after printing\n--- input\n"
        << input << "\n--- printed\n"
        << printed << "\n--- status\n"
        << again.status().ToString();
    ASSERT_EQ(ToTextFormat(*again), printed)
        << "print → parse → print is not a fixed point for\n"
        << input;
  }
  // The seed pass-through arm guarantees a healthy accepted fraction; if
  // this drops to ~0 the mutator (or the parser) broke and the round-trip
  // invariant is no longer being exercised.
  EXPECT_GT(accepted, num_inputs / 20)
      << "almost no generated inputs parsed — fuzz corpus degenerated";
}

// The parser's own fault-injection site must not leak into ordinary runs:
// with no RAV_FAILPOINTS armed, a seed spec parses fine.
TEST(FuzzSmoke, SeedsParseClean) {
  for (const std::string& seed : LoadSeeds()) {
    EXPECT_TRUE(ParseExtendedAutomaton(seed).ok());
  }
}

}  // namespace
}  // namespace rav
