#include <gtest/gtest.h>

#include <random>
#include <set>

#include "ra/control.h"
#include "ra/emptiness.h"
#include "ra/register_automaton.h"
#include "ra/run.h"
#include "ra/simulate.h"
#include "ra/transform.h"
#include "test_util.h"

namespace rav {
namespace {

using testing::MakeExample1;

TEST(RegisterAutomatonTest, Example1Structure) {
  RegisterAutomaton a = MakeExample1();
  EXPECT_EQ(a.num_registers(), 2);
  EXPECT_EQ(a.num_states(), 2);
  EXPECT_EQ(a.num_transitions(), 3);
  EXPECT_TRUE(a.IsInitial(a.FindState("q1")));
  EXPECT_TRUE(a.IsFinal(a.FindState("q1")));
  EXPECT_FALSE(a.IsComplete());
  EXPECT_FALSE(a.IsStateDriven());  // q2 fires both δ2 and δ3
  EXPECT_EQ(a.DistinctGuards().size(), 3u);
}

// The typical run of Example 1:
// (d2 d1, q1) (d3 d1, q2) (d4 d1, q2) (d5 d1, q2) (d1 d1, q1) ...
FiniteRun Example1Run() {
  FiniteRun run;
  run.values = {{1, 1}, {3, 1}, {4, 1}, {5, 1}, {1, 1}};
  run.states = testing::StateIds({0, 1, 1, 1, 0});
  run.transition_indices = {0, 1, 1, 2};
  return run;
}

TEST(RunTest, Example1TypicalRunValidates) {
  RegisterAutomaton a = MakeExample1();
  Database db{Schema()};
  EXPECT_TRUE(ValidateRunPrefix(a, db, Example1Run()).ok());
}

TEST(RunTest, GuardViolationDetected) {
  RegisterAutomaton a = MakeExample1();
  Database db{Schema()};
  FiniteRun run = Example1Run();
  run.values[1][1] = 99;  // breaks x2 = y2 of δ1
  EXPECT_FALSE(ValidateRunPrefix(a, db, run).ok());
}

TEST(RunTest, WiringErrorsDetected) {
  RegisterAutomaton a = MakeExample1();
  Database db{Schema()};
  FiniteRun run = Example1Run();
  run.states[1] = StateId(0);  // transition 0 goes to q2, not q1
  EXPECT_FALSE(ValidateRunPrefix(a, db, run).ok());
}

TEST(RunTest, LassoRunOfExample1) {
  RegisterAutomaton a = MakeExample1();
  Database db{Schema()};
  LassoRun lasso;
  lasso.spine = Example1Run();
  lasso.spine.values.pop_back();  // cycle of 4 positions: q1 q2 q2 q2
  lasso.spine.states.pop_back();
  lasso.spine.transition_indices.pop_back();
  lasso.cycle_start = 0;
  lasso.wrap_transition_index = 2;  // δ3 back to q1
  // Wrap: from (5,1) at q2 via δ3 to (1,1) at q1: x2=y2 (1==1) ✓,
  // y1=y2 (1==1) ✓.
  EXPECT_TRUE(ValidateLassoRun(a, db, lasso).ok());
  EXPECT_EQ(lasso.StateAt(4).value(), 0);
  EXPECT_EQ(lasso.ValuesAt(5), (ValueTuple{3, 1}));
}

TEST(RunTest, LassoWithoutFinalStateRejected) {
  RegisterAutomaton a = MakeExample1();
  Database db{Schema()};
  LassoRun lasso;
  lasso.spine.values = {{1, 1}, {2, 1}, {3, 1}};
  lasso.spine.states = testing::StateIds({0, 1, 1});
  lasso.spine.transition_indices = {0, 1};
  lasso.cycle_start = 1;  // cycle q2 q2 never visits final q1
  lasso.wrap_transition_index = 1;
  // Make the wrap guard hold: δ2 needs x2 = y2: values[2][1] == values[1][1].
  EXPECT_FALSE(ValidateLassoRun(a, db, lasso).ok());
}

TEST(SimulateTest, SampleRunsAreValid) {
  RegisterAutomaton a = MakeExample1();
  Database db{Schema()};
  std::mt19937 rng(7);
  int produced = 0;
  for (int i = 0; i < 20; ++i) {
    auto run = SampleRun(a, db, 6, rng);
    if (!run.has_value()) continue;
    ++produced;
    EXPECT_TRUE(ValidateRunPrefix(a, db, *run).ok());
    // Register 2 of Example 1 never changes.
    for (size_t n = 1; n < run->length(); ++n) {
      EXPECT_EQ(run->values[n][1], run->values[0][1]);
    }
  }
  EXPECT_GT(produced, 0);
}

TEST(SimulateTest, EnumerateRunsMatchesValidation) {
  RegisterAutomaton a = MakeExample1();
  Database db{Schema()};
  size_t count = EnumerateRuns(a, db, 3, {0, 1}, [&](const FiniteRun& run) {
    EXPECT_TRUE(ValidateRunPrefix(a, db, run).ok());
    return true;
  });
  // Runs of length 3 over pool {0,1}: position 0 must satisfy x1=x2
  // (δ1's x-part): values (0,0) or (1,1). Then two steps.
  EXPECT_GT(count, 0u);
}

TEST(TransformTest, CompletedPreservesRunsAndIsComplete) {
  RegisterAutomaton a = MakeExample1();
  auto completed = Completed(a);
  ASSERT_TRUE(completed.ok());
  EXPECT_TRUE(completed->IsComplete());
  Database db{Schema()};
  // Same projected traces over a small pool.
  auto t1 = CollectProjectedTraces(a, db, 4, {0, 1, 2}, 2);
  auto t2 = CollectProjectedTraces(*completed, db, 4, {0, 1, 2}, 2);
  EXPECT_EQ(t1, t2);
}

TEST(TransformTest, StateDrivenPreservesRuns) {
  RegisterAutomaton a = MakeExample1();
  RegisterAutomaton sd = MakeStateDriven(a);
  EXPECT_TRUE(sd.IsStateDriven());
  // Example 3 says the state-driven variant has 3 states (q1 with δ1, q2
  // with δ2, q2 with δ3).
  EXPECT_EQ(sd.num_states(), 3);
  Database db{Schema()};
  auto t1 = CollectProjectedTraces(a, db, 4, {0, 1, 2}, 2);
  auto t2 = CollectProjectedTraces(sd, db, 4, {0, 1, 2}, 2);
  EXPECT_EQ(t1, t2);
}

TEST(ControlTest, AlphabetCollectsDistinctSymbols) {
  RegisterAutomaton a = MakeExample1();
  ControlAlphabet alpha(a);
  EXPECT_EQ(alpha.size(), 3);  // (q1,δ1), (q2,δ2), (q2,δ3)
  EXPECT_EQ(alpha.state_of(alpha.SymbolOfTransition(0)), a.FindState("q1"));
}

TEST(ControlTest, SControlAcceptsControlWordsOfRealRuns) {
  // Completed automaton: control words of actual lasso runs must be
  // accepted by the SControl NBA (Control ⊆ SControl).
  RegisterAutomaton a = Completed(MakeExample1()).value();
  ControlAlphabet alpha(a);
  Nba scontrol = BuildSControlNba(a, alpha);
  Database db{Schema()};
  // Enumerate short runs, then close those that end where they started
  // with a valid wrap into lassos.
  size_t checked = 0;
  EnumerateRuns(a, db, 4, {0, 1}, [&](const FiniteRun& run) {
    for (int ti : a.TransitionsFrom(run.states.back())) {
      const RaTransition& t = a.transition(ti);
      if (t.to != run.states[0]) continue;
      LassoRun lasso{run, 0, ti};
      if (!ValidateLassoRun(a, db, lasso).ok()) continue;
      LassoWord w = ControlWordOfLassoRun(a, alpha, lasso);
      EXPECT_TRUE(scontrol.AcceptsLasso(w)) << w.ToString();
      ++checked;
    }
    return checked < 25;
  });
  EXPECT_GT(checked, 0u);
}

TEST(EmptinessTest, Example1HasRuns) {
  auto has_run = HasSomeRun(MakeExample1());
  ASSERT_TRUE(has_run.ok());
  EXPECT_TRUE(*has_run);
}

TEST(EmptinessTest, DeadAutomatonIsEmpty) {
  // Guard x1 ≠ y1 into a state requiring x1 = y1 forever... simpler: no
  // final state reachable on a cycle.
  RegisterAutomaton a(1, Schema());
  StateId q0 = a.AddState("q0");
  StateId q1 = a.AddState("q1");
  a.SetInitial(q0);
  a.SetFinal(q1);
  TypeBuilder b = a.NewGuardBuilder();
  a.AddTransition(q0, b.Build().value(), q1);  // q1 has no outgoing edge
  auto has_run = HasSomeRun(a);
  ASSERT_TRUE(has_run.ok());
  EXPECT_FALSE(*has_run);
}

TEST(EmptinessTest, FrontierInconsistencyDetected) {
  // Single state q, guard requires y1 = y2 but also x1 ≠ x2: consecutive
  // copies of the guard are frontier-incompatible, so no infinite run.
  RegisterAutomaton a(2, Schema());
  StateId q = a.AddState("q");
  a.SetInitial(q);
  a.SetFinal(q);
  TypeBuilder b = a.NewGuardBuilder();
  b.AddEq(b.Y(0), b.Y(1)).AddNeq(b.X(0), b.X(1));
  a.AddTransition(q, b.Build().value(), q);
  auto has_run = HasSomeRun(a);
  ASSERT_TRUE(has_run.ok());
  EXPECT_FALSE(*has_run);
}

TEST(EmptinessTest, RealizeWitnessProducesValidRun) {
  RegisterAutomaton a = Completed(MakeExample1()).value();
  ControlAlphabet alpha(a);
  auto lasso = FindSymbolicControlLasso(a, alpha);
  ASSERT_TRUE(lasso.has_value());
  auto witness = RealizeWitness(a, alpha, *lasso, 8);
  ASSERT_TRUE(witness.ok()) << witness.status().ToString();
  EXPECT_EQ(witness->run.length(), 8u);
  EXPECT_TRUE(ValidateRunPrefix(a, witness->db, witness->run,
                                /*require_initial=*/false)
                  .ok());
}

TEST(FixedDbTest, NoDatabaseAutomatonAlwaysChecksEquality) {
  RegisterAutomaton a = MakeExample1();
  Database db{Schema()};
  FixedDbStats stats;
  EXPECT_TRUE(HasRunOverDatabase(a, db, &stats));
  EXPECT_GT(stats.num_configurations, 0u);
}

TEST(FixedDbTest, UnaryRelationGuardNeedsNonEmptyRelation) {
  // Guard requires P(y1) forever: a run exists iff P is non-empty.
  Schema s;
  RelationId p = s.AddRelation("P", 1);
  RegisterAutomaton a(1, s);
  StateId q = a.AddState("q");
  a.SetInitial(q);
  a.SetFinal(q);
  TypeBuilder b = a.NewGuardBuilder();
  b.AddAtom(p, {b.Y(0)}, true);
  a.AddTransition(q, b.Build().value(), q);

  Database empty_db(s);
  EXPECT_FALSE(HasRunOverDatabase(a, empty_db));
  Database db(s);
  db.Insert(p, {5});
  EXPECT_TRUE(HasRunOverDatabase(a, db));
}

TEST(FixedDbTest, AllDistinctGuardIsSatisfiableOverAnyDb) {
  // x1 ≠ y1 loop: fresh values forever, fine over the empty database.
  RegisterAutomaton a(1, Schema());
  StateId q = a.AddState("q");
  a.SetInitial(q);
  a.SetFinal(q);
  TypeBuilder b = a.NewGuardBuilder();
  b.AddNeq(b.X(0), b.Y(0));
  a.AddTransition(q, b.Build().value(), q);
  Database db{Schema()};
  EXPECT_TRUE(HasRunOverDatabase(a, db));
}

TEST(FixedDbTest, ConstantGuardPinsRegister) {
  // Register must always equal the constant c and be in P.
  Schema s;
  RelationId p = s.AddRelation("P", 1);
  ConstantId c = s.AddConstant("c");
  RegisterAutomaton a(1, s);
  StateId q = a.AddState("q");
  a.SetInitial(q);
  a.SetFinal(q);
  TypeBuilder b = a.NewGuardBuilder();
  b.AddEq(b.X(0), b.Const(c)).AddEq(b.Y(0), b.Const(c));
  b.AddAtom(p, {b.X(0)}, true);
  a.AddTransition(q, b.Build().value(), q);

  Database db1(s);
  db1.SetConstant(c, 3);
  db1.Insert(p, {3});
  EXPECT_TRUE(HasRunOverDatabase(a, db1));

  Database db2(s);
  db2.SetConstant(c, 3);
  db2.Insert(p, {4});
  EXPECT_FALSE(HasRunOverDatabase(a, db2));
}

}  // namespace
}  // namespace rav
