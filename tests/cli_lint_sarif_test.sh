#!/bin/sh
# Gate for `rav_cli lint --sarif` (docs/linting.md): lints the known-dirty
# flow fixture and checks that the output is a SARIF 2.1.0 log carrying
# the flow-sensitive findings (RAV011/012/013) with rule metadata and
# region information, and that the exit code still reflects the worst
# severity (1 = warnings).
#
# Usage: cli_lint_sarif_test.sh <rav_cli> <fixture.rav> <scratch-dir>
set -u

CLI="$1"
FIXTURE="$2"
WORK="$3"
mkdir -p "$WORK"

fail() {
  echo "cli_lint_sarif_test: FAIL: $1" >&2
  exit 1
}

SARIF="$WORK/lint.sarif"
"$CLI" lint --sarif "$FIXTURE" >"$SARIF" 2>"$WORK/stderr"
status=$?
[ "$status" -eq 1 ] || fail "expected exit 1 (warnings), got $status"

require() {
  grep -q "$1" "$SARIF" || fail "SARIF log lacks $2"
}

require '"\$schema": "https://json.schemastore.org/sarif-2.1.0.json"' \
  "the 2.1.0 \$schema reference"
require '"version": "2.1.0"' "the version marker"
require '"name": "rav lint"' "the tool driver name"
require '"id": "RAV011"' "a rule entry for RAV011"
require '"id": "RAV012"' "a rule entry for RAV012"
require '"id": "RAV013"' "a rule entry for RAV013"
require '"ruleId": "RAV011"' "an RAV011 result"
require '"ruleId": "RAV012"' "an RAV012 result"
require '"ruleId": "RAV013"' "an RAV013 result"
require '"level": "warning"' "warning-level results"
require '"level": "note"' "the note-level RAV011 result"
require '"startLine"' "region line information"
require '"artifactLocation"' "artifact locations"

# The three RAV012 findings of the fixture must all be present.
rav012=$(grep -c '"ruleId": "RAV012"' "$SARIF")
[ "$rav012" -eq 3 ] || fail "expected 3 RAV012 results, got $rav012"

# A clean spec must produce an empty results array and exit 0.
CLEAN="$WORK/clean.sarif"
if ! "$CLI" lint --sarif "$(dirname "$FIXTURE")/ping_pong.rav" >"$CLEAN"; then
  fail "clean fixture should exit 0 under --sarif"
fi
grep -q '"results": \[\]' "$CLEAN" || fail "clean spec should have no results"

echo "cli_lint_sarif_test: PASS"
exit 0
