// Tests for the observability layer: base/metrics.h (process-wide
// counters / gauges / histograms with per-thread shards), base/trace.h
// (RAII phase spans), and base/report.h (the JSON document model and the
// run-report schema shared by the bench binaries and rav_cli).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "base/metrics.h"
#include "base/report.h"
#include "base/trace.h"

namespace rav {
namespace {

using metrics::MetricKind;
using metrics::MetricSnapshot;

const MetricSnapshot* FindMetric(const std::vector<MetricSnapshot>& snapshot,
                                 const std::string& name) {
  for (const MetricSnapshot& m : snapshot) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

const trace::SpanSnapshot* FindSpan(
    const std::vector<trace::SpanSnapshot>& spans, const std::string& path) {
  for (const trace::SpanSnapshot& s : spans) {
    if (s.path == path) return &s;
  }
  return nullptr;
}

TEST(MetricsTest, CounterAccumulates) {
  metrics::ResetForTest();
  metrics::Counter& c = metrics::GetCounter("test/counter/basic");
  c.Add();
  c.Add(41);
  const std::vector<MetricSnapshot> snapshot = metrics::Snapshot();
  const MetricSnapshot* m = FindMetric(snapshot, "test/counter/basic");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->kind, MetricKind::kCounter);
  EXPECT_EQ(m->value, 42u);
}

TEST(MetricsTest, MacroCachesHandleAndCounts) {
  metrics::ResetForTest();
  for (int i = 0; i < 10; ++i) RAV_METRIC_COUNT("test/counter/macro", 2);
  const std::vector<MetricSnapshot> snapshot = metrics::Snapshot();
  const MetricSnapshot* m = FindMetric(snapshot, "test/counter/macro");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->value, 20u);
}

// The core shard-merge guarantee: increments from many threads — some
// exited (their shards retired into the registry totals), some counted
// while the snapshot loop runs elsewhere — sum exactly once joined.
TEST(MetricsTest, ConcurrentCountersMergeExactly) {
  metrics::ResetForTest();
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      metrics::Counter& c = metrics::GetCounter("test/counter/concurrent");
      for (int i = 0; i < kIncrements; ++i) c.Add();
    });
  }
  for (std::thread& t : threads) t.join();
  const std::vector<MetricSnapshot> snapshot = metrics::Snapshot();
  const MetricSnapshot* m = FindMetric(snapshot, "test/counter/concurrent");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->value, static_cast<uint64_t>(kThreads) * kIncrements);
}

TEST(MetricsTest, GaugeKeepsLastValue) {
  metrics::ResetForTest();
  RAV_METRIC_SET("test/gauge/last", 7);
  RAV_METRIC_SET("test/gauge/last", -3);
  const std::vector<MetricSnapshot> snapshot = metrics::Snapshot();
  const MetricSnapshot* m = FindMetric(snapshot, "test/gauge/last");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->kind, MetricKind::kGauge);
  EXPECT_EQ(static_cast<int64_t>(m->value), -3);
}

TEST(MetricsTest, HistogramBucketsByBitWidth) {
  metrics::ResetForTest();
  metrics::Histogram& h = metrics::GetHistogram("test/histogram/buckets");
  // value 0 -> bucket 0, 1 -> bucket 1, [2,4) -> bucket 2, [4,8) -> 3...
  h.Record(0);
  h.Record(1);
  h.Record(2);
  h.Record(3);
  h.Record(100);
  const std::vector<MetricSnapshot> snapshot = metrics::Snapshot();
  const MetricSnapshot* m = FindMetric(snapshot, "test/histogram/buckets");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->kind, MetricKind::kHistogram);
  EXPECT_EQ(m->histogram.count, 5u);
  EXPECT_EQ(m->histogram.sum, 106u);
  EXPECT_EQ(m->histogram.min, 0u);
  EXPECT_EQ(m->histogram.max, 100u);
  EXPECT_EQ(m->histogram.buckets[0], 1u);
  EXPECT_EQ(m->histogram.buckets[1], 1u);
  EXPECT_EQ(m->histogram.buckets[2], 2u);
  EXPECT_EQ(m->histogram.buckets[7], 1u);  // 100 is in [64, 128)
}

TEST(MetricsTest, HistogramExtremaAcrossThreads) {
  metrics::ResetForTest();
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([t] {
      metrics::Histogram& h = metrics::GetHistogram("test/histogram/extrema");
      h.Record(static_cast<uint64_t>(10 * (t + 1)));
    });
  }
  for (std::thread& t : threads) t.join();
  const std::vector<MetricSnapshot> snapshot = metrics::Snapshot();
  const MetricSnapshot* m = FindMetric(snapshot, "test/histogram/extrema");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->histogram.count, 4u);
  EXPECT_EQ(m->histogram.min, 10u);
  EXPECT_EQ(m->histogram.max, 40u);
}

TEST(MetricsTest, ResetZeroesWithoutInvalidatingHandles) {
  metrics::ResetForTest();
  metrics::Counter& c = metrics::GetCounter("test/counter/reset");
  c.Add(5);
  metrics::ResetForTest();
  const std::vector<MetricSnapshot> snapshot = metrics::Snapshot();
  const MetricSnapshot* m = FindMetric(snapshot, "test/counter/reset");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->value, 0u);
  c.Add(2);  // old handle still works
  const std::vector<MetricSnapshot> after = metrics::Snapshot();
  m = FindMetric(after, "test/counter/reset");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->value, 2u);
}

TEST(TraceTest, SpansNestIntoSlashPaths) {
  trace::ResetForTest();
  {
    RAV_TRACE_SPAN("outer");
    {
      RAV_TRACE_SPAN("inner");
    }
    {
      RAV_TRACE_SPAN("inner");
    }
  }
  std::vector<trace::SpanSnapshot> spans = trace::Snapshot();
  const trace::SpanSnapshot* outer = FindSpan(spans, "outer");
  const trace::SpanSnapshot* inner = FindSpan(spans, "outer/inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->count, 1u);
  EXPECT_EQ(inner->count, 2u);
  EXPECT_GE(outer->total_ns, inner->total_ns);
  EXPECT_LE(inner->min_ns, inner->max_ns);
  // No bare "inner" root: the nested span aggregated under its parent.
  EXPECT_EQ(FindSpan(spans, "inner"), nullptr);
}

TEST(TraceTest, WorkerThreadsStartFreshRoots) {
  trace::ResetForTest();
  {
    RAV_TRACE_SPAN("parent");
    std::thread worker([] {
      RAV_TRACE_SPAN("worker_phase");
    });
    worker.join();
  }
  std::vector<trace::SpanSnapshot> spans = trace::Snapshot();
  // The worker's span is a root of its own thread, not a child of the
  // span that happened to be open on the spawning thread.
  EXPECT_NE(FindSpan(spans, "worker_phase"), nullptr);
  EXPECT_EQ(FindSpan(spans, "parent/worker_phase"), nullptr);
}

TEST(JsonTest, DumpIsDeterministicAndTyped) {
  Json obj = Json::Object();
  obj.Set("b", Json::Number(2));
  obj.Set("a", Json::String("x \"quoted\"\n"));
  obj.Set("flag", Json::Bool(true));
  obj.Set("nothing", Json::Null());
  Json arr = Json::Array();
  arr.Append(Json::Number(1.5));
  arr.Append(Json::Number(static_cast<int64_t>(-7)));
  obj.Set("list", std::move(arr));
  // Insertion order is preserved; integral numbers have no decimal point.
  EXPECT_EQ(obj.Dump(),
            "{\"b\":2,\"a\":\"x \\\"quoted\\\"\\n\",\"flag\":true,"
            "\"nothing\":null,\"list\":[1.5,-7]}");
}

TEST(JsonTest, ParseRoundTrips) {
  const std::string text =
      "{\"b\": 2, \"a\": \"x \\\"quoted\\\"\\n\", \"flag\": true,"
      " \"nothing\": null, \"list\": [1.5, -7], \"u\": \"\\u00e9\"}";
  Result<Json> parsed = Json::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Find("b")->number_value(), 2);
  EXPECT_EQ(parsed->Find("a")->string_value(), "x \"quoted\"\n");
  EXPECT_TRUE(parsed->Find("flag")->bool_value());
  EXPECT_EQ(parsed->Find("list")->size(), 2u);
  EXPECT_EQ(parsed->Find("u")->string_value(), "\u00e9");
  // Re-dumping the parse of a dump is a fixpoint.
  EXPECT_EQ(Json::Parse(parsed->Dump())->Dump(), parsed->Dump());
}

TEST(JsonTest, ParseRejectsMalformedInput) {
  EXPECT_FALSE(Json::Parse("{").ok());
  EXPECT_FALSE(Json::Parse("[1, ]").ok());
  EXPECT_FALSE(Json::Parse("{\"a\": 1} trailing").ok());
  EXPECT_FALSE(Json::Parse("nul").ok());
  EXPECT_FALSE(Json::Parse("\"unterminated").ok());
}

// Golden schema: the exact top-level rendering of an empty report. Keys
// and their order are the public contract of `--report` (consumed by
// report_merge and tools/run_ci.sh); a change here is a schema change and
// must bump schema_version.
TEST(ReportTest, GoldenSchemaRendering) {
  RunReport report;
  report.experiment = "E0";
  report.claim = "golden";
  report.verdict = "ok";
  report.wall_ms = 12.5;
  EXPECT_EQ(ReportToJson(report).Dump(),
            "{\"schema_version\":1,\"experiment\":\"E0\",\"claim\":\"golden\","
            "\"params\":{},\"metrics\":{},\"spans\":[],"
            "\"verdict\":\"ok\",\"wall_ms\":12.5}");
}

TEST(ReportTest, ValidatorAcceptsRealReportAndListsAllProblems) {
  RunReport report;
  report.experiment = "E1";
  report.claim = "c";
  report.verdict = "ok";
  Json good = ReportToJson(report);
  EXPECT_TRUE(ValidateReportJson(good).ok());

  Json bad = Json::Object();
  bad.Set("experiment", Json::Number(3));  // wrong type
  bad.Set("claim", Json::String("c"));
  Status status = ValidateReportJson(bad);
  ASSERT_FALSE(status.ok());
  // Every problem is listed, not just the first.
  const std::string message(status.message());
  EXPECT_NE(message.find("experiment"), std::string::npos);
  EXPECT_NE(message.find("params"), std::string::npos);
  EXPECT_NE(message.find("wall_ms"), std::string::npos);
}

TEST(ReportTest, CaptureBridgesMetricsAndSpans) {
  metrics::ResetForTest();
  trace::ResetForTest();
  RAV_METRIC_COUNT("test/report/counter", 3);
  RAV_METRIC_RECORD("test/report/sizes", 5);
  {
    RAV_TRACE_SPAN("test_report_phase");
  }
  Json process = CaptureProcessMetrics();
  ASSERT_TRUE(process.is_object());
  const Json* counter = process.Find("test/report/counter");
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->number_value(), 3);
  const Json* sizes = process.Find("test/report/sizes");
  ASSERT_NE(sizes, nullptr);
  ASSERT_TRUE(sizes->is_object());
  EXPECT_EQ(sizes->Find("count")->number_value(), 1);
  EXPECT_EQ(sizes->Find("sum")->number_value(), 5);

  Json spans = CaptureSpans();
  ASSERT_TRUE(spans.is_array());
  bool found = false;
  for (const Json& span : spans.items()) {
    if (span.Find("path")->string_value() == "test_report_phase") {
      found = true;
      EXPECT_EQ(span.Find("count")->number_value(), 1);
      EXPECT_GE(span.Find("total_ms")->number_value(), 0.0);
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace rav
