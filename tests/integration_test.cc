// Cross-module property tests: random automata are pushed through the
// paper's constructions and the results cross-validated against
// brute-force enumeration. Each suite is a parameterized sweep over RNG
// seeds.

#include <gtest/gtest.h>

#include <random>
#include <set>

#include "era/emptiness.h"
#include "era/run_check.h"
#include "projection/project_era.h"
#include "projection/project_ra.h"
#include "ra/control.h"
#include "ra/emptiness.h"
#include "ra/random.h"
#include "ra/simulate.h"
#include "ra/transform.h"

namespace rav {
namespace {

// Flattened value-trace sets of valid run prefixes.
std::set<std::vector<DataValue>> Traces(const RegisterAutomaton& a,
                                        const Database& db, size_t len,
                                        const std::vector<DataValue>& pool) {
  std::set<std::vector<DataValue>> out;
  EnumerateRuns(a, db, len, pool, [&](const FiniteRun& run) {
    std::vector<DataValue> flat;
    for (const ValueTuple& v : run.values) {
      flat.insert(flat.end(), v.begin(), v.end());
    }
    out.insert(std::move(flat));
    return true;
  });
  return out;
}

std::set<std::vector<DataValue>> EraTraces(const ExtendedAutomaton& era,
                                           size_t keep_len,
                                           const std::vector<DataValue>& pool,
                                           int m) {
  std::set<std::vector<DataValue>> out;
  Database db{era.automaton().schema()};
  EnumerateRuns(era.automaton(), db, keep_len + 1, pool,
                [&](const FiniteRun& run) {
                  if (!CheckFiniteRunConstraints(era, run).ok()) return true;
                  std::vector<DataValue> flat;
                  for (size_t n = 0; n < keep_len; ++n) {
                    flat.insert(flat.end(), run.values[n].begin(),
                                run.values[n].begin() + m);
                  }
                  out.insert(std::move(flat));
                  return true;
                });
  return out;
}

RandomAutomatonOptions SmallOptions() {
  RandomAutomatonOptions options;
  options.num_registers = 2;
  options.num_states = 3;
  options.num_transitions = 4;
  return options;
}

class RandomAutomatonSweep : public ::testing::TestWithParam<int> {};

TEST_P(RandomAutomatonSweep, CompletionPreservesTraces) {
  std::mt19937 rng(GetParam());
  RegisterAutomaton a = RandomAutomaton(rng, SmallOptions());
  auto completed = Completed(a);
  ASSERT_TRUE(completed.ok());
  Database db{Schema()};
  std::vector<DataValue> pool = {0, 1, 2};
  EXPECT_EQ(Traces(a, db, 3, pool), Traces(*completed, db, 3, pool));
}

TEST_P(RandomAutomatonSweep, StateDrivenPreservesTraces) {
  std::mt19937 rng(GetParam() + 1000);
  RegisterAutomaton a = RandomAutomaton(rng, SmallOptions());
  RegisterAutomaton sd = MakeStateDriven(a);
  EXPECT_TRUE(sd.IsStateDriven());
  Database db{Schema()};
  std::vector<DataValue> pool = {0, 1, 2};
  EXPECT_EQ(Traces(a, db, 3, pool), Traces(sd, db, 3, pool));
}

TEST_P(RandomAutomatonSweep, PermutationPreservesTraceCount) {
  std::mt19937 rng(GetParam() + 2000);
  RegisterAutomaton a = RandomAutomaton(rng, SmallOptions());
  RegisterAutomaton swapped = PermuteRegisters(a, {1, 0});
  Database db{Schema()};
  std::vector<DataValue> pool = {0, 1};
  auto t1 = Traces(a, db, 3, pool);
  auto t2 = Traces(swapped, db, 3, pool);
  ASSERT_EQ(t1.size(), t2.size());
  // Each permuted trace is the register-swap of an original trace.
  for (const auto& trace : t1) {
    std::vector<DataValue> swapped_trace(trace.size());
    for (size_t i = 0; i + 1 < trace.size(); i += 2) {
      swapped_trace[i] = trace[i + 1];
      swapped_trace[i + 1] = trace[i];
    }
    EXPECT_TRUE(t2.count(swapped_trace) > 0);
  }
}

TEST_P(RandomAutomatonSweep, SControlAcceptsRealControlWords) {
  std::mt19937 rng(GetParam() + 3000);
  RegisterAutomaton a =
      MakeStateDriven(Completed(RandomAutomaton(rng, SmallOptions())).value());
  ControlAlphabet alphabet(a);
  Nba scontrol = BuildSControlNba(a, alphabet);
  Database db{Schema()};
  size_t checked = 0;
  EnumerateRuns(a, db, 3, {0, 1}, [&](const FiniteRun& run) {
    for (int ti : a.TransitionsFrom(run.states.back())) {
      const RaTransition& t = a.transition(ti);
      if (t.to != run.states[0]) continue;
      LassoRun lasso{run, 0, ti};
      if (!ValidateLassoRun(a, db, lasso).ok()) continue;
      EXPECT_TRUE(
          scontrol.AcceptsLasso(ControlWordOfLassoRun(a, alphabet, lasso)));
      ++checked;
    }
    return checked < 10;
  });
  // Some random automata admit no short lasso; that is fine.
}

TEST_P(RandomAutomatonSweep, SymbolicWitnessesRealize) {
  std::mt19937 rng(GetParam() + 4000);
  RegisterAutomaton a =
      MakeStateDriven(Completed(RandomAutomaton(rng, SmallOptions())).value());
  ControlAlphabet alphabet(a);
  auto lasso = FindSymbolicControlLasso(a, alphabet);
  if (!lasso.has_value()) return;  // empty automaton: nothing to realize
  auto witness = RealizeWitness(a, alphabet, *lasso, 6);
  ASSERT_TRUE(witness.ok()) << witness.status().ToString();
  EXPECT_TRUE(
      ValidateRunPrefix(a, witness->db, witness->run, false).ok());
}

TEST_P(RandomAutomatonSweep, SymbolicAndRegionEmptinessAgree) {
  std::mt19937 rng(GetParam() + 5000);
  RegisterAutomaton a = RandomAutomaton(rng, SmallOptions());
  auto symbolic = HasSomeRun(a);
  ASSERT_TRUE(symbolic.ok());
  Database empty_db{Schema()};
  bool over_empty = HasRunOverDatabase(a, empty_db);
  if (!*symbolic) {
    // No run over any database implies none over the empty one.
    EXPECT_FALSE(over_empty);
  } else {
    // With an empty schema the database is irrelevant: a run over some
    // database is a run over the empty one (values are unconstrained).
    EXPECT_TRUE(over_empty);
  }
}

TEST_P(RandomAutomatonSweep, Prop20ProjectionMatchesBruteForce) {
  std::mt19937 rng(GetParam() + 6000);
  RandomAutomatonOptions options = SmallOptions();
  options.num_states = 2;
  options.num_transitions = 3;
  RegisterAutomaton a = RandomAutomaton(rng, options);
  auto projected = ProjectRegisterAutomaton(a, 1);
  ASSERT_TRUE(projected.ok()) << projected.status().ToString();

  const size_t keep_len = 3;
  std::vector<DataValue> pool = {0, 1};
  std::vector<DataValue> pool_big = {0, 1, 10, 11, 12, 13};
  ExtendedAutomaton plain{PruneFrontierIncompatibleTransitions(
      MakeStateDriven(Completed(a).value()))};
  std::set<std::vector<DataValue>> truth;
  for (auto& trace : EraTraces(plain, keep_len, pool_big, 1)) {
    bool in_pool = true;
    for (DataValue v : trace) in_pool = in_pool && (v == 0 || v == 1);
    if (in_pool) truth.insert(trace);
  }
  EXPECT_EQ(truth, EraTraces(*projected, keep_len, pool, 1));
}

TEST_P(RandomAutomatonSweep, Theorem13AgreesWithProp20OnPlainAutomata) {
  std::mt19937 rng(GetParam() + 7000);
  RandomAutomatonOptions options = SmallOptions();
  options.num_states = 2;
  options.num_transitions = 3;
  RegisterAutomaton a = RandomAutomaton(rng, options);
  auto via_prop20 = ProjectRegisterAutomaton(a, 1);
  ASSERT_TRUE(via_prop20.ok());
  ExtendedAutomaton plain_era(PruneFrontierIncompatibleTransitions(
      MakeStateDriven(Completed(a).value())));
  auto via_thm13 = ProjectExtendedAutomaton(plain_era, 1);
  ASSERT_TRUE(via_thm13.ok()) << via_thm13.status().ToString();

  const size_t keep_len = 3;
  std::vector<DataValue> pool = {0, 1};
  EXPECT_EQ(EraTraces(*via_prop20, keep_len, pool, 1),
            EraTraces(*via_thm13, keep_len, pool, 1));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomAutomatonSweep, ::testing::Range(1, 20));

TEST_P(RandomAutomatonSweep, TrimPreservesLassoExistence) {
  std::mt19937 rng(GetParam() + 8000);
  RegisterAutomaton a = RandomAutomaton(rng, SmallOptions());
  RegisterAutomaton trimmed = TrimToLiveStates(a);
  EXPECT_LE(trimmed.num_states(), a.num_states());
  // Emptiness agrees before and after trimming.
  auto before = HasSomeRun(a);
  auto after = HasSomeRun(trimmed);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*before, *after);
  // And trimming is idempotent.
  RegisterAutomaton twice = TrimToLiveStates(trimmed);
  EXPECT_EQ(twice.num_states(), trimmed.num_states());
}

TEST_P(RandomAutomatonSweep, RandomEraEmptinessWitnessesValidate) {
  std::mt19937 rng(GetParam() + 9000);
  RandomAutomatonOptions options = SmallOptions();
  options.num_states = 2;
  options.num_transitions = 3;
  RegisterAutomaton base = RandomAutomaton(rng, options);
  auto completed = Completed(base);
  ASSERT_TRUE(completed.ok());
  ExtendedAutomaton era(std::move(completed).value());
  // A random constraint: (in)equality at a random exact gap.
  std::uniform_int_distribution<int> gap_dist(1, 3);
  std::uniform_int_distribution<int> coin(0, 1);
  std::uniform_int_distribution<int> reg(0, options.num_registers - 1);
  std::string expr = ".";
  int gap = gap_dist(rng);
  for (int i = 0; i < gap; ++i) expr += " .";
  const RegisterPair regs{RegisterId(reg(rng)), RegisterId(reg(rng))};
  ASSERT_TRUE(era.AddConstraintFromText(regs, coin(rng) == 0, expr).ok());
  ControlAlphabet alphabet(era.automaton());
  EraEmptinessOptions emptiness;
  emptiness.max_lasso_length = 8;
  emptiness.max_lassos = 300;
  auto result = CheckEraEmptiness(era, alphabet, emptiness);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  if (result->nonempty) {
    // The witness realizes into a constraint-satisfying concrete run.
    auto witness =
        RealizeEraWitness(era, alphabet, result->control_word, 10);
    ASSERT_TRUE(witness.ok()) << witness.status().ToString();
    EXPECT_TRUE(
        ValidateEraRunPrefix(era, witness->db, witness->run, false).ok());
  }
}

// Sweeps with relations in the schema.
class RandomRelationalSweep : public ::testing::TestWithParam<int> {};

TEST_P(RandomRelationalSweep, CompletionPreservesTracesOverDatabase) {
  std::mt19937 rng(GetParam());
  RandomAutomatonOptions options;
  options.num_registers = 1;
  options.num_states = 2;
  options.num_transitions = 3;
  options.schema.AddRelation("P", 1);
  RegisterAutomaton a = RandomAutomaton(rng, options);
  auto completed = Completed(a);
  ASSERT_TRUE(completed.ok());
  Database db(options.schema);
  db.Insert(0, {1});
  db.Insert(0, {2});
  std::vector<DataValue> pool = {0, 1, 2};
  EXPECT_EQ(Traces(a, db, 3, pool), Traces(*completed, db, 3, pool));
}

TEST_P(RandomRelationalSweep, RegionAbstractionMatchesEnumeration) {
  // If HasRunOverDatabase says no, there must be no enumerable lasso run
  // over the database's values (a weaker but meaningful check).
  std::mt19937 rng(GetParam() + 500);
  RandomAutomatonOptions options;
  options.num_registers = 1;
  options.num_states = 2;
  options.num_transitions = 3;
  options.schema.AddRelation("P", 1);
  RegisterAutomaton a = RandomAutomaton(rng, options);
  Database db(options.schema);
  db.Insert(0, {1});
  bool region = HasRunOverDatabase(a, db);
  bool found_lasso = false;
  EnumerateRuns(a, db, 4, {0, 1, 5}, [&](const FiniteRun& run) {
    for (int ti : a.TransitionsFrom(run.states.back())) {
      const RaTransition& t = a.transition(ti);
      if (t.to != run.states[0]) continue;
      LassoRun lasso{run, 0, ti};
      if (ValidateLassoRun(a, db, lasso).ok()) {
        found_lasso = true;
        return false;
      }
    }
    return true;
  });
  if (found_lasso) {
    EXPECT_TRUE(region);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomRelationalSweep,
                         ::testing::Range(1, 15));

}  // namespace
}  // namespace rav
