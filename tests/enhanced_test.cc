#include <gtest/gtest.h>

#include <set>

#include "enhanced/enhanced_automaton.h"
#include "enhanced/theorem24.h"
#include "ra/simulate.h"
#include "ra/transform.h"
#include "test_util.h"

namespace rav {
namespace {

// Example 23 of the paper: 2 registers, states p and q (p initial+final);
// database: binary E and unary U. δ (from p) and δ' (from q) both keep
// register 2 (x2 = y2) and require U(x1); δ asserts E(x2, x1), δ' asserts
// ¬E(x2, x1).
RegisterAutomaton MakeExample23() {
  Schema s;
  RelationId e = s.AddRelation("E", 2);
  RelationId u = s.AddRelation("U", 1);
  RegisterAutomaton a(2, s);
  StateId p = a.AddState("p");
  StateId q = a.AddState("q");
  a.SetInitial(p);
  a.SetFinal(p);

  TypeBuilder d1 = a.NewGuardBuilder();
  d1.AddEq(d1.X(1), d1.Y(1));
  d1.AddAtom(u, {d1.X(0)}, true);
  d1.AddAtom(e, {d1.X(1), d1.X(0)}, true);
  a.AddTransition(p, d1.Build().value(), q);

  TypeBuilder d2 = a.NewGuardBuilder();
  d2.AddEq(d2.X(1), d2.Y(1));
  d2.AddAtom(u, {d2.X(0)}, true);
  d2.AddAtom(e, {d2.X(1), d2.X(0)}, false);
  a.AddTransition(q, d2.Build().value(), p);
  return a;
}

TEST(EnhancedAutomatonTest, TupleConstraintChecking) {
  RegisterAutomaton a(1, Schema());
  StateId q = a.AddState("q");
  a.SetInitial(q);
  a.SetFinal(q);
  a.AddTransition(q, a.NewGuardBuilder().Build().value(), q);
  EnhancedAutomaton enhanced(a);
  // Arity-1 constraint on factors of length exactly 3 (value at n must
  // differ from value at n+2).
  {
    auto r = Regex::Parse(". . .", [](const std::string&) { return -1; });
    ASSERT_TRUE(r.ok());
    TupleInequalityConstraint c;
    c.pair_dfa = r->ToDfa(1);
    c.regs_a = {0};
    c.offs_a = {0};
    c.regs_b = {0};
    c.offs_b = {0};
    ASSERT_TRUE(enhanced.AddTupleConstraint(std::move(c)).ok());
  }
  FiniteRun run;
  run.values = {{1}, {2}, {3}, {4}};
  run.states = testing::StateIds({0, 0, 0, 0});
  run.transition_indices = {0, 0, 0};
  EXPECT_TRUE(CheckEnhancedRunConstraints(enhanced, run).ok());
  run.values[2] = {1};  // position 0 vs 2 now equal
  EXPECT_FALSE(CheckEnhancedRunConstraints(enhanced, run).ok());
}

TEST(EnhancedAutomatonTest, PairConstraintWithOffsets) {
  RegisterAutomaton a(2, Schema());
  StateId q = a.AddState("q");
  a.SetInitial(q);
  a.SetFinal(q);
  a.AddTransition(q, a.NewGuardBuilder().Build().value(), q);
  EnhancedAutomaton enhanced(a);
  // The pair (d_n[1], d_{n+1}[1]) must differ from (d_m[1], d_{m+1}[1])
  // for factors of length 3 (m = n + 2).
  {
    auto r = Regex::Parse(". . .", [](const std::string&) { return -1; });
    TupleInequalityConstraint c;
    c.pair_dfa = r->ToDfa(1);
    c.regs_a = {0, 0};
    c.offs_a = {0, 1};
    c.regs_b = {0, 0};
    c.offs_b = {0, 1};
    ASSERT_TRUE(enhanced.AddTupleConstraint(std::move(c)).ok());
  }
  FiniteRun run;
  run.values = {{1, 0}, {2, 0}, {1, 0}, {3, 0}};
  run.states = testing::StateIds({0, 0, 0, 0});
  run.transition_indices = {0, 0, 0};
  // Pairs: (1,2) at 0 vs (1,3) at 2 — differ: OK.
  EXPECT_TRUE(CheckEnhancedRunConstraints(enhanced, run).ok());
  run.values[3] = {2, 0};
  // Now (1,2) vs (1,2): violation.
  EXPECT_FALSE(CheckEnhancedRunConstraints(enhanced, run).ok());
}

TEST(EnhancedAutomatonTest, SelectedValues) {
  RegisterAutomaton a(1, Schema());
  StateId p = a.AddState("p");
  StateId q = a.AddState("q");
  a.SetInitial(p);
  a.SetFinal(p);
  Type empty = a.NewGuardBuilder().Build().value();
  a.AddTransition(p, empty, q);
  a.AddTransition(q, empty, p);
  EnhancedAutomaton enhanced(a);
  // Selector: prefixes ending in state p.
  auto r = Regex::Parse(".* p", [&](const std::string& n) {
    return n == "p" ? 0 : (n == "q" ? 1 : -1);
  });
  ASSERT_TRUE(r.ok());
  FinitenessConstraint fc;
  fc.reg = 0;
  fc.selector = r->ToDfa(2);
  FiniteRun run;
  run.values = {{5}, {6}, {7}, {6}};
  run.states = testing::StateIds({0, 1, 0, 1});
  run.transition_indices = {0, 1, 0};
  std::vector<DataValue> vals = SelectedValues(fc, run);
  EXPECT_EQ(vals, (std::vector<DataValue>{5, 7}));
}

// --- Theorem 24 on Example 23 ---

TEST(Theorem24Test, Example23ConstructionShape) {
  RegisterAutomaton a = MakeExample23();
  Theorem24Stats stats;
  auto enhanced = ProjectWithHiddenDatabase(a, 1, &stats);
  ASSERT_TRUE(enhanced.ok()) << enhanced.status().ToString();
  EXPECT_EQ(enhanced->automaton().num_registers(), 1);
  EXPECT_TRUE(enhanced->automaton().schema().empty());
  // U(x1) puts register 1 into the adom at every position: a finiteness
  // constraint exists.
  EXPECT_EQ(stats.num_finiteness_constraints, 1);
  // The E / ¬E literal pair with the hidden register-2 components matched
  // across the factor yields tuple constraints.
  EXPECT_GT(stats.num_tuple_constraints, 0);
  EXPECT_EQ(stats.skipped_literal_pairs, 0);
}

TEST(Theorem24Test, Example23AlternationEnforced) {
  RegisterAutomaton a = MakeExample23();
  auto enhanced = ProjectWithHiddenDatabase(a, 1);
  ASSERT_TRUE(enhanced.ok());

  // In A, register 2 is constant through the run and E(x2, x1) holds at
  // even positions, ¬E(x2, x1) at odd positions. Hence a value appearing
  // at an even position can never appear at an odd position. The
  // projected enhanced automaton must reject such traces...
  FiniteRun bad;
  bad.values = {{7}, {7}, {8}};
  bad.states = testing::StateIds({0, 1, 0});  // guards alternate from p
  bad.transition_indices.clear();
  // Recover transition indices from the projected automaton.
  const RegisterAutomaton& b = enhanced->automaton();
  // Map: the state-driven states keep their origin names ("p#0" / "q#1").
  StateId p_state, q_state;
  for (StateId s : b.States()) {
    if (b.state_name(s)[0] == 'p') p_state = s;
    if (b.state_name(s)[0] == 'q') q_state = s;
  }
  ASSERT_TRUE(p_state.valid());
  ASSERT_TRUE(q_state.valid());
  bad.states = {p_state, q_state, p_state};
  for (size_t n = 0; n + 1 < bad.states.size(); ++n) {
    int found = -1;
    for (int ti : b.TransitionsFrom(bad.states[n])) {
      if (b.transition(ti).to == bad.states[n + 1]) {
        found = ti;
        break;
      }
    }
    ASSERT_GE(found, 0);
    bad.transition_indices.push_back(found);
  }
  // Value 7 at position 0 (E asserted) and position 1 (¬E asserted):
  // with register 2 constant these atoms clash — must be rejected.
  EXPECT_FALSE(CheckEnhancedRunConstraints(*enhanced, bad).ok());

  // ... while alternating traces with disjoint odd/even values are fine.
  FiniteRun good = bad;
  good.values = {{7}, {8}, {7}};
  EXPECT_TRUE(CheckEnhancedRunConstraints(*enhanced, good).ok());
}

TEST(Theorem24Test, SoundnessOverConcreteDatabases) {
  // Every projected trace of a real run of A over a concrete database
  // must satisfy the enhanced automaton's constraints.
  RegisterAutomaton a = MakeExample23();
  auto enhanced = ProjectWithHiddenDatabase(a, 1);
  ASSERT_TRUE(enhanced.ok());
  // The construction (with the default non-completing options) runs on
  // MakeStateDriven(a), so the state spaces coincide position-wise.
  RegisterAutomaton sd = MakeStateDriven(a);

  Schema s = a.schema();
  Database db(s);
  RelationId e_rel = s.FindRelation("E");
  RelationId u_rel = s.FindRelation("U");
  db.Insert(u_rel, {0});
  db.Insert(u_rel, {1});
  db.Insert(e_rel, {5, 0});  // node 5 points at 0 only

  // Enumerate runs of the original (completed, state-driven) automaton
  // and replay their projections through the enhanced constraints.
  // The last position of a run prefix has no outgoing transition, so its
  // guard's literals are unchecked on the original side while the
  // enhanced constraints would anchor on them: trim it before comparing.
  size_t runs_checked = 0;
  EnumerateRuns(sd, db, 4, {0, 1, 5}, [&](const FiniteRun& run) {
    FiniteRun projected;
    projected.values = ProjectValues(run.values, 1);
    projected.states = run.states;  // same state space by construction
    projected.transition_indices = run.transition_indices;
    projected.values.pop_back();
    projected.states.pop_back();
    projected.transition_indices.pop_back();
    EXPECT_TRUE(CheckEnhancedRunConstraints(*enhanced, projected).ok())
        << "projected run rejected: " << run.ToString(sd);
    ++runs_checked;
    return true;
  });
  EXPECT_GT(runs_checked, 0u);
}

// The paper's ternary variant of Example 23: E is ternary and the guards
// use E(x2, x1, y1) / ¬E(x2, x1, y1). A single value may now appear at
// both even and odd positions, but the *pair* (d_α[1], d_{α+1}[1]) at an
// asserting position can never equal the pair at a denying position —
// this is exactly what tuple inequality constraints of arity 2 exist for.
TEST(Theorem24Test, TernaryExample23NeedsArity2TupleConstraints) {
  Schema s;
  RelationId e = s.AddRelation("E", 3);
  RegisterAutomaton a(2, s);
  StateId p = a.AddState("p");
  StateId q = a.AddState("q");
  a.SetInitial(p);
  a.SetFinal(p);
  TypeBuilder d1 = a.NewGuardBuilder();
  d1.AddEq(d1.X(1), d1.Y(1));
  d1.AddAtom(e, {d1.X(1), d1.X(0), d1.Y(0)}, true);
  a.AddTransition(p, d1.Build().value(), q);
  TypeBuilder d2 = a.NewGuardBuilder();
  d2.AddEq(d2.X(1), d2.Y(1));
  d2.AddAtom(e, {d2.X(1), d2.X(0), d2.Y(0)}, false);
  a.AddTransition(q, d2.Build().value(), p);

  Theorem24Stats stats;
  auto enhanced = ProjectWithHiddenDatabase(a, 1, &stats);
  ASSERT_TRUE(enhanced.ok()) << enhanced.status().ToString();
  EXPECT_EQ(stats.skipped_literal_pairs, 0);
  ASSERT_GT(stats.num_tuple_constraints, 0);
  // The synthesized tuple constraints have arity 2 (the two visible
  // components x1 at offset 0 and y1 at offset 1).
  bool found_arity2 = false;
  for (const TupleInequalityConstraint& c : enhanced->tuple_constraints()) {
    if (c.arity() == 2) {
      found_arity2 = true;
      EXPECT_EQ(c.offs_a, (std::vector<int>{0, 1}));
    }
  }
  EXPECT_TRUE(found_arity2);

  // Semantics: with register 2 constant, the pair at an E-position must
  // differ from the pair at a ¬E-position. Value 7 followed by 8 at both
  // an even and an odd anchor violates; distinct pairs are fine.
  const RegisterAutomaton& b = enhanced->automaton();
  StateId bp, bq;
  for (StateId st : b.States()) {
    if (b.state_name(st)[0] == 'p') bp = st;
    if (b.state_name(st)[0] == 'q') bq = st;
  }
  auto transition_between = [&](StateId from, StateId to) {
    for (int ti : b.TransitionsFrom(from)) {
      if (b.transition(ti).to == to) return ti;
    }
    return -1;
  };
  FiniteRun run;
  run.states = {bp, bq, bp, bq};
  run.transition_indices = {transition_between(bp, bq),
                            transition_between(bq, bp),
                            transition_between(bp, bq)};
  run.values = {{7}, {8}, {7}, {8}};  // pair (7,8) at positions 0 and...
  // anchors 0 (E) and 1 (¬E): pairs (7,8) vs (8,7) differ; anchors 0 and
  // 3? 3 is ¬E with pair sticking out of the prefix: unchecked. Anchor 2
  // (E) pair (7,8) vs anchor 1 (¬E) pair (8,7): differ. So this one is
  // admitted...
  EXPECT_TRUE(CheckEnhancedRunConstraints(*enhanced, run).ok());
  // ...while repeating the same pair at an adjacent ¬E anchor violates:
  // values 7 8 7 with anchors 0 (E, pair (7,8)) and 1 (¬E, pair (8,7))
  // fine, but 7 7 7: pair (7,7) at anchors 0 (E) and 1 (¬E): violation.
  run.values = {{7}, {7}, {7}, {8}};
  EXPECT_FALSE(CheckEnhancedRunConstraints(*enhanced, run).ok());
  // A single value recurring at even and odd positions is now allowed
  // (unlike the binary Example 23), as the paper notes: 7 8 7 with pairs
  // (7,8) / (8,7) — checked above to be admitted.
}

TEST(Theorem24Test, FullProjectionOfDatabaseFreeAutomatonIsFaithful) {
  // With an empty schema and m = k the construction reduces to the plain
  // completion: no finiteness or tuple constraints are needed.
  RegisterAutomaton a(1, Schema());
  StateId q = a.AddState("q");
  a.SetInitial(q);
  a.SetFinal(q);
  TypeBuilder g = a.NewGuardBuilder();
  g.AddNeq(g.X(0), g.Y(0));
  a.AddTransition(q, g.Build().value(), q);
  Theorem24Stats stats;
  auto enhanced = ProjectWithHiddenDatabase(a, 1, &stats);
  ASSERT_TRUE(enhanced.ok());
  EXPECT_EQ(stats.num_finiteness_constraints, 0);
  EXPECT_EQ(stats.num_tuple_constraints, 0);
  // The consecutive-distinct inequality survives as an e≠ tuple form.
  EXPECT_GT(stats.num_inequality_constraints, 0);
}

}  // namespace
}  // namespace rav
