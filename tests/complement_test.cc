#include <gtest/gtest.h>

#include <random>

#include "automata/complement.h"
#include "automata/nba.h"
#include "ra/control.h"
#include "ra/transform.h"
#include "test_util.h"

namespace rav {
namespace {

// Accepts words over {0,1} with infinitely many 0s.
Nba InfinitelyManyZeros() {
  Nba nba(2);
  int s0 = nba.AddState();
  int s1 = nba.AddState();
  nba.AddTransition(s0, 1, s0);
  nba.AddTransition(s0, 0, s1);
  nba.AddTransition(s1, 0, s1);
  nba.AddTransition(s1, 1, s0);
  nba.SetInitial(s0);
  nba.SetAccepting(s1);
  return nba;
}

TEST(ComplementTest, InfManyZerosComplementIsFinitelyManyZeros) {
  Nba a = InfinitelyManyZeros();
  auto complement = ComplementNba(a);
  ASSERT_TRUE(complement.ok()) << complement.status().ToString();
  // 1^ω has finitely many zeros: in the complement.
  EXPECT_TRUE(complement->AcceptsLasso(LassoWord{{}, {1}}));
  EXPECT_TRUE(complement->AcceptsLasso(LassoWord{{0, 0, 1}, {1}}));
  // (01)^ω has infinitely many zeros: not in the complement.
  EXPECT_FALSE(complement->AcceptsLasso(LassoWord{{}, {0, 1}}));
  EXPECT_FALSE(complement->AcceptsLasso(LassoWord{{}, {0}}));
}

TEST(ComplementTest, EmptyAutomatonComplementIsUniversal) {
  Nba empty(2);
  int s = empty.AddState();
  empty.AddTransition(s, 0, s);
  empty.AddTransition(s, 1, s);
  empty.SetInitial(s);  // no accepting state: empty language
  auto complement = ComplementNba(empty);
  ASSERT_TRUE(complement.ok());
  EXPECT_TRUE(complement->AcceptsLasso(LassoWord{{}, {0}}));
  EXPECT_TRUE(complement->AcceptsLasso(LassoWord{{1, 0}, {1, 1, 0}}));
}

TEST(ComplementTest, IntersectionWithComplementIsEmpty) {
  Nba a = InfinitelyManyZeros();
  auto complement = ComplementNba(a);
  ASSERT_TRUE(complement.ok());
  EXPECT_TRUE(a.Intersect(*complement).IsEmpty());
}

// Property sweep: membership of random lassos is complementary.
class ComplementSweep : public ::testing::TestWithParam<int> {};

TEST_P(ComplementSweep, MembershipIsComplementary) {
  std::mt19937 rng(GetParam());
  // Random small NBA over {0,1}.
  Nba nba(2);
  std::uniform_int_distribution<int> state_count(1, 3);
  const int n = state_count(rng);
  for (int i = 0; i < n; ++i) nba.AddState();
  std::uniform_int_distribution<int> state(0, n - 1);
  std::uniform_int_distribution<int> coin(0, 1);
  for (int s = 0; s < n; ++s) {
    for (int symbol = 0; symbol < 2; ++symbol) {
      if (coin(rng) == 0) nba.AddTransition(s, symbol, state(rng));
    }
  }
  nba.SetInitial(state(rng));
  nba.SetAccepting(state(rng));

  auto complement = ComplementNba(nba);
  ASSERT_TRUE(complement.ok());
  for (int trial = 0; trial < 10; ++trial) {
    LassoWord w;
    std::uniform_int_distribution<int> len(1, 3);
    int plen = len(rng) - 1;
    int clen = len(rng);
    for (int i = 0; i < plen; ++i) w.prefix.push_back(coin(rng));
    for (int i = 0; i < clen; ++i) w.cycle.push_back(coin(rng));
    EXPECT_NE(nba.AcceptsLasso(w), complement->AcceptsLasso(w))
        << w.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ComplementSweep, ::testing::Range(1, 25));

TEST(LanguageInclusionTest, BasicInclusions) {
  Nba inf0 = InfinitelyManyZeros();
  // "always 0" ⊆ "infinitely many 0s".
  Nba always0(2);
  {
    int s = always0.AddState();
    always0.AddTransition(s, 0, s);
    always0.SetInitial(s);
    always0.SetAccepting(s);
  }
  EXPECT_TRUE(NbaLanguageIncluded(always0, inf0).value());
  EXPECT_FALSE(NbaLanguageIncluded(inf0, always0).value());
  EXPECT_TRUE(NbaLanguageEquivalent(inf0, inf0).value());
}

TEST(LanguageInclusionTest, ComplementBudgetIsEnforced) {
  // Rank-based complementation is (2n)^n; a 56-state SControl automaton
  // must hit the budget rather than hang.
  RegisterAutomaton sd = MakeStateDriven(
      Completed(rav::testing::MakeExample1()).value());
  ControlAlphabet alphabet(sd);
  Nba scontrol = BuildSControlNba(sd, alphabet);
  auto complement = ComplementNba(scontrol, /*max_states=*/5000);
  ASSERT_FALSE(complement.ok());
  EXPECT_EQ(complement.status().code(), StatusCode::kResourceExhausted);
}

TEST(LanguageInclusionTest, PruningPreservesSControlBySampling) {
  // Frontier-dead transitions are already excluded from the SControl
  // language, so pruning must not change it. Full ω-equivalence is out of
  // reach of rank-based complementation at this size; sample accepting
  // lassos of each automaton and check membership in the other.
  RegisterAutomaton sd = MakeStateDriven(
      Completed(rav::testing::MakeExample1()).value());
  RegisterAutomaton pruned = PruneFrontierIncompatibleTransitions(sd);
  ControlAlphabet alphabet(sd);  // same guards and symbol order in both
  ControlAlphabet alphabet2(pruned);
  ASSERT_EQ(alphabet.size(), alphabet2.size());
  Nba a = BuildSControlNba(sd, alphabet);
  Nba b = BuildSControlNba(pruned, alphabet2);
  size_t checked = 0;
  a.EnumerateAcceptingLassos(6, 60, [&](const LassoWord& w) {
    EXPECT_TRUE(b.AcceptsLasso(w)) << w.ToString();
    ++checked;
    return true;
  });
  EXPECT_GT(checked, 0u);
  b.EnumerateAcceptingLassos(6, 60, [&](const LassoWord& w) {
    EXPECT_TRUE(a.AcceptsLasso(w)) << w.ToString();
    return true;
  });
}

}  // namespace
}  // namespace rav
