#include <gtest/gtest.h>

#include "relational/database.h"
#include "relational/formula.h"
#include "relational/schema.h"

namespace rav {
namespace {

Schema ReviewSchema() {
  Schema s;
  s.AddRelation("Topic", 2);     // Topic(paper, topic)
  s.AddRelation("Prefers", 2);   // Prefers(reviewer, topic)
  s.AddConstant("chair");
  return s;
}

TEST(SchemaTest, NamesAndArities) {
  Schema s = ReviewSchema();
  EXPECT_EQ(s.num_relations(), 2);
  EXPECT_EQ(s.num_constants(), 1);
  EXPECT_EQ(s.arity(s.FindRelation("Topic")), 2);
  EXPECT_EQ(s.FindRelation("Missing"), -1);
  EXPECT_EQ(s.constant_name(0), "chair");
  EXPECT_FALSE(s.empty());
  EXPECT_TRUE(Schema().empty());
}

TEST(DatabaseTest, InsertContainsErase) {
  Schema s = ReviewSchema();
  RelationId topic = s.FindRelation("Topic");
  Database db(s);
  db.Insert(topic, {1, 10});
  db.Insert(topic, {1, 10});  // duplicate: no-op
  EXPECT_EQ(db.RelationSize(topic), 1u);
  EXPECT_TRUE(db.Contains(topic, {1, 10}));
  EXPECT_FALSE(db.Contains(topic, {10, 1}));
  EXPECT_TRUE(db.Erase(topic, {1, 10}));
  EXPECT_FALSE(db.Erase(topic, {1, 10}));
}

TEST(DatabaseTest, ActiveDomainIncludesConstants) {
  Schema s = ReviewSchema();
  Database db(s);
  db.Insert(s.FindRelation("Topic"), {7, 3});
  db.SetConstant(0, 99);
  std::vector<DataValue> adom = db.ActiveDomain();
  EXPECT_EQ(adom, (std::vector<DataValue>{3, 7, 99}));
  EXPECT_EQ(db.constant(0), 99);
}

TEST(FormulaTest, EqualityEvaluation) {
  Schema s;
  Database db(s);
  Formula f = Formula::And(Formula::Eq(Term::Var(0), Term::Var(1)),
                           Formula::Neq(Term::Var(1), Term::Var(2)));
  EXPECT_TRUE(f.Eval(db, {5, 5, 6}));
  EXPECT_FALSE(f.Eval(db, {5, 5, 5}));
  EXPECT_FALSE(f.Eval(db, {4, 5, 6}));
  EXPECT_TRUE(f.EvalEqualityOnly({5, 5, 6}));
}

TEST(FormulaTest, RelationalEvaluation) {
  Schema s = ReviewSchema();
  RelationId prefers = s.FindRelation("Prefers");
  Database db(s);
  db.Insert(prefers, {8, 3});
  Formula f = Formula::Rel(prefers, {Term::Var(0), Term::Var(1)});
  EXPECT_TRUE(f.Eval(db, {8, 3}));
  EXPECT_FALSE(f.Eval(db, {3, 8}));
  Formula g = Formula::NotRel(prefers, {Term::Var(0), Term::Var(1)});
  EXPECT_TRUE(g.Eval(db, {3, 8}));
}

TEST(FormulaTest, ConstantsResolveThroughDatabase) {
  Schema s = ReviewSchema();
  Database db(s);
  db.SetConstant(0, 42);
  Formula f = Formula::Eq(Term::Var(0), Term::Const(0));
  EXPECT_TRUE(f.Eval(db, {42}));
  EXPECT_FALSE(f.Eval(db, {41}));
}

TEST(FormulaTest, BooleanStructure) {
  Schema s;
  Database db(s);
  Formula t = Formula::True();
  Formula f = Formula::False();
  EXPECT_TRUE(Formula::Or(f, t).Eval(db, {}));
  EXPECT_FALSE(Formula::And(f, t).Eval(db, {}));
  EXPECT_TRUE(Formula::Not(f).Eval(db, {}));
  EXPECT_TRUE(Formula::OrAll({}).Eval(db, {}) == false);
  EXPECT_TRUE(Formula::AndAll({}).Eval(db, {}));
}

TEST(FormulaTest, MaxVariableIndex) {
  Formula f = Formula::And(Formula::Eq(Term::Var(0), Term::Var(7)),
                           Formula::Eq(Term::Var(2), Term::Var(3)));
  EXPECT_EQ(f.MaxVariableIndex(), 7);
  EXPECT_EQ(Formula::True().MaxVariableIndex(), -1);
}

TEST(FormulaTest, ToStringRendersRegisters) {
  Schema s = ReviewSchema();
  Formula f = Formula::Eq(Term::Var(0), Term::Var(2));
  // With k=2: var 0 is x1, var 2 is y1.
  EXPECT_EQ(f.ToString(s, 2), "x1 = y1");
}

}  // namespace
}  // namespace rav
