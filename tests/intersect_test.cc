#include <gtest/gtest.h>

#include "automata/regex.h"
#include "ra/intersect.h"
#include "ra/lasso_search.h"
#include "ra/simulate.h"
#include "test_util.h"

namespace rav {
namespace {

using testing::MakeExample1;

// NBA over Example 1's states accepting exactly (q1 q2 q2)^ω.
Nba ThreePeriodic(const RegisterAutomaton& a) {
  StateId q1 = a.FindState("q1");
  StateId q2 = a.FindState("q2");
  Nba nba(a.num_states());
  int s0 = nba.AddState();
  int s1 = nba.AddState();
  int s2 = nba.AddState();
  nba.AddTransition(s0, q1.value(), s1);
  nba.AddTransition(s1, q2.value(), s2);
  nba.AddTransition(s2, q2.value(), s0);
  nba.SetInitial(s0);
  nba.SetAccepting(s0);
  return nba;
}

TEST(IntersectTest, RejectsWrongAlphabet) {
  RegisterAutomaton a = MakeExample1();
  Nba wrong(5);
  wrong.AddState();
  wrong.SetInitial(0);
  EXPECT_FALSE(IntersectWithStateNba(a, wrong).ok());
}

TEST(IntersectTest, RunsFollowTheStatePattern) {
  RegisterAutomaton a = MakeExample1();
  auto product = IntersectWithStateNba(a, ThreePeriodic(a));
  ASSERT_TRUE(product.ok()) << product.status().ToString();

  Database db{Schema()};
  // Every enumerated product run projects to the state pattern
  // q1 q2 q2 q1 q2 q2 ... (recovered via state names "<orig>&...").
  size_t runs = 0;
  EnumerateRuns(*product, db, 5, {0, 1}, [&](const FiniteRun& run) {
    static const char* expected[] = {"q1", "q2", "q2", "q1", "q2"};
    for (size_t n = 0; n < run.length(); ++n) {
      std::string name = product->state_name(run.states[n]);
      EXPECT_EQ(name.substr(0, 2), expected[n]);
    }
    ++runs;
    return true;
  });
  EXPECT_GT(runs, 0u);

  // And accepting lassos exist (the pattern is realizable).
  auto lasso = FindLassoRunByEnumeration(*product, db, 7, {0, 1});
  EXPECT_TRUE(lasso.has_value());
}

TEST(IntersectTest, EmptyWhenPatternUnrealizable) {
  // Pattern q2^ω: Example 1 must start in q1 (the only initial state), so
  // the intersection has no runs at all.
  RegisterAutomaton a = MakeExample1();
  StateId q2 = a.FindState("q2");
  Nba nba(a.num_states());
  int s = nba.AddState();
  nba.AddTransition(s, q2.value(), s);
  nba.SetInitial(s);
  nba.SetAccepting(s);
  auto product = IntersectWithStateNba(a, nba);
  ASSERT_TRUE(product.ok());
  EXPECT_TRUE(product->InitialStates().empty());
}

TEST(IntersectTest, BuchiConjunctionRequiresBothConditions) {
  // Automaton: two states, final state f; NBA accepting state traces that
  // visit g infinitely often. The product's accepting lassos must visit
  // both f and g infinitely often.
  RegisterAutomaton a(1, Schema());
  StateId f = a.AddState("f");
  StateId g = a.AddState("g");
  a.SetInitial(f);
  a.SetFinal(f);
  Type empty = a.NewGuardBuilder().Build().value();
  a.AddTransition(f, empty, f);
  a.AddTransition(f, empty, g);
  a.AddTransition(g, empty, f);
  a.AddTransition(g, empty, g);

  // NBA: infinitely many g's.
  Nba nba(a.num_states());
  int s0 = nba.AddState();
  int s1 = nba.AddState();
  nba.AddTransition(s0, f.value(), s0);
  nba.AddTransition(s0, g.value(), s1);
  nba.AddTransition(s1, g.value(), s1);
  nba.AddTransition(s1, f.value(), s0);
  nba.SetInitial(s0);
  nba.SetAccepting(s1);

  auto product = IntersectWithStateNba(a, nba);
  ASSERT_TRUE(product.ok());
  Database db{Schema()};
  auto lasso = FindLassoRunByEnumeration(*product, db, 6, {0});
  ASSERT_TRUE(lasso.has_value());
  // The accepting cycle must contain both an f-state and a g-state.
  bool has_f = false, has_g = false;
  for (size_t n = lasso->cycle_start; n < lasso->spine.length(); ++n) {
    char c = product->state_name(lasso->spine.states[n])[0];
    has_f = has_f || c == 'f';
    has_g = has_g || c == 'g';
  }
  EXPECT_TRUE(has_f);
  EXPECT_TRUE(has_g);
}

}  // namespace
}  // namespace rav
