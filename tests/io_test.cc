#include <gtest/gtest.h>

#include "automata/regex.h"
#include "enhanced/enhanced_automaton.h"
#include "io/text_format.h"
#include "ra/simulate.h"

namespace rav {
namespace {

constexpr char kExample1[] = R"(
# Example 1 of the paper.
automaton {
  registers 2
  state q1 initial final
  state q2
  transition q1 -> q2 { x1 = x2  x2 = y2 }
  transition q2 -> q2 { x2 = y2 }
  transition q2 -> q1 { x2 = y2  y1 = y2 }
}
)";

constexpr char kWithSchema[] = R"(
automaton {
  registers 1
  schema { relation P/1 relation E/2 constant c }
  state q initial final
  transition q -> q { P(x1)  !E(x1, y1)  x1 != c }
}
)";

constexpr char kExample5[] = R"(
automaton {
  registers 1
  state p1 initial final
  state p2
  transition p1 -> p2 { }
  transition p2 -> p2 { }
  transition p2 -> p1 { }
  constraint eq 1 1 "p1 p2* p1"
}
)";

TEST(TextFormatTest, ParsesExample1) {
  auto a = ParseRegisterAutomaton(kExample1);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  EXPECT_EQ(a->num_registers(), 2);
  EXPECT_EQ(a->num_states(), 2);
  EXPECT_EQ(a->num_transitions(), 3);
  EXPECT_TRUE(a->IsInitial(a->FindState("q1")));
  EXPECT_TRUE(a->IsFinal(a->FindState("q1")));
  // δ1 forces x1 = x2.
  const Type& d1 = a->transition(0).guard;
  EXPECT_TRUE(d1.AreEqual(0, 1));
  EXPECT_TRUE(d1.AreEqual(1, 3));
}

TEST(TextFormatTest, ParsesSchemaLiteralsAndConstants) {
  auto era = ParseExtendedAutomaton(kWithSchema);
  ASSERT_TRUE(era.ok()) << era.status().ToString();
  const RegisterAutomaton& a = era->automaton();
  EXPECT_EQ(a.schema().num_relations(), 2);
  EXPECT_EQ(a.schema().num_constants(), 1);
  const Type& guard = a.transition(0).guard;
  EXPECT_EQ(guard.atoms().size(), 2u);
  EXPECT_TRUE(guard.AreDistinct(0, guard.ConstantElement(0)));
}

TEST(TextFormatTest, ParsesConstraints) {
  auto era = ParseExtendedAutomaton(kExample5);
  ASSERT_TRUE(era.ok()) << era.status().ToString();
  ASSERT_EQ(era->constraints().size(), 1u);
  EXPECT_TRUE(era->constraints()[0].is_equality);
  EXPECT_EQ(era->constraints()[0].i, RegisterId(0));
}

TEST(TextFormatTest, RejectsPlainParseWithConstraints) {
  EXPECT_FALSE(ParseRegisterAutomaton(kExample5).ok());
}

TEST(TextFormatTest, ErrorsCarryLineAndColumn) {
  auto bad = ParseRegisterAutomaton("automaton {\n  registers 1\n  bogus\n}");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("(3:3)"), std::string::npos);
}

TEST(TextFormatTest, RecordsDeclarationLocations) {
  auto era = ParseExtendedAutomaton(
      "automaton {\n"
      "  registers 1\n"
      "  state q1 initial final\n"
      "  state q2\n"
      "  transition q1 -> q2 { }\n"
      "  transition q2 -> q1 { }\n"
      "  constraint eq 1 1 \"q1 q2* q1\"\n"
      "}\n");
  ASSERT_TRUE(era.ok());
  const RegisterAutomaton& a = era->automaton();
  EXPECT_EQ(a.state_location(StateId(0)), (SourceLocation{3, 3}));
  EXPECT_EQ(a.state_location(StateId(1)), (SourceLocation{4, 3}));
  EXPECT_EQ(a.transition_location(0), (SourceLocation{5, 3}));
  EXPECT_EQ(a.transition_location(1), (SourceLocation{6, 3}));
  ASSERT_EQ(era->constraints().size(), 1u);
  EXPECT_EQ(era->constraints()[0].loc, (SourceLocation{7, 3}));
}

TEST(TextFormatTest, RejectsBadRegisterIndex) {
  auto bad = ParseRegisterAutomaton(
      "automaton { registers 1 state q initial final "
      "transition q -> q { x2 = y1 } }");
  EXPECT_FALSE(bad.ok());
}

TEST(TextFormatTest, RejectsUnknownState) {
  auto bad = ParseRegisterAutomaton(
      "automaton { registers 1 state q initial final "
      "transition q -> r { } }");
  EXPECT_FALSE(bad.ok());
}

// Fuzz-found: these used to abort (RAV_CHECK / uncaught std::out_of_range)
// instead of returning a parse error.
TEST(TextFormatTest, RejectsDuplicateSchemaNames) {
  auto dup_rel = ParseRegisterAutomaton(
      "automaton { registers 1 schema { relation r/1 relation r/2 } "
      "state q initial final transition q -> q { x1 = y1 } }");
  EXPECT_FALSE(dup_rel.ok());
  auto dup_const = ParseRegisterAutomaton(
      "automaton { registers 1 schema { constant c constant c } "
      "state q initial final transition q -> q { x1 = y1 } }");
  EXPECT_FALSE(dup_const.ok());
}

TEST(TextFormatTest, RejectsOutOfRangeNumbers) {
  auto bad = ParseRegisterAutomaton(
      "automaton { registers 99999999999999999999 state q initial final "
      "transition q -> q { x1 = y1 } }");
  EXPECT_FALSE(bad.ok());
}

TEST(TextFormatTest, RejectsUnsatisfiableGuard) {
  auto bad = ParseRegisterAutomaton(
      "automaton { registers 1 state q initial final "
      "transition q -> q { x1 = y1  x1 != y1 } }");
  EXPECT_FALSE(bad.ok());
}

TEST(TextFormatTest, RoundTrip) {
  auto a = ParseRegisterAutomaton(kExample1);
  ASSERT_TRUE(a.ok());
  std::string printed = ToTextFormat(*a);
  auto reparsed = ParseRegisterAutomaton(printed);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString() << "\n"
                             << printed;
  EXPECT_EQ(reparsed->num_states(), a->num_states());
  EXPECT_EQ(reparsed->num_transitions(), a->num_transitions());
  for (int ti = 0; ti < a->num_transitions(); ++ti) {
    EXPECT_TRUE(reparsed->transition(ti).guard == a->transition(ti).guard);
  }
}

TEST(TextFormatTest, RoundTripWithSchemaAndConstraints) {
  auto era = ParseExtendedAutomaton(kWithSchema);
  ASSERT_TRUE(era.ok());
  auto reparsed = ParseExtendedAutomaton(ToTextFormat(*era));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_TRUE(reparsed->automaton().transition(0).guard ==
              era->automaton().transition(0).guard);

  // Extended round trip: the regex is preserved via its description.
  auto era5 = ParseExtendedAutomaton(kExample5);
  ASSERT_TRUE(era5.ok());
  auto reparsed5 = ParseExtendedAutomaton(ToTextFormat(*era5));
  ASSERT_TRUE(reparsed5.ok()) << reparsed5.status().ToString();
  EXPECT_EQ(reparsed5->constraints().size(), 1u);
}

TEST(TextFormatTest, ParsedAutomatonRuns) {
  auto a = ParseRegisterAutomaton(kExample1);
  ASSERT_TRUE(a.ok());
  Database db{Schema()};
  size_t runs = EnumerateRuns(*a, db, 3, {0, 1},
                              [](const FiniteRun&) { return true; });
  EXPECT_GT(runs, 0u);
}

TEST(TextFormatTest, EnhancedAutomatonRendering) {
  // Build a tiny enhanced automaton and render it: equality constraints
  // become parseable lines, tuple/finiteness constraints become annotated
  // comments.
  RegisterAutomaton a(1, Schema());
  StateId q = a.AddState("q");
  a.SetInitial(q);
  a.SetFinal(q);
  a.AddTransition(q, a.NewGuardBuilder().Build().value(), q);
  EnhancedAutomaton enhanced(a);
  auto r = Regex::Parse("q q", [](const std::string& n) {
    return n == "q" ? 0 : -1;
  });
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(enhanced
                  .AddEqualityConstraint(
                      RegisterPair{RegisterId(0), RegisterId(0)}, r->ToDfa(1),
                      "")
                  .ok());
  TupleInequalityConstraint c;
  c.pair_dfa = r->ToDfa(1);
  c.regs_a = {0};
  c.offs_a = {0};
  c.regs_b = {0};
  c.offs_b = {0};
  ASSERT_TRUE(enhanced.AddTupleConstraint(std::move(c)).ok());
  FinitenessConstraint fc;
  fc.reg = 0;
  fc.selector = r->ToDfa(1);
  ASSERT_TRUE(enhanced.AddFinitenessConstraint(std::move(fc)).ok());

  std::string text = ToTextFormat(enhanced);
  EXPECT_NE(text.find("constraint eq 1 1"), std::string::npos);
  EXPECT_NE(text.find("# tuple-ineq"), std::string::npos);
  EXPECT_NE(text.find("# finiteness r1"), std::string::npos);
}

TEST(GraphvizTest, RendersStatesAndEdges) {
  auto a = ParseRegisterAutomaton(kExample1);
  ASSERT_TRUE(a.ok());
  std::string dot = ToGraphviz(*a);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("\"q1\" -> \"q2\""), std::string::npos);
  EXPECT_NE(dot.find("doublecircle"), std::string::npos);
}

}  // namespace
}  // namespace rav
